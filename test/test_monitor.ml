(* Tests for the online separability monitor (Sep_core.Monitor): exact
   agreement with the offline checker on clean runs, detection of every
   checked-in corpus mutant with first-violating-step attribution, the
   streaming watch over a live kernel, and the campaign hook. *)

module Scenarios = Sep_core.Scenarios
module Separability = Sep_core.Separability
module Monitor = Sep_core.Monitor
module Sue = Sep_core.Sue
module Trace = Sep_obs.Trace
module Fuzz = Sep_check.Fuzz
module Score = Sep_check.Score
module Campaign = Sep_robust.Campaign
module Fault_plan = Sep_robust.Fault_plan
module Json = Sep_util.Json

let check = Alcotest.check

(* a small deterministic drip schedule from the scenario's alphabet *)
let drip (inst : Scenarios.instance) steps =
  let nonempty = List.filter (fun i -> i <> []) inst.Scenarios.alphabet in
  let n = List.length nonempty in
  List.init steps (fun k ->
      if n > 0 && k mod 3 = 0 then List.nth nonempty (k / 3 mod n) else [])

(* -- agreement with the offline checker on clean scenarios ------------------ *)

let agree label (offline : Separability.report) (online : Fuzz.online) =
  let r = online.Fuzz.on_report in
  check Alcotest.int (label ^ ": states") offline.Separability.states r.Separability.states;
  check Alcotest.int (label ^ ": checks") offline.Separability.checks r.Separability.checks;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    (label ^ ": per-condition counts") offline.Separability.cond_checks
    r.Separability.cond_checks

let test_clean_agreement () =
  List.iter
    (fun (inst : Scenarios.instance) ->
      let label = inst.Scenarios.label in
      let sched = drip inst 12 in
      let offline =
        Fuzz.check_schedule ~seed:42 ~alphabet:inst.Scenarios.alphabet inst.Scenarios.cfg sched
      in
      let online =
        Fuzz.check_schedule_online ~seed:42 ~alphabet:inst.Scenarios.alphabet inst.Scenarios.cfg
          sched
      in
      agree label offline online;
      Alcotest.(check bool) (label ^ ": offline verified") true (Separability.verified offline);
      Alcotest.(check bool)
        (label ^ ": online verified") true
        (Separability.verified online.Fuzz.on_report);
      check (Alcotest.list Alcotest.int) (label ^ ": same failing conditions")
        (Separability.failing_conditions offline)
        (Separability.failing_conditions online.Fuzz.on_report);
      Alcotest.(check bool) (label ^ ": no violation") true (online.Fuzz.on_first_violation = None))
    Scenarios.all

(* -- the checked-in corpus mutants ------------------------------------------ *)

let corpus_dir () =
  (* cwd is the build test directory under [dune runtest], the repo root
     under [dune exec] *)
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let corpus_cases () =
  let dir = corpus_dir () in
  Sys.readdir dir |> Array.to_list |> List.sort compare
  |> List.map (fun file ->
         let path = Filename.concat dir file in
         let ic = open_in path in
         let text = really_input_string ic (in_channel_length ic) in
         close_in ic;
         match Json.parse text with
         | Error m -> Alcotest.failf "%s: bad JSON: %s" file m
         | Ok json -> (
           match Score.corpus_case_of_json json with
           | Error m -> Alcotest.failf "%s: %s" file m
           | Ok case -> (file, case)))

let case_instance (case : Score.corpus_case) =
  match Scenarios.find case.Score.cc_scenario with
  | Some inst -> inst
  | None -> Alcotest.failf "unknown corpus scenario %s" case.Score.cc_scenario

let run_case_online ?settle (case : Score.corpus_case) schedule =
  let inst = case_instance case in
  Fuzz.check_schedule_online ?settle ~bugs:[ case.Score.cc_bug ] ~seed:case.Score.cc_seed
    ~scrambles:case.Score.cc_scrambles ~alphabet:inst.Scenarios.alphabet inst.Scenarios.cfg
    schedule

let settle_default = 24

let test_corpus_agreement_and_detection () =
  let cases = corpus_cases () in
  check Alcotest.int "one corpus case per seeded bug" (List.length Sue.all_bugs)
    (List.length cases);
  List.iter
    (fun (file, case) ->
      let inst = case_instance case in
      let offline =
        Fuzz.check_schedule ~bugs:[ case.Score.cc_bug ] ~seed:case.Score.cc_seed
          ~scrambles:case.Score.cc_scrambles ~alphabet:inst.Scenarios.alphabet inst.Scenarios.cfg
          case.Score.cc_schedule
      in
      let online = run_case_online case case.Score.cc_schedule in
      (* on violating runs only the state totals are comparable: past a
         failure the offline checker and the monitor count the remaining
         checks differently, and both cap recorded failures at
         [max_failures] in different fill orders *)
      check Alcotest.int (file ^ ": states") offline.Separability.states
        online.Fuzz.on_report.Separability.states;
      Alcotest.(check bool) (file ^ ": offline flags the mutant") false
        (Separability.verified offline);
      match online.Fuzz.on_first_violation with
      | None -> Alcotest.failf "%s: online monitor missed the mutant" file
      | Some (step, f) ->
        Alcotest.(check bool)
          (file ^ ": step attributed within the run") true
          (step >= 0 && step <= List.length case.Score.cc_schedule + settle_default);
        Alcotest.(check bool)
          (file ^ ": condition in range") true
          (f.Separability.condition >= 1 && f.Separability.condition <= 6))
    cases

(* The attributed step is minimal: replaying only the steps before it
   (same seed, hence the same scrambled Phi-partners) stays clean. *)
let test_corpus_first_step_minimal () =
  List.iter
    (fun (file, case) ->
      let online = run_case_online case case.Score.cc_schedule in
      match online.Fuzz.on_first_violation with
      | None -> Alcotest.failf "%s: online monitor missed the mutant" file
      | Some (0, _) -> () (* the initial state sample already violates *)
      | Some (step, _) ->
        let extended = case.Score.cc_schedule @ List.init settle_default (fun _ -> []) in
        let prefix = List.filteri (fun i _ -> i < step - 1) extended in
        let clean = run_case_online ~settle:0 case prefix in
        Alcotest.(check bool)
          (file ^ ": prefix before the first violation is clean") true
          (clean.Fuzz.on_first_violation = None))
    (corpus_cases ())

(* -- the flight-recorder hook ----------------------------------------------- *)

let test_violation_dumps_trace () =
  Trace.set_capacity 512;
  Trace.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
  @@ fun () ->
  match corpus_cases () with
  | [] -> Alcotest.fail "corpus is empty"
  | (_, case) :: _ -> (
    ignore (run_case_online case case.Score.cc_schedule);
    match Trace.last_dump () with
    | None -> Alcotest.fail "first violation must flush the flight recorder"
    | Some (reason, events) ->
      Alcotest.(check bool) "dump reason names the violation" true
        (String.length reason >= 13 && String.sub reason 0 13 = "separability ");
      Alcotest.(check bool) "dump carries the preceding events" true (events <> []);
      Alcotest.(check bool) "the violation instant is recorded" true
        (List.exists (fun e -> e.Trace.cat = "monitor" && e.Trace.name = "violation") events))

(* -- watching a live kernel -------------------------------------------------- *)

let test_watch_clean () =
  let inst = Scenarios.pipeline in
  let t = Sue.build inst.Scenarios.cfg in
  let w = Monitor.watch ~period:8 ~inputs:inst.Scenarios.alphabet t in
  List.iter
    (fun input ->
      ignore (Sue.step t input);
      Monitor.observe w)
    (drip inst 120);
  check Alcotest.int "steps observed" 120 (Monitor.watch_steps w);
  Alcotest.(check bool) "periodic deep checks ran" true (Monitor.deep_checks w >= 120 / 8);
  Alcotest.(check bool) "clean run, no violation" true (Monitor.watch_first_violation w = None);
  Alcotest.(check bool) "watch report verified" true
    (Separability.verified (Monitor.watch_report w))

(* The watch sees only the states the kernel actually reaches (no
   scrambled Phi-partners), so it catches the bugs whose corruption
   lands in the realized state sample — deterministically, at a pinned
   step. Bugs that need scrambled partners (e.g. the output leak) are
   the [feed] path's job, covered by the corpus tests above. *)
let test_watch_detects_bugs () =
  List.iter
    (fun (bug, condition, at_step) ->
      let inst = Scenarios.pipeline in
      let t = Sue.build ~bugs:[ bug ] inst.Scenarios.cfg in
      let w = Monitor.watch ~period:1 ~inputs:inst.Scenarios.alphabet t in
      List.iter
        (fun input ->
          ignore (Sue.step t input);
          Monitor.observe w)
        (drip inst 120);
      let label = Fmt.str "%a" Sue.pp_bug bug in
      match Monitor.watch_first_violation w with
      | None -> Alcotest.failf "watch missed %s" label
      | Some (step, f) ->
        check Alcotest.int (label ^ ": condition") condition f.Separability.condition;
        check Alcotest.int (label ^ ": first violating step") at_step step)
    [
      (Sue.Forget_register_save, 1, 13);
      (Sue.Partition_hole, 2, 13);
      (Sue.Misroute_device_input, 4, 0);
      (Sue.Uncut_channel, 1, 22);
      (Sue.Input_crosstalk, 3, 13);
    ]

(* -- the campaign hook ------------------------------------------------------- *)

let test_campaign_monitored_case () =
  let inst = Scenarios.pipeline in
  let steps = 40 in
  List.iter
    (fun plan ->
      let m = Campaign.monitored_case ~period:8 ~steps ~plan inst in
      Alcotest.(check bool) "deep checks ran" true (m.Campaign.mc_deep_checks > 0);
      match m.Campaign.mc_first_violation with
      | None -> ()
      | Some (step, _) ->
        Alcotest.(check bool) "step within the run" true (step >= 0 && step <= steps))
    (Fault_plan.generate ~seed:42 ~steps ~count:4 inst.Scenarios.cfg)

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "monitor"
    [
      ( "agreement",
        [
          Alcotest.test_case "clean scenarios match offline" `Quick test_clean_agreement;
          Alcotest.test_case "corpus mutants: totals and detection" `Slow
            test_corpus_agreement_and_detection;
          Alcotest.test_case "first violating step is minimal" `Slow
            test_corpus_first_step_minimal;
        ] );
      ( "flight-recorder",
        [ Alcotest.test_case "violation flushes the ring" `Quick test_violation_dumps_trace ] );
      ( "watch",
        [
          Alcotest.test_case "clean kernel stays clean" `Quick test_watch_clean;
          Alcotest.test_case "realized-state bugs flagged" `Quick test_watch_detects_bugs;
        ] );
      ( "campaign",
        [ Alcotest.test_case "monitored case" `Quick test_campaign_monitored_case ] );
    ]
