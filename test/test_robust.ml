(* Tests for the robustness layer: fault plans, the injection campaign,
   and the kernel's fail-safe hardening (checksummed save areas, guard
   words, watchdog, kernel panic). *)

module Colour = Sep_model.Colour
module Machine = Sep_hw.Machine
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Scenarios = Sep_core.Scenarios
module Ktrace = Sep_core.Ktrace
module Abstract_regime = Sep_core.Abstract_regime
module Fault_plan = Sep_robust.Fault_plan
module Campaign = Sep_robust.Campaign
module Json = Sep_util.Json

let check = Alcotest.check

let pipeline_cfg = Scenarios.pipeline.Scenarios.cfg

(* -- Fault plans ----------------------------------------------------------- *)

let test_plans_deterministic () =
  let gen () =
    List.map
      (fun (p : Fault_plan.t) -> Json.to_string (Fault_plan.to_json p))
      (Fault_plan.generate ~seed:7 ~steps:50 ~count:20 pipeline_cfg)
  in
  check (Alcotest.list Alcotest.string) "same seed, same plans" (gen ()) (gen ());
  let other =
    List.map
      (fun (p : Fault_plan.t) -> Json.to_string (Fault_plan.to_json p))
      (Fault_plan.generate ~seed:8 ~steps:50 ~count:20 pipeline_cfg)
  in
  Alcotest.(check bool) "different seed differs" false (gen () = other)

let test_plan_targets () =
  let target f = Fault_plan.target pipeline_cfg f in
  let colour = Alcotest.testable Colour.pp Colour.equal in
  check (Alcotest.option colour) "mem flip targets its partition owner" (Some Colour.red)
    (target (Fault_plan.Mem_flip { colour = Colour.red; offset = 3; bit = 1 }));
  check (Alcotest.option colour) "guard smash targets nobody" None
    (target (Fault_plan.Guard_smash { index = 0 }));
  check (Alcotest.option colour) "send end is the sender's domain" (Some Colour.red)
    (target (Fault_plan.Chan_flip { chan = 0; which = Fault_plan.Send_end; word = 0; bit = 0 }));
  check (Alcotest.option colour) "recv end is the receiver's domain" (Some Colour.black)
    (target (Fault_plan.Chan_flip { chan = 0; which = Fault_plan.Recv_end; word = 0; bit = 0 }));
  (* device 2 is BLACK's Rx in the pipeline layout *)
  check (Alcotest.option colour) "device faults target the device owner" (Some Colour.black)
    (target (Fault_plan.Stuck_device { device = 2 }))

let test_plans_strike_inside_run () =
  List.iter
    (fun (p : Fault_plan.t) ->
      List.iter
        (fun (at, _) ->
          if at < 1 || at >= 50 then Alcotest.failf "plan %s strikes at %d" p.Fault_plan.label at)
        p.Fault_plan.faults)
    (Fault_plan.generate ~seed:3 ~steps:50 ~count:100 pipeline_cfg)

let test_multi_fault_plans () =
  let plans = Fault_plan.generate_multi ~seed:4 ~steps:50 ~count:30 ~faults_per_plan:3 pipeline_cfg in
  check Alcotest.int "requested count" 30 (List.length plans);
  List.iter
    (fun (p : Fault_plan.t) ->
      check Alcotest.int (p.Fault_plan.label ^ " carries three faults") 3
        (List.length p.Fault_plan.faults);
      ignore
        (List.fold_left
           (fun prev (at, _) ->
             if at < prev then Alcotest.failf "plan %s strikes out of order" p.Fault_plan.label;
             if at < 1 || at >= 50 then Alcotest.failf "plan %s strikes at %d" p.Fault_plan.label at;
             at)
           0 p.Fault_plan.faults))
    plans;
  let render ps = List.map (fun p -> Json.to_string (Fault_plan.to_json p)) ps in
  check
    (Alcotest.list Alcotest.string)
    "deterministic" (render plans)
    (render (Fault_plan.generate_multi ~seed:4 ~steps:50 ~count:30 ~faults_per_plan:3 pipeline_cfg))

(* -- Kernel hardening ------------------------------------------------------ *)

let status =
  Alcotest.testable
    (fun ppf s ->
      Fmt.string ppf
        (match (s : Abstract_regime.status) with
        | Abstract_regime.Running -> "running"
        | Abstract_regime.Waiting -> "waiting"
        | Abstract_regime.Parked -> "parked"))
    ( = )

(* Corrupting a parked-out regime's save area parks that regime at the
   next switch attempt — with an audit event in the trace and a bumped
   fault counter — while the rest of the system keeps running. *)
let test_save_corruption_parks_and_audits () =
  let t = Sue.build pipeline_cfg in
  let m = Sue.machine t in
  (* BLACK is off-processor at build time; smash its saved R2 *)
  let base = Sue.save_area_base t Colour.black in
  Machine.write_phys m (base + 2) 0xbeef;
  let events = ref [] in
  for _ = 1 to 40 do
    events := !events @ Ktrace.step t []
  done;
  let audited =
    List.exists
      (function Ktrace.Save_corrupt c -> Colour.equal c Colour.black | _ -> false)
      !events
  in
  Alcotest.(check bool) "Save_corrupt audit event traced" true audited;
  check Alcotest.int "fault park counted" 1 (Sue.kstats t).Sue.ks_fault_parks;
  check status "black is parked" Abstract_regime.Parked (Sue.regime_status t Colour.black);
  (* the survivor still runs: red keeps retiring instructions afterwards *)
  let red_before = List.assoc Colour.red (Sue.kstats t).Sue.ks_instrs in
  for n = 1 to 20 do
    ignore (Sue.step t (if n mod 4 = 0 then [ (0, n) ] else []))
  done;
  let red_after = List.assoc Colour.red (Sue.kstats t).Sue.ks_instrs in
  Alcotest.(check bool) "red still makes progress" true (red_after > red_before)

let test_guard_sweep_repairs_and_audits () =
  let t = Sue.build pipeline_cfg in
  let m = Sue.machine t in
  (match Sue.guard_addrs t with
  | g :: _ -> Machine.write_phys m g 0x1234
  | [] -> Alcotest.fail "no guards");
  check Alcotest.int "one breach found" 1 (Sue.guard_sweep t);
  check Alcotest.int "breach counted" 1 (Sue.kstats t).Sue.ks_guard_breaches;
  let audited =
    List.exists (function Sue.Guard_breach _ -> true | _ -> false) (Sue.drain_faults t)
  in
  Alcotest.(check bool) "breach in the audit log" true audited;
  check Alcotest.int "guard repaired: second sweep clean" 0 (Sue.guard_sweep t)

(* The watchdog keeps never-yielding regimes live without a quantum, and
   its fires are audited. *)
let test_watchdog_preempts_greedy () =
  let p = Scenarios.preemptive in
  let cfg = { p.Scenarios.cfg with Config.quantum = None } in
  let t = Sue.build ~watchdog:4 cfg in
  for _ = 1 to 100 do
    ignore (Sue.step t [])
  done;
  let ks = Sue.kstats t in
  Alcotest.(check bool) "watchdog fired" true (ks.Sue.ks_watchdog_fires >= 2);
  List.iter
    (fun (c, n) ->
      if n <= 0 then Alcotest.failf "%a starved despite the watchdog" Colour.pp c)
    ks.Sue.ks_instrs

let test_watchdog_validation () =
  Alcotest.check_raises "watchdog and quantum are exclusive"
    (Invalid_argument "Sue.build: watchdog and preemption quantum are exclusive") (fun () ->
      let p = Scenarios.preemptive in
      ignore (Sue.build ~watchdog:4 p.Scenarios.cfg));
  Alcotest.check_raises "watchdog must be positive"
    (Invalid_argument "Sue.build: watchdog must be positive") (fun () ->
      let p = Scenarios.preemptive in
      ignore (Sue.build ~watchdog:0 { p.Scenarios.cfg with Config.quantum = None }))

(* A fault inside the kernel itself halts to a defined safe state: every
   regime parked, the panic audited, nothing raises. *)
let test_kernel_panic_is_failsafe () =
  let t = Sue.build ~impl:Sue.Assembly pipeline_cfg in
  let m = Sue.machine t in
  let code_base, code_len = Sue.kernel_code_region t in
  Alcotest.(check bool) "assembly kernel has code" true (code_len > 0);
  for a = code_base to code_base + code_len - 1 do
    Machine.write_phys m a 0xffff
  done;
  let events = ref [] in
  for _ = 1 to 30 do
    events := !events @ Ktrace.step t []
  done;
  Alcotest.(check bool) "panic counted" true ((Sue.kstats t).Sue.ks_panics >= 1);
  let audited =
    List.exists (function Ktrace.Kernel_panicked _ -> true | _ -> false) !events
  in
  Alcotest.(check bool) "panic audit event traced" true audited;
  List.iter
    (fun c -> check status (Colour.name c ^ " parked") Abstract_regime.Parked (Sue.regime_status t c))
    (Config.colours pipeline_cfg)

(* -- The campaign ---------------------------------------------------------- *)

let smoke = lazy (Campaign.run ~seed:42 ~steps:60 ~count:12 ())

let test_campaign_holds () =
  let report = Lazy.force smoke in
  let masked, detected, recovered, violating = Campaign.totals report in
  check Alcotest.int "every fault classified" (List.length Campaign.subjects * 12)
    (masked + detected + recovered + violating);
  check Alcotest.int "zero separation violations" 0 violating;
  check Alcotest.int "no recoveries without a supervisor" 0 recovered;
  Alcotest.(check bool) "containment holds" true (Campaign.holds report);
  Alcotest.(check bool) "at least one detected-safe outcome" true (detected >= 1)

(* The acceptance criterion: some detected-safe case exercised the
   park-and-audit path, visible in its recorded detections. *)
let test_campaign_exercises_park_path () =
  let report = Lazy.force smoke in
  let parked =
    List.exists
      (fun (sr : Campaign.scenario_report) ->
        List.exists
          (fun (c : Campaign.case) ->
            c.Campaign.outcome = Campaign.Detected_safe
            && List.exists
                 (function Sue.Save_area_corrupt _ -> true | _ -> false)
                 c.Campaign.detections)
          sr.Campaign.cases)
      report.Campaign.rp_scenarios
  in
  Alcotest.(check bool) "a detected-safe case parked and audited" true parked

let test_campaign_jsonl_parses () =
  let report = Lazy.force smoke in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Campaign.report_to_jsonl report))
  in
  check Alcotest.int "one line per case plus the summary"
    ((List.length Campaign.subjects * 12) + 1)
    (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj fields) ->
        if not (List.mem_assoc "kind" fields) then Alcotest.failf "line without kind: %s" line
      | Ok _ -> Alcotest.failf "non-object line: %s" line
      | Error e -> Alcotest.failf "unparseable line %s: %s" line e)
    lines

let test_campaign_deterministic () =
  let a = Campaign.report_to_jsonl (Campaign.run ~seed:9 ~steps:40 ~count:6 ()) in
  let b = Campaign.report_to_jsonl (Campaign.run ~seed:9 ~steps:40 ~count:6 ()) in
  check Alcotest.string "same seed, same report" a b

let test_distributed_baseline () =
  let d = Campaign.run_distributed ~seed:42 ~steps:40 ~count:20 in
  Alcotest.(check bool) "tampering had an effect" true (d.Campaign.dr_affected > 0);
  Alcotest.(check bool) "unconnected boxes untouched" true d.Campaign.dr_contained

(* -- The recovery campaign -------------------------------------------------- *)

let recovery_smoke = lazy (Campaign.run_recovery ~seed:42 ~steps:60 ~count:12 ())

let test_recovery_campaign_holds () =
  let report = Lazy.force recovery_smoke in
  let masked, detected, recovered, violating = Campaign.totals report in
  (* 12 single-fault plans plus 6 triple-fault plans per scenario *)
  check Alcotest.int "every fault classified" (List.length Campaign.subjects * 18)
    (masked + detected + recovered + violating);
  check Alcotest.int "zero separation violations" 0 violating;
  Alcotest.(check bool) "containment holds" true (Campaign.holds report);
  Alcotest.(check bool) "faults were recovered" true (recovered > 0);
  List.iter
    (fun (sr : Campaign.scenario_report) ->
      let r =
        List.length (List.filter (fun c -> c.Campaign.outcome = Campaign.Recovered_safe) sr.Campaign.cases)
      and v =
        List.length (List.filter (fun c -> c.Campaign.outcome = Campaign.Violating) sr.Campaign.cases)
      in
      check Alcotest.int (sr.Campaign.label ^ " has no violation") 0 v;
      Alcotest.(check bool) (sr.Campaign.label ^ " recovered something") true (r > 0))
    report.Campaign.rp_scenarios

let test_recovery_cases_record_actions () =
  let report = Lazy.force recovery_smoke in
  List.iter
    (fun (sr : Campaign.scenario_report) ->
      List.iter
        (fun (c : Campaign.case) ->
          if c.Campaign.outcome = Campaign.Recovered_safe && c.Campaign.recoveries = [] then
            Alcotest.failf "recovered-safe case without a recorded recovery in %s" sr.Campaign.label)
        sr.Campaign.cases)
    report.Campaign.rp_scenarios;
  let restarted =
    List.exists
      (fun (sr : Campaign.scenario_report) ->
        List.exists
          (fun (c : Campaign.case) ->
            List.exists
              (function Sue.Regime_restart _ -> true | _ -> false)
              c.Campaign.recoveries)
          sr.Campaign.cases)
      report.Campaign.rp_scenarios
  in
  Alcotest.(check bool) "some case recorded a regime restart" true restarted

let test_recovery_deterministic () =
  let run () = Campaign.report_to_jsonl (Campaign.run_recovery ~seed:9 ~steps:40 ~count:6 ()) in
  check Alcotest.string "same seed, same recovery report" (run ()) (run ())

(* -- JSONL round-trips ------------------------------------------------------- *)

let member name fields =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> Alcotest.failf "missing field %s" name

let test_case_jsonl_roundtrip () =
  let report = Lazy.force recovery_smoke in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Campaign.report_to_jsonl report))
  in
  let outcomes = [ "masked"; "detected-safe"; "recovered-safe"; "violating" ] in
  let seen = Hashtbl.create 4 in
  List.iter
    (fun line ->
      match Json.parse line with
      | Error e -> Alcotest.failf "unparseable line %s: %s" line e
      | Ok (Json.Obj fields) -> (
        match member "kind" fields with
        | Json.String "fault-case" ->
          List.iter
            (fun f -> ignore (member f fields))
            [ "scenario"; "seed"; "steps"; "plan"; "target"; "outcome"; "victim_perturbed";
              "detections"; "recoveries"; "watchdog_delta" ];
          let outcome =
            match member "outcome" fields with
            | Json.String s -> s
            | _ -> Alcotest.fail "outcome is not a string"
          in
          if not (List.mem outcome outcomes) then Alcotest.failf "unknown outcome %s" outcome;
          Hashtbl.replace seen outcome ();
          (match (outcome, member "recoveries" fields) with
          | "recovered-safe", Json.List [] ->
            Alcotest.fail "recovered-safe case with empty recoveries"
          | _, Json.List _ -> ()
          | _ -> Alcotest.fail "recoveries is not a list")
        | Json.String "campaign-summary" ->
          let int_field f =
            match member f fields with
            | Json.Int n -> n
            | _ -> Alcotest.failf "summary field %s is not an int" f
          in
          check Alcotest.int "summary cases = sum of classes"
            (int_field "masked" + int_field "detected_safe" + int_field "recovered_safe"
           + int_field "violating")
            (int_field "cases")
        | _ -> Alcotest.failf "unknown kind in %s" line)
      | Ok _ -> Alcotest.failf "non-object line: %s" line)
    lines;
  List.iter
    (fun o ->
      if o <> "violating" && not (Hashtbl.mem seen o) then
        Alcotest.failf "no %s case in the smoke campaign" o)
    outcomes

let test_dist_json_roundtrip () =
  let d = Campaign.run_distributed ~seed:42 ~steps:40 ~count:20 in
  match Json.parse (Json.to_string (Campaign.dist_to_json d)) with
  | Error e -> Alcotest.failf "unparseable distributed baseline: %s" e
  | Ok (Json.Obj fields) ->
    (match member "kind" fields with
    | Json.String "distributed-baseline" -> ()
    | _ -> Alcotest.fail "wrong kind");
    check Alcotest.int "cases survive the round-trip" d.Campaign.dr_cases
      (match member "cases" fields with Json.Int n -> n | _ -> -1);
    check Alcotest.int "affected survives the round-trip" d.Campaign.dr_affected
      (match member "affected" fields with Json.Int n -> n | _ -> -1);
    Alcotest.(check bool) "contained survives the round-trip" d.Campaign.dr_contained
      (match member "contained" fields with Json.Bool b -> b | _ -> false)
  | Ok _ -> Alcotest.fail "distributed baseline is not an object"

let () =
  Alcotest.run "robust"
    [
      ( "fault plans",
        [
          Alcotest.test_case "deterministic" `Quick test_plans_deterministic;
          Alcotest.test_case "targets" `Quick test_plan_targets;
          Alcotest.test_case "strike inside the run" `Quick test_plans_strike_inside_run;
          Alcotest.test_case "multi-fault plans" `Quick test_multi_fault_plans;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "save corruption parks and audits" `Quick
            test_save_corruption_parks_and_audits;
          Alcotest.test_case "guard sweep repairs and audits" `Quick
            test_guard_sweep_repairs_and_audits;
          Alcotest.test_case "watchdog preempts greedy regimes" `Quick test_watchdog_preempts_greedy;
          Alcotest.test_case "watchdog validation" `Quick test_watchdog_validation;
          Alcotest.test_case "kernel panic is fail-safe" `Quick test_kernel_panic_is_failsafe;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "containment holds" `Quick test_campaign_holds;
          Alcotest.test_case "park path exercised" `Quick test_campaign_exercises_park_path;
          Alcotest.test_case "jsonl parses" `Quick test_campaign_jsonl_parses;
          Alcotest.test_case "deterministic" `Quick test_campaign_deterministic;
          Alcotest.test_case "distributed baseline" `Quick test_distributed_baseline;
        ] );
      ( "recovery campaign",
        [
          Alcotest.test_case "fail-operational holds" `Quick test_recovery_campaign_holds;
          Alcotest.test_case "cases record recovery actions" `Quick
            test_recovery_cases_record_actions;
          Alcotest.test_case "deterministic" `Quick test_recovery_deterministic;
        ] );
      ( "jsonl round-trips",
        [
          Alcotest.test_case "fault-case and summary schema" `Quick test_case_jsonl_roundtrip;
          Alcotest.test_case "distributed baseline schema" `Quick test_dist_json_roundtrip;
        ] );
    ]
