(* The refinement stack: abstract spec <-> Regime_kernel <-> Sue. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Scenarios = Sep_core.Scenarios
module AR = Sep_core.Abstract_regime
module Gen = Sep_check.Gen
module Mspec = Sep_refine.Mspec
module Bspec = Sep_refine.Bspec
module Kact = Sep_refine.Kact
module Stack = Sep_refine.Stack

let check = Alcotest.(check bool)

(* -- Base case: the spec's initial state is phi of a fresh kernel ----------- *)

let init_is_phi () =
  List.iter
    (fun (inst : Scenarios.instance) ->
      let sue = Sue.build inst.cfg in
      let spec = Mspec.init inst.cfg in
      List.iter
        (fun c ->
          check
            (Fmt.str "%s: init = phi(%s)" inst.label (Colour.name c))
            true
            (AR.equal (Sue.phi sue c) (Mspec.machine spec c)))
        (Config.colours inst.cfg))
    Scenarios.all

(* -- Clean lockstep --------------------------------------------------------- *)

let scenarios_lockstep () =
  List.iter
    (fun (label, r) ->
      match r with
      | Ok checks -> check (label ^ " performed checks") true (checks > 0)
      | Error d -> Alcotest.failf "%s diverged: %a" label Stack.pp_divergence d)
    (Stack.scenario_results ~schedules:2 ~steps:250 ~seed:7 ())

let generated_lockstep () =
  for seed = 1 to 10 do
    let cfg, schedule = Gen.run ~seed Stack.machine_case in
    match Stack.check_machine cfg ~schedule ~steps:250 with
    | Ok _ -> ()
    | Error d -> Alcotest.failf "seed %d diverged: %a" seed Stack.pp_divergence d
  done

(* -- Kact workloads --------------------------------------------------------- *)

(* A fixed pipeline: colour 0 computes and sends twice, colour 1 receives,
   mixes and emits. *)
let hand_case =
  {
    Kact.k_emitters = [ false; true ];
    k_chans = [ (0, 1, 2) ];
    k_progs =
      [
        [ Kact.KSet (3, 7); KSend (0, 3); KSet (4, 9); KSend (0, 4) ];
        [ Kact.KRecv (0, 3); KRecv (0, 4); KArith (KAdd, 3, 4); KEmit 3 ];
      ];
    k_quantum = None;
  }

let eval_reference () =
  let out = Kact.eval hand_case in
  Alcotest.(check (list int)) "sent" [ 7; 9 ] out.Kact.o_sent.(0);
  Alcotest.(check (list int)) "bound" [ 7; 9 ] out.Kact.o_bound.(0);
  Alcotest.(check (list int)) "emitted" [ 16 ] out.Kact.o_emitted.(1);
  Alcotest.(check int) "r3 of receiver" 16 out.Kact.o_regs.(1).(3)

let behaviour_clean () =
  (match Stack.check_behaviour hand_case with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "hand case diverged: %a" Stack.pp_divergence d);
  for seed = 1 to 15 do
    let case = Gen.run ~seed (Kact.gen ()) in
    match Stack.check_behaviour case with
    | Ok _ -> ()
    | Error d ->
      Alcotest.failf "seed %d diverged: %a@ %a" seed Stack.pp_divergence d Kact.pp_case case
  done

let stack_tie () =
  (match Stack.check_stack hand_case with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "hand case diverged: %a" Stack.pp_divergence d);
  for seed = 1 to 12 do
    let case = Gen.run ~seed (Kact.gen ()) in
    match Stack.check_stack case with
    | Ok _ -> ()
    | Error d ->
      Alcotest.failf "seed %d diverged: %a@ %a" seed Stack.pp_divergence d Kact.pp_case case
  done

(* The generator always produces channel traffic: delivery bugs (e.g.
   drop-alternate) need sends in flight to manifest, so a silent all-local
   workload would starve the kill race. *)
let generated_cases_have_traffic () =
  for seed = 1 to 40 do
    let case = Gen.run ~seed (Kact.gen ()) in
    let sends =
      List.concat_map
        (List.filter (function Kact.KSend _ -> true | _ -> false))
        case.Kact.k_progs
    in
    check (Fmt.str "seed %d has sends" seed) true (sends <> [])
  done

(* Shrinking must make progress toward a minimum: no candidate grows (the
   quantum-dropping candidate keeps the action count), and a non-trivial
   case always offers at least one strictly smaller candidate. *)
let shrink_candidates_smaller () =
  for seed = 1 to 25 do
    let case = Gen.run ~seed (Kact.gen ()) in
    let sizes = List.of_seq (Seq.map Kact.size (Kact.shrink case)) in
    check (Fmt.str "seed %d no candidate grows" seed) true
      (List.for_all (fun s -> s <= Kact.size case) sizes);
    if Kact.size case > 0 then
      check (Fmt.str "seed %d strictly smaller candidate" seed) true
        (List.exists (fun s -> s < Kact.size case) sizes)
  done

let case_json_roundtrips () =
  let module Json = Sep_util.Json in
  for seed = 1 to 20 do
    let case = Gen.run ~seed (Kact.gen ()) in
    let s = Json.to_string (Kact.case_to_json case) in
    match Json.parse s with
    | Ok j ->
      check (Fmt.str "seed %d case json has programs" seed) true
        (Json.member "programs" j <> None)
    | Error e -> Alcotest.failf "seed %d case json unparseable: %s" seed e
  done

(* -- Mutant kills ----------------------------------------------------------- *)

let kill_table = lazy (Stack.kill_table ~jobs:2 ~seed:42 ~attempts:20 ())

let kills_all () =
  let kills = Lazy.force kill_table in
  Alcotest.(check int) "one row per bug" (List.length Stack.known_bugs) (List.length kills);
  List.iter
    (fun (k : Stack.kill) ->
      check (k.k_bug ^ " killed") true k.k_killed;
      check (k.k_bug ^ " shrunk no larger") true (k.k_shrunk_size <= k.k_original_size);
      check (k.k_bug ^ " divergence step recorded") true (k.k_step >= 0))
    kills

let kill_replays () =
  List.iter
    (fun (k : Stack.kill) ->
      match Stack.replay ~seed:k.k_seed ~bug:k.k_bug with
      | Ok (Some k') ->
        Alcotest.(check int) (k.k_bug ^ " replay step") k.k_step k'.Stack.k_step
      | Ok None -> Alcotest.failf "%s: replay seed %d found no divergence" k.k_bug k.k_seed
      | Error msg -> Alcotest.fail msg)
    (Lazy.force kill_table)

let jobs_deterministic () =
  let table jobs = Stack.kill_table ~jobs ~seed:9 ~attempts:6 () in
  check "kill table identical at -j1 and -j3" true (table 1 = table 3)

(* -- CLI exit codes ---------------------------------------------------------- *)

(* The sibling executables live one directory up from this test binary in
   the build tree (declared as deps in the dune stanza); resolve them from
   the binary's own location so the tests pass under both [dune runtest]
   and [dune exec]. *)
let sibling_exe name = Filename.concat (Filename.dirname Sys.executable_name) name
let run_quiet cmd = Sys.command (cmd ^ " > /dev/null 2> /dev/null")
let rushby args = run_quiet (Fmt.str "%s %s" (sibling_exe "../bin/rushby.exe") args)
let bench args = run_quiet (Fmt.str "%s %s" (sibling_exe "../bench/main.exe") args)

let replay_divergent_exits_1 () =
  (* a seed the kill table found for forget-register-save: replay must
     reproduce the divergence and signal it through the exit code *)
  Alcotest.(check int) "divergent replay exits 1" 1
    (rushby "refine --replay 858310338 --bug forget-register-save")

let replay_unknown_bug_rejected () =
  check "unknown bug name is an error" true (rushby "refine --replay 1 --bug no-such-bug" <> 0)

let temp_snapshot label rate =
  let file = Filename.temp_file "rushby-snap" ".json" in
  Out_channel.with_open_text file (fun oc ->
      Printf.fprintf oc {|{"experiments":[{"label":"%s","checks_per_sec":%d}]}|} label rate);
  file

let bench_compare_identical_exits_0 () =
  let snap = temp_snapshot "e1" 1000 in
  let code = bench (Fmt.str "compare %s %s" snap snap) in
  Sys.remove snap;
  Alcotest.(check int) "identical snapshots pass the gate" 0 code

let bench_compare_regression_exits_1 () =
  let old_snap = temp_snapshot "e1" 1000 in
  let new_snap = temp_snapshot "e1" 500 in
  let code = bench (Fmt.str "compare %s %s" old_snap new_snap) in
  Sys.remove old_snap;
  Sys.remove new_snap;
  Alcotest.(check int) "a 50%% drop fails the gate" 1 code

let bench_compare_improvement_exits_0 () =
  let old_snap = temp_snapshot "e1" 1000 in
  let new_snap = temp_snapshot "e1" 2000 in
  let code = bench (Fmt.str "compare %s %s" old_snap new_snap) in
  Sys.remove old_snap;
  Sys.remove new_snap;
  Alcotest.(check int) "an improvement passes the gate" 0 code

let main () =
  Alcotest.run "refine"
    [
      ( "lockstep",
        [
          Alcotest.test_case "init is phi" `Quick init_is_phi;
          Alcotest.test_case "scenarios lockstep" `Quick scenarios_lockstep;
          Alcotest.test_case "generated lockstep" `Quick generated_lockstep;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "reference evaluation" `Quick eval_reference;
          Alcotest.test_case "behavioural square" `Quick behaviour_clean;
          Alcotest.test_case "stream tie" `Quick stack_tie;
          Alcotest.test_case "generator makes traffic" `Quick generated_cases_have_traffic;
          Alcotest.test_case "shrinks are smaller" `Quick shrink_candidates_smaller;
          Alcotest.test_case "case json round-trips" `Quick case_json_roundtrips;
        ] );
      ( "kills",
        [
          Alcotest.test_case "all bugs killed" `Quick kills_all;
          Alcotest.test_case "kills replay by seed" `Quick kill_replays;
          Alcotest.test_case "table identical across -j" `Quick jobs_deterministic;
        ] );
      ( "cli",
        [
          Alcotest.test_case "divergent replay exits 1" `Quick replay_divergent_exits_1;
          Alcotest.test_case "unknown bug rejected" `Quick replay_unknown_bug_rejected;
          Alcotest.test_case "compare identical exits 0" `Quick bench_compare_identical_exits_0;
          Alcotest.test_case "compare regression exits 1" `Quick bench_compare_regression_exits_1;
          Alcotest.test_case "compare improvement exits 0" `Quick bench_compare_improvement_exits_0;
        ] );
    ]

let () = main ()
