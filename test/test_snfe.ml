(* Tests for the SNFE assembly: end-to-end encryption in both directions,
   the no-cleartext requirement, and the covert-bandwidth experiment. *)

module Snfe = Sep_snfe.Snfe
module Substrate = Sep_snfe.Substrate
module Censor = Sep_components.Censor
module Covert = Sep_components.Covert
module Crypto = Sep_components.Crypto

let outbound = [ "attack at dawn"; "hold the bridge"; "x" ]
let inbound = [ "acknowledged"; "resupply tonight" ]

let run kind = Snfe.run_duplex kind Snfe.default_config ~outbound ~inbound ~steps:40

let test_outbound_delivery kind () =
  let r = run kind in
  Alcotest.(check int) "one network packet per host packet" (List.length outbound)
    (List.length r.Snfe.net_packets);
  List.iter
    (fun pkt ->
      Alcotest.(check bool) "packet shape" true
        (String.length pkt > 4 && String.sub pkt 0 4 = "PKT "))
    r.Snfe.net_packets

let test_inbound_decrypts kind () =
  let r = run kind in
  Alcotest.(check (list string)) "host receives the decrypted inbound traffic"
    (List.map (fun p -> "HOST " ^ p) inbound)
    r.Snfe.host_packets

let test_no_cleartext kind () =
  let r = run kind in
  Alcotest.(check (list string)) "no user data in clear on the network" []
    r.Snfe.cleartext_on_net

let test_net_packets_decryptable () =
  (* The far-end SNFE (same key) can recover the payloads: the system is
     useful, not merely mute. *)
  let r = run Substrate.Distributed in
  let recover pkt =
    match String.index_opt pkt '|' with
    | None -> ""
    | Some i -> Crypto.decrypt Snfe.default_config.Snfe.key (String.sub pkt (i + 1) (String.length pkt - i - 1))
  in
  Alcotest.(check (list string)) "recovered" outbound (List.map recover r.Snfe.net_packets)

let test_headers_describe_payloads () =
  let r = run Substrate.Distributed in
  List.iter2
    (fun pkt payload ->
      let header =
        match String.index_opt pkt '|' with
        | Some i -> String.sub pkt 0 i
        | None -> pkt
      in
      match Sep_components.Protocol.int_field "len" header with
      | Some len -> Alcotest.(check int) "len field truthful" (String.length payload) len
      | None -> Alcotest.fail "missing len")
    r.Snfe.net_packets outbound

(* -- covert bandwidth (E6) ------------------------------------------------------ *)

let measure vector mode =
  (Snfe.measure_covert ~vector ~mode ~messages:60 ~seed:17 ()).Snfe.bits_per_message

let test_pad_channel_closed_by_basic () =
  Alcotest.(check bool) "wide open without censor" true (measure Covert.Pad_field Censor.Off >= 60.0);
  Alcotest.(check (float 0.001)) "closed by basic" 0.0 (measure Covert.Pad_field Censor.Basic);
  Alcotest.(check (float 0.001)) "closed by strict" 0.0 (measure Covert.Pad_field Censor.Strict)

let test_length_channel_squeezed_by_strict () =
  let off = measure Covert.Length_raw Censor.Off in
  let basic = measure Covert.Length_raw Censor.Basic in
  let strict = measure Covert.Length_raw Censor.Strict in
  Alcotest.(check (float 0.001)) "raw length: 5 bits open" 5.0 off;
  Alcotest.(check (float 0.001)) "basic cannot touch a truthful field" 5.0 basic;
  (* the residual is whatever chunks happen to survive quantization exactly;
     "hard" means well under half the open channel, not a fixed point value *)
  Alcotest.(check bool) "strict squeezes it hard" true (strict <= basic /. 4.0)

let test_adapted_encoder_floor () =
  (* the attacker adapts to quantization: the residual channel is the
     bucket index — reduced, not eliminated ("to an acceptable level") *)
  let strict = measure Covert.Length_bucket Censor.Strict in
  Alcotest.(check (float 0.001)) "bucket encoder keeps 2 bits" 2.0 strict;
  Alcotest.(check bool) "still far below the open channel" true
    (strict < measure Covert.Pad_field Censor.Off /. 8.0)

let test_bandwidth_monotone_in_censor () =
  List.iter
    (fun vector ->
      let off = measure vector Censor.Off in
      let basic = measure vector Censor.Basic in
      let strict = measure vector Censor.Strict in
      Alcotest.(check bool)
        (Fmt.str "%a monotone" Covert.pp_vector vector)
        true
        (off >= basic && basic >= strict))
    [ Covert.Pad_field; Covert.Length_raw; Covert.Length_bucket ]

let test_bandwidth_accounting () =
  let b = Snfe.measure_covert ~vector:Covert.Length_raw ~mode:Censor.Off ~messages:30 ~seed:5 () in
  Alcotest.(check int) "messages" 30 b.Snfe.messages_sent;
  Alcotest.(check int) "headers all delivered" 30 b.Snfe.headers_delivered;
  Alcotest.(check int) "attempted = k * messages" 150 b.Snfe.bits_attempted;
  Alcotest.(check bool) "recovered <= attempted" true (b.Snfe.bits_recovered <= b.Snfe.bits_attempted)

let per_substrate name f =
  [
    Alcotest.test_case (name ^ " (distributed)") `Quick (f Substrate.Distributed);
    Alcotest.test_case (name ^ " (kernelized)") `Quick (f Substrate.Kernelized);
  ]

let () =
  Alcotest.run "snfe"
    [
      ( "end to end",
        per_substrate "outbound delivery" test_outbound_delivery
        @ per_substrate "inbound decrypts" test_inbound_decrypts
        @ per_substrate "no cleartext" test_no_cleartext
        @ [
            Alcotest.test_case "packets decryptable" `Quick test_net_packets_decryptable;
            Alcotest.test_case "headers truthful" `Quick test_headers_describe_payloads;
          ] );
      ( "covert bandwidth (E6)",
        [
          Alcotest.test_case "pad closed by basic" `Quick test_pad_channel_closed_by_basic;
          Alcotest.test_case "length squeezed by strict" `Quick test_length_channel_squeezed_by_strict;
          Alcotest.test_case "adapted encoder floor" `Quick test_adapted_encoder_floor;
          Alcotest.test_case "monotone in censor" `Quick test_bandwidth_monotone_in_censor;
          Alcotest.test_case "accounting" `Quick test_bandwidth_accounting;
        ] );
    ]
