(* Tests for the two execution substrates and their equivalence (E7): the
   physically distributed network of boxes and the behavioural separation
   kernel must be indistinguishable to the hosted components. *)

module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Net = Sep_distributed.Net
module Kernel = Sep_core.Regime_kernel
module Prng = Sep_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let a = Colour.make "A"
let b = Colour.make "B"
let c = Colour.make "C"

(* A forwards external words to B (wire 0); B uppercases onto C (wire 1);
   C outputs. *)
let relay_topology ?(capacity = 4) () =
  let fwd out_wire =
    Component.stateless ~name:"fwd" (function
      | Component.External m -> [ Component.Send (out_wire, m) ]
      | Component.Recv _ -> [])
  in
  let upper =
    Component.stateless ~name:"upper" (function
      | Component.Recv (0, m) -> [ Component.Send (1, String.uppercase_ascii m) ]
      | Component.Recv _ | Component.External _ -> [])
  in
  let sink =
    Component.stateless ~name:"sink" (function
      | Component.Recv (_, m) -> [ Component.Output m ]
      | Component.External _ -> [])
  in
  Topology.make
    ~parts:[ (a, fwd 0); (b, upper); (c, sink) ]
    ~wires:[ (a, b, capacity); (b, c, capacity) ]

let test_net_relay () =
  let net = Net.build (relay_topology ()) in
  Net.run net ~steps:6 ~externals:(fun n -> if n = 0 then [ (a, "hello") ] else []);
  Alcotest.(check (list string)) "delivered and transformed" [ "HELLO" ] (Net.outputs net c);
  Alcotest.(check int) "nothing left in flight" 0 (Net.in_flight net);
  Alcotest.(check int) "no drops" 0 (Net.drops net)

let test_kernel_relay () =
  let k = Kernel.build (relay_topology ()) in
  Kernel.run k ~steps:6 ~externals:(fun n -> if n = 0 then [ (a, "hello") ] else []);
  Alcotest.(check (list string)) "delivered and transformed" [ "HELLO" ] (Kernel.outputs k c);
  Alcotest.(check int) "kernel buffers drained" 0 (Kernel.buffered k);
  Alcotest.(check bool) "context switches happened" true (Kernel.context_switches k > 0);
  Alcotest.(check bool) "messages were copied through the kernel" true (Kernel.messages_copied k >= 4)

(* Sustained sends against a full wire: the surplus of every step is
   dropped and counted, and the receiver still sees each surviving word
   exactly once, in order. *)
let test_net_backpressure_sustained () =
  let net = Net.build (relay_topology ~capacity:1 ()) in
  for n = 0 to 9 do
    Net.step net ~externals:[ (a, Fmt.str "w%d" n); (a, Fmt.str "x%d" n) ]
  done;
  (* drain the pipeline *)
  Net.run net ~steps:6 ~externals:(fun _ -> []);
  Alcotest.(check bool) "sustained overflow counted" true (Net.drops net >= 10);
  let seen = Net.outputs net c in
  Alcotest.(check bool) "survivors delivered" true (List.length seen > 0);
  let sorted = List.sort compare seen in
  Alcotest.(check (list string)) "no duplication" (List.sort_uniq compare seen) sorted

(* A cut wire accepts sends silently forever: no delivery, no drop
   counter, no backpressure signal the sender could observe. *)
let test_net_cut_wire_sustained () =
  let topo = Sep_model.Topology.cut_wire (relay_topology ()) 0 in
  let net = Net.build topo in
  Net.run net ~steps:20 ~externals:(fun n -> [ (a, Fmt.str "m%d" n) ]);
  Alcotest.(check (list string)) "nothing ever arrives" [] (Net.outputs net c);
  Alcotest.(check int) "cut sends are not drops" 0 (Net.drops net);
  Alcotest.(check int) "nothing in flight" 0 (Net.in_flight net)

let test_net_tamper () =
  let net = Net.build (relay_topology ()) in
  Net.step net ~externals:[ (a, "keep"); (a, "mangle"); (a, "kill") ];
  let touched =
    Net.tamper net ~wire:0 (function
      | "keep" -> Some "keep"
      | "mangle" -> Some "MANGLED"
      | _ -> None)
  in
  Alcotest.(check int) "altered + destroyed" 2 touched;
  Alcotest.(check int) "destroyed counted as drop" 1 (Net.drops net);
  Net.run net ~steps:6 ~externals:(fun _ -> []);
  Alcotest.(check (list string)) "delivery reflects the tampering" [ "KEEP"; "MANGLED" ]
    (Net.outputs net c);
  Alcotest.check_raises "unknown wire" (Invalid_argument "Net.tamper: no such wire") (fun () ->
      ignore (Net.tamper net ~wire:9 (fun m -> Some m)))

let test_net_capacity_drops () =
  let net = Net.build (relay_topology ~capacity:1 ()) in
  (* two sends into a capacity-1 wire in one step: the second is dropped *)
  Net.step net ~externals:[ (a, "one"); (a, "two") ];
  Alcotest.(check int) "drop counted" 1 (Net.drops net)

let test_kernel_capacity_drops () =
  let k = Kernel.build (relay_topology ~capacity:1 ()) in
  Kernel.step k ~externals:[ (a, "one"); (a, "two") ];
  Alcotest.(check int) "drop counted" 1 (Kernel.drops k)

let test_cut_wire_blocks_delivery () =
  let topo = Topology.cut_wire (relay_topology ()) 0 in
  let net = Net.build topo in
  Net.run net ~steps:6 ~externals:(fun n -> if n = 0 then [ (a, "x") ] else []);
  Alcotest.(check (list string)) "net: nothing arrives" [] (Net.outputs net c);
  let k = Kernel.build topo in
  Kernel.run k ~steps:6 ~externals:(fun n -> if n = 0 then [ (a, "x") ] else []);
  Alcotest.(check (list string)) "kernel: nothing arrives" [] (Kernel.outputs k c)

let test_unowned_wire_send_dropped () =
  (* a component sending on a wire whose source is another box *)
  let rogue =
    Component.stateless ~name:"rogue" (function
      | Component.External _ -> [ Component.Send (1, "forged") ]
      | Component.Recv _ -> [])
  in
  let sink =
    Component.stateless ~name:"sink" (function
      | Component.Recv (_, m) -> [ Component.Output m ]
      | Component.External _ -> [])
  in
  let topo =
    Topology.make
      ~parts:[ (a, rogue); (b, sink); (c, sink) ]
      ~wires:[ (a, b, 4); (b, c, 4) ]
  in
  let net = Net.build topo in
  Net.run net ~steps:4 ~externals:(fun n -> if n = 0 then [ (a, "go") ] else []);
  Alcotest.(check (list string)) "net: forgery blocked" [] (Net.outputs net c);
  Alcotest.(check int) "net: counted" 1 (Net.drops net);
  let k = Kernel.build topo in
  Kernel.run k ~steps:4 ~externals:(fun n -> if n = 0 then [ (a, "go") ] else []);
  Alcotest.(check (list string)) "kernel: forgery blocked" [] (Kernel.outputs k c);
  Alcotest.(check int) "kernel: counted" 1 (Kernel.drops k)

(* -- E7: trace equivalence ----------------------------------------------------- *)

let traces_equal topo ~steps ~externals =
  let net = Net.build topo in
  let k = Kernel.build topo in
  Net.run net ~steps ~externals;
  Kernel.run k ~steps ~externals;
  List.for_all (fun col -> Net.trace net col = Kernel.trace k col) (Topology.colours topo)

let test_e7_relay () =
  let externals n = if n mod 2 = 0 && n < 10 then [ (a, Fmt.str "m%d" n) ] else [] in
  Alcotest.(check bool) "relay traces equal" true
    (traces_equal (relay_topology ()) ~steps:20 ~externals)

let test_e7_snfe () =
  let topo = Sep_snfe.Snfe.topology Sep_snfe.Snfe.default_config in
  let externals n =
    if n < 4 then [ (Sep_snfe.Snfe.red, Fmt.str "packet %d" n) ]
    else if n = 5 then [ (Sep_snfe.Snfe.black, "PKT HDR seq=0 len=3|3|aabbcc") ]
    else []
  in
  Alcotest.(check bool) "snfe traces equal" true (traces_equal topo ~steps:25 ~externals)

let test_e7_mls () =
  let topo = Sep_apps.Mls.topology () in
  let externals n =
    List.filter_map
      (fun (s, c, m) -> if s = n then Some (c, m) else None)
      Sep_apps.Mls.demo_script
  in
  Alcotest.(check bool) "mls traces equal" true (traces_equal topo ~steps:50 ~externals)

let test_e7_detects_kernel_bugs () =
  (* a kernel that fails at its one job must be caught by the equivalence *)
  let externals n = if n < 6 then [ (a, Fmt.str "m%d" n) ] else [] in
  List.iter
    (fun bug ->
      let topo = relay_topology () in
      let net = Net.build topo in
      let k = Kernel.build ~bugs:[ bug ] topo in
      Net.run net ~steps:15 ~externals;
      Kernel.run k ~steps:15 ~externals;
      let equal =
        List.for_all (fun col -> Net.trace net col = Kernel.trace k col) (Topology.colours topo)
      in
      Alcotest.(check bool)
        (Fmt.str "%a breaks indistinguishability" Kernel.pp_bug bug)
        false equal)
    Kernel.all_bugs

(* Random workloads over a randomly-wired topology. *)
let e7_random =
  QCheck.Test.make ~name:"random workloads: kernelized = distributed" ~count:30
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      (* random 3-component topology with 2-4 wires *)
      let cols = [| a; b; c |] in
      let bounce =
        Component.make ~name:"bounce" ~init:0 ~step:(fun n ev ->
            match ev with
            | Component.External m -> (n + 1, [ Component.Send (n mod 4, m) ])
            | Component.Recv (w, m) ->
              if String.length m > 6 then (n, [ Component.Output m ])
              else (n + 1, [ Component.Send ((n + w) mod 4, m ^ "!") ]))
      in
      let wire _ =
        let src = Prng.int rng 3 in
        let dst = (src + 1 + Prng.int rng 2) mod 3 in
        (cols.(src), cols.(dst), 1 + Prng.int rng 3)
      in
      let wires = List.init (2 + Prng.int rng 3) wire in
      let topo = Topology.make ~parts:[ (a, bounce); (b, bounce); (c, bounce) ] ~wires in
      let script =
        List.init 12 (fun i -> (i, cols.(Prng.int rng 3), Fmt.str "w%d" (Prng.int rng 10)))
      in
      let externals n =
        List.filter_map (fun (s, col, m) -> if s = n then Some (col, m) else None) script
      in
      traces_equal topo ~steps:30 ~externals)

let () =
  Alcotest.run "substrates"
    [
      ( "distributed net",
        [
          Alcotest.test_case "relay" `Quick test_net_relay;
          Alcotest.test_case "capacity drops" `Quick test_net_capacity_drops;
          Alcotest.test_case "sustained backpressure" `Quick test_net_backpressure_sustained;
          Alcotest.test_case "cut wire under sustained sends" `Quick test_net_cut_wire_sustained;
          Alcotest.test_case "wire tamper" `Quick test_net_tamper;
        ] );
      ( "regime kernel",
        [
          Alcotest.test_case "relay" `Quick test_kernel_relay;
          Alcotest.test_case "capacity drops" `Quick test_kernel_capacity_drops;
        ] );
      ( "isolation mechanics",
        [
          Alcotest.test_case "cut wire" `Quick test_cut_wire_blocks_delivery;
          Alcotest.test_case "unowned wire" `Quick test_unowned_wire_send_dropped;
        ] );
      ( "indistinguishability (E7)",
        [
          Alcotest.test_case "relay" `Quick test_e7_relay;
          Alcotest.test_case "snfe" `Quick test_e7_snfe;
          Alcotest.test_case "mls" `Quick test_e7_mls;
          Alcotest.test_case "detects kernel bugs" `Quick test_e7_detects_kernel_bugs;
          qtest e7_random;
        ] );
    ]
