(* Tests for Sep_par and the determinism contract of the parallel
   drivers: results must be byte-identical for any job count, seeded
   randomness must be shard-invariant, and telemetry must survive
   worker-domain merges. *)

module Par = Sep_par.Par
module Prng = Sep_util.Prng
module Telemetry = Sep_obs.Telemetry
module Span = Sep_obs.Span
module Scenarios = Sep_core.Scenarios
module Randomized = Sep_core.Randomized
module Separability = Sep_core.Separability
module Campaign = Sep_robust.Campaign
module Fuzz = Sep_check.Fuzz
module Score = Sep_check.Score

let check = Alcotest.check

let job_counts = [ 1; 2; 8 ]

(* -- the executor ---------------------------------------------------------- *)

let test_map_order () =
  List.iter
    (fun jobs ->
      let xs = List.init 100 (fun i -> i) in
      check (Alcotest.list Alcotest.int)
        (Fmt.str "map -j%d preserves order" jobs)
        (List.map (fun x -> x * x) xs)
        (Par.map ~jobs (fun x -> x * x) xs))
    (job_counts @ [ 3; 200 ])

let test_map_empty_and_singleton () =
  check (Alcotest.list Alcotest.int) "empty" [] (Par.map ~jobs:8 (fun x -> x) []);
  check (Alcotest.list Alcotest.int) "singleton" [ 7 ] (Par.map ~jobs:8 (fun x -> x + 6) [ 1 ])

let test_mapi_indices () =
  List.iter
    (fun jobs ->
      check (Alcotest.list Alcotest.int)
        (Fmt.str "mapi -j%d passes indices" jobs)
        [ 10; 21; 32; 43; 54 ]
        (Par.mapi ~jobs (fun i x -> (i * 10) + x) [ 10; 11; 12; 13; 14 ]))
    job_counts

let test_map_seeded_invariant () =
  let draw rng () = Prng.int rng 1_000_000 in
  let work = List.init 40 (fun _ -> ()) in
  let runs = List.map (fun jobs -> Par.map_seeded ~jobs ~seed:42 draw work) job_counts in
  match runs with
  | first :: rest ->
    List.iter
      (fun r -> check (Alcotest.list Alcotest.int) "seeded draws are jobs-invariant" first r)
      rest
  | [] -> assert false

let test_map_seeded_matches_stream () =
  let got = Par.map_seeded ~jobs:4 ~seed:5 (fun rng () -> Prng.int rng 1000) (List.init 8 (fun _ -> ())) in
  let want = List.init 8 (fun i -> Prng.int (Prng.stream 5 i) 1000) in
  check (Alcotest.list Alcotest.int) "task i draws from stream (seed, i)" want got

exception Boom of int

let test_exception_lowest_index () =
  List.iter
    (fun jobs ->
      match Par.mapi ~jobs (fun i () -> if i mod 3 = 2 then raise (Boom i) else i) (List.init 20 (fun _ -> ())) with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i -> check Alcotest.int (Fmt.str "-j%d re-raises the first failure" jobs) 2 i)
    job_counts

let test_counters_move () =
  let shards0 = Telemetry.counter_value (Telemetry.counter Par.registry "par.shards") in
  let tasks0 = Telemetry.counter_value (Telemetry.counter Par.registry "par.tasks") in
  ignore (Par.map ~jobs:4 (fun x -> x) (List.init 10 (fun i -> i)));
  let shards1 = Telemetry.counter_value (Telemetry.counter Par.registry "par.shards") in
  let tasks1 = Telemetry.counter_value (Telemetry.counter Par.registry "par.tasks") in
  check Alcotest.int "3 worker shards spawned" 3 (shards1 - shards0);
  check Alcotest.int "10 tasks accounted" 10 (tasks1 - tasks0)

let test_span_merge () =
  Span.set_enabled true;
  let h = Span.make "test-par-merge" in
  let spans () = Telemetry.count (Telemetry.histogram (Span.local ()) "span.test-par-merge") in
  let before = spans () in
  ignore (Par.map ~jobs:4 (fun x -> Span.time h (fun () -> x + 1)) (List.init 12 (fun i -> i)));
  Span.set_enabled false;
  check Alcotest.int "worker spans merged into the spawner registry" 12 (spans () - before)

(* Nested spans opened on worker domains must all land in the spawner's
   registry after the merge, inner and outer alike. *)
let test_span_merge_nested () =
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) @@ fun () ->
  let outer = Span.make "test-par-outer" and inner = Span.make "test-par-inner" in
  let count name = Telemetry.count (Telemetry.histogram (Span.local ()) ("span." ^ name)) in
  let outer0 = count "test-par-outer" and inner0 = count "test-par-inner" in
  ignore
    (Par.map ~jobs:4
       (fun x ->
         Span.time outer (fun () ->
             Span.time inner (fun () -> x + 1) + Span.time inner (fun () -> x + 2)))
       (List.init 12 (fun i -> i)));
  check Alcotest.int "outer spans merged" 12 (count "test-par-outer" - outer0);
  check Alcotest.int "inner spans merged (two per task)" 24 (count "test-par-inner" - inner0)

(* Spawned worker domains appear in the flight recorder as fork->shard
   flow edges: one fork per spawned domain on the spawner, closed by the
   shard that runs on the worker, with matching ids. *)
let test_par_trace_flows () =
  let module Trace = Sep_obs.Trace in
  Trace.set_capacity 1024;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity 4096)
  @@ fun () ->
  ignore (Par.map ~jobs:4 (fun x -> x * 2) (List.init 20 (fun i -> i)));
  let events = List.filter (fun e -> e.Trace.cat = "par") (Trace.recorded ()) in
  let starts = List.filter (fun e -> e.Trace.phase = Trace.Flow_start) events in
  let ends = List.filter (fun e -> e.Trace.phase = Trace.Flow_end) events in
  check Alcotest.int "one fork per spawned domain" 3 (List.length starts);
  check Alcotest.int "every fork is joined by its shard" 3 (List.length ends);
  let ids l = List.sort compare (List.map (fun e -> e.Trace.id) l) in
  check (Alcotest.list Alcotest.int) "forks and shards pair by id" (ids starts) (ids ends);
  Alcotest.(check bool) "flow ids are nonzero" true (List.for_all (fun i -> i <> 0) (ids starts))

(* -- the PRNG bugfixes ----------------------------------------------------- *)

(* Rejection sampling makes [Prng.int] exactly uniform; a chi-squared test
   over a non-power-of-two bound catches the old [mod]-bias regressing.
   With 7 cells and 70_000 draws the 99.9% critical value for 6 degrees
   of freedom is 22.46; the statistic concentrates near 6, so this is a
   stable deterministic check, not a flaky tail test. *)
let test_int_unbiased_chi_squared () =
  let bound = 7 and draws = 70_000 in
  let rng = Prng.create 42 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let v = Prng.int rng bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  if chi2 > 22.46 then
    Alcotest.failf "chi-squared %.2f exceeds the 99.9%% critical value 22.46" chi2

(* Small seeds must not produce correlated first draws: the creation mix
   separates seeds 0 and 1 (the raw SplitMix64 states differ by one bit
   pre-mix). *)
let test_small_seeds_mixed () =
  let firsts = List.init 16 (fun seed -> Prng.int (Prng.create seed) 1_000_000_007) in
  let distinct = List.sort_uniq compare firsts in
  check Alcotest.int "16 small seeds give 16 distinct first draws" 16 (List.length distinct);
  let zero = Prng.create 0 in
  let draws = List.init 8 (fun _ -> Prng.int zero 256) in
  Alcotest.(check bool) "seed 0 is not stuck near zero" true (List.exists (fun v -> v > 0) draws)

let test_stream_independent () =
  let a = List.init 20 (fun _ -> Prng.int (Prng.stream 42 0) 1000) in
  ignore a;
  let s0 = Prng.stream 42 0 and s1 = Prng.stream 42 1 in
  let d0 = List.init 20 (fun _ -> Prng.int s0 1_000_000) in
  let d1 = List.init 20 (fun _ -> Prng.int s1 1_000_000) in
  Alcotest.(check bool) "adjacent streams differ" false (d0 = d1);
  let s0' = Prng.stream 42 0 in
  let d0' = List.init 20 (fun _ -> Prng.int s0' 1_000_000) in
  check (Alcotest.list Alcotest.int) "streams replay" d0 d0'

(* -- driver determinism across job counts ----------------------------------- *)

let jobs_invariant name render =
  match List.map render job_counts with
  | first :: rest ->
    List.iteri
      (fun i r ->
        check Alcotest.string
          (Fmt.str "%s: -j%d identical to -j1" name (List.nth job_counts (i + 1)))
          first r)
      rest
  | [] -> assert false

let test_campaign_deterministic () =
  List.iter
    (fun seed ->
      jobs_invariant
        (Fmt.str "campaign seed %d" seed)
        (fun jobs -> Campaign.report_to_jsonl (Campaign.run ~jobs ~seed ~steps:40 ~count:6 ())))
    [ 42; 1; 7 ]

let test_recovery_campaign_deterministic () =
  jobs_invariant "recovery campaign" (fun jobs ->
      Campaign.report_to_jsonl (Campaign.run_recovery ~jobs ~seed:42 ~steps:40 ~count:6 ()))

let test_fuzz_deterministic () =
  List.iter
    (fun seed ->
      jobs_invariant
        (Fmt.str "fuzz seed %d" seed)
        (fun jobs ->
          Fuzz.scenario_result_to_jsonl
            (Fuzz.fuzz_scenario ~jobs ~seed ~budget:30 Scenarios.pipeline)))
    [ 42; 1; 7 ]

let test_score_deterministic () =
  let render jobs =
    Score.kill_table ~jobs ~seed:42 ~budget:30 ()
    |> List.map (fun k -> Fmt.str "%a" Score.pp_kill k)
    |> String.concat "\n"
  in
  jobs_invariant "kill table" render

let test_randomized_deterministic () =
  let params = { Randomized.walks = 6; walk_len = 24; scrambles = 2 } in
  List.iter
    (fun seed ->
      jobs_invariant
        (Fmt.str "randomized seed %d" seed)
        (fun jobs ->
          Fmt.str "%a" Separability.pp_report
            (Randomized.check ~jobs ~params ~seed
               ~inputs:Scenarios.pipeline.Scenarios.alphabet Scenarios.pipeline.Scenarios.cfg)))
    [ 42; 1; 7 ]

(* walks = n+1 extends walks = n: per-walk streams make the sample a
   prefix in walk order *)
let test_randomized_prefix_extension () =
  let params n = { Randomized.walks = n; walk_len = 16; scrambles = 1 } in
  let walks n =
    Randomized.sampled_walks ~params:(params n) ~seed:11
      ~inputs:Scenarios.pipeline.Scenarios.alphabet Scenarios.pipeline.Scenarios.cfg
  in
  let small = walks 3 and big = walks 4 in
  check Alcotest.int "3 walks" 3 (List.length small);
  check Alcotest.int "4 walks" 4 (List.length big);
  List.iteri
    (fun i w ->
      Alcotest.(check bool) (Fmt.str "walk %d unchanged" i) true (List.nth big i = w))
    small

let () =
  Alcotest.run "sep_par"
    [
      ( "executor",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "empty and singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "mapi indices" `Quick test_mapi_indices;
          Alcotest.test_case "seeded map is jobs-invariant" `Quick test_map_seeded_invariant;
          Alcotest.test_case "seeded map uses indexed streams" `Quick test_map_seeded_matches_stream;
          Alcotest.test_case "lowest-index exception wins" `Quick test_exception_lowest_index;
          Alcotest.test_case "executor counters" `Quick test_counters_move;
          Alcotest.test_case "worker span merge" `Quick test_span_merge;
          Alcotest.test_case "nested span merge" `Quick test_span_merge_nested;
          Alcotest.test_case "task flow edges traced" `Quick test_par_trace_flows;
        ] );
      ( "prng",
        [
          Alcotest.test_case "int is unbiased (chi-squared)" `Quick test_int_unbiased_chi_squared;
          Alcotest.test_case "small seeds are well mixed" `Quick test_small_seeds_mixed;
          Alcotest.test_case "indexed streams" `Quick test_stream_independent;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "campaign" `Slow test_campaign_deterministic;
          Alcotest.test_case "recovery campaign" `Slow test_recovery_campaign_deterministic;
          Alcotest.test_case "fuzz" `Slow test_fuzz_deterministic;
          Alcotest.test_case "kill table" `Slow test_score_deterministic;
          Alcotest.test_case "randomized walks" `Quick test_randomized_deterministic;
          Alcotest.test_case "walk prefix extension" `Quick test_randomized_prefix_extension;
        ] );
    ]
