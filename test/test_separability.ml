(* Tests for Proof of Separability: the correct kernel verifies, every
   mutant is caught by its predicted condition, wire-cutting behaves as
   the paper argues, and the randomized checker agrees with the
   exhaustive one. *)

module Scenarios = Sep_core.Scenarios
module Sue = Sep_core.Sue
module Separability = Sep_core.Separability
module Mutants = Sep_core.Mutants
module Randomized = Sep_core.Randomized
module Config = Sep_core.Config

let exhaustive ?bugs (inst : Scenarios.instance) =
  let sys = Sue.to_system ?bugs ~inputs:inst.alphabet inst.cfg in
  Separability.check sys

(* E1: the six conditions hold exhaustively for the correct kernel. *)
let test_correct_kernel_verifies (inst : Scenarios.instance) () =
  let r = exhaustive inst in
  Alcotest.(check bool)
    (Fmt.str "%s verified (%d states)" inst.label r.Separability.states)
    true (Separability.verified r);
  Alcotest.(check bool) "did real work" true (r.Separability.checks > 1000)

(* E4: each seeded bug is caught, and by the predicted condition. *)
let test_mutant (e : Mutants.expectation) () =
  let r = Mutants.run e in
  Alcotest.(check bool) "kernel bug detected" false (Separability.verified r);
  Alcotest.(check bool)
    (Fmt.str "condition %d among %s" e.primary
       (String.concat "," (List.map string_of_int (Separability.failing_conditions r))))
    true (Mutants.detected e r)

(* E5: the uncut system is not separable — both channel ends flag it. *)
let test_uncut_fails () =
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~inputs:inst.alphabet (Config.cut_none inst.cfg) in
  let r = Separability.check sys in
  Alcotest.(check bool) "uncut system rejected" false (Separability.verified r);
  let conds = Separability.failing_conditions r in
  Alcotest.(check bool) "the shared buffer shows up as interference" true (List.mem 2 conds)

(* Condition 2's connected-system weakening: with [sanction_channels] the
   uncut pipeline verifies, because every interference the checker sees is
   confined to the declared channel's contents. *)
let test_sanctioned_uncut_verifies () =
  let inst = Scenarios.pipeline in
  let sys =
    Sue.to_system ~sanction_channels:true ~inputs:inst.alphabet (Config.cut_none inst.cfg)
  in
  let r = Separability.check sys in
  Alcotest.(check bool)
    (Fmt.str "sanctioned uncut pipeline verified (%d states)" r.Separability.states)
    true (Separability.verified r)

(* The sanction covers interference in both directions across an uncut
   ring: the sender perturbs the receiver's view (data arrives) and the
   receiver perturbs the sender's (capacity frees up). Two opposed uncut
   channels exercise both at once. *)
let test_sanctioned_both_directions () =
  let module Isa = Sep_hw.Isa in
  let i x = Isa.Instr x in
  let prog mine other =
    [
      i (Isa.Loadi (0, mine));
      i (Isa.Loadi (1, 40 + mine));
      i (Isa.Trap 1);
      i (Isa.Loadi (0, other));
      i (Isa.Trap 2);
      i (Isa.Trap 0);
      i Isa.Halt;
    ]
  in
  let module Colour = Sep_model.Colour in
  let regime colour program = { Config.colour; part_size = 16; program; devices = [] } in
  let cfg =
    Config.make
      ~regimes:[ regime Colour.red (prog 0 1); regime Colour.black (prog 1 0) ]
      ~channels:[ (Colour.red, Colour.black, 1); (Colour.black, Colour.red, 1) ]
      ()
  in
  let strict = Separability.check (Sue.to_system ~inputs:[ [] ] cfg) in
  Alcotest.(check bool) "strict reading flags both uncut rings" false
    (Separability.verified strict);
  Alcotest.(check bool) "as condition 2" true
    (List.mem 2 (Separability.failing_conditions strict));
  let sanctioned =
    Separability.check (Sue.to_system ~sanction_channels:true ~inputs:[ [] ] cfg)
  in
  Alcotest.(check bool) "sanction accepts interference both ways" true
    (Separability.verified sanctioned)

(* The sanction is narrow: interference that is not confined to declared
   channel contents — here a register smuggled across a context switch —
   is still rejected. *)
let test_sanction_rejects_noise_outside_channels () =
  let inst = Scenarios.pipeline in
  let sys =
    Sue.to_system ~bugs:[ Sue.Partition_hole ] ~sanction_channels:true ~inputs:inst.alphabet
      (Config.cut_none inst.cfg)
  in
  let r = Separability.check sys in
  Alcotest.(check bool) "partition hole not sanctioned" false (Separability.verified r)

(* On a fully cut configuration the sanction never fires: both readings
   coincide, so turning it on cannot mask a genuine violation there. *)
let test_sanction_noop_when_cut () =
  let inst = Scenarios.pipeline in
  let sys =
    Sue.to_system ~sanction_channels:true ~inputs:inst.alphabet (Config.cut_all inst.cfg)
  in
  Alcotest.(check bool) "cut + sanction verifies" true
    (Separability.verified (Separability.check sys));
  let buggy =
    Sue.to_system ~bugs:[ Sue.Output_leak ] ~sanction_channels:true ~inputs:inst.alphabet
      (Config.cut_all inst.cfg)
  in
  Alcotest.(check bool) "cut + sanction still catches a leak" false
    (Separability.verified (Separability.check buggy))

(* Pin the default: omitting the flag is the strict reading (E5). *)
let test_sanction_off_by_default () =
  let inst = Scenarios.pipeline in
  let implicit =
    Separability.check (Sue.to_system ~inputs:inst.alphabet (Config.cut_none inst.cfg))
  in
  let explicit =
    Separability.check
      (Sue.to_system ~sanction_channels:false ~inputs:inst.alphabet (Config.cut_none inst.cfg))
  in
  Alcotest.(check bool) "implicit default is strict" false (Separability.verified implicit);
  Alcotest.(check (list int)) "explicit false agrees"
    (Separability.failing_conditions implicit)
    (Separability.failing_conditions explicit)

let test_cut_verifies () =
  (* cut_all of an already-cut config is idempotent and verified *)
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~inputs:inst.alphabet (Config.cut_all inst.cfg) in
  Alcotest.(check bool) "cut system verified" true (Separability.verified (Separability.check sys))

let test_report_counts () =
  let r = exhaustive Scenarios.interrupt in
  Alcotest.(check bool) "states positive" true (r.Separability.states > 100);
  Alcotest.(check (list int)) "no failing conditions" [] (Separability.failing_conditions r)

let test_max_failures_caps () =
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~bugs:[ Sue.Partition_hole ] ~inputs:inst.alphabet inst.cfg in
  let r = Separability.check ~max_failures:3 sys in
  Alcotest.(check int) "failure cap respected" 3 (List.length r.Separability.failures)

let test_state_limit () =
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~inputs:inst.alphabet inst.cfg in
  Alcotest.check_raises "limit enforced" (Failure "System.reachable: state limit exceeded")
    (fun () -> ignore (Separability.check ~state_limit:50 sys))

(* E10: randomized checking on the same instances. *)
let test_randomized_correct () =
  let inst = Scenarios.pipeline in
  let r = Randomized.check ~seed:99 ~inputs:inst.alphabet inst.cfg in
  Alcotest.(check bool) "randomized verifies correct kernel" true (Separability.verified r)

let test_randomized_mutants () =
  List.iter
    (fun (e : Mutants.expectation) ->
      let r =
        Randomized.check ~bugs:[ e.bug ] ~seed:99 ~inputs:e.scenario.Scenarios.alphabet
          e.scenario.Scenarios.cfg
      in
      Alcotest.(check bool)
        (Fmt.str "randomized catches %a" Sue.pp_bug e.bug)
        true (Mutants.detected e r))
    Mutants.catalogue

let test_pairwise_agrees_with_bucketed () =
  let inst = Scenarios.pipeline in
  let params = { Randomized.walks = 3; walk_len = 32; scrambles = 1 } in
  let check_both bugs =
    let states = Randomized.sample_states ~bugs ~params ~seed:5 ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
    let sys = Sue.to_system ~bugs ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
    let fast = Separability.check_states sys states in
    let slow = Separability.check_states_pairwise sys states in
    Alcotest.(check bool)
      (Fmt.str "verdicts agree (%d bugs)" (List.length bugs))
      (Separability.verified fast) (Separability.verified slow);
    Alcotest.(check (list int)) "failing conditions agree"
      (Separability.failing_conditions fast)
      (Separability.failing_conditions slow)
  in
  check_both [];
  check_both [ Sue.Output_leak ];
  check_both [ Sue.Input_crosstalk ]

let test_randomized_scaling_instance () =
  (* The scaled instance family used by E10 is itself verified. *)
  let inst = Scenarios.scaled ~regimes:3 ~counter_bits:2 in
  let r = Randomized.check ~seed:3 ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
  Alcotest.(check bool) "scaled instance verified" true (Separability.verified r)

let test_scaled_exhaustive () =
  let inst = Scenarios.scaled ~regimes:2 ~counter_bits:2 in
  let sys = Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
  let r = Separability.check sys in
  Alcotest.(check bool) "scaled exhaustive verified" true (Separability.verified r)

(* E13: the kernel as machine code — implementation-level verification. *)
let test_assembly_kernel_verifies () =
  List.iter
    (fun (inst : Scenarios.instance) ->
      let sys = Sue.to_system ~impl:Sue.Assembly ~inputs:inst.alphabet inst.cfg in
      let r = Separability.check sys in
      Alcotest.(check bool)
        (Fmt.str "machine-code kernel verified on %s" inst.label)
        true (Separability.verified r))
    [ Scenarios.interrupt; Scenarios.snfe_micro ]

let test_assembly_pipeline_verifies () =
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~impl:Sue.Assembly ~inputs:inst.alphabet inst.cfg in
  Alcotest.(check bool) "machine-code kernel verified on pipeline" true
    (Separability.verified (Separability.check sys))

let test_assembly_randomized () =
  let inst = Scenarios.pipeline in
  let clean =
    Randomized.check ~impl:Sue.Assembly ~seed:77 ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg
  in
  Alcotest.(check bool) "randomized PoS verifies the machine-code kernel" true
    (Separability.verified clean);
  let buggy =
    Randomized.check ~impl:Sue.Assembly ~bugs:[ Sue.Forget_register_save ] ~seed:77
      ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg
  in
  Alcotest.(check bool) "and catches a bug compiled into the assembly" true
    (List.mem 1 (Separability.failing_conditions buggy))

let test_assembly_mutants_caught () =
  List.iter
    (fun (e : Mutants.expectation) ->
      let r =
        Separability.check ~max_failures:3
          (Sue.to_system ~impl:Sue.Assembly ~bugs:[ e.bug ]
             ~inputs:e.scenario.Scenarios.alphabet e.scenario.Scenarios.cfg)
      in
      Alcotest.(check bool)
        (Fmt.str "assembly kernel: %a -> condition %d" Sue.pp_bug e.bug e.primary)
        true (Mutants.detected e r))
    Mutants.catalogue

(* -- whole-trace simulation ----------------------------------------------------- *)

(* The commutative diagrams compose: replaying each regime's private
   machine (Abstract_regime) along the schedule observed on the shared
   machine must reproduce the regime's abstraction of the shared run at
   every step. This is the end-to-end "each regime runs on its own
   machine" statement, checked over whole random executions. *)
let simulation_holds ?(impl = Sue.Microcode) (inst : Scenarios.instance) seed steps =
  let module AR = Sep_core.Abstract_regime in
  let module Prng = Sep_util.Prng in
  let rng = Prng.create seed in
  let alphabet = Array.of_list inst.Scenarios.alphabet in
  let t = Sue.build ~impl inst.Scenarios.cfg in
  let colours = Sep_core.Config.colours inst.Scenarios.cfg in
  let abs = ref (List.map (fun c -> (c, Sue.phi t c)) colours) in
  let ok = ref true in
  for _ = 1 to steps do
    let input = Sep_util.Prng.choose rng alphabet in
    (* the private machines see only their own arrivals, by slot *)
    abs :=
      List.map
        (fun (c, a) ->
          let mine =
            List.filter_map
              (fun (d, w) ->
                let owner, slot = Sue.device_slot t d in
                if Sep_model.Colour.equal owner c then Some (slot, w) else None)
              input
          in
          (c, AR.input_stage a mine))
        !abs;
    Sue.deliver_inputs t input;
    (* the regime holding the processor advances its private machine *)
    let active = Sue.current_colour t in
    let active_runnable = Sue.regime_status t active = AR.Running in
    Sue.exec_op t;
    abs :=
      List.map
        (fun (c, a) ->
          if Sep_model.Colour.equal c active && active_runnable then (c, AR.step a) else (c, a))
        !abs;
    List.iter
      (fun (c, a) -> if not (AR.equal a (Sue.phi t c)) then ok := false)
      !abs
  done;
  !ok

let trace_simulation ?impl ?(tag = "") inst =
  QCheck.Test.make
    ~name:(Fmt.str "private machines replay the %s%s run" inst.Scenarios.label tag)
    ~count:25
    QCheck.small_int
    (fun seed -> simulation_holds ?impl inst seed 120)

(* -- random kernel configurations --------------------------------------------- *)

(* The separability argument is about the kernel, not about the programs it
   hosts: arbitrary regime code (including code that faults, halts, traps
   garbage or loops) must still be verifiable. Generate random programs and
   check them with randomized PoS. *)

module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Prng = Sep_util.Prng
module Colour = Sep_model.Colour

let random_instr rng =
  let r () = Prng.int rng 8 in
  match Prng.int rng 13 with
  | 0 -> Isa.Nop
  | 1 -> Isa.Halt
  | 2 -> Isa.Trap (Prng.int rng 4)
  | 3 -> Isa.Loadi (r (), Prng.int rng 256)
  | 4 -> Isa.Load (r (), r (), Prng.int rng 8)
  | 5 -> Isa.Store (r (), r (), Prng.int rng 8)
  | 6 -> Isa.Mov (r (), r ())
  | 7 -> Isa.Add (r (), r ())
  | 8 -> Isa.Xor (r (), r ())
  | 9 -> Isa.Cmp (r (), r ())
  | 10 -> Isa.Shl (r (), Prng.int rng 16)
  | 11 -> Isa.Beq (Prng.int_in rng (-3) 3)
  | _ -> Isa.Br (Prng.int_in rng (-3) 3)

let random_config seed =
  let rng = Prng.create seed in
  let program () = List.init 12 (fun _ -> Sep_hw.Isa.Instr (random_instr rng)) in
  Config.make
    ~regimes:
      [
        {
          Config.colour = Colour.red;
          part_size = 16;
          program = program ();
          devices = [ Machine.Rx; Machine.Tx ];
        };
        {
          Config.colour = Colour.black;
          part_size = 16;
          program = program ();
          devices = [ Machine.Rx ];
        };
      ]
    ~channels:[ (Colour.red, Colour.black, 1) ]
    ()
  |> Config.cut_all

let random_kernels_verify =
  QCheck.Test.make ~name:"random regime programs pass randomized PoS" ~count:15
    QCheck.small_int
    (fun seed ->
      let cfg = random_config seed in
      let r =
        Randomized.check
          ~params:{ Randomized.walks = 4; walk_len = 48; scrambles = 2 }
          ~seed:(seed + 1) ~inputs:[ []; [ (0, 1) ]; [ (2, 1) ] ] cfg
      in
      Separability.verified r)

let random_programs_on_machine_code_kernel =
  QCheck.Test.make ~name:"random regime programs pass randomized PoS on the machine-code kernel"
    ~count:10 QCheck.small_int
    (fun seed ->
      let cfg = random_config seed in
      let r =
        Randomized.check ~impl:Sue.Assembly
          ~params:{ Randomized.walks = 3; walk_len = 40; scrambles = 2 }
          ~seed:(seed + 1) ~inputs:[ []; [ (0, 1) ]; [ (2, 1) ] ] cfg
      in
      Separability.verified r)

let random_kernels_catch_bugs =
  QCheck.Test.make ~name:"random programs + partition-hole bug is still caught" ~count:10
    QCheck.small_int
    (fun seed ->
      (* the hole manifests whenever a context switch occurs with nonzero
         R0; random spin programs trap often, so detection is expected *)
      let cfg = random_config seed in
      let r =
        Randomized.check ~bugs:[ Sue.Partition_hole ]
          ~params:{ Randomized.walks = 4; walk_len = 48; scrambles = 2 }
          ~seed:(seed + 1) ~inputs:[ []; [ (0, 1 + (seed mod 7)) ]; [ (2, 1) ] ] cfg
      in
      (* either caught, or this particular program pair never switched with
         distinguishable state — accept a clean report only if the correct
         kernel on the same walk is also clean (sanity) *)
      (not (Separability.verified r))
      ||
      let clean =
        Randomized.check
          ~params:{ Randomized.walks = 4; walk_len = 48; scrambles = 2 }
          ~seed:(seed + 1) ~inputs:[ []; [ (0, 1 + (seed mod 7)) ]; [ (2, 1) ] ] cfg
      in
      Separability.verified clean)

let random_kernels_exhaustive =
  (* the strongest form: whole reachable-space checking of random programs.
     Some random programs explore enormous spaces (free-running counters);
     those abort on the state limit, which is not a verdict. None may FAIL. *)
  QCheck.Test.make ~name:"random regime programs pass exhaustive PoS (or exceed the limit)"
    ~count:8 QCheck.small_int
    (fun seed ->
      let cfg = random_config seed in
      let sys = Sue.to_system ~inputs:[ []; [ (0, 1) ]; [ (2, 1) ] ] cfg in
      match Separability.check ~state_limit:120_000 sys with
      | report -> Separability.verified report
      | exception Failure _ -> true (* state limit: no verdict, not a failure *))

(* -- E11: black-box noninterference vs the six conditions -------------------- *)

let ni_check bugs =
  let inst = Scenarios.pipeline in
  let sys = Sue.to_system ~bugs ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
  let t = Sue.build ~bugs inst.Scenarios.cfg in
  Sep_core.Noninterference.check
    ~prng:(Sep_util.Prng.create 1981)
    ~trials:30 ~word_len:50
    ~splice:(Sep_core.Noninterference.sue_splice t)
    sys

let test_ni_correct_kernel_clean () =
  Alcotest.(check bool) "no interference observable" true
    (Sep_core.Noninterference.interference_free (ni_check []))

let test_ni_catches_output_leak () =
  Alcotest.(check bool) "output crosstalk diverges traces" false
    (Sep_core.Noninterference.interference_free (ni_check [ Sue.Output_leak ]))

let test_ni_misses_internal_flaws () =
  (* the gap the paper argues: these are state flaws PoS catches (see the
     mutant cases above) but finite I/O testing cannot see *)
  List.iter
    (fun bug ->
      Alcotest.(check bool)
        (Fmt.str "%a invisible to I/O testing" Sue.pp_bug bug)
        true
        (Sep_core.Noninterference.interference_free (ni_check [ bug ])))
    [ Sue.Forget_register_save; Sue.Partition_hole; Sue.Uncut_channel ]

let mutant_cases =
  List.map
    (fun (e : Mutants.expectation) ->
      Alcotest.test_case (Fmt.str "%a -> condition %d" Sue.pp_bug e.bug e.primary) `Slow
        (test_mutant e))
    Mutants.catalogue

let () =
  Alcotest.run "separability"
    [
      ( "correct kernels (E1)",
        [
          Alcotest.test_case "pipeline" `Slow (test_correct_kernel_verifies Scenarios.pipeline);
          Alcotest.test_case "interrupt" `Quick (test_correct_kernel_verifies Scenarios.interrupt);
          Alcotest.test_case "scaled" `Quick test_scaled_exhaustive;
          Alcotest.test_case "report counts" `Quick test_report_counts;
        ] );
      ("mutants (E4)", mutant_cases);
      ( "wire-cutting (E5)",
        [
          Alcotest.test_case "uncut fails" `Slow test_uncut_fails;
          Alcotest.test_case "cut verifies" `Slow test_cut_verifies;
        ] );
      ( "sanctioned channels",
        [
          Alcotest.test_case "uncut verifies under sanction" `Slow test_sanctioned_uncut_verifies;
          Alcotest.test_case "both directions sanctioned" `Quick test_sanctioned_both_directions;
          Alcotest.test_case "noise outside channels rejected" `Slow
            test_sanction_rejects_noise_outside_channels;
          Alcotest.test_case "no-op on cut configs" `Slow test_sanction_noop_when_cut;
          Alcotest.test_case "off by default" `Slow test_sanction_off_by_default;
        ] );
      ( "checker mechanics",
        [
          Alcotest.test_case "max failures" `Quick test_max_failures_caps;
          Alcotest.test_case "state limit" `Quick test_state_limit;
        ] );
      ( "machine-code kernel (E13)",
        [
          Alcotest.test_case "small scenarios verify" `Quick test_assembly_kernel_verifies;
          Alcotest.test_case "pipeline verifies" `Slow test_assembly_pipeline_verifies;
          Alcotest.test_case "randomized checking" `Quick test_assembly_randomized;
          Alcotest.test_case "all mutants caught" `Slow test_assembly_mutants_caught;
        ] );
      ( "trace simulation",
        [
          QCheck_alcotest.to_alcotest (trace_simulation Scenarios.pipeline);
          QCheck_alcotest.to_alcotest (trace_simulation Scenarios.interrupt);
          QCheck_alcotest.to_alcotest (trace_simulation Scenarios.snfe_micro);
          QCheck_alcotest.to_alcotest (trace_simulation Scenarios.preemptive);
          QCheck_alcotest.to_alcotest
            (trace_simulation ~impl:Sue.Assembly ~tag:" (machine-code kernel)" Scenarios.pipeline);
        ] );
      ( "random configurations",
        [
          QCheck_alcotest.to_alcotest random_kernels_verify;
          QCheck_alcotest.to_alcotest random_programs_on_machine_code_kernel;
          QCheck_alcotest.to_alcotest random_kernels_exhaustive;
          QCheck_alcotest.to_alcotest random_kernels_catch_bugs;
        ] );
      ( "noninterference testing (E11)",
        [
          Alcotest.test_case "correct kernel clean" `Quick test_ni_correct_kernel_clean;
          Alcotest.test_case "catches output leak" `Quick test_ni_catches_output_leak;
          Alcotest.test_case "misses internal flaws" `Quick test_ni_misses_internal_flaws;
        ] );
      ( "randomized (E10)",
        [
          Alcotest.test_case "correct kernel" `Quick test_randomized_correct;
          Alcotest.test_case "all mutants" `Slow test_randomized_mutants;
          Alcotest.test_case "pairwise ablation agrees" `Quick test_pairwise_agrees_with_bucketed;
          Alcotest.test_case "scaled instance" `Quick test_randomized_scaling_instance;
        ] );
    ]
