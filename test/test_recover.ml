(* Tests for the fail-operational layer: checkpoints, regime restart,
   kernel warm reboot, the recovery supervisor and its proof obligations,
   the reliable-channel protocol over a lossy link, and the crash-restart
   fuzzer. *)

module Colour = Sep_model.Colour
module Machine = Sep_hw.Machine
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Scenarios = Sep_core.Scenarios
module Abstract_regime = Sep_core.Abstract_regime
module Separability = Sep_core.Separability
module Recover = Sep_recover.Recover
module Proof = Sep_recover.Proof
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Campaign = Sep_robust.Campaign
module Net = Sep_distributed.Net
module Diff = Sep_check.Diff
module Fuzz = Sep_check.Fuzz

let check = Alcotest.check

let pipeline = Scenarios.pipeline
let pipeline_cfg = pipeline.Scenarios.cfg

let status =
  Alcotest.testable
    (fun ppf s ->
      Fmt.string ppf
        (match (s : Abstract_regime.status) with
        | Abstract_regime.Running -> "running"
        | Abstract_regime.Waiting -> "waiting"
        | Abstract_regime.Parked -> "parked"))
    ( = )

(* Corrupt [c]'s save area and run until the checksum mismatch parks it
   at a switch-to attempt. The corruption only sticks while [c] is off
   the processor (a swap-out rewrites and reseals the save area), so it
   is re-applied each step until the park; [inputs] can drip external
   words to wake a waiting victim. *)
let park ?(inputs = fun _ -> []) t c =
  let m = Sue.machine t in
  let a = Sue.save_area_base t c + 2 in
  let n = ref 0 in
  while Sue.regime_status t c <> Abstract_regime.Parked && !n < 300 do
    if not (Colour.equal (Sue.current_colour t) c) then Machine.write_phys m a 0xbeef;
    ignore (Sue.step t (inputs !n));
    incr n
  done;
  check status (Colour.name c ^ " parked") Abstract_regime.Parked (Sue.regime_status t c)

(* -- Checkpoints and restart ------------------------------------------------ *)

let test_checkpoints_captured () =
  let t = Sue.build pipeline_cfg in
  for n = 1 to 60 do
    ignore (Sue.step t (if n mod 5 = 0 then [ (0, n) ] else []))
  done;
  Alcotest.(check bool) "checkpoints counted" true ((Sue.kstats t).Sue.ks_checkpoints > 0)

let test_restart_restores_parked_regime () =
  let t = Sue.build pipeline_cfg in
  park t Colour.black;
  ignore (Sue.drain_faults t);
  check
    (Alcotest.testable
       (fun ppf -> function
         | Sue.Restarted -> Fmt.string ppf "Restarted"
         | Sue.Not_parked -> Fmt.string ppf "Not_parked"
         | Sue.Bad_checkpoint -> Fmt.string ppf "Bad_checkpoint")
       ( = ))
    "restart succeeds" Sue.Restarted (Sue.restart t Colour.black);
  Alcotest.(check bool) "black runnable again" true
    (Sue.regime_status t Colour.black <> Abstract_regime.Parked);
  check Alcotest.int "restart counted" 1 (Sue.kstats t).Sue.ks_restarts;
  let audited =
    List.exists
      (function Sue.Regime_restart c -> Colour.equal c Colour.black | _ -> false)
      (Sue.drain_faults t)
  in
  Alcotest.(check bool) "restart audited" true audited;
  (* the revived regime makes progress again *)
  let before = List.assoc Colour.black (Sue.kstats t).Sue.ks_instrs in
  for n = 1 to 60 do
    ignore (Sue.step t (if n mod 4 = 0 then [ (0, n) ] else []))
  done;
  let after = List.assoc Colour.black (Sue.kstats t).Sue.ks_instrs in
  Alcotest.(check bool) "black retires instructions after restart" true (after > before)

let test_restart_requires_parked () =
  let t = Sue.build pipeline_cfg in
  Alcotest.(check bool) "healthy regime is not restartable" true
    (Sue.restart t Colour.black = Sue.Not_parked)

let test_bad_checkpoint_keeps_parked () =
  let t = Sue.build pipeline_cfg in
  park t Colour.black;
  ignore (Sue.drain_faults t);
  Sue.corrupt_checkpoint t Colour.black;
  Alcotest.(check bool) "restart refuses the corrupt checkpoint" true
    (Sue.restart t Colour.black = Sue.Bad_checkpoint);
  check status "black stays parked" Abstract_regime.Parked (Sue.regime_status t Colour.black);
  let audited =
    List.exists
      (function Sue.Checkpoint_corrupt c -> Colour.equal c Colour.black | _ -> false)
      (Sue.drain_faults t)
  in
  Alcotest.(check bool) "corrupt checkpoint audited" true audited

let test_restart_requires_microcode () =
  let t = Sue.build ~impl:Sue.Assembly pipeline_cfg in
  Alcotest.check_raises "restart is a microcode operation"
    (Invalid_argument "Sue.restart: requires the microcode kernel") (fun () ->
      ignore (Sue.restart t Colour.black))

(* -- Warm reboot ------------------------------------------------------------ *)

let test_warm_reboot_restores_and_keeps_audit () =
  let t = Sue.build pipeline_cfg in
  park t Colour.black;
  (* the audit trail of why the halt happened must survive the reboot *)
  let restored = Sue.warm_reboot t in
  Alcotest.(check bool) "black restored" true (List.exists (Colour.equal Colour.black) restored);
  Alcotest.(check bool) "nothing parked afterwards" false (Sue.all_parked t);
  check status "black runnable" Abstract_regime.Running (Sue.regime_status t Colour.black);
  check Alcotest.int "warm reboot counted" 1 (Sue.kstats t).Sue.ks_warm_reboots;
  let log = Sue.drain_faults t in
  let has f = List.exists f log in
  Alcotest.(check bool) "pre-reboot park preserved in the log" true
    (has (function Sue.Save_area_corrupt c -> Colour.equal c Colour.black | _ -> false));
  Alcotest.(check bool) "reboot audited" true (has (function Sue.Warm_reboot -> true | _ -> false));
  Alcotest.(check bool) "revival audited" true
    (has (function Sue.Regime_restart c -> Colour.equal c Colour.black | _ -> false))

(* -- The supervisor --------------------------------------------------------- *)

let test_supervisor_restarts_parked () =
  let t = Sue.build pipeline_cfg in
  let sup = Recover.create t in
  park t Colour.black;
  (match Recover.tick sup with
  | [ Recover.Restarted c ] ->
    Alcotest.(check bool) "the victim was restarted" true (Colour.equal c Colour.black)
  | other ->
    Alcotest.failf "expected one restart, got [%a]"
      Fmt.(list ~sep:(any "; ") Recover.pp_action)
      other);
  check Alcotest.int "restart budget spent" 1 (Recover.restart_count sup Colour.black);
  Alcotest.(check bool) "fully recovered" true (Recover.fully_recovered sup);
  check (Alcotest.list Alcotest.string) "nothing abandoned" []
    (List.map Colour.name (Recover.abandoned sup))

let test_supervisor_budget_exhaustion () =
  let t = Sue.build pipeline_cfg in
  let sup = Recover.create ~policy:{ Recover.max_restarts = 1; max_warm_reboots = 0 } t in
  park t Colour.black;
  (match Recover.tick sup with
  | [ Recover.Restarted _ ] -> ()
  | other ->
    Alcotest.failf "expected a restart, got [%a]" Fmt.(list ~sep:(any "; ") Recover.pp_action) other);
  park t Colour.black;
  (match Recover.tick sup with
  | [ Recover.Gave_up c ] ->
    Alcotest.(check bool) "gave up on the repeat offender" true (Colour.equal c Colour.black)
  | other ->
    Alcotest.failf "expected a give-up, got [%a]" Fmt.(list ~sep:(any "; ") Recover.pp_action) other);
  check status "black stays parked" Abstract_regime.Parked (Sue.regime_status t Colour.black);
  Alcotest.(check bool) "not fully recovered" false (Recover.fully_recovered sup);
  check (Alcotest.list Alcotest.string) "abandonment recorded" [ "BLACK" ]
    (List.map Colour.name (Recover.abandoned sup));
  check Alcotest.int "no further action on later ticks" 0 (List.length (Recover.tick sup))

let test_supervisor_gives_up_on_bad_checkpoint () =
  let t = Sue.build pipeline_cfg in
  let sup = Recover.create t in
  park t Colour.black;
  Sue.corrupt_checkpoint t Colour.black;
  (match Recover.tick sup with
  | [ Recover.Gave_up c ] ->
    Alcotest.(check bool) "gave up on the corrupt checkpoint" true (Colour.equal c Colour.black)
  | other ->
    Alcotest.failf "expected a give-up, got [%a]" Fmt.(list ~sep:(any "; ") Recover.pp_action) other);
  check status "black stays parked" Abstract_regime.Parked (Sue.regime_status t Colour.black)

(* -- Proof obligations across the restart boundary -------------------------- *)

let test_restart_invisible () =
  let t = Sue.build pipeline_cfg in
  park t Colour.black;
  let result, mismatches = Proof.restart_invisible t Colour.black in
  Alcotest.(check bool) "restart happened" true (result = Sue.Restarted);
  check (Alcotest.list Alcotest.string) "no other colour's view changed" [] mismatches

let test_restart_commutes () =
  (* snfe-micro hosts more than two regimes: park two off-processor
     colours and restart them in both orders *)
  let sc = Scenarios.snfe_micro in
  let t = Sue.build sc.Scenarios.cfg in
  let victims =
    match List.filter (fun c -> not (Colour.equal c (Sue.current_colour t))) (Config.colours sc.Scenarios.cfg) with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "scenario too small"
  in
  let a, b = victims in
  let alphabet = Array.of_list sc.Scenarios.alphabet in
  let drip n =
    if Array.length alphabet > 1 && n mod 4 = 0 then
      alphabet.((n / 4) mod (Array.length alphabet - 1) + 1)
    else []
  in
  park ~inputs:drip t a;
  park ~inputs:drip t b;
  Alcotest.(check bool) "restart order does not matter" true (Proof.restart_commutes t a b)

let test_conditions_across_boundary () =
  let t = Sue.build pipeline_cfg in
  let snapshots = ref [ Sue.copy t ] in
  for _ = 1 to 10 do
    ignore (Sue.step t []);
    snapshots := Sue.copy t :: !snapshots
  done;
  park ~inputs:(fun n -> if n mod 4 = 0 then [ (0, n) ] else []) t Colour.black;
  snapshots := Sue.copy t :: !snapshots;
  Alcotest.(check bool) "restarted" true (Sue.restart t Colour.black = Sue.Restarted);
  snapshots := Sue.copy t :: !snapshots;
  for _ = 1 to 10 do
    ignore (Sue.step t []);
    snapshots := Sue.copy t :: !snapshots
  done;
  let report =
    Proof.check_boundary ~seed:11 ~alphabet:pipeline.Scenarios.alphabet (List.rev !snapshots)
  in
  if not (Separability.verified report) then
    Alcotest.failf "conditions fail across the restart boundary: %a" Separability.pp_summary report

(* -- The reliable channel over a lossy link --------------------------------- *)

let test_reliable_net_pins_kernel () =
  let cases = Diff.kernel_vs_reliable_net ~seed:11 ~cases:3 ~steps:120 () in
  List.iter
    (fun (rc : Diff.reliable_case) ->
      check (Alcotest.list Alcotest.string) "lossy delivery is a prefix of the ideal" []
        rc.Diff.rc_mismatches)
    cases;
  let sum f = List.fold_left (fun n rc -> n + f rc) 0 cases in
  Alcotest.(check bool) "loss actually happened" true
    (sum (fun rc -> rc.Diff.rc_stats.Net.ls_lossy_drops) > 0);
  Alcotest.(check bool) "the protocol retransmitted" true
    (sum (fun rc -> rc.Diff.rc_stats.Net.ls_retransmits) > 0);
  Alcotest.(check bool) "acks flowed" true (sum (fun rc -> rc.Diff.rc_stats.Net.ls_acks) > 0);
  Alcotest.(check bool) "words were delivered" true (sum (fun rc -> rc.Diff.rc_delivered) > 0)

let test_reliable_net_high_loss () =
  let link = { Net.default_link_model with Net.lm_drop = 25 } in
  let cases = Diff.kernel_vs_reliable_net ~link ~seed:7 ~cases:2 ~steps:120 () in
  List.iter
    (fun (rc : Diff.reliable_case) ->
      check (Alcotest.list Alcotest.string) "oracle green at 25% drop" [] rc.Diff.rc_mismatches)
    cases

let test_backoff_ceiling_under_heavy_loss () =
  (* at 90% drop nearly every timeout fires again and again, so the
     exponential backoff must reach (and hold at) its cap — a bounded
     retransmission rate, not a storm — while the oracle stays green *)
  let link = { Net.default_link_model with Net.lm_drop = 90 } in
  let cases = Diff.kernel_vs_reliable_net ~link ~seed:3 ~cases:2 ~steps:240 () in
  List.iter
    (fun (rc : Diff.reliable_case) ->
      check (Alcotest.list Alcotest.string) "oracle green at 90% drop" [] rc.Diff.rc_mismatches)
    cases;
  let sum f = List.fold_left (fun n rc -> n + f rc) 0 cases in
  Alcotest.(check bool) "the backoff reached its ceiling" true
    (sum (fun rc -> rc.Diff.rc_stats.Net.ls_backoff_ceiling) > 0);
  Alcotest.(check bool) "retransmission carried on under the cap" true
    (sum (fun rc -> rc.Diff.rc_stats.Net.ls_retransmits) > 0)

let test_cut_wire_silent_discard () =
  (* the wire-cutting argument must survive the reliable protocol: a send
     onto a cut wire is silently discarded before the protocol ever sees
     it — no frames, no acks, no retransmission storm against a wire that
     will never answer *)
  let a = Colour.red and b = Colour.black in
  let src =
    Component.stateless ~name:"src" (function
      | Component.External m -> [ Component.Send (0, m) ]
      | _ -> [])
  in
  let sink =
    Component.stateless ~name:"sink" (function
      | Component.Recv (_, m) -> [ Component.Output m ]
      | _ -> [])
  in
  let topo =
    Topology.cut_wire (Topology.make ~parts:[ (a, src); (b, sink) ] ~wires:[ (a, b, 2) ]) 0
  in
  let net = Net.build ~link:Net.default_link_model topo in
  Net.run net ~steps:60 ~externals:(fun n ->
      if n mod 2 = 0 then [ (a, "w" ^ string_of_int n) ] else []);
  Alcotest.(check (list string)) "nothing crosses the cut wire" [] (Net.outputs net b);
  let s = Net.link_stats net in
  check Alcotest.int "the sender's protocol never engaged" 0 s.Net.ls_retransmits;
  check Alcotest.int "no acks either" 0 s.Net.ls_acks;
  check Alcotest.int "nothing left in flight" 0 s.Net.ls_in_flight

let test_reliable_net_deterministic () =
  let stats () =
    List.map
      (fun (rc : Diff.reliable_case) ->
        ( rc.Diff.rc_delivered,
          rc.Diff.rc_stats.Net.ls_retransmits,
          rc.Diff.rc_stats.Net.ls_acks,
          rc.Diff.rc_stats.Net.ls_lossy_drops ))
      (Diff.kernel_vs_reliable_net ~seed:5 ~cases:2 ~steps:90 ())
  in
  Alcotest.(check bool) "same seed, same protocol behaviour" true (stats () = stats ())

(* -- Give-up under a drained budget, mid-campaign ---------------------------- *)

let test_campaign_give_up_on_drained_budget () =
  (* zero restart and reboot budgets: every parked regime is immediately
     abandoned. The fail-operational promise degrades — nothing is
     recovered — but it degrades to fail-SAFE: abandonment keeps the
     victim parked, and no case may end Violating. *)
  let report =
    Campaign.run_recovery
      ~policy:{ Recover.max_restarts = 0; max_warm_reboots = 0 }
      ~seed:42 ~steps:60 ~count:12 ()
  in
  let _, _, recovered, violating = Campaign.totals report in
  check Alcotest.int "a drained budget recovers nothing" 0 recovered;
  check Alcotest.int "and gives up fail-safe, never violating" 0 violating;
  Alcotest.(check bool) "containment still holds" true (Campaign.holds report)

(* -- The crash-restart fuzzer ------------------------------------------------ *)

let test_fuzz_recovery_clean_and_covers_restarts () =
  let r = Fuzz.fuzz_recovery ~seed:5 ~budget:12 pipeline in
  check Alcotest.int "no separability failure under crash-restart" 0
    (List.length r.Fuzz.rv_failures);
  let restartish =
    List.filter
      (fun k ->
        String.length k >= 12 && String.sub k 0 12 = "e:restarted:")
      r.Fuzz.rv_campaign.Fuzz.cp_keys
  in
  Alcotest.(check bool) "restart coverage keys lit" true (restartish <> [])

let () =
  Alcotest.run "recover"
    [
      ( "checkpoints",
        [
          Alcotest.test_case "captured at effect boundaries" `Quick test_checkpoints_captured;
          Alcotest.test_case "restart restores a parked regime" `Quick
            test_restart_restores_parked_regime;
          Alcotest.test_case "restart requires a parked regime" `Quick test_restart_requires_parked;
          Alcotest.test_case "bad checkpoint keeps the regime parked" `Quick
            test_bad_checkpoint_keeps_parked;
          Alcotest.test_case "restart requires microcode" `Quick test_restart_requires_microcode;
        ] );
      ( "warm reboot",
        [
          Alcotest.test_case "restores regimes, preserves the audit log" `Quick
            test_warm_reboot_restores_and_keeps_audit;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "restarts parked regimes" `Quick test_supervisor_restarts_parked;
          Alcotest.test_case "budget exhaustion" `Quick test_supervisor_budget_exhaustion;
          Alcotest.test_case "gives up on a bad checkpoint" `Quick
            test_supervisor_gives_up_on_bad_checkpoint;
        ] );
      ( "proof obligations",
        [
          Alcotest.test_case "restart invisible to other colours" `Quick test_restart_invisible;
          Alcotest.test_case "restarts commute" `Quick test_restart_commutes;
          Alcotest.test_case "six conditions across the boundary" `Quick
            test_conditions_across_boundary;
        ] );
      ( "reliable channel",
        [
          Alcotest.test_case "pins the kernel under loss" `Quick test_reliable_net_pins_kernel;
          Alcotest.test_case "green at 25% drop" `Quick test_reliable_net_high_loss;
          Alcotest.test_case "backoff ceiling at 90% drop" `Quick
            test_backoff_ceiling_under_heavy_loss;
          Alcotest.test_case "cut wires discard silently" `Quick test_cut_wire_silent_discard;
          Alcotest.test_case "deterministic" `Quick test_reliable_net_deterministic;
        ] );
      ( "drained budget",
        [
          Alcotest.test_case "gives up fail-safe mid-campaign" `Quick
            test_campaign_give_up_on_drained_budget;
        ] );
      ( "crash-restart fuzz",
        [
          Alcotest.test_case "clean with restart coverage" `Quick
            test_fuzz_recovery_clean_and_covers_restarts;
        ] );
    ]
