(* Tests for Sep_util: PRNG, bounded FIFO, bit codecs, statistics, tables,
   JSON round-trips. *)

module Prng = Sep_util.Prng
module Fifo = Sep_util.Fifo
module Bits = Sep_util.Bits
module Stats = Sep_util.Stats
module Table = Sep_util.Table
module Json = Sep_util.Json
module Gen = Sep_check.Gen

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* -- Prng ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  let stream g = List.init 50 (fun _ -> Prng.int g 1000) in
  check (Alcotest.list Alcotest.int) "same seed, same stream" (stream a) (stream b)

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let stream g = List.init 20 (fun _ -> Prng.int g 1_000_000) in
  Alcotest.(check bool) "different seeds differ" false (stream a = stream b)

let test_prng_copy_independent () =
  let a = Prng.create 3 in
  let b = Prng.copy a in
  let xs = List.init 10 (fun _ -> Prng.int a 100) in
  let ys = List.init 10 (fun _ -> Prng.int b 100) in
  check (Alcotest.list Alcotest.int) "copy replays" xs ys

let test_prng_split_diverges () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  let xs = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" false (xs = ys)

let prng_int_bounds =
  QCheck.Test.make ~name:"prng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prng_int_in_bounds =
  QCheck.Test.make ~name:"prng int_in stays in range" ~count:500
    QCheck.(triple small_int (int_range (-500) 500) (int_range 0 500))
    (fun (seed, lo, span) ->
      let g = Prng.create seed in
      let v = Prng.int_in g lo (lo + span) in
      v >= lo && v <= lo + span)

let test_prng_shuffle_permutes () =
  let g = Prng.create 11 in
  let arr = Array.init 30 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "shuffle keeps elements" (Array.init 30 Fun.id) sorted

let test_prng_bytes_length () =
  let g = Prng.create 5 in
  check Alcotest.int "bytes length" 17 (Bytes.length (Prng.bytes g 17))

let prng_float_bounds =
  QCheck.Test.make ~name:"prng float stays in bounds" ~count:200 QCheck.small_int (fun seed ->
      let g = Prng.create seed in
      let f = Prng.float g 2.5 in
      f >= 0.0 && f < 2.5)

(* -- Fifo ------------------------------------------------------------------ *)

let test_fifo_order () =
  let q = Fifo.create ~capacity:4 in
  List.iter (fun x -> assert (Fifo.push q x)) [ 1; 2; 3 ];
  check (Alcotest.list Alcotest.int) "to_list oldest first" [ 1; 2; 3 ] (Fifo.to_list q);
  check (Alcotest.option Alcotest.int) "pop oldest" (Some 1) (Fifo.pop q);
  check (Alcotest.option Alcotest.int) "peek next" (Some 2) (Fifo.peek q);
  check Alcotest.int "length after pop" 2 (Fifo.length q)

let test_fifo_capacity () =
  let q = Fifo.create ~capacity:2 in
  Alcotest.(check bool) "accepts 1st" true (Fifo.push q 1);
  Alcotest.(check bool) "accepts 2nd" true (Fifo.push q 2);
  Alcotest.(check bool) "rejects 3rd" false (Fifo.push q 3);
  Alcotest.(check bool) "is_full" true (Fifo.is_full q);
  ignore (Fifo.pop q);
  Alcotest.(check bool) "accepts after pop" true (Fifo.push q 3);
  check (Alcotest.list Alcotest.int) "order preserved" [ 2; 3 ] (Fifo.to_list q)

let test_fifo_clear_and_copy () =
  let q = Fifo.create ~capacity:3 in
  ignore (Fifo.push q 1);
  let q2 = Fifo.copy q in
  Fifo.clear q;
  Alcotest.(check bool) "cleared" true (Fifo.is_empty q);
  check Alcotest.int "copy untouched" 1 (Fifo.length q2)

(* Sustained pressure against a full FIFO: every surplus push is refused,
   nothing already queued is disturbed, and a copy taken under pressure
   stays an independent snapshot. *)
let test_fifo_sustained_pressure () =
  let q = Fifo.create ~capacity:3 in
  List.iter (fun x -> assert (Fifo.push q x)) [ 1; 2; 3 ];
  let refused = ref 0 in
  for x = 4 to 103 do
    if not (Fifo.push q x) then incr refused
  done;
  check Alcotest.int "every surplus push refused" 100 !refused;
  check (Alcotest.list Alcotest.int) "contents undisturbed" [ 1; 2; 3 ] (Fifo.to_list q);
  let snap = Fifo.copy q in
  ignore (Fifo.pop q);
  assert (Fifo.push q 99);
  check (Alcotest.list Alcotest.int) "snapshot unaffected by later traffic" [ 1; 2; 3 ]
    (Fifo.to_list snap);
  check (Alcotest.list Alcotest.int) "original drained and refilled" [ 2; 3; 99 ] (Fifo.to_list q);
  Alcotest.(check bool) "copy is full too" true (Fifo.is_full snap)

let fifo_model =
  QCheck.Test.make ~name:"fifo behaves like a bounded list" ~count:300
    QCheck.(pair (int_range 1 5) (small_list (option small_int)))
    (fun (cap, script) ->
      (* None = pop, Some x = push *)
      let q = Fifo.create ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun step ->
          match step with
          | Some x ->
            let accepted = Fifo.push q x in
            let should = List.length !model < cap in
            if accepted <> should then QCheck.Test.fail_report "push acceptance mismatch";
            if accepted then model := !model @ [ x ]
          | None -> begin
            let popped = Fifo.pop q in
            match (!model, popped) with
            | [], None -> ()
            | m :: rest, Some v when v = m -> model := rest
            | _ -> QCheck.Test.fail_report "pop mismatch"
          end)
        script;
      Fifo.to_list q = !model)

(* -- Bits ------------------------------------------------------------------ *)

let bits_roundtrip =
  QCheck.Test.make ~name:"bytes -> bits -> bytes roundtrip" ~count:300 QCheck.string (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal (Bits.bytes_of_bits (Bits.bits_of_bytes b)) b)

let int_bits_roundtrip =
  QCheck.Test.make ~name:"int -> bits -> int roundtrip" ~count:300
    QCheck.(pair (int_range 0 61) (int_range 0 1_000_000))
    (fun (width, n) ->
      let n = n land ((1 lsl width) - 1) in
      Bits.bits_to_int (Bits.int_to_bits ~width n) = n)

let test_bits_msb_first () =
  check (Alcotest.list Alcotest.bool) "0x80 is MSB-first"
    [ true; false; false; false; false; false; false; false ]
    (Bits.bits_of_bytes (Bytes.of_string "\x80"))

let test_popcount () =
  check Alcotest.int "popcount 0" 0 (Bits.popcount 0);
  check Alcotest.int "popcount 0xff" 8 (Bits.popcount 0xff);
  check Alcotest.int "popcount 0b1010" 2 (Bits.popcount 0b1010)

let test_parity () =
  Alcotest.(check bool) "parity of odd ones" true (Bits.parity [ true; false; true; true ]);
  Alcotest.(check bool) "parity of even ones" false (Bits.parity [ true; true ]);
  Alcotest.(check bool) "parity of empty" false (Bits.parity [])

(* -- Stats ----------------------------------------------------------------- *)

let test_stats_basics () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean xs);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total xs);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum xs);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.maximum xs);
  check (Alcotest.float 1e-6) "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_stats_edge () =
  check (Alcotest.float 1e-9) "mean of empty" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "stddev of singleton" 0.0 (Stats.stddev [ 42.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile 100.0 xs);
  check (Alcotest.float 1e-9) "p1" 1.0 (Stats.percentile 1.0 xs)

(* -- Table ----------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "xxx"; "y" ];
  Table.add_row t [ "z" ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true (String.length out > 0 && String.sub out 0 6 = "== t =");
  let lines = String.split_on_char '\n' out in
  (* title, header, rule, 2 rows, trailing "" after the final newline *)
  check Alcotest.int "line count" 6 (List.length lines)

let test_table_too_many_cells () =
  let t = Table.create ~title:"t" ~columns:[ "a" ] in
  Alcotest.check_raises "too many cells" (Invalid_argument "Table.add_row: too many cells")
    (fun () -> Table.add_row t [ "1"; "2" ])

(* -- Json round-trips -------------------------------------------------------- *)

let reparse ctx s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "%s: %s does not parse back: %s" ctx s e

(* print -> parse -> print is a fixpoint on generated values: one hop may
   normalise (e.g. escape forms), after which the text is stable. *)
let json_roundtrip_fuzz () =
  for seed = 1 to 300 do
    let j = Gen.run ~seed (Gen.json ()) in
    let s = Json.to_string j in
    let s' = Json.to_string (reparse (Fmt.str "seed %d" seed) s) in
    Alcotest.(check string) (Fmt.str "seed %d fixpoint" seed) s s'
  done

let json_utf8_strings () =
  for seed = 1 to 200 do
    let raw = Gen.run ~seed (Gen.utf8_string ~max_len:24) in
    let j = Json.String raw in
    let back = reparse (Fmt.str "seed %d" seed) (Json.to_string j) in
    Alcotest.(check bool) (Fmt.str "seed %d string survives" seed) true (Json.equal j back)
  done

let json_surrogate_pairs () =
  (* a supplementary-plane escape decodes to one UTF-8 code point and then
     round-trips as itself *)
  (match Json.parse {|"😀"|} with
  | Ok (Json.String s) ->
    Alcotest.(check string) "surrogate pair decodes" "\xf0\x9f\x98\x80" s;
    let printed = Json.to_string (Json.String s) in
    Alcotest.(check bool) "and reprints equal" true
      (Json.equal (Json.String s) (reparse "surrogate" printed))
  | Ok j -> Alcotest.failf "expected a string, got %s" (Json.to_string j)
  | Error e -> Alcotest.failf "surrogate pair rejected: %s" e);
  (match Json.parse {|"\uD83D"|} with
  | Ok _ -> Alcotest.fail "lone surrogate accepted"
  | Error _ -> ())

let json_deep_nesting () =
  let deep = ref (Json.Int 7) in
  for i = 1 to 200 do
    deep := if i mod 2 = 0 then Json.List [ !deep ] else Json.Obj [ ("k", !deep) ]
  done;
  let s = Json.to_string !deep in
  Alcotest.(check bool) "200 levels round-trip" true (Json.equal !deep (reparse "deep" s));
  for seed = 1 to 40 do
    let j = Gen.run ~seed (Gen.json ~depth:8 ()) in
    let s = Json.to_string j in
    Alcotest.(check string)
      (Fmt.str "seed %d deep fixpoint" seed)
      s
      (Json.to_string (reparse (Fmt.str "deep seed %d" seed) s))
  done

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_prng_split_diverges;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "bytes length" `Quick test_prng_bytes_length;
          qtest prng_int_bounds;
          qtest prng_int_in_bounds;
          qtest prng_float_bounds;
        ] );
      ( "fifo",
        [
          Alcotest.test_case "order" `Quick test_fifo_order;
          Alcotest.test_case "capacity" `Quick test_fifo_capacity;
          Alcotest.test_case "clear and copy" `Quick test_fifo_clear_and_copy;
          Alcotest.test_case "sustained pressure" `Quick test_fifo_sustained_pressure;
          qtest fifo_model;
        ] );
      ( "bits",
        [
          Alcotest.test_case "msb first" `Quick test_bits_msb_first;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "parity" `Quick test_parity;
          qtest bits_roundtrip;
          qtest int_bits_roundtrip;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "edge cases" `Quick test_stats_edge;
          Alcotest.test_case "percentile" `Quick test_percentile;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
        ] );
      ( "json",
        [
          Alcotest.test_case "print-parse-print fixpoint" `Quick json_roundtrip_fuzz;
          Alcotest.test_case "utf8 strings survive" `Quick json_utf8_strings;
          Alcotest.test_case "surrogate pairs" `Quick json_surrogate_pairs;
          Alcotest.test_case "deep nesting" `Quick json_deep_nesting;
        ] );
    ]
