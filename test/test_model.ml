(* Tests for the formal model layer: colours, the Appendix system (step,
   reachability, traces), components and topologies. *)

module Colour = Sep_model.Colour
module System = Sep_model.System
module Component = Sep_model.Component
module Topology = Sep_model.Topology

(* A tiny two-colour counter system: each colour owns a counter mod n;
   input "bump c" increments c's counter; the op is a no-op. Useful for
   exercising the generic machinery without the kernel. *)
let counter_system n =
  let noop = { System.op_name = "noop"; op_apply = Fun.id } in
  {
    System.name = "counters";
    colours = [ Colour.red; Colour.black ];
    initial = [ (0, 0) ];
    inputs = [ None; Some Colour.red; Some Colour.black ];
    ops = [ noop ];
    colour_of = (fun _ -> Colour.red);
    input =
      (fun (r, b) i ->
        match i with
        | None -> (r, b)
        | Some c when Colour.equal c Colour.red -> ((r + 1) mod n, b)
        | Some _ -> (r, (b + 1) mod n));
    nextop = (fun _ -> noop);
    output = (fun (r, b) -> (r, b));
    extract_input =
      (fun c i -> match i with Some c' when Colour.equal c c' -> 1 | Some _ | None -> 0);
    extract_output = (fun c (r, b) -> if Colour.equal c Colour.red then r else b);
    abstract = (fun c (r, b) -> if Colour.equal c Colour.red then r else b);
    abop = (fun _ _ -> { System.abop_name = "noop"; abop_apply = Fun.id });
    sanctioned_interference = (fun _ _ _ _ -> false);
    equal_state = ( = );
    hash_state = Hashtbl.hash;
    equal_abstate = ( = );
    hash_abstate = Hashtbl.hash;
    equal_proj = ( = );
    pp_state = (fun ppf (r, b) -> Fmt.pf ppf "(%d,%d)" r b);
    pp_input = (fun ppf i -> Fmt.pf ppf "%a" (Fmt.Dump.option Colour.pp) i);
    pp_abstate = Fmt.int;
  }

let test_colour_basics () =
  Alcotest.(check string) "name" "RED" (Colour.name Colour.red);
  Alcotest.(check bool) "equal" true (Colour.equal (Colour.make "X") (Colour.make "X"));
  Alcotest.(check string) "of_index" "C3" (Colour.name (Colour.of_index 3))

let test_reachable_counts () =
  let sys = counter_system 3 in
  let states = System.reachable sys in
  Alcotest.(check int) "3x3 counter states" 9 (List.length states)

let test_reachable_limit () =
  let sys = counter_system 10 in
  Alcotest.check_raises "limit enforced" (Failure "System.reachable: state limit exceeded")
    (fun () -> ignore (System.reachable ~limit:5 sys))

let test_step_and_trace () =
  let sys = counter_system 5 in
  let states, outputs = System.trace sys (0, 0) [ Some Colour.red; Some Colour.red; Some Colour.black ] in
  Alcotest.(check int) "visited states" 4 (List.length states);
  Alcotest.(check (list (pair int int))) "outputs are pre-step"
    [ (0, 0); (1, 0); (2, 0) ]
    outputs;
  Alcotest.(check (pair int int)) "final state" (2, 1) (List.nth states 3)

(* -- Component ------------------------------------------------------------- *)

let echo_component =
  Component.make ~name:"echo" ~init:0 ~step:(fun n ev ->
      match ev with
      | Component.External m -> (n + 1, [ Component.Output (Fmt.str "%d:%s" n m) ])
      | Component.Recv (w, m) -> (n, [ Component.Send (w, m) ]))

let test_component_state_threading () =
  let inst = Component.instantiate echo_component in
  Alcotest.(check string) "name" "echo" (Component.instance_name inst);
  let a1 = Component.feed inst (Component.External "x") in
  let a2 = Component.feed inst (Component.External "y") in
  Alcotest.(check bool) "counter advanced" true
    (a1 = [ Component.Output "0:x" ] && a2 = [ Component.Output "1:y" ])

let test_component_instances_independent () =
  let i1 = Component.instantiate echo_component in
  let i2 = Component.instantiate echo_component in
  ignore (Component.feed i1 (Component.External "a"));
  let out = Component.feed i2 (Component.External "b") in
  Alcotest.(check bool) "fresh state" true (out = [ Component.Output "0:b" ])

let test_stateless () =
  let c = Component.stateless ~name:"s" (fun _ -> [ Component.Output "hi" ]) in
  let i = Component.instantiate c in
  ignore (Component.feed i (Component.External "x"));
  Alcotest.(check bool) "still answers" true
    (Component.feed i (Component.External "y") = [ Component.Output "hi" ])

(* -- Topology --------------------------------------------------------------- *)

let two_parts () =
  [ (Colour.red, echo_component); (Colour.black, echo_component) ]

let test_topology_valid () =
  let t = Topology.make ~parts:(two_parts ()) ~wires:[ (Colour.red, Colour.black, 4) ] in
  Alcotest.(check int) "wire count" 1 (List.length t.Topology.wires);
  Alcotest.(check int) "wires_from red" 1 (List.length (Topology.wires_from t Colour.red));
  Alcotest.(check int) "wires_into black" 1 (List.length (Topology.wires_into t Colour.black));
  Alcotest.(check int) "wires_into red" 0 (List.length (Topology.wires_into t Colour.red))

let test_topology_rejects () =
  let reject name parts wires =
    match Topology.validate { Topology.parts; wires } with
    | Ok () -> Alcotest.fail (name ^ ": should have been rejected")
    | Error _ -> ()
  in
  reject "duplicate colours"
    [ (Colour.red, echo_component); (Colour.red, echo_component) ]
    [];
  reject "self wire" (two_parts ())
    [ { Topology.wire_id = 0; src = Colour.red; dst = Colour.red; capacity = 1; cut = false } ];
  reject "unknown endpoint" (two_parts ())
    [ { Topology.wire_id = 0; src = Colour.red; dst = Colour.green; capacity = 1; cut = false } ];
  reject "bad capacity" (two_parts ())
    [ { Topology.wire_id = 0; src = Colour.red; dst = Colour.black; capacity = 0; cut = false } ];
  reject "bad ids" (two_parts ())
    [ { Topology.wire_id = 1; src = Colour.red; dst = Colour.black; capacity = 1; cut = false } ]

let test_topology_cutting () =
  let t = Topology.make ~parts:(two_parts ()) ~wires:[ (Colour.red, Colour.black, 4); (Colour.black, Colour.red, 4) ] in
  let t1 = Topology.cut_wire t 0 in
  Alcotest.(check bool) "wire 0 cut" true (List.nth t1.Topology.wires 0).Topology.cut;
  Alcotest.(check bool) "wire 1 intact" false (List.nth t1.Topology.wires 1).Topology.cut;
  let t2 = Topology.cut_all t in
  Alcotest.(check bool) "all cut" true (List.for_all (fun w -> w.Topology.cut) t2.Topology.wires)

let test_topology_component_lookup () =
  let t = Topology.make ~parts:(two_parts ()) ~wires:[] in
  Alcotest.(check string) "found" "echo" (Component.name (Topology.component t Colour.red));
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Topology.component t Colour.green))

let () =
  Alcotest.run "model"
    [
      ("colour", [ Alcotest.test_case "basics" `Quick test_colour_basics ]);
      ( "system",
        [
          Alcotest.test_case "reachable counts" `Quick test_reachable_counts;
          Alcotest.test_case "reachable limit" `Quick test_reachable_limit;
          Alcotest.test_case "step and trace" `Quick test_step_and_trace;
        ] );
      ( "component",
        [
          Alcotest.test_case "state threading" `Quick test_component_state_threading;
          Alcotest.test_case "instances independent" `Quick test_component_instances_independent;
          Alcotest.test_case "stateless" `Quick test_stateless;
        ] );
      ( "topology",
        [
          Alcotest.test_case "valid" `Quick test_topology_valid;
          Alcotest.test_case "rejects" `Quick test_topology_rejects;
          Alcotest.test_case "cutting" `Quick test_topology_cutting;
          Alcotest.test_case "component lookup" `Quick test_topology_component_lookup;
        ] );
    ]
