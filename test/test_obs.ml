(* Tests for the observability layer: Sep_util.Json, Sep_obs (telemetry,
   spans, sinks), kernel counters, Ktrace JSON, and the loc_of_file fix. *)

module Json = Sep_util.Json
module Telemetry = Sep_obs.Telemetry
module Span = Sep_obs.Span
module Sink = Sep_obs.Sink
module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* -- Json ------------------------------------------------------------------ *)

let roundtrip v =
  match Json.parse (Json.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "parse error on %s: %s" (Json.to_string v) e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("string", Json.String "esc \"quotes\" \\ slash \n tab \t unicode \xc3\xa9");
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.List [ Json.Obj [ ("k", Json.Int 1) ] ]);
      ]
  in
  Alcotest.(check bool) "writer and parser agree" true (Json.equal v (roundtrip v))

let test_json_parse_standard () =
  (match Json.parse {| { "a" : [ 1, 2.5, -3e2, "é", true, null ] } |} with
  | Error e -> Alcotest.fail e
  | Ok v -> (
    match Json.member "a" v with
    | Some (Json.List [ Json.Int 1; Json.Float 2.5; Json.Float f; Json.String s; Json.Bool true; Json.Null ])
      ->
      check (Alcotest.float 1e-9) "exponent" (-300.) f;
      check Alcotest.string "\\u escape decodes to UTF-8" "\xc3\xa9" s
    | _ -> Alcotest.fail "unexpected shape"));
  (match Json.parse "{} garbage" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing input must be rejected")

let test_json_nonfinite () =
  check Alcotest.string "nan renders null" "null" (Json.to_string (Json.Float Float.nan))

(* Supplementary-plane escapes arrive as UTF-16 surrogate pairs; the
   parser must combine them into one code point and reject lone halves. *)
let test_json_surrogate_pairs () =
  (match Json.parse {| "\uD83D\uDE00" |} with
  | Ok (Json.String s) ->
    check Alcotest.string "U+1F600 as 4-byte UTF-8" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  (match Json.parse {| "\uD801\uDC37" |} with
  | Ok (Json.String s) -> check Alcotest.string "U+10437" "\xf0\x90\x90\xb7" s
  | Ok _ -> Alcotest.fail "unexpected shape"
  | Error e -> Alcotest.fail e);
  (* the writer escapes nothing above ASCII, so the pair round-trips as
     raw UTF-8 through to_string -> parse *)
  (match Json.parse {| "\uD83D\uDE00" |} with
  | Ok v -> Alcotest.(check bool) "round-trip" true (Json.equal v (roundtrip v))
  | Error e -> Alcotest.fail e)

let test_json_lone_surrogates_rejected () =
  let rejected s = match Json.parse s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "lone high surrogate" true (rejected {| "\uD83D" |});
  Alcotest.(check bool) "high surrogate then text" true (rejected {| "\uD83Dx" |});
  Alcotest.(check bool) "high then non-surrogate escape" true (rejected {| "\uD83DA" |});
  Alcotest.(check bool) "lone low surrogate" true (rejected {| "\uDE00" |});
  Alcotest.(check bool) "low before high" true (rejected {| "\uDE00\uD83D" |});
  Alcotest.(check bool) "BMP escape still fine" false (rejected {| "\u0041" |})

let json_int_roundtrip =
  QCheck.Test.make ~name:"json int roundtrip" ~count:200 QCheck.int (fun n ->
      Json.equal (Json.Int n) (roundtrip (Json.Int n)))

(* -- Telemetry: counters and gauges ---------------------------------------- *)

let test_counter_semantics () =
  let reg = Telemetry.create () in
  let c = Telemetry.counter reg "c" in
  Telemetry.incr c;
  Telemetry.incr ~by:41 c;
  check Alcotest.int "accumulates" 42 (Telemetry.counter_value c);
  check Alcotest.int "same name, same counter" 42
    (Telemetry.counter_value (Telemetry.counter reg "c"));
  let g = Telemetry.gauge reg "g" in
  Telemetry.set g 1.0;
  Telemetry.set g 2.5;
  check (Alcotest.float 0.) "gauge keeps last value" 2.5 (Telemetry.gauge_value g);
  (match Telemetry.gauge reg "c" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind clash must raise");
  Telemetry.reset reg;
  check Alcotest.int "reset zeroes" 0 (Telemetry.counter_value c)

(* -- Telemetry: histogram quantiles ---------------------------------------- *)

(* Log buckets with gamma = 2^(1/4) guarantee <= ~9% relative error on any
   quantile; check against a known distribution with a safety margin. *)
let test_histogram_quantiles () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram reg "h" in
  for i = 1 to 1000 do
    Telemetry.observe h (float_of_int i /. 1000.)
  done;
  check Alcotest.int "count" 1000 (Telemetry.count h);
  check (Alcotest.float 1.) "sum" 500.5 (Telemetry.sum h);
  check (Alcotest.float 1e-12) "min exact" 0.001 (Telemetry.hist_min h);
  check (Alcotest.float 1e-12) "max exact" 1.0 (Telemetry.hist_max h);
  List.iter
    (fun (p, exact) ->
      let q = Telemetry.quantile h p in
      let rel = Float.abs (q -. exact) /. exact in
      if rel > 0.10 then
        Alcotest.failf "p%.0f: estimate %.4f vs exact %.4f (rel err %.3f)" (100. *. p) q exact rel)
    [ (0.5, 0.5); (0.9, 0.9); (0.99, 0.99); (1.0, 1.0) ];
  Alcotest.(check bool) "quantiles stay within observed range" true
    (Telemetry.quantile h 1.0 <= Telemetry.hist_max h
    && Telemetry.quantile h 0.0 >= Telemetry.hist_min h);
  check (Alcotest.float 0.) "empty histogram quantile" 0.
    (Telemetry.quantile (Telemetry.histogram reg "empty") 0.5)

(* -- Telemetry: merge ------------------------------------------------------ *)

let fill seed reg =
  let prng = Sep_util.Prng.create seed in
  let c = Telemetry.counter reg "c" in
  Telemetry.incr ~by:(Sep_util.Prng.int prng 100) c;
  Telemetry.set (Telemetry.gauge reg "g") (float_of_int seed);
  let h = Telemetry.histogram reg "h" in
  for _ = 1 to 50 do
    Telemetry.observe h (float_of_int (1 + Sep_util.Prng.int prng 1000) /. 997.)
  done;
  reg

let snapshot reg = Json.to_string (Telemetry.to_json reg)

let test_merge_associative () =
  let make () = List.map (fun s -> fill s (Telemetry.create ())) [ 1; 2; 3 ] in
  (* (a <- b) <- c *)
  let left =
    match make () with
    | [ a; b; c ] ->
      Telemetry.merge ~into:a b;
      Telemetry.merge ~into:a c;
      snapshot a
    | _ -> assert false
  in
  (* a <- (b <- c) *)
  let right =
    match make () with
    | [ a; b; c ] ->
      Telemetry.merge ~into:b c;
      Telemetry.merge ~into:a b;
      snapshot a
    | _ -> assert false
  in
  check Alcotest.string "merge associates" left right;
  (* merging into an empty registry is the identity on the source *)
  let empty = Telemetry.create () in
  Telemetry.merge ~into:empty (fill 1 (Telemetry.create ()));
  check Alcotest.string "empty is left identity" (snapshot (fill 1 (Telemetry.create ())))
    (snapshot empty)

(* -- Telemetry: JSON snapshot shape ---------------------------------------- *)

let test_snapshot_shape () =
  let reg = fill 7 (Telemetry.create ()) in
  let v = roundtrip (Telemetry.to_json reg) in
  (match Json.member "counters" v with
  | Some (Json.Obj [ ("c", Json.Int _) ]) -> ()
  | _ -> Alcotest.fail "counters section");
  (match Json.member "gauges" v with
  | Some (Json.Obj [ ("g", Json.Float 7.) ]) -> ()
  | _ -> Alcotest.fail "gauges section");
  match Json.member "histograms" v with
  | Some (Json.Obj [ ("h", stats) ]) ->
    List.iter
      (fun k ->
        if Json.member k stats = None then Alcotest.failf "histogram stat %s missing" k)
      [ "count"; "sum"; "min"; "max"; "mean"; "p50"; "p90"; "p99" ]
  | _ -> Alcotest.fail "histograms section"

(* -- Telemetry: fixed quantile accessors ------------------------------------ *)

let test_quantile_accessors () =
  let reg = Telemetry.create () in
  let h = Telemetry.histogram reg "h" in
  for i = 1 to 1000 do
    Telemetry.observe h (float_of_int i)
  done;
  List.iter
    (fun (name, accessor, p) ->
      check (Alcotest.float 0.) name (Telemetry.quantile h p) (accessor h))
    [
      ("p50 = quantile 0.5", Telemetry.p50, 0.5);
      ("p95 = quantile 0.95", Telemetry.p95, 0.95);
      ("p99 = quantile 0.99", Telemetry.p99, 0.99);
    ];
  let v = roundtrip (Telemetry.to_json reg) in
  match Json.member "histograms" v with
  | Some (Json.Obj [ ("h", stats) ]) ->
    if Json.member "p95" stats = None then Alcotest.fail "p95 missing from snapshot"
  | _ -> Alcotest.fail "histograms section"

(* -- Trace: the flight recorder --------------------------------------------- *)

module Trace = Sep_obs.Trace

let with_trace ?(capacity = 64) f =
  Trace.set_capacity capacity;
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.set_capacity 4096)
    f

let test_trace_disabled_records_nothing () =
  Trace.set_enabled false;
  Trace.clear ();
  Trace.instant ~cat:"t" "nope";
  check Alcotest.int "flow id is 0 while disabled" 0 (Trace.flow_start ~cat:"t" "nope");
  check Alcotest.int "nothing recorded" 0 (List.length (Trace.recorded ()))

let test_trace_ring_wraparound () =
  with_trace ~capacity:16 @@ fun () ->
  for i = 1 to 40 do
    Trace.instant ~cat:"t" ~args:[ ("i", Json.Int i) ] "tick"
  done;
  let events = Trace.recorded () in
  check Alcotest.int "ring keeps the last capacity events" 16 (List.length events);
  check Alcotest.int "all offered events counted" 40 (Trace.seen ());
  (* oldest first, contiguous, and ending at the newest emission *)
  let seqs = List.map (fun e -> e.Trace.seq) events in
  check (Alcotest.list Alcotest.int) "the suffix survives" (List.init 16 (fun i -> 24 + i)) seqs

let test_trace_flow_edges () =
  with_trace @@ fun () ->
  let id = Trace.flow_start ~cat:"net" "send" in
  Alcotest.(check bool) "flow id is nonzero" true (id <> 0);
  Trace.flow_end ~cat:"net" ~id "deliver";
  match Trace.recorded () with
  | [ s; f ] ->
    Alcotest.(check bool) "phases" true
      (s.Trace.phase = Trace.Flow_start && f.Trace.phase = Trace.Flow_end);
    check Alcotest.int "edge shares the id" s.Trace.id f.Trace.id
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_trace_chrome_export () =
  with_trace @@ fun () ->
  Trace.emit ~cat:"par" ~phase:Trace.Begin "task";
  Trace.instant ~cat:"sue" ~args:[ ("colour", Json.String "RED") ] "step";
  Trace.emit ~cat:"par" ~phase:Trace.End "task";
  match Json.parse (Trace.chrome_string ()) with
  | Error e -> Alcotest.failf "chrome export is not valid JSON: %s" e
  | Ok v -> (
    match Json.member "traceEvents" v with
    | Some (Json.List evs) ->
      check Alcotest.int "three events" 3 (List.length evs);
      let ph e = match Json.member "ph" e with Some (Json.String p) -> p | _ -> "?" in
      check (Alcotest.list Alcotest.string) "chrome phases" [ "B"; "i"; "E" ] (List.map ph evs);
      List.iter
        (fun e ->
          List.iter
            (fun k -> if Json.member k e = None then Alcotest.failf "field %s missing" k)
            [ "name"; "cat"; "ts"; "pid"; "tid" ])
        evs
    | _ -> Alcotest.fail "traceEvents missing")

(* A kernel panic must flush the flight recorder: the dump ends with the
   panic marker and retains the causally preceding events. *)
let test_trace_dump_on_panic () =
  with_trace ~capacity:256 @@ fun () ->
  let dumps = ref [] in
  Trace.on_dump (fun reason events -> dumps := (reason, events) :: !dumps);
  let scenario = Sep_core.Scenarios.pipeline in
  let t = Sep_core.Sue.build ~impl:Sep_core.Sue.Assembly scenario.Sep_core.Scenarios.cfg in
  let m = Sep_core.Sue.machine t in
  let code_base, code_len = Sep_core.Sue.kernel_code_region t in
  for a = code_base to code_base + code_len - 1 do
    Sep_hw.Machine.write_phys m a 0xffff
  done;
  for _ = 1 to 30 do
    ignore (Sep_core.Ktrace.step t [])
  done;
  Alcotest.(check bool) "kernel panicked" true
    ((Sep_core.Sue.kstats t).Sep_core.Sue.ks_panics >= 1);
  match !dumps with
  | [] -> Alcotest.fail "panic did not dump the flight recorder"
  | (reason, events) :: _ ->
    Alcotest.(check bool) "reason names the panic" true
      (String.length reason >= 12 && String.sub reason 0 12 = "kernel-panic");
    Alcotest.(check bool) "preceding kernel steps retained" true
      (List.exists (fun e -> e.Trace.cat = "sue" && e.Trace.name = "step") events);
    match Trace.last_dump () with
    | Some (r, _) -> check Alcotest.string "last_dump agrees" reason r
    | None -> Alcotest.fail "last_dump empty after a dump"

(* -- Span ------------------------------------------------------------------ *)

let test_span_gating () =
  Span.reset ();
  Span.set_enabled false;
  check Alcotest.int "disabled spans record nothing" 0
    (Span.with_ ~name:"t" (fun () -> 0));
  let h = Telemetry.histogram Span.registry "span.t" in
  check Alcotest.int "no observation while off" 0 (Telemetry.count h);
  Span.set_enabled true;
  Fun.protect ~finally:(fun () -> Span.set_enabled false) @@ fun () ->
  check Alcotest.int "result passes through" 41 (Span.with_ ~name:"t" (fun () -> 41));
  (try Span.with_ ~name:"t" (fun () -> failwith "boom") with Failure _ -> 0) |> ignore;
  check Alcotest.int "timed twice, also on raise" 2 (Telemetry.count h);
  Span.reset ();
  check Alcotest.int "reset zeroes" 0 (Telemetry.count h)

(* -- Sink ------------------------------------------------------------------ *)

let test_sink_jsonl () =
  let buf = Buffer.create 64 in
  let sink = Sink.of_buffer buf in
  Sink.emit sink (Json.Obj [ ("a", Json.Int 1) ]);
  Sink.emit sink (Json.Obj [ ("b", Json.Int 2) ]);
  check Alcotest.int "two lines emitted" 2 (Sink.emitted sink);
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  (match lines with
  | [ l1; l2; "" ] ->
    List.iter
      (fun l ->
        match Json.parse l with
        | Ok (Json.Obj _) -> ()
        | _ -> Alcotest.failf "line is not a JSON object: %s" l)
      [ l1; l2 ]
  | _ -> Alcotest.fail "JSONL framing: one object per line, trailing newline");
  check Alcotest.bool "lines are compact (no embedded newline)" false
    (String.contains (List.nth lines 0) '\n')

(* -- Kernel counters ------------------------------------------------------- *)

let test_sue_kstats () =
  let scenario = Sep_core.Scenarios.pipeline in
  let t = Sep_core.Sue.build scenario.Sep_core.Scenarios.cfg in
  for _ = 1 to 500 do
    ignore (Sep_core.Sue.step t [])
  done;
  let s = Sep_core.Sue.kstats t in
  let total l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  Alcotest.(check bool) "instructions retired" true (total s.Sep_core.Sue.ks_instrs > 0);
  Alcotest.(check bool) "traps serviced" true (total s.Sep_core.Sue.ks_traps > 0);
  Alcotest.(check bool) "voluntary yields" true (total s.Sep_core.Sue.ks_swaps > 0);
  Alcotest.(check bool) "context switches" true (s.Sep_core.Sue.ks_switches > 0);
  let reg = Sep_core.Sue.telemetry t in
  (match Telemetry.find_counter reg "sue.instrs.RED" with
  | Some c -> Alcotest.(check bool) "telemetry mirrors kstats" true (Telemetry.counter_value c > 0)
  | None -> Alcotest.fail "per-regime counter sue.instrs.RED missing");
  Sep_core.Sue.reset_kstats t;
  let z = Sep_core.Sue.kstats t in
  check Alcotest.int "reset zeroes instrs" 0 (total z.Sep_core.Sue.ks_instrs);
  check Alcotest.int "reset zeroes switches" 0 z.Sep_core.Sue.ks_switches

let test_sue_kstats_shared_by_copy () =
  let scenario = Sep_core.Scenarios.pipeline in
  let t = Sep_core.Sue.build scenario.Sep_core.Scenarios.cfg in
  let t' = Sep_core.Sue.copy t in
  for _ = 1 to 100 do
    ignore (Sep_core.Sue.step t' [])
  done;
  let s = Sep_core.Sue.kstats t in
  let total l = List.fold_left (fun acc (_, n) -> acc + n) 0 l in
  Alcotest.(check bool) "copies share one tally" true (total s.Sep_core.Sue.ks_instrs > 0)

(* -- Ktrace JSON ----------------------------------------------------------- *)

let all_event_samples =
  Sep_core.Ktrace.
    [
      ("executed", Executed { colour = Colour.red; pc = 3; instr = Isa.Nop });
      ("trapped", Trapped { colour = Colour.red; number = 1 });
      ("switched", Switched { from_ = Colour.red; to_ = Colour.black });
      ("blocked", Blocked Colour.black);
      ("parked", Parked Colour.green);
      ("woken", Woken Colour.red);
      ("arrived", Arrived { device = 0; word = 0xBEEF });
      ("emitted", Emitted { device = 1; word = 7 });
      ("stalled", Stalled);
    ]

let test_ktrace_event_json () =
  (* every constructor serializes, parses back, and carries its tag *)
  List.iter
    (fun (tag, ev) ->
      let v = roundtrip (Sep_core.Ktrace.event_to_json ev) in
      match Json.member "type" v with
      | Some (Json.String t) -> check Alcotest.string "type tag" tag t
      | _ -> Alcotest.failf "event %s: missing type tag" tag)
    all_event_samples

let test_ktrace_to_json () =
  let entries =
    [
      { Sep_core.Ktrace.step = 0; events = List.map snd all_event_samples };
      { Sep_core.Ktrace.step = 5; events = [ Sep_core.Ktrace.Stalled ] };
    ]
  in
  let lines =
    Sep_core.Ktrace.to_json entries |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per entry" 2 (List.length lines);
  List.iter2
    (fun line entry ->
      match Json.parse line with
      | Ok v -> (
        (match Json.member "step" v with
        | Some (Json.Int n) -> check Alcotest.int "step" entry.Sep_core.Ktrace.step n
        | _ -> Alcotest.fail "step field");
        match Json.member "events" v with
        | Some (Json.List evs) ->
          check Alcotest.int "event count" (List.length entry.Sep_core.Ktrace.events)
            (List.length evs)
        | _ -> Alcotest.fail "events field")
      | Error e -> Alcotest.fail e)
    lines entries

(* -- Metrics.loc_of_file --------------------------------------------------- *)

let test_loc_multiline_comments () =
  let path = Filename.temp_file "loc" ".ml" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc
    "let x = 1\n\
     (* a comment\n\
     \   spanning (* a nested block\n\
     \   *) still inside\n\
     *)\n\
     let y = 2  (* trailing comment *)\n\
     \n\
     \t  \n\
     (* one-liner *)\n\
     let z = 3\n";
  close_out oc;
  match Sep_core.Metrics.loc_of_file path with
  | None -> Alcotest.fail "file exists"
  | Some n -> check Alcotest.int "only the three code lines count" 3 n

let test_loc_missing_file () =
  check Alcotest.bool "missing file is None" true
    (Sep_core.Metrics.loc_of_file "/nonexistent/nope.ml" = None)

(* -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse standard" `Quick test_json_parse_standard;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pairs;
          Alcotest.test_case "lone surrogates rejected" `Quick test_json_lone_surrogates_rejected;
          qtest json_int_roundtrip;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "counter and gauge semantics" `Quick test_counter_semantics;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "merge associativity" `Quick test_merge_associative;
          Alcotest.test_case "snapshot shape" `Quick test_snapshot_shape;
          Alcotest.test_case "quantile accessors" `Quick test_quantile_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled recorder is inert" `Quick test_trace_disabled_records_nothing;
          Alcotest.test_case "ring wraparound" `Quick test_trace_ring_wraparound;
          Alcotest.test_case "flow edges" `Quick test_trace_flow_edges;
          Alcotest.test_case "chrome export" `Quick test_trace_chrome_export;
          Alcotest.test_case "dump on kernel panic" `Quick test_trace_dump_on_panic;
        ] );
      ( "span",
        [ Alcotest.test_case "gating and exception safety" `Quick test_span_gating ] );
      ("sink", [ Alcotest.test_case "jsonl framing" `Quick test_sink_jsonl ]);
      ( "sue",
        [
          Alcotest.test_case "kernel counters" `Quick test_sue_kstats;
          Alcotest.test_case "counters shared by copy" `Quick test_sue_kstats_shared_by_copy;
        ] );
      ( "ktrace",
        [
          Alcotest.test_case "every event constructor" `Quick test_ktrace_event_json;
          Alcotest.test_case "jsonl entries" `Quick test_ktrace_to_json;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "loc: nested multi-line comments" `Quick test_loc_multiline_comments;
          Alcotest.test_case "loc: missing file" `Quick test_loc_missing_file;
        ] );
    ]
