(* Tests for the machine-level separation kernel: layout, context
   switching, channels, faults, interrupts, abstraction functions. *)

module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module AR = Sep_core.Abstract_regime
module Prng = Sep_util.Prng

let qtest = QCheck_alcotest.to_alcotest

let regime colour part_size program devices = { Config.colour; part_size; program; devices }

let build ?bugs ?(channels = [ (Colour.red, Colour.black, 2) ]) ?(cut = false) red_prog black_prog
    ~red_devices ~black_devices () =
  let cfg =
    Config.make
      ~regimes:
        [ regime Colour.red 24 red_prog red_devices; regime Colour.black 24 black_prog black_devices ]
      ~channels ()
  in
  let cfg = if cut then Config.cut_all cfg else cfg in
  Sue.build ?bugs cfg

let run_steps t n = for _ = 1 to n do ignore (Sue.step t []) done

let spin = [ Isa.Label "spin"; Isa.Instr (Isa.Trap 0); Isa.Branch "spin" ]

let i x = Isa.Instr x

(* -- layout and construction ------------------------------------------------ *)

let test_kernel_words () =
  let t = build spin spin ~red_devices:[] ~black_devices:[] () in
  (* 2 header + 2 regimes * 12 + one channel of capacity 2: 2 areas * (2+2) *)
  Alcotest.(check int) "kernel layout size" (2 + 24 + 8) (Sue.kernel_words t)

let test_build_rejects_overflow () =
  let big = List.init 30 (fun _ -> i Isa.Nop) in
  Alcotest.check_raises "program too large"
    (Invalid_argument "Sue.build: program of RED overflows its partition") (fun () ->
      ignore (build big spin ~red_devices:[] ~black_devices:[] ()))

let test_build_rejects_bad_config () =
  let cfg =
    {
      Config.regimes = [ regime Colour.red 8 spin []; regime Colour.red 8 spin [] ];
      channels = [];
      quantum = None;
    }
  in
  Alcotest.check_raises "duplicate colours"
    (Invalid_argument "Sue.build: duplicate regime colour RED") (fun () ->
      ignore (Sue.build cfg))

let test_device_ownership () =
  let t =
    build spin spin ~red_devices:[ Machine.Rx; Machine.Tx ] ~black_devices:[ Machine.Rx ] ()
  in
  Alcotest.(check string) "dev 0" "RED" (Colour.name (Sue.device_owner t 0));
  Alcotest.(check string) "dev 1" "RED" (Colour.name (Sue.device_owner t 1));
  Alcotest.(check string) "dev 2" "BLACK" (Colour.name (Sue.device_owner t 2))

(* -- context switching ------------------------------------------------------- *)

let test_round_robin () =
  let t = build spin spin ~red_devices:[] ~black_devices:[] () in
  Alcotest.(check string) "red first" "RED" (Colour.name (Sue.current_colour t));
  ignore (Sue.step t []);
  (* RED executed Trap 0 and yielded *)
  Alcotest.(check string) "black next" "BLACK" (Colour.name (Sue.current_colour t));
  ignore (Sue.step t []);
  Alcotest.(check string) "back to red" "RED" (Colour.name (Sue.current_colour t))

let test_swap_preserves_context () =
  let red_prog =
    [
      i (Isa.Loadi (1, 11));
      i (Isa.Loadi (3, 7));
      i (Isa.Loadi (5, 0));  (* sets the Z flag *)
      i (Isa.Trap 0);
      i (Isa.Loadi (4, 0xaa));
      i Isa.Halt;
    ]
  in
  let black_prog = [ i (Isa.Loadi (1, 22)); i (Isa.Trap 0); i Isa.Halt ] in
  let t = build red_prog black_prog ~red_devices:[] ~black_devices:[] () in
  run_steps t 4;
  (* RED has yielded; its view must show the saved context unchanged *)
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "saved r1" 11 red.AR.regs.(1);
  Alcotest.(check int) "saved r3" 7 red.AR.regs.(3);
  Alcotest.(check bool) "saved z flag" true red.AR.flag_z;
  Alcotest.(check string) "black running" "BLACK" (Colour.name (Sue.current_colour t));
  run_steps t 3;
  (* BLACK yielded back; RED resumed exactly where it left off *)
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "resumed r4" 0xaa red.AR.regs.(4);
  Alcotest.(check int) "r1 survived the other regime" 11 red.AR.regs.(1);
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "black r1 is its own" 22 black.AR.regs.(1)

let test_swap_with_no_other_runnable () =
  let t =
    build [ i (Isa.Loadi (1, 5)); i (Isa.Trap 0); i (Isa.Loadi (2, 6)); i Isa.Halt ]
      [ i Isa.Halt ] ~red_devices:[] ~black_devices:[] ()
  in
  (* BLACK halts on its first quantum and never wakes: RED's SWAPs are no-ops *)
  run_steps t 8;
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "red kept running" 6 red.AR.regs.(2);
  Alcotest.(check bool) "black is waiting" true (Sue.regime_status t Colour.black = AR.Waiting)

(* -- channels ---------------------------------------------------------------- *)

let sender_prog = [ i (Isa.Loadi (0, 0)); i (Isa.Loadi (1, 42)); i (Isa.Trap 1); i (Isa.Trap 0); i Isa.Halt ]
let receiver_prog = [ i (Isa.Loadi (0, 0)); i (Isa.Trap 2); i Isa.Halt ]

let test_channel_roundtrip_uncut () =
  let t = build sender_prog receiver_prog ~red_devices:[] ~black_devices:[] () in
  run_steps t 10;
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "received word" 42 black.AR.regs.(1);
  Alcotest.(check int) "recv status ok" 1 black.AR.regs.(2)

let test_channel_cut_is_dry () =
  let t = build ~cut:true sender_prog receiver_prog ~red_devices:[] ~black_devices:[] () in
  run_steps t 10;
  let red = Sue.phi t Colour.red in
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "send end accepted it" 1 red.AR.regs.(2);
  Alcotest.(check (list int)) "send end holds the word" [ 42 ] red.AR.sends.(0).AR.ce_contents;
  Alcotest.(check int) "receiver got nothing" 0 black.AR.regs.(2);
  Alcotest.(check (list int)) "receive end empty" [] black.AR.recvs.(0).AR.ce_contents

let test_channel_capacity () =
  let red_prog =
    [
      i (Isa.Loadi (0, 0));
      i (Isa.Loadi (1, 1));
      i (Isa.Trap 1);
      i (Isa.Trap 1);
      i (Isa.Trap 1);  (* third send exceeds capacity 2 *)
      i Isa.Halt;
    ]
  in
  let t = build ~cut:true red_prog [ i Isa.Halt ] ~red_devices:[] ~black_devices:[] () in
  run_steps t 8;
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "send on full channel fails" 0 red.AR.regs.(2);
  Alcotest.(check (list int)) "buffer holds capacity" [ 1; 1 ] red.AR.sends.(0).AR.ce_contents

let test_channel_wrong_owner () =
  (* BLACK tries to send on a channel it only receives on *)
  let black_prog = [ i (Isa.Loadi (0, 0)); i (Isa.Loadi (1, 9)); i (Isa.Trap 1); i Isa.Halt ] in
  let t = build spin black_prog ~red_devices:[] ~black_devices:[] () in
  run_steps t 10;
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "not yours" 2 black.AR.regs.(2)

let test_channel_bad_id () =
  let red_prog = [ i (Isa.Loadi (0, 7)); i (Isa.Trap 1); i Isa.Halt ] in
  let t = build red_prog spin ~red_devices:[] ~black_devices:[] () in
  run_steps t 4;
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "unknown channel" 2 red.AR.regs.(2)

(* A flipped ring head word must not take RECV out of bounds: the pop
   repairs the head (mod capacity), audits exactly one
   [Channel_head_corrupt], and still delivers the buffered word. *)
let test_ring_head_corruption_repaired () =
  (* delay the receiver one quantum so the word is in flight when we
     corrupt the head *)
  let receiver = [ i (Isa.Trap 0); i (Isa.Loadi (0, 0)); i (Isa.Trap 2); i Isa.Halt ] in
  let t = build sender_prog receiver ~red_devices:[] ~black_devices:[] () in
  let send_area, _, cap = Option.get (Sue.channel_area t 0) in
  let m = Sue.machine t in
  let rec fill n =
    if n = 0 then Alcotest.fail "send never landed"
    else if Machine.read_phys m (send_area + 1) = 0 then begin
      ignore (Sue.step t []);
      fill (n - 1)
    end
  in
  fill 20;
  (* head := a multiple of cap beyond the ring: out of range, but congruent
     to the true head so the repair is lossless *)
  Machine.write_phys m send_area (3 * cap);
  run_steps t 10;
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "word still delivered" 42 black.AR.regs.(1);
  Alcotest.(check int) "recv status ok" 1 black.AR.regs.(2);
  let head = Machine.read_phys m send_area in
  Alcotest.(check bool) "head repaired in bounds" true (head >= 0 && head < cap);
  let corruptions =
    List.filter (function Sue.Channel_head_corrupt _ -> true | _ -> false) (Sue.drain_faults t)
  in
  (match corruptions with
  | [ Sue.Channel_head_corrupt addr ] ->
    Alcotest.(check int) "audit names the ring" send_area addr
  | faults -> Alcotest.failf "expected one channel audit, got %d" (List.length faults));
  Alcotest.(check bool) "audit counted" true (Sue.audit_count t >= 1)

let test_ring_head_corruption_empty_ring_ignored () =
  (* with the ring empty the pop never dereferences the head, so a corrupt
     head word on an empty ring is not (yet) an audit event *)
  let receiver = [ i (Isa.Loadi (0, 0)); i (Isa.Trap 2); i (Isa.Trap 0); i Isa.Halt ] in
  let t = build spin receiver ~red_devices:[] ~black_devices:[] () in
  let send_area, _, cap = Option.get (Sue.channel_area t 0) in
  Machine.write_phys (Sue.machine t) send_area (5 * cap);
  run_steps t 10;
  let black = Sue.phi t Colour.black in
  Alcotest.(check int) "recv found nothing" 0 black.AR.regs.(2);
  Alcotest.(check (list int)) "no audit for an undereferenced head" []
    (List.filter_map
       (function Sue.Channel_head_corrupt a -> Some a | _ -> None)
       (Sue.drain_faults t))

(* -- faults and parking ------------------------------------------------------- *)

let test_fault_parks () =
  (* load from beyond the partition *)
  let red_prog = [ i (Isa.Loadi (1, 60)); i (Isa.Load (0, 1, 0)); i (Isa.Loadi (2, 1)) ] in
  let t = build red_prog spin ~red_devices:[] ~black_devices:[] () in
  run_steps t 6;
  Alcotest.(check bool) "red parked" true (Sue.regime_status t Colour.red = AR.Parked);
  Alcotest.(check string) "black still runs" "BLACK" (Colour.name (Sue.current_colour t));
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "fault stopped execution" 0 red.AR.regs.(2)

let test_unknown_trap_parks () =
  let t = build [ i (Isa.Trap 9) ] spin ~red_devices:[] ~black_devices:[] () in
  run_steps t 3;
  Alcotest.(check bool) "parked" true (Sue.regime_status t Colour.red = AR.Parked)

(* -- interrupts and waiting ----------------------------------------------------- *)

let wait_consume =
  [
    i (Isa.Loadi (6, 1));
    i (Isa.Shl (6, 15));
    Isa.Label "loop";
    i Isa.Halt;
    i (Isa.Load (2, 6, 0));
    Isa.Branch "loop";
  ]

let test_wake_on_input () =
  let t = build wait_consume spin ~red_devices:[ Machine.Rx ] ~black_devices:[] () in
  run_steps t 4;
  Alcotest.(check bool) "red waiting" true (Sue.regime_status t Colour.red = AR.Waiting);
  ignore (Sue.step t [ (0, 0x5c) ]);
  Alcotest.(check bool) "red woken" true (Sue.regime_status t Colour.red = AR.Running);
  run_steps t 3;
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "consumed the word" 0x5c red.AR.regs.(2)

let test_wait_falls_through_with_pending_data () =
  let red_prog =
    [
      i (Isa.Loadi (6, 1));
      i (Isa.Shl (6, 15));
      i Isa.Halt;  (* data is already pending: must fall through *)
      i (Isa.Load (2, 6, 0));
      i Isa.Halt;
    ]
  in
  let t = build red_prog spin ~red_devices:[ Machine.Rx ] ~black_devices:[] () in
  ignore (Sue.step t [ (0, 0x77) ]);
  run_steps t 4;
  let red = Sue.phi t Colour.red in
  Alcotest.(check int) "halt did not lose the word" 0x77 red.AR.regs.(2)

let test_outputs_and_drain () =
  let red_prog =
    [
      i (Isa.Loadi (6, 1));
      i (Isa.Shl (6, 15));
      i (Isa.Loadi (0, 0x3c));
      i (Isa.Store (0, 6, 0));  (* Tx is slot 0 *)
      i Isa.Halt;
    ]
  in
  let t = build red_prog spin ~red_devices:[ Machine.Tx ] ~black_devices:[] () in
  let outs = Sue.run t ~steps:6 ~inputs:(fun _ -> []) in
  Alcotest.(check (list (list (pair int int)))) "word on the wire exactly once" [ [ (0, 0x3c) ] ] outs

(* -- abstraction ----------------------------------------------------------------- *)

let pipeline = Sep_core.Scenarios.pipeline

let test_phi_live_vs_saved () =
  let t = Sue.build pipeline.Sep_core.Scenarios.cfg in
  (* RED is current: phi reads live registers. *)
  run_steps t 1;
  let live = Sue.phi t Colour.red in
  Alcotest.(check int) "r6 set by first instruction" 1 live.AR.regs.(6)

let phi_scramble_preserves_own_view =
  QCheck.Test.make ~name:"phi c (scramble_others s c) = phi c s" ~count:60
    QCheck.(pair small_int (int_range 0 40))
    (fun (seed, steps) ->
      let rng = Prng.create seed in
      let t = Sue.build pipeline.Sep_core.Scenarios.cfg in
      let alphabet = Array.of_list pipeline.Sep_core.Scenarios.alphabet in
      for _ = 1 to steps do
        ignore (Sue.step t (Prng.choose rng alphabet))
      done;
      List.for_all
        (fun c -> AR.equal (Sue.phi t c) (Sue.phi (Sue.scramble_others rng t c) c))
        [ Colour.red; Colour.black ])

let phi_scramble_changes_other_view =
  QCheck.Test.make ~name:"scrambling perturbs the other colour's view" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let t = Sue.build pipeline.Sep_core.Scenarios.cfg in
      let s' = Sue.scramble_others rng t Colour.red in
      (* 24 words of BLACK partition are randomized: collision is absurdly unlikely *)
      not (AR.equal (Sue.phi t Colour.black) (Sue.phi s' Colour.black)))

let test_nextop_names () =
  let t = Sue.build pipeline.Sep_core.Scenarios.cfg in
  let name = Sue.nextop_name t in
  Alcotest.(check bool) "active regime op" true
    (String.length name > 4 && String.sub name 0 4 = "RED:");
  let t2 = build [ i Isa.Halt ] [ i Isa.Halt ] ~red_devices:[] ~black_devices:[] () in
  run_steps t2 2;
  let stall = Sue.nextop_name t2 in
  Alcotest.(check bool) "stall op once everyone waits" true
    (String.length stall > 6 && String.sub stall (String.length stall - 6) 6 = ":stall")

let test_system_extracts () =
  let sys = Sue.to_system ~inputs:pipeline.Sep_core.Scenarios.alphabet pipeline.Sep_core.Scenarios.cfg in
  let i = [ (0, 5); (2, 7) ] in
  Alcotest.(check (list (pair int int))) "red components" [ (0, 5) ]
    (sys.Sep_model.System.extract_input Colour.red i);
  Alcotest.(check (list (pair int int))) "black components" [ (2, 7) ]
    (sys.Sep_model.System.extract_input Colour.black i)

(* -- the kernel as machine code ---------------------------------------------------- *)

let pipeline_cfg = Sep_core.Scenarios.pipeline.Sep_core.Scenarios.cfg
let pipeline_alpha = Array.of_list Sep_core.Scenarios.pipeline.Sep_core.Scenarios.alphabet

let test_asm_kernel_functionally_equivalent () =
  let a = Sue.build ~impl:Sue.Microcode pipeline_cfg in
  let b = Sue.build ~impl:Sue.Assembly pipeline_cfg in
  let inputs n = if n mod 20 = 0 && n < 60 then [ (0, (n / 20) + 1) ] else [] in
  Alcotest.(check (list (list (pair int int)))) "same outputs from machine code"
    (Sue.run a ~steps:100 ~inputs) (Sue.run b ~steps:100 ~inputs);
  Alcotest.(check bool) "the kernel really is code" true (Sue.kernel_code_words b > 100);
  Alcotest.(check int) "and microcode is not" 0 (Sue.kernel_code_words a)

let asm_phi_lockstep =
  QCheck.Test.make ~name:"assembly and microcode kernels agree on every view, every step"
    ~count:20 QCheck.small_int
    (fun seed ->
      let rng = Prng.create seed in
      let a = Sue.build ~impl:Sue.Microcode pipeline_cfg in
      let b = Sue.build ~impl:Sue.Assembly pipeline_cfg in
      let ok = ref true in
      for _ = 1 to 200 do
        let input = Prng.choose rng pipeline_alpha in
        ignore (Sue.step a input);
        ignore (Sue.step b input);
        List.iter
          (fun c -> if not (AR.equal (Sue.phi a c) (Sue.phi b c)) then ok := false)
          [ Colour.red; Colour.black ]
      done;
      !ok)

let test_asm_rejects_unsupported () =
  Alcotest.check_raises "quantum unsupported"
    (Invalid_argument "Sue.build (assembly): preemption quantum not supported") (fun () ->
      ignore
        (Sue.build ~impl:Sue.Assembly
           (Config.make ~quantum:3
              ~regimes:[ { Config.colour = Colour.red; part_size = 8; program = spin; devices = [] } ]
              ~channels:[] ())));
  Alcotest.check_raises "capacity must be 1"
    (Invalid_argument "Sue.build (assembly): channel capacities must be 1") (fun () ->
      ignore
        (Sue.build ~impl:Sue.Assembly
           (Config.make
              ~regimes:
                [
                  { Config.colour = Colour.red; part_size = 8; program = spin; devices = [] };
                  { Config.colour = Colour.black; part_size = 8; program = spin; devices = [] };
                ]
              ~channels:[ (Colour.red, Colour.black, 2) ] ())))

(* -- preemption ------------------------------------------------------------------ *)

let greedy mask =
  [
    i (Isa.Loadi (5, 1));
    i (Isa.Loadi (3, mask));
    i (Isa.Loadi (4, 9));
    Isa.Label "loop";
    i (Isa.Load (1, 4, 0));
    i (Isa.Add (1, 5));
    i (Isa.And_ (1, 3));
    i (Isa.Store (1, 4, 0));
    Isa.Branch "loop";
  ]

let preemptive_pair quantum =
  Sue.build
    (Config.make ~quantum
       ~regimes:
         [
           { Config.colour = Colour.red; part_size = 10; program = greedy 255; devices = [] };
           { Config.colour = Colour.black; part_size = 10; program = greedy 255; devices = [] };
         ]
       ~channels:[] ())

let progress t c = (Sue.phi t c).AR.mem.(9)

let test_preemption_shares_processor () =
  let t = preemptive_pair 3 in
  run_steps t 120;
  Alcotest.(check bool) "red progressed" true (progress t Colour.red > 0);
  Alcotest.(check bool) "black progressed despite never yielding" true
    (progress t Colour.black > 0);
  (* both got comparable shares of a processor neither would give up *)
  let r = progress t Colour.red and b = progress t Colour.black in
  Alcotest.(check bool) "shares comparable" true (abs (r - b) <= 3)

let test_voluntary_kernel_starves () =
  (* the SUE discipline, same programs: whoever runs first keeps the CPU *)
  let t =
    Sue.build
      (Config.make
         ~regimes:
           [
             { Config.colour = Colour.red; part_size = 10; program = greedy 255; devices = [] };
             { Config.colour = Colour.black; part_size = 10; program = greedy 255; devices = [] };
           ]
         ~channels:[] ())
  in
  run_steps t 120;
  Alcotest.(check bool) "red hogged" true (progress t Colour.red > 0);
  Alcotest.(check int) "black starved" 0 (progress t Colour.black)

let test_preemptive_kernel_verifies () =
  let inst = Sep_core.Scenarios.preemptive in
  let report =
    Sep_core.Separability.check
      (Sue.to_system ~inputs:inst.Sep_core.Scenarios.alphabet inst.Sep_core.Scenarios.cfg)
  in
  Alcotest.(check bool) "preemption preserves separability" true
    (Sep_core.Separability.verified report)

let test_preemptive_mutant_caught () =
  (* context switches now happen behind the regimes' backs, so a broken
     save path is exercised constantly *)
  let inst = Sep_core.Scenarios.preemptive in
  let report =
    Sep_core.Separability.check
      (Sue.to_system ~bugs:[ Sue.Forget_register_save ]
         ~inputs:inst.Sep_core.Scenarios.alphabet inst.Sep_core.Scenarios.cfg)
  in
  Alcotest.(check bool) "forget-register-save caught under preemption" false
    (Sep_core.Separability.verified report)

(* -- tracing ------------------------------------------------------------------- *)

module Ktrace = Sep_core.Ktrace

let test_trace_is_nonperturbing () =
  let cfg = Sep_core.Scenarios.pipeline.Sep_core.Scenarios.cfg in
  let plain = Sue.build cfg in
  let traced = Sue.build cfg in
  let input n = if n mod 7 = 0 then [ (0, n mod 3) ] else [] in
  for n = 0 to 59 do
    ignore (Sue.step plain (input n));
    ignore (Ktrace.step traced (input n))
  done;
  Alcotest.(check bool) "observing the kernel does not change it" true (Sue.equal plain traced)

let test_trace_events () =
  let t = Sue.build Sep_core.Scenarios.pipeline.Sep_core.Scenarios.cfg in
  let entries = Ktrace.record t ~steps:40 ~inputs:(fun n -> if n = 0 then [ (0, 1) ] else []) in
  let events = List.concat_map (fun e -> e.Ktrace.events) entries in
  let has p = List.exists p events in
  Alcotest.(check bool) "saw the arrival" true
    (has (function Ktrace.Arrived { device = 0; word = 1 } -> true | _ -> false));
  Alcotest.(check bool) "saw instructions" true
    (has (function Ktrace.Executed _ -> true | _ -> false));
  Alcotest.(check bool) "saw a trap" true
    (has (function Ktrace.Trapped _ -> true | _ -> false));
  Alcotest.(check bool) "saw a context switch" true
    (has (function Ktrace.Switched _ -> true | _ -> false));
  Alcotest.(check bool) "saw the echo emission" true
    (has (function Ktrace.Emitted { device = 1; word = 1 } -> true | _ -> false));
  let rendered = Ktrace.render entries in
  Alcotest.(check bool) "renders nonempty lines" true (String.length rendered > 100)

let test_trace_preemptive_switches () =
  let t = preemptive_pair 3 in
  let entries = Ktrace.record t ~steps:12 ~inputs:(fun _ -> []) in
  let events = List.concat_map (fun e -> e.Ktrace.events) entries in
  let switches =
    List.length (List.filter (function Ktrace.Switched _ -> true | _ -> false) events)
  in
  let traps = List.exists (function Ktrace.Trapped _ -> true | _ -> false) events in
  Alcotest.(check bool) "switches without any trap" true (switches >= 3 && not traps)

let test_trace_park_event () =
  let t = build [ i (Isa.Trap 9) ] spin ~red_devices:[] ~black_devices:[] () in
  let entries = Ktrace.record t ~steps:4 ~inputs:(fun _ -> []) in
  let events = List.concat_map (fun e -> e.Ktrace.events) entries in
  Alcotest.(check bool) "park visible" true
    (List.exists (function Ktrace.Parked c -> Colour.equal c Colour.red | _ -> false) events)

(* -- the machine-level SNFE --------------------------------------------------- *)

let snfe_uncut () = Config.cut_none Sep_core.Scenarios.snfe_micro.Sep_core.Scenarios.cfg

let test_snfe_micro_end_to_end () =
  let t = Sue.build (snfe_uncut ()) in
  (* host words arrive on RED's Rx (device 0); BLACK's Tx is device 2 *)
  let words = [ 5; 1; 0 ] in
  let inputs n = if n mod 30 = 0 && n / 30 < 3 then [ (0, List.nth words (n / 30)) ] else [] in
  let outs = List.concat (Sue.run t ~steps:150 ~inputs) in
  let expected = List.map (fun w -> (2, w lxor 0x2a)) words in
  Alcotest.(check (list (pair int int))) "network sees exactly the ciphertext" expected outs

let rogue_red header =
  [
    i (Isa.Loadi (1, header));
    i (Isa.Loadi (0, 1));
    i (Isa.Trap 1);  (* header straight to the censor *)
    i (Isa.Trap 0);
    i Isa.Halt;
  ]

let with_rogue_red header =
  let cfg = snfe_uncut () in
  let regimes =
    List.map
      (fun r ->
        if Colour.equal r.Config.colour Colour.red then { r with Config.program = rogue_red header }
        else r)
      cfg.Config.regimes
  in
  { cfg with Config.regimes = regimes }

(* Whether the censor ever buffered anything on its outgoing channel. *)
let censor_forwarded t steps =
  let censor = Colour.make "CENSOR" in
  let forwarded = ref false in
  for _ = 1 to steps do
    ignore (Sue.step t []);
    let view = Sue.phi t censor in
    Array.iter
      (fun e -> if e.AR.ce_chan = 2 && e.AR.ce_contents <> [] then forwarded := true)
      view.AR.sends
  done;
  !forwarded

let test_snfe_micro_censor_blocks_oversize () =
  Alcotest.(check bool) "an over-long header never crosses the bypass" false
    (censor_forwarded (Sue.build (with_rogue_red 0xff)) 40)

let test_snfe_micro_censor_passes_wellformed () =
  Alcotest.(check bool) "a two-bit header is vetted through" true
    (censor_forwarded (Sue.build (with_rogue_red 2)) 40)

let test_device_slot () =
  let t =
    build spin spin ~red_devices:[ Machine.Rx; Machine.Tx ] ~black_devices:[ Machine.Rx ] ()
  in
  Alcotest.(check (pair string int)) "dev 1 is red slot 1" ("RED", 1)
    (let c, s = Sue.device_slot t 1 in
     (Colour.name c, s));
  Alcotest.(check (pair string int)) "dev 2 is black slot 0" ("BLACK", 0)
    (let c, s = Sue.device_slot t 2 in
     (Colour.name c, s))

let test_scenarios_wellformed () =
  (* every shipped scenario builds and its alphabet addresses only Rx devices *)
  List.iter
    (fun (inst : Sep_core.Scenarios.instance) ->
      let t = Sue.build inst.Sep_core.Scenarios.cfg in
      List.iter
        (List.iter (fun (d, w) ->
             Alcotest.(check bool)
               (Fmt.str "%s: input device %d is Rx" inst.Sep_core.Scenarios.label d)
               true
               (Sep_hw.Machine.device_kind (Sue.machine t) d = Machine.Rx);
             Alcotest.(check bool) "word in range" true (w >= 0 && w <= 0xffff)))
        inst.Sep_core.Scenarios.alphabet)
    Sep_core.Scenarios.all

let test_copy_equal_hash () =
  let t = Sue.build pipeline.Sep_core.Scenarios.cfg in
  let t2 = Sue.copy t in
  Alcotest.(check bool) "copies equal" true (Sue.equal t t2);
  Alcotest.(check bool) "hash agrees" true (Sue.hash t = Sue.hash t2);
  ignore (Sue.step t [ (0, 1) ]);
  Alcotest.(check bool) "diverged" false (Sue.equal t t2)

(* The mutant catalogue must stay in lockstep with the bug list: every
   seeded bug has an expectation, and every one of the six conditions is
   some mutant's predicted primary — otherwise a condition has no
   demonstrated discriminating power (E4). *)
let test_mutant_catalogue_covers_bugs_and_conditions () =
  let module Mutants = Sep_core.Mutants in
  List.iter
    (fun bug ->
      if
        not
          (List.exists (fun (e : Mutants.expectation) -> e.Mutants.bug = bug) Mutants.catalogue)
      then Alcotest.failf "no mutant expectation for %a" Sue.pp_bug bug)
    Sue.all_bugs;
  let primaries =
    List.sort_uniq compare (List.map (fun (e : Mutants.expectation) -> e.Mutants.primary) Mutants.catalogue)
  in
  List.iter
    (fun cond ->
      if not (List.mem cond primaries) then
        Alcotest.failf "condition %d is no mutant's primary" cond)
    [ 1; 2; 3; 4; 5; 6 ];
  List.iter
    (fun (e : Mutants.expectation) ->
      if e.Mutants.primary < 1 || e.Mutants.primary > 6 then
        Alcotest.failf "%a predicts out-of-range condition %d" Sue.pp_bug e.Mutants.bug
          e.Mutants.primary)
    Mutants.catalogue

let () =
  Alcotest.run "sue"
    [
      ( "layout",
        [
          Alcotest.test_case "kernel words" `Quick test_kernel_words;
          Alcotest.test_case "rejects overflow" `Quick test_build_rejects_overflow;
          Alcotest.test_case "rejects bad config" `Quick test_build_rejects_bad_config;
          Alcotest.test_case "device ownership" `Quick test_device_ownership;
        ] );
      ( "switching",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin;
          Alcotest.test_case "context preserved" `Quick test_swap_preserves_context;
          Alcotest.test_case "no other runnable" `Quick test_swap_with_no_other_runnable;
        ] );
      ( "channels",
        [
          Alcotest.test_case "uncut roundtrip" `Quick test_channel_roundtrip_uncut;
          Alcotest.test_case "cut channel is dry" `Quick test_channel_cut_is_dry;
          Alcotest.test_case "capacity" `Quick test_channel_capacity;
          Alcotest.test_case "wrong owner" `Quick test_channel_wrong_owner;
          Alcotest.test_case "bad id" `Quick test_channel_bad_id;
          Alcotest.test_case "head corruption repaired" `Quick test_ring_head_corruption_repaired;
          Alcotest.test_case "empty ring corruption inert" `Quick
            test_ring_head_corruption_empty_ring_ignored;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault parks" `Quick test_fault_parks;
          Alcotest.test_case "unknown trap parks" `Quick test_unknown_trap_parks;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "wake on input" `Quick test_wake_on_input;
          Alcotest.test_case "wait falls through" `Quick test_wait_falls_through_with_pending_data;
          Alcotest.test_case "outputs and drain" `Quick test_outputs_and_drain;
        ] );
      ( "assembly kernel",
        [
          Alcotest.test_case "functional equivalence" `Quick test_asm_kernel_functionally_equivalent;
          qtest asm_phi_lockstep;
          Alcotest.test_case "rejects unsupported configs" `Quick test_asm_rejects_unsupported;
        ] );
      ( "preemption",
        [
          Alcotest.test_case "shares the processor" `Quick test_preemption_shares_processor;
          Alcotest.test_case "voluntary kernel starves" `Quick test_voluntary_kernel_starves;
          Alcotest.test_case "verifies under PoS" `Quick test_preemptive_kernel_verifies;
          Alcotest.test_case "mutant caught" `Quick test_preemptive_mutant_caught;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "non-perturbing" `Quick test_trace_is_nonperturbing;
          Alcotest.test_case "event kinds" `Quick test_trace_events;
          Alcotest.test_case "preemptive switches" `Quick test_trace_preemptive_switches;
          Alcotest.test_case "park event" `Quick test_trace_park_event;
        ] );
      ( "snfe micro",
        [
          Alcotest.test_case "end to end encryption" `Quick test_snfe_micro_end_to_end;
          Alcotest.test_case "censor blocks oversize" `Quick test_snfe_micro_censor_blocks_oversize;
          Alcotest.test_case "censor passes wellformed" `Quick test_snfe_micro_censor_passes_wellformed;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "live vs saved" `Quick test_phi_live_vs_saved;
          qtest phi_scramble_preserves_own_view;
          qtest phi_scramble_changes_other_view;
          Alcotest.test_case "nextop names" `Quick test_nextop_names;
          Alcotest.test_case "system extracts" `Quick test_system_extracts;
          Alcotest.test_case "device slot" `Quick test_device_slot;
          Alcotest.test_case "scenarios wellformed" `Quick test_scenarios_wellformed;
          Alcotest.test_case "copy equal hash" `Quick test_copy_equal_hash;
          Alcotest.test_case "mutant catalogue coverage" `Quick
            test_mutant_catalogue_covers_bugs_and_conditions;
        ] );
    ]
