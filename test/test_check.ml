(* Tests for the property-based verification engine: generators and
   shrinking, the property runner, model-based checks of Sep_util via the
   engine, coverage-guided fuzzing, the differential properties and the
   mutant kill-rate scorer (including the checked-in regression corpus). *)

module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Scenarios = Sep_core.Scenarios
module Mutants = Sep_core.Mutants
module Separability = Sep_core.Separability
module Prng = Sep_util.Prng
module Json = Sep_util.Json
module Fifo = Sep_util.Fifo
module Bits = Sep_util.Bits
module Gen = Sep_check.Gen
module Shrink = Sep_check.Shrink
module Prop = Sep_check.Prop
module Fuzz = Sep_check.Fuzz
module Diff = Sep_check.Diff
module Score = Sep_check.Score

let check = Alcotest.check

let pipeline = Scenarios.pipeline
let pipeline_cfg = pipeline.Scenarios.cfg

(* -- Generators ------------------------------------------------------------ *)

let test_gen_deterministic () =
  let draw () = Gen.generate ~seed:5 ~count:50 Gen.int_any in
  check (Alcotest.list Alcotest.int) "same seed, same stream" (draw ()) (draw ());
  Alcotest.(check bool) "different seed differs" false
    (draw () = Gen.generate ~seed:6 ~count:50 Gen.int_any)

let test_gen_bounds () =
  List.iter
    (fun n -> Alcotest.(check bool) "int in [0,10)" true (n >= 0 && n < 10))
    (Gen.generate ~seed:1 ~count:200 (Gen.int 10));
  List.iter
    (fun n -> Alcotest.(check bool) "int_in in [3,7]" true (n >= 3 && n <= 7))
    (Gen.generate ~seed:2 ~count:200 (Gen.int_in 3 7))

let test_gen_config_valid () =
  List.iter
    (fun cfg ->
      (match Config.validate cfg with
      | Ok () -> ()
      | Error m -> Alcotest.failf "generated config invalid: %s" m);
      let t = Sue.build cfg in
      for _ = 1 to 5 do
        ignore (Sue.step t [])
      done)
    (Gen.generate ~seed:11 ~count:25 (Gen.config ()))

let test_gen_schedule_in_alphabet () =
  let alphabet = pipeline.Scenarios.alphabet in
  List.iter
    (fun sched ->
      List.iter
        (fun step -> Alcotest.(check bool) "step from alphabet" true (List.mem step alphabet))
        sched)
    (Gen.generate ~seed:3 ~count:30 (Gen.schedule ~alphabet ~max_len:12))

let test_gen_actions_capable () =
  let caps = Gen.caps_of_regime pipeline_cfg Colour.red in
  List.iter
    (fun acts ->
      List.iter
        (fun a ->
          let ok =
            match a with
            | Gen.Set _ | Gen.Arith _ | Gen.Wait | Gen.Yield -> true
            | Gen.Emit (s, _) -> List.mem s caps.Gen.tx_slots
            | Gen.Poll s -> List.mem s caps.Gen.rx_slots
            | Gen.Send (ch, _) -> List.mem ch caps.Gen.send_chans
            | Gen.Recv ch -> List.mem ch caps.Gen.recv_chans
          in
          Alcotest.(check bool) "action within capabilities" true ok)
        acts)
    (Gen.generate ~seed:4 ~count:40 (Gen.actions caps ~max:8))

let test_gen_render_assembles () =
  let caps = Gen.caps_of_regime pipeline_cfg Colour.red in
  List.iter
    (fun acts ->
      let words = Isa.assemble (Gen.render acts) in
      check Alcotest.int "instr_count is the assembled length" (Array.length words)
        (Gen.instr_count acts))
    (Gen.generate ~seed:9 ~count:40 (Gen.actions caps ~max:8))

let test_gen_isa_roundtrip () =
  List.iter
    (fun i ->
      match Isa.decode (Isa.encode i) with
      | Some i' -> check Alcotest.bool "decode(encode i) = i" true (i = i')
      | None -> Alcotest.failf "generated instruction does not decode: %a" Isa.pp i)
    (Gen.generate ~seed:21 ~count:300 Gen.isa_instr)

(* -- Shrinking ------------------------------------------------------------- *)

let test_shrink_int () =
  let candidates = List.of_seq (Shrink.int 37) in
  Alcotest.(check bool) "0 comes first" true (List.hd candidates = 0);
  List.iter
    (fun c -> Alcotest.(check bool) "candidates are strictly smaller" true (abs c < 37))
    candidates;
  check Alcotest.(list int) "no candidates for 0" [] (List.of_seq (Shrink.int 0))

let test_shrink_list () =
  let l = [ 1; 2; 3; 4; 5; 6 ] in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate no longer than original" true
        (List.length c <= List.length l))
    (List.of_seq (Shrink.list ~elem:Shrink.int l))

let test_shrink_minimize () =
  (* elements only shrink downward and all start below 10, so the true
     minimum for sum >= 10 is two elements *)
  let still_failing l = List.fold_left ( + ) 0 l >= 10 in
  let minimal, steps =
    Shrink.minimize ~still_failing (Shrink.list ~elem:Shrink.int) [ 9; 4; 8; 3; 7 ]
  in
  Alcotest.(check bool) "still failing" true (still_failing minimal);
  check Alcotest.int "two elements suffice" 2 (List.length minimal);
  Alcotest.(check bool) "took some steps" true (steps > 0)

let test_shrink_budget () =
  let calls = ref 0 in
  let still_failing l =
    incr calls;
    List.length l >= 1
  in
  let _, _ =
    Shrink.minimize ~max_steps:5 ~still_failing (Shrink.list ~elem:Shrink.int)
      (List.init 100 Fun.id)
  in
  Alcotest.(check bool) "evaluations bounded by budget" true (!calls <= 6)

(* -- The property runner --------------------------------------------------- *)

let test_prop_passes () =
  let prop n = if n >= 0 then Ok () else Error "negative" in
  match Prop.run ~seed:1 (Gen.int 100) prop with
  | Prop.Passed n -> check Alcotest.int "all runs pass" 200 n
  | Prop.Failed _ -> Alcotest.fail "property should hold"

let short l = if List.length l < 3 then Ok () else Error "too long"

let test_prop_minimizes () =
  let gen = Gen.list ~max_len:20 (Gen.int 50) in
  match Prop.run ~seed:2 ~shrink:(Shrink.list ~elem:Shrink.int) gen short with
  | Prop.Passed _ -> Alcotest.fail "property should fail"
  | Prop.Failed cx ->
    check Alcotest.int "shrunk to the boundary" 3 (List.length cx.Prop.cx_minimized);
    Alcotest.(check bool) "shrinking did work" true (cx.Prop.cx_shrink_steps > 0)

let test_prop_replay () =
  let gen = Gen.list ~max_len:20 (Gen.int 50) in
  let run () = Prop.run ~seed:2 ~shrink:(Shrink.list ~elem:Shrink.int) gen short in
  match (run (), run ()) with
  | Prop.Failed a, Prop.Failed b ->
    check
      Alcotest.(list int)
      "same seed, same counterexample" a.Prop.cx_minimized b.Prop.cx_minimized;
    check Alcotest.int "same run index" a.Prop.cx_run b.Prop.cx_run
  | _ -> Alcotest.fail "both runs should fail"

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_prop_check_raises () =
  match Prop.check ~name:"lists are short" ~seed:2 (Gen.list ~max_len:20 (Gen.int 50)) short with
  | () -> Alcotest.fail "check should raise"
  | exception Failure msg ->
    Alcotest.(check bool) "message names the property" true (contains ~needle:"lists are short" msg);
    Alcotest.(check bool) "message carries the replay seed" true (contains ~needle:"seed" msg)

(* -- Sep_util through the engine ------------------------------------------- *)

let test_json_roundtrip () =
  List.iter
    (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' ->
        if not (Json.equal j j') then
          Alcotest.failf "round trip changed %s into %s" (Json.to_string j) (Json.to_string j')
      | Error m -> Alcotest.failf "round trip of %s failed: %s" (Json.to_string j) m)
    (Gen.generate ~seed:13 ~count:100 (Gen.json ()))

let test_json_surrogates () =
  List.iter
    (fun s ->
      let j = Json.String s in
      match Json.parse (Json.to_string j) with
      | Ok j' -> Alcotest.(check bool) "utf8 string round-trips" true (Json.equal j j')
      | Error m -> Alcotest.failf "string %S failed to round trip: %s" s m)
    (Gen.generate ~seed:14 ~count:100 (Gen.utf8_string ~max_len:24));
  (* an astral code point must travel as a surrogate pair *)
  (match Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Json.String s) -> check Alcotest.string "surrogate pair decodes" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair should parse");
  match Json.parse "\"\\ud800\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone surrogate should be rejected"

(* Model-based check: Fifo against a plain functional queue. *)
let test_fifo_model () =
  let ops =
    Gen.list ~max_len:40
      (Gen.frequency
         [
           (4, Gen.map (fun n -> `Push n) (Gen.int 100));
           (3, Gen.return `Pop);
           (2, Gen.return `Peek);
           (1, Gen.return `Clear);
         ])
  in
  List.iter
    (fun (cap, ops) ->
      let fifo = Fifo.create ~capacity:cap in
      let model = ref [] in
      List.iter
        (fun op ->
          match op with
          | `Push n ->
            let accepted = Fifo.push fifo n in
            let expect = List.length !model < cap in
            Alcotest.(check bool) "push accepted iff not full" expect accepted;
            if expect then model := !model @ [ n ]
          | `Pop ->
            let got = Fifo.pop fifo in
            let expect = match !model with [] -> None | x :: rest -> model := rest; Some x in
            check Alcotest.(option int) "pop agrees with model" expect got
          | `Peek ->
            check
              Alcotest.(option int)
              "peek agrees with model"
              (match !model with [] -> None | x :: _ -> Some x)
              (Fifo.peek fifo)
          | `Clear ->
            Fifo.clear fifo;
            model := [])
        ops;
      check Alcotest.(list int) "contents agree with model" !model (Fifo.to_list fifo))
    (Gen.generate ~seed:15 ~count:30 (Gen.pair (Gen.int_in 1 8) ops))

let test_fifo_copy_independent () =
  let fifo = Fifo.create ~capacity:4 in
  ignore (Fifo.push fifo 1);
  ignore (Fifo.push fifo 2);
  let snapshot = Fifo.copy fifo in
  ignore (Fifo.pop fifo);
  ignore (Fifo.push fifo 3);
  check Alcotest.(list int) "copy unaffected by later ops" [ 1; 2 ] (Fifo.to_list snapshot);
  check Alcotest.(list int) "original moved on" [ 2; 3 ] (Fifo.to_list fifo)

let test_bits_roundtrip () =
  List.iter
    (fun (width, n) ->
      let n = n land ((1 lsl width) - 1) in
      check Alcotest.int "int_to_bits/bits_to_int round trip" n
        (Bits.bits_to_int (Bits.int_to_bits ~width n)))
    (Gen.generate ~seed:16 ~count:200 (Gen.pair (Gen.int_in 1 30) (Gen.int max_int)));
  List.iter
    (fun b ->
      check Alcotest.string "bytes/bits round trip" (Bytes.to_string b)
        (Bytes.to_string (Bits.bytes_of_bits (Bits.bits_of_bytes b))))
    (List.map
       (fun s -> Bytes.of_string s)
       (Gen.generate ~seed:17 ~count:50 (Gen.utf8_string ~max_len:12)))

let test_gen_soak_plans () =
  let dep = Sep_apps.Fed_services.file_server in
  let spec = Sep_svc.Svc.spec_of dep in
  let nodes = Sep_fed.Fed.node_space spec in
  let steps = 5000 in
  let gen = Gen.soak_plans ~nodes ~steps ~count:4 spec.Sep_fed.Fed.fs_cfg in
  let plans = Gen.run ~seed:42 gen in
  Alcotest.(check int) "count" 4 (List.length plans);
  List.iter
    (fun (p : Sep_robust.Fault_plan.t) ->
      let node_faults =
        List.filter
          (fun (_, f) ->
            match f with
            | Sep_robust.Fault_plan.Shard_crash _ | Sep_robust.Fault_plan.Link_partition _
            | Sep_robust.Fault_plan.Frame_tamper _ -> true
            | _ -> false)
          p.Sep_robust.Fault_plan.faults
      in
      Alcotest.(check bool)
        (p.Sep_robust.Fault_plan.label ^ " has at least 3 node faults")
        true
        (List.length node_faults >= 3);
      List.iter
        (fun (at, _) -> Alcotest.(check bool) "strike in range" true (at >= 1 && at < steps))
        p.Sep_robust.Fault_plan.faults)
    plans;
  Alcotest.(check bool) "deterministic in the seed" true (Gen.run ~seed:42 gen = plans)

let test_gen_service_requests () =
  let dep = Sep_apps.Fed_services.printer in
  let gen = Gen.service_requests ~workload:dep.Sep_svc.Svc.dp_workload ~max:30 in
  let reqs = Gen.run ~seed:7 gen in
  Alcotest.(check bool) "non-empty, bounded" true
    (List.length reqs >= 1 && List.length reqs <= 30);
  List.iter
    (fun (op, arg) ->
      Alcotest.(check bool) "op is a printer op" true (op = 1 || op = 2);
      Alcotest.(check bool) "arg is a word" true (arg >= 0 && arg <= 0xffff))
    reqs;
  Alcotest.(check bool) "deterministic in the seed" true (Gen.run ~seed:7 gen = reqs)

let test_prng_streams () =
  let a = Prng.create 42 in
  let b = Prng.copy a in
  let draws g = List.init 50 (fun _ -> Prng.int g 1000) in
  check (Alcotest.list Alcotest.int) "copy replays the stream" (draws a) (draws b);
  let parent = Prng.create 7 in
  let child = Prng.split parent in
  Alcotest.(check bool) "split stream differs from parent stream" false
    (draws parent = draws child)

(* -- Fuzzing --------------------------------------------------------------- *)

let test_fuzz_execute_deterministic () =
  let sched = [ []; [ (0, 1) ]; [] ] in
  let run () =
    let e =
      Fuzz.execute ~seed:8 ~alphabet:pipeline.Scenarios.alphabet pipeline_cfg sched
    in
    (e.Fuzz.ex_keys, Json.to_string (Separability.report_to_json e.Fuzz.ex_report))
  in
  let k1, r1 = run () and k2, r2 = run () in
  check (Alcotest.list Alcotest.string) "same keys" k1 k2;
  check Alcotest.string "same report" r1 r2;
  Alcotest.(check bool) "keys observed" true (k1 <> []);
  check (Alcotest.list Alcotest.string) "keys sorted and unique" (List.sort_uniq compare k1) k1

let test_fuzz_clean_kernel () =
  let r = Fuzz.fuzz_scenario ~seed:7 ~budget:20 pipeline in
  check Alcotest.int "no failures on the correct kernel" 0 (List.length r.Fuzz.sr_failures);
  Alcotest.(check bool) "corpus grew beyond one seed" true
    (List.length r.Fuzz.sr_campaign.Fuzz.cp_entries > 1)

let test_fuzz_deterministic_jsonl () =
  let jsonl () = Fuzz.scenario_result_to_jsonl (Fuzz.fuzz_scenario ~seed:7 ~budget:15 pipeline) in
  check Alcotest.string "byte-identical JSONL for a fixed seed" (jsonl ()) (jsonl ())

let test_fuzz_detects_mutant () =
  let report =
    Fuzz.check_schedule ~bugs:[ Sue.Partition_hole ] ~seed:8
      ~alphabet:pipeline.Scenarios.alphabet pipeline_cfg []
  in
  Alcotest.(check bool) "partition hole fails condition 2" true
    (List.mem 2 (Separability.failing_conditions report))

let test_fuzz_schedule_json () =
  List.iter
    (fun sched ->
      match Fuzz.schedule_of_json (Fuzz.schedule_to_json sched) with
      | Ok sched' ->
        Alcotest.(check bool) "schedule round-trips through JSON" true (sched = sched')
      | Error m -> Alcotest.failf "schedule failed to round trip: %s" m)
    (Gen.generate ~seed:19 ~count:30
       (Gen.schedule ~alphabet:pipeline.Scenarios.alphabet ~max_len:10))

(* -- Differential properties ------------------------------------------------ *)

let drip n =
  let alphabet = Array.of_list pipeline.Scenarios.alphabet in
  List.init n (fun i -> alphabet.(i mod Array.length alphabet))

let test_solo_isolation_holds () =
  check
    Alcotest.(list (triple string int string))
    "solo isolation holds on the correct pipeline" []
    (List.map
       (fun (c, d, m) -> (Colour.name c, d, m))
       (Diff.solo_check pipeline_cfg ~schedule:(drip 12)))

let test_observed_tx_sees_leak () =
  let sched = drip 12 in
  let clean = Diff.observed_tx pipeline_cfg ~schedule:sched in
  let leaky = Diff.observed_tx ~bugs:[ Sue.Output_leak ] pipeline_cfg ~schedule:sched in
  Alcotest.(check bool) "the output leak changes some Tx wire" false (clean = leaky)

let test_kernel_vs_net_equal () =
  let cases, mismatches = Diff.kernel_vs_net ~seed:11 ~cases:5 ~steps:24 in
  check Alcotest.int "five cases run" 5 cases;
  check (Alcotest.list Alcotest.string) "kernel is indistinguishable from the net" [] mismatches

let test_kernel_vs_net_detects_bug () =
  let rec find seed tries =
    if tries = 0 then None
    else
      match
        Diff.kernel_vs_net_case ~kernel_bugs:[ Sep_core.Regime_kernel.Duplicate_delivery ]
          ~seed ~steps:24 ()
      with
      | Error m -> Some m
      | Ok () -> find (seed + 1) (tries - 1)
  in
  match find 11 10 with
  | Some _ -> ()
  | None -> Alcotest.fail "duplicate delivery should diverge from the net on some case"

(* -- The kill-rate scorer and the regression corpus ------------------------- *)

let expectation bug =
  match Mutants.for_bug bug with
  | Some e -> e
  | None -> Alcotest.failf "no catalogue entry for %a" Sue.pp_bug bug

let test_coverage_kill () =
  let k = Score.coverage_kill ~seed:42 ~budget:60 (expectation Sue.Partition_hole) in
  Alcotest.(check bool) "killed" true k.Score.kl_detected;
  match k.Score.kl_workload with
  | None -> Alcotest.fail "a killing workload should be recorded"
  | Some w ->
    Alcotest.(check bool) "minimized to at most 10 instructions" true
      (Score.workload_instrs w <= 10)

let test_kill_deterministic () =
  let run () =
    Json.to_string (Score.kill_to_json (Score.coverage_kill ~seed:42 ~budget:60 (expectation Sue.Output_leak)))
  in
  check Alcotest.string "same seed, same kill record" (run ()) (run ())

let corpus_dir () =
  (* cwd is the build test directory under [dune runtest], the repo root
     under [dune exec] *)
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let test_corpus_files_replay () =
  let dir = corpus_dir () in
  let files = Sys.readdir dir |> Array.to_list |> List.sort compare in
  check Alcotest.int "one corpus case per seeded bug" (List.length Sue.all_bugs)
    (List.length files);
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Json.parse text with
      | Error m -> Alcotest.failf "%s: bad JSON: %s" file m
      | Ok json -> (
        match Score.corpus_case_of_json json with
        | Error m -> Alcotest.failf "%s: %s" file m
        | Ok case -> (
          match Score.replay_corpus_case case with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s" file m)))
    files

let test_corpus_json_roundtrip () =
  match Score.corpus_case ~seed:42 (expectation Sue.Input_crosstalk) with
  | None -> Alcotest.fail "a corpus case should exist for input-crosstalk"
  | Some case -> (
    match Score.corpus_case_of_json (Score.corpus_case_to_json case) with
    | Ok case' -> Alcotest.(check bool) "corpus case round-trips" true (case = case')
    | Error m -> Alcotest.failf "round trip failed: %s" m)

let test_minimize_randomized () =
  let e = expectation Sue.Forget_register_save in
  let cfg = e.Mutants.scenario.Scenarios.cfg in
  let inputs = e.Mutants.scenario.Scenarios.alphabet in
  let report = Sep_core.Randomized.check ~bugs:[ e.Mutants.bug ] ~seed:99 ~inputs cfg in
  let conditions = Separability.failing_conditions report in
  Alcotest.(check bool) "the sampled run fails" true (conditions <> []);
  let minimized =
    Score.minimize_randomized ~bugs:[ e.Mutants.bug ] ~seed:99 ~inputs ~conditions cfg
  in
  Alcotest.(check bool) "a standalone counterexample was recovered" true (minimized <> []);
  List.iter
    (fun m ->
      let replayed =
        Separability.failing_conditions
          (Fuzz.check_schedule ~bugs:[ e.Mutants.bug ] ~scrambles:m.Score.mz_scrambles
             ~seed:m.Score.mz_seed ~alphabet:inputs cfg m.Score.mz_schedule)
      in
      List.iter
        (fun c -> Alcotest.(check bool) "replay reproduces each condition" true (List.mem c replayed))
        m.Score.mz_conditions)
    minimized

let () =
  Alcotest.run "check"
    [
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "bounds" `Quick test_gen_bounds;
          Alcotest.test_case "configs validate and build" `Quick test_gen_config_valid;
          Alcotest.test_case "schedules stay in the alphabet" `Quick test_gen_schedule_in_alphabet;
          Alcotest.test_case "actions respect capabilities" `Quick test_gen_actions_capable;
          Alcotest.test_case "renderings assemble" `Quick test_gen_render_assembles;
          Alcotest.test_case "isa instructions round-trip" `Quick test_gen_isa_roundtrip;
          Alcotest.test_case "soak plans are correlated and seeded" `Quick test_gen_soak_plans;
          Alcotest.test_case "service workloads are seeded" `Quick test_gen_service_requests;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "int candidates" `Quick test_shrink_int;
          Alcotest.test_case "list candidates" `Quick test_shrink_list;
          Alcotest.test_case "minimize reaches a fixpoint" `Quick test_shrink_minimize;
          Alcotest.test_case "minimize honours its budget" `Quick test_shrink_budget;
        ] );
      ( "prop",
        [
          Alcotest.test_case "passing property" `Quick test_prop_passes;
          Alcotest.test_case "failures are minimized" `Quick test_prop_minimizes;
          Alcotest.test_case "seeded replay" `Quick test_prop_replay;
          Alcotest.test_case "check raises with context" `Quick test_prop_check_raises;
        ] );
      ( "util",
        [
          Alcotest.test_case "json round-trips" `Quick test_json_roundtrip;
          Alcotest.test_case "surrogate pairs" `Quick test_json_surrogates;
          Alcotest.test_case "fifo against the list model" `Quick test_fifo_model;
          Alcotest.test_case "fifo copies are independent" `Quick test_fifo_copy_independent;
          Alcotest.test_case "bits round-trips" `Quick test_bits_roundtrip;
          Alcotest.test_case "prng stream independence" `Quick test_prng_streams;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "execution is deterministic" `Quick test_fuzz_execute_deterministic;
          Alcotest.test_case "correct kernel fuzzes clean" `Quick test_fuzz_clean_kernel;
          Alcotest.test_case "jsonl is byte-deterministic" `Quick test_fuzz_deterministic_jsonl;
          Alcotest.test_case "mutants fail their condition" `Quick test_fuzz_detects_mutant;
          Alcotest.test_case "schedules round-trip as json" `Quick test_fuzz_schedule_json;
        ] );
      ( "diff",
        [
          Alcotest.test_case "solo isolation holds" `Quick test_solo_isolation_holds;
          Alcotest.test_case "output leak is observable" `Quick test_observed_tx_sees_leak;
          Alcotest.test_case "kernel equals the net" `Quick test_kernel_vs_net_equal;
          Alcotest.test_case "kernel bugs diverge from the net" `Quick test_kernel_vs_net_detects_bug;
        ] );
      ( "score",
        [
          Alcotest.test_case "coverage kill within 10 instructions" `Quick test_coverage_kill;
          Alcotest.test_case "kill records are deterministic" `Quick test_kill_deterministic;
          Alcotest.test_case "corpus replays" `Quick test_corpus_files_replay;
          Alcotest.test_case "corpus cases round-trip" `Quick test_corpus_json_roundtrip;
          Alcotest.test_case "randomized failures minimize" `Quick test_minimize_randomized;
        ] );
    ]
