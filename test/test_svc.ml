(* Tests for the fault-tolerant service layer: wire codec round-trips
   and resync, clean end-to-end contracts for all four deployments,
   dedup under tamper, shedding under burst, crash failover, recovery
   budget exhaustion under repeated same-shard crashes, partition flap,
   degraded modes with every replica down, the soak-plan generator, and
   the service campaign with determinism across -j. *)

module Svc = Sep_svc.Svc
module Svc_campaign = Sep_svc.Svc_campaign
module Fed_services = Sep_apps.Fed_services
module Fed = Sep_fed.Fed
module Fault_plan = Sep_robust.Fault_plan
module Protocol = Sep_components.Protocol
module Telemetry = Sep_obs.Telemetry
module Prng = Sep_util.Prng

let check = Alcotest.check

let counter r name =
  match Telemetry.find_counter r name with
  | Some c -> Telemetry.counter_value c
  | None -> 0

let run_service ?plan ?tuning ~seed ~steps dep =
  let t = Svc.build ?plan ?tuning ~monitor:true ~seed dep in
  Svc.run t ~steps;
  (Svc.finish t, Svc.telemetry t)

let plan_of label faults = { Fault_plan.label; faults }

(* -- Wire frames ------------------------------------------------------------ *)

let test_codec_roundtrip () =
  let d = Protocol.req_decoder () in
  for rid = 0 to 300 do
    let r = { Protocol.rq_op = rid mod 16; rq_rid = rid land 0xff; rq_arg = (rid * 77) land 0xffff } in
    let got = List.filter_map (Protocol.feed_req d) (Protocol.req_words r) in
    check Alcotest.int (Printf.sprintf "one frame at %d" rid) 1 (List.length got);
    check Alcotest.bool "fields survive" true (List.hd got = r)
  done;
  check Alcotest.int "no resync on clean stream" 0 (Protocol.decoder_skipped d)

let test_codec_resync () =
  let d = Protocol.rsp_decoder () in
  let r1 = { Protocol.rs_status = 1; rs_rid = 7; rs_value = 42 } in
  let r2 = { Protocol.rs_status = 0; rs_rid = 8; rs_value = 99 } in
  (* a corrupted word, then two intact frames: the decoder must drop the
     bad alignment and still deliver both frames *)
  let stream = [ 0x1234 ] @ Protocol.rsp_words r1 @ Protocol.rsp_words r2 in
  let got = List.filter_map (Protocol.feed_rsp d) stream in
  check Alcotest.bool "both frames recovered" true (got = [ r1; r2 ]);
  check Alcotest.bool "resync counted" true (Protocol.decoder_skipped d > 0)

(* -- Clean runs: every deployment meets the contract ------------------------ *)

let test_clean_contract dep () =
  let r, tel = run_service ~seed:42 ~steps:4000 dep in
  let c = r.Svc.sr_contract in
  check Alcotest.bool "made progress" true (c.Svc.ct_requests > 5);
  check Alcotest.bool "contract holds" true c.Svc.ct_ok;
  check Alcotest.int "nothing unresolved" 0 c.Svc.ct_unresolved;
  check Alcotest.int "no duplicate effects" 0 c.Svc.ct_duplicate_effects;
  check Alcotest.int "no lost effects" 0 c.Svc.ct_lost_effects;
  check Alcotest.bool "no separation violation" true
    (r.Svc.sr_fed.Fed.fob_first_violation = None);
  ignore tel

let test_clean_commits () =
  let r, tel = run_service ~seed:7 ~steps:4000 Fed_services.printer in
  let c = r.Svc.sr_contract in
  check Alcotest.bool "printer committed jobs" true (c.Svc.ct_committed > 0);
  check Alcotest.int "ledger matches commits" c.Svc.ct_committed c.Svc.ct_effects;
  check Alcotest.bool "rtt histogram populated" true (counter tel "svc.requests" > 0)

(* Determinism: same seed, same everything; different seed, different
   workload. *)
let test_deterministic () =
  let r1, _ = run_service ~seed:42 ~steps:3000 Fed_services.file_server in
  let r2, _ = run_service ~seed:42 ~steps:3000 Fed_services.file_server in
  let r3, _ = run_service ~seed:43 ~steps:3000 Fed_services.file_server in
  check Alcotest.bool "identical records" true (r1.Svc.sr_records = r2.Svc.sr_records);
  check Alcotest.bool "identical effects" true (r1.Svc.sr_effects = r2.Svc.sr_effects);
  check Alcotest.bool "seed matters" true (r1.Svc.sr_records <> r3.Svc.sr_records)

(* -- Faults ----------------------------------------------------------------- *)

(* A replica crash mid-run: requests fail over to the survivor and the
   contract still holds. *)
let test_crash_failover () =
  let plan = plan_of "crash-r0" [ (900, Fault_plan.Shard_crash { shard = 1 }) ] in
  let r, tel = run_service ~plan ~seed:42 ~steps:6000 Fed_services.file_server in
  let c = r.Svc.sr_contract in
  check Alcotest.bool "contract survives a crash" true c.Svc.ct_ok;
  check Alcotest.bool "no separation violation" true
    (r.Svc.sr_fed.Fed.fob_first_violation = None);
  check Alcotest.bool "retries happened" true
    (counter tel "svc.retries" > 0 || counter tel "svc.timeouts" > 0)

(* Tampering corrupts frames in flight; retries after the timeout must
   not double-commit thanks to the replay cache. *)
let test_tamper_dedup () =
  let faults =
    List.init 6 (fun i -> (600 + (i * 500), Fault_plan.Frame_tamper { link = 0 }))
  in
  let r, _ = run_service ~plan:(plan_of "tamper" faults) ~seed:7 ~steps:8000 Fed_services.printer in
  let c = r.Svc.sr_contract in
  check Alcotest.int "no duplicate effects under tamper" 0 c.Svc.ct_duplicate_effects;
  check Alcotest.bool "contract holds under tamper" true c.Svc.ct_ok

(* Every replica crashed and abandoned: degraded modes answer. The
   printer spools; the Guard fails closed; nothing hangs unresolved. *)
let all_replicas_down dep =
  let faults =
    List.concat_map
      (fun shard -> List.init 3 (fun k -> (800 + (k * 700), Fault_plan.Shard_crash { shard })))
      [ 1; 2 ]
  in
  run_service ~plan:(plan_of "all-down" faults) ~seed:42 ~steps:8000 dep

let test_degraded_spool () =
  let r, tel = all_replicas_down Fed_services.printer in
  let c = r.Svc.sr_contract in
  check Alcotest.bool "contract holds" true c.Svc.ct_ok;
  check Alcotest.bool "jobs spooled" true
    (counter tel "svc.spooled" > 0 || r.Svc.sr_spool_held > 0)

let test_degraded_fail_closed () =
  let r, tel = all_replicas_down Fed_services.guard in
  let c = r.Svc.sr_contract in
  check Alcotest.bool "contract holds" true c.Svc.ct_ok;
  check Alcotest.bool "guard failed closed" true (counter tel "svc.fail_closed" > 0);
  let released_without_server =
    List.exists
      (fun rr ->
        match rr.Svc.rr_outcome with
        | Some (Svc.O_degraded _) -> true
        | _ -> false)
      r.Svc.sr_records
  in
  check Alcotest.bool "nothing released locally" false released_without_server

let test_degraded_read_cached () =
  let r, tel = all_replicas_down Fed_services.file_server in
  check Alcotest.bool "contract holds" true r.Svc.sr_contract.Svc.ct_ok;
  check Alcotest.bool "reads served from checkpoint" true (counter tel "svc.degraded_reads" > 0)

(* Recovery budget exhaustion: the same shard crashed more times than
   max_node_reboots — the supervisor gives up cleanly (Abandoned), the
   survivor keeps serving, and the run is byte-stable. *)
let test_reboot_budget_exhausted () =
  let faults = List.init 3 (fun k -> (800 + (k * 900), Fault_plan.Shard_crash { shard = 1 })) in
  let run () =
    run_service ~plan:(plan_of "crash-x3" faults) ~seed:42 ~steps:9000 Fed_services.file_server
  in
  let r, _ = run () in
  let r2, _ = run () in
  check Alcotest.bool "shard 1 abandoned" true
    (List.mem 1 r.Svc.sr_fed.Fed.fob_abandoned_nodes);
  check Alcotest.bool "contract holds after abandonment" true r.Svc.sr_contract.Svc.ct_ok;
  check Alcotest.bool "runs byte-identical" true (r.Svc.sr_records = r2.Svc.sr_records)

(* A flapping partition on one wire: quarantine and rejoin cycles, the
   contract still holds. *)
let test_partition_flap () =
  let faults =
    List.init 3 (fun k ->
        (700 + (k * 1200), Fault_plan.Link_partition { link = 0; window = 40 }))
  in
  let r, _ = run_service ~plan:(plan_of "flap" faults) ~seed:1 ~steps:8000 Fed_services.auth in
  check Alcotest.bool "contract holds under flapping" true r.Svc.sr_contract.Svc.ct_ok;
  check Alcotest.bool "no separation violation" true
    (r.Svc.sr_fed.Fed.fob_first_violation = None)

(* -- Soak plans -------------------------------------------------------------- *)

let test_soak_generator () =
  let nodes = { Fault_plan.ns_shards = 3; ns_links = 4 } in
  let cfg = (Svc.spec_of Fed_services.file_server).Fed.fs_cfg in
  let plans = Fault_plan.soak ~nodes ~seed:9 ~steps:5000 ~count:12 cfg in
  check Alcotest.int "requested count" 12 (List.length plans);
  List.iter
    (fun p ->
      let node_faults =
        List.filter
          (fun (_, f) ->
            match f with
            | Fault_plan.Shard_crash _ | Fault_plan.Link_partition _ | Fault_plan.Frame_tamper _ ->
              true
            | _ -> false)
          p.Fault_plan.faults
      in
      check Alcotest.bool (p.Fault_plan.label ^ ": >=3 node faults") true
        (List.length node_faults >= 3);
      List.iter
        (fun (at, _) ->
          check Alcotest.bool "fault inside the run" true (at >= 1 && at < 5000))
        p.Fault_plan.faults;
      let sorted =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) p.Fault_plan.faults
      in
      check Alcotest.bool "faults sorted" true (sorted = p.Fault_plan.faults))
    plans;
  let again = Fault_plan.soak ~nodes ~seed:9 ~steps:5000 ~count:12 cfg in
  check Alcotest.bool "soak generation deterministic" true (plans = again)

(* -- Campaign ---------------------------------------------------------------- *)

let test_campaign_smoke () =
  let r = Svc_campaign.run ~seed:42 ~steps:5000 ~soak:2 ~jobs:2 Fed_services.file_server in
  check Alcotest.bool "campaign ran cases" true (List.length r.Svc_campaign.sv_cases > 3);
  check Alcotest.bool "no violations" true (Svc_campaign.holds r);
  check Alcotest.bool "every contract ok" true (Svc_campaign.contracts_ok r)

let test_campaign_jobs_identical () =
  let r1 = Svc_campaign.run ~seed:1 ~steps:4000 ~soak:2 ~jobs:1 Fed_services.guard in
  let r2 = Svc_campaign.run ~seed:1 ~steps:4000 ~soak:2 ~jobs:3 Fed_services.guard in
  check Alcotest.bool "-j1 and -j3 reports byte-identical" true
    (Svc_campaign.report_to_jsonl r1 = Svc_campaign.report_to_jsonl r2)

(* -- Fed batched frames ------------------------------------------------------ *)

(* The NIC batches a ring drain into one frame; a legacy single-word
   frame must still decode, and a tampered batch must still be rejected. *)
let test_batch_frames () =
  let ob =
    let t = Fed.build Sep_fed.Fed_scenarios.pair in
    Fed.run t ~steps:400;
    Fed.finish t
  in
  check Alcotest.int "no rejects on clean batches" 0 ob.Fed.fob_frame_rejects;
  check Alcotest.bool "words crossed in batches" true (ob.Fed.fob_delivered > 5)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "svc"
    [
      ("codec", [ quick "roundtrip" test_codec_roundtrip; quick "resync" test_codec_resync ]);
      ( "clean",
        List.map
          (fun d -> quick d.Svc.dp_name (test_clean_contract d))
          Fed_services.all
        @ [ quick "printer commits" test_clean_commits; quick "deterministic" test_deterministic ]
      );
      ( "faults",
        [
          quick "crash failover" test_crash_failover;
          quick "tamper dedup" test_tamper_dedup;
          quick "degraded spool" test_degraded_spool;
          quick "degraded fail-closed" test_degraded_fail_closed;
          quick "degraded read-cached" test_degraded_read_cached;
          quick "reboot budget exhausted" test_reboot_budget_exhausted;
          quick "partition flap" test_partition_flap;
        ] );
      ("soak", [ quick "generator" test_soak_generator ]);
      ( "campaign",
        [ quick "smoke" test_campaign_smoke; quick "jobs identical" test_campaign_jobs_identical ]
      );
      ("fed-batch", [ quick "clean batches" test_batch_frames ]);
    ]
