(* Tests for the kernel federation: clean multi-shard runs against the
   monolithic ideal, crash failover from checkpoints, partition
   quarantine and rejoin, frame-tamper rejection, node-fault plans, and
   the federated chaos campaign with the online monitor attached. *)

module Colour = Sep_model.Colour
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Abstract_regime = Sep_core.Abstract_regime
module Net = Sep_distributed.Net
module Fault_plan = Sep_robust.Fault_plan
module Fed = Sep_fed.Fed
module Fed_scenarios = Sep_fed.Fed_scenarios

let check = Alcotest.check

let outputs_of ob d = List.assoc d ob.Fed.fob_outputs

let run_clean ?policy spec ~steps =
  let t = Fed.build ?policy spec in
  Fed.run t ~steps;
  Fed.finish t

let run_plan ?policy ?monitor spec ~steps plan =
  let t = Fed.build ?policy ?monitor ~plan spec in
  Fed.run t ~steps;
  Fed.finish t

let plan_of faults = { Fault_plan.label = "directed"; faults }

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

(* -- Clean federation ------------------------------------------------------- *)

(* fed-pair: words dripped into RED's Rx cross the inter-shard link and
   come out of BLACK's Tx in order. *)
let test_pair_delivers () =
  let ob = run_clean Fed_scenarios.pair ~steps:400 in
  let red_echo = outputs_of ob 1 and black_tx = outputs_of ob 2 in
  check Alcotest.bool "RED echoed words" true (List.length red_echo > 5);
  check Alcotest.bool "BLACK emitted words" true (List.length black_tx > 5);
  check Alcotest.bool "BLACK's words are RED's, in order"
    true
    (is_prefix black_tx red_echo || is_prefix red_echo black_tx);
  check Alcotest.bool "words crossed the federation" true (ob.Fed.fob_delivered > 5);
  check Alcotest.int "no frames rejected" 0 ob.Fed.fob_frame_rejects;
  List.iter
    (fun (c, s) ->
      check Alcotest.bool (Colour.name c ^ " not parked") true (s <> Abstract_regime.Parked))
    ob.Fed.fob_status

(* The supervisor stays quiet on a clean run: no crash detections, no
   quarantines, no failovers. *)
let test_clean_supervisor_quiet () =
  let ob = run_clean Fed_scenarios.ring ~steps:400 in
  check Alcotest.int "no node events" 0 (List.length ob.Fed.fob_events);
  check Alcotest.int "no detections" 0 (List.length ob.Fed.fob_detections);
  check Alcotest.int "no recoveries" 0 (List.length ob.Fed.fob_recoveries)

(* fed-ring: the local channel (RED -> ORANGE on node 0) and the
   inter-shard relay (ORANGE -> GREEN) both carry the dripped words;
   GREEN sees ORANGE's words + 1. *)
let test_ring_relay () =
  let ob = run_clean Fed_scenarios.ring ~steps:600 in
  let orange_tx = outputs_of ob 1 and green_tx = outputs_of ob 2 in
  check Alcotest.bool "ORANGE emitted" true (List.length orange_tx > 3);
  check Alcotest.bool "GREEN emitted" true (List.length green_tx > 3);
  let expect = List.map (fun w -> w + 1) orange_tx in
  check Alcotest.bool "GREEN = ORANGE + 1, in order" true
    (is_prefix green_tx expect || is_prefix expect green_tx);
  let violet_tx = outputs_of ob 4 in
  check Alcotest.bool "VIOLET relayed BLUE's words" true (List.length violet_tx > 2)

(* -- The federation vs the monolithic ideal --------------------------------- *)

(* The same global configuration, channels uncut, on ONE kernel is the
   monolithic ideal: every per-device output stream of the federation
   must be a prefix-compatible match of the ideal's. *)
let monolithic spec ~steps =
  let t = Sue.build spec.Fed.fs_cfg in
  let m = Sue.machine t in
  let alphabet = Array.of_list spec.Fed.fs_alphabet in
  let inputs n =
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []
  in
  let ndev = Sep_hw.Machine.num_devices m in
  let queues = Array.init ndev (fun _ -> Queue.create ()) in
  let flat = ref [] in
  for n = 0 to steps - 1 do
    List.iter (fun (d, w) -> if d < ndev then Queue.add w queues.(d)) (inputs n);
    let input =
      List.concat
        (List.init ndev (fun d ->
             if
               (not (Queue.is_empty queues.(d)))
               && snd (Sep_hw.Machine.device_regs m d) = 0
             then [ (d, Queue.pop queues.(d)) ]
             else []))
    in
    List.iter (fun o -> flat := o :: !flat) (Sue.step t input)
  done;
  let per = Array.make ndev [] in
  List.iter (fun (d, w) -> per.(d) <- w :: per.(d)) (List.rev !flat);
  List.init ndev (fun d -> (d, List.rev per.(d)))

let test_matches_monolithic () =
  List.iter
    (fun spec ->
      let fed = run_clean spec ~steps:600 in
      let ideal = monolithic spec ~steps:600 in
      List.iter
        (fun (d, ideal_words) ->
          let fed_words = outputs_of fed d in
          check Alcotest.bool
            (Printf.sprintf "%s device %d agrees with the ideal" spec.Fed.fs_label d)
            true
            (is_prefix fed_words ideal_words || is_prefix ideal_words fed_words))
        ideal)
    Fed_scenarios.all

(* -- Crash failover --------------------------------------------------------- *)

let crash_plan shard ~at = plan_of [ (at, Fault_plan.Shard_crash { shard }) ]

(* A crashed shard is detected by heartbeat timeout and warm-rebooted
   from checkpoints; afterwards nothing is parked and the audit trail
   records the whole story. *)
let test_crash_failover () =
  let ob = run_plan Fed_scenarios.ring ~steps:600 (crash_plan 1 ~at:120) in
  let kinds = List.map snd ob.Fed.fob_events in
  check Alcotest.bool "crash recorded" true
    (List.exists (function Fed.Node_crashed 1 -> true | _ -> false) kinds);
  check Alcotest.bool "detected by timeout" true
    (List.exists (function Fed.Node_down_detected 1 -> true | _ -> false) kinds);
  check Alcotest.bool "failover ran" true
    (List.exists (function Fed.Node_failover (1, _) -> true | _ -> false) kinds);
  check Alcotest.bool "warm reboot audited" true
    (List.exists (function Sue.Warm_reboot -> true | _ -> false) ob.Fed.fob_recoveries);
  List.iter
    (fun (c, s) ->
      check Alcotest.bool (Colour.name c ^ " recovered") true (s <> Abstract_regime.Parked))
    ob.Fed.fob_status

(* THE fail-operational claim: during a single-shard outage, surviving
   shards' per-colour traces are byte-identical to the fault-free run.
   Node 1 crashes; node 0 (RED, ORANGE) and node 2 (VIOLET, GREY) hold
   devices 1 (ORANGE Tx) and 4 (VIOLET Tx). ORANGE's trace must be
   EQUAL (its stream never touches node 1); VIOLET's must be a prefix
   (its source BLUE rode through the crash) that catches up to equality
   given enough post-failover steps. *)
let test_survivors_byte_identical () =
  let steps = 900 in
  let clean = run_clean Fed_scenarios.ring ~steps in
  let faulty = run_plan Fed_scenarios.ring ~steps (crash_plan 1 ~at:200) in
  check
    Alcotest.(list int)
    "ORANGE's trace byte-identical" (outputs_of clean 1) (outputs_of faulty 1);
  check Alcotest.bool "VIOLET's trace a prefix of the clean run" true
    (is_prefix (outputs_of faulty 4) (outputs_of clean 4));
  check
    Alcotest.(list int)
    "VIOLET caught up after failover" (outputs_of clean 4) (outputs_of faulty 4);
  check
    Alcotest.(list int)
    "GREEN (on the crashed node) lost no words" (outputs_of clean 2) (outputs_of faulty 2)

(* Crashes beyond the node-reboot budget abandon the shard: it stays
   dark, its colours parked, everyone else untouched. *)
let test_crash_budget_abandon () =
  let plan =
    plan_of
      [
        (60, Fault_plan.Shard_crash { shard = 1 });
        (150, Fault_plan.Shard_crash { shard = 1 });
        (250, Fault_plan.Shard_crash { shard = 1 });
      ]
  in
  let ob = run_plan Fed_scenarios.ring ~steps:600 plan in
  check Alcotest.(list int) "node 1 abandoned" [ 1 ] ob.Fed.fob_abandoned_nodes;
  check Alcotest.bool "abandonment audited" true
    (List.exists (function _, Fed.Node_abandoned 1 -> true | _ -> false) ob.Fed.fob_events);
  let status c = List.assoc c ob.Fed.fob_status in
  check Alcotest.bool "GREEN parked" true (status Colour.green = Abstract_regime.Parked);
  check Alcotest.bool "ORANGE still running" true
    (status (Colour.make "ORANGE") <> Abstract_regime.Parked);
  (* The survivors' traces are still byte-identical up to truncation. *)
  let clean = run_clean Fed_scenarios.ring ~steps:600 in
  check
    Alcotest.(list int)
    "ORANGE unperturbed by the abandonment"
    (List.assoc 1 clean.Fed.fob_outputs)
    (outputs_of ob 1)

(* -- Partition tolerance ---------------------------------------------------- *)

(* Partitioning a heartbeat line quarantines the shard (parked at the
   boundary, audited); healing rejoins it; no words are ever lost. *)
let test_partition_quarantine_rejoin () =
  let spec = Fed_scenarios.ring in
  (* wires 0-2 carry channels 1,2,3; wires 3,4,5 are the heartbeat lines
     of nodes 0,1,2 — so node 1's heartbeat line is wire 4 *)
  let plan = plan_of [ (100, Fault_plan.Link_partition { link = 4; window = 40 }) ] in
  let ob = run_plan spec ~steps:700 plan in
  let kinds = List.map snd ob.Fed.fob_events in
  check Alcotest.bool "quarantined" true
    (List.exists (function Fed.Node_quarantined (1, _) -> true | _ -> false) kinds);
  check Alcotest.bool "rejoined" true
    (List.exists (function Fed.Node_rejoined 1 -> true | _ -> false) kinds);
  check Alcotest.bool "never failed over" false
    (List.exists (function Fed.Node_failover _ -> true | _ -> false) kinds);
  (* Quarantine delays, never loses: full-length run converges on the
     clean trace for every colour. *)
  let clean = run_clean spec ~steps:700 in
  List.iter
    (fun (d, words) ->
      check Alcotest.bool
        (Printf.sprintf "device %d prefix-intact across quarantine" d)
        true
        (is_prefix (outputs_of ob d) words || is_prefix words (outputs_of ob d)))
    clean.Fed.fob_outputs

(* Partitioning a DATA line: the reliable link retransmits across the
   heal, so the receiver's words are delayed, never lost — and the
   supervisor needn't even notice. *)
let test_partition_data_wire_no_loss () =
  let plan = plan_of [ (150, Fault_plan.Link_partition { link = 1; window = 30 }) ] in
  let ob = run_plan Fed_scenarios.ring ~steps:800 plan in
  let clean = run_clean Fed_scenarios.ring ~steps:800 in
  check Alcotest.bool "partition recorded" true
    (List.exists (function _, Fed.Link_down 1 -> true | _ -> false) ob.Fed.fob_events);
  check Alcotest.bool "heal recorded" true
    (List.exists (function _, Fed.Link_healed 1 -> true | _ -> false) ob.Fed.fob_events);
  check Alcotest.bool "partition dropped frames" true
    (ob.Fed.fob_stats.Net.ls_partition_drops > 0);
  check
    Alcotest.(list int)
    "VIOLET lost no words" (List.assoc 4 clean.Fed.fob_outputs) (outputs_of ob 4)

(* -- Frame tampering -------------------------------------------------------- *)

(* Forged frames on a data wire fail the end-to-end checksum and are
   rejected at the destination NIC, audited as Frame_rejected; only the
   tampered wire's receiver can be perturbed. *)
let test_tamper_rejected () =
  let plan =
    plan_of
      [
        (200, Fault_plan.Frame_tamper { link = 1 });
        (220, Fault_plan.Frame_tamper { link = 1 });
        (240, Fault_plan.Frame_tamper { link = 1 });
      ]
  in
  let ob = run_plan Fed_scenarios.ring ~steps:700 plan in
  let tampered =
    List.exists
      (function _, Fed.Link_tampered (1, n) -> n > 0 | _ -> false)
      ob.Fed.fob_events
  in
  if tampered then begin
    check Alcotest.bool "rejects counted" true (ob.Fed.fob_frame_rejects > 0);
    check Alcotest.bool "rejection audited" true
      (List.exists (function _, Fed.Frame_rejected _ -> true | _ -> false) ob.Fed.fob_events)
  end;
  (* Every colour but GREEN (wire 1's receiver) keeps its clean trace. *)
  let clean = run_clean Fed_scenarios.ring ~steps:700 in
  List.iter
    (fun d ->
      check Alcotest.bool
        (Printf.sprintf "device %d unperturbed by tampering" d)
        true
        (let a = List.assoc d clean.Fed.fob_outputs and b = outputs_of ob d in
         is_prefix a b || is_prefix b a))
    [ 1; 4 ]

(* -- Node-fault plans ------------------------------------------------------- *)

(* With a node_space the generator draws node-level faults; without one
   the stream is unchanged, draw for draw. *)
let test_node_fault_plans () =
  let spec = Fed_scenarios.ring in
  let nodes = Fed.node_space spec in
  check Alcotest.int "3 shards" 3 nodes.Fault_plan.ns_shards;
  check Alcotest.int "3 data + 3 hb wires" 6 nodes.Fault_plan.ns_links;
  let plans = Fault_plan.generate ~nodes ~seed:7 ~steps:200 ~count:400 spec.Fed.fs_cfg in
  let node_faults =
    List.concat_map
      (fun (p : Fault_plan.t) ->
        List.filter
          (fun (_, f) ->
            match f with
            | Fault_plan.Shard_crash _ | Fault_plan.Link_partition _ | Fault_plan.Frame_tamper _
              -> true
            | _ -> false)
          p.Fault_plan.faults)
      plans
  in
  check Alcotest.bool "node faults drawn" true (List.length node_faults > 20);
  let without = Fault_plan.generate ~seed:7 ~steps:200 ~count:400 spec.Fed.fs_cfg in
  check Alcotest.bool "no node faults without a node_space" true
    (List.for_all
       (fun (p : Fault_plan.t) ->
         List.for_all
           (fun (_, f) ->
             match f with
             | Fault_plan.Shard_crash _ | Fault_plan.Link_partition _
             | Fault_plan.Frame_tamper _ -> false
             | _ -> true)
           p.Fault_plan.faults)
       without);
  (* multi-fault plans thread the space through too *)
  let multi =
    Fault_plan.generate_multi ~nodes ~seed:7 ~steps:200 ~count:100 ~faults_per_plan:3
      spec.Fed.fs_cfg
  in
  check Alcotest.bool "multi plans draw node faults" true
    (List.exists
       (fun (p : Fault_plan.t) ->
         List.exists
           (fun (_, f) -> match f with Fault_plan.Shard_crash _ -> true | _ -> false)
           p.Fault_plan.faults)
       multi)

(* -- The chaos campaign ----------------------------------------------------- *)

module Fed_campaign = Sep_fed.Fed_campaign
module Campaign = Sep_robust.Campaign

(* The headline: across directed and seeded node faults, with the online
   monitor attached to every shard, nothing ever violates separation —
   and the monitor agrees. *)
let test_chaos_holds () =
  List.iter
    (fun spec ->
      let r = Fed_campaign.run ~seed:42 ~steps:300 ~count:10 spec in
      let m, d, rc, v = Fed_campaign.totals r in
      check Alcotest.int (spec.Fed.fs_label ^ ": no violations") 0 v;
      check Alcotest.bool (spec.Fed.fs_label ^ ": monitor clean") true
        (Fed_campaign.monitor_clean r);
      check Alcotest.bool (spec.Fed.fs_label ^ ": campaign non-trivial") true
        (m + d + rc > 10))
    Fed_scenarios.all

(* Regression pin for the connected-channel weakening of condition 2: a
   shard hosts *uncut* intra-shard channels, so every send lands in (and
   every receive drains) a ring another colour's abstraction reads. With
   the monitor deep-checking every single step, nothing but the
   sanctioned-interference carve-out keeps a perfectly clean federation
   run green — before it, this flagged "changes ORANGE's view" within
   ten steps. *)
let test_monitor_clean_every_step () =
  List.iter
    (fun spec ->
      let policy = { Fed.default_policy with Fed.fp_monitor_period = 1 } in
      let t = Fed.build ~policy ~monitor:true spec in
      Fed.run t ~steps:100;
      let ob = Fed.finish t in
      check Alcotest.bool
        (spec.Fed.fs_label ^ ": clean run clean at period 1")
        true
        (ob.Fed.fob_first_violation = None);
      check Alcotest.bool
        (spec.Fed.fs_label ^ ": the watch really deep-checked")
        true
        (ob.Fed.fob_deep_checks > 50))
    Fed_scenarios.all

(* Directed crash cases end recovered: the failover revived the shard. *)
let test_chaos_crash_recovers () =
  let r = Fed_campaign.run ~monitor:false ~seed:7 ~steps:400 ~count:0 Fed_scenarios.ring in
  List.iter
    (fun (c : Fed_campaign.case) ->
      match c.Fed_campaign.fc_plan.Fault_plan.faults with
      | [ (_, Fault_plan.Shard_crash _) ] ->
        check Alcotest.bool
          (c.Fed_campaign.fc_plan.Fault_plan.label ^ " recovered")
          true
          (c.Fed_campaign.fc_outcome = Campaign.Recovered_safe)
      | _ -> ())
    r.Fed_campaign.fr_cases

(* Determinism across job counts: the chaos report is identical JSONL
   whether replayed on one domain or two. *)
let test_chaos_deterministic () =
  let run jobs =
    Fed_campaign.report_to_jsonl
      (Fed_campaign.run ~jobs ~monitor:false ~seed:123 ~steps:200 ~count:6 Fed_scenarios.pair)
  in
  check Alcotest.string "jsonl identical -j1 vs -j2" (run 1) (run 2)

let () =
  Alcotest.run "fed"
    [
      ( "federation",
        [
          Alcotest.test_case "pair delivers across the link" `Quick test_pair_delivers;
          Alcotest.test_case "clean run: supervisor quiet" `Quick test_clean_supervisor_quiet;
          Alcotest.test_case "ring relays locally and across" `Quick test_ring_relay;
          Alcotest.test_case "matches the monolithic ideal" `Quick test_matches_monolithic;
        ] );
      ( "failover",
        [
          Alcotest.test_case "crash detected and failed over" `Quick test_crash_failover;
          Alcotest.test_case "survivors byte-identical" `Quick test_survivors_byte_identical;
          Alcotest.test_case "reboot budget abandons" `Quick test_crash_budget_abandon;
        ] );
      ( "partition",
        [
          Alcotest.test_case "quarantine and rejoin" `Quick test_partition_quarantine_rejoin;
          Alcotest.test_case "data partition loses nothing" `Quick
            test_partition_data_wire_no_loss;
        ] );
      ( "tamper",
        [ Alcotest.test_case "forged frames rejected" `Quick test_tamper_rejected ] );
      ( "plans",
        [ Alcotest.test_case "node-fault plans" `Quick test_node_fault_plans ] );
      ( "chaos",
        [
          Alcotest.test_case "campaign holds, monitor clean" `Quick test_chaos_holds;
          Alcotest.test_case "monitor clean at every step" `Quick
            test_monitor_clean_every_step;
          Alcotest.test_case "directed crashes recover" `Quick test_chaos_crash_recovers;
          Alcotest.test_case "deterministic across jobs" `Quick test_chaos_deterministic;
        ] );
    ]
