(* Benchmark and experiment harness.

   One driver per reproduced claim of the paper (E1-E21, indexed in
   DESIGN.md and EXPERIMENTS.md), each printing the table that supports
   it, followed by bechamel timings of the core operations.

     dune exec bench/main.exe                 all experiments + timings
     dune exec bench/main.exe -- e3 e6        selected experiments
     dune exec bench/main.exe -- timings      only the timing benches
     dune exec bench/main.exe -- snapshot     write BENCH_PR9.json (see EXPERIMENTS.md)
     dune exec bench/main.exe -- snapshot --check   validate the writer, write nothing
     dune exec bench/main.exe -- compare OLD.json NEW.json   regression gate on throughput *)

module Table = Sep_util.Table
module Colour = Sep_model.Colour
module Scenarios = Sep_core.Scenarios
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Separability = Sep_core.Separability
module Mutants = Sep_core.Mutants
module Randomized = Sep_core.Randomized
module Metrics = Sep_core.Metrics
module Censor = Sep_components.Censor
module Covert = Sep_components.Covert
module Snfe = Sep_snfe.Snfe
module Substrate = Sep_snfe.Substrate
module Spooler = Sep_conventional.Spooler
module Sclass = Sep_lattice.Sclass
module Fuzz = Sep_check.Fuzz
module Score = Sep_check.Score
module Monitor = Sep_core.Monitor

let timed f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, Unix.gettimeofday () -. t0)

(* Best of [reps]: scheduler noise on this class of sub-second
   measurement is one-sided (contention only slows a run down), so the
   minimum is the stable estimator — the regression gate in [compare]
   depends on these numbers being reproducible. *)
let timed_best ?(reps = 3) f =
  let best = ref (timed f) in
  for _ = 2 to reps do
    let v, s = timed f in
    if s < snd !best then best := (v, s)
  done;
  !best

let claim text = Fmt.pr "paper: %s@." text

let conditions_str report =
  match Separability.failing_conditions report with
  | [] -> "-"
  | cs -> String.concat "," (List.map string_of_int cs)

(* -- E1: the six conditions hold for the correct kernel --------------------- *)

let e1 () =
  claim
    "\"Proof of Separability\" verifies a correct separation kernel: the six conditions of the \
     Appendix hold in every reachable state.";
  let t = Table.create ~title:"E1: exhaustive Proof of Separability, correct kernels"
      ~columns:[ "instance"; "states"; "checks"; "verdict"; "seconds" ] in
  let instances =
    List.map
      (fun (i : Scenarios.instance) -> (i.Scenarios.label, i.Scenarios.cfg, i.Scenarios.alphabet))
      (Scenarios.all @ [ Scenarios.scaled ~regimes:2 ~counter_bits:3 ])
  in
  List.iter
    (fun (label, cfg, alphabet) ->
      let report, secs = timed (fun () -> Separability.check (Sue.to_system ~inputs:alphabet cfg)) in
      Table.add_row t
        [
          label;
          string_of_int report.Separability.states;
          string_of_int report.Separability.checks;
          (if Separability.verified report then "VERIFIED" else "FAILED " ^ conditions_str report);
          Fmt.str "%.2f" secs;
        ])
    instances;
  Table.print t

(* -- E2: the separation kernel is small and policy-free ---------------------- *)

let e2 () =
  claim
    "the SUE \"is indeed small and simple... about 5K words\"; a separation kernel knows nothing \
     of the security policy, while a conventional kernel must mediate everything.";
  let sue = Metrics.sue_profile Scenarios.pipeline.Scenarios.cfg in
  let conv = Metrics.conventional_profile in
  let spool_jobs =
    [
      { Spooler.owner = "a"; level = Sclass.unclassified; text = "m" };
      { Spooler.owner = "b"; level = Sclass.secret; text = "p" };
    ]
  in
  let outcome = Spooler.run ~trusted:true ~jobs:spool_jobs in
  let loc path = match Metrics.loc_of_file path with Some n -> string_of_int n | None -> "n/a" in
  let t = Table.create ~title:"E2: kernel comparison"
      ~columns:[ "metric"; "separation kernel (SUE)"; "conventional kernel" ] in
  Table.add_row t [ "knows the security policy"; "no"; "yes" ];
  Table.add_row t [ "kernel entry points"; string_of_int (List.length sue.Metrics.services);
                    string_of_int Sep_conventional.Kernel.syscall_surface ];
  Table.add_row t [ "services"; String.concat ", " sue.Metrics.services; String.concat ", " conv.Metrics.services ];
  Table.add_row t
    [ "resident kernel data (words)";
      (match sue.Metrics.kernel_words with Some w -> string_of_int w | None -> "n/a");
      "unbounded (PCB/object tables)" ];
  Table.add_row t [ "mediates I/O"; "no (devices owned by regimes)"; "yes" ];
  Table.add_row t
    [ "policy decisions in spooler run"; "0";
      string_of_int outcome.Spooler.kernel_stats.Sep_conventional.Kernel.mediated_calls ];
  Table.add_row t [ "trusted processes required"; "0"; "1 (the spooler)" ];
  Table.add_row t [ "implementation (source lines)"; loc "lib/core/sue.ml"; loc "lib/conventional/kernel.ml" ];
  Table.add_row t
    [ "as machine code (words, 2 regimes)";
      string_of_int (Sue.kernel_code_words (Sue.build ~impl:Sue.Assembly Scenarios.pipeline.Scenarios.cfg));
      "n/a" ];
  Table.add_row t [ "verification"; sue.Metrics.verification; conv.Metrics.verification ];
  Table.print t;
  (* the cost of sharing one processor: kernel step throughput as the
     number of hosted regimes grows (every step is a SWAP here) *)
  let t2 = Table.create ~title:"E2b: kernel step cost vs hosted regimes (spin regimes, SWAP every step)"
      ~columns:[ "regimes"; "kernel words"; "steps/second" ] in
  List.iter
    (fun n ->
      let spin = [ Sep_hw.Isa.Label "s"; Sep_hw.Isa.Instr (Sep_hw.Isa.Trap 0); Sep_hw.Isa.Branch "s" ] in
      let cfg =
        Config.make
          ~regimes:
            (List.init n (fun i ->
                 { Config.colour = Colour.of_index i; part_size = 8; program = spin; devices = [] }))
          ~channels:[] ()
      in
      let kernel = Sue.build cfg in
      let iters = 200_000 in
      let (), secs = timed (fun () -> for _ = 1 to iters do ignore (Sue.step kernel []) done) in
      Table.add_row t2
        [
          string_of_int n;
          string_of_int (Sue.kernel_words kernel);
          Fmt.str "%.0f" (float_of_int iters /. secs);
        ])
    [ 2; 4; 8; 16 ];
  Table.print t2

(* -- E3: IFA cannot verify SWAP; Proof of Separability can ------------------- *)

let e3 () =
  claim
    "\"IFA cannot verify the security of a SWAP operation, even though it is manifestly secure\" \
     — only the tautological per-regime specification certifies; PoS verifies the real thing.";
  let t = Table.create ~title:"E3: verification technique vs the SWAP operation"
      ~columns:[ "program / system"; "semantically secure"; "IFA (syntactic)"; "taint (dynamic)"; "PoS" ] in
  List.iter
    (fun (case : Sep_ifa.Programs.case) ->
      let cert = Sep_ifa.Certify.secure case.Sep_ifa.Programs.env case.Sep_ifa.Programs.program in
      let taint =
        (Sep_ifa.Taint.run ~env:case.Sep_ifa.Programs.env case.Sep_ifa.Programs.store
           case.Sep_ifa.Programs.program)
          .Sep_ifa.Taint.violations = []
      in
      Table.add_row t
        [
          case.Sep_ifa.Programs.name;
          (if case.Sep_ifa.Programs.expect_secure then "yes" else "no");
          (if cert then "certified" else "rejected");
          (if taint then "clean" else "flagged");
          "-";
        ])
    Sep_ifa.Programs.all;
  (* the machine-level SWAP, verified by PoS as part of the kernel *)
  let inst = Scenarios.pipeline in
  let report = Separability.check (Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg) in
  Table.add_row t
    [
      "machine-level SWAP (in-kernel)";
      "yes";
      "rejected (reads RED and BLACK)";
      "flagged";
      (if Separability.verified report then "VERIFIED" else "FAILED");
    ];
  Table.print t

(* -- E4: each condition has discriminating power ------------------------------ *)

let e4 () =
  claim
    "the six conditions are \"exactly the right conditions\": every seeded kernel flaw is caught, \
     by the predicted condition, both exhaustively and by randomized checking.";
  let t = Table.create ~title:"E4: seeded kernel bugs vs the six conditions"
      ~columns:[ "bug"; "scenario"; "predicted"; "exhaustive"; "randomized"; "caught" ] in
  let all_ok = ref true in
  List.iter
    (fun (e : Mutants.expectation) ->
      let exh = Mutants.run e in
      let rnd =
        Randomized.check ~bugs:[ e.Mutants.bug ] ~seed:4242
          ~inputs:e.Mutants.scenario.Scenarios.alphabet e.Mutants.scenario.Scenarios.cfg
      in
      let caught = Mutants.detected e exh && Mutants.detected e rnd in
      if not caught then all_ok := false;
      Table.add_row t
        [
          Fmt.str "%a" Sue.pp_bug e.Mutants.bug;
          e.Mutants.scenario.Scenarios.label;
          string_of_int e.Mutants.primary;
          conditions_str exh;
          conditions_str rnd;
          (if caught then "yes" else "NO");
        ])
    Mutants.catalogue;
  Table.print t;
  Fmt.pr "all mutants caught by the predicted condition: %b@.@." !all_ok

(* -- E5: wire-cutting ---------------------------------------------------------- *)

let e5 () =
  claim
    "\"if we cut the communication channels that are allowed, then, provided there are no illicit \
     channels present, the components become completely isolated\" — the cut system verifies; \
     the uncut one is flagged through the shared buffer.";
  let inst = Scenarios.pipeline in
  let t = Table.create ~title:"E5: the wire-cutting transformation"
      ~columns:[ "system"; "channels"; "verdict"; "violated conditions" ] in
  let row label cfg =
    let report = Separability.check (Sue.to_system ~inputs:inst.Scenarios.alphabet cfg) in
    Table.add_row t
      [
        label;
        (if List.for_all (fun c -> c.Config.cut) cfg.Config.channels then "cut" else "shared");
        (if Separability.verified report then "VERIFIED (isolated)" else "FAILED");
        conditions_str report;
      ]
  in
  row "pipeline, wires cut" (Config.cut_all inst.Scenarios.cfg);
  row "pipeline, wires intact" (Config.cut_none inst.Scenarios.cfg);
  (* an illicit channel in a supposedly-cut system: the uncut-channel mutant *)
  let report =
    Separability.check
      (Sue.to_system ~bugs:[ Sue.Uncut_channel ] ~inputs:inst.Scenarios.alphabet
         (Config.cut_all inst.Scenarios.cfg))
  in
  Table.add_row t
    [
      "claimed cut, actually connected";
      "illicit";
      (if Separability.verified report then "VERIFIED?!" else "FAILED (illicit channel found)");
      conditions_str report;
    ];
  Table.print t

(* -- E6: censor vs covert bandwidth --------------------------------------------- *)

let e6 () =
  claim
    "\"a fairly simple censor can reduce the bandwidth available for illicit communication over \
     the bypass to an acceptable level\".";
  let t = Table.create
      ~title:"E6: covert bits reliably recovered per bypass message (200 messages, max_len=32, quantum=8)"
      ~columns:[ "leak vector"; "no censor"; "basic censor"; "strict censor" ] in
  List.iter
    (fun vector ->
      let cell mode =
        let b = Snfe.measure_covert ~vector ~mode ~messages:200 ~seed:1981 () in
        Fmt.str "%.2f" b.Snfe.bits_per_message
      in
      Table.add_row t
        [
          Fmt.str "%a" Covert.pp_vector vector;
          cell Censor.Off;
          cell Censor.Basic;
          cell Censor.Strict;
        ])
    [ Covert.Pad_field; Covert.Length_raw; Covert.Length_bucket ];
  Table.print t

(* -- E7: the kernel is indistinguishable from the distributed system ------------- *)

let e7 () =
  claim
    "the kernel provides each component \"an environment which is indistinguishable from that \
     which would be provided by a truly and physically distributed system\".";
  let t = Table.create ~title:"E7: per-component observable traces, kernelized vs distributed"
      ~columns:[ "scenario"; "components"; "trace events"; "identical" ] in
  let compare_traces label topo ~steps ~externals =
    let net = Sep_distributed.Net.build topo in
    let kernel = Sep_core.Regime_kernel.build topo in
    Sep_distributed.Net.run net ~steps ~externals;
    Sep_core.Regime_kernel.run kernel ~steps ~externals;
    let cols = Sep_model.Topology.colours topo in
    let events = ref 0 in
    let equal =
      List.for_all
        (fun c ->
          let a = Sep_distributed.Net.trace net c in
          events := !events + List.length a;
          a = Sep_core.Regime_kernel.trace kernel c)
        cols
    in
    Table.add_row t
      [ label; string_of_int (List.length cols); string_of_int !events; (if equal then "yes" else "NO") ]
  in
  compare_traces "snfe duplex" (Snfe.topology Snfe.default_config) ~steps:30 ~externals:(fun n ->
      if n < 5 then [ (Snfe.red, Fmt.str "host packet %d" n) ]
      else if n = 6 then [ (Snfe.black, "PKT HDR seq=0 len=2|2|aabb") ]
      else []);
  compare_traces "mls system" (Sep_apps.Mls.topology ()) ~steps:40 ~externals:(fun n ->
      List.filter_map (fun (s, c, m) -> if s = n then Some (c, m) else None) Sep_apps.Mls.demo_script);
  compare_traces "accat guard" (Sep_apps.Guard_app.topology ()) ~steps:25 ~externals:(fun n ->
      List.filter_map
        (fun (s, c, m) -> if s = n then Some (c, m) else None)
        Sep_apps.Guard_app.demo_script);
  Table.print t;
  let kernel = Sep_core.Regime_kernel.build (Snfe.topology Snfe.default_config) in
  Sep_core.Regime_kernel.run kernel ~steps:30 ~externals:(fun n ->
      if n < 5 then [ (Snfe.red, Fmt.str "host packet %d" n) ] else []);
  Fmt.pr "kernel bookkeeping for the snfe run: %d context switches, %d channel copies@."
    (Sep_core.Regime_kernel.context_switches kernel)
    (Sep_core.Regime_kernel.messages_copied kernel);
  (* the check has teeth: a kernel that fails at its one job is caught *)
  let topo = Snfe.topology Snfe.default_config in
  let externals n = if n < 5 then [ (Snfe.red, Fmt.str "pkt%d" n) ] else [] in
  List.iter
    (fun bug ->
      let net = Sep_distributed.Net.build topo in
      let k = Sep_core.Regime_kernel.build ~bugs:[ bug ] topo in
      Sep_distributed.Net.run net ~steps:25 ~externals;
      Sep_core.Regime_kernel.run k ~steps:25 ~externals;
      let equal =
        List.for_all
          (fun c -> Sep_distributed.Net.trace net c = Sep_core.Regime_kernel.trace k c)
          (Sep_model.Topology.colours topo)
      in
      Fmt.pr "buggy kernel (%a): %s@." Sep_core.Regime_kernel.pp_bug bug
        (if equal then "NOT DETECTED?!" else "detected by trace divergence"))
    Sep_core.Regime_kernel.all_bugs;
  Fmt.pr "@."

(* -- E8: the guard ----------------------------------------------------------------- *)

let e8 () =
  claim
    "\"messages from the LOW system to the HIGH one are allowed through the Guard without \
     hindrance, but messages from HIGH to LOW must be displayed to a human Security Watch \
     Officer\".";
  let t = Table.create ~title:"E8: ACCAT guard flows (demo script, both substrates)"
      ~columns:[ "substrate"; "low->high passed"; "reviewed"; "released"; "denied"; "denied text at LOW" ] in
  List.iter
    (fun kind ->
      let r = Sep_apps.Guard_app.run kind Sep_apps.Guard_app.demo_script in
      let s = r.Sep_apps.Guard_app.stats in
      let leaked = List.mem "secret: submarine positions" r.Sep_apps.Guard_app.low_screen in
      Table.add_row t
        [
          Fmt.str "%a" Substrate.pp_kind kind;
          string_of_int s.Sep_components.Guard.passed_up;
          string_of_int s.Sep_components.Guard.reviewed;
          string_of_int s.Sep_components.Guard.released;
          string_of_int s.Sep_components.Guard.denied;
          (if leaked then "LEAKED" else "absent");
        ])
    Substrate.both;
  Table.print t

(* -- E9: the spooler dilemma --------------------------------------------------------- *)

let e9 () =
  claim
    "\"the spooler cannot delete spool files after their contents have been printed\" on a \
     conventional kernel without becoming a trusted process; the separation design needs no \
     exemption anywhere.";
  let jobs =
    [
      { Spooler.owner = "alice"; level = Sclass.unclassified; text = "memo" };
      { Spooler.owner = "bob"; level = Sclass.secret; text = "plans" };
      { Spooler.owner = "carol"; level = Sclass.unclassified; text = "note" };
    ]
  in
  let t = Table.create ~title:"E9: printing with cleanup, three designs"
      ~columns:[ "design"; "jobs printed"; "spool files left"; "policy exemptions used" ] in
  let conv trusted =
    let o = Spooler.run ~trusted ~jobs in
    Table.add_row t
      [
        Fmt.str "conventional kernel, %s spooler" (if trusted then "trusted" else "untrusted");
        string_of_int o.Spooler.jobs_printed;
        string_of_int o.Spooler.spool_files_left;
        string_of_int o.Spooler.trust_exercised;
      ]
  in
  conv false;
  conv true;
  let r = Sep_apps.Mls.run Substrate.Kernelized Sep_apps.Mls.demo_script in
  let printed =
    List.length
      (List.filter (fun l -> Sep_components.Protocol.verb l = "BANNER") r.Sep_apps.Mls.printer_output)
  in
  Table.add_row t
    [
      "separation kernel + printer server";
      string_of_int printed;
      string_of_int (List.length r.Sep_apps.Mls.spool_files_left);
      "0 (privileged wire is part of the design)";
    ];
  Table.print t

(* -- E10: checking cost vs instance size ----------------------------------------------- *)

let e10 () =
  claim
    "exhaustive Proof of Separability is decidable but grows with the state space; randomized \
     checking scales to larger instances at the price of completeness.";
  let t = Table.create ~title:"E10a: exhaustive checking cost vs instance size"
      ~columns:[ "instance"; "regimes"; "counter bits"; "states"; "checks"; "seconds" ] in
  List.iter
    (fun (regimes, bits) ->
      let inst = Scenarios.scaled ~regimes ~counter_bits:bits in
      let report, secs =
        timed (fun () ->
            Separability.check ~state_limit:2_000_000
              (Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg))
      in
      Table.add_row t
        [
          inst.Scenarios.label;
          string_of_int regimes;
          string_of_int bits;
          string_of_int report.Separability.states;
          string_of_int report.Separability.checks;
          Fmt.str "%.3f" secs;
        ])
    [ (2, 1); (2, 2); (2, 4); (2, 6); (3, 2); (3, 3) ];
  Table.print t;
  let t2 = Table.create ~title:"E10b: randomized checking cost on the pipeline instance"
      ~columns:[ "walks"; "walk length"; "sampled states"; "checks"; "seconds"; "verdict" ] in
  List.iter
    (fun (walks, walk_len) ->
      let params = { Randomized.walks; walk_len; scrambles = 2 } in
      let inst = Scenarios.pipeline in
      let report, secs =
        timed (fun () ->
            Randomized.check ~params ~seed:7 ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg)
      in
      Table.add_row t2
        [
          string_of_int walks;
          string_of_int walk_len;
          string_of_int report.Separability.states;
          string_of_int report.Separability.checks;
          Fmt.str "%.3f" secs;
          (if Separability.verified report then "VERIFIED" else "FAILED");
        ])
    [ (4, 32); (8, 64); (16, 128); (32, 256) ];
  Table.print t2;
  (* ablation: the bucketing strategy vs the textbook pairwise quantification *)
  let t3 = Table.create ~title:"E10c: checker ablation — bucketed vs pairwise (same sample, same verdict)"
      ~columns:[ "sampled states"; "bucketed s"; "pairwise s"; "verdicts agree" ] in
  List.iter
    (fun walks ->
      let inst = Scenarios.pipeline in
      let params = { Randomized.walks; walk_len = 48; scrambles = 1 } in
      let states =
        Randomized.sample_states ~params ~seed:7 ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg
      in
      let sys = Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
      let fast, fast_s = timed (fun () -> Separability.check_states sys states) in
      let slow, slow_s = timed (fun () -> Separability.check_states_pairwise sys states) in
      Table.add_row t3
        [
          string_of_int (List.length states);
          Fmt.str "%.3f" fast_s;
          Fmt.str "%.3f" slow_s;
          string_of_bool (Separability.verified fast = Separability.verified slow);
        ])
    [ 2; 4; 8 ];
  Table.print t3

(* -- E11: state-based verification vs black-box testing --------------------------------- *)

let e11 () =
  claim
    "\"it cannot be proven with existing techniques that there is no way to circumvent that \
     piece of software\" (Robinson) — finite I/O testing of the paper's own security definition \
     misses kernel flaws that the six state-based conditions catch.";
  let inst = Scenarios.pipeline in
  let ni bugs =
    let sys = Sue.to_system ~bugs ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg in
    let t = Sue.build ~bugs inst.Scenarios.cfg in
    Sep_core.Noninterference.check ~prng:(Sep_util.Prng.create 1981) ~trials:40 ~word_len:60
      ~splice:(Sep_core.Noninterference.sue_splice t) sys
  in
  let t = Table.create
      ~title:"E11: detection by Proof of Separability vs black-box noninterference testing \
              (pipeline scenario; 40 trials x 60 steps per colour)"
      ~columns:[ "kernel"; "PoS verdict"; "I/O-testing verdict" ] in
  let row label bugs =
    let pos = Separability.check (Sue.to_system ~bugs ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg) in
    let nir = ni bugs in
    Table.add_row t
      [
        label;
        (if Separability.verified pos then "VERIFIED" else "FAILED " ^ conditions_str pos);
        (if Sep_core.Noninterference.interference_free nir then "no divergence observed"
         else Fmt.str "INTERFERENCE (%d trials)" (List.length nir.Sep_core.Noninterference.failures));
      ]
  in
  row "correct kernel" [];
  List.iter
    (fun (e : Mutants.expectation) ->
      if e.Mutants.scenario.Scenarios.label = inst.Scenarios.label then
        row (Fmt.str "%a" Sue.pp_bug e.Mutants.bug) [ e.Mutants.bug ])
    Mutants.catalogue;
  Table.print t

(* -- E12: components vs the SRI multilevel model ----------------------------------------- *)

let e12 () =
  claim
    "\"Ordinary programs, such as the SOM or a file-server, are sound interpretations of this \
     model. But a kernel is different\" — and so is the Guard, whose function is a sanctioned \
     downgrade no multilevel policy describes.";
  let prng = Sep_util.Prng.create 1977 in
  let run name machine alphabet ~expect =
    let report =
      Sep_policy.Mls_model.check ~prng ~trials:60 ~word_len:14 ~alphabet
        ~levels:Sep_apps.Sri_checks.levels machine
    in
    let verdict = Sep_policy.Mls_model.secure report in
    Fmt.pr "%s: %s (expected: %s)@." name
      (if verdict then "multilevel secure under the SRI model" else "NOT multilevel secure")
      expect;
    verdict
  in
  let fs_ok =
    run "file server"
      (Sep_apps.Sri_checks.file_server_machine ())
      Sep_apps.Sri_checks.file_server_alphabet ~expect:"secure — the model fits this component"
  in
  let guard_ok =
    run "accat guard"
      (Sep_apps.Sri_checks.guard_machine ())
      Sep_apps.Sri_checks.guard_alphabet
      ~expect:"INSECURE by design — reviewed release is a downgrade"
  in
  Fmt.pr "paper's per-component thesis reproduced: %b@.@." (fs_ok && not guard_ok)

(* -- E13: the kernel as machine code ------------------------------------------------------ *)

let e13 () =
  claim
    "\"it would be vastly more difficult and hugely expensive to verify the correctness of its \
     implementation as well\" (of KSOS, whose code got only 'illustrative' proofs) — here the \
     kernel IS machine code on the simulated hardware, and the six conditions are checked over \
     it directly.";
  let t = Table.create ~title:"E13: Proof of Separability over the kernel implementation"
      ~columns:[ "instance"; "kernel"; "code words"; "states"; "checks"; "verdict"; "seconds" ] in
  List.iter
    (fun (inst : Scenarios.instance) ->
      List.iter
        (fun impl ->
          let built = Sue.build ~impl inst.Scenarios.cfg in
          let report, secs =
            timed (fun () ->
                Separability.check ~state_limit:3_000_000
                  (Sue.to_system ~impl ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg))
          in
          Table.add_row t
            [
              inst.Scenarios.label;
              Fmt.str "%a" Sue.pp_impl impl;
              (match Sue.kernel_code_words built with 0 -> "-" | n -> string_of_int n);
              string_of_int report.Separability.states;
              string_of_int report.Separability.checks;
              (if Separability.verified report then "VERIFIED" else "FAILED " ^ conditions_str report);
              Fmt.str "%.2f" secs;
            ])
        [ Sue.Microcode; Sue.Assembly ])
    [ Scenarios.interrupt; Scenarios.snfe_micro; Scenarios.pipeline ];
  Table.print t;
  let all_caught =
    List.for_all
      (fun (e : Mutants.expectation) ->
        Mutants.detected e
          (Separability.check ~max_failures:3
             (Sue.to_system ~impl:Sue.Assembly ~bugs:[ e.Mutants.bug ]
                ~inputs:e.Mutants.scenario.Scenarios.alphabet e.Mutants.scenario.Scenarios.cfg)))
      Mutants.catalogue
  in
  Fmt.pr
    "all 8 seeded bugs caught in the machine-code kernel by their predicted conditions: %b@.@."
    all_caught

(* -- E14: fault containment --------------------------------------------------------------- *)

let e14 () =
  claim
    "in the distributed ideal a hardware fault inside one box cannot corrupt another box — the \
     kernelized system inherits that fault containment: no injected single fault perturbs another \
     colour's observable trace, and corrupted kernel state is detected and parked, not trusted.";
  let module C = Sep_robust.Campaign in
  let seed = 42 and steps = 200 and count = 40 in
  let report, secs = timed (fun () -> C.run ~seed ~steps ~count ()) in
  let t = Table.create ~title:"E14: fault-injection campaign (seed 42, 200 steps, 40 faults/scenario)"
      ~columns:[ "scenario"; "masked"; "detected-safe"; "violating"; "watchdog" ] in
  List.iter
    (fun (sr : C.scenario_report) ->
      let m, d, v =
        List.fold_left
          (fun (m, d, v) (c : C.case) ->
            match c.C.outcome with
            | C.Masked -> (m + 1, d, v)
            | C.Detected_safe -> (m, d + 1, v)
            | C.Recovered_safe -> (m, d, v)  (* E14 runs without a supervisor *)
            | C.Violating -> (m, d, v + 1))
          (0, 0, 0) sr.C.cases
      in
      Table.add_row t
        [
          sr.C.label;
          string_of_int m;
          string_of_int d;
          string_of_int v;
          (match sr.C.watchdog with Some w -> string_of_int w | None -> "-");
        ])
    report.C.rp_scenarios;
  let dist = C.run_distributed ~seed ~steps:40 ~count:20 in
  Table.add_row t
    [
      "distributed (wire tamper)";
      "-";
      "-";
      (if dist.C.dr_contained then "0" else "!");
      "-";
    ];
  Table.print t;
  let masked, detected, _, violating = C.totals report in
  Fmt.pr "%d cases in %.2fs: %d masked, %d detected-safe, %d violating; containment holds: %b@.@."
    (masked + detected + violating) secs masked detected violating
    (C.holds report && dist.C.dr_contained)

(* -- E15: property-based verification and coverage-guided fuzzing -------------------------- *)

let kill_runs seed budget (e : Mutants.expectation) =
  [
    (Score.Exhaustive, fun () -> Score.exhaustive_kill e);
    (Score.Randomized, fun () -> Score.randomized_kill ~seed e);
    (Score.Coverage, fun () -> Score.coverage_kill ~seed ~budget e);
  ]

let e15 () =
  claim
    "the six conditions are a checkable specification, not just a proof outline: a coverage-guided \
     fuzzer finds no violation in the correct kernel, and every seeded bug is killed — by its \
     predicted condition — under exhaustive, randomized and coverage-guided checking alike.";
  let seed = 42 and budget = 480 in
  let t = Table.create
      ~title:(Fmt.str "E15a: coverage-guided fuzz of the correct kernel (seed %d, budget %d)" seed budget)
      ~columns:[ "scenario"; "execs"; "corpus"; "coverage keys"; "failures"; "seconds" ] in
  List.iter
    (fun (inst : Scenarios.instance) ->
      let r, secs = timed (fun () -> Fuzz.fuzz_scenario ~seed ~budget inst) in
      Table.add_row t
        [
          inst.Scenarios.label;
          string_of_int r.Fuzz.sr_campaign.Fuzz.cp_execs;
          string_of_int (List.length r.Fuzz.sr_campaign.Fuzz.cp_entries);
          string_of_int (List.length r.Fuzz.sr_campaign.Fuzz.cp_keys);
          string_of_int (List.length r.Fuzz.sr_failures);
          Fmt.str "%.2f" secs;
        ])
    Scenarios.all;
  Table.print t;
  let t2 = Table.create
      ~title:(Fmt.str "E15b: mutant kill rate per checking strategy (seed %d, budget %d)" seed budget)
      ~columns:[ "bug"; "strategy"; "killed"; "cond"; "states"; "execs"; "instrs"; "seconds" ] in
  let all_killed = ref true in
  List.iter
    (fun (e : Mutants.expectation) ->
      List.iter
        (fun (_, run) ->
          let k, secs = timed run in
          if not k.Score.kl_detected then all_killed := false;
          Table.add_row t2
            [
              Score.bug_name k.Score.kl_bug;
              Score.strategy_name k.Score.kl_strategy;
              (if k.Score.kl_detected then "yes" else "NO");
              string_of_int k.Score.kl_condition;
              string_of_int k.Score.kl_states;
              string_of_int k.Score.kl_execs;
              (match k.Score.kl_workload with
              | Some w -> string_of_int (Score.workload_instrs w)
              | None -> "-");
              Fmt.str "%.3f" secs;
            ])
        (kill_runs seed budget e))
    Mutants.catalogue;
  Table.print t2;
  Fmt.pr "all mutants killed under every strategy: %b@.@." !all_killed

(* -- E16: fail-operational recovery --------------------------------------------------------- *)

let e16 () =
  claim
    "recovery preserves separability: a supervisor that restarts parked regimes from checkpoints \
     and warm-reboots a panicked kernel turns every detected fault into a recovered-safe outcome \
     without ever perturbing another colour's observable trace across the restart boundary — and \
     the kernel still pins against the distributed ideal when the ideal's wires drop, duplicate \
     and reorder frames under the reliable-channel protocol.";
  let module C = Sep_robust.Campaign in
  let seed = 42 and steps = 200 and count = 40 in
  let report, secs = timed (fun () -> C.run_recovery ~seed ~steps ~count ()) in
  let t = Table.create
      ~title:"E16a: recovery campaign (seed 42, 200 steps, 40 single- + 20 multi-fault plans/scenario)"
      ~columns:[ "scenario"; "masked"; "detected-safe"; "recovered-safe"; "violating"; "watchdog" ] in
  List.iter
    (fun (sr : C.scenario_report) ->
      let m, d, r, v =
        List.fold_left
          (fun (m, d, r, v) (c : C.case) ->
            match c.C.outcome with
            | C.Masked -> (m + 1, d, r, v)
            | C.Detected_safe -> (m, d + 1, r, v)
            | C.Recovered_safe -> (m, d, r + 1, v)
            | C.Violating -> (m, d, r, v + 1))
          (0, 0, 0, 0) sr.C.cases
      in
      Table.add_row t
        [
          sr.C.label;
          string_of_int m;
          string_of_int d;
          string_of_int r;
          string_of_int v;
          (match sr.C.watchdog with Some w -> string_of_int w | None -> "-");
        ])
    report.C.rp_scenarios;
  Table.print t;
  let masked, detected, recovered, violating = C.totals report in
  Fmt.pr "%d cases in %.2fs: %d masked, %d detected-safe, %d recovered-safe, %d violating; holds: %b@.@."
    (masked + detected + recovered + violating) secs masked detected recovered violating
    (C.holds report);
  let t2 = Table.create ~title:"E16b: kernel vs. reliable net over a lossy link (seed 42, 150 steps)"
      ~columns:[ "drop %"; "cases"; "delivered"; "retransmits"; "acks"; "backoff hits"; "mismatches"; "seconds" ] in
  List.iter
    (fun drop ->
      let link = { Sep_distributed.Net.default_link_model with Sep_distributed.Net.lm_drop = drop } in
      let rel, rsecs =
        timed (fun () -> Sep_check.Diff.kernel_vs_reliable_net ~link ~seed ~cases:4 ~steps:150 ())
      in
      let sum f = List.fold_left (fun n rc -> n + f rc) 0 rel in
      Table.add_row t2
        [
          string_of_int drop;
          string_of_int (List.length rel);
          string_of_int (sum (fun rc -> rc.Sep_check.Diff.rc_delivered));
          string_of_int
            (sum (fun rc -> rc.Sep_check.Diff.rc_stats.Sep_distributed.Net.ls_retransmits));
          string_of_int (sum (fun rc -> rc.Sep_check.Diff.rc_stats.Sep_distributed.Net.ls_acks));
          string_of_int
            (sum (fun rc -> rc.Sep_check.Diff.rc_stats.Sep_distributed.Net.ls_backoff_ceiling));
          string_of_int (sum (fun rc -> List.length rc.Sep_check.Diff.rc_mismatches));
          Fmt.str "%.2f" rsecs;
        ])
    [ 10; 25 ];
  Table.print t2

let e17 () =
  claim
    "verification is embarrassingly parallel without losing reproducibility: the work-sharded \
     executor splits a fixed work list over OCaml domains, derives each task's randomness from \
     (seed, task index) and merges results in canonical order, so campaigns, fuzzing and \
     randomized walks produce byte-identical reports at any -j while the wall clock scales with \
     the cores the machine actually has.";
  let jobs = Sep_par.Par.default_jobs () in
  Fmt.pr "recommended domain count on this machine: %d@.@." jobs;
  let t =
    Table.create ~title:(Fmt.str "E17: parallel speedup, -j 1 vs -j %d (seed 42)" jobs)
      ~columns:[ "driver"; "seconds -j1"; Fmt.str "seconds -j%d" jobs; "speedup"; "identical" ]
  in
  let row name run render =
    let r1, s1 = timed (fun () -> run 1) in
    let rn, sn = timed (fun () -> run jobs) in
    Table.add_row t
      [
        name;
        Fmt.str "%.2f" s1;
        Fmt.str "%.2f" sn;
        Fmt.str "%.2fx" (if sn > 0.0 then s1 /. sn else 0.0);
        (if String.equal (render r1) (render rn) then "yes" else "NO");
      ]
  in
  let module C = Sep_robust.Campaign in
  row "fault campaign (200 steps, 40 plans/scenario)"
    (fun jobs -> C.run ~jobs ~seed:42 ~steps:200 ~count:40 ())
    C.report_to_jsonl;
  row "recovery campaign (200 steps, 40 plans/scenario)"
    (fun jobs -> C.run_recovery ~jobs ~seed:42 ~steps:200 ~count:40 ())
    C.report_to_jsonl;
  row "fuzz pipeline (budget 60)"
    (fun jobs -> Fuzz.fuzz_scenario ~jobs ~seed:42 ~budget:60 Scenarios.pipeline)
    Fuzz.scenario_result_to_jsonl;
  row "randomized walks (32 x 64, pipeline)"
    (fun jobs ->
      Sep_core.Randomized.check ~jobs
        ~params:{ Sep_core.Randomized.walks = 32; walk_len = 64; scrambles = 2 }
        ~seed:42 ~inputs:Scenarios.pipeline.Scenarios.alphabet Scenarios.pipeline.Scenarios.cfg)
    (fun r -> Fmt.str "%a" Separability.pp_report r);
  Table.print t

(* -- E18: online monitor overhead --------------------------------------------- *)

type monitor_overhead = {
  mo_label : string;
  mo_steps : int;
  mo_period : int;
  mo_bare : float;  (** best-of-reps seconds without a watch *)
  mo_watched : float;  (** best-of-reps seconds with the watch attached *)
  mo_deep : int;  (** observations that escalated to a deep check *)
  mo_clean : bool;  (** the watch saw no violation (a correct kernel must) *)
}

(* The 5000-step microcode stepping bench, bare vs with a [Monitor.watch]
   attached; best of [reps] runs for each side, because the loop itself
   takes only a few milliseconds and the gate below quotes a ratio. *)
let measure_monitor_overhead ?(steps = 5_000) ?(period = 1_000) ?(reps = 21)
    (inst : Scenarios.instance) =
  let alphabet = Array.of_list inst.Scenarios.alphabet in
  let inputs n =
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []
  in
  let run watched =
    let t = Sue.build ~impl:Sue.Microcode inst.Scenarios.cfg in
    let w = if watched then Some (Monitor.watch ~period ~inputs:inst.Scenarios.alphabet t) else None in
    let (), secs =
      timed (fun () ->
          for n = 0 to steps - 1 do
            ignore (Sue.step t (inputs n));
            match w with Some w -> Monitor.observe w | None -> ()
          done)
    in
    (secs, w)
  in
  let best watched =
    let results = List.init reps (fun _ -> run watched) in
    List.fold_left (fun (bs, bw) (s, w) -> if s < bs then (s, w) else (bs, bw)) (List.hd results)
      (List.tl results)
  in
  let bare, _ = best false in
  let watched, w = best true in
  let w = Option.get w in
  {
    mo_label = inst.Scenarios.label;
    mo_steps = steps;
    mo_period = period;
    mo_bare = bare;
    mo_watched = watched;
    mo_deep = Monitor.deep_checks w;
    mo_clean = Monitor.watch_first_violation w = None;
  }

let overhead_frac r = if r.mo_bare > 0.0 then (r.mo_watched -. r.mo_bare) /. r.mo_bare else 0.0

let e18 () =
  claim
    "the six conditions can be checked online: an incremental monitor with amortized O(1) \
     per-state cost rides along a live kernel — a cheap audit probe every step, a deep check on \
     audit activity or every period steps — flagging a violation at the step it occurs while the \
     stepping loop keeps most of its bare throughput.";
  let t =
    Table.create
      ~title:"E18: online monitor amortized overhead (5000-step microcode run, period 1000, best of 21)"
      ~columns:[ "instance"; "steps/s bare"; "steps/s watched"; "overhead"; "deep checks"; "clean" ]
  in
  List.iter
    (fun inst ->
      let r = measure_monitor_overhead inst in
      let rate secs = if secs > 0.0 then Fmt.str "%.0f" (float_of_int r.mo_steps /. secs) else "-" in
      Table.add_row t
        [
          r.mo_label;
          rate r.mo_bare;
          rate r.mo_watched;
          Fmt.str "%.1f%%" (100.0 *. overhead_frac r);
          string_of_int r.mo_deep;
          (if r.mo_clean then "yes" else "NO");
        ])
    (Scenarios.all @ [ Scenarios.scaled ~regimes:2 ~counter_bits:3 ]);
  Table.print t

(* -- E19: the kernel federation ------------------------------------------------ *)

(* One federated run: sustained throughput (words carried shard-to-shard
   per second of wall clock) and the end-to-end word latency histogram of
   the inter-shard links, clean and under a directed node-fault plan. *)
type fed_measure = {
  fm_label : string;
  fm_faulty : bool;
  fm_steps : int;
  fm_seconds : float;
  fm_delivered : int;
  fm_words_per_sec : float;
  fm_p50 : float;
  fm_p95 : float;
  fm_p99 : float;
  fm_events : int;
  fm_recoveries : int;
  fm_violating : bool;  (* the online monitor flagged a shard *)
}

let measure_federation ?plan ?(steps = 2_000) (spec : Sep_fed.Fed.spec) =
  let module F = Sep_fed.Fed in
  let (t, ob), secs =
    timed_best (fun () ->
        let t = F.build ?plan ~monitor:true spec in
        F.run t ~steps;
        (t, F.finish t))
  in
  let h = Sep_obs.Telemetry.histogram (Sep_distributed.Net.telemetry (F.net t)) "net.latency.steps" in
  {
    fm_label = spec.F.fs_label;
    fm_faulty = plan <> None;
    fm_steps = steps;
    fm_seconds = secs;
    fm_delivered = ob.F.fob_delivered;
    fm_words_per_sec = (if secs > 0.0 then float_of_int ob.F.fob_delivered /. secs else 0.0);
    fm_p50 = Sep_obs.Telemetry.p50 h;
    fm_p95 = Sep_obs.Telemetry.p95 h;
    fm_p99 = Sep_obs.Telemetry.p99 h;
    fm_events = List.length ob.F.fob_events;
    fm_recoveries = List.length ob.F.fob_recoveries;
    fm_violating = ob.F.fob_first_violation <> None;
  }

(* The directed faulty workload: crash the last shard a third of the way
   in (failover from checkpoints), partition the first data wire for a
   while two thirds in — recovery cost shows up in the tail latency, not
   in lost words. *)
let federation_fault_plan (spec : Sep_fed.Fed.spec) ~steps =
  {
    Sep_robust.Fault_plan.label = "bench-node-faults";
    faults =
      [
        (steps / 3, Sep_robust.Fault_plan.Shard_crash { shard = Sep_fed.Fed.nshards_of spec - 1 });
        (2 * steps / 3, Sep_robust.Fault_plan.Link_partition { link = 0; window = 40 });
      ];
  }

let federation_measures ?(steps = 2_000) () =
  List.concat_map
    (fun (spec : Sep_fed.Fed.spec) ->
      [
        measure_federation ~steps spec;
        measure_federation ~plan:(federation_fault_plan spec ~steps) ~steps spec;
      ])
    Sep_fed.Fed_scenarios.all

let e19 () =
  claim
    "the kernel federation is fail-operational: inter-shard channel words ride reliable links \
     between shard kernels, a crashed shard is warm-rebooted from its output-commit checkpoints \
     and a partitioned wire costs latency, never words — while the online separability monitor \
     stays clean on every shard.";
  let t = Table.create
      ~title:"E19: federated throughput and latency, clean vs node faults (2000 steps, best of 3)"
      ~columns:[ "scenario"; "workload"; "words"; "words/s"; "lat p50"; "lat p95"; "lat p99";
                 "node events"; "recoveries"; "monitor" ] in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.fm_label;
          (if m.fm_faulty then "node faults" else "clean");
          string_of_int m.fm_delivered;
          Fmt.str "%.0f" m.fm_words_per_sec;
          Fmt.str "%.0f" m.fm_p50;
          Fmt.str "%.0f" m.fm_p95;
          Fmt.str "%.0f" m.fm_p99;
          string_of_int m.fm_events;
          string_of_int m.fm_recoveries;
          (if m.fm_violating then "VIOLATION" else "clean");
        ])
    (federation_measures ());
  Table.print t

(* -- E21: services over the federation ----------------------------------------- *)

(* One service run: end-to-end requests carried by the Sep_svc layer on
   top of the federation, clean and under a directed node-fault plan.
   The throughput metric is resolved requests per second of wall clock;
   the contract column is the exactly-once audit (lost = committed
   outcome without a ledger effect, dup = one (client, rid) committed
   twice). *)
type svc_measure = {
  sm_label : string;
  sm_faulty : bool;
  sm_steps : int;
  sm_seconds : float;
  sm_requests : int;
  sm_committed : int;
  sm_requests_per_sec : float;
  sm_retries : int;
  sm_dedup_hits : int;
  sm_shed : int;
  sm_rtt_p50 : float;
  sm_rtt_p95 : float;
  sm_contract_ok : bool;
  sm_violating : bool;  (* the online monitor flagged a shard *)
}

let measure_service ?plan ?(steps = 2_500) (dep : Sep_svc.Svc.deployment) =
  let module Svc = Sep_svc.Svc in
  let (t, res), secs =
    timed_best (fun () ->
        let t = Svc.build ?plan ~monitor:true ~seed:42 dep in
        Svc.run t ~steps;
        (t, Svc.finish t))
  in
  let tel = Svc.telemetry t in
  let kv name =
    match Sep_obs.Telemetry.find_counter tel name with
    | Some c -> Sep_obs.Telemetry.counter_value c
    | None -> 0
  in
  let rtt = Sep_obs.Telemetry.histogram tel "svc.rtt_steps" in
  let c = res.Svc.sr_contract in
  {
    sm_label = dep.Svc.dp_name;
    sm_faulty = plan <> None;
    sm_steps = steps;
    sm_seconds = secs;
    sm_requests = c.Svc.ct_requests;
    sm_committed = c.Svc.ct_committed;
    sm_requests_per_sec =
      (if secs > 0.0 then float_of_int c.Svc.ct_resolved /. secs else 0.0);
    sm_retries = kv "svc.retries";
    sm_dedup_hits = kv "svc.dedup_hits";
    sm_shed = kv "svc.shed";
    sm_rtt_p50 = Sep_obs.Telemetry.p50 rtt;
    sm_rtt_p95 = Sep_obs.Telemetry.p95 rtt;
    sm_contract_ok = c.Svc.ct_ok;
    sm_violating = res.Svc.sr_fed.Sep_fed.Fed.fob_first_violation <> None;
  }

(* The directed faulty workload: crash the first replica shard a third
   of the way in (clients fail over, the replay cache absorbs the
   retries) and partition the first wire two thirds in (deadline
   timeouts and backoff, never a duplicated effect). *)
let service_fault_plan (dep : Sep_svc.Svc.deployment) ~steps =
  let spec = Sep_svc.Svc.spec_of dep in
  {
    Sep_robust.Fault_plan.label = "bench-service-faults";
    faults =
      [
        (steps / 3, Sep_robust.Fault_plan.Shard_crash { shard = 1 });
        ( 2 * steps / 3,
          Sep_robust.Fault_plan.Link_partition
            { link = min 1 (Sep_fed.Fed.nlinks_of spec - 1); window = 60 } );
      ];
  }

let service_measures ?(steps = 2_500) () =
  List.concat_map
    (fun (dep : Sep_svc.Svc.deployment) ->
      [
        measure_service ~steps dep;
        measure_service ~plan:(service_fault_plan dep ~steps) ~steps dep;
      ])
    Sep_apps.Fed_services.all

let e21 () =
  claim
    "the section 6 services survive node faults as federation applications: clients retry with \
     capped backoff and fail over across replicas, servers deduplicate replays for exactly-once \
     effects, overload sheds definite rejections — every accepted request ends in exactly one \
     committed effect or a definite client-visible failure, clean and under crashes alike.";
  let t = Table.create
      ~title:"E21: service throughput and contract, clean vs node faults (2500 steps, best of 3)"
      ~columns:[ "service"; "workload"; "requests"; "committed"; "req/s"; "retries"; "dedup";
                 "shed"; "rtt p50"; "rtt p95"; "contract"; "monitor" ] in
  List.iter
    (fun m ->
      Table.add_row t
        [
          m.sm_label;
          (if m.sm_faulty then "node faults" else "clean");
          string_of_int m.sm_requests;
          string_of_int m.sm_committed;
          Fmt.str "%.0f" m.sm_requests_per_sec;
          string_of_int m.sm_retries;
          string_of_int m.sm_dedup_hits;
          string_of_int m.sm_shed;
          Fmt.str "%.0f" m.sm_rtt_p50;
          Fmt.str "%.0f" m.sm_rtt_p95;
          (if m.sm_contract_ok then "ok" else "BROKEN");
          (if m.sm_violating then "VIOLATION" else "clean");
        ])
    (service_measures ());
  Table.print t

(* -- E20: the refinement stack ----------------------------------------------------------- *)

let refinement_measure () =
  let module Stack = Sep_refine.Stack in
  let scen, secs =
    timed (fun () -> Stack.scenario_results ~schedules:2 ~steps:250 ~seed:42 ())
  in
  let checks =
    List.fold_left (fun a (_, r) -> match r with Ok c -> a + c | Error _ -> a) 0 scen
  in
  let diverged = List.filter (fun (_, r) -> Result.is_error r) scen in
  let kills, kill_secs = timed (fun () -> Stack.kill_table ~seed:42 ~attempts:12 ()) in
  (scen, checks, secs, diverged, kills, kill_secs)

let e20 () =
  claim
    "the kernel is verifiable as a refinement of the separability ideal: an abstract per-colour \
     machine sits above the Sue kernel through the abstraction functions (one commuting square \
     per instruction), a behavioural specification above the regime kernel (one per rotation), \
     and shared Kahn workloads tie the levels' committed word streams — any seeded bug at either \
     level breaks a square, minimally and replayably.";
  let module Stack = Sep_refine.Stack in
  let scen, checks, secs, diverged, kills, kill_secs = refinement_measure () in
  let t = Table.create ~title:"E20: refinement kill table (seed 42, 12 attempts/bug)"
      ~columns:[ "bug"; "level"; "scenario"; "attempt"; "step"; "size"; "shrunk"; "status" ] in
  List.iter
    (fun (k : Stack.kill) ->
      Table.add_row t
        [
          k.Stack.k_bug;
          k.Stack.k_level;
          k.Stack.k_scenario;
          string_of_int k.Stack.k_attempts;
          string_of_int k.Stack.k_step;
          string_of_int k.Stack.k_original_size;
          string_of_int k.Stack.k_shrunk_size;
          (if k.Stack.k_killed then "killed" else "SURVIVED");
        ])
    kills;
  Table.print t;
  let killed = List.length (List.filter (fun k -> k.Stack.k_killed) kills) in
  Fmt.pr "lockstep: %d scenario runs, %d divergences, %d commuting-square checks (%.0f checks/s)@."
    (List.length scen) (List.length diverged) checks
    (if secs > 0.0 then float_of_int checks /. secs else 0.0);
  Fmt.pr "kills: %d/%d seeded bugs caught in %.2fs@." killed (List.length kills) kill_secs

(* -- bechamel timings -------------------------------------------------------------------- *)

let timings () =
  let open Bechamel in
  let open Toolkit in
  Fmt.pr "== timing benches (bechamel, monotonic clock) ==@.";
  let sue_instance () = Sue.build Scenarios.pipeline.Scenarios.cfg in
  let sue_step =
    let t = sue_instance () in
    Test.make ~name:"sue kernel step" (Staged.stage (fun () -> ignore (Sue.step t [ (0, 1) ])))
  in
  let sue_swap =
    let spin = [ Sep_hw.Isa.Label "s"; Sep_hw.Isa.Instr (Sep_hw.Isa.Trap 0); Sep_hw.Isa.Branch "s" ] in
    let cfg =
      Config.make
        ~regimes:
          [
            { Config.colour = Colour.red; part_size = 8; program = spin; devices = [] };
            { Config.colour = Colour.black; part_size = 8; program = spin; devices = [] };
          ]
        ~channels:[] ()
    in
    let t = Sue.build cfg in
    Test.make ~name:"sue SWAP (trap + context switch)" (Staged.stage (fun () -> ignore (Sue.step t [])))
  in
  let phi =
    let t = sue_instance () in
    Test.make ~name:"abstraction function phi" (Staged.stage (fun () -> ignore (Sue.phi t Colour.red)))
  in
  let kernel_step =
    let topo = Snfe.topology Snfe.default_config in
    let k = Sep_core.Regime_kernel.build topo in
    Test.make ~name:"regime-kernel rotation (snfe)"
      (Staged.stage (fun () -> Sep_core.Regime_kernel.step k ~externals:[ (Snfe.red, "p") ]))
  in
  let net_step =
    let topo = Snfe.topology Snfe.default_config in
    let n = Sep_distributed.Net.build topo in
    Test.make ~name:"distributed-net step (snfe)"
      (Staged.stage (fun () -> Sep_distributed.Net.step n ~externals:[ (Snfe.red, "p") ]))
  in
  let crypto =
    let key = Sep_components.Crypto.key_of_int 0xC0FFEE in
    let msg = String.make 64 'x' in
    Test.make ~name:"crypto encrypt (64 bytes)"
      (Staged.stage (fun () -> ignore (Sep_components.Crypto.encrypt key msg)))
  in
  let censor_check =
    Test.make ~name:"censor check (strict)"
      (Staged.stage (fun () ->
           ignore
             (Censor.check ~mode:Censor.Strict ~max_len:32 ~quantum:8 ~expected_seq:0
                "HDR seq=0 len=5")))
  in
  let ifa =
    Test.make ~name:"IFA certification (catalogue)"
      (Staged.stage (fun () ->
           List.iter
             (fun (c : Sep_ifa.Programs.case) ->
               ignore (Sep_ifa.Certify.certify c.Sep_ifa.Programs.env c.Sep_ifa.Programs.program))
             Sep_ifa.Programs.all))
  in
  let pos_small =
    let inst = Scenarios.scaled ~regimes:2 ~counter_bits:1 in
    Test.make ~name:"exhaustive PoS (scaled 2x1b)"
      (Staged.stage (fun () ->
           ignore (Separability.check (Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg))))
  in
  let blp =
    let sub = Sep_policy.Blp.subject "s" Sclass.secret in
    let obj = Sep_policy.Blp.obj "o" Sclass.unclassified in
    Test.make ~name:"BLP decision"
      (Staged.stage (fun () -> ignore (Sep_policy.Blp.decide sub Sep_policy.Blp.Read obj)))
  in
  let tests =
    [ sue_step; sue_swap; phi; kernel_step; net_step; crypto; censor_check; ifa; pos_small; blp ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let table = Table.create ~title:"core operation timings" ~columns:[ "operation"; "ns/run"; "r^2" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (est :: _) -> Fmt.str "%.1f" est
            | Some [] | None -> "n/a"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Fmt.str "%.4f" r
            | None -> "n/a"
          in
          Table.add_row table [ name; ns; r2 ])
        analysed)
    tests;
  Table.print table

(* -- snapshot: the machine-readable bench record ------------------------------ *)

(* Writes BENCH_PR<n>.json: per-experiment wall clock, states explored,
   checks/sec, per-regime kernel counters and the span profile, so the
   perf trajectory of the repository is comparable across PRs. The schema
   is documented in EXPERIMENTS.md; `snapshot --check` rebuilds the
   snapshot in memory, parses it back and validates the shape without
   touching the file. *)

module Json = Sep_util.Json

let snapshot_scenarios () =
  Scenarios.all @ [ Scenarios.scaled ~regimes:2 ~counter_bits:3 ]

let snapshot_json () =
  Sep_obs.Span.set_enabled true;
  Sep_obs.Span.reset ();
  let check_experiments =
    List.map
      (fun (inst : Scenarios.instance) ->
        let report, secs =
          timed_best (fun () ->
              Separability.check (Sue.to_system ~inputs:inst.Scenarios.alphabet inst.Scenarios.cfg))
        in
        Json.Obj
          [
            ("label", Json.String inst.Scenarios.label);
            ("kind", Json.String "exhaustive-pos");
            ("states", Json.Int report.Separability.states);
            ("checks", Json.Int report.Separability.checks);
            ("verified", Json.Bool (Separability.verified report));
            ("seconds", Json.Float secs);
            ( "checks_per_sec",
              Json.Float
                (if secs > 0.0 then float_of_int report.Separability.checks /. secs else 0.0) );
          ])
      (snapshot_scenarios ())
  in
  let kernel_runs =
    let run (inst : Scenarios.instance) impl =
      let alphabet = Array.of_list inst.Scenarios.alphabet in
      let steps = 5_000 in
      let inputs n =
        if Array.length alphabet > 1 && n mod 10 = 0 then
          alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
        else []
      in
      (* fresh kernel per rep so the counters below describe one run *)
      let t, secs =
        timed_best ~reps:7 (fun () ->
            let t = Sue.build ~impl inst.Scenarios.cfg in
            for n = 0 to steps - 1 do
              ignore (Sue.step t (inputs n))
            done;
            t)
      in
      Json.Obj
        [
          ("label", Json.String inst.Scenarios.label);
          ("impl", Json.String (Fmt.str "%a" Sue.pp_impl impl));
          ("steps", Json.Int steps);
          ("seconds", Json.Float secs);
          ("steps_per_sec", Json.Float (if secs > 0.0 then float_of_int steps /. secs else 0.0));
          ("counters", Sep_obs.Telemetry.to_json (Sue.telemetry t));
        ]
    in
    List.map (fun inst -> run inst Sue.Microcode) (snapshot_scenarios ())
    @ [ run Scenarios.pipeline Sue.Assembly ]
  in
  let fault_campaign =
    let module C = Sep_robust.Campaign in
    let report, secs = timed (fun () -> C.run ~seed:42 ~steps:200 ~count:40 ()) in
    let dist = C.run_distributed ~seed:42 ~steps:40 ~count:20 in
    match C.summary_json report with
    | Json.Obj fields ->
      Json.Obj (fields @ [ ("seconds", Json.Float secs); ("distributed", C.dist_to_json dist) ])
    | other -> other
  in
  let fuzz =
    let seed = 42 and budget = 480 in
    let scenario_entries =
      List.map
        (fun (inst : Scenarios.instance) ->
          let r, secs = timed (fun () -> Fuzz.fuzz_scenario ~seed ~budget inst) in
          Json.Obj
            [
              ("label", Json.String inst.Scenarios.label);
              ("execs", Json.Int r.Fuzz.sr_campaign.Fuzz.cp_execs);
              ("corpus", Json.Int (List.length r.Fuzz.sr_campaign.Fuzz.cp_entries));
              ("coverage_keys", Json.Int (List.length r.Fuzz.sr_campaign.Fuzz.cp_keys));
              ("failures", Json.Int (List.length r.Fuzz.sr_failures));
              ("seconds", Json.Float secs);
            ])
        Scenarios.all
    in
    let kill_entries =
      List.concat_map
        (fun (e : Mutants.expectation) ->
          List.map
            (fun (_, run) ->
              let k, secs = timed run in
              match Score.kill_to_json k with
              | Json.Obj fields -> Json.Obj (fields @ [ ("seconds", Json.Float secs) ])
              | other -> other)
            (kill_runs seed budget e))
        Mutants.catalogue
    in
    Json.Obj
      [
        ("seed", Json.Int seed);
        ("budget", Json.Int budget);
        ("scenarios", Json.List scenario_entries);
        ("kills", Json.List kill_entries);
      ]
  in
  let recovery =
    let module C = Sep_robust.Campaign in
    let report, secs = timed (fun () -> C.run_recovery ~seed:42 ~steps:200 ~count:40 ()) in
    let rel, rel_secs =
      timed (fun () -> Sep_check.Diff.kernel_vs_reliable_net ~seed:42 ~cases:4 ~steps:150 ())
    in
    let rel_entries =
      List.mapi
        (fun i (rc : Sep_check.Diff.reliable_case) ->
          let s = rc.Sep_check.Diff.rc_stats in
          Json.Obj
            [
              ("case", Json.Int i);
              ("delivered", Json.Int rc.Sep_check.Diff.rc_delivered);
              ("mismatches", Json.Int (List.length rc.Sep_check.Diff.rc_mismatches));
              ("lossy_drops", Json.Int s.Sep_distributed.Net.ls_lossy_drops);
              ("retransmits", Json.Int s.Sep_distributed.Net.ls_retransmits);
              ("acks", Json.Int s.Sep_distributed.Net.ls_acks);
              ("backoff_ceiling", Json.Int s.Sep_distributed.Net.ls_backoff_ceiling);
            ])
        rel
    in
    match C.summary_json report with
    | Json.Obj fields ->
      Json.Obj
        (fields
        @ [
            ("seconds", Json.Float secs);
            ("reliable_net", Json.List rel_entries);
            ("reliable_net_seconds", Json.Float rel_secs);
          ])
    | other -> other
  in
  let speedup =
    let module C = Sep_robust.Campaign in
    let jobs = Sep_par.Par.default_jobs () in
    let r1, s1 = timed (fun () -> C.run ~jobs:1 ~seed:42 ~steps:120 ~count:24 ()) in
    let rn, sn = timed (fun () -> C.run ~jobs ~seed:42 ~steps:120 ~count:24 ()) in
    Json.Obj
      [
        ("jobs", Json.Int jobs);
        ("seconds_j1", Json.Float s1);
        ("seconds_jn", Json.Float sn);
        ("speedup", Json.Float (if sn > 0.0 then s1 /. sn else 0.0));
        ("deterministic", Json.Bool (String.equal (C.report_to_jsonl r1) (C.report_to_jsonl rn)));
      ]
  in
  let monitor =
    let runs =
      List.map
        (fun inst ->
          let r = measure_monitor_overhead inst in
          let rate secs = if secs > 0.0 then float_of_int r.mo_steps /. secs else 0.0 in
          Json.Obj
            [
              ("label", Json.String r.mo_label);
              ("impl", Json.String "microcode");
              ("steps", Json.Int r.mo_steps);
              ("period", Json.Int r.mo_period);
              ("seconds_bare", Json.Float r.mo_bare);
              ("seconds_watched", Json.Float r.mo_watched);
              ("steps_per_sec_bare", Json.Float (rate r.mo_bare));
              ("steps_per_sec_watched", Json.Float (rate r.mo_watched));
              ("overhead_frac", Json.Float (overhead_frac r));
              ("deep_checks", Json.Int r.mo_deep);
              ("clean", Json.Bool r.mo_clean);
            ])
        (snapshot_scenarios ())
    in
    Json.Obj [ ("runs", Json.List runs) ]
  in
  let latency =
    (* end-to-end word latency over one reliable lossy link: the snfe
       topology under the default link model, latency measured in net
       steps from send-accept to in-order delivery *)
    let net = Sep_distributed.Net.build ~link:Sep_distributed.Net.default_link_model
        (Snfe.topology Snfe.default_config)
    in
    let steps = 400 in
    let (), secs =
      timed (fun () ->
          for n = 0 to steps - 1 do
            Sep_distributed.Net.step net
              ~externals:(if n mod 2 = 0 then [ (Snfe.red, Fmt.str "m%d" n) ] else [])
          done)
    in
    let tel = Sep_distributed.Net.telemetry net in
    let h = Sep_obs.Telemetry.histogram tel "net.latency.steps" in
    let s = Sep_distributed.Net.link_stats net in
    Json.Obj
      [
        ("topology", Json.String "snfe");
        ("steps", Json.Int steps);
        ("seconds", Json.Float secs);
        ("words", Json.Int (Sep_obs.Telemetry.count h));
        ("p50", Json.Float (Sep_obs.Telemetry.p50 h));
        ("p95", Json.Float (Sep_obs.Telemetry.p95 h));
        ("p99", Json.Float (Sep_obs.Telemetry.p99 h));
        ("max", Json.Float (Sep_obs.Telemetry.hist_max h));
        ( "retransmit_queue",
          Json.Float
            (Sep_obs.Telemetry.gauge_value
               (Sep_obs.Telemetry.gauge tel "net.retransmit_queue")) );
        ("retransmits", Json.Int s.Sep_distributed.Net.ls_retransmits);
        ("acks", Json.Int s.Sep_distributed.Net.ls_acks);
      ]
  in
  let federation =
    let runs =
      List.map
        (fun m ->
          Json.Obj
            [
              ("label", Json.String m.fm_label);
              ("workload", Json.String (if m.fm_faulty then "node-faults" else "clean"));
              ("steps", Json.Int m.fm_steps);
              ("seconds", Json.Float m.fm_seconds);
              ("delivered", Json.Int m.fm_delivered);
              ("words_per_sec", Json.Float m.fm_words_per_sec);
              ("latency_p50", Json.Float m.fm_p50);
              ("latency_p95", Json.Float m.fm_p95);
              ("latency_p99", Json.Float m.fm_p99);
              ("node_events", Json.Int m.fm_events);
              ("recoveries", Json.Int m.fm_recoveries);
              ("monitor_clean", Json.Bool (not m.fm_violating));
            ])
        (federation_measures ())
    in
    Json.Obj [ ("runs", Json.List runs) ]
  in
  let services =
    let runs =
      List.map
        (fun m ->
          Json.Obj
            [
              ("label", Json.String m.sm_label);
              ("workload", Json.String (if m.sm_faulty then "node-faults" else "clean"));
              ("steps", Json.Int m.sm_steps);
              ("seconds", Json.Float m.sm_seconds);
              ("requests", Json.Int m.sm_requests);
              ("committed", Json.Int m.sm_committed);
              ("requests_per_sec", Json.Float m.sm_requests_per_sec);
              ("retries", Json.Int m.sm_retries);
              ("dedup_hits", Json.Int m.sm_dedup_hits);
              ("shed", Json.Int m.sm_shed);
              ("rtt_p50", Json.Float m.sm_rtt_p50);
              ("rtt_p95", Json.Float m.sm_rtt_p95);
              ("contract_ok", Json.Bool m.sm_contract_ok);
              ("monitor_clean", Json.Bool (not m.sm_violating));
            ])
        (service_measures ())
    in
    Json.Obj [ ("runs", Json.List runs) ]
  in
  let refinement =
    let module Stack = Sep_refine.Stack in
    let scen, checks, secs, diverged, kills, kill_secs = refinement_measure () in
    let killed = List.length (List.filter (fun k -> k.Stack.k_killed) kills) in
    Json.Obj
      [
        ("seed", Json.Int 42);
        ("scenario_runs", Json.Int (List.length scen));
        ("divergences", Json.Int (List.length diverged));
        ("checks", Json.Int checks);
        ("seconds", Json.Float secs);
        ( "checks_per_sec",
          Json.Float (if secs > 0.0 then float_of_int checks /. secs else 0.0) );
        ("bugs", Json.Int (List.length kills));
        ("killed", Json.Int killed);
        ("kill_seconds", Json.Float kill_secs);
        ("kills", Json.List (List.map Stack.kill_to_json kills));
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "rushby-bench/9");
      ("generated_at_unix", Json.Float (Unix.time ()));
      ("ocaml_version", Json.String Sys.ocaml_version);
      ("experiments", Json.List check_experiments);
      ("kernel_runs", Json.List kernel_runs);
      ("fault_campaign", fault_campaign);
      ("fuzz", fuzz);
      ("recovery", recovery);
      ("speedup", speedup);
      ("monitor", monitor);
      ("latency", latency);
      ("federation", federation);
      ("services", services);
      ("refinement", refinement);
      ("spans", Sep_obs.Span.to_json ());
    ]

let validate_snapshot json =
  let fail msg = Error msg in
  let require_obj name v = match v with Some (Json.Obj _ as o) -> Ok o | _ -> fail ("missing object " ^ name) in
  let require_list name v = match v with Some (Json.List l) -> Ok l | _ -> fail ("missing list " ^ name) in
  match Json.member "schema" json with
  | Some (Json.String (("rushby-bench/8" | "rushby-bench/9") as schema)) -> (
    match require_list "experiments" (Json.member "experiments" json) with
    | Error e -> fail e
    | Ok experiments -> (
      match require_list "kernel_runs" (Json.member "kernel_runs" json) with
      | Error e -> fail e
      | Ok runs -> (
        match
          Result.bind (require_obj "spans" (Json.member "spans" json)) (fun _ ->
              require_obj "fault_campaign" (Json.member "fault_campaign" json))
        with
        | Error e -> fail e
        | Ok campaign when
            List.exists
              (fun k -> Json.member k campaign = None)
              [ "cases"; "masked"; "detected_safe"; "violating"; "holds"; "distributed" ] ->
          fail "malformed fault_campaign entry"
        | Ok _ -> (
          match require_obj "recovery" (Json.member "recovery" json) with
          | Error e -> fail e
          | Ok recovery when
              List.exists
                (fun k -> Json.member k recovery = None)
                [ "cases"; "masked"; "detected_safe"; "recovered_safe"; "violating"; "holds";
                  "reliable_net" ] ->
            fail "malformed recovery entry"
          | Ok _ -> (
          match require_obj "speedup" (Json.member "speedup" json) with
          | Error e -> fail e
          | Ok speedup when
              List.exists
                (fun k -> Json.member k speedup = None)
                [ "jobs"; "seconds_j1"; "seconds_jn"; "speedup"; "deterministic" ] ->
            fail "malformed speedup entry"
          | Ok _ -> (
          match
            Result.bind (require_obj "monitor" (Json.member "monitor" json)) (fun m ->
                require_list "monitor.runs" (Json.member "runs" m))
          with
          | Error e -> fail e
          | Ok monitor_runs -> (
          match
            Result.bind (require_obj "federation" (Json.member "federation" json)) (fun f ->
                require_list "federation.runs" (Json.member "runs" f))
          with
          | Error e -> fail e
          | Ok federation_runs -> (
          (* the services section arrived with rushby-bench/9; older
             snapshots stay valid without it *)
          match
            if schema = "rushby-bench/8" then Ok []
            else
              Result.bind (require_obj "services" (Json.member "services" json)) (fun s ->
                  require_list "services.runs" (Json.member "runs" s))
          with
          | Error e -> fail e
          | Ok services_runs -> (
          match require_obj "latency" (Json.member "latency" json) with
          | Error e -> fail e
          | Ok latency when
              List.exists
                (fun k -> Json.member k latency = None)
                [ "steps"; "words"; "p50"; "p95"; "p99"; "retransmit_queue" ] ->
            fail "malformed latency entry"
          | Ok _ -> (
          match require_obj "fuzz" (Json.member "fuzz" json) with
          | Error e -> fail e
          | Ok fuzz -> (
            match
              Result.bind (require_list "fuzz.scenarios" (Json.member "scenarios" fuzz)) (fun ss ->
                  Result.map (fun ks -> (ss, ks))
                    (require_list "fuzz.kills" (Json.member "kills" fuzz)))
            with
            | Error e -> fail e
            | Ok (fuzz_scenarios, fuzz_kills) -> (
              match require_obj "refinement" (Json.member "refinement" json) with
              | Error e -> fail e
              | Ok refinement when
                  List.exists
                    (fun k -> Json.member k refinement = None)
                    [ "scenario_runs"; "divergences"; "checks"; "checks_per_sec"; "bugs";
                      "killed"; "kills" ] ->
                fail "malformed refinement entry"
              | Ok refinement ->
              let refinement_kills =
                match Json.member "kills" refinement with Some (Json.List l) -> l | _ -> []
              in
              let refinement_kill_ok k =
                List.for_all
                  (fun key -> Json.member key k <> None)
                  [ "bug"; "level"; "killed"; "seed"; "scenario"; "step"; "original_size";
                    "shrunk_size" ]
              in
              let exp_ok e =
                List.for_all
                  (fun k -> Json.member k e <> None)
                  [ "label"; "states"; "checks"; "verified"; "seconds"; "checks_per_sec" ]
              in
              let run_ok r =
                List.for_all (fun k -> Json.member k r <> None)
                  [ "label"; "impl"; "steps"; "seconds"; "steps_per_sec"; "counters" ]
                && (match Json.member "counters" r with
                   | Some c -> Json.member "counters" c <> None
                   | None -> false)
              in
              let monitor_ok m =
                List.for_all
                  (fun k -> Json.member k m <> None)
                  [ "label"; "steps"; "period"; "seconds_bare"; "seconds_watched";
                    "steps_per_sec_bare"; "steps_per_sec_watched"; "overhead_frac"; "deep_checks";
                    "clean" ]
              in
              let fuzz_scenario_ok s =
                List.for_all
                  (fun k -> Json.member k s <> None)
                  [ "label"; "execs"; "corpus"; "coverage_keys"; "failures"; "seconds" ]
              in
              let fuzz_kill_ok k =
                List.for_all
                  (fun key -> Json.member key k <> None)
                  [ "bug"; "scenario"; "strategy"; "detected"; "condition"; "execs"; "seconds" ]
              in
              let federation_ok f =
                List.for_all
                  (fun k -> Json.member k f <> None)
                  [ "label"; "workload"; "steps"; "seconds"; "delivered"; "words_per_sec";
                    "latency_p50"; "latency_p95"; "latency_p99"; "node_events"; "recoveries";
                    "monitor_clean" ]
              in
              let service_ok s =
                List.for_all
                  (fun k -> Json.member k s <> None)
                  [ "label"; "workload"; "steps"; "seconds"; "requests"; "committed";
                    "requests_per_sec"; "retries"; "dedup_hits"; "shed"; "rtt_p50"; "rtt_p95";
                    "contract_ok"; "monitor_clean" ]
              in
              if not (List.for_all exp_ok experiments) then fail "malformed experiment entry"
              else if not (List.for_all run_ok runs) then fail "malformed kernel_run entry"
              else if not (List.for_all monitor_ok monitor_runs) then
                fail "malformed monitor entry"
              else if not (List.for_all federation_ok federation_runs) then
                fail "malformed federation entry"
              else if not (List.for_all service_ok services_runs) then
                fail "malformed services entry"
              else if not (List.for_all fuzz_scenario_ok fuzz_scenarios) then
                fail "malformed fuzz scenario entry"
              else if not (List.for_all fuzz_kill_ok fuzz_kills) then fail "malformed fuzz kill entry"
              else if not (List.for_all refinement_kill_ok refinement_kills) then
                fail "malformed refinement kill entry"
              else if
                experiments = [] || runs = [] || monitor_runs = [] || federation_runs = []
                || fuzz_scenarios = [] || fuzz_kills = [] || refinement_kills = []
                || (schema = "rushby-bench/9" && services_runs = [])
              then fail "empty snapshot"
              else Ok (List.length experiments, List.length runs)))))))))))))
  | _ -> fail "missing or unexpected schema tag"

let snapshot_main args =
  let check_only = ref false in
  let out = ref "BENCH_PR9.json" in
  let rec parse = function
    | [] -> Ok ()
    | "--check" :: rest ->
      check_only := true;
      parse rest
    | "--out" :: f :: rest ->
      out := f;
      parse rest
    | "--out" :: [] -> Error "--out requires a file name"
    | a :: _ -> Error (Fmt.str "unknown argument %S (expected --check or --out FILE)" a)
  in
  match parse args with
  | Error e ->
    Fmt.epr "snapshot: %s@." e;
    2
  | Ok () ->
  let check_only = !check_only and out = !out in
  let json = snapshot_json () in
  (* round-trip through the writer and reader, then validate the shape *)
  match Json.parse (Json.to_string json) with
  | Error e ->
    Fmt.epr "snapshot: writer produced unparseable JSON: %s@." e;
    1
  | Ok parsed -> (
    match validate_snapshot parsed with
    | Error e ->
      Fmt.epr "snapshot: invalid shape: %s@." e;
      1
    | Ok (nexp, nruns) ->
      if check_only then begin
        Fmt.pr "snapshot --check: ok (%d experiments, %d kernel runs; nothing written)@." nexp nruns;
        0
      end
      else begin
        let oc = open_out out in
        output_string oc (Json.to_string json);
        output_char oc '\n';
        close_out oc;
        Fmt.pr "wrote %s (%d experiments, %d kernel runs)@." out nexp nruns;
        0
      end)

(* ------------------------------------------------------------------ *)
(* compare: the regression gate.  Two snapshots in, a table and an exit
   code out: any shared throughput metric (checks/s or steps/s) that
   dropped by more than the tolerance fails the gate.  Only metrics
   present in BOTH files are compared, so adding or removing a scenario
   between PRs never trips the gate by itself. *)

let compare_tolerance = 0.20

let num = function
  | Json.Float f -> Some f
  | Json.Int i -> Some (float_of_int i)
  | _ -> None

(* label -> throughput, flattened from the sections that carry a rate *)
let rates json =
  let out = ref [] in
  let add key v = match num v with Some f -> out := (key, f) :: !out | None -> () in
  let str j = match j with Some (Json.String s) -> Some s | _ -> None in
  let each section f =
    match Json.member section json with
    | Some (Json.List items) -> List.iter f items
    | _ -> ()
  in
  each "experiments" (fun e ->
      match (str (Json.member "label" e), Json.member "checks_per_sec" e) with
      | Some label, Some v -> add (Fmt.str "experiments.%s.checks_per_sec" label) v
      | _ -> ());
  each "kernel_runs" (fun r ->
      match
        (str (Json.member "label" r), str (Json.member "impl" r), Json.member "steps_per_sec" r)
      with
      | Some label, Some impl, Some v ->
        add (Fmt.str "kernel_runs.%s:%s.steps_per_sec" label impl) v
      | _ -> ());
  (match Json.member "monitor" json with
  | Some m ->
    (match Json.member "runs" m with
    | Some (Json.List runs) ->
      List.iter
        (fun r ->
          match (str (Json.member "label" r), Json.member "steps_per_sec_watched" r) with
          | Some label, Some v -> add (Fmt.str "monitor.%s.steps_per_sec_watched" label) v
          | _ -> ())
        runs
    | _ -> ())
  | None -> ());
  (match Json.member "refinement" json with
  | Some r -> (
    match Json.member "checks_per_sec" r with
    | Some v -> add "refinement.checks_per_sec" v
    | None -> ())
  | None -> ());
  (match Json.member "federation" json with
  | Some f ->
    (match Json.member "runs" f with
    | Some (Json.List runs) ->
      List.iter
        (fun r ->
          match
            (str (Json.member "label" r), str (Json.member "workload" r),
             Json.member "words_per_sec" r)
          with
          | Some label, Some workload, Some v ->
            add (Fmt.str "federation.%s:%s.words_per_sec" label workload) v
          | _ -> ())
        runs
    | _ -> ())
  | None -> ());
  (match Json.member "services" json with
  | Some s ->
    (match Json.member "runs" s with
    | Some (Json.List runs) ->
      List.iter
        (fun r ->
          match
            (str (Json.member "label" r), str (Json.member "workload" r),
             Json.member "requests_per_sec" r)
          with
          | Some label, Some workload, Some v ->
            add (Fmt.str "services.%s:%s.requests_per_sec" label workload) v
          | _ -> ())
        runs
    | _ -> ())
  | None -> ());
  List.rev !out

let load_snapshot file =
  match In_channel.with_open_text file In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> (
    match Json.parse text with
    | Error e -> Error (Fmt.str "%s: %s" file e)
    | Ok json -> Ok json)

let compare_main args =
  match args with
  | [ old_file; new_file ] -> (
    match (load_snapshot old_file, load_snapshot new_file) with
    | Error e, _ | _, Error e ->
      Fmt.epr "compare: %s@." e;
      2
    | Ok old_json, Ok new_json ->
      let old_rates = rates old_json and new_rates = rates new_json in
      let shared =
        List.filter_map
          (fun (key, ov) ->
            match List.assoc_opt key new_rates with
            | Some nv -> Some (key, ov, nv)
            | None -> None)
          old_rates
      in
      if shared = [] then begin
        Fmt.epr "compare: no shared throughput metrics between %s and %s@." old_file new_file;
        2
      end
      else begin
        let regressions = ref 0 in
        Fmt.pr "%-56s %12s %12s %8s@." "metric" "old" "new" "delta";
        List.iter
          (fun (key, ov, nv) ->
            let delta = if ov > 0.0 then (nv -. ov) /. ov else 0.0 in
            let regressed = delta < -.compare_tolerance in
            if regressed then incr regressions;
            Fmt.pr "%-56s %12.0f %12.0f %7.1f%%%s@." key ov nv (100.0 *. delta)
              (if regressed then "  REGRESSION" else ""))
          shared;
        if !regressions > 0 then begin
          Fmt.pr "@.compare: FAIL — %d metric(s) regressed more than %.0f%%@." !regressions
            (100.0 *. compare_tolerance);
          1
        end
        else begin
          Fmt.pr "@.compare: ok — %d shared metric(s) within %.0f%% tolerance@."
            (List.length shared)
            (100.0 *. compare_tolerance);
          0
        end
      end)
  | _ ->
    Fmt.epr "usage: compare OLD.json NEW.json@.";
    2

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e20", e20);
    ("e21", e21);
    ("timings", timings);
  ]

let () =
  match Array.to_list Sys.argv with
  | _ :: "snapshot" :: rest -> exit (snapshot_main rest)
  | _ :: "compare" :: rest -> exit (compare_main rest)
  | argv ->
  let requested =
    match argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        Fmt.pr "@.######## %s ########@." (String.uppercase_ascii name);
        f ()
      | None ->
        Fmt.epr "unknown experiment %s (known: %s)@." name
          (String.concat ", " (List.map fst experiments)))
    requested
