(** The §6 services deployed as fault-tolerant federation applications.

    Each deployment packages one of the paper's example systems — the MLS
    file server, the printer server, the authentication mechanism, the
    ACCAT Guard — as a {!Sep_svc.Svc.deployment}: a word-level
    request/response application behind replicated shard frontends, with
    the degraded-mode posture §6 implies for each. These are the service
    semantics of {!Mls} and {!Guard_app} re-expressed at word granularity
    so they fit in a 3-word wire frame; the string-protocol originals
    remain the reference implementations.

    Degraded modes (what a client does when every replica is down):
    - file server: reads answered from the last committed checkpoint,
      writes fail fast;
    - printer: jobs spool client-side and drain on rejoin, status reads
      from the checkpoint;
    - authentication: fails fast — nobody logs in on a dead authority;
    - Guard: fails {e closed} — no release without the sanitizer. *)

val file_server : Sep_svc.Svc.deployment
(** [fed-fs]: 16 files, each classified at level [file mod 4]; client [i]
    is cleared at level [i mod 4]. [READ file] (pure) obeys simple
    security — no read up; [WRITE file byte] (effectful) obeys the
    *-property — no write down. Denials are healthy, definite replies. *)

val printer : Sep_svc.Svc.deployment
(** [fed-print]: [PRINT word] (effectful) appends to the printout and
    returns the job's sequence number; [STATUS] (pure) reports jobs
    printed. *)

val auth : Sep_svc.Svc.deployment
(** [fed-auth]: [LOGIN user<<12|pass] checks [pass] against
    {!auth_password} and, on success, commits a session and returns its
    token; wrong passwords are [Denied]. *)

val guard : Sep_svc.Svc.deployment
(** [fed-guard]: [RELEASE word] sanitizes the word (strips the
    sensitivity nibble) and commits the sanitized release when the
    sensitivity is at or below the Watch Officer's threshold; above it,
    [Denied]. *)

val all : Sep_svc.Svc.deployment list
(** The four deployments, [fed-fs] first. *)

val find : string -> Sep_svc.Svc.deployment option
(** Look a deployment up by [dp_name]. *)

val auth_password : int -> int
(** The password the authentication service expects for a user id —
    derived, so tests and workloads agree with the server. *)
