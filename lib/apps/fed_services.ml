module Svc = Sep_svc.Svc
module Prng = Sep_util.Prng

(* -- fed-fs: the MLS file server -------------------------------------------- *)

(* Word encoding: READ arg = file id; WRITE arg = file id << 8 | byte.
   Levels are small ints (0-3); client i is cleared at i mod 4, file f is
   classified at f mod 4. Simple security and the *-property reduce to
   two comparisons — the same mandatory checks Mls enforces over its
   string protocol. *)

let fs_read = 1
let fs_write = 2
let n_files = 16
let clearance client = client mod 4
let file_level f = f mod 4

let fs_app () =
  let files = Array.make n_files 0 in
  let checkpoint = Array.make n_files 0 in
  {
    Svc.ap_apply =
      (fun ~client ~op ~arg ->
        if op = fs_read then begin
          let f = arg mod n_files in
          if clearance client >= file_level f then Svc.Ok files.(f) else Svc.Denied 0
        end
        else if op = fs_write then begin
          let f = (arg lsr 8) mod n_files in
          if file_level f >= clearance client then begin
            files.(f) <- arg land 0xff;
            Svc.Commit f
          end
          else Svc.Denied 0
        end
        else Svc.Notfound 0);
    ap_checkpoint = (fun () -> Array.blit files 0 checkpoint 0 n_files);
    ap_read_cached =
      (fun ~client ~op ~arg ->
        if op = fs_read && clearance client >= file_level (arg mod n_files) then
          Some checkpoint.(arg mod n_files)
        else None);
    ap_degraded = (fun ~op -> if op = fs_read then Svc.Read_cached else Svc.Fail_fast);
    ap_effectful = (fun op -> op = fs_write);
    ap_op_name = (fun op -> if op = fs_read then "READ" else if op = fs_write then "WRITE" else "?");
  }

let fs_workload rng =
  if Prng.int rng 3 < 2 then (fs_read, Prng.int rng n_files)
  else (fs_write, (Prng.int rng n_files lsl 8) lor Prng.int rng 256)

let file_server =
  {
    Svc.dp_name = "fed-fs";
    dp_clients = 3;
    dp_replicas = 2;
    dp_mk_app = fs_app;
    dp_workload = fs_workload;
  }

(* -- fed-print: the printer server ------------------------------------------ *)

let pr_print = 1
let pr_status = 2

let print_app () =
  let printed = ref 0 in
  let checkpoint = ref 0 in
  {
    Svc.ap_apply =
      (fun ~client:_ ~op ~arg:_ ->
        if op = pr_print then begin
          incr printed;
          Svc.Commit !printed
        end
        else if op = pr_status then Svc.Ok !printed
        else Svc.Notfound 0);
    ap_checkpoint = (fun () -> checkpoint := !printed);
    ap_read_cached =
      (fun ~client:_ ~op ~arg:_ -> if op = pr_status then Some !checkpoint else None);
    ap_degraded = (fun ~op -> if op = pr_print then Svc.Spool else Svc.Read_cached);
    ap_effectful = (fun op -> op = pr_print);
    ap_op_name =
      (fun op -> if op = pr_print then "PRINT" else if op = pr_status then "STATUS" else "?");
  }

let print_workload rng =
  if Prng.int rng 4 < 3 then (pr_print, Prng.int rng 0x10000) else (pr_status, 0)

let printer =
  {
    Svc.dp_name = "fed-print";
    dp_clients = 3;
    dp_replicas = 2;
    dp_mk_app = print_app;
    dp_workload = print_workload;
  }

(* -- fed-auth: the authentication mechanism --------------------------------- *)

(* arg packs user (4 bits) over password (12 bits); the right password is
   derived from the user id so client workloads and the server agree
   without sharing state. *)

let au_login = 1
let auth_password user = (user * 2654435761) land 0xfff

let auth_app () =
  let sessions = ref 0 in
  {
    Svc.ap_apply =
      (fun ~client:_ ~op ~arg ->
        if op = au_login then begin
          let user = (arg lsr 12) land 0xf and pass = arg land 0xfff in
          if pass = auth_password user then begin
            incr sessions;
            Svc.Commit (((user land 0xf) lsl 8) lor (!sessions land 0xff))
          end
          else Svc.Denied 0
        end
        else Svc.Notfound 0);
    ap_checkpoint = (fun () -> ());
    ap_read_cached = (fun ~client:_ ~op:_ ~arg:_ -> None);
    ap_degraded = (fun ~op:_ -> Svc.Fail_fast);
    ap_effectful = (fun op -> op = au_login);
    ap_op_name = (fun op -> if op = au_login then "LOGIN" else "?");
  }

let auth_workload rng =
  let user = Prng.int rng 8 in
  let pass = if Prng.int rng 4 = 0 then Prng.int rng 0x1000 else auth_password user in
  (au_login, (user lsl 12) lor pass)

let auth =
  {
    Svc.dp_name = "fed-auth";
    dp_clients = 3;
    dp_replicas = 2;
    dp_mk_app = auth_app;
    dp_workload = auth_workload;
  }

(* -- fed-guard: the ACCAT Guard --------------------------------------------- *)

(* arg's high nibble is the message's sensitivity; the sanitizer strips
   it and the Watch Officer's standing threshold decides releasability.
   Everything above threshold is a definite DENY — and with the Guard
   unreachable the client fails closed, releasing nothing on its own. *)

let gd_release = 1
let gd_threshold = 2

let guard_app () =
  let released = ref 0 in
  {
    Svc.ap_apply =
      (fun ~client:_ ~op ~arg ->
        if op = gd_release then begin
          let sensitivity = (arg lsr 12) land 0xf in
          if sensitivity <= gd_threshold then begin
            incr released;
            Svc.Commit (arg land 0x0fff)
          end
          else Svc.Denied sensitivity
        end
        else Svc.Notfound 0);
    ap_checkpoint = (fun () -> ());
    ap_read_cached = (fun ~client:_ ~op:_ ~arg:_ -> None);
    ap_degraded = (fun ~op:_ -> Svc.Fail_closed);
    ap_effectful = (fun op -> op = gd_release);
    ap_op_name = (fun op -> if op = gd_release then "RELEASE" else "?");
  }

let guard_workload rng = (gd_release, Prng.int rng 0x10000)

let guard =
  {
    Svc.dp_name = "fed-guard";
    dp_clients = 3;
    dp_replicas = 2;
    dp_mk_app = guard_app;
    dp_workload = guard_workload;
  }

let all = [ file_server; printer; auth; guard ]
let find name = List.find_opt (fun d -> d.Svc.dp_name = name) all
