module type S = sig
  type t

  val build : Sep_model.Topology.t -> t
  val step : t -> externals:(Sep_model.Colour.t * Sep_model.Component.message) list -> unit

  val run :
    t -> steps:int ->
    externals:(int -> (Sep_model.Colour.t * Sep_model.Component.message) list) -> unit

  val trace : t -> Sep_model.Colour.t -> Sep_model.Component.obs list
  val outputs : t -> Sep_model.Colour.t -> Sep_model.Component.message list
end

type kind =
  | Distributed
  | Kernelized

module Kernelized_substrate = struct
  include Sep_core.Regime_kernel

  (* the substrate facade always runs the correct kernel *)
  let build topo = Sep_core.Regime_kernel.build topo
end

module Distributed_substrate = struct
  include Sep_distributed.Net

  (* the substrate facade always uses perfect lines *)
  let build topo = Sep_distributed.Net.build topo
end

let get = function
  | Distributed -> (module Distributed_substrate : S)
  | Kernelized -> (module Kernelized_substrate : S)

let pp_kind ppf k =
  Fmt.string ppf (match k with Distributed -> "distributed" | Kernelized -> "kernelized")

let both = [ Distributed; Kernelized ]
