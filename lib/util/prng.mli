(** Deterministic pseudo-random number generation (SplitMix64).

    All randomness in the libraries flows through this module so that every
    simulation, workload and randomized check is reproducible from a seed.
    The generator is splittable: independent streams can be derived for
    independent subsystems without sharing mutable state. *)

type t
(** A mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a seed. Equal seeds give
    equal streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. *)

val stream : int -> int -> t
(** [stream seed i] is the [i]-th independent substream of [seed]
    ([i >= 0]): equal to the generator the [i+1]-th call of {!split} on
    [create seed] would return, computed in O(1). Parallel work items
    indexed by [i] get identical streams no matter how work is sharded
    over domains. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val choose : t -> 'a array -> 'a
(** [choose t arr] picks a uniform element. Requires [arr] non-empty. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val byte : t -> char
(** Uniform byte. *)

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniform bytes. *)
