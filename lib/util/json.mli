(** Minimal JSON values, writer and reader.

    Hand-rolled so the observability layer ({!Sep_obs}) and the bench
    snapshot writer depend on nothing outside this repository. The writer
    emits compact, deterministic output (object fields in the order given);
    the reader accepts standard JSON and is used by tests and by
    [bench/main.exe -- snapshot --check] to validate what the writer
    produced. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit
(** Append the compact rendering of a value. Strings are escaped per RFC
    8259; non-finite floats render as [null]. *)

val to_string : t -> string
(** Compact one-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Same compact rendering, on a formatter. *)

val parse : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-space input is an error). Numbers without [.], [e] or [E] become
    [Int]; others [Float]. [\u] escapes are decoded to UTF-8, including
    UTF-16 surrogate {e pairs} (["\\uD83D\\uDE00" decodes to one supplementary
    code point); a lone surrogate is an error. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on other
    values or a missing key. *)

val equal : t -> t -> bool
(** Structural equality; [Int] and [Float] never compare equal. *)
