type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- Writer ---------------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_nan f || Float.abs f = Float.infinity then Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* -- Reader ---------------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let utf8_add buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  (* A \u escape in [0xD800, 0xDFFF] is a UTF-16 surrogate: a high one
     must be immediately followed by an escaped low one, and the pair
     decodes to a single supplementary-plane code point. Lone surrogates
     encode no character and are rejected. *)
  let unicode_escape () =
    let hi = hex4 () in
    if hi >= 0xD800 && hi <= 0xDBFF then begin
      if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u') then
        fail "lone high surrogate (expected a \\u-escaped low surrogate)";
      pos := !pos + 2;
      let lo = hex4 () in
      if lo < 0xDC00 || lo > 0xDFFF then
        fail "lone high surrogate (expected a \\u-escaped low surrogate)";
      0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00)
    end
    else if hi >= 0xDC00 && hi <= 0xDFFF then fail "lone low surrogate"
    else hi
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' -> utf8_add buf (unicode_escape ())
         | _ -> fail "unknown escape");
        loop ()
      end
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while (match peek () with Some '0' .. '9' -> true | _ -> false) do
        saw := true;
        advance ()
      done;
      if not !saw then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text) else Int (int_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception Failure msg -> Error msg

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') xs ys
  | _ -> false
