type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* The raw seed goes through [mix] once so that small seeds (0, 1, 2 ...)
   start from well-separated, high-entropy states instead of a cluster of
   nearly-equal ones. Substreams derived from consecutive low seeds would
   otherwise begin in a correlated low-entropy regime. *)
let create seed = { state = mix (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

(* The [i]-th independent substream of [seed]: the state [split] would
   reach after [i] prior splits, without materializing them. Used to hand
   each unit of parallel work its own stream from (root seed, work index)
   so results do not depend on how work is sharded over domains. *)
let stream seed i =
  let root = mix (Int64.of_int seed) in
  let advanced = Int64.add root (Int64.mul (Int64.of_int (i + 1)) golden_gamma) in
  { state = mix (mix advanced) }

let mask62 = 0x3FFFFFFFFFFFFFFFL
let range62 = 0x4000000000000000L (* 2^62 as Int64; overflows a 63-bit OCaml int *)

let int t bound =
  assert (bound > 0);
  (* Unbiased rejection sampling: [r mod bound] over a 62-bit draw skews
     low residues whenever bound does not divide 2^62, so reject draws
     from the incomplete final interval [limit, 2^62). The bookkeeping is
     done in Int64 because 2^62 itself does not fit a 63-bit native int;
     accepted draws are at most [max_int] so the result conversion is
     exact for every bound up to [max_int]. *)
  let b = Int64.of_int bound in
  let limit = Int64.sub range62 (Int64.rem range62 b) in
  let rec go () =
    let r = Int64.logand (bits64 t) mask62 in
    if Int64.compare r limit < 0 then Int64.to_int (Int64.rem r b) else go ()
  in
  go ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0)

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let byte t = Char.chr (int t 256)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (byte t)
  done;
  b
