module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Fifo = Sep_util.Fifo

type node = {
  colour : Colour.t;
  inst : Component.instance;
  incoming : Topology.wire list;  (* in wire-id order *)
  mutable obs : Component.obs list;  (* reversed *)
  mutable outs : Component.message list;  (* reversed *)
}

type t = {
  topo : Topology.t;
  nodes : node list;  (* in topology order *)
  lines : Component.message Fifo.t array;  (* indexed by wire id *)
  mutable dropped : int;
}

let build topo =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.build: " ^ msg));
  let node (colour, comp) =
    let incoming =
      List.sort (fun a b -> Int.compare a.Topology.wire_id b.Topology.wire_id) (Topology.wires_into topo colour)
    in
    { colour; inst = Component.instantiate comp; incoming; obs = []; outs = [] }
  in
  {
    topo;
    nodes = List.map node topo.Topology.parts;
    lines =
      Array.of_list (List.map (fun w -> Fifo.create ~capacity:w.Topology.capacity) topo.Topology.wires);
    dropped = 0;
  }

let wire t id = List.nth t.topo.Topology.wires id

let transmit t node actions =
  let handle = function
    | Component.Send (w, msg) as act ->
      node.obs <- Component.Did act :: node.obs;
      if w < 0 || w >= Array.length t.lines then t.dropped <- t.dropped + 1
      else if not (Colour.equal (wire t w).Topology.src node.colour) then
        (* no physical line from this box: the send goes nowhere *)
        t.dropped <- t.dropped + 1
      else if (wire t w).Topology.cut then () (* the line goes nowhere *)
      else if not (Fifo.push t.lines.(w) msg) then t.dropped <- t.dropped + 1
    | Component.Output msg as act ->
      node.obs <- Component.Did act :: node.obs;
      node.outs <- msg :: node.outs
  in
  List.iter handle actions

let feed t node ev =
  node.obs <- Component.Saw ev :: node.obs;
  transmit t node (Component.feed node.inst ev)

let step t ~externals =
  (* Only messages already in flight are deliverable this step. *)
  let deliverable = Array.map (fun line -> min 1 (Fifo.length line)) t.lines in
  let visit node =
    List.iter
      (fun (c, msg) ->
        if Colour.equal c node.colour then feed t node (Component.External msg))
      externals;
    let from_wire w =
      let id = w.Topology.wire_id in
      if deliverable.(id) > 0 then begin
        deliverable.(id) <- 0;
        match Fifo.pop t.lines.(id) with
        | Some msg -> feed t node (Component.Recv (id, msg))
        | None -> ()
      end
    in
    List.iter from_wire node.incoming
  in
  List.iter visit t.nodes

let run t ~steps ~externals =
  for n = 0 to steps - 1 do
    step t ~externals:(externals n)
  done

let find_node t c =
  match List.find_opt (fun n -> Colour.equal n.colour c) t.nodes with
  | Some n -> n
  | None -> raise Not_found

let trace t c = List.rev (find_node t c).obs
let outputs t c = List.rev (find_node t c).outs

let in_flight t = Array.fold_left (fun acc line -> acc + Fifo.length line) 0 t.lines
let drops t = t.dropped

(* Fault injection on a physical line: rewrite (Some) or destroy (None)
   every message currently in flight on one wire. Draining and refilling
   the FIFO preserves arrival order; destroyed messages count as drops —
   to the boxes at either end, a tampered line is indistinguishable from a
   lossy or noisy one. *)
let tamper t ~wire f =
  if wire < 0 || wire >= Array.length t.lines then invalid_arg "Net.tamper: no such wire";
  let line = t.lines.(wire) in
  let affected = ref 0 in
  let rec drain acc =
    match Fifo.pop line with
    | Some msg -> drain (msg :: acc)
    | None -> List.rev acc
  in
  List.iter
    (fun msg ->
      match f msg with
      | Some msg' ->
        if not (String.equal msg' msg) then incr affected;
        ignore (Fifo.push line msg')
      | None ->
        incr affected;
        t.dropped <- t.dropped + 1)
    (drain []);
  !affected
