module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Fifo = Sep_util.Fifo
module Prng = Sep_util.Prng

type link_model = {
  lm_seed : int;
  lm_drop : int;
  lm_dup : int;
  lm_reorder : int;
}

let default_link_model = { lm_seed = 42; lm_drop = 10; lm_dup = 5; lm_reorder = 5 }

(* A sequence-numbered frame on a reliable line. [born] is the net step
   at which the sender accepted the word (for the end-to-end latency
   histogram); [flow] is the causal-trace edge id tying the send to the
   eventual in-order delivery (0 when tracing is off). Retransmitted
   copies keep both: the latency measured is send-accept to delivery,
   retransmissions included — the latency the receiving box experiences. *)
type frame = { seq : int; payload : Component.message; born : int; flow : int }

(* Per-wire state of the reliable protocol: a go-back-N sender (window =
   the wire's capacity, cumulative acks, timeout retransmission with
   capped exponential backoff) and an in-order receiver that delivers
   exactly the sequence the sender accepted, whatever the line loses,
   duplicates or reorders. The data line and the reverse ack line are
   plain ordered lists (head arrives first) so the link model can splice
   duplicates and queue-jumpers. *)
type rel_wire = {
  mutable r_next_seq : int;  (* next sequence number to assign *)
  r_pending : frame Queue.t;  (* accepted, waiting for a window slot *)
  mutable r_unacked : frame list;  (* in the window, oldest first *)
  mutable r_timer : int;  (* steps until retransmission; 0 = idle *)
  mutable r_rto : int;  (* current timeout, doubled per expiry *)
  mutable r_data : frame list;  (* frames in transit, head arrives first *)
  mutable r_acks : int list;  (* cumulative acks in transit to the sender *)
  mutable r_expect : int;  (* receiver: next in-order sequence number *)
  mutable r_ack_due : bool;
  r_window : int;
}

type link_stats = {
  ls_in_flight : int;
  ls_drops : int;
  ls_lossy_drops : int;
  ls_retransmits : int;
  ls_acks : int;
  ls_backoff_ceiling : int;
  ls_partition_drops : int;
}

type node = {
  colour : Colour.t;
  inst : Component.instance;
  incoming : Topology.wire list;  (* in wire-id order *)
  mutable obs : Component.obs list;  (* reversed *)
  mutable outs : Component.message list;  (* reversed *)
}

type t = {
  topo : Topology.t;
  nodes : node list;  (* in topology order *)
  lines : Component.message Fifo.t array;  (* indexed by wire id; raw wires only *)
  rel : rel_wire option array;  (* indexed by wire id; [Some] iff reliable *)
  link : link_model option;
  rng : Prng.t option;
  up : bool array;  (* indexed by wire id; [false] while the line is partitioned *)
  mutable dropped : int;
  mutable lossy_dropped : int;
  mutable partition_dropped : int;
  mutable retransmits : int;
  mutable acks_sent : int;
  mutable backoff_ceiling : int;
  mutable now : int;  (* global step counter, for latency measurement *)
  tel : Sep_obs.Telemetry.t;  (* this net's own metric registry *)
  lat : Sep_obs.Telemetry.histogram;  (* net.latency.steps: send-accept -> in-order delivery *)
  rq : Sep_obs.Telemetry.gauge;  (* net.retransmit_queue: frames in sender windows *)
  rq_global : Sep_obs.Telemetry.gauge;  (* the same gauge on the domain's span registry *)
}

let rto_base = 3
let rto_cap = 24  (* rto_base * 8: the backoff ceiling *)

let build ?link topo =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.build: " ^ msg));
  (match link with
  | Some lm ->
    if lm.lm_drop < 0 || lm.lm_drop > 99 || lm.lm_dup < 0 || lm.lm_dup > 99
       || lm.lm_reorder < 0 || lm.lm_reorder > 99
    then invalid_arg "Net.build: link model percentages must be within 0..99"
  | None -> ());
  let node (colour, comp) =
    let incoming =
      List.sort (fun a b -> Int.compare a.Topology.wire_id b.Topology.wire_id) (Topology.wires_into topo colour)
    in
    { colour; inst = Component.instantiate comp; incoming; obs = []; outs = [] }
  in
  let rel_of w =
    match link with
    | None -> None
    | Some _ ->
      Some
        {
          r_next_seq = 0;
          r_pending = Queue.create ();
          r_unacked = [];
          r_timer = 0;
          r_rto = rto_base;
          r_data = [];
          r_acks = [];
          r_expect = 0;
          r_ack_due = false;
          r_window = max 1 w.Topology.capacity;
        }
  in
  let tel = Sep_obs.Telemetry.create () in
  {
    topo;
    nodes = List.map node topo.Topology.parts;
    lines =
      Array.of_list (List.map (fun w -> Fifo.create ~capacity:w.Topology.capacity) topo.Topology.wires);
    rel = Array.of_list (List.map rel_of topo.Topology.wires);
    link;
    rng = Option.map (fun lm -> Prng.create lm.lm_seed) link;
    up = Array.make (List.length topo.Topology.wires) true;
    dropped = 0;
    lossy_dropped = 0;
    partition_dropped = 0;
    retransmits = 0;
    acks_sent = 0;
    backoff_ceiling = 0;
    now = 0;
    tel;
    lat = Sep_obs.Telemetry.histogram tel "net.latency.steps";
    rq = Sep_obs.Telemetry.gauge tel "net.retransmit_queue";
    rq_global = Sep_obs.Telemetry.gauge (Sep_obs.Span.local ()) "net.retransmit_queue";
  }

let wire t id = List.nth t.topo.Topology.wires id

(* -- The lossy line ---------------------------------------------------------- *)

let roll t p =
  match t.rng with
  | Some rng -> Prng.int rng 100 < p
  | None -> false

(* Put a frame on the line through the link model: it may be destroyed,
   duplicated, or spliced in just before the last frame in transit (so a
   later frame arrives first — an out-of-order line). A partitioned line
   ([up.(id)] false) carries nothing: the placement vanishes without even
   consulting the link model, exactly like a transmitter keying into a
   severed cable. *)
let place_data t id rw fr =
  if not t.up.(id) then t.partition_dropped <- t.partition_dropped + 1
  else
  match t.link with
  | None -> ()
  | Some lm ->
    if roll t lm.lm_drop then t.lossy_dropped <- t.lossy_dropped + 1
    else begin
      let insert f =
        if roll t lm.lm_reorder && rw.r_data <> [] then begin
          let rec jump = function
            | [ last ] -> [ f; last ]
            | x :: rest -> x :: jump rest
            | [] -> [ f ]
          in
          rw.r_data <- jump rw.r_data
        end
        else rw.r_data <- rw.r_data @ [ f ]
      in
      insert fr;
      if roll t lm.lm_dup then insert fr
    end

(* -- The reliable sender ------------------------------------------------------ *)

(* One maintenance round per wire per step, before any delivery: field the
   arriving ack (cumulative — it retires every frame up to it and resets
   the backoff), run the retransmission timer (expiry resends the whole
   window, go-back-N style, and doubles the timeout up to the ceiling),
   then move pending frames into free window slots. *)
let rel_maintenance t =
  Array.iteri
    (fun id rwo ->
      match rwo with
      | None -> ()
      | Some rw ->
        (match rw.r_acks with
        | a :: rest ->
          rw.r_acks <- rest;
          let before = List.length rw.r_unacked in
          rw.r_unacked <- List.filter (fun f -> f.seq > a) rw.r_unacked;
          if List.length rw.r_unacked < before then begin
            rw.r_rto <- rto_base;
            rw.r_timer <- (if rw.r_unacked = [] then 0 else rw.r_rto)
          end
        | [] -> ());
        if rw.r_unacked <> [] then begin
          if rw.r_timer > 1 then rw.r_timer <- rw.r_timer - 1
          else begin
            List.iter
              (fun f ->
                t.retransmits <- t.retransmits + 1;
                place_data t id rw f)
              rw.r_unacked;
            if rw.r_rto >= rto_cap then t.backoff_ceiling <- t.backoff_ceiling + 1
            else rw.r_rto <- min rto_cap (rw.r_rto * 2);
            rw.r_timer <- rw.r_rto
          end
        end;
        while List.length rw.r_unacked < rw.r_window && not (Queue.is_empty rw.r_pending) do
          let f = Queue.pop rw.r_pending in
          if rw.r_unacked = [] then begin
            rw.r_rto <- rto_base;
            rw.r_timer <- rto_base
          end;
          rw.r_unacked <- rw.r_unacked @ [ f ];
          place_data t id rw f
        done)
    t.rel

(* Receivers' due acks go onto the reverse lines at the end of the step.
   The ack line is as lossy as the data line; a lost ack is recovered by
   the retransmission it fails to suppress, which the receiver re-acks. *)
let rel_flush_acks t =
  Array.iteri
    (fun id rwo ->
      match rwo with
      | None -> ()
      | Some rw ->
        if rw.r_ack_due then begin
          rw.r_ack_due <- false;
          t.acks_sent <- t.acks_sent + 1;
          if not t.up.(id) then
            (* the reverse direction of a severed cable carries nothing
               either; the retransmission the lost ack fails to suppress
               recovers it after the heal *)
            t.partition_dropped <- t.partition_dropped + 1
          else begin
            let lost = match t.link with Some lm -> roll t lm.lm_drop | None -> false in
            if lost then t.lossy_dropped <- t.lossy_dropped + 1
            else rw.r_acks <- rw.r_acks @ [ rw.r_expect - 1 ]
          end
        end)
    t.rel

let transmit t node actions =
  let handle = function
    | Component.Send (w, msg) as act ->
      node.obs <- Component.Did act :: node.obs;
      if w < 0 || w >= Array.length t.lines then t.dropped <- t.dropped + 1
      else if not (Colour.equal (wire t w).Topology.src node.colour) then
        (* no physical line from this box: the send goes nowhere *)
        t.dropped <- t.dropped + 1
      else if (wire t w).Topology.cut then () (* the line goes nowhere *)
      else begin
        match t.rel.(w) with
        | Some rw ->
          (* the reliable layer accepts every send: the pending queue is
             the sending box's local buffer, and the window provides the
             flow control a raw wire's capacity used to *)
          let flow =
            if Sep_obs.Trace.enabled () then
              Sep_obs.Trace.flow_start ~cat:"net"
                ~args:[ ("wire", Sep_util.Json.Int w); ("seq", Sep_util.Json.Int rw.r_next_seq) ]
                "send"
            else 0
          in
          Queue.add { seq = rw.r_next_seq; payload = msg; born = t.now; flow } rw.r_pending;
          rw.r_next_seq <- rw.r_next_seq + 1
        | None ->
          if not t.up.(w) then t.partition_dropped <- t.partition_dropped + 1
          else if not (Fifo.push t.lines.(w) msg) then t.dropped <- t.dropped + 1
      end
    | Component.Output msg as act ->
      node.obs <- Component.Did act :: node.obs;
      node.outs <- msg :: node.outs
  in
  List.iter handle actions

let feed t node ev =
  node.obs <- Component.Saw ev :: node.obs;
  transmit t node (Component.feed node.inst ev)

let retransmit_queue_depth t =
  Array.fold_left
    (fun acc rwo -> match rwo with Some rw -> acc + List.length rw.r_unacked | None -> acc)
    0 t.rel

let step t ~externals =
  t.now <- t.now + 1;
  rel_maintenance t;
  let rq = float_of_int (retransmit_queue_depth t) in
  Sep_obs.Telemetry.set t.rq rq;
  Sep_obs.Telemetry.set t.rq_global rq;
  (* Only messages already in flight are deliverable this step. *)
  let deliverable =
    Array.mapi
      (fun id line ->
        match t.rel.(id) with
        | Some rw -> min 1 (List.length rw.r_data)
        | None -> min 1 (Fifo.length line))
      t.lines
  in
  let visit node =
    List.iter
      (fun (c, msg) ->
        if Colour.equal c node.colour then feed t node (Component.External msg))
      externals;
    let from_wire w =
      let id = w.Topology.wire_id in
      if deliverable.(id) > 0 then begin
        deliverable.(id) <- 0;
        match t.rel.(id) with
        | Some rw -> begin
          match rw.r_data with
          | f :: rest ->
            rw.r_data <- rest;
            if f.seq = rw.r_expect then begin
              rw.r_expect <- rw.r_expect + 1;
              rw.r_ack_due <- true;
              (* end-to-end latency: send-accept to in-order delivery *)
              Sep_obs.Telemetry.observe t.lat (float_of_int (t.now - f.born));
              Sep_obs.Trace.flow_end ~cat:"net" ~id:f.flow
                ~args:[ ("wire", Sep_util.Json.Int id); ("seq", Sep_util.Json.Int f.seq) ]
                "deliver";
              feed t node (Component.Recv (id, f.payload))
            end
            else if rw.r_expect > 0 then
              (* a duplicate or a queue-jumper: discard, re-ack so the
                 sender learns where the receiver really is *)
              rw.r_ack_due <- true
          | [] -> ()
        end
        | None -> begin
          match Fifo.pop t.lines.(id) with
          | Some msg -> feed t node (Component.Recv (id, msg))
          | None -> ()
        end
      end
    in
    List.iter from_wire node.incoming
  in
  List.iter visit t.nodes;
  rel_flush_acks t

let run t ~steps ~externals =
  for n = 0 to steps - 1 do
    step t ~externals:(externals n)
  done

let find_node t c =
  match List.find_opt (fun n -> Colour.equal n.colour c) t.nodes with
  | Some n -> n
  | None -> raise Not_found

let trace t c = List.rev (find_node t c).obs
let outputs t c = List.rev (find_node t c).outs

let in_flight t =
  let base = Array.fold_left (fun acc line -> acc + Fifo.length line) 0 t.lines in
  Array.fold_left
    (fun acc rwo -> match rwo with Some rw -> acc + List.length rw.r_data | None -> acc)
    base t.rel

let drops t = t.dropped
let telemetry t = t.tel

let link_stats t =
  {
    ls_in_flight = in_flight t;
    ls_drops = t.dropped;
    ls_lossy_drops = t.lossy_dropped;
    ls_retransmits = t.retransmits;
    ls_acks = t.acks_sent;
    ls_backoff_ceiling = t.backoff_ceiling;
    ls_partition_drops = t.partition_dropped;
  }

(* -- Partitions --------------------------------------------------------------

   A partition severs the physical line: everything in transit at the
   moment of the cut is lost, and nothing placed while the line is down
   arrives. The endpoints are not told — the reliable sender keeps
   retransmitting into the void (its backoff caps at [rto_cap], so a
   partition costs a bounded retransmission rate, not a storm), and the
   go-back-N window replays the lost tail after the heal. On a raw wire a
   partition simply loses the traffic, as a cut does. *)

let set_wire_up t ~wire up =
  if wire < 0 || wire >= Array.length t.up then invalid_arg "Net.set_wire_up: no such wire";
  if t.up.(wire) && not up then begin
    (* flush the line: frames and acks in the cable are lost with it *)
    (match t.rel.(wire) with
    | Some rw ->
      t.partition_dropped <- t.partition_dropped + List.length rw.r_data + List.length rw.r_acks;
      rw.r_data <- [];
      rw.r_acks <- []
    | None -> ());
    let line = t.lines.(wire) in
    let rec drain () =
      match Fifo.pop line with
      | Some _ ->
        t.partition_dropped <- t.partition_dropped + 1;
        drain ()
      | None -> ()
    in
    drain ()
  end;
  t.up.(wire) <- up

let wire_up t ~wire =
  if wire < 0 || wire >= Array.length t.up then invalid_arg "Net.wire_up: no such wire";
  t.up.(wire)

(* Fault injection on a physical line: rewrite (Some) or destroy (None)
   every message currently in flight on one wire. Draining and refilling
   the FIFO preserves arrival order; destroyed messages count as drops —
   to the boxes at either end, a tampered line is indistinguishable from a
   lossy or noisy one. On a reliable wire the tampering hits the frames in
   transit; a destroyed frame is recovered by retransmission, a rewritten
   payload is delivered as-is (the protocol recovers loss, not forgery). *)
let tamper t ~wire f =
  if wire < 0 || wire >= Array.length t.lines then invalid_arg "Net.tamper: no such wire";
  let affected = ref 0 in
  (match t.rel.(wire) with
  | Some rw ->
    rw.r_data <-
      List.filter_map
        (fun fr ->
          match f fr.payload with
          | Some msg' ->
            if not (String.equal msg' fr.payload) then incr affected;
            Some { fr with payload = msg' }
          | None ->
            incr affected;
            t.dropped <- t.dropped + 1;
            None)
        rw.r_data
  | None ->
    let line = t.lines.(wire) in
    let rec drain acc =
      match Fifo.pop line with
      | Some msg -> drain (msg :: acc)
      | None -> List.rev acc
    in
    List.iter
      (fun msg ->
        match f msg with
        | Some msg' ->
          if not (String.equal msg' msg) then incr affected;
          ignore (Fifo.push line msg')
        | None ->
          incr affected;
          t.dropped <- t.dropped + 1)
      (drain []));
  !affected
