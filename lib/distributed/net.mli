(** The physically distributed substrate: the paper's ideal.

    Each component runs on its own machine; wires are physical FIFO lines
    between boxes. There is no shared anything — isolation holds by
    construction, which is exactly why this substrate is the reference
    against which the separation kernel ({!Sep_core.Regime_kernel}) is
    compared (experiment E7).

    {b Delivery discipline} (shared with the kernel substrate so that
    per-colour observable traces are comparable): in each global step,
    components are visited in topology order; a visited component first
    receives its external inputs for the step (in the order given), then
    at most one message from each incoming wire in wire-id order — but
    only messages already in flight when the step began. A send onto a
    full wire is dropped (and counted); a send onto a cut wire is
    silently discarded. *)

type t

val build : Sep_model.Topology.t -> t

val step : t -> externals:(Sep_model.Colour.t * Sep_model.Component.message) list -> unit

val run :
  t -> steps:int -> externals:(int -> (Sep_model.Colour.t * Sep_model.Component.message) list) ->
  unit
(** [steps] iterations of {!step}; [externals n] supplies step [n]'s
    inputs. *)

val trace : t -> Sep_model.Colour.t -> Sep_model.Component.obs list
(** Everything the component saw and did, in order. *)

val outputs : t -> Sep_model.Colour.t -> Sep_model.Component.message list
(** Just the [Output] actions. *)

val in_flight : t -> int
(** Messages currently buffered in wires. *)

val drops : t -> int
(** Messages dropped against full wires so far. *)

val tamper :
  t -> wire:int -> (Sep_model.Component.message -> Sep_model.Component.message option) -> int
(** Fault injection on one physical line: apply [f] to every message
    currently in flight on the wire, in order — [Some m'] replaces the
    message, [None] destroys it (counted in {!drops}). Returns how many
    messages were altered or destroyed. The blast radius is structurally
    the wire itself: no other line, box or trace can be touched, which is
    the distributed ideal's fault-containment argument. Raises
    [Invalid_argument] on an unknown wire id. *)
