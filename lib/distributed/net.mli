(** The physically distributed substrate: the paper's ideal.

    Each component runs on its own machine; wires are physical FIFO lines
    between boxes. There is no shared anything — isolation holds by
    construction, which is exactly why this substrate is the reference
    against which the separation kernel ({!Sep_core.Regime_kernel}) is
    compared (experiment E7).

    {b Delivery discipline} (shared with the kernel substrate so that
    per-colour observable traces are comparable): in each global step,
    components are visited in topology order; a visited component first
    receives its external inputs for the step (in the order given), then
    at most one message from each incoming wire in wire-id order — but
    only messages already in flight when the step began. A send onto a
    full wire is dropped (and counted); a send onto a cut wire is
    silently discarded. *)

type t

type link_model = {
  lm_seed : int;  (** PRNG seed driving the line faults (deterministic) *)
  lm_drop : int;  (** percent of frames (and acks) destroyed in transit *)
  lm_dup : int;  (** percent of frames duplicated on the line *)
  lm_reorder : int;  (** percent of frames spliced in ahead of the last in transit *)
}
(** A faulty physical line, percentages within [0..99]. *)

val default_link_model : link_model
(** seed 42, 10% drop, 5% dup, 5% reorder. *)

type link_stats = {
  ls_in_flight : int;  (** messages/frames currently on the wires *)
  ls_drops : int;  (** sends dropped against full or absent wires *)
  ls_lossy_drops : int;  (** frames and acks destroyed by the link model *)
  ls_retransmits : int;  (** frames resent after a timeout *)
  ls_acks : int;  (** acks emitted by receivers *)
  ls_backoff_ceiling : int;  (** timeouts that expired already at the backoff cap *)
  ls_partition_drops : int;  (** frames and acks lost to partitioned wires *)
}

val build : ?link:link_model -> Sep_model.Topology.t -> t
(** Without [?link], wires are the perfect FIFO lines described above.
    With a link model, every (non-cut) wire becomes a {e faulty} line —
    frames are destroyed, duplicated and reordered at the given rates,
    deterministically from [lm_seed] — carried by a reliable protocol:
    sequence-numbered frames, a go-back-N sender window equal to the
    wire's capacity, cumulative acks on an equally lossy reverse line, and
    timeout retransmission with exponential backoff capped at 8 times the
    base timeout. The receiver delivers to its component exactly the
    in-order message sequence the sender accepted — so the substrate keeps
    its meaning as the distributed ideal, message loss included. Sends
    onto a reliable wire are never dropped for backpressure (the pending
    queue is the sending box's buffer; the window is the flow control);
    sends onto cut wires are still silently discarded, preserving the
    cut-wire isolation argument. *)

val step : t -> externals:(Sep_model.Colour.t * Sep_model.Component.message) list -> unit

val run :
  t -> steps:int -> externals:(int -> (Sep_model.Colour.t * Sep_model.Component.message) list) ->
  unit
(** [steps] iterations of {!step}; [externals n] supplies step [n]'s
    inputs. *)

val trace : t -> Sep_model.Colour.t -> Sep_model.Component.obs list
(** Everything the component saw and did, in order. *)

val outputs : t -> Sep_model.Colour.t -> Sep_model.Component.message list
(** Just the [Output] actions. *)

val in_flight : t -> int
(** Messages currently buffered in wires. *)

val drops : t -> int
(** Messages dropped against full wires so far. *)

val telemetry : t -> Sep_obs.Telemetry.t
(** This net's metric registry: the histogram ["net.latency.steps"] —
    end-to-end latency in net steps of every word carried by a reliable
    link, from send-accept to in-order delivery (retransmissions
    included), with p50/p95/p99 via {!Sep_obs.Telemetry.quantile} — and
    the gauge ["net.retransmit_queue"], the number of frames sitting in
    sender windows awaiting acks, refreshed every {!step}. The gauge is
    mirrored onto the calling domain's {!Sep_obs.Span.local} registry so
    it appears in process-wide snapshots. When causal tracing
    ({!Sep_obs.Trace}) is enabled, every reliable send opens a flow edge
    that its in-order delivery closes — the happens-before edge across
    boxes. *)

val link_stats : t -> link_stats
(** Current line statistics. Without a link model the protocol counters
    ([ls_lossy_drops], [ls_retransmits], [ls_acks], [ls_backoff_ceiling])
    stay 0. *)

val set_wire_up : t -> wire:int -> bool -> unit
(** Partition (or heal) one physical line. Taking a wire down loses
    everything in transit on it and discards every frame and ack placed
    while it is down (counted in [ls_partition_drops]); the endpoints are
    not told. A reliable wire's sender keeps retransmitting with its
    backoff capped at the ceiling — a bounded rate, not a storm — and
    go-back-N replays the lost tail once the wire is back up, so a healed
    partition costs latency, never words. Raises [Invalid_argument] on an
    unknown wire id. *)

val wire_up : t -> wire:int -> bool
(** Whether the line is currently up (the default). *)

val tamper :
  t -> wire:int -> (Sep_model.Component.message -> Sep_model.Component.message option) -> int
(** Fault injection on one physical line: apply [f] to every message
    currently in flight on the wire, in order — [Some m'] replaces the
    message, [None] destroys it (counted in {!drops}). Returns how many
    messages were altered or destroyed. The blast radius is structurally
    the wire itself: no other line, box or trace can be touched, which is
    the distributed ideal's fault-containment argument. On a reliable
    wire the frames in transit are tampered: a destroyed frame is
    recovered by retransmission (the protocol recovers loss, not
    forgery). Raises [Invalid_argument] on an unknown wire id. *)
