module Prng = Sep_util.Prng
module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Recover = Sep_recover.Recover
module Ktrace = Sep_core.Ktrace
module Scenarios = Sep_core.Scenarios
module Separability = Sep_core.Separability
module Abstract_regime = Sep_core.Abstract_regime
module J = Sep_util.Json

type schedule = Sue.input list

let schedule_to_json s =
  J.List
    (List.map
       (fun step -> J.List (List.map (fun (d, w) -> J.List [ J.Int d; J.Int w ]) step))
       s)

let schedule_of_json j =
  let pair = function
    | J.List [ J.Int d; J.Int w ] -> Ok (d, w)
    | other -> Error ("expected [device, word], got " ^ J.to_string other)
  in
  let step = function
    | J.List pairs ->
      List.fold_right
        (fun p acc -> Result.bind acc (fun acc -> Result.map (fun p -> p :: acc) (pair p)))
        pairs (Ok [])
    | other -> Error ("expected a step list, got " ^ J.to_string other)
  in
  match j with
  | J.List steps ->
    List.fold_right
      (fun s acc -> Result.bind acc (fun acc -> Result.map (fun s -> s :: acc) (step s)))
      steps (Ok [])
  | other -> Error ("expected a schedule list, got " ^ J.to_string other)

(* -- Coverage keys ------------------------------------------------------------ *)

(* binary order of magnitude: 0, then 1 + floor(log2 v) *)
let bucket v =
  let rec go b v = if v <= 0 then b else go (b + 1) (v lsr 1) in
  go 0 v

let opcode_name (i : Isa.t) =
  match i with
  | Isa.Nop -> "nop"
  | Isa.Halt -> "halt"
  | Isa.Trap _ -> "trap"
  | Isa.Rti -> "rti"
  | Isa.Loadi _ -> "loadi"
  | Isa.Load _ -> "load"
  | Isa.Store _ -> "store"
  | Isa.Mov _ -> "mov"
  | Isa.Add _ -> "add"
  | Isa.Sub _ -> "sub"
  | Isa.And_ _ -> "and"
  | Isa.Or_ _ -> "or"
  | Isa.Xor _ -> "xor"
  | Isa.Cmp _ -> "cmp"
  | Isa.Shl _ -> "shl"
  | Isa.Shr _ -> "shr"
  | Isa.Beq _ -> "beq"
  | Isa.Bne _ -> "bne"
  | Isa.Br _ -> "br"

let event_key (e : Ktrace.event) =
  match e with
  | Ktrace.Executed { colour; instr; _ } -> Fmt.str "e:op:%s:%s" (Colour.name colour) (opcode_name instr)
  | Ktrace.Trapped { colour; number } -> Fmt.str "e:trap:%s:%d" (Colour.name colour) number
  | Ktrace.Switched { from_; to_ } -> Fmt.str "e:switch:%s>%s" (Colour.name from_) (Colour.name to_)
  | Ktrace.Blocked c -> "e:blocked:" ^ Colour.name c
  | Ktrace.Parked c -> "e:parked:" ^ Colour.name c
  | Ktrace.Woken c -> "e:woken:" ^ Colour.name c
  | Ktrace.Arrived { device; _ } -> Fmt.str "e:arrived:%d" device
  | Ktrace.Emitted { device; _ } -> Fmt.str "e:emitted:%d" device
  | Ktrace.Stalled -> "e:stall"
  | Ktrace.Save_corrupt c -> "e:save-corrupt:" ^ Colour.name c
  | Ktrace.Guard_breached _ -> "e:guard-breach"
  | Ktrace.Channel_corrupt _ -> "e:channel-corrupt"
  | Ktrace.Watchdog_fired c -> "e:watchdog:" ^ Colour.name c
  | Ktrace.Kernel_panicked _ -> "e:panic"
  | Ktrace.Restarted c -> "e:restarted:" ^ Colour.name c
  | Ktrace.Checkpoint_corrupt c -> "e:ckpt-corrupt:" ^ Colour.name c
  | Ktrace.Warm_rebooted -> "e:warm-reboot"

let kstat_keys (ks : Sue.kstats) =
  let per name pairs =
    List.filter_map
      (fun (c, v) -> if v > 0 then Some (Fmt.str "k:%s:%s:%d" name (Colour.name c) (bucket v)) else None)
      pairs
  in
  let flat name v = if v > 0 then [ Fmt.str "k:%s:%d" name (bucket v) ] else [] in
  per "instrs" ks.Sue.ks_instrs
  @ per "traps" ks.Sue.ks_traps
  @ per "swaps" ks.Sue.ks_swaps
  @ per "sent" ks.Sue.ks_sent
  @ per "recvd" ks.Sue.ks_recvd
  @ flat "switches" ks.Sue.ks_switches
  @ flat "irqs" ks.Sue.ks_irqs_forwarded
  @ flat "wakes" ks.Sue.ks_wakes
  @ flat "stalls" ks.Sue.ks_stalls
  @ flat "inputs" ks.Sue.ks_inputs_latched
  @ flat "outputs" ks.Sue.ks_outputs_observed
  @ flat "fault_parks" ks.Sue.ks_fault_parks
  @ flat "guard_breaches" ks.Sue.ks_guard_breaches
  @ flat "watchdog" ks.Sue.ks_watchdog_fires
  @ flat "panics" ks.Sue.ks_panics
  @ flat "checkpoints" ks.Sue.ks_checkpoints
  @ flat "restarts" ks.Sue.ks_restarts
  @ flat "warm_reboots" ks.Sue.ks_warm_reboots

let status_keys t colours =
  List.map
    (fun c ->
      let s =
        match Sue.regime_status t c with
        | Abstract_regime.Running -> "running"
        | Abstract_regime.Waiting -> "waiting"
        | Abstract_regime.Parked -> "parked"
      in
      Fmt.str "s:%s:%s" (Colour.name c) s)
    colours

(* -- One execution ------------------------------------------------------------ *)

type exec = {
  ex_keys : string list;
  ex_report : Separability.report;
}

let run_once ?(bugs = []) ?(impl = Sue.Microcode) ~scrambles ~settle ~seed cfg sched =
  let rng = Prng.create seed in
  let t = Sue.build ~bugs ~impl cfg in
  let colours = Config.colours cfg in
  let states = ref [] in
  let events = ref [] in
  let add s =
    states := s :: !states;
    List.iter
      (fun c ->
        for _ = 1 to scrambles do
          states := Sue.scramble_others rng s c :: !states
        done)
      colours
  in
  add (Sue.copy t);
  List.iter
    (fun input ->
      events := Ktrace.step t input :: !events;
      add (Sue.copy t))
    sched;
  for _ = 1 to settle do
    events := Ktrace.step t [] :: !events;
    add (Sue.copy t)
  done;
  (t, List.rev !states, List.concat (List.rev !events))

let states_of_schedule ?bugs ?impl ?(scrambles = 2) ?(settle = 24) ~seed cfg sched =
  let _, states, _ = run_once ?bugs ?impl ~scrambles ~settle ~seed cfg sched in
  states

let execute ?(bugs = []) ?(impl = Sue.Microcode) ?(scrambles = 2) ?(settle = 24) ~seed ~alphabet cfg
    sched =
  let t, states, events = run_once ~bugs ~impl ~scrambles ~settle ~seed cfg sched in
  let keys =
    List.map event_key events
    @ kstat_keys (Sue.kstats t)
    @ status_keys t (Config.colours cfg)
  in
  let keys = List.sort_uniq compare keys in
  let sys = Sue.to_system ~bugs ~impl ~inputs:alphabet cfg in
  { ex_keys = keys; ex_report = Separability.check_states sys states }

let check_schedule ?bugs ?impl ?scrambles ?settle ~seed ~alphabet cfg sched =
  (execute ?bugs ?impl ?scrambles ?settle ~seed ~alphabet cfg sched).ex_report

type online = {
  on_report : Separability.report;
  on_first_violation : (int * Separability.failure) option;
}

(* The same run as {!execute}, but the states stream through the
   incremental checker as they are produced — with the kernel step that
   produced each one — instead of being collected for a post-hoc
   [check_states]. The generation order (each snapshot followed by its
   scrambled Phi-partners, colours in configuration order) matches
   [run_once] exactly, so the report agrees with the offline one. *)
let check_schedule_online ?(bugs = []) ?(impl = Sue.Microcode) ?(scrambles = 2) ?(settle = 24)
    ~seed ~alphabet cfg sched =
  let module Monitor = Sep_core.Monitor in
  let rng = Prng.create seed in
  let t = Sue.build ~bugs ~impl cfg in
  let colours = Config.colours cfg in
  let mon = Monitor.create (Sue.to_system ~bugs ~impl ~inputs:alphabet cfg) in
  let feed ~step s =
    ignore (Monitor.feed ~step mon s);
    List.iter
      (fun c ->
        for _ = 1 to scrambles do
          ignore (Monitor.feed ~step mon (Sue.scramble_others rng s c))
        done)
      colours
  in
  feed ~step:0 (Sue.copy t);
  List.iteri
    (fun n input ->
      ignore (Ktrace.step t input);
      feed ~step:(n + 1) (Sue.copy t))
    sched;
  let base = List.length sched in
  for k = 1 to settle do
    ignore (Ktrace.step t []);
    feed ~step:(base + k) (Sue.copy t)
  done;
  { on_report = Monitor.report mon; on_first_violation = Monitor.first_violation mon }

(* -- Mutation ----------------------------------------------------------------- *)

let mutate_schedule ~alphabet ~max_len rng sched =
  let arr = Array.of_list alphabet in
  let elt () = if Array.length arr = 0 then [] else Prng.choose rng arr in
  let n = List.length sched in
  let clip l = List.filteri (fun i _ -> i < max_len) l in
  let mutated =
    match Prng.int rng 5 with
    | 0 -> sched @ List.init (Prng.int_in rng 1 4) (fun _ -> elt ())
    | 1 when n > 0 ->
      let i = Prng.int rng n in
      List.filteri (fun j _ -> j <> i) sched
    | 2 when n > 0 ->
      let i = Prng.int rng n in
      List.mapi (fun j x -> if j = i then elt () else x) sched
    | 3 when n > 0 ->
      let i = Prng.int rng (n + 1) in
      let x = elt () in
      List.concat [ List.filteri (fun j _ -> j < i) sched; [ x ]; List.filteri (fun j _ -> j >= i) sched ]
    | 4 when n > 1 ->
      let i = Prng.int rng n in
      sched @ List.filteri (fun j _ -> j >= i) sched
    | _ -> sched @ [ elt () ]
  in
  clip mutated

(* -- The corpus engine -------------------------------------------------------- *)

type 'a entry = {
  en_id : int;
  en_input : 'a;
  en_new_keys : string list;
}

type 'a campaign = {
  cp_seed : int;
  cp_budget : int;
  cp_execs : int;
  cp_entries : 'a entry list;
  cp_keys : string list;
  cp_stopped : bool;
}

(* The batch width is a fixed constant, NOT the job count: candidates are
   generated (sequentially, from the engine's single PRNG) a batch at a
   time against the corpus snapshot at batch start, executed in parallel,
   then admitted in generation order. Tying the width to [jobs] would
   change which corpus snapshot each candidate mutates from and break the
   bit-identical-for-any-[-j] contract. *)
let batch_width = 8

let engine_exec ?jobs ~seed ~budget ~seeds ~mutate ~exec ~keys_of
    ?(stop = fun _ _ -> false) ?(witness = fun _ _ -> ()) () =
  let rng = Prng.create seed in
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  let nentries = ref 0 in
  let execs = ref 0 in
  let stopped = ref false in
  (* live campaign gauges on the driving domain's registry *)
  let g_corpus = Sep_obs.Telemetry.gauge (Sep_obs.Span.local ()) "fuzz.corpus" in
  let g_keys = Sep_obs.Telemetry.gauge (Sep_obs.Span.local ()) "fuzz.keys" in
  (* Sequential, canonical-order half of one execution: budget accounting,
     witness, corpus admission, stop. Batch results past a stop or past
     the budget are discarded unprocessed — the batch partition does not
     depend on [jobs], so the discard point doesn't either. *)
  let admit input result =
    if (not !stopped) && !execs < budget then begin
      incr execs;
      witness input result;
      let keys = keys_of result in
      let fresh = List.filter (fun k -> not (Hashtbl.mem seen k)) keys in
      List.iter (fun k -> Hashtbl.replace seen k ()) keys;
      let is_stop = stop input result in
      if fresh <> [] || is_stop then begin
        entries :=
          { en_id = !execs; en_input = input; en_new_keys = List.sort compare fresh }
          :: !entries;
        incr nentries
      end;
      if is_stop then stopped := true
    end
  in
  let run_batch inputs =
    List.iter2 admit inputs (Sep_par.Par.map ?jobs exec inputs);
    Sep_obs.Telemetry.set g_corpus (float_of_int !nentries);
    Sep_obs.Telemetry.set g_keys (float_of_int (Hashtbl.length seen))
  in
  let rec seed_batches = function
    | [] -> ()
    | rest when !stopped || !execs >= budget -> ignore rest
    | rest ->
      run_batch (List.filteri (fun i _ -> i < batch_width) rest);
      seed_batches (List.filteri (fun i _ -> i >= batch_width) rest)
  in
  seed_batches seeds;
  while (not !stopped) && !execs < budget && !nentries > 0 do
    (* newest-first list; the min of two uniform draws biases toward
       recent admissions without starving the rest of the corpus *)
    let arr = Array.of_list !entries in
    let pick () = min (Prng.int rng (Array.length arr)) (Prng.int rng (Array.length arr)) in
    let batch =
      List.init (min batch_width (budget - !execs)) (fun _ -> mutate rng arr.(pick ()).en_input)
    in
    run_batch batch
  done;
  {
    cp_seed = seed;
    cp_budget = budget;
    cp_execs = !execs;
    cp_entries = List.rev !entries;
    cp_keys = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen []);
    cp_stopped = !stopped;
  }

let engine ~seed ~budget ~seeds ~mutate ~coverage ?(stop = fun _ -> false) () =
  engine_exec ~jobs:1 ~seed ~budget ~seeds ~mutate ~exec:coverage ~keys_of:Fun.id
    ~stop:(fun input _ -> stop input) ()

(* -- Fuzzing a scenario ------------------------------------------------------- *)

type failure = {
  fl_schedule : schedule;
  fl_conditions : int list;
  fl_isolation : (Colour.t * int * string) list;
}

type scenario_result = {
  sr_label : string;
  sr_seed : int;
  sr_campaign : schedule campaign;
  sr_failures : failure list;
}

let drip_schedule alphabet len =
  let nonempty = Array.of_list (List.filter (fun i -> i <> []) alphabet) in
  if Array.length nonempty = 0 then []
  else List.init len (fun n -> if n mod 3 = 0 then nonempty.((n / 3) mod Array.length nonempty) else [])

let max_failures_kept = 10

let fuzz_scenario ?(bugs = []) ?(impl = Sue.Microcode) ?(check_isolation = true) ?jobs ~seed
    ~budget (sc : Scenarios.instance) =
  let alphabet = sc.Scenarios.alphabet in
  let cfg = sc.Scenarios.cfg in
  let failures = ref [] in
  (* executions run on worker domains and are pure; failure collection
     happens in the sequential witness, in canonical admission order *)
  let witness sched e =
    let conds = Separability.failing_conditions e.ex_report in
    if conds <> [] && List.length !failures < max_failures_kept then
      failures := { fl_schedule = sched; fl_conditions = conds; fl_isolation = [] } :: !failures
  in
  let seeds =
    ([] :: List.map (fun i -> [ i ]) (List.filter (fun i -> i <> []) alphabet))
    @ [ drip_schedule alphabet 12 ]
  in
  let campaign =
    engine_exec ?jobs ~seed ~budget ~seeds ~mutate:(mutate_schedule ~alphabet ~max_len:32)
      ~exec:(fun sched -> execute ~bugs ~impl ~seed:(seed + 1) ~alphabet cfg sched)
      ~keys_of:(fun e -> e.ex_keys) ~witness ()
  in
  (* cut-wire solo isolation over the corpus: meaningful only when every
     channel is cut (an uncut channel makes regimes legitimately
     interdependent, so solo traces may differ) *)
  let isolable = List.for_all (fun (ch : Config.channel) -> ch.Config.cut) cfg.Config.channels in
  if check_isolation && isolable then
    Sep_par.Par.map ?jobs
      (fun e -> (e.en_input, Diff.solo_check ~impl cfg ~schedule:e.en_input))
      campaign.cp_entries
    |> List.iter (fun (sched, divergences) ->
           if divergences <> [] && List.length !failures < max_failures_kept then
             failures :=
               { fl_schedule = sched; fl_conditions = []; fl_isolation = divergences }
               :: !failures);
  { sr_label = sc.Scenarios.label; sr_seed = seed; sr_campaign = campaign; sr_failures = List.rev !failures }

(* -- Crash-restart exploration ------------------------------------------------ *)

type crash = int * Colour.t

type recovery_input = {
  ri_sched : schedule;
  ri_crashes : crash list;
}

(* The crash: corrupt one save-area slot of the victim before the step.
   Off-processor victims park at the next switch-to attempt and the
   supervisor restarts them; a currently-running victim's save area is
   overwritten at its next save, masking the crash — both are legitimate
   interleavings for the fuzzer to explore. *)
let crash_victim t c =
  let m = Sue.machine t in
  let a = Sue.save_area_base t c + 2 in
  Machine.write_phys m a (Machine.read_phys m a lxor 0x40)

(* Like {!execute} but under a recovery supervisor, with states sampled on
   both sides of every crash-restart boundary: after each step (catching
   parked states) and again after each supervision round that acted
   (catching the restored states). The separability check then quantifies
   over pre-crash, parked and post-restart states alike.

   One window is deliberately NOT sampled: crashed-but-undetected. A
   corrupted save area with a stale checksum is not a state of the
   fault-free system the conditions are stated over — stepping it parks
   the victim on another colour's behalf, which conditions 2 and 3
   correctly flag. The conditions' claim is about the states recovery
   leads {e through} (clean, parked, restored), not about the transient
   the fault itself created; that transient is the campaign's
   differential-trace territory. A victim crashed while it holds the
   processor is never dirty: its save area is rewritten (and resealed) at
   its next swap-out, before any validation can see the corruption. Note
   that {!Sue.regime_status} returning [Running] only means {e runnable}
   — only {!Sue.current_colour} identifies the regime whose live context
   shadows its save area. *)
let execute_recovery ?(policy = Recover.default_policy) ?(scrambles = 2) ?(settle = 24) ~seed
    ~alphabet cfg input =
  let rng = Prng.create seed in
  let t = Sue.build cfg in
  let sup = Recover.create ~policy t in
  let colours = Config.colours cfg in
  let states = ref [] in
  let events = ref [] in
  let add s =
    states := s :: !states;
    List.iter
      (fun c ->
        for _ = 1 to scrambles do
          states := Sue.scramble_others rng s c :: !states
        done)
      colours
  in
  add (Sue.copy t);
  let dirty = ref [] in
  let sched = Array.of_list input.ri_sched in
  let total = Array.length sched + settle in
  for n = 0 to total - 1 do
    List.iter
      (fun (at, c) ->
        if at = n then begin
          crash_victim t c;
          if Sue.current_colour t <> c then dirty := c :: !dirty
        end)
      input.ri_crashes;
    let inp = if n < Array.length sched then sched.(n) else [] in
    events := Ktrace.step t inp :: !events;
    (* detection resolves the dirty window: the park is a consistent state *)
    dirty := List.filter (fun c -> Sue.regime_status t c <> Abstract_regime.Parked) !dirty;
    if !dirty = [] then add (Sue.copy t);
    if Recover.tick sup <> [] && !dirty = [] then add (Sue.copy t)
  done;
  let keys =
    List.map event_key (List.concat (List.rev !events))
    @ kstat_keys (Sue.kstats t)
    @ status_keys t colours
  in
  let keys = List.sort_uniq compare keys in
  let sys = Sue.to_system ~inputs:alphabet cfg in
  { ex_keys = keys; ex_report = Separability.check_states sys (List.rev !states) }

let mutate_crashes ~colours ~max_steps rng crashes =
  let arr = Array.of_list colours in
  let fresh () = (Prng.int rng max_steps, Prng.choose rng arr) in
  let n = List.length crashes in
  match Prng.int rng 4 with
  | 0 when n < 3 -> fresh () :: crashes
  | 1 when n > 1 ->
    let i = Prng.int rng n in
    List.filteri (fun j _ -> j <> i) crashes
  | 2 when n > 0 ->
    let i = Prng.int rng n in
    List.mapi (fun j (at, c) -> if j = i then (Prng.int rng max_steps, c) else (at, c)) crashes
  | 3 when n > 0 ->
    let i = Prng.int rng n in
    List.mapi (fun j (at, c) -> if j = i then (at, Prng.choose rng arr) else (at, c)) crashes
  | _ -> [ fresh () ]

type recovery_failure = {
  rf_schedule : schedule;
  rf_crashes : crash list;
  rf_conditions : int list;
}

type recovery_result = {
  rv_label : string;
  rv_seed : int;
  rv_campaign : recovery_input campaign;
  rv_failures : recovery_failure list;
}

let fuzz_recovery ?policy ?jobs ~seed ~budget (sc : Scenarios.instance) =
  let alphabet = sc.Scenarios.alphabet in
  let cfg = sc.Scenarios.cfg in
  let colours = Config.colours cfg in
  let failures = ref [] in
  let witness input e =
    let conds = Separability.failing_conditions e.ex_report in
    if conds <> [] && List.length !failures < max_failures_kept then
      failures :=
        { rf_schedule = input.ri_sched; rf_crashes = input.ri_crashes; rf_conditions = conds }
        :: !failures
  in
  let drip = drip_schedule alphabet 12 in
  let seeds =
    List.mapi (fun i c -> { ri_sched = drip; ri_crashes = [ (2 + (3 * i), c) ] }) colours
    @ [ { ri_sched = drip; ri_crashes = List.mapi (fun i c -> (4 + i, c)) colours } ]
  in
  let max_steps = 12 + 24 in
  let mutate rng input =
    if input.ri_crashes <> [] && Prng.bool rng then
      { input with ri_crashes = mutate_crashes ~colours ~max_steps rng input.ri_crashes }
    else { input with ri_sched = mutate_schedule ~alphabet ~max_len:32 rng input.ri_sched }
  in
  let campaign =
    engine_exec ?jobs ~seed ~budget ~seeds ~mutate
      ~exec:(fun input -> execute_recovery ?policy ~seed:(seed + 1) ~alphabet cfg input)
      ~keys_of:(fun e -> e.ex_keys) ~witness ()
  in
  {
    rv_label = sc.Scenarios.label;
    rv_seed = seed;
    rv_campaign = campaign;
    rv_failures = List.rev !failures;
  }

let scenario_result_to_jsonl r =
  let buf = Buffer.create 1024 in
  let line j =
    J.to_buffer buf j;
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun e ->
      line
        (J.Obj
           [
             ("kind", J.String "fuzz-corpus");
             ("scenario", J.String r.sr_label);
             ("id", J.Int e.en_id);
             ("new_keys", J.List (List.map (fun k -> J.String k) e.en_new_keys));
             ("schedule", schedule_to_json e.en_input);
           ]))
    r.sr_campaign.cp_entries;
  line
    (J.Obj
       [
         ("kind", J.String "fuzz-scenario");
         ("scenario", J.String r.sr_label);
         ("seed", J.Int r.sr_seed);
         ("budget", J.Int r.sr_campaign.cp_budget);
         ("execs", J.Int r.sr_campaign.cp_execs);
         ("corpus", J.Int (List.length r.sr_campaign.cp_entries));
         ("keys", J.Int (List.length r.sr_campaign.cp_keys));
         ("failures", J.Int (List.length r.sr_failures));
       ]);
  Buffer.contents buf
