module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Mutants = Sep_core.Mutants
module Scenarios = Sep_core.Scenarios
module Separability = Sep_core.Separability
module Randomized = Sep_core.Randomized
module Prng = Sep_util.Prng
module J = Sep_util.Json

let bug_name b = Fmt.str "%a" Sue.pp_bug b
let bug_of_name s = List.find_opt (fun b -> String.equal (bug_name b) s) Sue.all_bugs

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)

type workload = {
  wl_progs : (Colour.t * Gen.action list) list;
  wl_sched : Fuzz.schedule;
}

let workload_instrs w = List.fold_left (fun n (_, acts) -> n + Gen.instr_count acts) 0 w.wl_progs

let pp_workload ppf w =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (c, acts) ->
      Fmt.pf ppf "%a: [%a] (%d instrs)@," Colour.pp c
        Fmt.(list ~sep:(any "; ") Gen.pp_action)
        acts (Gen.instr_count acts))
    w.wl_progs;
  Fmt.pf ppf "schedule: %d step%s@]" (List.length w.wl_sched)
    (if List.compare_length_with w.wl_sched 1 > 0 then "s" else "")

let apply_workload cfg w =
  {
    cfg with
    Config.regimes =
      List.map
        (fun r ->
          match List.assoc_opt r.Config.colour w.wl_progs with
          | None -> r
          | Some acts ->
            {
              r with
              Config.program = Gen.render acts;
              part_size = max r.Config.part_size (Gen.instr_count acts + 6);
            })
        cfg.Config.regimes;
  }

(* Structural shrinking of a workload: first the schedule, then each
   regime's action list in place. *)
let shrink_workload w =
  let scheds = Seq.map (fun s -> { w with wl_sched = s }) (Shrink.schedule w.wl_sched) in
  let rec progs prefix = function
    | [] -> Seq.empty
    | (c, acts) :: rest ->
      let here =
        Seq.map
          (fun acts' -> { w with wl_progs = List.rev_append prefix ((c, acts') :: rest) })
          (Shrink.list ~elem:Shrink.action acts)
      in
      Seq.append here (fun () -> progs ((c, acts) :: prefix) rest ())
  in
  Seq.append scheds (progs [] w.wl_progs)

(* Archetype workload seeds: tiny hand-shaped programs exercising each
   kernel surface a regime's capabilities allow. Most mutants die on one
   of these before any mutation happens. *)
let archetypes cfg alphabet =
  let colours = Config.colours cfg in
  let caps = List.map (fun c -> (c, Gen.caps_of_regime cfg c)) colours in
  let per f = List.map (fun (c, k) -> (c, f k)) caps in
  let progs =
    [
      per (fun _ -> []);
      per (fun _ -> [ Gen.Set (3, 7) ]);
      per (fun k ->
          (match k.Gen.tx_slots with s :: _ -> [ Gen.Set (3, 7); Gen.Emit (s, 3) ] | [] -> [])
          @ match k.Gen.rx_slots with s :: _ -> [ Gen.Poll s ] | [] -> []);
      per (fun k ->
          (match k.Gen.send_chans with ch :: _ -> [ Gen.Set (1, 5); Gen.Send (ch, 1) ] | [] -> [])
          @ match k.Gen.recv_chans with ch :: _ -> [ Gen.Recv ch ] | [] -> []);
      per (fun k -> if k.Gen.rx_slots <> [] then [ Gen.Wait ] else []);
    ]
  in
  let drip =
    match alphabet with
    | [] -> []
    | _ -> List.init 12 (fun i -> List.nth alphabet (i mod List.length alphabet))
  in
  List.concat_map (fun p -> [ { wl_progs = p; wl_sched = [] }; { wl_progs = p; wl_sched = drip } ]) progs

let mutate_workload cfg alphabet rng w =
  let n = List.length w.wl_progs in
  if n > 0 && Prng.int rng 2 = 0 then begin
    let i = Prng.int rng n in
    let mutate_prog (c, acts) =
      let caps = Gen.caps_of_regime cfg c in
      match Prng.int rng 3 with
      | 0 -> (c, acts @ [ Gen.action caps rng ])
      | 1 -> (
        match acts with
        | [] -> (c, [ Gen.action caps rng ])
        | _ ->
          let k = Prng.int rng (List.length acts) in
          (c, List.filteri (fun j _ -> j <> k) acts))
      | _ -> (c, Gen.actions caps ~max:4 rng)
    in
    { w with wl_progs = List.mapi (fun j p -> if j = i then mutate_prog p else p) w.wl_progs }
  end
  else { w with wl_sched = Fuzz.mutate_schedule ~alphabet ~max_len:16 rng w.wl_sched }

(* ------------------------------------------------------------------ *)
(* Kill records                                                        *)

type strategy =
  | Exhaustive
  | Randomized
  | Coverage

let strategy_name = function
  | Exhaustive -> "exhaustive"
  | Randomized -> "randomized"
  | Coverage -> "coverage"

type kill = {
  kl_bug : Sue.bug;
  kl_scenario : string;
  kl_strategy : strategy;
  kl_detected : bool;
  kl_condition : int;
  kl_states : int;
  kl_checks : int;
  kl_execs : int;
  kl_workload : workload option;
}

let kill_to_json k =
  J.Obj
    ([
       ("bug", J.String (bug_name k.kl_bug));
       ("scenario", J.String k.kl_scenario);
       ("strategy", J.String (strategy_name k.kl_strategy));
       ("detected", J.Bool k.kl_detected);
       ("condition", J.Int k.kl_condition);
       ("states", J.Int k.kl_states);
       ("checks", J.Int k.kl_checks);
       ("execs", J.Int k.kl_execs);
     ]
    @
    match k.kl_workload with
    | None -> []
    | Some w ->
      [ ("instrs", J.Int (workload_instrs w)); ("schedule_len", J.Int (List.length w.wl_sched)) ])

let pp_kill ppf k =
  Fmt.pf ppf "%-26s %-10s %-10s %s  cond %d  states=%d checks=%d execs=%d%s" (bug_name k.kl_bug)
    k.kl_scenario
    (strategy_name k.kl_strategy)
    (if k.kl_detected then "KILLED  " else "SURVIVED")
    k.kl_condition k.kl_states k.kl_checks k.kl_execs
    (match k.kl_workload with
    | None -> ""
    | Some w -> Fmt.str " instrs=%d sched=%d" (workload_instrs w) (List.length w.wl_sched))

let exhaustive_kill ?(impl = Sue.Microcode) ?state_limit (e : Mutants.expectation) =
  let sys =
    Sue.to_system ~bugs:[ e.bug ] ~impl ~inputs:e.scenario.Scenarios.alphabet e.scenario.Scenarios.cfg
  in
  let r = Separability.check ?state_limit ~max_failures:1 sys in
  {
    kl_bug = e.bug;
    kl_scenario = e.scenario.Scenarios.label;
    kl_strategy = Exhaustive;
    kl_detected = List.mem e.primary (Separability.failing_conditions r);
    kl_condition = e.primary;
    kl_states = r.Separability.states;
    kl_checks = r.Separability.checks;
    kl_execs = 1;
    kl_workload = None;
  }

let randomized_kill ?(impl = Sue.Microcode) ?(max_walks = 32) ?jobs ~seed
    (e : Mutants.expectation) =
  let rec go walks spent =
    let params = { Randomized.default_params with Randomized.walks } in
    let r =
      Randomized.check ~bugs:[ e.bug ] ~impl ?jobs ~params ~max_failures:1 ~seed
        ~inputs:e.scenario.Scenarios.alphabet e.scenario.Scenarios.cfg
    in
    let detected = List.mem e.primary (Separability.failing_conditions r) in
    let spent = spent + walks in
    if detected || walks >= max_walks then (r, detected, spent) else go (walks * 2) spent
  in
  let r, detected, execs = go 1 0 in
  {
    kl_bug = e.bug;
    kl_scenario = e.scenario.Scenarios.label;
    kl_strategy = Randomized;
    kl_detected = detected;
    kl_condition = e.primary;
    kl_states = r.Separability.states;
    kl_checks = r.Separability.checks;
    kl_execs = execs;
    kl_workload = None;
  }

let coverage_kill ?(impl = Sue.Microcode) ?jobs ~seed ~budget (e : Mutants.expectation) =
  let cfg = e.scenario.Scenarios.cfg and alphabet = e.scenario.Scenarios.alphabet in
  let execute_raw w =
    Fuzz.execute ~bugs:[ e.bug ] ~impl ~seed:(seed + 1) ~alphabet (apply_workload cfg w)
      w.wl_sched
  in
  (* The engine derives coverage and stop from one parallel execution;
     re-executions during the sequential shrink phase are memoized on the
     spawning domain only. *)
  let cache = Hashtbl.create 64 in
  let execute w =
    match Hashtbl.find_opt cache w with
    | Some ex -> ex
    | None ->
      let ex = execute_raw w in
      Hashtbl.replace cache w ex;
      ex
  in
  let detected_ex ex = List.mem e.primary (Separability.failing_conditions ex.Fuzz.ex_report) in
  let detected w = detected_ex (execute w) in
  let campaign =
    Fuzz.engine_exec ?jobs ~seed ~budget ~seeds:(archetypes cfg alphabet)
      ~mutate:(mutate_workload cfg alphabet) ~exec:execute_raw
      ~keys_of:(fun ex -> ex.Fuzz.ex_keys)
      ~stop:(fun _ ex -> detected_ex ex) ()
  in
  let killer =
    List.find_opt (fun en -> detected en.Fuzz.en_input) (List.rev campaign.Fuzz.cp_entries)
  in
  match killer with
  | None ->
    {
      kl_bug = e.bug;
      kl_scenario = e.scenario.Scenarios.label;
      kl_strategy = Coverage;
      kl_detected = false;
      kl_condition = e.primary;
      kl_states = 0;
      kl_checks = 0;
      kl_execs = campaign.Fuzz.cp_execs;
      kl_workload = None;
    }
  | Some en ->
    let w, _ = Shrink.minimize ~still_failing:detected shrink_workload en.Fuzz.en_input in
    let r = (execute w).Fuzz.ex_report in
    {
      kl_bug = e.bug;
      kl_scenario = e.scenario.Scenarios.label;
      kl_strategy = Coverage;
      kl_detected = true;
      kl_condition = e.primary;
      kl_states = r.Separability.states;
      kl_checks = r.Separability.checks;
      kl_execs = campaign.Fuzz.cp_execs;
      kl_workload = Some w;
    }

(* One task per (mutant, strategy): each is an independent replay against
   its own fresh kernels, so the table parallelizes flat. Inner engines
   run at [jobs = 1] — the outer map already owns the domains. *)
let kill_table ?impl ?jobs ~seed ~budget () =
  List.concat_map
    (fun e -> [ (e, Exhaustive); (e, Randomized); (e, Coverage) ])
    Mutants.catalogue
  |> Sep_par.Par.map ?jobs (fun (e, strategy) ->
         match strategy with
         | Exhaustive -> exhaustive_kill ?impl e
         | Randomized -> randomized_kill ?impl ~jobs:1 ~seed e
         | Coverage -> coverage_kill ?impl ~jobs:1 ~seed ~budget e)

(* ------------------------------------------------------------------ *)
(* Regression corpus                                                   *)

type corpus_case = {
  cc_bug : Sue.bug;
  cc_scenario : string;
  cc_seed : int;
  cc_scrambles : int;
  cc_condition : int;
  cc_schedule : Fuzz.schedule;
}

let drip alphabet n =
  match alphabet with
  | [] -> []
  | _ -> List.init n (fun i -> List.nth alphabet (i mod List.length alphabet))

let corpus_case ?(impl = Sue.Microcode) ~seed (e : Mutants.expectation) =
  let cfg = e.scenario.Scenarios.cfg and alphabet = e.scenario.Scenarios.alphabet in
  let detects scrambles sched =
    List.mem e.primary
      (Separability.failing_conditions
         (Fuzz.check_schedule ~bugs:[ e.bug ] ~impl ~scrambles ~seed:(seed + 1) ~alphabet cfg
            sched))
  in
  let candidates =
    ([] :: List.filter_map (fun i -> if i = [] then None else Some [ i ]) alphabet)
    @ [ drip alphabet 16 ]
    @ Gen.generate ~seed:(seed + 3) ~count:12 (Gen.schedule ~alphabet ~max_len:24)
  in
  let rec levels = function
    | [] -> None
    | scr :: rest -> (
      match List.find_opt (detects scr) candidates with
      | Some sched -> Some (scr, sched)
      | None -> levels rest)
  in
  match levels [ 2; 5; 11 ] with
  | None -> None
  | Some (scr, sched) ->
    let sched, _ = Shrink.minimize ~still_failing:(detects scr) Shrink.schedule sched in
    Some
      {
        cc_bug = e.bug;
        cc_scenario = e.scenario.Scenarios.label;
        cc_seed = seed + 1;
        cc_scrambles = scr;
        cc_condition = e.primary;
        cc_schedule = sched;
      }

let corpus_case_to_json c =
  J.Obj
    [
      ("schema", J.String "rushby-corpus/1");
      ("bug", J.String (bug_name c.cc_bug));
      ("scenario", J.String c.cc_scenario);
      ("impl", J.String "microcode");
      ("seed", J.Int c.cc_seed);
      ("scrambles", J.Int c.cc_scrambles);
      ("condition", J.Int c.cc_condition);
      ("schedule", Fuzz.schedule_to_json c.cc_schedule);
    ]

let corpus_case_of_json json =
  let ( let* ) = Result.bind in
  let field name =
    match json with
    | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Fmt.str "corpus case: missing field %S" name))
    | _ -> Error "corpus case: not an object"
  in
  let int name =
    let* v = field name in
    match v with J.Int n -> Ok n | _ -> Error (Fmt.str "corpus case: %S not an int" name)
  in
  let str name =
    let* v = field name in
    match v with
    | J.String s -> Ok s
    | _ -> Error (Fmt.str "corpus case: %S not a string" name)
  in
  let* schema = str "schema" in
  let* () =
    if String.equal schema "rushby-corpus/1" then Ok ()
    else Error (Fmt.str "corpus case: unknown schema %S" schema)
  in
  let* bug_s = str "bug" in
  let* bug =
    match bug_of_name bug_s with
    | Some b -> Ok b
    | None -> Error (Fmt.str "corpus case: unknown bug %S" bug_s)
  in
  let* scenario = str "scenario" in
  let* seed = int "seed" in
  let* scrambles = int "scrambles" in
  let* condition = int "condition" in
  let* sched_json = field "schedule" in
  let* schedule = Fuzz.schedule_of_json sched_json in
  Ok
    {
      cc_bug = bug;
      cc_scenario = scenario;
      cc_seed = seed;
      cc_scrambles = scrambles;
      cc_condition = condition;
      cc_schedule = schedule;
    }

let replay_corpus_case ?(impl = Sue.Microcode) c =
  match Scenarios.find c.cc_scenario with
  | None -> Error (Fmt.str "corpus case %s: unknown scenario %S" (bug_name c.cc_bug) c.cc_scenario)
  | Some sc ->
    let check bugs =
      Fuzz.check_schedule ~bugs ~impl ~scrambles:c.cc_scrambles ~seed:c.cc_seed
        ~alphabet:sc.Scenarios.alphabet sc.Scenarios.cfg c.cc_schedule
    in
    let fixed = check [] in
    if not (Separability.verified fixed) then
      Error
        (Fmt.str "corpus case %s: fixed kernel fails conditions %s" (bug_name c.cc_bug)
           (String.concat ", "
              (List.map string_of_int (Separability.failing_conditions fixed))))
    else
      let buggy = check [ c.cc_bug ] in
      if List.mem c.cc_condition (Separability.failing_conditions buggy) then Ok ()
      else
        Error
          (Fmt.str "corpus case %s: condition %d no longer fails (got: %s)" (bug_name c.cc_bug)
             c.cc_condition
             (String.concat ", "
                (List.map string_of_int (Separability.failing_conditions buggy))))

(* ------------------------------------------------------------------ *)
(* Minimizing randomized counterexamples                               *)

type minimized = {
  mz_conditions : int list;
  mz_schedule : Fuzz.schedule;
  mz_seed : int;
  mz_scrambles : int;
  mz_shrink_steps : int;
}

let minimize_randomized ?(bugs = []) ?(impl = Sue.Microcode) ?(params = Randomized.default_params)
    ~seed ~inputs ~conditions cfg =
  let failing ~scrambles sched =
    Separability.failing_conditions
      (Fuzz.check_schedule ~bugs ~impl ~scrambles ~seed:(seed + 1) ~alphabet:inputs cfg sched)
  in
  let walks = Randomized.sampled_walks ~bugs ~impl ~params ~seed ~inputs cfg in
  let fresh =
    match inputs with
    | [] -> []
    | _ ->
      Gen.generate ~seed:(seed + 2) ~count:8
        (Gen.schedule ~alphabet:inputs ~max_len:params.Randomized.walk_len)
  in
  let candidates = walks @ fresh in
  let scr = params.Randomized.scrambles in
  let levels = [ scr; (scr * 2) + 1; (scr * 4) + 3 ] in
  let find_repro c =
    let rec go = function
      | [] -> None
      | scr :: rest -> (
        match List.find_opt (fun w -> List.mem c (failing ~scrambles:scr w)) candidates with
        | Some w -> Some (scr, w)
        | None -> go rest)
    in
    go levels
  in
  let minimize_one c (scrambles, w) =
    let still_failing w' = List.mem c (failing ~scrambles w') in
    let w', steps = Shrink.minimize ~still_failing Shrink.schedule w in
    {
      mz_conditions = failing ~scrambles w';
      mz_schedule = w';
      mz_seed = seed + 1;
      mz_scrambles = scrambles;
      mz_shrink_steps = steps;
    }
  in
  conditions
  |> List.filter_map (fun c -> Option.map (minimize_one c) (find_repro c))
  |> List.sort_uniq compare
