module Prng = Sep_util.Prng
module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Machine = Sep_hw.Machine
module Isa = Sep_hw.Isa
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Regime_kernel = Sep_core.Regime_kernel
module Net = Sep_distributed.Net
module Fed = Sep_fed.Fed

let inert_program = [ Isa.Label "loop"; Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

let solo_config (cfg : Isa.stmt list Config.t) keep =
  {
    cfg with
    Config.regimes =
      List.map
        (fun (r : _ Config.regime) ->
          if Colour.equal r.Config.colour keep then r else { r with Config.program = inert_program })
        cfg.Config.regimes;
  }

(* Flow-controlled drive, as in the fault campaign: a scheduled word
   queues until its Rx latch is free, so every regime consumes the same
   word sequence however the processor is shared — without the handshake
   the external world doubles as a clock and re-imports the timing
   channel the paper excludes. *)
let observed_tx ?(bugs = []) ?(impl = Sue.Microcode) ?(settle = 48) cfg ~schedule =
  let t = Sue.build ~bugs ~impl cfg in
  let m = Sue.machine t in
  let ndev = Machine.num_devices m in
  let queues = Array.init ndev (fun _ -> Queue.create ()) in
  let sched = Array.of_list schedule in
  let flat = ref [] in
  let steps = Array.length sched + settle in
  for n = 0 to steps - 1 do
    if n < Array.length sched then
      List.iter
        (fun (d, w) ->
          if d >= 0 && d < ndev && Machine.device_kind m d = Machine.Rx then Queue.add w queues.(d))
        sched.(n);
    let input =
      List.concat
        (List.init ndev (fun d ->
             if (not (Queue.is_empty queues.(d))) && snd (Machine.device_regs m d) = 0 then
               [ (d, Queue.pop queues.(d)) ]
             else []))
    in
    List.iter (fun o -> flat := o :: !flat) (Sue.step t input)
  done;
  (* [flat] holds emissions newest-first, so pushing in that order leaves
     each device's list oldest-first already *)
  let per_dev = Array.make ndev [] in
  List.iter (fun (d, w) -> per_dev.(d) <- w :: per_dev.(d)) !flat;
  List.concat
    (List.init ndev (fun d ->
         if Machine.device_kind m d = Machine.Tx then [ (d, per_dev.(d)) ] else []))

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let prefix_compatible a b = is_prefix a b || is_prefix b a

let solo_check ?impl ?settle cfg ~schedule =
  let whole = observed_tx ?impl ?settle cfg ~schedule in
  (* device ownership is part of the static configuration, so any build
     answers for all runs *)
  let probe = Sue.build cfg in
  List.concat_map
    (fun colour ->
      let solo = observed_tx ?impl ?settle (solo_config cfg colour) ~schedule in
      List.filter_map
        (fun (d, whole_words) ->
          if not (Colour.equal (Sue.device_owner probe d) colour) then None
          else
            let solo_words = try List.assoc d solo with Not_found -> [] in
            if prefix_compatible whole_words solo_words then None
            else
              Some
                ( colour,
                  d,
                  Fmt.str "device %d: whole run says %a, solo run says %a" d
                    Fmt.(Dump.list int)
                    whole_words
                    Fmt.(Dump.list int)
                    solo_words ))
        whole)
    (Config.colours cfg)

(* -- Kernel vs. the distributed substrate ------------------------------------ *)

(* Stateless component archetypes, parameterized by their outgoing wires. *)
let fan_out ~name outgoing =
  Component.stateless ~name (fun ev ->
      let m = match ev with Component.Recv (_, m) | Component.External m -> m in
      Component.Output m :: List.map (fun w -> Component.Send (w, name ^ ":" ^ m)) outgoing)

let relay ~name outgoing =
  Component.stateless ~name (function
    | Component.External m -> List.map (fun w -> Component.Send (w, m)) outgoing
    | Component.Recv (_, m) -> [ Component.Output ("got:" ^ m) ])

let sink ~name _outgoing =
  Component.stateless ~name (function
    | Component.External m -> [ Component.Output ("ext:" ^ m) ]
    | Component.Recv (w, m) -> [ Component.Output (Fmt.str "w%d:%s" w m) ])

let gen_case rng =
  let n = Prng.int_in rng 2 4 in
  let colours = List.init n Colour.of_index in
  let wire_specs =
    List.filter_map
      (fun _ ->
        let s = Prng.int rng n in
        let d = Prng.int rng n in
        if s = d then None else Some (List.nth colours s, List.nth colours d, Prng.int_in rng 1 3))
      (List.init (Prng.int_in rng 1 4) (fun i -> i))
  in
  let outgoing_of c =
    List.concat
      (List.mapi (fun i (s, _, _) -> if Colour.equal s c then [ i ] else []) wire_specs)
  in
  let parts =
    List.map
      (fun c ->
        let name = Colour.name c in
        let make = Prng.choose rng [| fan_out; relay; sink |] in
        (c, make ~name (outgoing_of c)))
      colours
  in
  let topo = Topology.make ~parts ~wires:wire_specs in
  let colour_arr = Array.of_list colours in
  let externals_table =
    Array.init 24 (fun _ ->
        List.init (Prng.int rng 3) (fun _ ->
            (Prng.choose rng colour_arr, Fmt.str "m%d" (Prng.int rng 8))))
  in
  let externals n = if n < Array.length externals_table then externals_table.(n) else [] in
  (topo, externals)

let kernel_vs_net_case ?(kernel_bugs = []) ~seed ~steps () =
  let rng = Prng.create seed in
  let topo, externals = gen_case rng in
  let net = Net.build topo in
  let kern = Regime_kernel.build ~bugs:kernel_bugs topo in
  Net.run net ~steps ~externals;
  Regime_kernel.run kern ~steps ~externals;
  let mismatches =
    List.filter_map
      (fun c ->
        let a = Net.trace net c in
        let b = Regime_kernel.trace kern c in
        if List.length a = List.length b && List.for_all2 Component.equal_obs a b then None
        else
          Some
            (Fmt.str "%s: net trace %a, kernel trace %a (seed %d)" (Colour.name c)
               Fmt.(Dump.list Component.pp_obs)
               a
               Fmt.(Dump.list Component.pp_obs)
               b seed))
      (Topology.colours topo)
  in
  match mismatches with [] -> Ok () | m :: _ -> Error m

let kernel_vs_net ~seed ~cases ~steps =
  let rng = Prng.create seed in
  let mismatches = ref [] in
  for _ = 1 to cases do
    let case_seed = Int64.to_int (Prng.bits64 rng) land 0x3fffffff in
    match kernel_vs_net_case ~seed:case_seed ~steps () with
    | Ok () -> ()
    | Error m -> mismatches := m :: !mismatches
  done;
  (cases, List.rev !mismatches)

(* -- Kernel vs. the reliable net over a lossy link ---------------------------- *)

type reliable_case = {
  rc_mismatches : string list;
  rc_stats : Net.link_stats;
  rc_delivered : int;  (* words received across the lossy run *)
  rc_retransmit_queue : int;  (* net.retransmit_queue gauge at run end *)
}

(* A relay pipeline A -> B -> C, driven at one word every three steps: slow
   enough that the lossless substrates never drop on a full wire. That
   throttle matters — the reliable protocol queues without bound while a
   bare wire sheds load, and backpressure drops are a legitimate
   difference between the two, not the separation failure this oracle
   hunts. *)
let reliable_topology () =
  let a = Colour.make "A" and b = Colour.make "B" and c = Colour.make "C" in
  let parts =
    [ (a, relay ~name:"A" [ 0 ]); (b, fan_out ~name:"B" [ 1 ]); (c, sink ~name:"C" []) ]
  in
  (Topology.make ~parts ~wires:[ (a, b, 2); (b, c, 2) ], a)

let recvs trace =
  List.filter_map
    (function Component.Saw (Component.Recv (w, m)) -> Some (w, m) | _ -> None)
    trace

let per_wire pairs =
  List.fold_left
    (fun acc (w, m) ->
      let cur = try List.assoc w acc with Not_found -> [] in
      (w, cur @ [ m ]) :: List.remove_assoc w acc)
    [] pairs

let kernel_vs_reliable_net_case ?(link = Net.default_link_model) ~seed ~steps () =
  let topo, a = reliable_topology () in
  let net = Net.build ~link:{ link with Net.lm_seed = seed } topo in
  let kern = Regime_kernel.build topo in
  let externals n = if n mod 3 = 0 then [ (a, Fmt.str "m%d" (n / 3)) ] else [] in
  Net.run net ~steps ~externals;
  Regime_kernel.run kern ~steps ~externals;
  (* The reliable channel preserves content and order but not timing, and
     the run may end with frames still in flight — so each wire's lossy
     delivery must be a prefix of the ideal's, never something else. *)
  let delivered = ref 0 in
  let mismatches =
    List.concat_map
      (fun c ->
        let ideal = per_wire (recvs (Regime_kernel.trace kern c)) in
        let got = per_wire (recvs (Net.trace net c)) in
        List.filter_map
          (fun (w, got_words) ->
            delivered := !delivered + List.length got_words;
            let ideal_words = try List.assoc w ideal with Not_found -> [] in
            if is_prefix got_words ideal_words then None
            else
              Some
                (Fmt.str "%s wire %d: lossy run says %a, ideal says %a (seed %d)" (Colour.name c)
                   w
                   Fmt.(Dump.list string)
                   got_words
                   Fmt.(Dump.list string)
                   ideal_words seed))
          got)
      (Topology.colours topo)
  in
  let rc_retransmit_queue =
    match Sep_obs.Telemetry.find_gauge (Net.telemetry net) "net.retransmit_queue" with
    | Some g -> int_of_float (Sep_obs.Telemetry.gauge_value g)
    | None -> 0
  in
  { rc_mismatches = mismatches; rc_stats = Net.link_stats net; rc_delivered = !delivered;
    rc_retransmit_queue }

let kernel_vs_reliable_net ?link ~seed ~cases ~steps () =
  let rng = Prng.create seed in
  List.init cases (fun _ ->
      let case_seed = Int64.to_int (Prng.bits64 rng) land 0x3fffffff in
      kernel_vs_reliable_net_case ?link ~seed:case_seed ~steps ())

(* -- The federation vs the monolithic ideal ----------------------------------- *)

(* The federation's ideal is the same uncut global configuration on ONE
   kernel, driven by the same input drip under the same flow-control
   handshake the federation applies at its boundary. Crossing a physical
   wire (and surviving a failover or a partition) may cost latency, never
   words: every global device's federated output stream must be
   prefix-compatible with the ideal's. *)
let ideal_outputs (spec : Fed.spec) ~steps =
  let t = Sue.build spec.Fed.fs_cfg in
  let m = Sue.machine t in
  let alphabet = Array.of_list spec.Fed.fs_alphabet in
  let drip n =
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []
  in
  let ndev = Machine.num_devices m in
  let queues = Array.init ndev (fun _ -> Queue.create ()) in
  let flat = ref [] in
  for n = 0 to steps - 1 do
    List.iter (fun (d, w) -> if d >= 0 && d < ndev then Queue.add w queues.(d)) (drip n);
    let input =
      List.concat
        (List.init ndev (fun d ->
             if (not (Queue.is_empty queues.(d))) && snd (Machine.device_regs m d) = 0 then
               [ (d, Queue.pop queues.(d)) ]
             else []))
    in
    List.iter (fun o -> flat := o :: !flat) (Sue.step t input)
  done;
  let per_dev = Array.make ndev [] in
  List.iter (fun (d, w) -> per_dev.(d) <- w :: per_dev.(d)) !flat;
  List.init ndev (fun d -> (d, per_dev.(d)))

let federation_vs_ideal ?plan ?(steps = 600) (spec : Fed.spec) =
  let t = Fed.build ?plan spec in
  Fed.run t ~steps;
  let fed = Fed.finish t in
  let ideal = ideal_outputs spec ~steps in
  List.filter_map
    (fun (d, fed_words) ->
      let ideal_words = try List.assoc d ideal with Not_found -> [] in
      if prefix_compatible fed_words ideal_words then None
      else
        Some
          ( Fed.device_owner_colour t d,
            d,
            Fmt.str "device %d: federation says %a, ideal says %a" d
              Fmt.(Dump.list int)
              fed_words
              Fmt.(Dump.list int)
              ideal_words ))
    fed.Fed.fob_outputs
