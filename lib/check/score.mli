(** Mutant kill-rate scoring: how fast does each checking strategy catch
    each seeded kernel bug?

    For every {!Sep_core.Mutants.catalogue} entry the scorer runs three
    detectors and records the work each needed:

    - {e exhaustive} — {!Sep_core.Separability.check} over the reachable
      states of the mutant scenario, stopping at the first failure;
    - {e randomized} — {!Sep_core.Randomized.check} with escalating walk
      counts until the predicted condition fires;
    - {e coverage} — the {!Fuzz} corpus engine over {e workloads}
      (generated per-regime programs plus an input schedule) on the mutant
      scenario's topology, stopping when the predicted condition fires and
      then shrinking the killing workload to a minimal program.

    The catalogue predicts a primary condition per bug; a bug counts as
    killed only when {e that} condition fails, so the table doubles as a
    check that each of the six conditions retains discriminating power
    under every strategy. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Mutants = Sep_core.Mutants
module Separability = Sep_core.Separability
module Randomized = Sep_core.Randomized

val bug_name : Sue.bug -> string
(** The kebab-case rendering of {!Sue.pp_bug}. *)

val bug_of_name : string -> Sue.bug option

(** {1 Workloads} *)

type workload = {
  wl_progs : (Colour.t * Gen.action list) list;  (** per-regime action programs *)
  wl_sched : Fuzz.schedule;
}
(** What the coverage strategy fuzzes: every regime's program (in the
    {!Gen.action} vocabulary, so it shrinks cleanly) plus the external
    input schedule driven at the resulting configuration. *)

val workload_instrs : workload -> int
(** Total machine words of all rendered regime programs — the size that
    killing workloads are minimized against. *)

val pp_workload : Format.formatter -> workload -> unit

val apply_workload : Sep_hw.Isa.stmt list Config.t -> workload -> Sep_hw.Isa.stmt list Config.t
(** The scenario topology with each regime's program replaced by the
    workload's rendering (partitions grown to fit). Devices, channels and
    quantum are untouched. *)

(** {1 Kill records} *)

type strategy =
  | Exhaustive
  | Randomized
  | Coverage

val strategy_name : strategy -> string

type kill = {
  kl_bug : Sue.bug;
  kl_scenario : string;
  kl_strategy : strategy;
  kl_detected : bool;  (** the predicted condition fired *)
  kl_condition : int;  (** the predicted condition, 1–6 *)
  kl_states : int;  (** states examined by the detecting (or final) check *)
  kl_checks : int;  (** condition instances evaluated by that check *)
  kl_execs : int;  (** runs performed: 1, walks sampled, or fuzz executions *)
  kl_workload : workload option;  (** coverage only: the minimized killing workload *)
}

val kill_to_json : kill -> Sep_util.Json.t
val pp_kill : Format.formatter -> kill -> unit

val exhaustive_kill : ?impl:Sue.impl -> ?state_limit:int -> Mutants.expectation -> kill

val randomized_kill :
  ?impl:Sue.impl -> ?max_walks:int -> ?jobs:int -> seed:int -> Mutants.expectation -> kill
(** Walk counts escalate 1, 2, 4, … up to [max_walks] (default 32);
    [kl_execs] is the cumulative number of walks sampled. [jobs] is the
    walk parallelism of each {!Sep_core.Randomized.check}. *)

val coverage_kill :
  ?impl:Sue.impl -> ?jobs:int -> seed:int -> budget:int -> Mutants.expectation -> kill
(** Coverage-guided workload fuzz with early stop on detection; the
    killing workload is shrunk ({!Shrink.minimize}) before being
    recorded. [kl_execs] is the number of workload executions spent.
    [jobs] is the {!Fuzz.engine_exec} execution parallelism. *)

val kill_table : ?impl:Sue.impl -> ?jobs:int -> seed:int -> budget:int -> unit -> kill list
(** All three strategies over the whole catalogue, exhaustive first.
    Each (mutant, strategy) cell is one task of a {!Sep_par.Par.map} over
    up to [jobs] domains (inner engines then run sequentially); the table
    is bit-identical for any job count. *)

(** {1 Regression corpus} *)

type corpus_case = {
  cc_bug : Sue.bug;
  cc_scenario : string;
  cc_seed : int;  (** the {!Fuzz.check_schedule} seed for replay *)
  cc_scrambles : int;
  cc_condition : int;  (** the condition the schedule makes fail *)
  cc_schedule : Fuzz.schedule;
}
(** A seed for [test/corpus/]: a minimized input schedule that makes the
    named bug's predicted condition fail on its catalogue scenario — and
    that the fixed kernel survives. *)

val corpus_case : ?impl:Sue.impl -> seed:int -> Mutants.expectation -> corpus_case option
val corpus_case_to_json : corpus_case -> Sep_util.Json.t
val corpus_case_of_json : Sep_util.Json.t -> (corpus_case, string) result

val replay_corpus_case : ?impl:Sue.impl -> corpus_case -> (unit, string) result
(** [Ok ()] iff the fixed kernel verifies under the case's schedule {e
    and} the seeded bug still makes the recorded condition fail. *)

(** {1 Minimizing randomized counterexamples} *)

type minimized = {
  mz_conditions : int list;  (** failing conditions the schedule reproduces *)
  mz_schedule : Fuzz.schedule;
  mz_seed : int;  (** {!Fuzz.check_schedule} seed for replay *)
  mz_scrambles : int;
  mz_shrink_steps : int;
}

val minimize_randomized :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?params:Randomized.params -> seed:int ->
  inputs:Sue.input list -> conditions:int list -> Sep_hw.Isa.stmt list Config.t ->
  minimized list
(** When {!Randomized.check} fails, recover small standalone
    counterexamples: replay the walks the failing run executed (same
    [params] and [seed], hence the same schedules), find for each failing
    condition a walk that reproduces it under {!Fuzz.check_schedule}
    (escalating the scramble count if needed, falling back to fresh
    generated schedules), and shrink it. Conditions nothing reproduces
    are omitted; duplicate minimized schedules are merged. *)
