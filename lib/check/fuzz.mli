(** Coverage-guided fuzzing of the SUE kernel.

    The coverage signal is the PR-1 telemetry vocabulary: the {!Sue.kstats}
    counters (bucketed by binary order of magnitude) and the
    {!Sep_core.Ktrace} event kinds observed during a run, enriched with the
    colour / device / trap number they concern, plus each regime's final
    status. An input schedule that lights a {e new} key joins the corpus;
    mutation draws from corpus members. Every executed schedule is also
    checked against the six Proof-of-Separability conditions over its
    sampled states (walk states plus scrambled Phi-partners), and every
    corpus member additionally against cut-wire solo isolation
    ({!Diff.solo_check}).

    Everything is seeded: the same seed reproduces the same corpus, the
    same keys and the same JSONL report, byte for byte. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Isa = Sep_hw.Isa
module Separability = Sep_core.Separability

type schedule = Sue.input list
(** One external-input schedule: step [n] delivers element [n] (the kernel
    then settles on empty input). *)

val schedule_to_json : schedule -> Sep_util.Json.t
val schedule_of_json : Sep_util.Json.t -> (schedule, string) result

(** {1 One execution} *)

type exec = {
  ex_keys : string list;  (** sorted, duplicate-free coverage keys *)
  ex_report : Separability.report;  (** the six conditions over the sampled states *)
}

val states_of_schedule :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?scrambles:int -> ?settle:int -> seed:int ->
  Isa.stmt list Config.t -> schedule -> Sue.t list
(** The state sample of one schedule-driven run: a snapshot after every
    step (including [settle], default 24, trailing empty-input steps),
    each paired per colour with [scrambles] (default 2) scrambled
    Phi-partners drawn from a generator seeded by [seed]. *)

val execute :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?scrambles:int -> ?settle:int -> seed:int ->
  alphabet:Sue.input list -> Isa.stmt list Config.t -> schedule -> exec
(** Run once, collecting coverage keys and the six-condition report over
    the run's sampled states. *)

val check_schedule :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?scrambles:int -> ?settle:int -> seed:int ->
  alphabet:Sue.input list -> Isa.stmt list Config.t -> schedule -> Separability.report
(** Just the condition report of {!execute}. *)

type online = {
  on_report : Separability.report;  (** agrees with {!check_schedule} on the same run *)
  on_first_violation : (int * Separability.failure) option;
      (** the kernel step whose state sample first violated, and the failure *)
}

val check_schedule_online :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?scrambles:int -> ?settle:int -> seed:int ->
  alphabet:Sue.input list -> Isa.stmt list Config.t -> schedule -> online
(** {!check_schedule} through the {!Sep_core.Monitor}: the same state
    sample streams through the incremental checker with per-step
    attribution, so a violating schedule is pinned to the first kernel
    step (0 = initial state, [n] = after step [n]) whose sample exposes
    it. The report matches the offline one on states, checks and
    per-condition counts. *)

val mutate_schedule : alphabet:Sue.input list -> max_len:int -> Sep_util.Prng.t -> schedule -> schedule
(** One corpus mutation: append, insert, delete, replace or duplicate a
    tail of alphabet elements. *)

(** {1 The corpus engine} *)

type 'a entry = {
  en_id : int;  (** execution index that admitted this input *)
  en_input : 'a;
  en_new_keys : string list;  (** the keys this input lit first *)
}

type 'a campaign = {
  cp_seed : int;
  cp_budget : int;
  cp_execs : int;  (** executions actually performed *)
  cp_entries : 'a entry list;  (** the corpus, admission order *)
  cp_keys : string list;  (** all keys lit, sorted *)
  cp_stopped : bool;  (** the [stop] predicate ended the campaign early *)
}

val engine_exec :
  ?jobs:int -> seed:int -> budget:int -> seeds:'a list ->
  mutate:(Sep_util.Prng.t -> 'a -> 'a) -> exec:('a -> 'r) -> keys_of:('r -> string list) ->
  ?stop:('a -> 'r -> bool) -> ?witness:('a -> 'r -> unit) -> unit -> 'a campaign
(** The generic corpus loop, split for deterministic parallelism: [exec]
    (which must be pure — it runs on worker domains) executes one input; a
    sequential admission pass then walks results in generation order,
    calling [witness] (side effects welcome — always the spawning domain),
    admitting inputs whose [keys_of] coverage includes an unseen key, and
    checking [stop], which ends the campaign early (the triggering input
    is recorded in the corpus).

    Candidates are generated a {e fixed-width batch} at a time — width 8,
    independent of [jobs] — sequentially from the engine PRNG against the
    corpus snapshot at batch start, then executed on up to [jobs] domains
    ({!Sep_par.Par.map}, default {!Sep_par.Par.default_jobs}). The
    campaign, including corpus and witness order, is therefore
    bit-identical for any job count. Mutation draws are round-robin
    biased toward recent admissions, and the loop runs until [budget]
    executions are spent. *)

val engine :
  seed:int -> budget:int -> seeds:'a list -> mutate:(Sep_util.Prng.t -> 'a -> 'a) ->
  coverage:('a -> string list) -> ?stop:('a -> bool) -> unit -> 'a campaign
(** {!engine_exec} at [jobs = 1] with [exec = coverage] — for callers
    whose coverage function has side effects and so cannot cross domains.
    Executions happen batchwise, so [coverage] may run on inputs the
    budget or a [stop] later discards. *)

(** {1 Fuzzing a scenario} *)

type failure = {
  fl_schedule : schedule;
  fl_conditions : int list;  (** failing conditions, when the report failed *)
  fl_isolation : (Colour.t * int * string) list;  (** solo-isolation divergences *)
}

type scenario_result = {
  sr_label : string;
  sr_seed : int;
  sr_campaign : schedule campaign;
  sr_failures : failure list;  (** empty on a correct kernel *)
}

val fuzz_scenario :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?check_isolation:bool -> ?jobs:int -> seed:int ->
  budget:int -> Sep_core.Scenarios.instance -> scenario_result
(** Coverage-guided fuzz of one scenario: seeds are the empty schedule,
    each single alphabet element and a cycling drip; every execution is
    condition-checked, every corpus member isolation-checked (unless
    [check_isolation] is false). Executions and isolation checks run on
    up to [jobs] domains; the result is bit-identical for any job
    count. *)

val scenario_result_to_jsonl : scenario_result -> string
(** One [fuzz-corpus] line per corpus entry, then one [fuzz-scenario]
    summary line. Deterministic for a fixed seed. *)

(** {1 Crash-restart exploration}

    The recovery subsystem widens the state space the six conditions must
    cover: parked states, restored states, and everything a supervisor
    does in between. This fuzzer explores that space: inputs pair an
    external schedule with {e crash points} (step, victim) — a save-area
    corruption that parks the victim at its next switch — and every run
    executes under a {!Sep_recover.Recover} supervisor, so coverage keys
    like [e:restarted:*] and [k:restarts:*] pull the corpus toward
    interesting crash-restart interleavings. *)

type crash = int * Colour.t
(** Corrupt the victim's save area immediately before this step. *)

type recovery_input = {
  ri_sched : schedule;
  ri_crashes : crash list;
}

val execute_recovery :
  ?policy:Sep_recover.Recover.policy -> ?scrambles:int -> ?settle:int -> seed:int ->
  alphabet:Sue.input list -> Isa.stmt list Config.t -> recovery_input -> exec
(** One run under a recovery supervisor ({!Sep_recover.Recover.tick}
    after every step). States are sampled on both sides of every
    crash-restart boundary — after each step (catching parked states) and
    after each supervision round that acted (catching restored states) —
    so the condition check quantifies over the full recovery cycle. *)

val mutate_crashes :
  colours:Colour.t list -> max_steps:int -> Sep_util.Prng.t -> crash list -> crash list
(** Add, drop, move or re-target a crash point (at most three per
    input). *)

type recovery_failure = {
  rf_schedule : schedule;
  rf_crashes : crash list;
  rf_conditions : int list;
}

type recovery_result = {
  rv_label : string;
  rv_seed : int;
  rv_campaign : recovery_input campaign;
  rv_failures : recovery_failure list;  (** empty when recovery preserves separability *)
}

val fuzz_recovery :
  ?policy:Sep_recover.Recover.policy -> ?jobs:int -> seed:int -> budget:int ->
  Sep_core.Scenarios.instance -> recovery_result
(** Coverage-guided crash-restart fuzz of one scenario: seeds crash each
    colour alone and all colours together over a drip schedule; mutation
    flips between perturbing the schedule and perturbing the crash
    points. *)
