(** Differential properties: SUE against the distributed ideal.

    Two executable forms of the paper's central claim ("the system as a
    whole is indistinguishable from one in which each regime has a machine
    of its own"):

    - {b solo isolation} at machine level: run a cut configuration whole,
      then once per colour with every {e other} regime replaced by an
      inert yield loop — the closest a shared {!Sue} machine gets to
      giving a regime a processor of its own. A colour's observable trace
      (per-Tx-device word sequences, delivered flow-controlled so the
      external world cannot double as a clock) must agree up to prefix:
      sharing the processor may slow a regime, never change what it says.
    - {b kernel vs. net} at behavioural level: the same components and
      topology hosted on {!Sep_core.Regime_kernel} and on
      {!Sep_distributed.Net} must produce {e identical} per-colour
      observable traces on generated workloads. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Isa = Sep_hw.Isa

val inert_program : Isa.stmt list
(** [loop: Trap 0; branch loop] — the regime that does nothing but
    yield. *)

val solo_config : Isa.stmt list Config.t -> Colour.t -> Isa.stmt list Config.t
(** The same topology with every regime but one running {!inert_program}. *)

val observed_tx :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?settle:int -> Isa.stmt list Config.t ->
  schedule:Sue.input list -> (int * int list) list
(** Run the configuration under flow-controlled delivery of [schedule]
    (step [n]'s arrivals queue until their Rx latch is free) for
    [length schedule + settle] steps (settle defaults to 48) and collect,
    per Tx device id, the word sequence observed on its wire. *)

val solo_check :
  ?impl:Sue.impl -> ?settle:int -> Isa.stmt list Config.t -> schedule:Sue.input list ->
  (Colour.t * int * string) list
(** Empty when solo isolation holds: for every colour and every Tx device
    it owns, the whole-system sequence and the solo-run sequence must be
    prefix-compatible. Each violation reports (owner, device id, detail). *)

(** {1 Kernel vs. the distributed substrate} *)

val gen_case :
  Sep_util.Prng.t -> Sep_model.Topology.t * (int -> (Colour.t * string) list)
(** A generated differential case: 2–4 stateless components (fan-out,
    relay, sink) over random wires, plus an external-input schedule. *)

val kernel_vs_net_case :
  ?kernel_bugs:Sep_core.Regime_kernel.bug list -> seed:int -> steps:int -> unit ->
  (unit, string) result
(** Host one generated case on both substrates and compare every colour's
    observable trace for exact equality. [kernel_bugs] seed the kernel
    substrate (to show the differential detects a kernel that fails at
    its one job). *)

val kernel_vs_net : seed:int -> cases:int -> steps:int -> int * string list
(** Run [cases] independent cases; returns (cases run, mismatch
    messages — empty when the kernel is indistinguishable). *)

(** {1 Kernel vs. the reliable net over a lossy link}

    The same pinning with the physical ideal degraded: the wire drops,
    duplicates and reorders, and {!Sep_distributed.Net}'s reliable
    channel protocol (sequence numbers, acks, retransmission with capped
    backoff) must hide all of it. Content and order survive; timing does
    not, and the run may end with frames still in flight — so each wire's
    lossy delivery must be a {e prefix} of the lossless ideal's, never
    different words. *)

type reliable_case = {
  rc_mismatches : string list;  (** empty when the oracle held *)
  rc_stats : Sep_distributed.Net.link_stats;
  rc_delivered : int;  (** words received across the lossy run *)
  rc_retransmit_queue : int;
      (** the net's ["net.retransmit_queue"] gauge at run end: frames
          still sitting in sender windows awaiting acks *)
}

val kernel_vs_reliable_net_case :
  ?link:Sep_distributed.Net.link_model -> seed:int -> steps:int -> unit -> reliable_case
(** One case: a relay pipeline [A -> B -> C] driven at one word every
    three steps (throttled so the lossless substrates never shed load —
    backpressure drops are a legitimate difference from an unboundedly
    queueing reliable channel, not a separation failure), hosted on
    {!Sep_core.Regime_kernel} and on the reliable net under [link]
    (default {!Sep_distributed.Net.default_link_model}; its [lm_seed] is
    replaced by [seed]). *)

val kernel_vs_reliable_net :
  ?link:Sep_distributed.Net.link_model ->
  seed:int -> cases:int -> steps:int -> unit -> reliable_case list
(** [cases] independent cases, link seeds drawn from [seed]. *)

(** {1 The federation vs the monolithic ideal}

    The third differential: the multi-shard federation
    ({!Sep_fed.Fed}) against the same uncut global configuration on one
    kernel, driven by the same input drip under the same flow-control
    handshake. Crossing a physical wire may cost latency, never words. *)

val federation_vs_ideal :
  ?plan:Sep_robust.Fault_plan.t -> ?steps:int -> Sep_fed.Fed.spec ->
  (Colour.t * int * string) list
(** Empty when the federation is indistinguishable from the ideal: every
    global device's federated output stream is prefix-compatible with the
    monolithic run's ([steps] defaults to 600). With [plan], the same
    oracle under faults — meaningful for crash and partition plans, whose
    delay-only semantics owe prefix compatibility even mid-outage; a
    tamper plan legitimately destroys words and will be reported. *)
