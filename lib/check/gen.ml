module Prng = Sep_util.Prng
module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module J = Sep_util.Json

type 'a t = Prng.t -> 'a

let run ~seed g = g (Prng.create seed)

let generate ~seed ~count g =
  let rng = Prng.create seed in
  List.init count (fun _ -> g rng)

let return v _ = v
let map f g rng = f (g rng)
let map2 f a b rng =
  let x = a rng in
  let y = b rng in
  f x y
let bind g f rng = f (g rng) rng
let pair a b = map2 (fun x y -> (x, y)) a b
let int bound rng = Prng.int rng bound
let int_in lo hi rng = Prng.int_in rng lo hi
let bool rng = Prng.bool rng

let oneof gens rng =
  let arr = Array.of_list gens in
  Prng.choose rng arr rng

let oneof_val vs rng = Prng.choose rng (Array.of_list vs)

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> if w <= 0 then invalid_arg "Gen.frequency" else acc + w) 0 weighted in
  let pick = Prng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (w, g) :: rest -> if pick < acc + w then g rng else go (acc + w) rest
  in
  go 0 weighted

let list_len n g rng = List.init n (fun _ -> g rng)
let list ~max_len g rng = list_len (Prng.int rng (max_len + 1)) g rng

let int_any rng =
  match Prng.int rng 8 with
  | 0 -> 0
  | 1 | 2 -> Prng.int_in rng (-32) 32
  | 3 -> max_int
  | 4 -> min_int
  | 5 -> Prng.int_in rng (-100000) 100000
  | _ -> Int64.to_int (Prng.bits64 rng)

let float_finite rng =
  match Prng.int rng 6 with
  | 0 -> 0.0
  | 1 -> float_of_int (Prng.int_in rng (-50) 50)
  | 2 -> float_of_int (Prng.int_in rng (-10000) 10000) /. 128.
  | 3 -> Prng.float rng 1.0
  | 4 -> ldexp (Prng.float rng 1.0 +. 1.0) (Prng.int_in rng (-300) 300)
  | _ -> -.ldexp (Prng.float rng 1.0 +. 1.0) (Prng.int_in rng (-30) 30)

(* Valid UTF-8 by construction: pick code points from printable ASCII,
   control characters, Latin, CJK and supplementary ranges. *)
let codepoint rng =
  match Prng.int rng 8 with
  | 0 | 1 | 2 | 3 -> Prng.int_in rng 0x20 0x7E
  | 4 -> Prng.int_in rng 0x00 0x1F
  | 5 -> Prng.int_in rng 0xA0 0x2FF
  | 6 -> Prng.int_in rng 0x4E00 0x4EFF
  | _ -> Prng.int_in rng 0x1F300 0x1F6FF

let utf8_add buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let utf8_string ~max_len rng =
  let n = Prng.int rng (max_len + 1) in
  let buf = Buffer.create (n * 2) in
  for _ = 1 to n do
    utf8_add buf (codepoint rng)
  done;
  Buffer.contents buf

let rec json_value depth rng =
  let leaf =
    [
      (2, return J.Null);
      (3, map (fun b -> J.Bool b) bool);
      (6, map (fun n -> J.Int n) int_any);
      (4, map (fun f -> J.Float f) float_finite);
      (6, map (fun s -> J.String s) (utf8_string ~max_len:12));
    ]
  in
  if depth <= 0 then frequency leaf rng
  else
    frequency
      (leaf
      @ [
          (3, map (fun vs -> J.List vs) (list ~max_len:4 (json_value (depth - 1))));
          ( 3,
            map
              (fun kvs -> J.Obj (List.mapi (fun i (k, v) -> (Fmt.str "%s%d" k i, v)) kvs))
              (list ~max_len:4 (pair (utf8_string ~max_len:6) (json_value (depth - 1)))) );
        ])
      rng

let json ?(depth = 3) () = json_value depth

let isa_instr rng =
  let reg = Prng.int rng 8 in
  let reg' = Prng.int rng 8 in
  match Prng.int rng 18 with
  | 0 -> Isa.Nop
  | 1 -> Isa.Halt
  | 2 -> Isa.Trap (Prng.int rng 256)
  | 3 -> Isa.Rti
  | 4 -> Isa.Loadi (reg, Prng.int rng 256)
  | 5 -> Isa.Load (reg, reg', Prng.int rng 64)
  | 6 -> Isa.Store (reg, reg', Prng.int rng 64)
  | 7 -> Isa.Mov (reg, reg')
  | 8 -> Isa.Add (reg, reg')
  | 9 -> Isa.Sub (reg, reg')
  | 10 -> Isa.And_ (reg, reg')
  | 11 -> Isa.Or_ (reg, reg')
  | 12 -> Isa.Xor (reg, reg')
  | 13 -> Isa.Cmp (reg, reg')
  | 14 -> Isa.Shl (reg, Prng.int rng 16)
  | 15 -> Isa.Shr (reg, Prng.int rng 16)
  | 16 -> Isa.Beq (Prng.int_in rng (-128) 127)
  | _ -> if Prng.bool rng then Isa.Bne (Prng.int_in rng (-128) 127) else Isa.Br (Prng.int_in rng (-128) 127)

(* -- Regime workloads -------------------------------------------------------- *)

type arith =
  | Add
  | Sub
  | Xor
  | And_
  | Or_

type action =
  | Set of int * int
  | Arith of arith * int * int
  | Emit of int * int
  | Poll of int
  | Send of int * int
  | Recv of int
  | Wait
  | Yield

let pp_arith ppf = function
  | Add -> Fmt.string ppf "add"
  | Sub -> Fmt.string ppf "sub"
  | Xor -> Fmt.string ppf "xor"
  | And_ -> Fmt.string ppf "and"
  | Or_ -> Fmt.string ppf "or"

let pp_action ppf = function
  | Set (r, v) -> Fmt.pf ppf "set r%d %d" r v
  | Arith (op, rd, rs) -> Fmt.pf ppf "%a r%d r%d" pp_arith op rd rs
  | Emit (slot, r) -> Fmt.pf ppf "emit slot%d r%d" slot r
  | Poll slot -> Fmt.pf ppf "poll slot%d" slot
  | Send (ch, r) -> Fmt.pf ppf "send ch%d r%d" ch r
  | Recv ch -> Fmt.pf ppf "recv ch%d" ch
  | Wait -> Fmt.string ppf "wait"
  | Yield -> Fmt.string ppf "yield"

type caps = {
  rx_slots : int list;
  tx_slots : int list;
  send_chans : int list;
  recv_chans : int list;
}

let caps_of_regime (cfg : _ Config.t) colour =
  let regime =
    List.find (fun (r : _ Config.regime) -> Colour.equal r.Config.colour colour) cfg.Config.regimes
  in
  let rx, tx, _ =
    List.fold_left
      (fun (rx, tx, i) kind ->
        match (kind : Machine.device_kind) with
        | Machine.Rx -> (i :: rx, tx, i + 1)
        | Machine.Tx -> (rx, i :: tx, i + 1)
        | Machine.Xform _ -> (rx, tx, i + 1))
      ([], [], 0) regime.Config.devices
  in
  let chans pick =
    List.filter_map
      (fun (ch : Config.channel) -> if Colour.equal (pick ch) colour then Some ch.Config.chan_id else None)
      cfg.Config.channels
  in
  {
    rx_slots = List.rev rx;
    tx_slots = List.rev tx;
    send_chans = chans (fun ch -> ch.Config.sender);
    recv_chans = chans (fun ch -> ch.Config.receiver);
  }

let action caps =
  let slot slots = oneof_val slots in
  let base =
    [
      (3, map2 (fun r v -> Set (r, v)) (int 6) (int 256));
      (2, bind (oneof_val [ Add; Sub; Xor; And_; Or_ ]) (fun op ->
               map2 (fun rd rs -> Arith (op, rd, rs)) (int_in 1 5) (int_in 1 5)));
      (3, return Yield);
    ]
  in
  let if_some xs weight g = if xs = [] then [] else [ (weight, g) ] in
  frequency
    (base
    @ if_some caps.tx_slots 3 (map2 (fun s r -> Emit (s, r)) (slot caps.tx_slots) (int_in 1 5))
    @ if_some caps.rx_slots 3 (map (fun s -> Poll s) (slot caps.rx_slots))
    @ if_some caps.rx_slots 1 (return Wait)
    @ if_some caps.send_chans 2 (map2 (fun c r -> Send (c, r)) (slot caps.send_chans) (int_in 1 5))
    @ if_some caps.recv_chans 2 (map (fun c -> Recv c) (slot caps.recv_chans)))

let actions caps ~max = list ~max_len:max (action caps)

let device_base = [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)) ]

let needs_base = List.exists (function Emit _ | Poll _ -> true | _ -> false)

let render acts =
  let body =
    List.concat_map
      (fun a ->
        match a with
        | Set (r, v) -> [ Isa.Instr (Isa.Loadi (r, v)) ]
        | Arith (op, rd, rs) ->
          let instr =
            match op with
            | Add -> Isa.Add (rd, rs)
            | Sub -> Isa.Sub (rd, rs)
            | Xor -> Isa.Xor (rd, rs)
            | And_ -> Isa.And_ (rd, rs)
            | Or_ -> Isa.Or_ (rd, rs)
          in
          [ Isa.Instr instr ]
        | Emit (slot, r) -> [ Isa.Instr (Isa.Store (r, 6, 2 * slot)) ]
        | Poll slot -> [ Isa.Instr (Isa.Load (2, 6, 2 * slot)) ]
        | Send (ch, r) ->
          (if r = 1 then [] else [ Isa.Instr (Isa.Mov (1, r)) ])
          @ [ Isa.Instr (Isa.Loadi (0, ch)); Isa.Instr (Isa.Trap 1) ]
        | Recv ch -> [ Isa.Instr (Isa.Loadi (0, ch)); Isa.Instr (Isa.Trap 2) ]
        | Wait -> [ Isa.Instr Isa.Halt ]
        | Yield -> [ Isa.Instr (Isa.Trap 0) ])
      acts
  in
  (if needs_base acts then device_base else [])
  @ [ Isa.Label "loop" ]
  @ body
  @ [ Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

let instr_count acts = Array.length (Isa.assemble (render acts))

let program caps ~max = map render (actions caps ~max)

(* -- Configurations ---------------------------------------------------------- *)

let config ?(max_regimes = 3) ?(max_actions = 6) () rng =
  let n = Prng.int_in rng 2 max_regimes in
  let colours = List.init n Colour.of_index in
  let devices _ =
    match Prng.int rng 4 with
    | 0 -> []
    | 1 -> [ Machine.Rx ]
    | 2 -> [ Machine.Tx ]
    | _ -> [ Machine.Rx; Machine.Tx ]
  in
  let dev_sets = List.map devices colours in
  let chan_count = Prng.int rng 3 in
  let chan_specs =
    List.filter_map
      (fun _ ->
        let s = Prng.int rng n in
        let r = Prng.int rng n in
        if s = r then None
        else Some (List.nth colours s, List.nth colours r, Prng.int_in rng 1 2))
      (List.init chan_count (fun i -> i))
  in
  (* channel capabilities need the channel list before programs are drawn,
     so build an uncut skeleton first and regenerate the programs *)
  let skeleton =
    Config.make
      ~regimes:
        (List.map2
           (fun colour devs -> { Config.colour; part_size = 1; program = []; devices = devs })
           colours dev_sets)
      ~channels:chan_specs ()
  in
  let regimes =
    List.map2
      (fun colour devs ->
        let caps = caps_of_regime skeleton colour in
        let prog = render (actions caps ~max:max_actions rng) in
        let part_size = Array.length (Isa.assemble prog) + Prng.int_in rng 4 10 in
        { Config.colour; part_size; program = prog; devices = devs })
      colours dev_sets
  in
  let quantum = if Prng.bool rng then None else Some (Prng.int_in rng 3 6) in
  Config.make ?quantum ~regimes ~channels:chan_specs ()

let rx_alphabet (cfg : _ Config.t) =
  let _, rx_ids =
    List.fold_left
      (fun (next, acc) (r : _ Config.regime) ->
        List.fold_left
          (fun (next, acc) kind ->
            match (kind : Machine.device_kind) with
            | Machine.Rx -> (next + 1, next :: acc)
            | _ -> (next + 1, acc))
          (next, acc) r.Config.devices)
      (0, []) cfg.Config.regimes
  in
  [] :: List.concat_map (fun d -> [ [ (d, 0) ]; [ (d, 1) ] ]) (List.rev rx_ids)

let schedule ~alphabet ~max_len rng =
  let arr = Array.of_list alphabet in
  let n = Prng.int rng (max_len + 1) in
  List.init n (fun _ -> if Array.length arr = 0 then [] else Prng.choose rng arr)

let fault_plans ~steps ~count cfg rng =
  let seed = Int64.to_int (Prng.bits64 rng) land 0x3fffffff in
  Sep_robust.Fault_plan.generate ~seed ~steps ~count cfg

let recovery_plans ?(faults_per_plan = 3) ~steps ~count cfg rng =
  let seed = Int64.to_int (Prng.bits64 rng) land 0x3fffffff in
  Sep_robust.Fault_plan.generate_multi ~seed ~steps ~count ~faults_per_plan cfg

let soak_plans ~nodes ~steps ~count cfg rng =
  let seed = Int64.to_int (Prng.bits64 rng) land 0x3fffffff in
  Sep_robust.Fault_plan.soak ~nodes ~seed ~steps ~count cfg

let service_requests ~workload ~max rng =
  List.init (Prng.int_in rng 1 (Stdlib.max 1 max)) (fun _ -> workload rng)

let crashes ~colours ~max_steps ~max_crashes rng =
  let arr = Array.of_list colours in
  if Array.length arr = 0 then []
  else
    List.init
      (Prng.int_in rng 1 (max 1 max_crashes))
      (fun _ -> (Prng.int rng max_steps, Prng.choose rng arr))
