module Prng = Sep_util.Prng
module J = Sep_util.Json

type budget = {
  max_runs : int;
  max_shrink_steps : int;
  deadline : float option;
}

let budget ?(max_runs = 200) ?(max_shrink_steps = 1000) ?deadline () =
  { max_runs; max_shrink_steps; deadline }

let default_budget = budget ()

type 'a counterexample = {
  cx_seed : int;
  cx_run : int;
  cx_original : 'a;
  cx_minimized : 'a;
  cx_shrink_steps : int;
  cx_message : string;
}

type 'a outcome =
  | Passed of int
  | Failed of 'a counterexample

let run ?(budget = default_budget) ?(shrink = Shrink.nothing) ~seed gen prop =
  let master = Prng.create seed in
  let started = Unix.gettimeofday () in
  let expired () =
    match budget.deadline with
    | None -> false
    | Some limit -> Unix.gettimeofday () -. started > limit
  in
  let rec attempt n =
    if n > budget.max_runs || (n > 1 && expired ()) then Passed (n - 1)
    else
      let value = gen (Prng.split master) in
      match prop value with
      | Ok () -> attempt (n + 1)
      | Error message ->
        let still_failing v = Result.is_error (prop v) in
        let minimized, steps =
          Shrink.minimize ~max_steps:budget.max_shrink_steps ~still_failing shrink value
        in
        let cx_message =
          match prop minimized with Error m -> m | Ok () -> message
        in
        Failed
          {
            cx_seed = seed;
            cx_run = n;
            cx_original = value;
            cx_minimized = minimized;
            cx_shrink_steps = steps;
            cx_message;
          }
  in
  attempt 1

let check ?budget ?shrink ?(pp = fun ppf _ -> Fmt.string ppf "<value>") ~name ~seed gen prop =
  match run ?budget ?shrink ~seed gen prop with
  | Passed _ -> ()
  | Failed cx ->
    failwith
      (Fmt.str "property %s failed (seed %d, run %d, %d shrink steps): %s@.minimized: %a" name
         cx.cx_seed cx.cx_run cx.cx_shrink_steps cx.cx_message pp cx.cx_minimized)

let counterexample_to_json ~to_json ~name cx =
  J.Obj
    [
      ("kind", J.String "counterexample");
      ("property", J.String name);
      ("seed", J.Int cx.cx_seed);
      ("run", J.Int cx.cx_run);
      ("shrink_steps", J.Int cx.cx_shrink_steps);
      ("message", J.String cx.cx_message);
      ("original", to_json cx.cx_original);
      ("minimized", to_json cx.cx_minimized);
    ]

let persist ~file ~to_json ~name cx =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (J.to_string (counterexample_to_json ~to_json ~name cx));
      output_char oc '\n')
