type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

(* 0 first, then magnitudes climbing back toward n, then the predecessor. *)
let int n =
  if n = 0 then Seq.empty
  else
    let halvings =
      let rec go acc cur =
        let next = cur / 2 in
        if next = cur then acc else go (next :: acc) next
      in
      go [] n
    in
    List.to_seq (halvings @ [ (if n > 0 then n - 1 else n + 1) ])

let pair sa sb (a, b) =
  Seq.append (Seq.map (fun a' -> (a', b)) (sa a)) (Seq.map (fun b' -> (a, b')) (sb b))

(* Drop chunks of size len/2, len/4, ..., 1 from every position, then
   shrink elements in place. *)
let list ?(elem = nothing) xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let without start len =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec chunk_sizes k acc = if k < 1 then List.rev acc else chunk_sizes (k / 2) (k :: acc) in
  let drops =
    if n = 0 then Seq.empty
    else
      List.to_seq (List.rev (chunk_sizes (n / 2) [ 1 ]))
      |> Seq.concat_map (fun len ->
             Seq.init (n - len + 1) (fun start -> without start len))
  in
  let shrunk_elems =
    Seq.concat_map
      (fun i ->
        Seq.map
          (fun e -> List.mapi (fun j x -> if j = i then e else x) xs)
          (elem arr.(i)))
      (Seq.init n (fun i -> i))
  in
  Seq.append drops shrunk_elems

let action (a : Gen.action) =
  match a with
  | Gen.Set (r, v) ->
    Seq.append
      (Seq.map (fun v' -> Gen.Set (r, v')) (int v))
      (Seq.map (fun r' -> Gen.Set (r', v)) (int r))
  | Gen.Arith (op, rd, rs) ->
    Seq.append
      (Seq.map (fun rd' -> Gen.Arith (op, rd', rs)) (int rd))
      (Seq.map (fun rs' -> Gen.Arith (op, rd, rs')) (int rs))
  | Gen.Emit (slot, r) -> Seq.map (fun r' -> Gen.Emit (slot, r')) (int r)
  | Gen.Poll _ | Gen.Recv _ | Gen.Wait -> Seq.return Gen.Yield
  | Gen.Send (ch, r) -> Seq.map (fun r' -> Gen.Send (ch, r')) (int r)
  | Gen.Yield -> Seq.empty

let input (i : Sep_core.Sue.input) = list ~elem:(fun (d, w) -> Seq.map (fun w' -> (d, w')) (int w)) i
let schedule s = list ~elem:input s

let minimize ?(max_steps = 1000) ~still_failing shrinker value =
  let steps = ref 0 in
  let budget = ref max_steps in
  let rec descend v =
    let rec try_candidates seq =
      if !budget <= 0 then v
      else
        match Seq.uncons seq with
        | None -> v
        | Some (candidate, rest) ->
          decr budget;
          if still_failing candidate then begin
            incr steps;
            descend candidate
          end
          else try_candidates rest
    in
    try_candidates (shrinker v)
  in
  let result = descend value in
  (result, !steps)
