(** The property runner: seeded replay, shrinking, budgets, persistence.

    [run] draws values from a generator, applies the property, and on the
    first failure minimizes the counterexample with the supplied shrinker.
    Everything is reproducible: the same seed replays the same draws, the
    same failure and the same minimization. *)

type budget = {
  max_runs : int;  (** property evaluations before declaring a pass *)
  max_shrink_steps : int;  (** candidate evaluations spent minimizing *)
  deadline : float option;  (** wall-clock seconds; [None] = unbounded *)
}

val budget : ?max_runs:int -> ?max_shrink_steps:int -> ?deadline:float -> unit -> budget
(** Defaults: 200 runs, 1000 shrink candidates, no deadline. *)

val default_budget : budget

type 'a counterexample = {
  cx_seed : int;  (** the seed that replays this failure *)
  cx_run : int;  (** 1-based index of the failing draw *)
  cx_original : 'a;
  cx_minimized : 'a;
  cx_shrink_steps : int;  (** successful shrink steps taken *)
  cx_message : string;  (** the property's failure message *)
}

type 'a outcome =
  | Passed of int  (** property evaluations performed *)
  | Failed of 'a counterexample

val run :
  ?budget:budget -> ?shrink:'a Shrink.t -> seed:int -> 'a Gen.t ->
  ('a -> (unit, string) result) -> 'a outcome
(** Each draw uses a generator split from one seeded master stream, so a
    value's identity depends only on [seed] and its index — prefix
    lengths, not the budget, determine what gets drawn. *)

val check :
  ?budget:budget -> ?shrink:'a Shrink.t -> ?pp:(Format.formatter -> 'a -> unit) -> name:string ->
  seed:int -> 'a Gen.t -> ('a -> (unit, string) result) -> unit
(** Test-harness entry: raises [Failure] with the minimized
    counterexample, its message and the replay seed when the property
    fails; returns unit when it holds. *)

val counterexample_to_json :
  to_json:('a -> Sep_util.Json.t) -> name:string -> 'a counterexample -> Sep_util.Json.t
(** [{"kind": "counterexample", "property", "seed", "run",
    "shrink_steps", "message", "original", "minimized"}] — one JSONL line
    for counterexample persistence. *)

val persist : file:string -> to_json:('a -> Sep_util.Json.t) -> name:string -> 'a counterexample -> unit
(** Append the JSONL line to [file] (created when missing). *)
