(** Generators: seeded random production of test inputs.

    A generator is a function from a {!Sep_util.Prng} state to a value, so
    every generated value is reproducible from a seed and generators
    compose as ordinary functions. Beyond the usual combinators the module
    generates the domain objects of this repository: regime programs over
    {!Sep_hw.Isa} (via the {!action} workload representation, which is
    what the shrinker operates on), whole {!Sep_core.Config} instances,
    input schedules over a scenario alphabet, fault plans and JSON
    values. *)

module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Config = Sep_core.Config
module Sue = Sep_core.Sue

type 'a t = Sep_util.Prng.t -> 'a

val run : seed:int -> 'a t -> 'a
(** Generate one value from a fresh seeded generator state. *)

val generate : seed:int -> count:int -> 'a t -> 'a list
(** [count] values from one seeded stream. *)

(** {1 Combinators} *)

val return : 'a -> 'a t
val map : ('a -> 'b) -> 'a t -> 'b t
val map2 : ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val pair : 'a t -> 'b t -> ('a * 'b) t
val int : int -> int t
(** Uniform in [\[0, bound)]. *)

val int_in : int -> int -> int t
(** Uniform in [\[lo, hi\]] inclusive. *)

val bool : bool t
val oneof : 'a t list -> 'a t
val oneof_val : 'a list -> 'a t
val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be positive. *)

val list : max_len:int -> 'a t -> 'a list t
(** Length uniform in [\[0, max_len\]]. *)

val list_len : int -> 'a t -> 'a list t

val int_any : int t
(** Full-range OCaml ints, biased toward 0, small values and the extremes. *)

val float_finite : float t
(** Finite floats only (the JSON writer renders non-finite floats as
    [null], which cannot round-trip). *)

val utf8_string : max_len:int -> string t
(** Valid UTF-8 by construction, mixing ASCII, control characters, Latin
    and CJK ranges and supplementary (astral) code points — the latter
    exercise the writer's and parser's UTF-16 surrogate-pair handling. *)

val json : ?depth:int -> unit -> Sep_util.Json.t t
(** Arbitrary JSON values, [depth] (default 3) levels of nesting. *)

val isa_instr : Isa.t t
(** Any well-formed instruction (all fields in range). *)

(** {1 Regime workloads}

    Workloads are generated in an abstract action vocabulary and rendered
    to {!Isa.stmt} programs, so shrinking can drop whole actions while
    every intermediate stays a well-formed, always-yielding program. *)

type arith =
  | Add
  | Sub
  | Xor
  | And_
  | Or_

type action =
  | Set of int * int  (** [r := imm], register 0–5, immediate 0–255 *)
  | Arith of arith * int * int
  | Emit of int * int  (** store a register to an owned Tx device slot *)
  | Poll of int  (** read an owned Rx device slot's data latch into [r2] *)
  | Send of int * int  (** SEND trap: channel id, data register *)
  | Recv of int  (** RECV trap on a channel id *)
  | Wait  (** [Halt]: wait for an interrupt *)
  | Yield  (** [Trap 0]: SWAP *)

val pp_action : Format.formatter -> action -> unit

type caps = {
  rx_slots : int list;  (** regime-relative Rx device slots *)
  tx_slots : int list;
  send_chans : int list;  (** channel ids this regime may SEND on *)
  recv_chans : int list;
}
(** What a regime may legally do, derived from the configuration; the
    action generator only produces actions within these capabilities. *)

val caps_of_regime : 'p Config.t -> Colour.t -> caps

val action : caps -> action t
val actions : caps -> max:int -> action list t

val render : action list -> Isa.stmt list
(** A complete regime program: the device-base prelude (only when a device
    action needs it), the action bodies, then a trailing SWAP and a branch
    back — so every rendered program yields on each pass and assembles
    without labels dangling. *)

val instr_count : action list -> int
(** Machine words of the assembled rendering — the size measure that
    counterexamples are minimized against. *)

val program : caps -> max:int -> Isa.stmt list t
(** [render] composed over {!actions}. *)

val config : ?max_regimes:int -> ?max_actions:int -> unit -> Isa.stmt list Config.t t
(** Valid configurations: 2–[max_regimes] (default 3) regimes with
    generated device sets, programs sized to their partitions, 0–2
    channels between distinct regimes, and an optional preemption
    quantum. The result always satisfies {!Config.validate} and builds
    under {!Sue.build}. *)

val rx_alphabet : 'p Config.t -> Sue.input list
(** The canonical input alphabet of a configuration: the empty input plus
    words 0 and 1 to each Rx device, mirroring the hand-written scenario
    alphabets. *)

val schedule : alphabet:Sue.input list -> max_len:int -> Sue.input list t
(** An input schedule: one alphabet element per step. *)

val fault_plans : steps:int -> count:int -> 'p Config.t -> Sep_robust.Fault_plan.t list t
(** Seeded fault plans via {!Sep_robust.Fault_plan.generate}, the seed
    drawn from the generator state. *)

val recovery_plans :
  ?faults_per_plan:int -> steps:int -> count:int -> 'p Config.t -> Sep_robust.Fault_plan.t list t
(** Multi-fault stress plans via {!Sep_robust.Fault_plan.generate_multi}
    (default 3 faults per plan) — the schedules that park several regimes
    at once and force the recovery paths, the seed drawn from the
    generator state. *)

val soak_plans :
  nodes:Sep_robust.Fault_plan.node_space ->
  steps:int -> count:int -> 'p Config.t -> Sep_robust.Fault_plan.t list t
(** Seeded soak plans via {!Sep_robust.Fault_plan.soak} — sustained,
    correlated node-level chaos (repeated same-shard crashes, flapping
    partitions, tamper bursts) over a long horizon, the seed drawn from
    the generator state. [steps] must be at least 256. *)

val service_requests :
  workload:(Sep_util.Prng.t -> int * int) -> max:int -> (int * int) list t
(** A service workload: 1–[max] [(op, arg)] request draws from a
    deployment's workload function ({!Sep_svc.Svc.deployment}'s
    [dp_workload] has exactly this type), reproducible from the
    generator state. *)

val crashes :
  colours:Sep_model.Colour.t list -> max_steps:int -> max_crashes:int ->
  (int * Sep_model.Colour.t) list t
(** 1–[max_crashes] crash points (step, victim) for
    {!Fuzz.execute_recovery}-style runs. *)
