(** Shrinkers: lazy streams of smaller candidates, and greedy minimization.

    A shrinker maps a value to candidates that are strictly "smaller" —
    fewer elements, smaller numbers — ordered most-aggressive first.
    {!minimize} drives a shrinker to a fixpoint against a failure
    predicate, yielding the minimal failing instance that property-based
    counterexamples are reported as. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t
val int : int t
(** Toward 0: [0], then halvings, then the predecessor. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Shrink the left component, then the right. *)

val list : ?elem:'a t -> 'a list t
(** QuickCheck-style: drop chunks of half, quarter, ... down to single
    elements, then shrink elements in place with [elem]. *)

val action : Gen.action t
(** Shrink a workload action's immediates and registers toward 0. *)

val input : Sep_core.Sue.input t
(** Shrink one step's arrivals: drop pairs, shrink the words. *)

val schedule : Sep_core.Sue.input list t
(** [list ~elem:input]. *)

val minimize : ?max_steps:int -> still_failing:('a -> bool) -> 'a t -> 'a -> 'a * int
(** Greedy descent: repeatedly replace the value by its first shrink
    candidate that still fails, until none does (or [max_steps], default
    1000, candidate evaluations are spent). Returns the minimal failing
    value and the number of successful shrink steps taken. The input is
    assumed to satisfy [still_failing]. *)
