module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine

type instance = {
  label : string;
  cfg : Isa.stmt list Config.t;
  alphabet : Sue.input list;
}

(* Register conventions in these programs: r6 = device base (0x8000),
   r5 = zero for comparisons, r0/r1/r2 = trap arguments and data. *)

let device_base = [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)) ]

let pipeline_red =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));  (* Rx status *)
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "wait";
      Isa.Instr (Isa.Load (2, 6, 0));  (* consume the Rx word *)
      Isa.Instr (Isa.Loadi (3, 7));  (* a register SWAP must preserve *)
      Isa.Instr (Isa.Store (2, 6, 2));  (* echo to the Tx wire *)
      Isa.Instr (Isa.Mov (1, 2));
      Isa.Instr (Isa.Loadi (0, 0));
      Isa.Instr (Isa.Trap 1);  (* send down channel 0 *)
      Isa.Instr (Isa.Mov (0, 2));  (* leave data-dependent parity in r0 *)
      Isa.Instr (Isa.Trap 0);  (* yield *)
      Isa.Branch "loop";
      Isa.Label "wait";
      Isa.Instr Isa.Halt;
      Isa.Branch "loop";
    ]

let pipeline_black =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "skip";
      Isa.Instr (Isa.Load (1, 6, 0));  (* r1 := arrived word *)
      Isa.Label "skip";
      Isa.Instr (Isa.Loadi (0, 0));
      Isa.Instr (Isa.Trap 2);  (* receive from channel 0 *)
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]

let pipeline =
  let cfg =
    Config.make
      ~regimes:
        [
          {
            Config.colour = Colour.red;
            part_size = 20;
            program = pipeline_red;
            devices = [ Machine.Rx; Machine.Tx ];
          };
          {
            Config.colour = Colour.black;
            part_size = 16;
            program = pipeline_black;
            devices = [ Machine.Rx ];
          };
        ]
      ~channels:[ (Colour.red, Colour.black, 1) ]
      ()
  in
  {
    label = "pipeline";
    cfg = Config.cut_all cfg;
    alphabet = [ []; [ (0, 0) ]; [ (0, 1) ]; [ (2, 0) ]; [ (2, 1) ] ];
  }

let interrupt_program =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr Isa.Halt;  (* wait for interrupt *)
      Isa.Instr (Isa.Load (2, 6, 0));  (* consume *)
      Isa.Instr (Isa.Mov (0, 2));
      Isa.Branch "loop";
    ]

let interrupt =
  let regime colour =
    { Config.colour; part_size = 8; program = interrupt_program; devices = [ Machine.Rx ] }
  in
  let cfg = Config.make ~regimes:[ regime Colour.red; regime Colour.black ] ~channels:[] () in
  {
    label = "interrupt";
    cfg;
    alphabet = [ []; [ (0, 0) ]; [ (0, 1) ]; [ (1, 0) ]; [ (1, 1) ] ];
  }

(* Machine-level SNFE. RED's device slots: 0 = host Rx, 1 = crypto
   transform; BLACK's slot 0 = network Tx. Channel 0 carries ciphertext
   RED->BLACK, channel 1 headers RED->CENSOR, channel 2 vetted headers
   CENSOR->BLACK. *)

let censor_colour = Colour.make "CENSOR"

let snfe_red =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));  (* host Rx status *)
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "wait";
      Isa.Instr (Isa.Load (2, 6, 0));  (* consume the host word *)
      Isa.Instr (Isa.Store (2, 6, 2));  (* into the crypto *)
      Isa.Instr (Isa.Load (1, 6, 2));  (* ciphertext back *)
      Isa.Instr (Isa.Loadi (0, 0));
      Isa.Instr (Isa.Trap 1);  (* ciphertext to BLACK *)
      Isa.Instr (Isa.Mov (1, 2));
      Isa.Instr (Isa.Loadi (3, 3));
      Isa.Instr (Isa.And_ (1, 3));  (* header: two low bits of the plaintext *)
      Isa.Instr (Isa.Loadi (0, 1));
      Isa.Instr (Isa.Trap 1);  (* header to the CENSOR *)
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
      Isa.Label "wait";
      Isa.Instr Isa.Halt;
      Isa.Branch "loop";
    ]

let snfe_censor =
  [
    Isa.Label "loop";
    Isa.Instr (Isa.Loadi (0, 1));
    Isa.Instr (Isa.Trap 2);  (* header from RED *)
    Isa.Instr (Isa.Loadi (5, 1));
    Isa.Instr (Isa.Cmp (2, 5));
    Isa.Branch_ne "yield";  (* nothing to vet *)
    (* the procedural check: drop anything beyond two bits *)
    Isa.Instr (Isa.Loadi (4, 252));
    Isa.Instr (Isa.Mov (3, 1));
    Isa.Instr (Isa.And_ (3, 4));
    Isa.Branch_ne "yield";  (* over-long header: silently dropped *)
    Isa.Instr (Isa.Loadi (0, 2));
    Isa.Instr (Isa.Trap 1);  (* vetted header to BLACK *)
    Isa.Label "yield";
    Isa.Instr (Isa.Trap 0);
    Isa.Branch "loop";
  ]

let snfe_black =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (0, 0));
      Isa.Instr (Isa.Trap 2);  (* ciphertext *)
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Cmp (2, 5));
      Isa.Branch_ne "headers";
      Isa.Instr (Isa.Store (1, 6, 0));  (* transmit *)
      Isa.Label "headers";
      Isa.Instr (Isa.Loadi (0, 2));
      Isa.Instr (Isa.Trap 2);  (* consume a vetted header, if any *)
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]

let snfe_micro =
  let cfg =
    Config.make
      ~regimes:
        [
          {
            Config.colour = Colour.red;
            part_size = 24;
            program = snfe_red;
            devices = [ Machine.Rx; Machine.Xform (Machine.Xor_key 0x2a) ];
          };
          { Config.colour = censor_colour; part_size = 18; program = snfe_censor; devices = [] };
          {
            Config.colour = Colour.black;
            part_size = 16;
            program = snfe_black;
            devices = [ Machine.Tx ];
          };
        ]
      ~channels:
        [
          (Colour.red, Colour.black, 1);
          (Colour.red, censor_colour, 1);
          (censor_colour, Colour.black, 1);
        ]
      ()
  in
  {
    label = "snfe-micro";
    cfg = Config.cut_all cfg;
    alphabet = [ []; [ (0, 0) ]; [ (0, 1) ] ];
  }

(* Regimes that never yield: only preemption lets both make progress. *)
let greedy_program mask data_addr =
  [
    Isa.Instr (Isa.Loadi (5, 1));
    Isa.Instr (Isa.Loadi (3, mask));
    Isa.Instr (Isa.Loadi (4, data_addr));
    Isa.Label "loop";
    Isa.Instr (Isa.Load (1, 4, 0));
    Isa.Instr (Isa.Add (1, 5));
    Isa.Instr (Isa.And_ (1, 3));
    Isa.Instr (Isa.Store (1, 4, 0));
    Isa.Branch "loop";
  ]

let preemptive =
  let data_addr = 9 in
  let regime colour =
    { Config.colour; part_size = data_addr + 1; program = greedy_program 3 data_addr; devices = [] }
  in
  let cfg =
    Config.make ~quantum:3 ~regimes:[ regime Colour.red; regime Colour.black ] ~channels:[] ()
  in
  { label = "preemptive"; cfg; alphabet = [ [] ] }

let all = [ pipeline; interrupt; snfe_micro; preemptive ]

let scaled ~regimes ~counter_bits =
  assert (regimes >= 1 && counter_bits >= 1 && counter_bits <= 8);
  let mask = (1 lsl counter_bits) - 1 in
  let data_addr = 10 in
  let program =
    [
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Loadi (3, mask));
      Isa.Instr (Isa.Loadi (4, data_addr));
      Isa.Label "loop";
      Isa.Instr (Isa.Load (1, 4, 0));
      Isa.Instr (Isa.Add (1, 5));
      Isa.Instr (Isa.And_ (1, 3));
      Isa.Instr (Isa.Store (1, 4, 0));
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]
  in
  let regime i =
    { Config.colour = Colour.of_index i; part_size = data_addr + 1; program; devices = [] }
  in
  let cfg = Config.make ~regimes:(List.init regimes regime) ~channels:[] () in
  { label = Fmt.str "scaled-%dx%db" regimes counter_bits; cfg; alphabet = [ [] ] }

let find label = List.find_opt (fun i -> i.label = label) all
