module Colour = Sep_model.Colour
module System = Sep_model.System
module Machine = Sep_hw.Machine
module Isa = Sep_hw.Isa
module Word = Sep_hw.Word

type bug =
  | Forget_register_save
  | Partition_hole
  | Misroute_interrupt
  | Misroute_device_input
  | Output_leak
  | Schedule_on_foreign_state
  | Uncut_channel
  | Input_crosstalk

let pp_bug ppf b =
  Fmt.string ppf
    (match b with
    | Forget_register_save -> "forget-register-save"
    | Partition_hole -> "partition-hole"
    | Misroute_interrupt -> "misroute-interrupt"
    | Misroute_device_input -> "misroute-device-input"
    | Output_leak -> "output-leak"
    | Schedule_on_foreign_state -> "schedule-on-foreign-state"
    | Uncut_channel -> "uncut-channel"
    | Input_crosstalk -> "input-crosstalk")

let all_bugs =
  [
    Forget_register_save;
    Partition_hole;
    Misroute_interrupt;
    Misroute_device_input;
    Output_leak;
    Schedule_on_foreign_state;
    Uncut_channel;
    Input_crosstalk;
  ]

type impl =
  | Microcode
  | Assembly

let pp_impl ppf = function
  | Microcode -> Fmt.string ppf "microcode"
  | Assembly -> Fmt.string ppf "assembly"

(* Kernel data layout, in words of kernel memory:
     0                 index of the current regime
     1                 quantum countdown (preemptive configurations only;
                       reused as the watchdog countdown when a watchdog is
                       armed instead)
     2 + 12r ..        regime r's record: R0..R7, flags, status, save-area
                       checksum, 1 spare
     after regimes     channel records: two ring-buffer areas per channel
                       (sender end then receiver end), each laid out as
                       head, count, data[capacity].
   Assembly configurations append, after the channel records:
     RDT               regime descriptor table, 8 words per regime:
                       part_base, part_size, slot count, 4 slot ids, spare
     KCODE             the kernel's machine code (entry vector first).
   Outside the kernel partition proper, one guard word precedes each
   regime partition and one trails the last, so the kernel data (and, for
   Assembly, the descriptor table and kernel code) and every partition is
   fenced by a known pattern whose corruption is detectable. *)

let regime_record = 12
let off_flags = 8
let off_status = 9
let off_checksum = 10

let guard_pattern = 0xa5c3
let checksum_salt = 0x5ee1

let status_runnable = 0
let status_waiting = 1
let status_parked = 2

type chan_info = {
  ci_id : int;
  ci_sender : int;
  ci_receiver : int;
  ci_capacity : int;
  ci_cut : bool;
  ci_area_a : int;  (* the end SEND fills *)
  ci_area_b : int;  (* the end RECV drains when the channel is cut *)
}

type layout = {
  nregs : int;
  colours : Colour.t array;
  part_base : int array;
  part_size : int array;
  save_base : int array;
  chans : chan_info array;
  kernel_size : int;
  guards : int array;  (* physical addresses of the guard words *)
  dev_owner : int array;
  dev_slots : int array array;
  dev_kinds : Machine.device_kind array;
}

(* A corruption the kernel detected and survived. Detection is part of the
   hardening, not of the verified separation model: every fault below puts
   the kernel into a defined safe state (a parked regime, a repaired guard,
   a forced yield, or a full halt) instead of raising. *)
type kernel_fault =
  | Save_area_corrupt of Colour.t
  | Guard_breach of int
  | Channel_head_corrupt of int
  | Watchdog_expired of Colour.t
  | Kernel_panic of string
  | Regime_restart of Colour.t
  | Checkpoint_corrupt of Colour.t
  | Warm_reboot

let pp_kernel_fault ppf = function
  | Save_area_corrupt c -> Fmt.pf ppf "save area of %a corrupt" Colour.pp c
  | Guard_breach a -> Fmt.pf ppf "guard word at %04x breached" a
  | Channel_head_corrupt a -> Fmt.pf ppf "channel head word at %04x corrupt; repaired" a
  | Watchdog_expired c -> Fmt.pf ppf "watchdog expired on %a" Colour.pp c
  | Kernel_panic reason -> Fmt.pf ppf "kernel panic: %s" reason
  | Regime_restart c -> Fmt.pf ppf "%a restarted from its checkpoint" Colour.pp c
  | Checkpoint_corrupt c -> Fmt.pf ppf "checkpoint of %a corrupt; not restored" Colour.pp c
  | Warm_reboot -> Fmt.string ppf "kernel warm reboot"

(* Per-instance kernel counters. Arrays are indexed by regime; the record
   is shared by [copy], so one build's whole family of snapshots (e.g. a
   state-space exploration) accumulates into a single tally. *)
type counts = {
  ct_instrs : int array;
  ct_traps : int array;
  ct_swaps : int array;
  ct_sent : int array;
  ct_recvd : int array;
  mutable ct_switches : int;
  mutable ct_irqs_forwarded : int;
  mutable ct_wakes : int;
  mutable ct_stalls : int;
  mutable ct_inputs_latched : int;
  mutable ct_outputs_observed : int;
  mutable ct_kernel_instrs : int;
  mutable ct_fault_parks : int;
  mutable ct_guard_breaches : int;
  mutable ct_chan_repairs : int;
  mutable ct_watchdog_fires : int;
  mutable ct_panics : int;
  mutable ct_checkpoints : int;
  mutable ct_restarts : int;
  mutable ct_warm_reboots : int;
  mutable ct_fault_log : kernel_fault list;  (* newest first *)
  mutable ct_fault_log_len : int;
}

(* A regime checkpoint: the save-area image (registers and flags as the
   regime would resume them) plus the partition contents, sealed by the
   same rotate-and-xor checksum the save areas use. Checkpoints live in a
   store shared across [copy] — the model of stable storage that survives
   the crash being recovered from — and, like [counts], sit outside
   [equal]/[hash]/[phi]: they are the recovery mechanism's private state,
   not part of the machine being verified. *)
type checkpoint = {
  ck_save : int array;  (* save-area slots 0 .. off_flags *)
  ck_part : int array;  (* partition contents *)
  ck_sum : int;
}

type ckstore = {
  ck_init : checkpoint array;  (* as-built image, always available *)
  ck_last : checkpoint option array;  (* latest effect-boundary capture *)
}

type kstats = {
  ks_instrs : (Colour.t * int) list;
  ks_traps : (Colour.t * int) list;
  ks_swaps : (Colour.t * int) list;
  ks_sent : (Colour.t * int) list;
  ks_recvd : (Colour.t * int) list;
  ks_switches : int;
  ks_irqs_forwarded : int;
  ks_wakes : int;
  ks_stalls : int;
  ks_inputs_latched : int;
  ks_outputs_observed : int;
  ks_kernel_instrs : int;
  ks_fault_parks : int;
  ks_guard_breaches : int;
  ks_chan_repairs : int;
  ks_watchdog_fires : int;
  ks_panics : int;
  ks_checkpoints : int;
  ks_restarts : int;
  ks_warm_reboots : int;
}

type t = {
  layout : layout;
  cfg : Isa.stmt list Config.t;
  bug_list : bug list;
  m : Machine.t;
  impl : impl;
  rdt_base : int;  (* 0 for Microcode *)
  code_base : int;
  code_len : int;
  watchdog : int option;
  counts : counts;
  ckstore : ckstore;
}

type input = (int * int) list
type output = (int * int) list

let has_bug t b = List.mem b t.bug_list

(* -- Layout and construction --------------------------------------------- *)

let compute_layout ?(extra = 0) (cfg : Isa.stmt list Config.t) =
  let regimes = Array.of_list cfg.Config.regimes in
  let nregs = Array.length regimes in
  let colours = Array.map (fun r -> r.Config.colour) regimes in
  let save_base = Array.init nregs (fun r -> 2 + (regime_record * r)) in
  let chan_base = 2 + (regime_record * nregs) in
  let pos = ref chan_base in
  let index_of c =
    let rec find i = if Colour.equal colours.(i) c then i else find (i + 1) in
    find 0
  in
  let chan ch =
    let area = ch.Config.capacity + 2 in
    let a = !pos in
    pos := !pos + (2 * area);
    {
      ci_id = ch.Config.chan_id;
      ci_sender = index_of ch.Config.sender;
      ci_receiver = index_of ch.Config.receiver;
      ci_capacity = ch.Config.capacity;
      ci_cut = ch.Config.cut;
      ci_area_a = a;
      ci_area_b = a + area;
    }
  in
  let chans = Array.of_list (List.map chan cfg.Config.channels) in
  let kernel_size = !pos + extra in
  let part_size = Array.map (fun r -> r.Config.part_size) regimes in
  let part_base = Array.make nregs 0 in
  let guards = Array.make (nregs + 1) 0 in
  let mem = ref kernel_size in
  Array.iteri
    (fun r size ->
      guards.(r) <- !mem;
      part_base.(r) <- !mem + 1;
      mem := !mem + 1 + size)
    part_size;
  guards.(nregs) <- !mem;
  let mem = ref (!mem + 1) in
  let dev_kinds =
    Array.of_list (List.concat_map (fun r -> r.Config.devices) (Array.to_list regimes))
  in
  let dev_owner = Array.make (Array.length dev_kinds) 0 in
  let dev_slots = Array.make nregs [||] in
  let next_dev = ref 0 in
  Array.iteri
    (fun r regime ->
      let slots = List.map (fun _ -> let d = !next_dev in incr next_dev; d) regime.Config.devices in
      List.iter (fun d -> dev_owner.(d) <- r) slots;
      dev_slots.(r) <- Array.of_list slots)
    regimes;
  ( { nregs; colours; part_base; part_size; save_base; chans; kernel_size; guards; dev_owner;
      dev_slots; dev_kinds },
    !mem )

let read_kw t a = Machine.read_phys t.m a
let write_kw t a w = Machine.write_phys t.m a w

let current_index t = read_kw t 0
let set_current_index t r = write_kw t 0 r

let quantum_addr = 1

(* Re-arm the preemption quantum (or watchdog) countdown. *)
let reset_countdown t =
  match (t.cfg.Config.quantum, t.watchdog) with
  | Some q, _ -> write_kw t quantum_addr q
  | None, Some w -> write_kw t quantum_addr w
  | None, None -> ()

let get_status t r = read_kw t (t.layout.save_base.(r) + off_status)
let set_status t r v = write_kw t (t.layout.save_base.(r) + off_status) v

(* -- Hardening: fault log, save-area checksums, guard words ---------------- *)

let fault_log_cap = 4096

let record_fault t f =
  (* every audit event is also a flight-recorder event, so a post-incident
     dump shows the detections in causal position *)
  if Sep_obs.Trace.enabled () then
    Sep_obs.Trace.instant ~cat:"sue"
      ~args:[ ("fault", Sep_util.Json.String (Fmt.str "%a" pp_kernel_fault f)) ]
      "audit";
  let c = t.counts in
  if c.ct_fault_log_len < fault_log_cap then begin
    c.ct_fault_log <- f :: c.ct_fault_log;
    c.ct_fault_log_len <- c.ct_fault_log_len + 1
  end

let drain_faults t =
  let c = t.counts in
  let log = List.rev c.ct_fault_log in
  c.ct_fault_log <- [];
  c.ct_fault_log_len <- 0;
  log

(* Rotate-and-xor over the saved registers and flags (slots 0..8) as they
   sit in memory — deliberately computed by reading memory back rather
   than from the values the kernel meant to write, so the checksum attests
   to what the save area holds, not to what the save path intended. The
   status word (slot 9) is excluded: it is rewritten independently of
   context saves. A nonzero salt makes the all-zero area non-trivial. *)
let save_checksum t r =
  let base = t.layout.save_base.(r) in
  let acc = ref checksum_salt in
  for i = 0 to off_flags do
    let rotated = ((!acc lsl 1) lor (!acc lsr 15)) land 0xffff in
    acc := rotated lxor read_kw t (base + i)
  done;
  !acc

let refresh_save_checksum t r =
  write_kw t (t.layout.save_base.(r) + off_checksum) (save_checksum t r)

let save_area_ok t r = read_kw t (t.layout.save_base.(r) + off_checksum) = save_checksum t r

(* Verify (and repair) every guard word. Repairing restores the fence so
   one breach is reported once, not on every subsequent switch. *)
let guard_sweep t =
  let breaches = ref 0 in
  Array.iter
    (fun a ->
      if read_kw t a <> guard_pattern then begin
        incr breaches;
        t.counts.ct_guard_breaches <- t.counts.ct_guard_breaches + 1;
        record_fault t (Guard_breach a);
        write_kw t a guard_pattern
      end)
    t.layout.guards;
  !breaches

let flags_word (z, n) = (if z then 1 else 0) lor (if n then 2 else 0)
let flags_of_word w = (w land 1 <> 0, w land 2 <> 0)

(* -- Checkpoints ----------------------------------------------------------- *)

let checkpoint_sum ~save ~part =
  let acc = ref checksum_salt in
  let feed w =
    let rotated = ((!acc lsl 1) lor (!acc lsr 15)) land 0xffff in
    acc := rotated lxor (w land 0xffff)
  in
  Array.iter feed save;
  Array.iter feed part;
  !acc

(* Capture regime [r]. [~live] reads the processor registers (the regime is
   current and running); otherwise the save area is the authority. The
   partition is always read from memory. *)
let capture_checkpoint t r ~live =
  let base = t.layout.save_base.(r) in
  let save =
    Array.init (off_flags + 1) (fun i ->
        if live then
          if i < Isa.num_regs then Machine.get_reg t.m i
          else flags_word (Machine.get_flags t.m)
        else read_kw t (base + i))
  in
  let pb = t.layout.part_base.(r) and ps = t.layout.part_size.(r) in
  let part = Array.init ps (fun i -> Machine.read_phys t.m (pb + i)) in
  { ck_save = save; ck_part = part; ck_sum = checkpoint_sum ~save ~part }

let take_checkpoint t r ~live =
  t.ckstore.ck_last.(r) <- Some (capture_checkpoint t r ~live);
  t.counts.ct_checkpoints <- t.counts.ct_checkpoints + 1

let checkpoint_ok ck = ck.ck_sum = checkpoint_sum ~save:ck.ck_save ~part:ck.ck_part

(* -- The kernel as machine code ------------------------------------------- *)

(* Generated, configuration-specialised kernel assembly (as the real SUE
   was built for its deployment). Register conventions inside the kernel:
   r6 = trap frame base (0x7f00), r5 = index of the regime that trapped,
   r3 = its save-area base, r0-r2, r4 = scratch. Arguments and results of
   kernel services live in the interrupted regime's SAVE AREA (the exit
   path reloads the frame from there before Rti). *)
let generate_kernel ~bugs ~nregs ~rdt ~chan_descs =
  let i x = Isa.Instr x in
  (* dst := 12 * idx + 2, clobbering r0 *)
  let save_base_of ~dst ~idx =
    [
      i (Isa.Mov (dst, idx));
      i (Isa.Shl (dst, 3));
      i (Isa.Mov (0, idx));
      i (Isa.Shl (0, 2));
      i (Isa.Add (dst, 0));
      i (Isa.Loadi (0, 2));
      i (Isa.Add (dst, 0));
    ]
  in
  (* copy registers + flags between the frame (r6) and a save area *)
  let save_frame_to ~base =
    List.concat_map
      (fun k ->
        if k = 3 && List.mem Forget_register_save bugs then []
        else [ i (Isa.Load (0, 6, k)); i (Isa.Store (0, base, k)) ])
      [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    @ [ i (Isa.Load (0, 6, 8)); i (Isa.Store (0, base, 8)) ]
  in
  let load_frame_from ~base =
    List.concat_map
      (fun k -> [ i (Isa.Load (0, base, k)); i (Isa.Store (0, 6, k)) ])
      [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let case value label = [ i (Isa.Loadi (1, value)); i (Isa.Cmp (0, 1)); Isa.Branch_eq label ] in
  let entry =
    [ Isa.Label "entry"; i (Isa.Loadi (6, 0x7f)); i (Isa.Shl (6, 8)) ]
    @ [ i (Isa.Loadi (4, 0)); i (Isa.Load (5, 4, 0)) ]
    @ save_base_of ~dst:3 ~idx:5
    @ save_frame_to ~base:3
    @ [ i (Isa.Load (0, 6, 9)) ]
    @ case Machine.cause_swap "resched"
    @ case Machine.cause_send "send"
    @ case Machine.cause_recv "recv"
    @ case Machine.cause_wait "wait"
    @ case Machine.cause_resched "resched"
    (* bad trap or fault: park the regime *)
    @ [ i (Isa.Loadi (0, status_parked)); i (Isa.Store (0, 3, off_status)); Isa.Branch "resched" ]
    @ [
        Isa.Label "wait";
        i (Isa.Loadi (0, status_waiting));
        i (Isa.Store (0, 3, off_status));
        Isa.Branch "resched";
      ]
  in
  let resched =
    [ Isa.Label "resched"; i (Isa.Loadi (2, nregs)); i (Isa.Mov (1, 5)); Isa.Label "scan" ]
    (* candidate := (candidate + 1) mod nregs *)
    @ [
        i (Isa.Loadi (0, 1));
        i (Isa.Add (1, 0));
        i (Isa.Loadi (0, nregs));
        i (Isa.Cmp (1, 0));
        Isa.Branch_ne "nowrap";
        i (Isa.Loadi (1, 0));
        Isa.Label "nowrap";
      ]
    @ save_base_of ~dst:3 ~idx:1
    @ [ i (Isa.Load (0, 3, off_status)); i (Isa.Loadi (4, 0)); i (Isa.Cmp (0, 4)); Isa.Branch_eq "found" ]
    @ [
        i (Isa.Loadi (0, 1));
        i (Isa.Sub (2, 0));
        i (Isa.Loadi (0, 0));
        i (Isa.Cmp (2, 0));
        Isa.Branch_ne "scan";
      ]
    (* nobody is runnable: stall in kernel mode; the interrupt path
       resumes us here and we rescan *)
    @ [ i Isa.Halt; Isa.Branch "resched" ]
  in
  let found =
    [ Isa.Label "found"; i (Isa.Loadi (4, 0)); i (Isa.Store (1, 4, 0)) ]
    @ [ i (Isa.Loadi (2, rdt)); i (Isa.Mov (0, 1)); i (Isa.Shl (0, 3)); i (Isa.Add (2, 0)) ]
    @ (if List.mem Partition_hole bugs then
         (* spill the outgoing regime's R0 into the incoming partition *)
         [ i (Isa.Load (3, 2, 0)); i (Isa.Load (0, 6, 0)); i (Isa.Store (0, 3, 0)) ]
       else [])
    @ [ i (Isa.Loadi (3, 0x7f)); i (Isa.Shl (3, 8)); i (Isa.Loadi (0, 0x10)); i (Isa.Add (3, 0)) ]
    @ List.concat_map
        (fun (rdt_off, mmu_off) ->
          [ i (Isa.Load (0, 2, rdt_off)); i (Isa.Store (0, 3, mmu_off)) ])
        [ (0, 0); (1, 1); (3, 3); (4, 4); (5, 5); (6, 6); (2, 2) (* slot count last *) ]
    @ save_base_of ~dst:4 ~idx:1
    @ load_frame_from ~base:4
    @ [ i Isa.Rti ]
  in
  let restore =
    [ Isa.Label "restore" ] @ save_base_of ~dst:4 ~idx:5 @ load_frame_from ~base:4 @ [ i Isa.Rti ]
  in
  let dispatch_chan prefix =
    [ Isa.Label prefix; i (Isa.Load (0, 3, 0)) ]
    @ List.concat
        (List.mapi
           (fun k _ -> [ i (Isa.Loadi (1, k)); i (Isa.Cmp (0, 1)); Isa.Branch_eq (Fmt.str "%s%d" prefix k) ])
           chan_descs)
    @ [ Isa.Branch "chanbad" ]
  in
  let send_handler k (sender, _receiver, send_area, _recv_area) =
    [
      Isa.Label (Fmt.str "send%d" k);
      i (Isa.Loadi (1, sender));
      i (Isa.Cmp (5, 1));
      Isa.Branch_ne "chanbad";
      i (Isa.Loadi (4, send_area));
      i (Isa.Load (1, 4, 1));
      i (Isa.Loadi (0, 1));
      i (Isa.Cmp (1, 0));
      Isa.Branch_eq "chanzero";  (* full: capacity is 1 *)
      i (Isa.Load (0, 3, 1));  (* payload: saved R1 *)
      i (Isa.Store (0, 4, 2));
      i (Isa.Loadi (0, 1));
      i (Isa.Store (0, 4, 1));
      i (Isa.Store (0, 3, 2));  (* result: saved R2 := 1 *)
      Isa.Branch "restore";
    ]
  in
  let recv_handler k (_sender, receiver, _send_area, recv_area) =
    [
      Isa.Label (Fmt.str "recv%d" k);
      i (Isa.Loadi (1, receiver));
      i (Isa.Cmp (5, 1));
      Isa.Branch_ne "chanbad";
      i (Isa.Loadi (4, recv_area));
      i (Isa.Load (1, 4, 1));
      i (Isa.Loadi (0, 0));
      i (Isa.Cmp (1, 0));
      Isa.Branch_eq "chanzero";  (* empty *)
      i (Isa.Load (0, 4, 2));
      i (Isa.Store (0, 3, 1));  (* datum into saved R1 *)
      i (Isa.Loadi (0, 0));
      i (Isa.Store (0, 4, 1));
      i (Isa.Loadi (0, 1));
      i (Isa.Store (0, 3, 2));
      Isa.Branch "restore";
    ]
  in
  let tails =
    [
      Isa.Label "chanzero";
      i (Isa.Loadi (0, 0));
      i (Isa.Store (0, 3, 2));
      Isa.Branch "restore";
      Isa.Label "chanbad";
      i (Isa.Loadi (0, 2));
      i (Isa.Store (0, 3, 2));
      Isa.Branch "restore";
    ]
  in
  (* Section order keeps every branch within the ISA's +-128 range:
     handlers branch forward to the shared tails and "restore". *)
  entry @ resched @ found
  @ dispatch_chan "send" @ dispatch_chan "recv"
  @ List.concat (List.mapi send_handler chan_descs)
  @ List.concat (List.mapi recv_handler chan_descs)
  @ tails @ restore

let rdt_stride = 8

let validate_assembly cfg ~rdt ~nregs =
  let fail msg = invalid_arg ("Sue.build (assembly): " ^ msg) in
  if cfg.Config.quantum <> None then fail "preemption quantum not supported";
  if nregs > 4 then fail "at most 4 regimes";
  if List.length cfg.Config.channels > 4 then fail "at most 4 channels";
  List.iter
    (fun ch -> if ch.Config.capacity <> 1 then fail "channel capacities must be 1")
    cfg.Config.channels;
  List.iter
    (fun r -> if List.length r.Config.devices > 4 then fail "at most 4 devices per regime")
    cfg.Config.regimes;
  if rdt + (rdt_stride * nregs) > 250 then fail "kernel data must stay below address 250"

let build ?(bugs = []) ?(impl = Microcode) ?watchdog cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Sue.build: " ^ msg));
  (match watchdog with
  | None -> ()
  | Some w ->
    if w < 1 then invalid_arg "Sue.build: watchdog must be positive";
    if cfg.Config.quantum <> None then
      invalid_arg "Sue.build: watchdog and preemption quantum are exclusive";
    if impl = Assembly then invalid_arg "Sue.build: watchdog requires the microcode kernel");
  let nregs = List.length cfg.Config.regimes in
  (* The assembly kernel is generated before the final layout: its data
     addresses (channel areas, RDT) depend only on the configuration. *)
  let kcode, rdt =
    match impl with
    | Microcode -> ([||], 0)
    | Assembly ->
      let chan_base = 2 + (regime_record * nregs) in
      let pos = ref chan_base in
      let colour_index c =
        let rec find i rs =
          match rs with
          | [] -> raise Not_found
          | r :: rest -> if Colour.equal r.Config.colour c then i else find (i + 1) rest
        in
        find 0 cfg.Config.regimes
      in
      let chan_descs =
        List.map
          (fun ch ->
            let area = ch.Config.capacity + 2 in
            let a = !pos in
            pos := !pos + (2 * area);
            let recv_area =
              if ch.Config.cut && not (List.mem Uncut_channel bugs) then a + area else a
            in
            (colour_index ch.Config.sender, colour_index ch.Config.receiver, a, recv_area))
          cfg.Config.channels
      in
      let rdt = !pos in
      validate_assembly cfg ~rdt ~nregs;
      (Isa.assemble (generate_kernel ~bugs ~nregs ~rdt ~chan_descs), rdt)
  in
  let extra = if impl = Assembly then (rdt_stride * nregs) + Array.length kcode else 0 in
  let layout, mem_words = compute_layout ~extra cfg in
  if mem_words > Machine.device_space then invalid_arg "Sue.build: memory exceeds address space";
  let m = Machine.create ~mem_words ~devices:(Array.to_list layout.dev_kinds) in
  let code_base = rdt + (rdt_stride * nregs) in
  let t =
    {
      layout;
      cfg;
      bug_list = bugs;
      m;
      impl;
      rdt_base = rdt;
      code_base;
      code_len = Array.length kcode;
      watchdog;
      counts =
        {
          ct_instrs = Array.make nregs 0;
          ct_traps = Array.make nregs 0;
          ct_swaps = Array.make nregs 0;
          ct_sent = Array.make nregs 0;
          ct_recvd = Array.make nregs 0;
          ct_switches = 0;
          ct_irqs_forwarded = 0;
          ct_wakes = 0;
          ct_stalls = 0;
          ct_inputs_latched = 0;
          ct_outputs_observed = 0;
          ct_kernel_instrs = 0;
          ct_fault_parks = 0;
          ct_guard_breaches = 0;
          ct_chan_repairs = 0;
          ct_watchdog_fires = 0;
          ct_panics = 0;
          ct_checkpoints = 0;
          ct_restarts = 0;
          ct_warm_reboots = 0;
          ct_fault_log = [];
          ct_fault_log_len = 0;
        };
      ckstore =
        {
          ck_init = Array.make nregs { ck_save = [||]; ck_part = [||]; ck_sum = 0 };
          ck_last = Array.make nregs None;
        };
    }
  in
  (* Load each regime's program at the bottom of its partition. *)
  List.iteri
    (fun r regime ->
      let code = Isa.assemble regime.Config.program in
      if Array.length code > layout.part_size.(r) then
        invalid_arg
          (Fmt.str "Sue.build: program of %a overflows its partition" Colour.pp regime.Config.colour);
      Array.iteri (fun i w -> Machine.write_phys m (layout.part_base.(r) + i) w) code)
    cfg.Config.regimes;
  (* Assembly: install the regime descriptor table and the kernel code. *)
  if impl = Assembly then begin
    for r = 0 to nregs - 1 do
      let e = rdt + (rdt_stride * r) in
      Machine.write_phys m (e + 0) layout.part_base.(r);
      Machine.write_phys m (e + 1) layout.part_size.(r);
      Machine.write_phys m (e + 2) (Array.length layout.dev_slots.(r));
      Array.iteri (fun k d -> Machine.write_phys m (e + 3 + k) d) layout.dev_slots.(r)
    done;
    Array.iteri (fun i w -> Machine.write_phys m (code_base + i) w) kcode
  end;
  (* Regime 0 runs first. *)
  set_current_index t 0;
  reset_countdown t;
  (* Arm the hardening: fence the partitions and seal every save area. *)
  Array.iter (fun a -> Machine.write_phys m a guard_pattern) layout.guards;
  for r = 0 to nregs - 1 do
    refresh_save_checksum t r
  done;
  (* Seed the checkpoint store with the as-built image of every regime, so
     a regime that parks before its first effect can still be restarted. *)
  for r = 0 to nregs - 1 do
    t.ckstore.ck_init.(r) <- capture_checkpoint t r ~live:false
  done;
  Machine.set_mmu m ~base:layout.part_base.(0) ~limit:layout.part_size.(0)
    ~dev_slots:layout.dev_slots.(0);
  t

let kernel_code_words t = t.code_len

let config t = t.cfg
let machine t = t.m
let bugs t = t.bug_list
let kernel_words t = t.layout.kernel_size

(* -- Kernel telemetry ------------------------------------------------------ *)

let kstats t =
  let per array = Array.to_list (Array.mapi (fun r n -> (t.layout.colours.(r), n)) array) in
  {
    ks_instrs = per t.counts.ct_instrs;
    ks_traps = per t.counts.ct_traps;
    ks_swaps = per t.counts.ct_swaps;
    ks_sent = per t.counts.ct_sent;
    ks_recvd = per t.counts.ct_recvd;
    ks_switches = t.counts.ct_switches;
    ks_irqs_forwarded = t.counts.ct_irqs_forwarded;
    ks_wakes = t.counts.ct_wakes;
    ks_stalls = t.counts.ct_stalls;
    ks_inputs_latched = t.counts.ct_inputs_latched;
    ks_outputs_observed = t.counts.ct_outputs_observed;
    ks_kernel_instrs = t.counts.ct_kernel_instrs;
    ks_fault_parks = t.counts.ct_fault_parks;
    ks_guard_breaches = t.counts.ct_guard_breaches;
    ks_chan_repairs = t.counts.ct_chan_repairs;
    ks_watchdog_fires = t.counts.ct_watchdog_fires;
    ks_panics = t.counts.ct_panics;
    ks_checkpoints = t.counts.ct_checkpoints;
    ks_restarts = t.counts.ct_restarts;
    ks_warm_reboots = t.counts.ct_warm_reboots;
  }

(* A single O(1) read summarizing the audit-level counters: the online
   monitor compares successive values to decide, without allocating a
   [kstats] record, whether the step it just watched detected anything. *)
let audit_count t =
  let c = t.counts in
  c.ct_fault_parks + c.ct_guard_breaches + c.ct_chan_repairs + c.ct_watchdog_fires + c.ct_panics
  + c.ct_restarts + c.ct_warm_reboots

let reset_kstats t =
  let c = t.counts in
  Array.fill c.ct_instrs 0 (Array.length c.ct_instrs) 0;
  Array.fill c.ct_traps 0 (Array.length c.ct_traps) 0;
  Array.fill c.ct_swaps 0 (Array.length c.ct_swaps) 0;
  Array.fill c.ct_sent 0 (Array.length c.ct_sent) 0;
  Array.fill c.ct_recvd 0 (Array.length c.ct_recvd) 0;
  c.ct_switches <- 0;
  c.ct_irqs_forwarded <- 0;
  c.ct_wakes <- 0;
  c.ct_stalls <- 0;
  c.ct_inputs_latched <- 0;
  c.ct_outputs_observed <- 0;
  c.ct_kernel_instrs <- 0;
  c.ct_fault_parks <- 0;
  c.ct_guard_breaches <- 0;
  c.ct_chan_repairs <- 0;
  c.ct_watchdog_fires <- 0;
  c.ct_panics <- 0;
  c.ct_checkpoints <- 0;
  c.ct_restarts <- 0;
  c.ct_warm_reboots <- 0;
  c.ct_fault_log <- [];
  c.ct_fault_log_len <- 0

let telemetry t =
  let reg = Sep_obs.Telemetry.create () in
  let s = kstats t in
  let set name v = Sep_obs.Telemetry.incr ~by:v (Sep_obs.Telemetry.counter reg name) in
  let per name pairs =
    List.iter (fun (c, n) -> set (Fmt.str "sue.%s.%s" name (Colour.name c)) n) pairs
  in
  per "instrs" s.ks_instrs;
  per "traps" s.ks_traps;
  per "swaps" s.ks_swaps;
  per "chan_words_sent" s.ks_sent;
  per "chan_words_recvd" s.ks_recvd;
  set "sue.switches" s.ks_switches;
  set "sue.irqs_forwarded" s.ks_irqs_forwarded;
  set "sue.wakes" s.ks_wakes;
  set "sue.stalls" s.ks_stalls;
  set "sue.inputs_latched" s.ks_inputs_latched;
  set "sue.outputs_observed" s.ks_outputs_observed;
  set "sue.kernel_instrs" s.ks_kernel_instrs;
  set "sue.fault_parks" s.ks_fault_parks;
  set "sue.guard_breaches" s.ks_guard_breaches;
  set "sue.chan_repairs" s.ks_chan_repairs;
  set "sue.watchdog_fires" s.ks_watchdog_fires;
  set "sue.panics" s.ks_panics;
  set "sue.checkpoints" s.ks_checkpoints;
  set "sue.restarts" s.ks_restarts;
  set "sue.warm_reboots" s.ks_warm_reboots;
  reg

let current_colour t = t.layout.colours.(current_index t)

let status_of_code s =
  if s = status_waiting then Abstract_regime.Waiting
  else if s = status_parked then Abstract_regime.Parked
  else Abstract_regime.Running

let regime_status t c =
  let r = Config.regime_index t.cfg c in
  status_of_code (get_status t r)

let device_owner t d = t.layout.colours.(t.layout.dev_owner.(d))

let device_slot t d =
  let owner = t.layout.dev_owner.(d) in
  let slots = t.layout.dev_slots.(owner) in
  let rec find i = if slots.(i) = d then i else find (i + 1) in
  (t.layout.colours.(owner), find 0)

(* -- Physical-layout accessors (for fault injection and diagnostics) ------- *)

let partition_bounds t c =
  let r = Config.regime_index t.cfg c in
  (t.layout.part_base.(r), t.layout.part_size.(r))

let save_area_base t c = t.layout.save_base.(Config.regime_index t.cfg c)
let guard_addrs t = Array.to_list t.layout.guards

let channel_area t id =
  if id >= 0 && id < Array.length t.layout.chans then begin
    let ci = t.layout.chans.(id) in
    Some (ci.ci_area_a, ci.ci_area_b, ci.ci_capacity)
  end
  else None

let kernel_code_region t = (t.code_base, t.code_len)

(* -- Context switching ---------------------------------------------------- *)

let save_context t r =
  let base = t.layout.save_base.(r) in
  for i = 0 to Isa.num_regs - 1 do
    if not (i = 3 && has_bug t Forget_register_save) then
      write_kw t (base + i) (Machine.get_reg t.m i)
  done;
  write_kw t (base + off_flags) (flags_word (Machine.get_flags t.m));
  refresh_save_checksum t r

let load_context t r =
  let base = t.layout.save_base.(r) in
  for i = 0 to Isa.num_regs - 1 do
    Machine.set_reg t.m i (read_kw t (base + i))
  done;
  Machine.set_flags t.m (flags_of_word (read_kw t (base + off_flags)));
  Machine.set_mmu t.m ~base:t.layout.part_base.(r) ~limit:t.layout.part_size.(r)
    ~dev_slots:t.layout.dev_slots.(r)

let next_runnable t from =
  let n = t.layout.nregs in
  let rec scan k =
    if k > n then None
    else begin
      let r = (from + k) mod n in
      if get_status t r = status_runnable then Some r else scan (k + 1)
    end
  in
  scan 1

(* Context switch with the fail-safe restore path: a candidate whose save
   area no longer matches its checksum is parked (and the corruption
   audited) instead of being loaded, and the processor is offered to the
   next runnable regime. When every candidate is corrupt the kernel stays
   on the current regime, whose live context was never disturbed — a
   defined safe state rather than an exception. Guard words are swept on
   the same occasion: the switch is the kernel's natural audit point. *)
let switch_to t r =
  let cur = current_index t in
  if r <> cur then begin
    ignore (guard_sweep t);
    save_context t cur;
    (* SWAP-boundary checkpoint: the context just saved is exactly the
       state the regime would resume from, so it is the natural capture
       point. A parked regime is excluded — its live context is garbage
       from the instruction that parked it, not a state worth reviving. *)
    if get_status t cur <> status_parked then take_checkpoint t cur ~live:false;
    if has_bug t Partition_hole then
      Machine.write_phys t.m t.layout.part_base.(r) (Machine.get_reg t.m 0);
    let rec settle r =
      if r = cur then ()
      else if save_area_ok t r then begin
        t.counts.ct_switches <- t.counts.ct_switches + 1;
        if Sep_obs.Trace.enabled () then
          Sep_obs.Trace.instant ~cat:"sue"
            ~args:
              [
                ("from", Sep_util.Json.String (Colour.name t.layout.colours.(cur)));
                ("to", Sep_util.Json.String (Colour.name t.layout.colours.(r)));
              ]
            "switch";
        set_current_index t r;
        load_context t r;
        reset_countdown t
      end
      else begin
        record_fault t (Save_area_corrupt t.layout.colours.(r));
        t.counts.ct_fault_parks <- t.counts.ct_fault_parks + 1;
        set_status t r status_parked;
        match next_runnable t r with
        | Some r' -> settle r'
        | None -> ()
      end
    in
    settle r
  end

let swap_away t =
  let cur = current_index t in
  match next_runnable t cur with
  | Some r when r <> cur -> switch_to t r
  | Some _ | None -> ()

(* -- Recovery: regime restart and kernel warm reboot ------------------------ *)

type restart_result =
  | Restarted
  | Not_parked
  | Bad_checkpoint

let require_microcode t what =
  if t.impl <> Microcode then
    invalid_arg (Fmt.str "Sue.%s: requires the microcode kernel" what)

let best_checkpoint t r =
  match t.ckstore.ck_last.(r) with Some ck -> ck | None -> t.ckstore.ck_init.(r)

let restore_checkpoint t r ck =
  let base = t.layout.save_base.(r) in
  Array.iteri (fun i w -> write_kw t (base + i) w) ck.ck_save;
  let pb = t.layout.part_base.(r) in
  Array.iteri (fun i w -> Machine.write_phys t.m (pb + i) w) ck.ck_part;
  set_status t r status_runnable;
  refresh_save_checksum t r

(* Restore a parked regime from its last good checkpoint. Only the
   regime's own save area, partition and status are touched — channel
   contents and device registers are external to the "node" being
   rebooted, exactly as wires and peripherals survive a machine reboot in
   the distributed analogue — so a restart of one colour commutes with a
   restart of any other and is invisible to every other colour's Phi. *)
let restart t c =
  require_microcode t "restart";
  let r = Config.regime_index t.cfg c in
  if get_status t r <> status_parked then Not_parked
  else begin
    let ck = best_checkpoint t r in
    if not (checkpoint_ok ck) then begin
      record_fault t (Checkpoint_corrupt c);
      Bad_checkpoint
    end
    else begin
      restore_checkpoint t r ck;
      t.counts.ct_restarts <- t.counts.ct_restarts + 1;
      record_fault t (Regime_restart c);
      if current_index t = r then begin
        load_context t r;
        reset_countdown t
      end;
      Restarted
    end
  end

let all_parked t =
  let rec go r = r >= t.layout.nregs || (get_status t r = status_parked && go (r + 1)) in
  go 0

(* Warm reboot: recover from the all-parked halt a panic (or a park
   cascade) leaves behind. Every parked regime is restored from its
   checkpoint; the audit log is deliberately preserved — it is the record
   of why the reboot happened. Regimes whose checkpoints fail their
   checksum stay parked and are audited. Returns the restored colours. *)
let warm_reboot t =
  require_microcode t "warm_reboot";
  t.counts.ct_warm_reboots <- t.counts.ct_warm_reboots + 1;
  record_fault t Warm_reboot;
  (* re-establish the kernel's own fences before reviving anyone *)
  Array.iter (fun a -> Machine.write_phys t.m a guard_pattern) t.layout.guards;
  let cur = current_index t in
  let cur_was_runnable = get_status t cur = status_runnable in
  let restored = ref [] in
  for r = 0 to t.layout.nregs - 1 do
    if get_status t r = status_parked then begin
      let c = t.layout.colours.(r) in
      let ck = best_checkpoint t r in
      if checkpoint_ok ck then begin
        restore_checkpoint t r ck;
        t.counts.ct_restarts <- t.counts.ct_restarts + 1;
        record_fault t (Regime_restart c);
        restored := c :: !restored
      end
      else record_fault t (Checkpoint_corrupt c)
    end
  done;
  (* Hand the processor over: if the current regime was revived, resume
     it; if it stayed parked, offer the processor to the next runnable
     regime. A regime that was live all along keeps its live context. *)
  if not cur_was_runnable then begin
    if get_status t cur = status_runnable then begin
      load_context t cur;
      reset_countdown t
    end
    else begin
      match next_runnable t cur with
      | Some r ->
        set_current_index t r;
        load_context t r;
        reset_countdown t
      | None -> ()
    end
  end;
  List.rev !restored

(* Test hook: damage the checkpoint [restart] would use, to exercise the
   Bad_checkpoint path. *)
let corrupt_checkpoint t c =
  let r = Config.regime_index t.cfg c in
  let ck = best_checkpoint t r in
  if Array.length ck.ck_save > 0 then ck.ck_save.(0) <- ck.ck_save.(0) lxor 0x40

(* -- Channels ------------------------------------------------------------- *)

let find_chan t id =
  if id >= 0 && id < Array.length t.layout.chans then Some t.layout.chans.(id) else None

let ring_push t area cap w =
  let head = read_kw t area and count = read_kw t (area + 1) in
  if count >= cap then false
  else begin
    write_kw t (area + 2 + ((head + count) mod cap)) w;
    write_kw t (area + 1) (count + 1);
    true
  end

(* In uncorrupted state head < cap; a flipped head word must yield an
   in-bounds (garbage) read, not an out-of-range trap that takes the whole
   machine model down. The corruption is audited and the head word
   repaired (mod cap), so one flip is reported once, like a guard
   breach. *)
let ring_pop t area cap =
  let head = read_kw t area and count = read_kw t (area + 1) in
  if count = 0 then None
  else begin
    let head =
      if head >= cap || head < 0 then begin
        let repaired = ((head mod cap) + cap) mod cap in
        t.counts.ct_chan_repairs <- t.counts.ct_chan_repairs + 1;
        record_fault t (Channel_head_corrupt area);
        write_kw t area repaired;
        repaired
      end
      else head
    in
    let w = read_kw t (area + 2 + head) in
    write_kw t area ((head + 1) mod cap);
    write_kw t (area + 1) (count - 1);
    Some w
  end

let ring_contents t area cap =
  let head = read_kw t area and count = read_kw t (area + 1) in
  List.init count (fun i -> read_kw t (area + 2 + ((head + i) mod cap)))

let recv_area t ci = if ci.ci_cut && not (has_bug t Uncut_channel) then ci.ci_area_b else ci.ci_area_a

(* The receive end induced by the intended design (bugs do not change the
   specification): the second buffer when the channel is cut. *)
let intended_recv_area ci = if ci.ci_cut then ci.ci_area_b else ci.ci_area_a

let do_send t cur =
  let set_result v = Machine.set_reg t.m 2 v in
  match find_chan t (Machine.get_reg t.m 0) with
  | Some ci when ci.ci_sender = cur ->
    if ring_push t ci.ci_area_a ci.ci_capacity (Machine.get_reg t.m 1) then begin
      t.counts.ct_sent.(cur) <- t.counts.ct_sent.(cur) + 1;
      set_result 1
    end
    else set_result 0
  | Some _ | None -> set_result 2

let do_recv t cur =
  let set_result v = Machine.set_reg t.m 2 v in
  match find_chan t (Machine.get_reg t.m 0) with
  | Some ci when ci.ci_receiver = cur -> begin
    match ring_pop t (recv_area t ci) ci.ci_capacity with
    | Some w ->
      Machine.set_reg t.m 1 w;
      t.counts.ct_recvd.(cur) <- t.counts.ct_recvd.(cur) + 1;
      set_result 1
    | None -> set_result 0
  end
  | Some _ | None -> set_result 2

(* -- Driving the assembly kernel ------------------------------------------- *)

(* A fault taken {e inside} the kernel (a trap or machine fault while
   running kernel code, or kernel code that never terminates) means the
   kernel itself can no longer be trusted. The fail-safe response is a
   panic: park every regime and leave the machine halted in kernel mode.
   Nothing is runnable afterwards, the execution stage stalls forever, and
   the audit log records why — a defined safe state in place of the old
   [failwith]. *)
let kernel_panic t reason =
  t.counts.ct_panics <- t.counts.ct_panics + 1;
  record_fault t (Kernel_panic reason);
  for r = 0 to t.layout.nregs - 1 do
    set_status t r status_parked
  done;
  (* flush the flight recorder: the ring now ends with the audit instant
     for this panic, preceded by the events that led up to it *)
  ignore (Sep_obs.Trace.dump ~reason:("kernel-panic: " ^ reason))

(* Model a whole-node power failure: every regime's live context is lost
   and the machine halts in the all-parked state, exactly the halt a panic
   leaves behind. The audit log survives (it is battery-backed in the
   analogue) and records the outage; {!warm_reboot} then restores every
   regime from its last checksummed checkpoint — the federation
   supervisor's failover path. *)
let crash t =
  require_microcode t "crash";
  kernel_panic t "node power failure"

let fault_reason = function
  | Machine.Illegal_instruction w -> Fmt.str "illegal instruction %04x" (w : int)
  | Machine.Mem_violation a -> Fmt.str "memory violation at %04x" a
  | Machine.Device_violation a -> Fmt.str "device violation at %04x" a

(* Run kernel machine code until it returns to user mode ([Rti]) or stalls
   ([Halt] with nobody runnable). Fuel guards against a runaway kernel —
   exhausting it is a kernel bug, not a regime behaviour, and panics. *)
let run_kernel t =
  let fuel = ref 20_000 in
  let before = current_index t in
  let rec loop () =
    decr fuel;
    if !fuel <= 0 then kernel_panic t "kernel code did not terminate"
    else begin
      t.counts.ct_kernel_instrs <- t.counts.ct_kernel_instrs + 1;
      match Machine.step_user t.m with
      | Machine.Stepped -> loop ()
      | Machine.Returned -> ()
      | Machine.Waiting -> ()
      | Machine.Trapped n -> kernel_panic t (Fmt.str "trap %d inside the kernel" n)
      | Machine.Faulted f -> kernel_panic t (Fmt.str "fault inside the kernel: %s" (fault_reason f))
    end
  in
  loop ();
  if current_index t <> before then begin
    t.counts.ct_switches <- t.counts.ct_switches + 1;
    if Sep_obs.Trace.enabled () then
      Sep_obs.Trace.instant ~cat:"sue"
        ~args:
          [
            ("from", Sep_util.Json.String (Colour.name t.layout.colours.(before)));
            ("to", Sep_util.Json.String (Colour.name t.layout.colours.(current_index t)));
          ]
        "switch"
  end

let enter_and_run t cause =
  Machine.enter_kernel t.m ~cause ~vector:t.code_base;
  run_kernel t

(* -- The INPUT stage ------------------------------------------------------ *)

let deliver_inputs t arrivals =
  (* Busy Tx wires complete their transmission. *)
  ignore (Machine.device_outputs t.m);
  let ndevs = Array.length t.layout.dev_kinds in
  let latch (d, w) =
    let d = if has_bug t Misroute_device_input then (d + 1) mod ndevs else d in
    match t.layout.dev_kinds.(d) with
    | Machine.Rx ->
      let w = if has_bug t Input_crosstalk then Word.logxor w (Machine.get_reg t.m 0) else w in
      t.counts.ct_inputs_latched <- t.counts.ct_inputs_latched + 1;
      Machine.device_input t.m d w
    | Machine.Tx | Machine.Xform _ -> ()
  in
  List.iter latch arrivals;
  (* Field the raised interrupts: wake waiting owners. *)
  let field d =
    Machine.field_irq t.m d;
    t.counts.ct_irqs_forwarded <- t.counts.ct_irqs_forwarded + 1;
    let owner = t.layout.dev_owner.(d) in
    let owner = if has_bug t Misroute_interrupt then (owner + 1) mod t.layout.nregs else owner in
    if get_status t owner = status_waiting then begin
      t.counts.ct_wakes <- t.counts.ct_wakes + 1;
      set_status t owner status_runnable
    end
  in
  List.iter field (Machine.pending_irqs t.m);
  (* If the processor was stalled, hand it to a woken regime. For the
     assembly kernel, the stall is machine code halted inside its scan
     loop: the interrupt resumes the kernel, which rescans and returns
     into the woken regime. *)
  match t.impl with
  | Microcode -> begin
    let cur = current_index t in
    if get_status t cur <> status_runnable then begin
      match next_runnable t cur with
      | Some r -> switch_to t r
      | None -> ()
    end
  end
  | Assembly ->
    if Machine.mode t.m = Machine.Kernel then begin
      let any_runnable =
        let rec scan r = r < t.layout.nregs && (get_status t r = status_runnable || scan (r + 1)) in
        scan 0
      in
      if any_runnable then run_kernel t
    end

(* -- The operation stage -------------------------------------------------- *)

let bug_stalls t cur =
  has_bug t Schedule_on_foreign_state && cur <> 0 && read_kw t t.layout.save_base.(0) land 1 = 1

(* A level-triggered interrupt request: an Rx device holding an unread
   word keeps its line asserted. *)
let rx_pending t r =
  Array.exists
    (fun d ->
      t.layout.dev_owner.(d) = r
      &&
      match t.layout.dev_kinds.(d) with
      | Machine.Rx -> snd (Machine.device_regs t.m d) = 1
      | Machine.Tx | Machine.Xform _ -> false)
    (Array.init (Array.length t.layout.dev_kinds) Fun.id)

(* Trap instants carry the trapping colour and trap number; SWAP (trap 0)
   gets its own event name since it is the scheduling boundary the causal
   trace most often pivots on. *)
let trace_trap t cur n =
  if Sep_obs.Trace.enabled () then
    Sep_obs.Trace.instant ~cat:"sue"
      ~args:
        [
          ("colour", Sep_util.Json.String (Colour.name t.layout.colours.(cur)));
          ("number", Sep_util.Json.Int n);
        ]
      (if n = 0 then "swap" else "trap")

let exec_op_microcode t =
  let cur = current_index t in
  if get_status t cur <> status_runnable || bug_stalls t cur then
    t.counts.ct_stalls <- t.counts.ct_stalls + 1
  else begin
    t.counts.ct_instrs.(cur) <- t.counts.ct_instrs.(cur) + 1;
    (* Output-commit fence: any instruction whose effect escapes the regime
       — a device register changing (a Tx write arming a transmission, an
       Rx read consuming a latched word) or a successful channel transfer —
       is followed by a checkpoint. A later restart then replays only pure
       local computation, never duplicating or losing an observable effect. *)
    let dev_regs_before =
      Array.map (fun d -> Machine.device_regs t.m d) t.layout.dev_slots.(cur)
    in
    let checkpoint_if_device_effect () =
      let changed =
        Array.exists
          (fun i -> Machine.device_regs t.m t.layout.dev_slots.(cur).(i) <> dev_regs_before.(i))
          (Array.init (Array.length dev_regs_before) Fun.id)
      in
      if changed then take_checkpoint t cur ~live:true
    in
    match Machine.step_user t.m with
    | Machine.Stepped -> begin
      checkpoint_if_device_effect ();
      (* preemptive configurations: charge the quantum and, when it is
         spent, take the processor back *)
      match (t.cfg.Config.quantum, t.watchdog) with
      | Some q, _ ->
        let left = read_kw t quantum_addr - 1 in
        if left <= 0 then begin
          write_kw t quantum_addr q;
          swap_away t
        end
        else write_kw t quantum_addr left
      | None, Some w ->
        (* watchdog: a regime that never yields is forced off the
           processor after [w] instructions, audited but not parked —
           hogging is a liveness fault, not a corruption *)
        let left = read_kw t quantum_addr - 1 in
        if left <= 0 then begin
          write_kw t quantum_addr w;
          t.counts.ct_watchdog_fires <- t.counts.ct_watchdog_fires + 1;
          record_fault t (Watchdog_expired t.layout.colours.(cur));
          swap_away t
        end
        else write_kw t quantum_addr left
      | None, None -> ()
    end
    | Machine.Waiting ->
      (* WAIT falls through when an interrupt is already asserted,
         avoiding the classic poll-then-sleep race. *)
      if rx_pending t cur then ()
      else begin
        set_status t cur status_waiting;
        swap_away t
      end
    | Machine.Trapped 0 ->
      t.counts.ct_traps.(cur) <- t.counts.ct_traps.(cur) + 1;
      t.counts.ct_swaps.(cur) <- t.counts.ct_swaps.(cur) + 1;
      trace_trap t cur 0;
      swap_away t
    | Machine.Trapped 1 ->
      t.counts.ct_traps.(cur) <- t.counts.ct_traps.(cur) + 1;
      trace_trap t cur 1;
      do_send t cur;
      if Machine.get_reg t.m 2 = 1 then take_checkpoint t cur ~live:true
    | Machine.Trapped 2 ->
      t.counts.ct_traps.(cur) <- t.counts.ct_traps.(cur) + 1;
      trace_trap t cur 2;
      do_recv t cur;
      if Machine.get_reg t.m 2 = 1 then take_checkpoint t cur ~live:true
    | Machine.Trapped _ | Machine.Returned | Machine.Faulted _ ->
      (* Returned cannot occur in user mode (Rti faults there); treat it
         like any other illegal action *)
      set_status t cur status_parked;
      swap_away t
  end

let exec_op_assembly t =
  if Machine.mode t.m = Machine.Kernel then
    (* total stall: kernel halted in its scan loop *)
    t.counts.ct_stalls <- t.counts.ct_stalls + 1
  else begin
    let cur = current_index t in
    if get_status t cur <> status_runnable || bug_stalls t cur then
      t.counts.ct_stalls <- t.counts.ct_stalls + 1
    else begin
      t.counts.ct_instrs.(cur) <- t.counts.ct_instrs.(cur) + 1;
      (* The kernel machine code performs the channel copy itself; its
         effect is read back from the trapping regime's saved R2. *)
      let chan_result () = read_kw t (t.layout.save_base.(cur) + 2) in
      match Machine.step_user t.m with
      | Machine.Stepped -> ()
      | Machine.Trapped n when n <= 2 ->
        t.counts.ct_traps.(cur) <- t.counts.ct_traps.(cur) + 1;
        if n = 0 then t.counts.ct_swaps.(cur) <- t.counts.ct_swaps.(cur) + 1;
        trace_trap t cur n;
        enter_and_run t n;
        if n = 1 && chan_result () = 1 then t.counts.ct_sent.(cur) <- t.counts.ct_sent.(cur) + 1;
        if n = 2 && chan_result () = 1 then t.counts.ct_recvd.(cur) <- t.counts.ct_recvd.(cur) + 1
      | Machine.Trapped _ -> enter_and_run t Machine.cause_bad_trap
      | Machine.Waiting ->
        (* WAIT falls through on an asserted Rx line, as in microcode *)
        if rx_pending t cur then () else enter_and_run t Machine.cause_wait
      | Machine.Returned | Machine.Faulted _ -> enter_and_run t Machine.cause_fault
    end
  end

let span_exec = Sep_obs.Span.make "sue.exec_op"

let exec_op t =
  Sep_obs.Span.time span_exec (fun () ->
      match t.impl with
      | Microcode -> exec_op_microcode t
      | Assembly -> exec_op_assembly t)

(* -- Output observation --------------------------------------------------- *)

let outputs t =
  let leak =
    if has_bug t Output_leak then begin
      (* Crosstalk from the next regime's saved R1 onto every busy wire. *)
      let next = (current_index t + 1) mod t.layout.nregs in
      read_kw t (t.layout.save_base.(next) + 1)
    end
    else 0
  in
  let out = ref [] in
  Array.iteri
    (fun d kind ->
      match kind with
      | Machine.Tx ->
        let data, status = Machine.device_regs t.m d in
        if status = 1 then out := (d, Word.logor data leak) :: !out
      | Machine.Rx | Machine.Xform _ -> ())
    t.layout.dev_kinds;
  List.rev !out

let step t arrivals =
  if Sep_obs.Trace.enabled () then
    Sep_obs.Trace.instant ~cat:"sue"
      ~args:
        [ ("colour", Sep_util.Json.String (Colour.name t.layout.colours.(current_index t))) ]
      "step";
  let observed = outputs t in
  t.counts.ct_outputs_observed <- t.counts.ct_outputs_observed + List.length observed;
  deliver_inputs t arrivals;
  exec_op t;
  observed

let run t ~steps ~inputs =
  let rec loop n acc =
    if n >= steps then List.rev acc
    else begin
      let out = step t (inputs n) in
      loop (n + 1) (if out = [] then acc else out :: acc)
    end
  in
  loop 0 []

(* -- Abstraction ----------------------------------------------------------- *)

let phi t c =
  let r = Config.regime_index t.cfg c in
  let base = t.layout.part_base.(r) and size = t.layout.part_size.(r) in
  let mem = Array.init size (fun i -> Machine.read_phys t.m (base + i)) in
  let live = current_index t = r && Machine.mode t.m = Machine.User in
  let regs, flag_z, flag_n =
    if live then
      (Array.init Isa.num_regs (Machine.get_reg t.m), fst (Machine.get_flags t.m), snd (Machine.get_flags t.m))
    else begin
      let sb = t.layout.save_base.(r) in
      let regs = Array.init Isa.num_regs (fun i -> read_kw t (sb + i)) in
      let z, n = flags_of_word (read_kw t (sb + off_flags)) in
      (regs, z, n)
    end
  in
  let raised = Machine.pending_irqs t.m in
  let view d =
    let data, status = Machine.device_regs t.m d in
    {
      Abstract_regime.dv_kind = t.layout.dev_kinds.(d);
      dv_data = data;
      dv_status = status;
      dv_irq = List.mem d raised;
    }
  in
  let devices = Array.map view t.layout.dev_slots.(r) in
  let chan_end area ci =
    {
      Abstract_regime.ce_chan = ci.ci_id;
      ce_capacity = ci.ci_capacity;
      ce_contents = ring_contents t area ci.ci_capacity;
    }
  in
  let sends =
    Array.of_list
      (List.filter_map
         (fun ci -> if ci.ci_sender = r then Some (chan_end ci.ci_area_a ci) else None)
         (Array.to_list t.layout.chans))
  in
  let recvs =
    Array.of_list
      (List.filter_map
         (fun ci -> if ci.ci_receiver = r then Some (chan_end (intended_recv_area ci) ci) else None)
         (Array.to_list t.layout.chans))
  in
  {
    Abstract_regime.mem;
    regs;
    flag_z;
    flag_n;
    status = status_of_code (get_status t r);
    devices;
    sends;
    recvs;
  }

(* -- Operation naming ------------------------------------------------------ *)

(* Peek at the word the fetch would return, without the side effects of a
   real device read. *)
let peek_fetch t r pc =
  if pc < t.layout.part_size.(r) then Some (Machine.read_phys t.m (t.layout.part_base.(r) + pc))
  else if pc >= Machine.device_space then begin
    let off = pc - Machine.device_space in
    let slot = off lsr 1 and is_status = off land 1 = 1 in
    let slots = t.layout.dev_slots.(r) in
    if slot < Array.length slots then begin
      let data, status = Machine.device_regs t.m slots.(slot) in
      Some (if is_status then status else data)
    end
    else None
  end
  else None

let nextop_name t =
  let cur = current_index t in
  let c = Colour.name t.layout.colours.(cur) in
  if Machine.mode t.m = Machine.Kernel || get_status t cur <> status_runnable || bug_stalls t cur
  then c ^ ":stall"
  else begin
    match peek_fetch t cur (Machine.get_reg t.m Isa.pc_reg) with
    | None -> c ^ ":pcfault"
    | Some w -> Fmt.str "%s:%04x" c w
  end

(* -- Snapshot interface ---------------------------------------------------- *)

let copy t = { t with m = Machine.copy t.m }
let equal a b = Machine.equal a.m b.m
let hash t = Machine.hash t.m

let pp ppf t =
  Fmt.pf ppf "@[<v>sue(%a): current=%a op=%s@ %a@]" pp_impl t.impl Colour.pp (current_colour t)
    (nextop_name t) Machine.pp t.m

(* -- Scrambling, for randomized checking ----------------------------------- *)

let scramble_others rng t c =
  let t = copy t in
  let rng = Sep_util.Prng.copy rng in
  let word () = Sep_util.Prng.int rng 0x10000 in
  let c_idx = Config.regime_index t.cfg c in
  let cur = current_index t in
  Array.iteri
    (fun r base ->
      if r <> c_idx then begin
        (* partition contents *)
        for i = 0 to t.layout.part_size.(r) - 1 do
          Machine.write_phys t.m (base + i) (word ())
        done;
        (* save area, flags, status *)
        let sb = t.layout.save_base.(r) in
        for i = 0 to Isa.num_regs - 1 do
          write_kw t (sb + i) (word ())
        done;
        write_kw t (sb + off_flags) (Sep_util.Prng.int rng 4);
        write_kw t (sb + off_status) (Sep_util.Prng.int rng 3);
        (* reseal: the scrambled contents are the state under test, not a
           corruption for the hardening to flag *)
        refresh_save_checksum t r
      end)
    t.layout.part_base;
  (* Live registers and flags belong to whoever is current — unless the
     machine is stalled in kernel mode, in which case they are the
     kernel's own working registers (outside every Phi, and resumed by
     the kernel itself, so they must not be disturbed). *)
  if cur <> c_idx && Machine.mode t.m = Machine.User then begin
    for i = 0 to Isa.num_regs - 1 do
      Machine.set_reg t.m i (word ())
    done;
    Machine.set_flags t.m (Sep_util.Prng.bool rng, Sep_util.Prng.bool rng)
  end;
  (* devices of other regimes *)
  Array.iteri
    (fun d owner ->
      if owner <> c_idx then
        Machine.set_device_regs t.m d ~data:(word ()) ~status:(Sep_util.Prng.int rng 2))
    t.layout.dev_owner;
  (* channel ends not visible to c: the send end belongs to the sender;
     the receive end (second area when cut) belongs to the receiver; an
     uncut channel's single area is visible to both endpoints. *)
  let scramble_area area cap =
    write_kw t area (Sep_util.Prng.int rng cap);
    write_kw t (area + 1) (Sep_util.Prng.int rng (cap + 1));
    for i = 0 to cap - 1 do
      write_kw t (area + 2 + i) (word ())
    done
  in
  Array.iter
    (fun ci ->
      let sender_is_c = ci.ci_sender = c_idx and receiver_is_c = ci.ci_receiver = c_idx in
      if ci.ci_cut then begin
        if not sender_is_c then scramble_area ci.ci_area_a ci.ci_capacity;
        if not receiver_is_c then scramble_area ci.ci_area_b ci.ci_capacity
      end
      else begin
        if not (sender_is_c || receiver_is_c) then scramble_area ci.ci_area_a ci.ci_capacity;
        scramble_area ci.ci_area_b ci.ci_capacity
      end)
    t.layout.chans;
  t

(* -- Appendix-model packaging ---------------------------------------------- *)

let to_system ?(bugs = []) ?(impl = Microcode) ?(sanction_channels = false) ~inputs cfg =
  let t0 = build ~bugs ~impl cfg in
  let owner_name t d = Colour.name (device_owner t d) in
  let extract c pairs = List.filter (fun (d, _) -> owner_name t0 d = Colour.name c) pairs in
  let nextop s =
    let name = nextop_name s in
    { System.op_name = name; op_apply = (fun s -> let s' = copy s in exec_op s'; s') }
  in
  let abop c op =
    let prefix = Colour.name c ^ ":" in
    let is_mine = String.length op.System.op_name >= String.length prefix
                  && String.sub op.System.op_name 0 (String.length prefix) = prefix in
    if not is_mine then { System.abop_name = "id"; abop_apply = Fun.id }
    else if op.System.op_name = prefix ^ "stall" then { System.abop_name = "stall"; abop_apply = Fun.id }
    else { System.abop_name = op.System.op_name; abop_apply = Abstract_regime.step }
  in
  let pp_pairs ppf pairs =
    Fmt.pf ppf "%a" Fmt.(Dump.list (Dump.pair int int)) pairs
  in
  (* Condition 2's connected-system weakening, opt-in. Proof of
     Separability proper demands strict invisibility, and the uncut
     system rightly fails it (E5): a send lands in the very ring the
     receiver's abstraction reads, and a receive drains the ring the
     sender's abstraction reads (flow-control backflow). When the
     caller knowingly checks a *connected* system — a federation shard
     with live intra-shard channels — those two flows are exactly what
     the channel declaration sanctions. Sanction the interference iff
     the whole change is confined to the contents of declared uncut
     channels between [active] and [viewer], at the ends [viewer]
     sees: mask those contents on both sides and demand full equality
     of everything that remains. *)
  let sanctioned_chans active viewer =
    List.fold_left
      (fun (send_ids, recv_ids) (ch : Config.channel) ->
        if ch.Config.cut then (send_ids, recv_ids)
        else if Colour.equal ch.Config.sender viewer
                && Colour.equal ch.Config.receiver active
        then (ch.Config.chan_id :: send_ids, recv_ids)
        else if Colour.equal ch.Config.sender active
                && Colour.equal ch.Config.receiver viewer
        then (send_ids, ch.Config.chan_id :: recv_ids)
        else (send_ids, recv_ids))
      ([], []) cfg.Config.channels
  in
  let mask_ends ids ends =
    Array.map
      (fun ce ->
        if List.mem ce.Abstract_regime.ce_chan ids then
          { ce with Abstract_regime.ce_contents = [] }
        else ce)
      ends
  in
  let mask (send_ids, recv_ids) (a : Abstract_regime.t) =
    { a with
      Abstract_regime.sends = mask_ends send_ids a.Abstract_regime.sends;
      recvs = mask_ends recv_ids a.Abstract_regime.recvs
    }
  in
  let sanctioned_interference active viewer before after =
    sanction_channels
    &&
    match sanctioned_chans active viewer with
    | [], [] -> false
    | ids -> Abstract_regime.equal (mask ids before) (mask ids after)
  in
  {
    System.name = "sue";
    colours = Config.colours cfg;
    initial = [ t0 ];
    inputs;
    ops = [];
    colour_of = current_colour;
    input = (fun s i -> let s' = copy s in deliver_inputs s' i; s');
    nextop;
    output = outputs;
    extract_input = extract;
    extract_output = extract;
    abstract = (fun c s -> phi s c);
    abop;
    sanctioned_interference;
    equal_state = equal;
    hash_state = hash;
    equal_abstate = Abstract_regime.equal;
    hash_abstate = Abstract_regime.hash;
    equal_proj = ( = );
    pp_state = pp;
    pp_input = pp_pairs;
    pp_abstate = Abstract_regime.pp;
  }
