module Prng = Sep_util.Prng

type params = {
  walks : int;
  walk_len : int;
  scrambles : int;
}

let default_params = { walks = 8; walk_len = 64; scrambles = 2 }

let span_walk = Sep_obs.Span.make "randomized.walk"
let span_scramble = Sep_obs.Span.make "randomized.scramble"
let span_check_states = Sep_obs.Span.make "randomized.check_states"

let sample_states ?(bugs = []) ?(impl = Sue.Microcode) ~params ~seed ~inputs cfg =
  let rng = Prng.create seed in
  let alphabet = Array.of_list inputs in
  let colours = Config.colours cfg in
  let out = ref [] in
  let add s =
    out := s :: !out;
    Sep_obs.Span.time span_scramble (fun () ->
        List.iter
          (fun c ->
            for _ = 1 to params.scrambles do
              out := Sue.scramble_others rng s c :: !out
            done)
          colours)
  in
  for _ = 1 to params.walks do
    Sep_obs.Span.time span_walk (fun () ->
        let t = Sue.build ~bugs ~impl cfg in
        add (Sue.copy t);
        for _ = 1 to params.walk_len do
          let input = if Array.length alphabet = 0 then [] else Prng.choose rng alphabet in
          ignore (Sue.step t input);
          add (Sue.copy t)
        done)
  done;
  List.rev !out

let check ?(bugs = []) ?(impl = Sue.Microcode) ?(params = default_params) ?max_failures ~seed
    ~inputs cfg =
  let states = sample_states ~bugs ~impl ~params ~seed ~inputs cfg in
  let sys = Sue.to_system ~bugs ~impl ~inputs cfg in
  Sep_obs.Span.time span_check_states (fun () ->
      Separability.check_states ?max_failures sys states)
