module Prng = Sep_util.Prng

type params = {
  walks : int;
  walk_len : int;
  scrambles : int;
}

let default_params = { walks = 8; walk_len = 64; scrambles = 2 }

let span_walk = Sep_obs.Span.make "randomized.walk"
let span_scramble = Sep_obs.Span.make "randomized.scramble"
let span_check_states = Sep_obs.Span.make "randomized.check_states"

(* The walk loop, collecting both the state sample and the input schedule
   each walk followed. The PRNG consumption order (initial scrambles, then
   input choice and scrambles per step) is part of the reproducibility
   contract: seeds recorded in tests and experiments replay byte for
   byte. *)
let sample ?(bugs = []) ?(impl = Sue.Microcode) ~params ~seed ~inputs cfg =
  let rng = Prng.create seed in
  let alphabet = Array.of_list inputs in
  let colours = Config.colours cfg in
  let out = ref [] in
  let walks = ref [] in
  let add s =
    out := s :: !out;
    Sep_obs.Span.time span_scramble (fun () ->
        List.iter
          (fun c ->
            for _ = 1 to params.scrambles do
              out := Sue.scramble_others rng s c :: !out
            done)
          colours)
  in
  for _ = 1 to params.walks do
    Sep_obs.Span.time span_walk (fun () ->
        let t = Sue.build ~bugs ~impl cfg in
        add (Sue.copy t);
        let sched = ref [] in
        for _ = 1 to params.walk_len do
          let input = if Array.length alphabet = 0 then [] else Prng.choose rng alphabet in
          sched := input :: !sched;
          ignore (Sue.step t input);
          add (Sue.copy t)
        done;
        walks := List.rev !sched :: !walks)
  done;
  (List.rev !out, List.rev !walks)

let sample_states ?bugs ?impl ~params ~seed ~inputs cfg =
  fst (sample ?bugs ?impl ~params ~seed ~inputs cfg)

let sampled_walks ?bugs ?impl ~params ~seed ~inputs cfg =
  snd (sample ?bugs ?impl ~params ~seed ~inputs cfg)

let check ?(bugs = []) ?(impl = Sue.Microcode) ?(params = default_params) ?max_failures ~seed
    ~inputs cfg =
  let states = sample_states ~bugs ~impl ~params ~seed ~inputs cfg in
  let sys = Sue.to_system ~bugs ~impl ~inputs cfg in
  Sep_obs.Span.time span_check_states (fun () ->
      Separability.check_states ?max_failures sys states)
