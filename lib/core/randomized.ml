module Prng = Sep_util.Prng
module Par = Sep_par.Par

type params = {
  walks : int;
  walk_len : int;
  scrambles : int;
}

let default_params = { walks = 8; walk_len = 64; scrambles = 2 }

let span_walk = Sep_obs.Span.make "randomized.walk"
let span_scramble = Sep_obs.Span.make "randomized.scramble"
let span_check_states = Sep_obs.Span.make "randomized.check_states"

(* One walk, from its own PRNG stream. The stream is derived from
   (seed, walk index) — see {!Sep_util.Prng.stream} — so walk [i] samples
   the same states whether the walks run on one domain or many, and a
   [walks = n] sample is a prefix-extension of [walks = n-1]. The PRNG
   consumption order within a walk (initial scrambles, then input choice
   and scrambles per step) is part of the reproducibility contract: seeds
   recorded in tests and experiments replay byte for byte. *)
let one_walk ?(bugs = []) ?(impl = Sue.Microcode) ~params ~alphabet ~colours cfg rng =
  Sep_obs.Span.time span_walk (fun () ->
      let out = ref [] in
      let add s =
        out := s :: !out;
        Sep_obs.Span.time span_scramble (fun () ->
            List.iter
              (fun c ->
                for _ = 1 to params.scrambles do
                  out := Sue.scramble_others rng s c :: !out
                done)
              colours)
      in
      let t = Sue.build ~bugs ~impl cfg in
      add (Sue.copy t);
      let sched = ref [] in
      for _ = 1 to params.walk_len do
        let input = if Array.length alphabet = 0 then [] else Prng.choose rng alphabet in
        sched := input :: !sched;
        ignore (Sue.step t input);
        add (Sue.copy t)
      done;
      (List.rev !out, List.rev !sched))

(* The walk loop, collecting both the state sample and the input schedule
   each walk followed. Walks are independent and run in parallel under
   [jobs] domains; states and schedules are merged in walk order, so the
   sample is identical for any job count. *)
let sample ?(bugs = []) ?(impl = Sue.Microcode) ?jobs ~params ~seed ~inputs cfg =
  let alphabet = Array.of_list inputs in
  let colours = Config.colours cfg in
  let per_walk =
    Par.map_seeded ?jobs ~seed
      (fun rng () -> one_walk ~bugs ~impl ~params ~alphabet ~colours cfg rng)
      (List.init params.walks (fun _ -> ()))
  in
  (List.concat_map fst per_walk, List.map snd per_walk)

let sample_states ?bugs ?impl ?jobs ~params ~seed ~inputs cfg =
  fst (sample ?bugs ?impl ?jobs ~params ~seed ~inputs cfg)

let sampled_walks ?bugs ?impl ?jobs ~params ~seed ~inputs cfg =
  snd (sample ?bugs ?impl ?jobs ~params ~seed ~inputs cfg)

let check ?(bugs = []) ?(impl = Sue.Microcode) ?jobs ?(params = default_params) ?max_failures
    ~seed ~inputs cfg =
  let states = sample_states ~bugs ~impl ?jobs ~params ~seed ~inputs cfg in
  let sys = Sue.to_system ~bugs ~impl ~inputs cfg in
  Sep_obs.Span.time span_check_states (fun () ->
      Separability.check_states ?max_failures sys states)
