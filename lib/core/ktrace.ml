module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa

type event =
  | Executed of { colour : Colour.t; pc : int; instr : Isa.t }
  | Trapped of { colour : Colour.t; number : int }
  | Switched of { from_ : Colour.t; to_ : Colour.t }
  | Blocked of Colour.t
  | Parked of Colour.t
  | Woken of Colour.t
  | Arrived of { device : int; word : int }
  | Emitted of { device : int; word : int }
  | Stalled
  | Save_corrupt of Colour.t
  | Guard_breached of { addr : int }
  | Channel_corrupt of { addr : int }
  | Watchdog_fired of Colour.t
  | Kernel_panicked of { reason : string }
  | Restarted of Colour.t
  | Checkpoint_corrupt of Colour.t
  | Warm_rebooted

(* The audit constructors mirror Sue.kernel_fault one-for-one, so a new
   fault kind cannot compile without a trace event (and, below, a JSON
   schema entry). *)
let event_of_fault = function
  | Sue.Save_area_corrupt c -> Save_corrupt c
  | Sue.Guard_breach addr -> Guard_breached { addr }
  | Sue.Channel_head_corrupt addr -> Channel_corrupt { addr }
  | Sue.Watchdog_expired c -> Watchdog_fired c
  | Sue.Kernel_panic reason -> Kernel_panicked { reason }
  | Sue.Regime_restart c -> Restarted c
  | Sue.Checkpoint_corrupt c -> Checkpoint_corrupt c
  | Sue.Warm_reboot -> Warm_rebooted

let pp_event ppf = function
  | Executed e -> Fmt.pf ppf "%a@%04x  %a" Colour.pp e.colour e.pc Isa.pp e.instr
  | Trapped t -> Fmt.pf ppf "%a trap %d" Colour.pp t.colour t.number
  | Switched s -> Fmt.pf ppf "switch %a -> %a" Colour.pp s.from_ Colour.pp s.to_
  | Blocked c -> Fmt.pf ppf "%a waits" Colour.pp c
  | Parked c -> Fmt.pf ppf "%a PARKED" Colour.pp c
  | Woken c -> Fmt.pf ppf "%a woken" Colour.pp c
  | Arrived a -> Fmt.pf ppf "input dev%d <- %04x" a.device a.word
  | Emitted e -> Fmt.pf ppf "output dev%d -> %04x" e.device e.word
  | Stalled -> Fmt.string ppf "all regimes waiting"
  | Save_corrupt c -> Fmt.pf ppf "AUDIT save area of %a corrupt; parked" Colour.pp c
  | Guard_breached g -> Fmt.pf ppf "AUDIT guard %04x breached; repaired" g.addr
  | Channel_corrupt g -> Fmt.pf ppf "AUDIT channel head %04x corrupt; repaired" g.addr
  | Watchdog_fired c -> Fmt.pf ppf "AUDIT watchdog forced %a off the processor" Colour.pp c
  | Kernel_panicked k -> Fmt.pf ppf "AUDIT KERNEL PANIC: %s" k.reason
  | Restarted c -> Fmt.pf ppf "AUDIT %a restarted from its checkpoint" Colour.pp c
  | Checkpoint_corrupt c -> Fmt.pf ppf "AUDIT checkpoint of %a corrupt; left parked" Colour.pp c
  | Warm_rebooted -> Fmt.string ppf "AUDIT kernel warm reboot"

type entry = { step : int; events : event list }

type snapshot = {
  sn_current : Colour.t;
  sn_status : (Colour.t * Abstract_regime.status) list;
  sn_pc : int;
  sn_instr : Isa.t option;
}

let observe t =
  let colours = Config.colours (Sue.config t) in
  let current = Sue.current_colour t in
  let view = Sue.phi t current in
  let pc = view.Abstract_regime.regs.(Isa.pc_reg) in
  let instr =
    if pc < Array.length view.Abstract_regime.mem then Isa.decode view.Abstract_regime.mem.(pc)
    else None
  in
  {
    sn_current = current;
    sn_status = List.map (fun c -> (c, Sue.regime_status t c)) colours;
    sn_pc = pc;
    sn_instr = instr;
  }

(* The kernel's step has three phases (observe outputs, consume input,
   execute); tracing replays them separately so events land in the right
   phase — in particular an interrupt that wakes a regime and the
   instruction that regime then executes are both visible. *)
let step t input =
  let events = ref [] in
  let add e = events := e :: !events in
  let audit () = List.iter (fun f -> add (event_of_fault f)) (Sue.drain_faults t) in
  let before = observe t in
  (* this driver bypasses [Sue.step], so it emits the per-step causal
     instant itself *)
  if Sep_obs.Trace.enabled () then
    Sep_obs.Trace.instant ~cat:"sue"
      ~args:[ ("colour", Sep_util.Json.String (Colour.name before.sn_current)) ]
      "step";
  List.iter (fun (device, word) -> add (Emitted { device; word })) (Sue.outputs t);
  List.iter (fun (device, word) -> add (Arrived { device; word })) input;
  Sue.deliver_inputs t input;
  audit ();
  let mid = observe t in
  List.iter2
    (fun (c, s0) (_, s1) ->
      match (s0, s1) with
      | Abstract_regime.Waiting, Abstract_regime.Running -> add (Woken c)
      | _ -> ())
    before.sn_status mid.sn_status;
  if not (Colour.equal before.sn_current mid.sn_current) then
    add (Switched { from_ = before.sn_current; to_ = mid.sn_current });
  Sue.exec_op t;
  let after = observe t in
  let ran_status = List.assoc mid.sn_current mid.sn_status in
  (match (ran_status, mid.sn_instr) with
  | Abstract_regime.Running, Some instr ->
    add (Executed { colour = mid.sn_current; pc = mid.sn_pc; instr });
    (match instr with
    | Isa.Trap n -> add (Trapped { colour = mid.sn_current; number = n })
    | _ -> ())
  | Abstract_regime.Running, None ->
    (* illegal word or out-of-partition fetch; the park event below tells
       the rest of the story *)
    ()
  | (Abstract_regime.Waiting | Abstract_regime.Parked), _ -> add Stalled);
  List.iter2
    (fun (c, s0) (_, s1) ->
      match (s0, s1) with
      | Abstract_regime.Running, Abstract_regime.Waiting -> add (Blocked c)
      | (Abstract_regime.Running | Abstract_regime.Waiting), Abstract_regime.Parked ->
        add (Parked c)
      | _ -> ())
    mid.sn_status after.sn_status;
  if not (Colour.equal mid.sn_current after.sn_current) then
    add (Switched { from_ = mid.sn_current; to_ = after.sn_current });
  audit ();
  List.rev !events

let record t ~steps ~inputs =
  let out = ref [] in
  for n = 0 to steps - 1 do
    match step t (inputs n) with
    | [] -> ()
    | events -> out := { step = n; events } :: !out
  done;
  List.rev !out

(* JSON rendering. The match is exhaustive on purpose: adding an event
   constructor without extending the schema is a compile error, not a
   silently incomplete trace. *)
let event_to_json ev =
  let module J = Sep_util.Json in
  let colour c = ("colour", J.String (Colour.name c)) in
  match ev with
  | Executed e ->
    J.Obj
      [
        ("type", J.String "executed");
        colour e.colour;
        ("pc", J.Int e.pc);
        ("instr", J.String (Fmt.str "%a" Isa.pp e.instr));
      ]
  | Trapped t -> J.Obj [ ("type", J.String "trapped"); colour t.colour; ("number", J.Int t.number) ]
  | Switched s ->
    J.Obj
      [
        ("type", J.String "switched");
        ("from", J.String (Colour.name s.from_));
        ("to", J.String (Colour.name s.to_));
      ]
  | Blocked c -> J.Obj [ ("type", J.String "blocked"); colour c ]
  | Parked c -> J.Obj [ ("type", J.String "parked"); colour c ]
  | Woken c -> J.Obj [ ("type", J.String "woken"); colour c ]
  | Arrived a ->
    J.Obj [ ("type", J.String "arrived"); ("device", J.Int a.device); ("word", J.Int a.word) ]
  | Emitted e ->
    J.Obj [ ("type", J.String "emitted"); ("device", J.Int e.device); ("word", J.Int e.word) ]
  | Stalled -> J.Obj [ ("type", J.String "stalled") ]
  | Save_corrupt c -> J.Obj [ ("type", J.String "save-corrupt"); colour c ]
  | Guard_breached g -> J.Obj [ ("type", J.String "guard-breached"); ("addr", J.Int g.addr) ]
  | Channel_corrupt g -> J.Obj [ ("type", J.String "channel-corrupt"); ("addr", J.Int g.addr) ]
  | Watchdog_fired c -> J.Obj [ ("type", J.String "watchdog-fired"); colour c ]
  | Kernel_panicked k ->
    J.Obj [ ("type", J.String "kernel-panicked"); ("reason", J.String k.reason) ]
  | Restarted c -> J.Obj [ ("type", J.String "restarted"); colour c ]
  | Checkpoint_corrupt c -> J.Obj [ ("type", J.String "checkpoint-corrupt"); colour c ]
  | Warm_rebooted -> J.Obj [ ("type", J.String "warm-rebooted") ]

let entry_to_json e =
  let module J = Sep_util.Json in
  J.Obj [ ("step", J.Int e.step); ("events", J.List (List.map event_to_json e.events)) ]

let to_json entries =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      Sep_util.Json.to_buffer buf (entry_to_json e);
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

let render entries =
  let buf = Buffer.create 512 in
  List.iter
    (fun e ->
      List.iter
        (fun ev -> Buffer.add_string buf (Fmt.str "%4d  %a\n" e.step pp_event ev))
        e.events)
    entries;
  Buffer.contents buf
