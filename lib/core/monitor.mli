(** Online separability monitoring: the six conditions, incrementally.

    The offline checker ({!Separability}) quantifies over a completed
    state sample; the monitor evaluates the same six Proof of
    Separability conditions {e as states arrive}. Feeding a state costs
    an amount independent of how many states came before it — the
    bucket tables keyed by each colour's abstraction give amortized O(1)
    per state — so a violation is flagged at the step that first
    exhibits it, not after the run.

    {b Agreement.} [feed]ing a state performs exactly the checks the
    offline {!Separability.check_states} performs for it: conditions 1
    and 2 against the abstract operation, condition 4 across the input
    alphabet, and conditions 3, 5, 6 against the representative of its
    Phi^c-equivalence bucket. On the same state list the monitor's
    {!report} therefore reproduces the offline report's state, check and
    per-condition counts, and (on clean runs) its emptiness of failures
    — the agreement the test suite pins down.

    {b Streaming.} {!watch} attaches the monitor to a {e live}
    {!Sue} kernel: after every {!Sue.step} a cheap O(1) probe
    ({!Sue.audit_count}) decides whether the kernel just detected
    something; deep checks run on audit activity and on a sampling
    period, keeping amortized overhead on an uninstrumented kernel run
    within a few percent. Fault campaigns and the fuzzer use [feed] with
    per-step attribution instead, where the driver already pays for
    state snapshots and scrambled Phi-partners.

    On the first violation the monitor flushes the {!Sep_obs.Trace}
    flight recorder, so the causal events leading up to the violating
    step survive for post-mortem. *)

module System = Sep_model.System

type ('s, 'i, 'o, 'a, 'p) t

val create : ?max_failures:int -> ('s, 'i, 'o, 'a, 'p) System.t -> ('s, 'i, 'o, 'a, 'p) t
(** A fresh monitor over the system's colours and input alphabet.
    [max_failures] (default 20, as offline) caps recorded failures;
    past the cap, feeding continues but records nothing. *)

val feed : ?step:int -> ('s, 'i, 'o, 'a, 'p) t -> 's -> Separability.failure list
(** Check one state against everything fed so far and fold it into the
    bucket tables. Returns the {e new} failures this state exposed
    (empty on a clean state). [step] attributes the failures to a
    driver-defined step index (default: the ordinal of the fed state). *)

val feed_step :
  ('s, 'i, 'o, 'a, 'p) t -> step:int -> 's list -> Separability.failure list
(** Feed several states attributed to the same step — a stepped kernel
    plus its scrambled Phi-partners. *)

val states_seen : _ t -> int

val frontier : _ t -> int
(** Distinct abstractions tracked, summed over colours — the live
    frontier of the view-equivalence search. Also published as the
    gauge ["separability.frontier"] on {!Sep_obs.Span.local}. *)

val first_violation : _ t -> (int * Separability.failure) option
(** The earliest violation: the step index it was attributed to and the
    failure — [None] while the run is clean. *)

val violations : _ t -> (int * Separability.failure) list
(** All recorded violations with their step indices, in feed order. *)

val report : _ t -> Separability.report
(** The accumulated result in the offline report shape: on the same
    state list it matches {!Separability.check_states} in states,
    checks, per-condition check counts and failure conditions. *)

(** {1 Watching a live kernel} *)

type swatch
(** A streaming watch over one {!Sue} kernel. *)

val watch :
  ?period:int -> ?max_failures:int -> ?sanction_channels:bool ->
  inputs:Sue.input list -> Sue.t -> swatch
(** Attach to a kernel (checking its initial state immediately). Call
    {!observe} after every {!Sue.step}. A deep check — snapshotting the
    kernel and feeding it to the incremental checker — runs whenever
    {!Sue.audit_count} moved since the last observation, and otherwise
    every [period] steps (default 500). [inputs] is the scenario's
    input alphabet, needed for conditions 3 and 4. [sanction_channels]
    is passed to {!Sue.to_system}: set it when the watched kernel runs
    with channels connected (a federation shard), where condition 2's
    strict reading would flag every legitimate send and receive. *)

val observe : swatch -> unit
(** The per-step probe: O(1) and allocation-free on the cheap path. *)

val watch_steps : swatch -> int
(** Steps observed so far. *)

val deep_checks : swatch -> int
(** How many observations escalated to a deep check. *)

val watch_report : swatch -> Separability.report

val watch_first_violation : swatch -> (int * Separability.failure) option
(** The step index here is the observed kernel step count at the deep
    check that flagged the violation. *)
