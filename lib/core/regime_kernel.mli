(** The behavioural separation kernel.

    Hosts the same event-driven components as the physically distributed
    substrate ({!Sep_distributed.Net}), but inside one "processor": the
    kernel owns the channel buffers, fields external inputs into
    per-regime queues (its interrupt-forwarding role), and rotates the
    processor round-robin — performing an explicit context switch per
    quantum, which it counts. Regimes interact with nothing except the
    events the kernel hands them; the kernel understands nothing of what
    the messages mean. Policy enforcement is not its concern.

    The delivery discipline matches {!Sep_distributed.Net} exactly —
    external inputs first, then at most one already-in-flight message per
    incoming channel in channel order, per regime visit, regimes in
    topology order — so that per-colour observable traces are comparable
    across substrates (experiment E7): a regime cannot distinguish this
    shared implementation from a machine of its own. *)

type t

type bug =
  | Misdeliver  (** channel messages are handed to the regime after the intended receiver *)
  | Duplicate_delivery  (** every delivered channel message is delivered twice *)
  | Drop_alternate  (** every second channel send is silently discarded *)
      (** Seedable kernel flaws. A separation kernel's defining property is
          indistinguishability from the distributed system; these bugs
          exist to show that the trace-equivalence check of experiment E7
          actually detects a kernel that fails at its one job. *)

val pp_bug : Format.formatter -> bug -> unit
val all_bugs : bug list

val build : ?bugs:bug list -> Sep_model.Topology.t -> t
(** Channel buffers are sized by wire capacities; cut wires are honoured
    (sends accepted, never delivered). *)

val step : t -> externals:(Sep_model.Colour.t * Sep_model.Component.message) list -> unit
(** One full round-robin rotation: every regime receives one quantum. *)

val run :
  t -> steps:int -> externals:(int -> (Sep_model.Colour.t * Sep_model.Component.message) list) ->
  unit

val trace : t -> Sep_model.Colour.t -> Sep_model.Component.obs list
val outputs : t -> Sep_model.Colour.t -> Sep_model.Component.message list

val context_switches : t -> int
(** SWAPs performed so far. *)

val messages_copied : t -> int
(** Channel messages moved through kernel buffers (copy-in plus
    copy-out). *)

val buffered : t -> int
(** Messages currently held in kernel channel buffers. *)

val drops : t -> int
(** Messages dropped against full kernel buffers. *)

(** {1 State observation}

    Read-only views of the kernel's internal state, exposed so the
    refinement checker ({!Sep_refine}) can compare it against the
    behavioural specification after every rotation. *)

val chan_count : t -> int

val chan_buffer : t -> int -> Sep_model.Component.message list
(** Contents of one kernel channel buffer, oldest first. *)

val pending_externals : t -> Sep_model.Colour.t -> Sep_model.Component.message list
(** Inputs fielded for a colour but not yet delivered, oldest first. *)

val current_colour : t -> Sep_model.Colour.t
(** The regime holding the processor. *)
