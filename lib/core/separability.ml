module Colour = Sep_model.Colour
module System = Sep_model.System

type failure = { condition : int; colour : Colour.t; detail : string }

type report = {
  instance : string;
  states : int;
  checks : int;
  cond_checks : (int * int) list;
  failures : failure list;
}

let verified r = r.failures = []

let failing_conditions r =
  List.sort_uniq Int.compare (List.map (fun f -> f.condition) r.failures)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>instance %s: %d states, %d checks: %s@," r.instance r.states r.checks
    (if verified r then "VERIFIED (all six conditions hold)" else "FAILED");
  List.iter
    (fun f -> Fmt.pf ppf "  condition %d violated for %a: %s@," f.condition Colour.pp f.colour f.detail)
    r.failures;
  Fmt.pf ppf "@]"

let pp_summary ppf r =
  Fmt.pf ppf "instance %s: %d states, %d checks: %s" r.instance r.states r.checks
    (if verified r then "VERIFIED (all six conditions hold)"
     else
       Fmt.str "FAILED (condition%s %s, %d counterexample%s)"
         (if List.compare_length_with (failing_conditions r) 1 > 0 then "s" else "")
         (String.concat ", " (List.map string_of_int (failing_conditions r)))
         (List.length r.failures)
         (if List.compare_length_with r.failures 1 > 0 then "s" else ""))

(* Sum of the parts: a verification split across several state samples
   (e.g. before a crash, parked, after the restart) reads as one report. *)
let merge_reports ?instance reports =
  let instance =
    match (instance, reports) with
    | Some i, _ -> i
    | None, r :: _ -> r.instance
    | None, [] -> "(empty)"
  in
  let add_cond acc (c, n) =
    let prev = try List.assoc c acc with Not_found -> 0 in
    (c, prev + n) :: List.remove_assoc c acc
  in
  let cond_checks =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a b)
      (List.fold_left (fun acc r -> List.fold_left add_cond acc r.cond_checks) [] reports)
  in
  {
    instance;
    states = List.fold_left (fun acc r -> acc + r.states) 0 reports;
    checks = List.fold_left (fun acc r -> acc + r.checks) 0 reports;
    cond_checks;
    failures = List.concat_map (fun r -> r.failures) reports;
  }

exception Enough

(* Mutable accumulation shared by one checking run. *)
type acc = {
  mutable checks : int;
  cond : int array;  (* checks per condition, indices 1..6 *)
  mutable failures : failure list;
  mutable nfail : int;
  max_failures : int;
  mutable reps : int;  (* distinct abstractions bucketed — the frontier *)
}

let fresh max_failures =
  { checks = 0; cond = Array.make 7 0; failures = []; nfail = 0; max_failures; reps = 0 }

let record acc condition colour detail =
  acc.failures <- { condition; colour; detail } :: acc.failures;
  acc.nfail <- acc.nfail + 1;
  if acc.nfail >= acc.max_failures then raise Enough

let tick acc condition =
  acc.checks <- acc.checks + 1;
  acc.cond.(condition) <- acc.cond.(condition) + 1

let cond_checks_of acc = List.init 6 (fun i -> (i + 1, acc.cond.(i + 1)))

(* Span handles for the profiling surfaces; no-ops unless
   [Sep_obs.Span.set_enabled true] was called. *)
let span_reachable = Sep_obs.Span.make "separability.reachable"
let span_cond12 = Sep_obs.Span.make "separability.cond1_2"
let span_cond3456 = Sep_obs.Span.make "separability.cond3_4_5_6"
let span_cond4 = Sep_obs.Span.make "separability.cond4"

(* Conditions 1 and 2 examine each state's actually-selected operation. *)
let check_ops sys acc states =
  let examine s =
    let op = sys.System.nextop s in
    let c = sys.System.colour_of s in
    let s' = op.System.op_apply s in
    tick acc 1;
    let concrete = sys.System.abstract c s' in
    let abstract_op = sys.System.abop c op in
    let spec = abstract_op.System.abop_apply (sys.System.abstract c s) in
    if not (sys.System.equal_abstate concrete spec) then
      record acc 1 c
        (Fmt.str "op %s from state@ %a@ yields@ %a@ but the abstract machine specifies@ %a"
           op.System.op_name sys.System.pp_state s sys.System.pp_abstate concrete
           sys.System.pp_abstate spec);
    let inactive c' =
      if not (Colour.equal c' c) then begin
        tick acc 2;
        let before = sys.System.abstract c' s and after = sys.System.abstract c' s' in
        if
          (not (sys.System.equal_abstate before after))
          && not (sys.System.sanctioned_interference c c' before after)
        then
          record acc 2 c'
            (Fmt.str "op %s (on behalf of %a) changes %a's view from@ %a@ to@ %a"
               op.System.op_name Colour.pp c Colour.pp c' sys.System.pp_abstate before
               sys.System.pp_abstate after)
      end
    in
    List.iter inactive sys.System.colours
  in
  List.iter examine states

(* Group the given inputs by their c-projection; within a group the
   post-INPUT abstractions must agree (condition 4). *)
let check_cond4 sys acc c s images =
  Sep_obs.Span.time span_cond4 @@ fun () ->
  let groups = ref [] in
  let place (i, img) =
    let proj = sys.System.extract_input c i in
    match List.find_opt (fun (p, _, _) -> sys.System.equal_proj p proj) !groups with
    | None -> groups := (proj, img, i) :: !groups
    | Some (_, rep_img, rep_i) ->
      tick acc 4;
      if not (sys.System.equal_abstate img rep_img) then
        record acc 4 c
          (Fmt.str "inputs %a and %a have equal %a-components but give %a different views in state@ %a"
             sys.System.pp_input i sys.System.pp_input rep_i Colour.pp c Colour.pp c
             sys.System.pp_state s)
  in
  List.iter place images

(* Conditions 3, 5, 6 compare states with equal Phi^c; we bucket by the
   abstraction and compare against a per-bucket representative. *)
let check_views sys acc states =
  let per_colour c =
    (* bucket table keyed by abstraction hash *)
    let tbl = Hashtbl.create 64 in
    let images s = List.map (fun i -> (i, sys.System.abstract c (sys.System.input s i))) sys.System.inputs in
    let examine s =
      let a = sys.System.abstract c s in
      let imgs = images s in
      check_cond4 sys acc c s imgs;
      let out = sys.System.extract_output c (sys.System.output s) in
      let mine = Colour.equal (sys.System.colour_of s) c in
      let h = sys.System.hash_abstate a in
      let bucket_list = match Hashtbl.find_opt tbl h with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add tbl h l;
          l
      in
      match List.find_opt (fun (a', _, _, _, _) -> sys.System.equal_abstate a a') !bucket_list with
      | None ->
        let op6 = ref (if mine then Some (sys.System.nextop s).System.op_name else None) in
        acc.reps <- acc.reps + 1;
        bucket_list := (a, s, imgs, out, op6) :: !bucket_list
      | Some (_, rep, rep_imgs, rep_out, rep_op) ->
        (* condition 3: same input, same effect on c's view *)
        List.iter2
          (fun (i, img) (_, rep_img) ->
            tick acc 3;
            if not (sys.System.equal_abstate img rep_img) then
              record acc 3 c
                (Fmt.str
                   "states@ %a@ and@ %a@ look alike to %a but input %a changes %a's view differently"
                   sys.System.pp_state s sys.System.pp_state rep Colour.pp c sys.System.pp_input i
                   Colour.pp c))
          imgs rep_imgs;
        (* condition 5: same output components for c *)
        tick acc 5;
        if not (sys.System.equal_proj out rep_out) then
          record acc 5 c
            (Fmt.str "states@ %a@ and@ %a@ look alike to %a but emit different %a-outputs"
               sys.System.pp_state s sys.System.pp_state rep Colour.pp c Colour.pp c);
        (* condition 6: same next operation when both are c-active *)
        if mine then begin
          let name = (sys.System.nextop s).System.op_name in
          match !rep_op with
          | None -> rep_op := Some name
          | Some rep_name ->
            tick acc 6;
            if not (String.equal name rep_name) then
              record acc 6 c
                (Fmt.str
                   "states@ %a@ and@ %a@ look alike to the active regime %a but select %s vs %s"
                   sys.System.pp_state s sys.System.pp_state rep Colour.pp c name rep_name)
        end
    in
    List.iter examine states
  in
  List.iter per_colour sys.System.colours

(* The naive quantification: every pair of states, compared directly.
   Post-INPUT images are precomputed per state so the quadratic part is
   pure comparison. *)
let check_views_pairwise sys acc states =
  let arr = Array.of_list states in
  let per_colour c =
    let info =
      Array.map
        (fun s ->
          let a = sys.System.abstract c s in
          let imgs =
            List.map (fun i -> sys.System.abstract c (sys.System.input s i)) sys.System.inputs
          in
          let out = sys.System.extract_output c (sys.System.output s) in
          let mine = Colour.equal (sys.System.colour_of s) c in
          let opname = if mine then Some (sys.System.nextop s).System.op_name else None in
          (a, imgs, out, opname))
        arr
    in
    Array.iteri
      (fun x s ->
        check_cond4 sys acc c s
          (List.map2 (fun i img -> (i, img)) sys.System.inputs
             (let _, imgs, _, _ = info.(x) in
              imgs));
        for y = x + 1 to Array.length arr - 1 do
          let a1, imgs1, out1, op1 = info.(x) in
          let a2, imgs2, out2, op2 = info.(y) in
          if sys.System.equal_abstate a1 a2 then begin
            List.iteri
              (fun k img1 ->
                tick acc 3;
                if not (sys.System.equal_abstate img1 (List.nth imgs2 k)) then
                  record acc 3 c
                    (Fmt.str "states@ %a@ and@ %a@ look alike to %a but an input affects them \
                              differently"
                       sys.System.pp_state s sys.System.pp_state arr.(y) Colour.pp c))
              imgs1;
            tick acc 5;
            if not (sys.System.equal_proj out1 out2) then
              record acc 5 c
                (Fmt.str "states@ %a@ and@ %a@ look alike to %a but emit different outputs"
                   sys.System.pp_state s sys.System.pp_state arr.(y) Colour.pp c);
            match (op1, op2) with
            | Some n1, Some n2 ->
              tick acc 6;
              if not (String.equal n1 n2) then
                record acc 6 c
                  (Fmt.str "states@ %a@ and@ %a@ look alike to the active regime %a but select \
                            %s vs %s"
                     sys.System.pp_state s sys.System.pp_state arr.(y) Colour.pp c n1 n2)
            | _ -> ()
          end
        done)
      arr
  in
  List.iter per_colour sys.System.colours

let check_states_pairwise ?(max_failures = 20) sys states =
  let acc = fresh max_failures in
  (try
     Sep_obs.Span.time span_cond12 (fun () -> check_ops sys acc states);
     Sep_obs.Span.time span_cond3456 (fun () -> check_views_pairwise sys acc states)
   with Enough -> ());
  {
    instance = sys.System.name ^ " (pairwise)";
    states = List.length states;
    checks = acc.checks;
    cond_checks = cond_checks_of acc;
    failures = List.rev acc.failures;
  }

let run_checks sys states max_failures =
  let acc = fresh max_failures in
  (try
     Sep_obs.Span.time span_cond12 (fun () -> check_ops sys acc states);
     Sep_obs.Span.time span_cond3456 (fun () -> check_views sys acc states)
   with Enough -> ());
  (* publish the frontier of the view-equivalence search as a live gauge
     (the domain-local registry merges into the global one at join) *)
  Sep_obs.Telemetry.set
    (Sep_obs.Telemetry.gauge (Sep_obs.Span.local ()) "separability.frontier")
    (float_of_int acc.reps);
  {
    instance = sys.System.name;
    states = List.length states;
    checks = acc.checks;
    cond_checks = cond_checks_of acc;
    failures = List.rev acc.failures;
  }

let check ?state_limit ?(max_failures = 20) sys =
  let states = Sep_obs.Span.time span_reachable (fun () -> System.reachable ?limit:state_limit sys) in
  run_checks sys states max_failures

let report_to_json r =
  let module J = Sep_util.Json in
  J.Obj
    [
      ("instance", J.String r.instance);
      ("states", J.Int r.states);
      ("checks", J.Int r.checks);
      ( "cond_checks",
        J.Obj (List.map (fun (c, n) -> (string_of_int c, J.Int n)) r.cond_checks) );
      ("verified", J.Bool (verified r));
      ("failing_conditions", J.List (List.map (fun c -> J.Int c) (failing_conditions r)));
      ( "failures",
        J.List
          (List.map
             (fun f ->
               J.Obj
                 [
                   ("condition", J.Int f.condition);
                   ("colour", J.String (Colour.name f.colour));
                   ("detail", J.String f.detail);
                 ])
             r.failures) );
    ]

let check_states ?(max_failures = 20) sys states = run_checks sys states max_failures
