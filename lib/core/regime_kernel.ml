module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Fifo = Sep_util.Fifo

(* Kernel-side descriptor of one hosted regime. *)
type regime = {
  colour : Colour.t;
  inst : Component.instance;
  pending_external : Component.message Fifo.t;  (* inputs fielded, not yet delivered *)
  in_chans : int list;  (* channel ids this regime receives on, ascending *)
  mutable obs : Component.obs list;  (* reversed *)
  mutable outs : Component.message list;  (* reversed *)
}

type bug =
  | Misdeliver
  | Duplicate_delivery
  | Drop_alternate

let pp_bug ppf b =
  Fmt.string ppf
    (match b with
    | Misdeliver -> "misdeliver"
    | Duplicate_delivery -> "duplicate-delivery"
    | Drop_alternate -> "drop-alternate")

let all_bugs = [ Misdeliver; Duplicate_delivery; Drop_alternate ]

type chan = {
  dst : int;  (* regime index *)
  cut : bool;
  buffer : Component.message Fifo.t;  (* kernel-owned *)
}

type t = {
  regimes : regime array;
  chans : chan array;  (* indexed by wire id *)
  src_of : int array;  (* wire id -> sending regime index *)
  bug_list : bug list;
  mutable current : int;  (* regime holding the processor *)
  mutable switches : int;
  mutable copies : int;
  mutable sends_seen : int;  (* for Drop_alternate *)
  mutable dropped : int;
}

let external_queue_capacity = 1024

let has_bug t b = List.mem b t.bug_list

let build ?(bugs = []) topo =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Regime_kernel.build: " ^ msg));
  let colours = Array.of_list (Topology.colours topo) in
  let index_of c =
    let rec find i = if Colour.equal colours.(i) c then i else find (i + 1) in
    find 0
  in
  let nregs = List.length topo.Topology.parts in
  let chan w =
    let dst = index_of w.Topology.dst in
    let dst = if List.mem Misdeliver bugs then (dst + 1) mod nregs else dst in
    { dst; cut = w.Topology.cut; buffer = Fifo.create ~capacity:w.Topology.capacity }
  in
  let chans = Array.of_list (List.map chan topo.Topology.wires) in
  (* Regimes receive on the channels the kernel routes to them — which is
     the topology's word unless a routing bug says otherwise. *)
  let regime r_idx (colour, comp) =
    let in_chans = ref [] in
    Array.iteri (fun id ch -> if ch.dst = r_idx then in_chans := id :: !in_chans) chans;
    {
      colour;
      inst = Component.instantiate comp;
      pending_external = Fifo.create ~capacity:external_queue_capacity;
      in_chans = List.sort Int.compare !in_chans;
      obs = [];
      outs = [];
    }
  in
  {
    regimes = Array.of_list (List.mapi regime topo.Topology.parts);
    chans;
    src_of = Array.of_list (List.map (fun w -> index_of w.Topology.src) topo.Topology.wires);
    bug_list = bugs;
    current = 0;
    switches = 0;
    copies = 0;
    sends_seen = 0;
    dropped = 0;
  }

(* The kernel's channel service: copy the message into the kernel buffer
   owned by the channel. The kernel neither looks at the payload nor knows
   what the regimes mean by it. *)
let copy_in t sender chan_id msg =
  if chan_id < 0 || chan_id >= Array.length t.chans || t.src_of.(chan_id) <> sender then
    t.dropped <- t.dropped + 1
  else begin
    t.sends_seen <- t.sends_seen + 1;
    let ch = t.chans.(chan_id) in
    if ch.cut then () (* the far end was aliased away: accept and discard *)
    else if has_bug t Drop_alternate && t.sends_seen mod 2 = 0 then ()
    else if Fifo.push ch.buffer msg then t.copies <- t.copies + 1
    else t.dropped <- t.dropped + 1
  end

let handle_actions t r_idx actions =
  let r = t.regimes.(r_idx) in
  let handle = function
    | Component.Send (chan_id, msg) as act ->
      r.obs <- Component.Did act :: r.obs;
      copy_in t r_idx chan_id msg
    | Component.Output msg as act ->
      r.obs <- Component.Did act :: r.obs;
      r.outs <- msg :: r.outs
  in
  List.iter handle actions

let deliver t r_idx ev =
  let r = t.regimes.(r_idx) in
  r.obs <- Component.Saw ev :: r.obs;
  handle_actions t r_idx (Component.feed r.inst ev)

(* Interrupt fielding: enqueue external arrivals on the owning regime's
   pending queue; they are handed over at the regime's next quantum. *)
let field_externals t externals =
  let field (c, msg) =
    Array.iter
      (fun r ->
        if Colour.equal r.colour c then
          if not (Fifo.push r.pending_external msg) then t.dropped <- t.dropped + 1)
      t.regimes
  in
  List.iter field externals

let quantum t r_idx deliverable =
  if t.current <> r_idx then begin
    (* context switch: the processor changes hands *)
    t.current <- r_idx;
    t.switches <- t.switches + 1
  end;
  let r = t.regimes.(r_idx) in
  let rec drain_externals () =
    match Fifo.pop r.pending_external with
    | Some msg ->
      deliver t r_idx (Component.External msg);
      drain_externals ()
    | None -> ()
  in
  drain_externals ();
  let from_chan chan_id =
    if deliverable.(chan_id) > 0 then begin
      deliverable.(chan_id) <- 0;
      match Fifo.pop t.chans.(chan_id).buffer with
      | Some msg ->
        t.copies <- t.copies + 1;
        deliver t r_idx (Component.Recv (chan_id, msg));
        if has_bug t Duplicate_delivery then deliver t r_idx (Component.Recv (chan_id, msg))
      | None -> ()
    end
  in
  List.iter from_chan r.in_chans

let step t ~externals =
  field_externals t externals;
  (* Messages already buffered when the rotation starts are deliverable. *)
  let deliverable = Array.map (fun ch -> min 1 (Fifo.length ch.buffer)) t.chans in
  for r_idx = 0 to Array.length t.regimes - 1 do
    quantum t r_idx deliverable
  done

let run t ~steps ~externals =
  for n = 0 to steps - 1 do
    step t ~externals:(externals n)
  done

let find t c =
  let rec search i =
    if i >= Array.length t.regimes then raise Not_found
    else if Colour.equal t.regimes.(i).colour c then t.regimes.(i)
    else search (i + 1)
  in
  search 0

let trace t c = List.rev (find t c).obs
let outputs t c = List.rev (find t c).outs

let context_switches t = t.switches
let messages_copied t = t.copies
let buffered t = Array.fold_left (fun acc ch -> acc + Fifo.length ch.buffer) 0 t.chans
let drops t = t.dropped

(* -- State observation, for the refinement checker ------------------------- *)

let chan_count t = Array.length t.chans
let chan_buffer t id = Fifo.to_list t.chans.(id).buffer
let pending_externals t c = Fifo.to_list (find t c).pending_external
let current_colour t = t.regimes.(t.current).colour
