type profile = {
  name : string;
  policy_free : bool;
  services : string list;
  kernel_words : int option;
  mediates_io : bool;
  scheduling : string;
  verification : string;
}

let sue_profile cfg =
  let t = Sue.build cfg in
  {
    name = "separation kernel (SUE)";
    policy_free = true;
    services = [ "SWAP"; "SEND"; "RECV"; "interrupt forwarding" ];
    kernel_words = Some (Sue.kernel_words t);
    mediates_io = false;
    scheduling = "round-robin, voluntary yield";
    verification = "Proof of Separability (six conditions, exhaustive/randomized)";
  }

let conventional_profile =
  {
    name = "conventional kernel (KSOS-lite)";
    policy_free = false;
    services = [ "create"; "read"; "write"; "append"; "delete"; "ipc-send" ];
    kernel_words = None;
    mediates_io = true;
    scheduling = "kernel-managed processes";
    verification = "IFA on specifications + trusted-process review";
  }

(* Count lines containing code: skip blanks and comments, tracking the
   nesting depth of (* ... *) blocks across lines (OCaml comments nest).
   Comment openers inside string literals are not recognised — close
   enough for a size proxy. *)
let loc_of_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    let count = ref 0 in
    let depth = ref 0 in
    (try
       while true do
         let line = input_line ic in
         let n = String.length line in
         let code = ref false in
         let i = ref 0 in
         while !i < n do
           if !i + 1 < n && line.[!i] = '(' && line.[!i + 1] = '*' then begin
             incr depth;
             i := !i + 2
           end
           else if !i + 1 < n && line.[!i] = '*' && line.[!i + 1] = ')' && !depth > 0 then begin
             decr depth;
             i := !i + 2
           end
           else begin
             if !depth = 0 && line.[!i] <> ' ' && line.[!i] <> '\t' then code := true;
             incr i
           end
         done;
         if !code then incr count
       done
     with End_of_file -> ());
    close_in ic;
    Some !count

let pp_profile ppf p =
  Fmt.pf ppf "@[<v2>%s:@ policy-free: %b@ services: %s@ kernel words: %s@ mediates I/O: %b@ \
              scheduling: %s@ verification: %s@]"
    p.name p.policy_free (String.concat ", " p.services)
    (match p.kernel_words with Some w -> string_of_int w | None -> "n/a")
    p.mediates_io p.scheduling p.verification
