(** Seeded-bug kernels and the conditions expected to catch them.

    Each mutant switches on one {!Sue.bug} in a scenario where the broken
    behaviour is reachable, and predicts which of the six Proof of
    Separability conditions must flag it. Together the mutants demonstrate
    that every condition has discriminating power — the paper's implicit
    claim that the six conditions are "exactly the right conditions"
    (experiment E4). *)

type expectation = {
  bug : Sue.bug;
  scenario : Scenarios.instance;
  primary : int;  (** the condition (1–6) predicted to fire *)
  rationale : string;
}

val catalogue : expectation list
(** One entry per {!Sue.bug}; primaries cover all six conditions. *)

val run : ?state_limit:int -> expectation -> Separability.report
(** Exhaustively check the mutant kernel. *)

val detected : expectation -> Separability.report -> bool
(** The predicted condition is among the failures. *)

val for_bug : Sue.bug -> expectation option
(** The catalogue entry seeding [bug], if any — used by the fuzzing
    kill-rate scorer ({!Sep_check}) to pair each bug with the scenario
    where it is observable. *)
