(** Randomized Proof of Separability for instances beyond enumeration.

    Exhaustive checking ({!Separability.check}) is the gold standard but
    only feasible on micro-instances. For realistic kernels this module
    samples the state space instead: random walks from the initial state
    (random input words from the alphabet at every step) collect reachable
    states, and each sampled state is paired, per colour, with
    {!Sue.scramble_others} copies that agree with it exactly on that
    colour's abstraction — populating the state buckets that conditions
    3, 5 and 6 quantify over. All six conditions are then examined with
    {!Separability.check_states}.

    A clean report is evidence, not proof; a failure is a genuine
    counterexample. The same mutants caught exhaustively are caught this
    way on instances orders of magnitude larger (experiment E10).

    Walk [i] draws from the independent stream
    {!Sep_util.Prng.stream}[ seed i], so walks are parallelizable
    ([?jobs], sharded by {!Sep_par.Par}) with bit-identical samples for
    any job count, and a [walks = n+1] sample extends the [walks = n]
    one. *)

type params = {
  walks : int;  (** independent random walks *)
  walk_len : int;  (** steps per walk *)
  scrambles : int;  (** Phi-preserving partners added per state per colour *)
}

val default_params : params

val check :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?jobs:int -> ?params:params -> ?max_failures:int ->
  seed:int -> inputs:Sue.input list -> Sep_hw.Isa.stmt list Config.t -> Separability.report
(** Sample and check one Sue configuration (under either kernel
    implementation; [Microcode] by default). *)

val sample_states :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?jobs:int -> params:params -> seed:int ->
  inputs:Sue.input list -> Sep_hw.Isa.stmt list Config.t -> Sue.t list
(** Just the sampled state set (walk states plus scrambled partners), for
    callers that want to time or inspect the sampling separately. *)

val sampled_walks :
  ?bugs:Sue.bug list -> ?impl:Sue.impl -> ?jobs:int -> params:params -> seed:int ->
  inputs:Sue.input list -> Sep_hw.Isa.stmt list Config.t -> Sue.input list list
(** The input schedule each walk followed, in walk order — what a failing
    {!check} actually executed, so counterexample minimization
    ({!Sep_check}) can re-drive and shrink the offending walk. Drawn from
    the same PRNG stream as {!sample_states}: for equal parameters and
    seed, walk [i] here is the schedule that produced walk [i]'s states
    there. *)
