(** Proof of Separability: checking the six conditions of the Appendix.

    Over a finite {!Sep_model.System} instance the six conditions are
    decidable by enumeration, turning Rushby's proof technique into a
    model checker:

    + [COLOUR(s) = c  ⊃  Phi^c(op(s)) = ABOP^c(op)(Phi^c(s))] — the active
      regime sees exactly its abstract machine's transition;
    + [COLOUR(s) ≠ c  ⊃  Phi^c(op(s)) = Phi^c(s)] — operations on behalf
      of others are invisible;
    + [Phi^c(s) = Phi^c(s')  ⊃  Phi^c(INPUT(s,i)) = Phi^c(INPUT(s',i))] —
      a regime's view of input consumption depends only on its own state;
    + [EXTRACT(c,i) = EXTRACT(c,i')  ⊃  Phi^c(INPUT(s,i)) =
      Phi^c(INPUT(s,i'))] — and only on its own components of the input;
    + [Phi^c(s) = Phi^c(s')  ⊃  EXTRACT(c,OUTPUT(s)) =
      EXTRACT(c,OUTPUT(s'))] — outputs to [c] are a function of [c]'s
      state;
    + [COLOUR(s) = COLOUR(s') = c ∧ Phi^c(s) = Phi^c(s')  ⊃
      NEXTOP(s) = NEXTOP(s')] — operation selection for [c] is a function
      of [c]'s state.

    Conditions 1 and 2 are checked with [op = NEXTOP(s)] — the operation
    that actually executes in [s]; other operations never run in [s], so
    the quantification over [OPS] restricted to the selected operation
    verifies every transition the system can make. Conditions 3–6 are
    universally quantified over state {e pairs} with equal abstractions;
    the checker buckets states by [Phi^c] and compares each bucket member
    against a representative (equality being transitive, this covers all
    pairs). *)

type failure = {
  condition : int;  (** 1–6 *)
  colour : Sep_model.Colour.t;  (** the regime whose view is violated *)
  detail : string;  (** rendered counterexample *)
}

type report = {
  instance : string;
  states : int;  (** states examined *)
  checks : int;  (** condition instances evaluated *)
  cond_checks : (int * int) list;  (** the same count broken out per condition, 1–6 *)
  failures : failure list;
}

val verified : report -> bool
(** No failures. *)

val failing_conditions : report -> int list
(** Sorted, duplicate-free condition numbers among the failures. *)

val pp_report : Format.formatter -> report -> unit

val pp_summary : Format.formatter -> report -> unit
(** One line: the header of {!pp_report} plus the failing conditions —
    without the rendered per-failure counterexamples, for callers (like
    the randomized CLI) that print minimized counterexamples instead. *)

val report_to_json : report -> Sep_util.Json.t
(** Stable machine-readable rendering: [{"instance", "states", "checks",
    "cond_checks": {"1": n, ...}, "verified", "failing_conditions",
    "failures": [{"condition", "colour", "detail"}]}]. *)

val merge_reports : ?instance:string -> report list -> report
(** Sum of the parts: states, checks and per-condition counts add up,
    failures concatenate — for a verification split across several state
    samples (e.g. the phases around a crash and restart). [instance]
    defaults to the first report's (["(empty)"] for none). *)

(** Checking is profiled through {!Sep_obs.Span} (spans
    [separability.reachable], [separability.cond1_2],
    [separability.cond3_4_5_6], [separability.cond4]) when span profiling
    is enabled; otherwise the instrumentation is inert. *)

val check : ?state_limit:int -> ?max_failures:int -> ('s, 'i, 'o, 'a, 'p) Sep_model.System.t -> report
(** Exhaustive Proof of Separability over the reachable states of the
    instance ({!Sep_model.System.reachable}, honouring [state_limit]).
    Collects at most [max_failures] (default 20) counterexamples. *)

val check_states :
  ?max_failures:int -> ('s, 'i, 'o, 'a, 'p) Sep_model.System.t -> 's list -> report
(** The same six-condition examination over a caller-supplied state
    sample — the randomized flavour used on instances too large to
    enumerate. The sample should contain [Phi^c]-equivalent state pairs
    (e.g. produced by perturbing non-[c] state), otherwise conditions
    3, 5 and 6 hold vacuously. *)

val check_states_pairwise :
  ?max_failures:int -> ('s, 'i, 'o, 'a, 'p) Sep_model.System.t -> 's list -> report
(** The textbook formulation: conditions 3, 5 and 6 literally quantify
    over state {e pairs}, so compare every pair whose abstractions agree.
    Verdict-equivalent to {!check_states} (which buckets by abstraction
    and exploits transitivity of equality) but quadratic in the sample —
    kept as the ablation baseline for experiment E10. *)
