type expectation = {
  bug : Sue.bug;
  scenario : Scenarios.instance;
  primary : int;
  rationale : string;
}

let catalogue =
  [
    {
      bug = Sue.Forget_register_save;
      scenario = Scenarios.pipeline;
      primary = 1;
      rationale = "SWAP loses R3, so the resumed regime diverges from its abstract machine";
    };
    {
      bug = Sue.Partition_hole;
      scenario = Scenarios.pipeline;
      primary = 2;
      rationale = "the switch spills the outgoing R0 into the incoming partition: an op on behalf \
                   of one colour changes another's view";
    };
    {
      bug = Sue.Misroute_interrupt;
      scenario = Scenarios.interrupt;
      primary = 4;
      rationale = "an input carrying no BLACK component wakes BLACK: its view depends on foreign \
                   input components";
    };
    {
      bug = Sue.Misroute_device_input;
      scenario = Scenarios.interrupt;
      primary = 4;
      rationale = "a word addressed to RED's device is latched into BLACK's: foreign input \
                   components reach BLACK's view";
    };
    {
      bug = Sue.Output_leak;
      scenario = Scenarios.pipeline;
      primary = 5;
      rationale = "the Tx wire ORs in the next regime's saved R1, so states alike to RED emit \
                   different RED-outputs depending on BLACK's register contents";
    };
    {
      bug = Sue.Schedule_on_foreign_state;
      scenario = Scenarios.pipeline;
      primary = 6;
      rationale = "operation selection for BLACK consults RED's saved R0: states alike to BLACK \
                   select different operations";
    };
    {
      bug = Sue.Uncut_channel;
      scenario = Scenarios.pipeline;
      primary = 1;
      rationale = "RECV drains the supposedly-cut channel: the receiver observes words its \
                   abstract machine cannot produce (and the send end changes under the sender)";
    };
    {
      bug = Sue.Input_crosstalk;
      scenario = Scenarios.pipeline;
      primary = 3;
      rationale = "the Rx latch XORs in the live R0 of whoever is running: the effect of an input \
                   on a regime depends on state outside its view";
    };
  ]

let run ?state_limit e =
  let sys =
    Sue.to_system ~bugs:[ e.bug ] ~inputs:e.scenario.Scenarios.alphabet e.scenario.Scenarios.cfg
  in
  Separability.check ?state_limit sys

let detected e report = List.mem e.primary (Separability.failing_conditions report)

let for_bug bug = List.find_opt (fun e -> e.bug = bug) catalogue
