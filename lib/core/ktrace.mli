(** Kernel execution tracing.

    A diagnostic observer for {!Sue} runs: it reconstructs, step by step,
    what the kernel did — instructions executed per regime, traps, context
    switches, waits, parks, wake-ups, external arrivals and emissions — by
    diffing the machine-visible state around each step. It deliberately
    uses only the kernel's public verification interface ({!Sue.phi},
    {!Sue.current_colour}, ...), so tracing can never perturb the traced
    system. *)

type event =
  | Executed of { colour : Sep_model.Colour.t; pc : int; instr : Sep_hw.Isa.t }
      (** one instruction ran on behalf of a regime *)
  | Trapped of { colour : Sep_model.Colour.t; number : int }
      (** the instruction was a kernel call *)
  | Switched of { from_ : Sep_model.Colour.t; to_ : Sep_model.Colour.t }
  | Blocked of Sep_model.Colour.t  (** entered the waiting state *)
  | Parked of Sep_model.Colour.t  (** faulted or trapped illegally; never runs again *)
  | Woken of Sep_model.Colour.t  (** resumed by an interrupt *)
  | Arrived of { device : int; word : int }  (** external input latched *)
  | Emitted of { device : int; word : int }  (** word observed on a Tx wire *)
  | Stalled  (** no regime was runnable this step *)
  | Save_corrupt of Sep_model.Colour.t
      (** audit: a save-area checksum mismatch parked this regime *)
  | Guard_breached of { addr : int }  (** audit: a guard word was overwritten (and repaired) *)
  | Channel_corrupt of { addr : int }
      (** audit: a channel ring's head word held an out-of-range index (and was repaired) *)
  | Watchdog_fired of Sep_model.Colour.t  (** audit: the watchdog forced this regime off *)
  | Kernel_panicked of { reason : string }  (** audit: fault inside the kernel; everything parked *)
  | Restarted of Sep_model.Colour.t
      (** audit: this regime was restored from its checkpoint *)
  | Checkpoint_corrupt of Sep_model.Colour.t
      (** audit: a restart found its checkpoint corrupt; regime left parked *)
  | Warm_rebooted  (** audit: the kernel warm-rebooted out of an all-parked halt *)

val event_of_fault : Sue.kernel_fault -> event
(** The audit event of a {!Sue.kernel_fault} — total, so a new fault kind
    cannot compile without a trace event. {!step} drains the kernel's
    audit log (via {!Sue.drain_faults}) after each phase and interleaves
    these events at the point of detection. *)

val pp_event : Format.formatter -> event -> unit

type entry = { step : int; events : event list }

val step : Sue.t -> Sue.input -> event list
(** Advance the kernel one step (mutating it, exactly like {!Sue.step})
    and return the events of that step, in occurrence order: output
    observations, arrivals, wake-ups, then execution and its
    consequences. *)

val record : Sue.t -> steps:int -> inputs:(int -> Sue.input) -> entry list
(** Run and collect; entries with no events are omitted. *)

val render : entry list -> string
(** One line per event, prefixed with the step number. *)

val event_to_json : event -> Sep_util.Json.t
(** One event as a JSON object, discriminated by a ["type"] field
    ([executed], [trapped], [switched], [blocked], [parked], [woken],
    [arrived], [emitted], [stalled], [save-corrupt], [guard-breached],
    [channel-corrupt],
    [watchdog-fired], [kernel-panicked], [restarted], [checkpoint-corrupt],
    [warm-rebooted]). Exhaustive over the constructors
    by construction: a new event cannot compile without a schema entry. *)

val entry_to_json : entry -> Sep_util.Json.t
(** [{"step": n, "events": [...]}]. *)

val to_json : entry list -> string
(** JSONL: one {!entry_to_json} line per entry — the machine-readable
    sibling of {!render}. *)
