(** The machine-level separation kernel, after RSRE's "Secure User
    Environment".

    The kernel recreates, within one {!Sep_hw.Machine}, the environment of
    a physically distributed system: each regime of the {!Config} gets a
    fixed partition of real memory, permanent and exclusive ownership of
    its devices, a round-robin share of the processor relinquished
    voluntarily via the SWAP trap, and kernel-buffered one-way channels.
    Like the SUE it performs no paging, no scheduling policy beyond
    round-robin, and no I/O beyond fielding interrupts — DMA does not
    exist in the simulated machine at all.

    {b All kernel state lives inside the machine's own memory}, in a
    kernel partition below the regime partitions (save areas, regime
    status words, channel buffers), so a machine state is the complete
    concrete state of the Appendix model and the abstraction functions
    {!phi} have everything in view.

    Trap numbers: [Trap 0] = SWAP (yield), [Trap 1] = SEND
    ([R0] = channel id, [R1] = word; [R2] result: 1 sent, 0 full,
    2 not yours), [Trap 2] = RECV ([R0] = channel id; [R1] = word,
    [R2]: 1 received, 0 empty, 2 not yours). Other traps park the
    regime, as do faults.

    {b Seeded bugs.} The {!bug} variants switch on deliberately broken
    behaviours, one per class of kernel flaw that Proof of Separability
    must catch; {!Mutants} pairs each with the condition expected to fail. *)

module Colour = Sep_model.Colour
module Machine = Sep_hw.Machine
module Isa = Sep_hw.Isa

type bug =
  | Forget_register_save  (** SWAP omits saving [R3] *)
  | Partition_hole  (** the switch spills the outgoing [R0] into the incoming partition *)
  | Misroute_interrupt  (** a device IRQ wakes the regime after the owner *)
  | Misroute_device_input  (** external input latched into the next device *)
  | Output_leak  (** every busy Tx wire is OR-ed with the next regime's saved [R1] *)
  | Schedule_on_foreign_state  (** stall the current regime when regime 0's saved [R0] is odd *)
  | Uncut_channel  (** ignore [cut] flags: RECV drains the sender's end anyway *)
  | Input_crosstalk  (** Rx latch XORs in the live [R0] *)

val pp_bug : Format.formatter -> bug -> unit
val all_bugs : bug list

type impl =
  | Microcode
      (** kernel services performed by the simulator host between
          instructions — the kernel as a hardware extension *)
  | Assembly
      (** kernel services performed by {e machine code}: traps dump the
          context into the hardware frame, enter kernel mode at the
          kernel's entry vector, and generated assembly (living in the
          kernel partition, specialised to the configuration like the
          real SUE's build) saves contexts, walks the regime descriptor
          table, programs the MMU control registers and returns with
          [Rti]. Restrictions: no preemption quantum, channel capacities
          of 1, at most 4 regimes / 4 channels / 4 devices per regime,
          and kernel data below address 256. The kernel-memory layout is
          identical to [Microcode] (descriptor tables and code are
          appended after the channel areas), so the abstraction functions
          and every verification technique apply unchanged. *)

val pp_impl : Format.formatter -> impl -> unit

type t
(** A built kernel instance: configuration plus the shared machine. *)

type input = (int * int) list
(** External arrivals for one step: (global device id, word), at most one
    per device, Rx devices only. *)

type output = (int * int) list
(** Tx wire levels: (global device id, word) for each busy Tx device. *)

val build : ?bugs:bug list -> ?impl:impl -> ?watchdog:int -> Isa.stmt list Config.t -> t
(** Assemble each regime's program into its partition, lay out kernel data,
    and start with regime 0 current. Raises [Invalid_argument] on an
    invalid configuration, a program that overflows its partition, a
    channel capacity that does not fit kernel memory, or a configuration
    outside the [Assembly] restrictions. [impl] defaults to
    [Microcode]. All eight seeded bugs exist in both implementations
    (two are generated into the assembly; the I/O-side ones are shared
    hardware behaviour).

    [watchdog] (microcode only, exclusive with a preemption [quantum])
    arms a watchdog of that many instructions: a regime that executes that
    long without yielding is forced off the processor with an audited
    {!Watchdog_expired} fault — insurance against regimes that never
    yield. Requires a positive count. *)

val kernel_code_words : t -> int
(** Words of kernel machine code ([Assembly] only; 0 for [Microcode]) —
    the direct analogue of the SUE's "about 5K words". *)

val config : t -> Isa.stmt list Config.t
val machine : t -> Machine.t
val bugs : t -> bug list

val kernel_words : t -> int
(** Size of the kernel partition in words — the analogue of the paper's
    "about 5K words, including all stack and data space". Guard words are
    outside this tally (they fence the kernel area and the partitions). *)

(** {1 Hardening and fault containment}

    The kernel defends its own data structures against transient
    corruption: every register save area carries a checksum (computed over
    the saved registers and flags as they sit in memory) verified before a
    restore; guard words fence the kernel area and every partition and are
    swept at each context switch; an optional watchdog bounds how long a
    regime can hold the processor without yielding. {b Detected corruption
    never raises}: the kernel takes a fail-safe transition — park the
    corrupt regime, repair the guard, force the yield, or (for faults
    inside the kernel itself) panic to a fully parked halt — and records a
    {!kernel_fault} in an audit log shared by {!copy}, alongside the
    fault counters in {!kstats}. Checksums are maintained by the
    [Microcode] kernel's save path; the [Assembly] kernel shares the guard
    fencing and the panic path. *)

type kernel_fault =
  | Save_area_corrupt of Colour.t
      (** a save-area checksum mismatch parked its regime before restore *)
  | Guard_breach of int  (** a guard word at this physical address was overwritten (and repaired) *)
  | Channel_head_corrupt of int
      (** a channel ring's head word (at this physical address) held an
          out-of-range index when RECV popped; the read stays in bounds,
          the head word is repaired *)
  | Watchdog_expired of Colour.t  (** the watchdog forced this regime off the processor *)
  | Kernel_panic of string
      (** a trap, machine fault or non-termination {e inside} the kernel:
          every regime is parked and the machine halts *)
  | Regime_restart of Colour.t
      (** this regime was restored from its checkpoint by {!restart} or
          {!warm_reboot} *)
  | Checkpoint_corrupt of Colour.t
      (** the checkpoint a restart needed failed its checksum; the regime
          stays parked *)
  | Warm_reboot  (** {!warm_reboot} ran (the audit log survives it) *)

val pp_kernel_fault : Format.formatter -> kernel_fault -> unit

val drain_faults : t -> kernel_fault list
(** Remove and return the audit log, oldest first. The log is shared by
    {!copy} (like the counters) and capped; counters in {!kstats} are not
    affected by draining. *)

val guard_sweep : t -> int
(** Verify every guard word now (they are otherwise swept at context
    switches), repairing and auditing each breach; returns the number of
    breaches found. *)

(** {1 Recovery: checkpoints, restart, warm reboot}

    The fail-operational layer on top of the fail-safe transitions above.
    The [Microcode] kernel checkpoints each regime — save-area image plus
    partition contents, sealed by a checksum — into a store modelling
    stable storage: at build time, at every SWAP boundary (as part of the
    context save), and after every instruction whose effect escapes the
    regime (a successful SEND or RECV, a Tx write arming a transmission,
    an Rx read consuming a latched word). The last rule is the classic
    output-commit fence: a restart replays only pure local computation,
    so no observable effect is ever duplicated or lost, and the restart
    is invisible to every other colour up to timing — which the paper's
    security argument already excludes.

    The checkpoint store is shared by {!copy} (like the counters and the
    audit log) and sits outside {!equal}, {!hash} and every {!phi}.
    Restart restores only the regime's save area, partition and status;
    channel contents and device registers are external to the rebooted
    "node", exactly as wires survive a machine reboot in the distributed
    analogue. Both operations require the [Microcode] kernel and raise
    [Invalid_argument] under [Assembly], like the watchdog. *)

type restart_result =
  | Restarted
  | Not_parked  (** only a parked regime can be restarted *)
  | Bad_checkpoint
      (** the checkpoint failed its checksum: audited as
          {!Checkpoint_corrupt}, regime left parked *)

val restart : t -> Colour.t -> restart_result
(** Restore a parked regime from its last good checkpoint (the as-built
    image if it never reached an effect boundary), mark it runnable, and
    audit a {!Regime_restart}. If the restarted regime is current the
    processor context is reloaded and the quantum/watchdog re-armed. *)

val all_parked : t -> bool
(** The halt state a panic (or a park cascade) leaves behind: nothing will
    ever run again without a {!warm_reboot}. *)

val warm_reboot : t -> Colour.t list
(** Recover the whole kernel from an all-parked halt: re-fence the guard
    words, restore every parked regime from its checkpoint (regimes whose
    checkpoints fail their checksums stay parked, audited as
    {!Checkpoint_corrupt}), hand the processor to a runnable regime, and
    re-arm the countdown. The audit log is preserved across the reboot —
    it records why the reboot happened, including the {!Warm_reboot} event
    itself and one {!Regime_restart} per revived regime. Returns the
    colours restored. *)

val crash : t -> unit
(** Model a whole-node power failure: park every regime (their live
    contexts are lost) and leave the machine in the all-parked halt,
    audited as a {!Kernel_panic} ["node power failure"]. Channel contents
    and device registers survive — they are wires and peripherals,
    external to the node — and so does the audit log. {!warm_reboot} is
    the matching power-cycle: it revives every regime from its last
    checksummed checkpoint. This is the federation supervisor's model of
    losing a shard. *)

val corrupt_checkpoint : t -> Colour.t -> unit
(** Test hook: damage the checkpoint {!restart} would use, to exercise the
    [Bad_checkpoint] path. *)

(** {1 Kernel telemetry}

    Every kernel instance keeps cheap counters of the work it performs:
    instructions retired per regime, kernel service calls, voluntary
    yields, channel words copied, interrupts forwarded, wake-ups, context
    switches and stalled steps. {b The tally is shared by {!copy}} — all
    snapshots derived from one {!build} accumulate into the same record, so
    a state-space exploration reports the total work of the exploration.
    Counters are outside {!equal}, {!hash} and every {!phi}: observing the
    kernel never perturbs verification. *)

type kstats = {
  ks_instrs : (Colour.t * int) list;  (** user instructions retired, per regime *)
  ks_traps : (Colour.t * int) list;  (** serviced kernel calls (SWAP/SEND/RECV) *)
  ks_swaps : (Colour.t * int) list;  (** voluntary yields among those *)
  ks_sent : (Colour.t * int) list;  (** channel words copied in by SEND *)
  ks_recvd : (Colour.t * int) list;  (** channel words copied out by RECV *)
  ks_switches : int;  (** context switches *)
  ks_irqs_forwarded : int;  (** device interrupts fielded *)
  ks_wakes : int;  (** waiting regimes made runnable *)
  ks_stalls : int;  (** execution steps with nothing to run *)
  ks_inputs_latched : int;  (** external words latched into Rx devices *)
  ks_outputs_observed : int;  (** words seen on busy Tx wires by {!step} *)
  ks_kernel_instrs : int;  (** kernel-mode instructions ([Assembly] only) *)
  ks_fault_parks : int;  (** regimes parked by save-area checksum mismatches *)
  ks_guard_breaches : int;  (** guard words found overwritten (and repaired) *)
  ks_chan_repairs : int;  (** channel ring head words found out of range (and repaired) *)
  ks_watchdog_fires : int;  (** forced yields by the watchdog *)
  ks_panics : int;  (** kernel panics (faults inside the kernel) *)
  ks_checkpoints : int;  (** regime checkpoints captured *)
  ks_restarts : int;  (** regimes restored from checkpoints *)
  ks_warm_reboots : int;  (** whole-kernel warm reboots *)
}

val kstats : t -> kstats
(** An immutable snapshot of the counters. *)

val audit_count : t -> int
(** The sum of the audit-level counters (fault parks, guard breaches,
    watchdog fires, panics, restarts, warm reboots) as one O(1),
    allocation-free read — the probe the online monitor
    ({!Sep_core.Monitor}) polls after every step to decide whether the
    kernel just detected something worth a deep check. *)

val reset_kstats : t -> unit
(** Zero the counters (shared across every copy of this instance). *)

val telemetry : t -> Sep_obs.Telemetry.t
(** The same snapshot as a metric registry, for merging and JSON export:
    per-regime counters are named [sue.<metric>.<colour>]
    ([sue.instrs.RED], [sue.traps.RED], [sue.swaps.RED],
    [sue.chan_words_sent.RED], [sue.chan_words_recvd.RED]), machine-wide
    ones [sue.switches], [sue.irqs_forwarded], [sue.wakes], [sue.stalls],
    [sue.inputs_latched], [sue.outputs_observed], [sue.kernel_instrs],
    [sue.fault_parks], [sue.guard_breaches], [sue.watchdog_fires],
    [sue.panics], [sue.checkpoints], [sue.restarts],
    [sue.warm_reboots]. *)

val current_colour : t -> Colour.t
val regime_status : t -> Colour.t -> Abstract_regime.status
val device_owner : t -> int -> Colour.t

val device_slot : t -> int -> Colour.t * int
(** Owner and slot index of a global device: global device ids are
    machine-wide, slots are regime-relative. *)

(** {1 Physical layout}

    Physical addresses of the kernel's data structures, for fault
    injection and diagnostics. Writing to these through
    {!Machine.write_phys} models transient hardware corruption; the
    hardening above decides what the kernel does about it. *)

val partition_bounds : t -> Colour.t -> int * int
(** [(base, size)] of a regime's memory partition, in physical words. *)

val save_area_base : t -> Colour.t -> int
(** Physical address of a regime's register save area (slots 0-7 the
    saved registers, 8 the flags, 9 the status word, 10 the checksum). *)

val guard_addrs : t -> int list
(** Physical addresses of the guard words (one before each partition, one
    after the last). *)

val channel_area : t -> int -> (int * int * int) option
(** [(send_area, recv_area, capacity)] of a channel id: the two ring
    buffers, each laid out as head, count, data\[capacity\]. *)

val kernel_code_region : t -> int * int
(** [(base, length)] of the kernel's machine code ([Assembly]; length 0
    for [Microcode]). *)

(** {1 Execution} *)

val deliver_inputs : t -> input -> unit
(** The INPUT stage of the Appendix model: drain busy Tx wires, latch
    arrivals into Rx devices, field the raised IRQs (waking waiting
    owners; if nothing was runnable, switch to the first woken regime). *)

val outputs : t -> output
(** The OUTPUT observation: a pure function of the state. *)

val exec_op : t -> unit
(** The operation stage: execute one instruction of the current regime and
    handle its consequences (traps, waits, faults, context switches). A
    stalled kernel (current regime not runnable) does nothing. *)

val step : t -> input -> output
(** [outputs], then [deliver_inputs], then [exec_op] — one full time step
    of the model; returns the output observed at the start of the step. *)

val run : t -> steps:int -> inputs:(int -> input) -> output list
(** Iterate {!step}; [inputs n] supplies the arrivals of step [n]. Collects
    the nonempty outputs in order. *)

(** {1 Verification interface} *)

val phi : t -> Colour.t -> Abstract_regime.t
(** The abstraction function [Phi^c]: regime [c]'s private machine as
    induced by the {e intended} kernel design — partition contents,
    registers (live if current, else the save area), flags, status, owned
    devices, and this regime's ends of its channels (a cut channel's
    receive end is the never-fed second buffer). *)

val nextop_name : t -> string
(** The name of the operation {!exec_op} would perform: ["<colour>:<hex
    instruction word>"], ["<colour>:pcfault"] or ["<colour>:stall"]. *)

val copy : t -> t
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit

val scramble_others : Sep_util.Prng.t -> t -> Colour.t -> t
(** A copy of the state in which everything {e outside} [Phi^c] is
    randomized within representable ranges: other regimes' partitions,
    register save areas (or live registers, when another regime is
    current), flags, statuses, their devices, and the channel ends not
    visible to [c]. By construction [phi t c = phi (scramble_others rng t
    c) c], giving the randomized checker state pairs for conditions 3, 5
    and 6 on instances too large to enumerate. *)

val to_system :
  ?bugs:bug list -> ?impl:impl -> ?sanction_channels:bool ->
  inputs:input list -> Isa.stmt list Config.t ->
  (t, input, output, Abstract_regime.t, (int * int) list) Sep_model.System.t
(** Package a configuration as an Appendix-model system over the given
    finite input alphabet, for {!Separability}. States are immutable
    snapshots (every transition copies). The per-colour projection of
    inputs and outputs keeps the pairs on devices owned by that colour.

    [sanction_channels] (default [false]) opts into condition 2's
    connected-system weakening: interference confined to the contents
    of a declared {e uncut} channel between the active and viewing
    colours is sanctioned rather than flagged. Leave it off to check
    Proof of Separability proper — under which an uncut system rightly
    fails (the paper's wire-cutting argument) — and turn it on only
    when knowingly checking a system that runs with its channels
    connected, such as a federation shard. On a fully cut
    configuration it never fires, so the two readings coincide. *)
