module Colour = Sep_model.Colour
module System = Sep_model.System

(* One Phi^c-equivalence bucket entry: the representative's abstraction,
   the representative itself, its post-INPUT images, its c-output
   projection and the operation name the first c-active member selected —
   exactly the tuple the offline [Separability.check_views] keeps, so the
   comparisons (and the check counts) are the same ones, performed as the
   states arrive instead of after the run. *)
type ('s, 'i, 'a, 'p) bucket_entry = 'a * 's * ('i * 'a) list * 'p * string option ref

type ('s, 'i, 'o, 'a, 'p) t = {
  sys : ('s, 'i, 'o, 'a, 'p) System.t;
  tables : (Colour.t * (int, ('s, 'i, 'a, 'p) bucket_entry list ref) Hashtbl.t) list;
  max_failures : int;
  mutable states : int;
  mutable checks : int;
  cond : int array;  (* checks per condition, indices 1..6 *)
  mutable viols : (int * Separability.failure) list;  (* newest first *)
  mutable nfail : int;
  mutable reps : int;  (* bucket representatives = tracked frontier *)
}

let frontier_gauge () =
  Sep_obs.Telemetry.gauge (Sep_obs.Span.local ()) "separability.frontier"

let create ?(max_failures = 20) sys =
  {
    sys;
    tables = List.map (fun c -> (c, Hashtbl.create 64)) sys.System.colours;
    max_failures;
    states = 0;
    checks = 0;
    cond = Array.make 7 0;
    viols = [];
    nfail = 0;
    reps = 0;
  }

let states_seen t = t.states
let frontier t = t.reps
let violations t = List.rev t.viols

let first_violation t =
  match List.rev t.viols with [] -> None | first :: _ -> Some first

let tick t condition =
  t.checks <- t.checks + 1;
  t.cond.(condition) <- t.cond.(condition) + 1

(* The first violation flushes the flight recorder: the ring holds the
   causal events leading up to this step. *)
let record t ~step fresh condition colour detail =
  if t.nfail < t.max_failures then begin
    let f = { Separability.condition; colour; detail } in
    if t.viols = [] then begin
      Sep_obs.Trace.instant ~cat:"monitor"
        ~args:
          [
            ("condition", Sep_util.Json.Int condition);
            ("colour", Sep_util.Json.String (Colour.name colour));
            ("step", Sep_util.Json.Int step);
          ]
        "violation";
      ignore
        (Sep_obs.Trace.dump
           ~reason:(Fmt.str "separability violation: condition %d at step %d" condition step))
    end;
    t.viols <- (step, f) :: t.viols;
    t.nfail <- t.nfail + 1;
    fresh := f :: !fresh
  end

(* Conditions 1 and 2 on the state's actually-selected operation — the
   per-state half of [Separability.check_ops]. *)
let check_ops t ~step fresh s =
  let sys = t.sys in
  let op = sys.System.nextop s in
  let c = sys.System.colour_of s in
  let s' = op.System.op_apply s in
  tick t 1;
  let concrete = sys.System.abstract c s' in
  let abstract_op = sys.System.abop c op in
  let spec = abstract_op.System.abop_apply (sys.System.abstract c s) in
  if not (sys.System.equal_abstate concrete spec) then
    record t ~step fresh 1 c
      (Fmt.str "op %s from state@ %a@ yields@ %a@ but the abstract machine specifies@ %a"
         op.System.op_name sys.System.pp_state s sys.System.pp_abstate concrete
         sys.System.pp_abstate spec);
  List.iter
    (fun c' ->
      if not (Colour.equal c' c) then begin
        tick t 2;
        let before = sys.System.abstract c' s and after = sys.System.abstract c' s' in
        if
          (not (sys.System.equal_abstate before after))
          && not (sys.System.sanctioned_interference c c' before after)
        then
          record t ~step fresh 2 c'
            (Fmt.str "op %s (on behalf of %a) changes %a's view from@ %a@ to@ %a"
               op.System.op_name Colour.pp c Colour.pp c' sys.System.pp_abstate before
               sys.System.pp_abstate after)
      end)
    sys.System.colours

(* Condition 4: inputs with equal c-projections must give this state equal
   post-INPUT views. Grouping is local to the state, as offline. *)
let check_cond4 t ~step fresh c s images =
  let sys = t.sys in
  let groups = ref [] in
  List.iter
    (fun (i, img) ->
      let proj = sys.System.extract_input c i in
      match List.find_opt (fun (p, _, _) -> sys.System.equal_proj p proj) !groups with
      | None -> groups := (proj, img, i) :: !groups
      | Some (_, rep_img, rep_i) ->
        tick t 4;
        if not (sys.System.equal_abstate img rep_img) then
          record t ~step fresh 4 c
            (Fmt.str
               "inputs %a and %a have equal %a-components but give %a different views in state@ %a"
               sys.System.pp_input i sys.System.pp_input rep_i Colour.pp c Colour.pp c
               sys.System.pp_state s))
    images

(* Conditions 3, 5, 6 against the Phi^c-bucket representative. *)
let check_views t ~step fresh s =
  let sys = t.sys in
  List.iter
    (fun (c, tbl) ->
      let a = sys.System.abstract c s in
      let imgs =
        List.map (fun i -> (i, sys.System.abstract c (sys.System.input s i))) sys.System.inputs
      in
      check_cond4 t ~step fresh c s imgs;
      let out = sys.System.extract_output c (sys.System.output s) in
      let mine = Colour.equal (sys.System.colour_of s) c in
      let h = sys.System.hash_abstate a in
      let bucket_list =
        match Hashtbl.find_opt tbl h with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add tbl h l;
          l
      in
      match List.find_opt (fun (a', _, _, _, _) -> sys.System.equal_abstate a a') !bucket_list with
      | None ->
        let op6 = ref (if mine then Some (sys.System.nextop s).System.op_name else None) in
        bucket_list := (a, s, imgs, out, op6) :: !bucket_list;
        t.reps <- t.reps + 1;
        Sep_obs.Telemetry.set (frontier_gauge ()) (float_of_int t.reps)
      | Some (_, rep, rep_imgs, rep_out, rep_op) ->
        List.iter2
          (fun (i, img) (_, rep_img) ->
            tick t 3;
            if not (sys.System.equal_abstate img rep_img) then
              record t ~step fresh 3 c
                (Fmt.str
                   "states@ %a@ and@ %a@ look alike to %a but input %a changes %a's view \
                    differently"
                   sys.System.pp_state s sys.System.pp_state rep Colour.pp c sys.System.pp_input i
                   Colour.pp c))
          imgs rep_imgs;
        tick t 5;
        if not (sys.System.equal_proj out rep_out) then
          record t ~step fresh 5 c
            (Fmt.str "states@ %a@ and@ %a@ look alike to %a but emit different %a-outputs"
               sys.System.pp_state s sys.System.pp_state rep Colour.pp c Colour.pp c);
        if mine then begin
          let name = (sys.System.nextop s).System.op_name in
          match !rep_op with
          | None -> rep_op := Some name
          | Some rep_name ->
            tick t 6;
            if not (String.equal name rep_name) then
              record t ~step fresh 6 c
                (Fmt.str
                   "states@ %a@ and@ %a@ look alike to the active regime %a but select %s vs %s"
                   sys.System.pp_state s sys.System.pp_state rep Colour.pp c name rep_name)
        end)
    t.tables

let feed ?step t s =
  let step = match step with Some n -> n | None -> t.states in
  let fresh = ref [] in
  t.states <- t.states + 1;
  check_ops t ~step fresh s;
  check_views t ~step fresh s;
  List.rev !fresh

let feed_step t ~step states =
  List.concat_map (fun s -> feed ~step t s) states

let report t =
  {
    Separability.instance = t.sys.System.name;
    states = t.states;
    checks = t.checks;
    cond_checks = List.init 6 (fun i -> (i + 1, t.cond.(i + 1)));
    failures = List.rev_map (fun (_, f) -> f) t.viols;
  }

(* -- Watching a live kernel ------------------------------------------------- *)

(* The kernel type is fixed here, but the abstraction parameters of the
   packaged system are not worth naming: the watch closes over them. *)
type swatch = {
  w_kernel : Sue.t;
  w_period : int;
  mutable w_steps : int;
  mutable w_deep : int;
  mutable w_last_audit : int;
  w_feed : int -> unit;
  w_report : unit -> Separability.report;
  w_first : unit -> (int * Separability.failure) option;
}

let watch ?(period = 500) ?max_failures ?sanction_channels ~inputs kernel =
  let sys = Sue.to_system ?sanction_channels ~inputs (Sue.config kernel) in
  let mon = create ?max_failures sys in
  let w =
    {
      w_kernel = kernel;
      w_period = max 1 period;
      w_steps = 0;
      w_deep = 0;
      w_last_audit = Sue.audit_count kernel;
      w_feed = (fun step -> ignore (feed ~step mon (Sue.copy kernel)));
      w_report = (fun () -> report mon);
      w_first = (fun () -> first_violation mon);
    }
  in
  w.w_deep <- 1;
  w.w_feed 0;
  w

let observe w =
  w.w_steps <- w.w_steps + 1;
  let a = Sue.audit_count w.w_kernel in
  if a <> w.w_last_audit || w.w_steps mod w.w_period = 0 then begin
    w.w_last_audit <- a;
    w.w_deep <- w.w_deep + 1;
    w.w_feed w.w_steps
  end

let watch_steps w = w.w_steps
let deep_checks w = w.w_deep
let watch_report w = w.w_report ()
let watch_first_violation w = w.w_first ()
