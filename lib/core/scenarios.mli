(** Micro-instances for exhaustive Proof of Separability.

    Exhaustive checking enumerates every reachable state, so these
    configurations are deliberately tiny: two regimes, partitions of a few
    dozen words, single-word channel buffers and a {0,1} input alphabet.
    They are nevertheless complete separation-kernel workloads — register
    use across SWAP, device polling, wait-for-interrupt, kernel-buffered
    channels — chosen so that every seeded kernel bug in {!Mutants} is
    observable in at least one of them. *)

module Colour = Sep_model.Colour

type instance = {
  label : string;
  cfg : Sep_hw.Isa.stmt list Config.t;  (** channels already cut *)
  alphabet : Sue.input list;  (** finite input alphabet for the model *)
}

val pipeline : instance
(** "Scenario A": RED owns an Rx and a Tx device, reads words, echoes them
    to its Tx wire and sends them down a (cut) channel to BLACK, varying
    its registers with the data; BLACK polls its own Rx device and
    receives from the channel. Exercises SWAP, SEND/RECV, device I/O and
    data-dependent register contents. *)

val interrupt : instance
(** "Scenario B": RED and BLACK each own one Rx device and spend their
    lives in wait-for-interrupt, waking to consume arrivals. Exercises the
    interrupt fielding and wake-up paths. *)

val snfe_micro : instance
(** The SNFE of Section 2, at machine level: a RED regime owning the host
    line and an in-line crypto (transform) device, a CENSOR regime vetting
    the low-bandwidth headers RED emits, and a BLACK regime owning the
    network transmitter. Channels: ciphertext RED->BLACK, headers
    RED->CENSOR->BLACK — "the channels via the censor and the crypto are
    allowed, but there must be no others". The censor's procedural check
    (headers must fit in two bits) is written in machine code. *)

val preemptive : instance
(** Two regimes that compute forever and {e never yield}, hosted under a
    preemptive configuration ([quantum = 3]): the kernel takes the
    processor back after every three instructions. The SUE relied on
    voluntary suspension; this instance shows the six conditions are
    indifferent to the scheduling discipline — preemption moves the
    processor, never information. *)

val all : instance list

val scaled : regimes:int -> counter_bits:int -> instance
(** A parametric instance for scaling experiments (E10): [regimes] regimes
    each cycle a [2^counter_bits]-valued counter in private memory and
    yield; no devices or channels, so the reachable state count is
    controlled by the two parameters. *)

val find : string -> instance option
(** Look an instance up by [label] among {!all} — the CLI and the fuzzing
    engine ({!Sep_check}) address scenarios by name. *)
