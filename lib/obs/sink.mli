(** JSONL event sinks.

    A sink receives {!Sep_util.Json} values and writes each as one compact
    line — the JSON Lines framing used for kernel traces ([--trace-json]),
    verification reports and telemetry snapshots. Buffer-backed sinks
    support tests and in-memory validation; file sinks are for the CLI. *)

type t

val of_buffer : Buffer.t -> t
val of_channel : out_channel -> t

val emit : t -> Sep_util.Json.t -> unit
(** Append one compact line (terminated by a newline). *)

val emitted : t -> int
(** Lines written so far. *)

val with_file : string -> (t -> 'a) -> 'a
(** Open (truncating), hand the sink to the callback, close — also on
    exceptions. *)
