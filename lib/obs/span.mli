(** Wall-clock span profiling over a shared {!Telemetry} registry.

    A span is a named section of code; timing it records the elapsed
    seconds into the histogram ["span.<name>"] of {!registry} (so call
    counts and p50/p90/p99 latencies come for free). Profiling is globally
    switched: when disabled (the default) a span costs one branch, so the
    instrumented kernel hot paths ({!Sep_core.Sue.exec_op}, the
    {!Sep_core.Separability} condition checkers, {!Sep_core.Randomized}
    walks) pay nothing in ordinary runs. Surfaces that report profiles
    ([rushby stats], [bench/main.exe -- snapshot]) enable it first. *)

type t
(** A span handle: make once, time many. *)

val registry : Telemetry.t
(** The main domain's span registry — the process-global one reported by
    {!to_json}. *)

val local : unit -> Telemetry.t
(** The calling domain's span registry: {!registry} on the main domain, a
    fresh domain-local registry on domains spawned by {!Sep_par}. The
    executor merges worker registries into the spawner's at join, so spans
    timed inside parallel sections end up in {!registry} without
    cross-domain mutation. *)

val set_enabled : bool -> unit
(** Turn timing on or off (default: off). *)

val enabled : unit -> bool

val make : string -> t
(** [make name] finds or registers the histogram ["span." ^ name]. *)

val time : t -> (unit -> 'a) -> 'a
(** Run the thunk; when profiling is enabled, record its duration — also
    when it raises. *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** [with_ ~name f] = [time (make name) f]; convenience for cold paths
    (does a registry lookup per call). *)

val reset : unit -> unit
(** Zero the global registry. *)

val to_json : unit -> Sep_util.Json.t
(** Snapshot of {!registry}, in the {!Telemetry.to_json} schema. *)
