module J = Sep_util.Json

type phase =
  | Begin
  | End
  | Instant
  | Flow_start
  | Flow_end

type event = {
  seq : int;
  ts : float;
  dom : int;
  cat : string;
  name : string;
  phase : phase;
  id : int;
  args : (string * J.t) list;
}

let dummy =
  { seq = -1; ts = 0.0; dom = 0; cat = ""; name = ""; phase = Instant; id = 0; args = [] }

(* The ring and its cursor live under one mutex; the enabled flag is an
   atomic so the disabled fast path takes no lock. *)
let on = Atomic.make false
let lock = Mutex.create ()
let buf = ref (Array.make 4096 dummy)
let head = ref 0 (* next write position *)
let count = ref 0 (* live events in the ring *)
let total = ref 0 (* events offered since last clear *)
let epoch = ref 0.0
let next_id = Atomic.make 1
let dump_path = ref None
let dump_hooks : (string -> event list -> unit) list ref = ref []
let last = ref None

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let enabled () = Atomic.get on

let clear () =
  locked (fun () ->
      head := 0;
      count := 0;
      total := 0;
      epoch := Unix.gettimeofday ())

let set_enabled b =
  Atomic.set on b;
  if b then locked (fun () -> if !count = 0 then epoch := Unix.gettimeofday ())

let set_capacity cap =
  let cap = max 16 cap in
  locked (fun () ->
      buf := Array.make cap dummy;
      head := 0;
      count := 0;
      total := 0;
      epoch := Unix.gettimeofday ())

let capacity () = locked (fun () -> Array.length !buf)

let fresh_id () = Atomic.fetch_and_add next_id 1

let emit ?(id = 0) ?(args = []) ~cat ~phase name =
  if Atomic.get on then begin
    let ts = Unix.gettimeofday () in
    let dom = (Domain.self () :> int) in
    locked (fun () ->
        let b = !buf in
        let ev = { seq = !total; ts = ts -. !epoch; dom; cat; name; phase; id; args } in
        b.(!head) <- ev;
        head := (!head + 1) mod Array.length b;
        count := min (!count + 1) (Array.length b);
        incr total)
  end

let instant ?id ?args ~cat name = emit ?id ?args ~cat ~phase:Instant name

let flow_start ?args ~cat name =
  if Atomic.get on then begin
    let id = fresh_id () in
    emit ~id ?args ~cat ~phase:Flow_start name;
    id
  end
  else 0

let flow_end ?args ~cat ~id name = if id <> 0 then emit ~id ?args ~cat ~phase:Flow_end name

let recorded () =
  locked (fun () ->
      let b = !buf in
      let cap = Array.length b in
      let n = !count in
      let first = (!head - n + cap) mod cap in
      List.init n (fun i -> b.((first + i) mod cap)))

let seen () = locked (fun () -> !total)

let phase_letter = function
  | Begin -> "B"
  | End -> "E"
  | Instant -> "i"
  | Flow_start -> "s"
  | Flow_end -> "f"

let event_to_json ev =
  let base =
    [
      ("name", J.String ev.name);
      ("cat", J.String ev.cat);
      ("ph", J.String (phase_letter ev.phase));
      ("ts", J.Float (ev.ts *. 1e6));
      ("pid", J.Int 1);
      ("tid", J.Int ev.dom);
    ]
  in
  let base = if ev.id <> 0 then base @ [ ("id", J.Int ev.id) ] else base in
  let base =
    match ev.phase with
    | Instant -> base @ [ ("s", J.String "g") ] (* global-scope instant *)
    | Flow_end -> base @ [ ("bp", J.String "e") ] (* bind to enclosing slice *)
    | Begin | End | Flow_start -> base
  in
  J.Obj (if ev.args = [] then base else base @ [ ("args", J.Obj ev.args) ])

let to_chrome events =
  J.Obj
    [
      ("traceEvents", J.List (List.map event_to_json events));
      ("displayTimeUnit", J.String "ns");
    ]

let chrome_string () = J.to_string (to_chrome (recorded ()))

let set_dump_path p = dump_path := p

let on_dump f = dump_hooks := f :: !dump_hooks

let dump ~reason =
  if not (Atomic.get on) then None
  else begin
    instant ~cat:"flight" ~args:[ ("reason", J.String reason) ] "dump";
    let events = recorded () in
    last := Some (reason, events);
    List.iter (fun f -> f reason events) !dump_hooks;
    match !dump_path with
    | None -> None
    | Some path ->
      let oc = open_out path in
      output_string oc (J.to_string (to_chrome events));
      output_char oc '\n';
      close_out oc;
      Some path
  end

let last_dump () = !last
