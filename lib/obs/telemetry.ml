type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Geometric buckets: bucket [i] covers [v0 * gamma^i, v0 * gamma^(i+1)).
   gamma = 2^(1/4) bounds the relative quantile error by sqrt(gamma) - 1
   (~9%); 256 buckets upward from 1ns span ~18 decimal orders, enough for
   any duration or count this repository observes. *)
let nbuckets = 256
let v0 = 1e-9
let log_gamma = log 2.0 /. 4.0

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type t = { tbl : (string, metric) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let register t name make describe =
  match Hashtbl.find_opt t.tbl name with
  | None ->
    let m, v = make () in
    Hashtbl.add t.tbl name m;
    v
  | Some existing -> (
    match describe existing with
    | Some v -> v
    | None -> invalid_arg (Fmt.str "Telemetry: %s is already a different metric kind" name))

let counter t name =
  register t name
    (fun () ->
      let c = { c_name = name; c_value = 0 } in
      (Counter c, c))
    (function Counter c -> Some c | _ -> None)

let gauge t name =
  register t name
    (fun () ->
      let g = { g_name = name; g_value = 0.0 } in
      (Gauge g, g))
    (function Gauge g -> Some g | _ -> None)

let histogram t name =
  register t name
    (fun () ->
      let h =
        {
          h_name = name;
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make nbuckets 0;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | _ -> None)

let incr ?(by = 1) c = c.c_value <- c.c_value + by
let counter_value c = c.c_value

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let bucket_of v =
  if v <= v0 then 0
  else
    let i = int_of_float (log (v /. v0) /. log_gamma) in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let count h = h.h_count
let sum h = h.h_sum
let hist_min h = if h.h_count = 0 then 0.0 else h.h_min
let hist_max h = if h.h_count = 0 then 0.0 else h.h_max

let quantile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let target =
      let r = int_of_float (ceil (p *. float_of_int h.h_count)) in
      if r < 1 then 1 else r
    in
    let rec walk i seen =
      if i >= nbuckets then h.h_max
      else begin
        let seen = seen + h.h_buckets.(i) in
        if seen >= target then
          (* geometric midpoint of the bucket *)
          v0 *. exp ((float_of_int i +. 0.5) *. log_gamma)
        else walk (i + 1) seen
      end
    in
    let v = walk 0 0 in
    if v < h.h_min then h.h_min else if v > h.h_max then h.h_max else v
  end

let p50 h = quantile h 0.5
let p95 h = quantile h 0.95
let p99 h = quantile h 0.99

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.0
      | Histogram h ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_buckets 0 nbuckets 0)
    t.tbl

let merge ~into src =
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> incr ~by:c.c_value (counter into name)
      | Gauge g -> set (gauge into name) g.g_value
      | Histogram h ->
        let d = histogram into name in
        d.h_count <- d.h_count + h.h_count;
        d.h_sum <- d.h_sum +. h.h_sum;
        if h.h_min < d.h_min then d.h_min <- h.h_min;
        if h.h_max > d.h_max then d.h_max <- h.h_max;
        Array.iteri (fun i n -> d.h_buckets.(i) <- d.h_buckets.(i) + n) h.h_buckets)
    src.tbl

let names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tbl [])

let find t name kind = Option.bind (Hashtbl.find_opt t.tbl name) kind
let find_counter t name = find t name (function Counter c -> Some c | _ -> None)
let find_gauge t name = find t name (function Gauge g -> Some g | _ -> None)
let find_histogram t name = find t name (function Histogram h -> Some h | _ -> None)

let sorted_metrics t =
  List.filter_map (fun name -> Hashtbl.find_opt t.tbl name |> Option.map (fun m -> (name, m))) (names t)

let hist_json h =
  Sep_util.Json.Obj
    [
      ("count", Sep_util.Json.Int h.h_count);
      ("sum", Sep_util.Json.Float h.h_sum);
      ("min", Sep_util.Json.Float (hist_min h));
      ("max", Sep_util.Json.Float (hist_max h));
      ("mean", Sep_util.Json.Float (if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count));
      ("p50", Sep_util.Json.Float (quantile h 0.5));
      ("p90", Sep_util.Json.Float (quantile h 0.9));
      ("p95", Sep_util.Json.Float (quantile h 0.95));
      ("p99", Sep_util.Json.Float (quantile h 0.99));
    ]

let to_json t =
  let section f =
    List.filter_map (fun (name, m) -> f m |> Option.map (fun v -> (name, v))) (sorted_metrics t)
  in
  Sep_util.Json.Obj
    [
      ( "counters",
        Sep_util.Json.Obj
          (section (function Counter c -> Some (Sep_util.Json.Int c.c_value) | _ -> None)) );
      ( "gauges",
        Sep_util.Json.Obj
          (section (function Gauge g -> Some (Sep_util.Json.Float g.g_value) | _ -> None)) );
      ( "histograms",
        Sep_util.Json.Obj (section (function Histogram h -> Some (hist_json h) | _ -> None)) );
    ]

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Fmt.pf ppf "%-40s %d@," name c.c_value
      | Gauge g -> Fmt.pf ppf "%-40s %g@," name g.g_value
      | Histogram h ->
        Fmt.pf ppf "%-40s n=%d sum=%.6f p50=%.3e p90=%.3e p99=%.3e max=%.3e@," name h.h_count
          h.h_sum (quantile h 0.5) (quantile h 0.9) (quantile h 0.99) (hist_max h))
    (sorted_metrics t);
  Fmt.pf ppf "@]"
