type t = string

(* The main domain's registry is the process-global one that [to_json] and
   [rushby stats] report. Worker domains spawned by [Sep_par] get a fresh
   domain-local registry on first use; the executor merges those into the
   spawner's registry at join, so span counts and latencies survive
   parallel sections without any cross-domain mutation. *)
let registry = Telemetry.create ()

let key : Telemetry.t Domain.DLS.key = Domain.DLS.new_key Telemetry.create

let () = Domain.DLS.set key registry

let local () = Domain.DLS.get key

let on = Atomic.make false

let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let make name = "span." ^ name

let time h f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        Telemetry.observe (Telemetry.histogram (local ()) h) (Unix.gettimeofday () -. t0))
      f
  end

let with_ ~name f = time (make name) f

let reset () = Telemetry.reset registry

let to_json () = Telemetry.to_json registry
