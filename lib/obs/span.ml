type t = Telemetry.histogram

let registry = Telemetry.create ()
let on = ref false

let set_enabled b = on := b
let enabled () = !on

let make name = Telemetry.histogram registry ("span." ^ name)

let time h f =
  if not !on then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> Telemetry.observe h (Unix.gettimeofday () -. t0)) f
  end

let with_ ~name f = time (make name) f

let reset () = Telemetry.reset registry

let to_json () = Telemetry.to_json registry
