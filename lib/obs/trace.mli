(** Causal tracing into a bounded flight recorder.

    Where {!Telemetry} aggregates and {!Span} times, [Trace] remembers
    {e individual} events in causal order: kernel steps, traps and
    regime swaps ({!Sep_core.Sue}), send→deliver link edges
    ({!Sep_distributed.Net}) and task boundaries ({!Sep_par.Par}).
    Events carry a category, a span/flow id and optional structured
    arguments; happens-before edges that cross layers (a channel word
    leaving one box and arriving at another, a task forked on one domain
    and joined on another) are expressed as {e flow} pairs sharing an id.

    The recorder is a fixed-capacity ring — the {e flight recorder}: in
    steady state it always holds the last [capacity] events, so when a
    kernel panics or the online monitor flags a separability violation,
    {!dump} writes the events leading up to the incident. Recording is
    globally switched and off by default; a disabled emit costs one
    atomic load and a branch, so instrumentation can sit on kernel hot
    paths. The ring is protected by a mutex: worker domains spawned by
    {!Sep_par} may emit concurrently.

    The export format is the Chrome [trace_event] JSON array (load it in
    [chrome://tracing] or Perfetto): phases [B]/[E] for durations, [i]
    for instants, [s]/[f] for flow edges, timestamps in microseconds
    since the trace epoch, thread id = the emitting domain. *)

type phase =
  | Begin  (** opens a duration slice; pair with [End] *)
  | End
  | Instant  (** a point event *)
  | Flow_start  (** the source of a happens-before edge (Chrome [s]) *)
  | Flow_end  (** the sink of the edge with the same [id] (Chrome [f]) *)

type event = {
  seq : int;  (** global emission order (monotone across domains) *)
  ts : float;  (** seconds since the trace epoch *)
  dom : int;  (** emitting domain id *)
  cat : string;  (** layer: ["sue"], ["net"], ["par"], ["monitor"], ... *)
  name : string;
  phase : phase;
  id : int;  (** span/flow id; [0] when the event is not part of an edge *)
  args : (string * Sep_util.Json.t) list;
}

val set_enabled : bool -> unit
(** Turn recording on or off (default: off). Enabling (re)starts the
    trace epoch when the ring is empty. *)

val enabled : unit -> bool

val set_capacity : int -> unit
(** Resize the ring (default 4096 events) and clear it. The capacity is
    clamped to at least 16. *)

val capacity : unit -> int

val clear : unit -> unit
(** Drop all recorded events and reset the sequence counter. *)

val fresh_id : unit -> int
(** A process-unique nonzero id for a new span or flow edge. *)

val emit :
  ?id:int -> ?args:(string * Sep_util.Json.t) list -> cat:string -> phase:phase -> string -> unit
(** Record one event (no-op while disabled). *)

val instant : ?id:int -> ?args:(string * Sep_util.Json.t) list -> cat:string -> string -> unit

val flow_start : ?args:(string * Sep_util.Json.t) list -> cat:string -> string -> int
(** Emit the source of a happens-before edge and return its fresh id —
    hand the id to the party that will observe the effect. Returns [0]
    (and records nothing) while disabled. *)

val flow_end : ?args:(string * Sep_util.Json.t) list -> cat:string -> id:int -> string -> unit
(** Emit the sink of the edge [id]. No-op while disabled or when
    [id = 0], so a flow started while the recorder was off never
    produces a dangling sink. *)

val recorded : unit -> event list
(** The ring's contents, oldest first. *)

val seen : unit -> int
(** Events offered while enabled since the last {!clear} — [seen ()
    - List.length (recorded ())] have been overwritten (wraparound). *)

val event_to_json : event -> Sep_util.Json.t
(** One Chrome [trace_event] object: [{"name", "cat", "ph", "ts"
    (microseconds), "pid", "tid", "id"?, "args"?}]. Exhaustive over
    {!phase} by construction. *)

val to_chrome : event list -> Sep_util.Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] — the envelope
    Chrome and Perfetto accept. *)

val chrome_string : unit -> string
(** {!to_chrome} of {!recorded}, serialized. *)

val set_dump_path : string option -> unit
(** Where {!dump} writes (default: none — dumps are kept in memory for
    {!last_dump} only). *)

val on_dump : (string -> event list -> unit) -> unit
(** Register an observer called with the reason and the events on every
    {!dump} — tests and the CLI use this; hooks persist until process
    exit. *)

val dump : reason:string -> string option
(** Flush the flight recorder: emit a final [Instant] marking [reason],
    write the Chrome JSON to the dump path (returned) if one is set, and
    notify {!on_dump} observers. The ring is {e not} cleared — a later
    incident extends the same trace. No-op returning [None] while
    disabled. [Sue] calls this on kernel panic; the online monitor calls
    it on the first separability violation. *)

val last_dump : unit -> (string * event list) option
(** The reason and events of the most recent {!dump}, if any. *)
