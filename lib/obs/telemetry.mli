(** Metric registry: counters, gauges and log-bucketed latency histograms.

    The observability substrate of the reproduction. A registry is a named
    collection of metrics; handles ({!counter}, {!gauge}, {!histogram}) are
    obtained once and updated in O(1) with no further lookups, so metrics
    can live on kernel hot paths. Registries are mergeable (for combining
    per-run or per-worker snapshots) and serialize to JSON through
    {!Sep_util.Json} for the JSONL sinks and bench snapshots.

    Histograms are log-bucketed: observations land in geometric buckets
    with growth ratio [2^(1/4)], so every quantile estimate carries at most
    ~9% relative error while the histogram itself stays a fixed 256-word
    array — mergeable by plain addition and far cheaper than retaining
    samples. *)

type t
(** A metric registry. *)

type counter
(** A monotone integer counter. *)

type gauge
(** A point-in-time float value. *)

type histogram
(** A distribution sketch with p50/p90/p99 quantile estimates. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find or register the counter [name]. Raises [Invalid_argument] if the
    name is already registered as a different metric kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). *)

val counter_value : counter -> int

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation (seconds, for span histograms; any nonnegative
    unit in general — nonpositive values land in the lowest bucket). *)

val count : histogram -> int
val sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h p] for [p] in [[0, 1]]: the geometric midpoint of the
    bucket holding the [p]-th ranked observation, clamped to the exact
    observed min/max. [0.] when the histogram is empty. *)

val p50 : histogram -> float
val p95 : histogram -> float
val p99 : histogram -> float
(** The standard latency quantiles, [quantile h 0.5] etc. — the values the
    JSON snapshot and the bench reports quote. *)

val hist_min : histogram -> float
val hist_max : histogram -> float

val reset : t -> unit
(** Zero every metric, keeping registrations. *)

val merge : into:t -> t -> unit
(** Fold the source registry into [into]: counters and histogram buckets
    add; a gauge takes the source's value. Metrics absent from [into] are
    registered. Raises [Invalid_argument] on a name registered with
    different kinds on the two sides. *)

val names : t -> string list
(** Registered metric names, sorted. *)

val find_counter : t -> string -> counter option
val find_gauge : t -> string -> gauge option
val find_histogram : t -> string -> histogram option

val to_json : t -> Sep_util.Json.t
(** Stable snapshot schema:
    [{"counters": {name: int, ...},
      "gauges": {name: float, ...},
      "histograms": {name: {"count": int, "sum": s, "min": m, "max": M,
                            "mean": mu, "p50": q, "p90": q, "p95": q,
                            "p99": q}}}]
    with names sorted within each section. *)

val pp : Format.formatter -> t -> unit
(** A human-readable table of the same snapshot. *)
