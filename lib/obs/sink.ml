type target =
  | To_buffer of Buffer.t
  | To_channel of out_channel

type t = { target : target; mutable lines : int }

let of_buffer b = { target = To_buffer b; lines = 0 }
let of_channel oc = { target = To_channel oc; lines = 0 }

let emit t v =
  let line = Sep_util.Json.to_string v in
  (match t.target with
  | To_buffer b ->
    Buffer.add_string b line;
    Buffer.add_char b '\n'
  | To_channel oc ->
    output_string oc line;
    output_char oc '\n');
  t.lines <- t.lines + 1

let emitted t = t.lines

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (of_channel oc))
