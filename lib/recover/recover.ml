module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue

type policy = {
  max_restarts : int;
  max_warm_reboots : int;
}

let default_policy = { max_restarts = 3; max_warm_reboots = 2 }

type action =
  | Restarted of Colour.t
  | Warm_rebooted of Colour.t list
  | Gave_up of Colour.t

let pp_action ppf = function
  | Restarted c -> Fmt.pf ppf "restarted %a" Colour.pp c
  | Warm_rebooted cs -> Fmt.pf ppf "warm reboot restored %a" Fmt.(list ~sep:comma Colour.pp) cs
  | Gave_up c -> Fmt.pf ppf "gave up on %a" Colour.pp c

type t = {
  policy : policy;
  sue : Sue.t;
  mutable restarts : (Colour.t * int) list;
  mutable warm_reboots : int;
  mutable abandoned : Colour.t list;  (* newest first *)
  mutable log : action list;  (* newest first *)
}

let create ?(policy = default_policy) sue =
  { policy; sue; restarts = []; warm_reboots = 0; abandoned = []; log = [] }

let kernel sup = sup.sue

let restart_count sup c =
  match List.assoc_opt c sup.restarts with Some n -> n | None -> 0

let charge sup c =
  sup.restarts <- (c, restart_count sup c + 1) :: List.remove_assoc c sup.restarts

let abandoned sup = List.rev sup.abandoned
let log sup = List.rev sup.log
let warm_reboots sup = sup.warm_reboots

let parked sup =
  List.filter
    (fun c -> Sue.regime_status sup.sue c = Sep_core.Abstract_regime.Parked)
    (Config.colours (Sue.config sup.sue))

(* One supervision round, to run after each kernel step. An all-parked
   halt takes the warm-reboot path (the whole kernel comes back, audit
   log intact); isolated parks take per-regime restarts. Budgets bound
   both, so a regime that keeps crashing (or whose checkpoint is corrupt)
   is eventually abandoned — recovery must not become a crash loop. *)
let tick sup =
  let actions = ref [] in
  let act a = actions := a :: !actions; sup.log <- a :: sup.log in
  (* a give-up is an action too — callers watching the returned list see
     the abandonment the round it happens (once per colour) *)
  let give_up c =
    if not (List.exists (Colour.equal c) sup.abandoned) then begin
      sup.abandoned <- c :: sup.abandoned;
      act (Gave_up c)
    end
  in
  (match parked sup with
  | [] -> ()
  | victims when Sue.all_parked sup.sue ->
    if sup.warm_reboots >= sup.policy.max_warm_reboots then List.iter give_up victims
    else begin
      sup.warm_reboots <- sup.warm_reboots + 1;
      let restored = Sue.warm_reboot sup.sue in
      List.iter (charge sup) restored;
      act (Warm_rebooted restored);
      List.iter
        (fun c -> if not (List.exists (Colour.equal c) restored) then give_up c)
        victims
    end
  | victims ->
    List.iter
      (fun c ->
        if restart_count sup c >= sup.policy.max_restarts then give_up c
        else begin
          match Sue.restart sup.sue c with
          | Sue.Restarted ->
            charge sup c;
            act (Restarted c)
          | Sue.Bad_checkpoint -> give_up c
          | Sue.Not_parked -> ()
        end)
      victims);
  List.rev !actions

let fully_recovered sup = parked sup = [] && sup.abandoned = []
