(** The recovery supervisor: fail-operational on top of fail-safe.

    PR 2's hardening gives the kernel fail-{e safe} transitions — a
    corrupted regime parks, a fault inside the kernel panics to an
    all-parked halt — but the system never comes back. This supervisor
    closes the loop: after each kernel step it restarts parked regimes
    from their checkpoints ({!Sep_core.Sue.restart}) and answers an
    all-parked halt with a kernel warm reboot
    ({!Sep_core.Sue.warm_reboot}), under budgets that keep a persistently
    crashing regime from turning recovery into a crash loop.

    The supervisor is deliberately {e outside} the kernel: it drives only
    the public recovery operations, so everything it does is subject to
    the same separability verification as any other kernel behaviour
    (see {!Proof}). Requires the [Microcode] kernel, like the operations
    it drives. *)

type policy = {
  max_restarts : int;  (** per-colour restart budget (warm-reboot restores count) *)
  max_warm_reboots : int;  (** whole-kernel reboot budget *)
}

val default_policy : policy
(** 3 restarts per colour, 2 warm reboots. *)

type action =
  | Restarted of Sep_model.Colour.t
  | Warm_rebooted of Sep_model.Colour.t list  (** the colours the reboot restored *)
  | Gave_up of Sep_model.Colour.t
      (** budget exhausted or checkpoint corrupt: the regime stays parked *)

val pp_action : Format.formatter -> action -> unit

type t

val create : ?policy:policy -> Sep_core.Sue.t -> t

val kernel : t -> Sep_core.Sue.t

val tick : t -> action list
(** One supervision round, to run after each kernel step: restart parked
    regimes within budget (or warm-reboot an all-parked kernel), give up
    on the rest. Returns this round's actions in order; [[]] when nothing
    was parked. *)

val restart_count : t -> Sep_model.Colour.t -> int
val warm_reboots : t -> int

val abandoned : t -> Sep_model.Colour.t list
(** Colours given up on, oldest first. *)

val log : t -> action list
(** Every action ever taken, oldest first. *)

val fully_recovered : t -> bool
(** Nothing is parked and nothing was abandoned: every crash so far was
    recovered. *)
