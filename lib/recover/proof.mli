(** Proof obligations of the recovery layer.

    Recovery is only worth shipping if it provably leaks nothing: a
    regime's crash-and-restart must be invisible to every other colour.
    Three obligations, each discharged by checking, not by argument:

    - {b invisibility}: restoring a parked regime leaves every other
      colour's [Phi] untouched ({!restart_invisible});
    - {b commutativity}: restarts are per-colour operations, so their
      order cannot matter ({!restart_commutes});
    - {b the six conditions across the boundary}: snapshots taken before
      the crash, while parked, and after the restart — with the usual
      scrambled [Phi]-partners — all satisfy Proof of Separability
      ({!check_boundary}), cut-wire isolation included (the conditions
      quantify over every channel end the scenario has). *)

val restart_invisible :
  Sep_core.Sue.t -> Sep_model.Colour.t -> Sep_core.Sue.restart_result * string list
(** On a copy: snapshot [Phi^c] of every other colour, restart the victim,
    compare. The mismatch list is empty iff the restart was invisible
    (trivially so when the restart did not happen — the result says
    why). *)

val restart_commutes : Sep_core.Sue.t -> Sep_model.Colour.t -> Sep_model.Colour.t -> bool
(** Restart the two colours in both orders, on copies; the final machine
    states must be equal. *)

val boundary_sample : ?scrambles:int -> seed:int -> Sep_core.Sue.t list -> Sep_core.Sue.t list
(** Every snapshot plus [scrambles] (default 2) scrambled [Phi]-partners
    per colour — the state pairs conditions 3, 5 and 6 quantify over. *)

val check_boundary :
  ?scrambles:int -> seed:int -> alphabet:Sep_core.Sue.input list -> Sep_core.Sue.t list ->
  Sep_core.Separability.report
(** Proof of Separability over {!boundary_sample} of the given snapshots
    (all from one build — e.g. pre-crash, parked, post-restart), using the
    bug-free microcode system over [alphabet]. Raises [Invalid_argument]
    on an empty list. *)
