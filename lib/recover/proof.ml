module Colour = Sep_model.Colour
module Prng = Sep_util.Prng
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Abstract_regime = Sep_core.Abstract_regime
module Separability = Sep_core.Separability

let restart_invisible t victim =
  let s = Sue.copy t in
  let others =
    List.filter (fun c -> not (Colour.equal c victim)) (Config.colours (Sue.config s))
  in
  let before = List.map (fun c -> (c, Sue.phi s c)) others in
  let result = Sue.restart s victim in
  let mismatches =
    List.filter_map
      (fun (c, pre) ->
        if Abstract_regime.equal pre (Sue.phi s c) then None
        else
          Some
            (Fmt.str "Phi^%s changed across the restart of %s" (Colour.name c)
               (Colour.name victim)))
      before
  in
  (result, mismatches)

let restart_commutes t c1 c2 =
  let a = Sue.copy t and b = Sue.copy t in
  ignore (Sue.restart a c1);
  ignore (Sue.restart a c2);
  ignore (Sue.restart b c2);
  ignore (Sue.restart b c1);
  Sue.equal a b

(* The fuzz engine's sampling pattern: every snapshot plus, per colour,
   [scrambles] copies with everything outside that colour's Phi
   randomized — the state pairs conditions 3, 5 and 6 quantify over. *)
let boundary_sample ?(scrambles = 2) ~seed states =
  let rng = Prng.create seed in
  List.concat_map
    (fun s ->
      s
      :: List.concat_map
           (fun c -> List.init scrambles (fun _ -> Sue.scramble_others rng s c))
           (Config.colours (Sue.config s)))
    states

let check_boundary ?scrambles ~seed ~alphabet states =
  match states with
  | [] -> invalid_arg "Proof.check_boundary: no states"
  | s0 :: _ ->
    let cfg = Sue.config s0 in
    let sys = Sue.to_system ~inputs:alphabet cfg in
    Separability.check_states sys (boundary_sample ?scrambles ~seed states)
