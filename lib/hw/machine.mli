(** The simulated shared machine.

    A 16-bit, word-addressed uniprocessor in the mould of the PDP-11/34
    that hosted the SUE kernel:

    - physical memory of configurable size;
    - a base/limit memory-management unit: in user mode, data/code
      addresses below {!device_space} are relocated through a base/limit
      pair, so a regime can be confined to its partition;
    - memory-mapped device registers: virtual addresses at and above
      {!device_space} address the {e device slots} granted to the current
      regime by the MMU (two registers per slot: data and status), so
      devices are protected exactly like memory — the property the SUE
      exploits to evade mediating I/O;
    - no DMA, by construction (the paper: "DMA is permanently excluded
      from the system");
    - devices that raise interrupt requests which only the kernel can see
      and must forward ({!pending_irqs}).

    The machine executes user-mode instructions; everything privileged
    (traps, scheduling, MMU programming, interrupt fielding) is delegated
    to the kernel built on top ({!Sep_core.Sue}). State is mutable for
    simulation speed; {!copy}, {!equal} and {!hash} support the
    state-pair checks of randomized Proof of Separability. *)

type transform =
  | Identity
  | Xor_key of Word.t
  | Add_key of Word.t
      (** Transform devices model in-line cryptos as data, so machine states
          stay comparable with structural equality. *)

type device_kind =
  | Rx  (** receives words from the external world; raises an IRQ per word *)
  | Tx  (** emits words to the external world *)
  | Xform of transform  (** write a word, read back its image *)

type fault =
  | Illegal_instruction of Word.t
  | Mem_violation of int  (** offending virtual address *)
  | Device_violation of int

type step_result =
  | Stepped  (** one instruction executed normally *)
  | Trapped of int  (** the program executed [Trap n] *)
  | Waiting  (** the program executed [Halt] (wait-for-interrupt) *)
  | Returned  (** kernel mode only: the program executed [Rti] *)
  | Faulted of fault

type mode =
  | User
  | Kernel

type t

val device_space : int
(** Virtual addresses at or above this constant address device slots. *)

(** {1 Privilege and trap hardware}

    The machine has two modes. In [User] mode, addresses are relocated
    through the MMU and the privileged state below is unreachable. In
    [Kernel] mode, addresses below the memory size are {e physical}, and
    two hardware register files appear in the address space:

    - the {b trap frame} at {!frame_base}: the eight general registers,
      the flags and the trap cause as dumped by {!enter_kernel} — words
      [frame_base+0 .. +7] (registers), [+8] (flags, Z in bit 0, N in
      bit 1), [+9] (cause). [Rti] reloads registers and flags from the
      frame and drops back to [User] mode.
    - the {b MMU control registers} at {!mmu_base}: [+0] base, [+1]
      limit, [+2] device-slot count, [+3 .. +10] slot ids. Every write
      re-programs the live MMU from these shadows.

    This is how the separation kernel can itself be machine code: traps
    and interrupts dump the interrupted context where kernel code can
    reach it, and the kernel's last instruction is [Rti]. *)

val frame_base : int
val mmu_base : int

val mode : t -> mode

val enter_kernel : t -> cause:int -> vector:int -> unit
(** The hardware trap sequence: dump registers, flags and [cause] into the
    trap frame, enter [Kernel] mode, continue at physical [vector]. *)

val cause_swap : int
val cause_send : int
val cause_recv : int
val cause_bad_trap : int
val cause_wait : int
val cause_fault : int
val cause_resched : int
(** Conventional cause codes: traps 0-2 use their trap number; other traps
    report {!cause_bad_trap}; [cause_wait], [cause_fault] and
    [cause_resched] identify WAIT, faults and interrupt-driven
    rescheduling. *)

val create : mem_words:int -> devices:device_kind list -> t
(** A machine with zeroed memory and registers and idle devices. *)

val mem_size : t -> int
val num_devices : t -> int

(** {1 Privileged (kernel-only) state access} *)

val read_phys : t -> int -> Word.t
(** Physical read; raises [Invalid_argument] when out of range. *)

val write_phys : t -> int -> Word.t -> unit

val get_reg : t -> int -> Word.t
val set_reg : t -> int -> Word.t -> unit

val get_flags : t -> bool * bool
(** (Z, N) condition codes. *)

val set_flags : t -> bool * bool -> unit

val set_mmu : t -> base:int -> limit:int -> dev_slots:int array -> unit
(** Program the MMU for the regime about to run: its partition window and
    the device ids granted to its slots. *)

val mmu : t -> int * int * int array

(** {1 Devices} *)

val device_kind : t -> int -> device_kind

val device_input : t -> int -> Word.t -> unit
(** External world delivers a word to an [Rx] device: latches the data
    register, sets status, raises the IRQ line. Raises [Invalid_argument]
    on a non-[Rx] device. *)

val device_outputs : t -> (int * Word.t) list
(** Collect and clear words pending in [Tx] devices (device id, word). *)

val device_regs : t -> int -> Word.t * Word.t
(** (data, status) registers of a device, unprotected — kernel/test use. *)

val set_device_regs : t -> int -> data:Word.t -> status:Word.t -> unit

val pending_irqs : t -> int list
(** Devices whose IRQ line is raised and not yet fielded. *)

val field_irq : t -> int -> unit
(** Kernel acknowledges (lowers) a device's IRQ line. *)

val raise_irq : t -> int -> unit
(** Assert a device's IRQ line without latching data — models a spurious
    or duplicated interrupt (fault injection; any device kind). *)

(** {1 Execution} *)

val step_user : t -> step_result
(** Fetch (through the MMU, at the PC), decode, execute one user-mode
    instruction. On [Trapped]/[Waiting] the PC points after the trapping
    instruction. On [Faulted] the PC is left at the faulting
    instruction. *)

val load_user : t -> int -> Word.t option
(** Read through the current MMU mapping, as user code would ([None] on a
    violation). Used by the kernel to read trap arguments. *)

val store_user : t -> int -> Word.t -> bool
(** Write through the current MMU mapping; [false] on a violation. *)

val instruction_count : t -> int

(** {1 Snapshots, for verification} *)

val copy : t -> t
(** Deep copy; the copy evolves independently. *)

val equal : t -> t -> bool
(** Structural equality of the full machine state (memory, registers,
    flags, MMU, devices, IRQ lines). *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Compact dump: registers, flags, MMU, devices and a memory digest. *)
