type transform =
  | Identity
  | Xor_key of Word.t
  | Add_key of Word.t

type device_kind =
  | Rx
  | Tx
  | Xform of transform

type fault =
  | Illegal_instruction of Word.t
  | Mem_violation of int
  | Device_violation of int

type step_result =
  | Stepped
  | Trapped of int
  | Waiting
  | Returned
  | Faulted of fault

type mode =
  | User
  | Kernel

type device = {
  kind : device_kind;
  mutable data : Word.t;
  mutable status : Word.t;
  mutable irq : bool;
}

type mmu_state = { mutable base : int; mutable limit : int; mutable dev_slots : int array }

type t = {
  mem : int array;
  regs : int array;
  mutable flag_z : bool;
  mutable flag_n : bool;
  mm : mmu_state;
  devices : device array;
  mutable instructions : int;
  mutable cpu_mode : mode;
  frame : int array;  (* 8 registers, flags, cause *)
  mmu_shadow : int array;  (* base, limit, slot count, 8 slots *)
}

let device_space = 0x8000
let frame_base = 0x7f00
let frame_words = 10
let mmu_base = 0x7f10
let mmu_words = 11

let cause_swap = 0
let cause_send = 1
let cause_recv = 2
let cause_bad_trap = 3
let cause_wait = 4
let cause_fault = 5
let cause_resched = 6

let create ~mem_words ~devices =
  assert (mem_words > 0 && mem_words <= device_space);
  let make_device kind = { kind; data = 0; status = 0; irq = false } in
  {
    mem = Array.make mem_words 0;
    regs = Array.make Isa.num_regs 0;
    flag_z = false;
    flag_n = false;
    mm = { base = 0; limit = 0; dev_slots = [||] };
    devices = Array.of_list (List.map make_device devices);
    instructions = 0;
    cpu_mode = User;
    frame = Array.make frame_words 0;
    mmu_shadow = Array.make mmu_words 0;
  }

let mem_size t = Array.length t.mem
let num_devices t = Array.length t.devices

let read_phys t a =
  if a < 0 || a >= Array.length t.mem then invalid_arg "Machine.read_phys";
  t.mem.(a)

let write_phys t a w =
  if a < 0 || a >= Array.length t.mem then invalid_arg "Machine.write_phys";
  t.mem.(a) <- Word.of_int w

let get_reg t r = t.regs.(r)
let set_reg t r w = t.regs.(r) <- Word.of_int w

let get_flags t = (t.flag_z, t.flag_n)

let set_flags t (z, n) =
  t.flag_z <- z;
  t.flag_n <- n

let set_mmu t ~base ~limit ~dev_slots =
  assert (base >= 0 && limit >= 0 && base + limit <= Array.length t.mem);
  t.mm.base <- base;
  t.mm.limit <- limit;
  t.mm.dev_slots <- Array.copy dev_slots

let mmu t = (t.mm.base, t.mm.limit, Array.copy t.mm.dev_slots)

let device_kind t d = t.devices.(d).kind

let apply_transform tr w =
  match tr with
  | Identity -> w
  | Xor_key k -> Word.logxor w k
  | Add_key k -> Word.add w k

let device_input t d w =
  let dev = t.devices.(d) in
  (match dev.kind with
  | Rx -> ()
  | Tx | Xform _ -> invalid_arg "Machine.device_input: not an Rx device");
  dev.data <- Word.of_int w;
  dev.status <- 1;
  dev.irq <- true

let device_outputs t =
  let out = ref [] in
  Array.iteri
    (fun i dev ->
      match dev.kind with
      | Tx when dev.status = 1 ->
        out := (i, dev.data) :: !out;
        dev.status <- 0
      | Tx | Rx | Xform _ -> ())
    t.devices;
  List.rev !out

let device_regs t d =
  let dev = t.devices.(d) in
  (dev.data, dev.status)

let set_device_regs t d ~data ~status =
  let dev = t.devices.(d) in
  dev.data <- Word.of_int data;
  dev.status <- Word.of_int status

let pending_irqs t =
  let out = ref [] in
  Array.iteri (fun i dev -> if dev.irq then out := i :: !out) t.devices;
  List.rev !out

let field_irq t d = t.devices.(d).irq <- false

(* Assert a device's interrupt line without latching any data — a
   spurious or duplicated interrupt, as injected by fault campaigns. *)
let raise_irq t d = t.devices.(d).irq <- true

(* Virtual-address access through the MMU.

   Below [device_space]: base/limit relocation into the regime partition.
   At/above [device_space]: pairs of words address the regime's device
   slots — slot k's data register at [device_space + 2k], status at
   [device_space + 2k + 1]. *)

type translated =
  | Mem of int
  | Dev of int * bool  (* device id, [true] = status register *)
  | Frame of int  (* word offset into the trap frame *)
  | Mmuctl of int  (* word offset into the MMU control registers *)
  | Violation

let translate t vaddr =
  if vaddr < 0 then Violation
  else begin
    match t.cpu_mode with
    | User ->
      if vaddr < device_space then begin
        if vaddr < t.mm.limit then Mem (t.mm.base + vaddr) else Violation
      end
      else begin
        let off = vaddr - device_space in
        let slot = off lsr 1 and is_status = off land 1 = 1 in
        if slot < Array.length t.mm.dev_slots then Dev (t.mm.dev_slots.(slot), is_status)
        else Violation
      end
    | Kernel ->
      (* physical addressing plus the privileged register files *)
      if vaddr < Array.length t.mem then Mem vaddr
      else if vaddr >= frame_base && vaddr < frame_base + frame_words then
        Frame (vaddr - frame_base)
      else if vaddr >= mmu_base && vaddr < mmu_base + mmu_words then Mmuctl (vaddr - mmu_base)
      else Violation
  end

(* Re-program the live MMU from the shadow registers, clamping to the
   physical memory so kernel bugs cannot crash the simulator itself. *)
let apply_mmu_shadow t =
  let mem = Array.length t.mem in
  let base = min t.mmu_shadow.(0) mem in
  let limit = min t.mmu_shadow.(1) (mem - base) in
  let count = min t.mmu_shadow.(2) 8 in
  let slots =
    Array.init count (fun k ->
        let d = t.mmu_shadow.(3 + k) in
        if d < Array.length t.devices then d else 0)
  in
  t.mm.base <- base;
  t.mm.limit <- limit;
  t.mm.dev_slots <- slots

let dev_read t d ~status =
  let dev = t.devices.(d) in
  if status then dev.status
  else begin
    match dev.kind with
    | Rx ->
      (* Reading the data register consumes the buffered word. *)
      dev.status <- 0;
      dev.data
    | Tx | Xform _ -> dev.data
  end

let dev_write t d ~status w =
  let dev = t.devices.(d) in
  if status then dev.status <- w
  else begin
    match dev.kind with
    | Tx ->
      dev.data <- w;
      dev.status <- 1 (* pending transmission *)
    | Xform tr ->
      dev.data <- apply_transform tr w;
      dev.status <- 1 (* result ready *)
    | Rx -> dev.data <- w
  end

let load_user t vaddr =
  match translate t vaddr with
  | Mem a -> Some t.mem.(a)
  | Dev (d, status) -> Some (dev_read t d ~status)
  | Frame i -> Some t.frame.(i)
  | Mmuctl i -> Some t.mmu_shadow.(i)
  | Violation -> None

let store_user t vaddr w =
  match translate t vaddr with
  | Mem a ->
    t.mem.(a) <- Word.of_int w;
    true
  | Dev (d, status) ->
    dev_write t d ~status (Word.of_int w);
    true
  | Frame i ->
    t.frame.(i) <- Word.of_int w;
    true
  | Mmuctl i ->
    t.mmu_shadow.(i) <- Word.of_int w;
    apply_mmu_shadow t;
    true
  | Violation -> false

let set_zn t w =
  t.flag_z <- Word.is_zero w;
  t.flag_n <- Word.is_negative w

let step_user t =
  let pc = t.regs.(Isa.pc_reg) in
  match load_user t pc with
  | None -> Faulted (Mem_violation pc)
  | Some insn_word -> begin
    match Isa.decode insn_word with
    | None -> Faulted (Illegal_instruction insn_word)
    | Some insn ->
      t.instructions <- t.instructions + 1;
      let bump () = t.regs.(Isa.pc_reg) <- Word.add pc 1 in
      let alu dst v =
        set_zn t v;
        t.regs.(dst) <- v;
        bump ();
        Stepped
      in
      (match insn with
      | Isa.Nop ->
        bump ();
        Stepped
      | Isa.Halt ->
        bump ();
        Waiting
      | Isa.Rti ->
        if t.cpu_mode = Kernel then begin
          for i = 0 to Isa.num_regs - 1 do
            t.regs.(i) <- Word.of_int t.frame.(i)
          done;
          t.flag_z <- t.frame.(8) land 1 <> 0;
          t.flag_n <- t.frame.(8) land 2 <> 0;
          t.cpu_mode <- User;
          Returned
        end
        else Faulted (Illegal_instruction insn_word)
      | Isa.Trap n ->
        bump ();
        Trapped n
      | Isa.Loadi (r, imm) -> alu r (Word.of_int imm)
      | Isa.Load (r, b, off) -> begin
        let vaddr = Word.add t.regs.(b) (Word.of_int off) in
        match load_user t vaddr with
        | None ->
          if t.cpu_mode = User && vaddr >= device_space then Faulted (Device_violation vaddr)
          else Faulted (Mem_violation vaddr)
        | Some v -> alu r v
      end
      | Isa.Store (r, b, off) ->
        let vaddr = Word.add t.regs.(b) (Word.of_int off) in
        if store_user t vaddr t.regs.(r) then begin
          bump ();
          Stepped
        end
        else if t.cpu_mode = User && vaddr >= device_space then Faulted (Device_violation vaddr)
        else Faulted (Mem_violation vaddr)
      | Isa.Mov (d, s) -> alu d t.regs.(s)
      | Isa.Add (d, s) -> alu d (Word.add t.regs.(d) t.regs.(s))
      | Isa.Sub (d, s) -> alu d (Word.sub t.regs.(d) t.regs.(s))
      | Isa.And_ (d, s) -> alu d (Word.logand t.regs.(d) t.regs.(s))
      | Isa.Or_ (d, s) -> alu d (Word.logor t.regs.(d) t.regs.(s))
      | Isa.Xor (d, s) -> alu d (Word.logxor t.regs.(d) t.regs.(s))
      | Isa.Cmp (d, s) ->
        set_zn t (Word.sub t.regs.(d) t.regs.(s));
        bump ();
        Stepped
      | Isa.Shl (r, a) -> alu r (Word.shift_left t.regs.(r) a)
      | Isa.Shr (r, a) -> alu r (Word.shift_right t.regs.(r) a)
      | Isa.Beq off ->
        if t.flag_z then t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off) else bump ();
        Stepped
      | Isa.Bne off ->
        if not t.flag_z then t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off) else bump ();
        Stepped
      | Isa.Br off ->
        t.regs.(Isa.pc_reg) <- Word.of_int (pc + 1 + off);
        Stepped)
  end

let instruction_count t = t.instructions

let mode t = t.cpu_mode

let enter_kernel t ~cause ~vector =
  for i = 0 to Isa.num_regs - 1 do
    t.frame.(i) <- t.regs.(i)
  done;
  t.frame.(8) <- (if t.flag_z then 1 else 0) lor (if t.flag_n then 2 else 0);
  t.frame.(9) <- Word.of_int cause;
  t.cpu_mode <- Kernel;
  t.regs.(Isa.pc_reg) <- Word.of_int vector

let copy t =
  let copy_device d = { d with kind = d.kind } in
  {
    mem = Array.copy t.mem;
    regs = Array.copy t.regs;
    flag_z = t.flag_z;
    flag_n = t.flag_n;
    mm = { base = t.mm.base; limit = t.mm.limit; dev_slots = Array.copy t.mm.dev_slots };
    devices = Array.map copy_device t.devices;
    instructions = t.instructions;
    cpu_mode = t.cpu_mode;
    frame = Array.copy t.frame;
    mmu_shadow = Array.copy t.mmu_shadow;
  }

(* The instruction counter is bookkeeping, not machine state: two runs that
   reach the same machine configuration by different paths are the same
   state for verification purposes. *)
let equal a b =
  a.mem = b.mem && a.regs = b.regs && a.flag_z = b.flag_z && a.flag_n = b.flag_n
  && a.mm.base = b.mm.base && a.mm.limit = b.mm.limit && a.mm.dev_slots = b.mm.dev_slots
  && a.cpu_mode = b.cpu_mode && a.frame = b.frame && a.mmu_shadow = b.mmu_shadow
  && Array.for_all2
       (fun (x : device) (y : device) ->
         x.kind = y.kind && x.data = y.data && x.status = y.status && x.irq = y.irq)
       a.devices b.devices

let hash t =
  Hashtbl.hash
    ( Array.to_list t.mem,
      Array.to_list t.regs,
      t.flag_z,
      t.flag_n,
      (t.mm.base, t.mm.limit, Array.to_list t.mm.dev_slots),
      (t.cpu_mode, Array.to_list t.frame, Array.to_list t.mmu_shadow),
      Array.to_list (Array.map (fun d -> (d.data, d.status, d.irq)) t.devices) )

let pp ppf t =
  let digest = Array.fold_left (fun acc w -> (acc * 31) + w) 0 t.mem in
  Fmt.pf ppf "@[<v>%s regs=%a z=%b n=%b@ mmu=(base=%d limit=%d slots=%a)@ devs=%a@ mem#=%08x@]"
    (match t.cpu_mode with User -> "user" | Kernel -> "KERNEL")
    Fmt.(Dump.array int)
    t.regs t.flag_z t.flag_n t.mm.base t.mm.limit
    Fmt.(Dump.array int)
    t.mm.dev_slots
    Fmt.(Dump.array (fun ppf d -> Fmt.pf ppf "(%x,%x,%b)" d.data d.status d.irq))
    t.devices digest
