module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Scenarios = Sep_core.Scenarios
module Mutants = Sep_core.Mutants
module Regime_kernel = Sep_core.Regime_kernel
module AR = Sep_core.Abstract_regime
module Gen = Sep_check.Gen
module Shrink = Sep_check.Shrink
module Score = Sep_check.Score
module Par = Sep_par.Par
module Prng = Sep_util.Prng
module Json = Sep_util.Json

type divergence = {
  d_level : string;
  d_step : int;
  d_reason : string;
}

let pp_divergence ppf d = Fmt.pf ppf "[%s] step %d: %s" d.d_level d.d_step d.d_reason

let divergence_to_json d =
  Json.Obj
    [
      ("level", Json.String d.d_level);
      ("step", Json.Int d.d_step);
      ("reason", Json.String d.d_reason);
    ]

(* -- The machine square ----------------------------------------------------- *)

let pp_out = Fmt.(Dump.list (Dump.pair int int))

(* Lockstep Sue against Mspec, returning both for post-mortem stream checks. *)
let lockstep ~bugs cfg ~schedule ~steps =
  let sue = Sue.build ~bugs cfg in
  let spec = Mspec.init cfg in
  let colours = Mspec.colours spec in
  let sched = Array.of_list schedule in
  let checks = ref 0 in
  let fail i reason = Some { d_level = "machine"; d_step = i; d_reason = reason } in
  let rec go i =
    if i >= steps then None
    else begin
      let arrivals = if i < Array.length sched then sched.(i) else [] in
      let out_sue = Sue.step sue arrivals in
      let out_spec = Mspec.step spec arrivals in
      incr checks;
      if out_sue <> out_spec then
        fail i (Fmt.str "output wires disagree: sue %a, spec %a" pp_out out_sue pp_out out_spec)
      else begin
        let bad =
          List.find_opt
            (fun c ->
              incr checks;
              not (AR.equal (Sue.phi sue c) (Mspec.machine spec c)))
            colours
        in
        match bad with
        | Some c -> fail i (Fmt.str "phi(%s) left the spec machine" (Colour.name c))
        | None ->
          incr checks;
          if not (Colour.equal (Sue.current_colour sue) (Mspec.current_colour spec)) then
            fail i
              (Fmt.str "processor position disagrees: sue %s, spec %s"
                 (Colour.name (Sue.current_colour sue))
                 (Colour.name (Mspec.current_colour spec)))
          else go (i + 1)
      end
    end
  in
  (sue, spec, !checks, go 0)

let check_machine ?(bugs = []) cfg ~schedule ~steps =
  let _, _, checks, diverged = lockstep ~bugs cfg ~schedule ~steps in
  match diverged with Some d -> Error d | None -> Ok checks

(* -- The behavioural square ------------------------------------------------- *)

let tick_externals n = List.init n (fun i -> (Colour.of_index i, "tick"))

(* Lockstep Regime_kernel against Bspec, returning the built pair. *)
let square ~bugs case =
  let n = List.length case.Kact.k_progs in
  let probes = Array.init n (fun _ -> Kact.new_probe ()) in
  let spec_probes = Array.init n (fun _ -> Kact.new_probe ()) in
  let rk = Regime_kernel.build ~bugs (Kact.to_topology case ~probes) in
  let bs = Bspec.build (Kact.to_topology case ~probes:spec_probes) in
  let rotations = Kact.rotations case in
  let per_rotation = (2 * n) + Bspec.chan_count bs + 5 in
  let checks = ref 0 in
  let rec go k =
    if k >= rotations then None
    else begin
      let externals = if k = 0 then tick_externals n else [] in
      Regime_kernel.step rk ~externals;
      Bspec.step bs ~externals;
      checks := !checks + per_rotation;
      match Bspec.agrees bs rk with
      | Error reason -> Some { d_level = "behavioural"; d_step = k; d_reason = reason }
      | Ok () -> go (k + 1)
    end
  in
  (rk, probes, !checks, go 0)

let check_behaviour ?(bugs = []) case =
  let _, _, checks, diverged = square ~bugs case in
  match diverged with Some d -> Error d | None -> Ok checks

(* -- The stream tie --------------------------------------------------------- *)

let pp_words = Fmt.(Dump.list int)

(* The reference bind stream of each colour: its receives in program order,
   each taking the next word bound on its channel. A receive the evaluation
   never reached finds its channel's stream exhausted and contributes
   nothing, so the walk reproduces exactly the executed prefix. *)
let reference_binds case (out : Kact.outcome) =
  let counters = Array.make (List.length case.Kact.k_chans) 0 in
  List.map
    (fun prog ->
      List.concat_map
        (function
          | Kact.KRecv (c, _) ->
            let k = counters.(c) in
            if k < List.length out.Kact.o_bound.(c) then begin
              counters.(c) <- k + 1;
              [ List.nth out.Kact.o_bound.(c) k ]
            end
            else []
          | _ -> [])
        prog)
    case.Kact.k_progs

let rk_sent rk colour chan =
  List.filter_map
    (function
      | Component.Did (Component.Send (c, msg)) when c = chan -> int_of_string_opt msg
      | _ -> None)
    (Regime_kernel.trace rk colour)

let user_regs regs = [ regs.(3); regs.(4); regs.(5) ]

let check_stack case =
  let reference = Kact.eval case in
  let n = List.length case.Kact.k_progs in
  let nchan = List.length case.Kact.k_chans in
  let steps = Kact.sue_steps case in
  let stream_fail reason = Some { d_level = "streams"; d_step = steps; d_reason = reason } in
  let first_mismatch checks =
    List.fold_left (fun acc check -> match acc with Some _ -> acc | None -> check ()) None checks
  in
  let compare_words what expected actual () =
    if expected = actual then None
    else stream_fail (Fmt.str "%s: reference %a, got %a" what pp_words expected pp_words actual)
  in
  (* machine level *)
  let _, spec, mchecks, mdiv = lockstep ~bugs:[] (Kact.to_config case) ~schedule:[] ~steps in
  let machine_streams () =
    first_mismatch
      (List.concat
         [
           List.init nchan (fun c ->
               compare_words (Fmt.str "sue sent ch%d" c) reference.Kact.o_sent.(c)
                 (Mspec.sent_words spec c));
           List.init nchan (fun c ->
               compare_words (Fmt.str "sue bound ch%d" c) reference.Kact.o_bound.(c)
                 (Mspec.consumed_words spec c));
           List.init n (fun i ->
               compare_words
                 (Fmt.str "sue emitted %s" (Colour.name (Colour.of_index i)))
                 reference.Kact.o_emitted.(i)
                 (Mspec.emitted_words spec (Colour.of_index i)));
           List.init n (fun i ->
               compare_words
                 (Fmt.str "sue registers of %s" (Colour.name (Colour.of_index i)))
                 (user_regs reference.Kact.o_regs.(i))
                 (user_regs (Mspec.machine spec (Colour.of_index i)).AR.regs));
         ])
  in
  (* behavioural level *)
  let rk, probes, bchecks, bdiv = square ~bugs:[] case in
  let binds = reference_binds case reference in
  let behavioural_streams () =
    first_mismatch
      (List.concat
         [
           List.init nchan (fun c ->
               let s, _, _ = List.nth case.Kact.k_chans c in
               compare_words (Fmt.str "kernel sent ch%d" c) reference.Kact.o_sent.(c)
                 (rk_sent rk (Colour.of_index s) c));
           List.init n (fun i ->
               compare_words
                 (Fmt.str "kernel bound by %s" (Colour.name (Colour.of_index i)))
                 (List.nth binds i)
                 (List.rev probes.(i).Kact.p_bound));
           List.init n (fun i ->
               compare_words
                 (Fmt.str "kernel emitted %s" (Colour.name (Colour.of_index i)))
                 reference.Kact.o_emitted.(i)
                 (List.filter_map int_of_string_opt
                    (Regime_kernel.outputs rk (Colour.of_index i))));
           List.init n (fun i ->
               compare_words
                 (Fmt.str "kernel registers of %s" (Colour.name (Colour.of_index i)))
                 (user_regs reference.Kact.o_regs.(i))
                 (user_regs probes.(i).Kact.p_regs));
         ])
  in
  match mdiv with
  | Some d -> Error d
  | None -> (
    match bdiv with
    | Some d -> Error d
    | None -> (
      match first_mismatch [ machine_streams; behavioural_streams ] with
      | Some d -> Error d
      | None -> Ok (mchecks + bchecks + (2 * ((2 * nchan) + (4 * n))))))

(* -- Generated machine workloads -------------------------------------------- *)

let machine_case rng =
  let cfg = Gen.config () rng in
  let cfg = if Prng.int rng 4 = 0 then Config.cut_all cfg else cfg in
  let schedule = Gen.schedule ~alphabet:(Gen.rx_alphabet cfg) ~max_len:24 rng in
  (cfg, schedule)

(* -- Stock scenarios -------------------------------------------------------- *)

let scenario_results ?(schedules = 3) ?(steps = 300) ~seed () =
  List.concat_map
    (fun (inst : Scenarios.instance) ->
      List.init schedules (fun k ->
          let schedule =
            Gen.run ~seed:(seed + (31 * k))
              (Gen.schedule ~alphabet:inst.Scenarios.alphabet ~max_len:32)
          in
          ( Fmt.str "%s/%d" inst.Scenarios.label k,
            check_machine inst.Scenarios.cfg ~schedule ~steps )))
    Scenarios.all

(* -- Mutant kill racing ----------------------------------------------------- *)

type kill = {
  k_bug : string;
  k_level : string;
  k_killed : bool;
  k_seed : int;
  k_attempts : int;
  k_scenario : string;
  k_step : int;
  k_original_size : int;
  k_shrunk_size : int;
  k_shrink_steps : int;
}

let kill_to_json k =
  Json.Obj
    [
      ("bug", Json.String k.k_bug);
      ("level", Json.String k.k_level);
      ("killed", Json.Bool k.k_killed);
      ("seed", Json.Int k.k_seed);
      ("attempts", Json.Int k.k_attempts);
      ("scenario", Json.String k.k_scenario);
      ("step", Json.Int k.k_step);
      ("original_size", Json.Int k.k_original_size);
      ("shrunk_size", Json.Int k.k_shrunk_size);
      ("shrink_steps", Json.Int k.k_shrink_steps);
    ]

let replay_command k = Fmt.str "rushby refine --replay %d --bug %s" k.k_seed k.k_bug

type target =
  | Sue_bug of Sue.bug
  | Rk_bug of Regime_kernel.bug

let rk_bug_name b = Fmt.str "%a" Regime_kernel.pp_bug b

let target_name = function
  | Sue_bug b -> Score.bug_name b
  | Rk_bug b -> rk_bug_name b

let targets =
  List.map (fun b -> Sue_bug b) Sue.all_bugs
  @ List.map (fun b -> Rk_bug b) Regime_kernel.all_bugs

let known_bugs = List.map target_name targets

let target_of_name name =
  List.find_opt (fun t -> String.equal (target_name t) name) targets

let schedule_size schedule =
  List.fold_left (fun acc arrivals -> acc + 1 + List.length arrivals) 0 schedule

let machine_diverges ~bug cfg schedule steps =
  match check_machine ~bugs:[ bug ] cfg ~schedule ~steps with
  | Error d -> Some d
  | Ok _ -> None

let behaviour_diverges ~bug case =
  match check_behaviour ~bugs:[ bug ] case with Error d -> Some d | Ok _ -> None

let shrink_budget = 400

(* One seeded detection attempt against one Sue bug: the catalogue scenario
   of the bug under a seeded input schedule first (that is where the broken
   behaviour is known to be reachable), a generated workload second. On
   divergence the schedule is shrunk to a minimum that still diverges. *)
let sue_kill bug ~seed ~attempt =
  let name = Score.bug_name bug in
  let finish scenario cfg schedule steps d0 =
    let still_failing s = machine_diverges ~bug cfg s steps <> None in
    let shrunk, shrink_steps =
      Shrink.minimize ~max_steps:shrink_budget ~still_failing Shrink.schedule schedule
    in
    let d = Option.value (machine_diverges ~bug cfg shrunk steps) ~default:d0 in
    Some
      {
        k_bug = name;
        k_level = "sue";
        k_killed = true;
        k_seed = seed;
        k_attempts = attempt;
        k_scenario = scenario;
        k_step = d.d_step;
        k_original_size = schedule_size schedule;
        k_shrunk_size = schedule_size shrunk;
        k_shrink_steps = shrink_steps;
      }
  in
  let catalogue () =
    match Mutants.for_bug bug with
    | None -> None
    | Some e ->
      let inst = e.Mutants.scenario in
      let schedule =
        Gen.run ~seed (Gen.schedule ~alphabet:inst.Scenarios.alphabet ~max_len:32)
      in
      let steps = 400 in
      Option.bind (machine_diverges ~bug inst.Scenarios.cfg schedule steps) (fun d ->
          finish inst.Scenarios.label inst.Scenarios.cfg schedule steps d)
  in
  let generated () =
    let cfg, schedule = Gen.run ~seed machine_case in
    let steps = 300 in
    Option.bind (machine_diverges ~bug cfg schedule steps) (fun d ->
        finish "generated" cfg schedule steps d)
  in
  match catalogue () with Some k -> Some k | None -> generated ()

(* One seeded detection attempt against one Regime_kernel bug: a generated
   Kact workload through the behavioural square, the workload shrunk on
   divergence. *)
let rk_kill bug ~seed ~attempt =
  let case = Gen.run ~seed (Kact.gen ()) in
  Option.map
    (fun (d0 : divergence) ->
      let still_failing c = behaviour_diverges ~bug c <> None in
      let shrunk, shrink_steps =
        Shrink.minimize ~max_steps:shrink_budget ~still_failing Kact.shrink case
      in
      let d = Option.value (behaviour_diverges ~bug shrunk) ~default:d0 in
      {
        k_bug = rk_bug_name bug;
        k_level = "regime_kernel";
        k_killed = true;
        k_seed = seed;
        k_attempts = attempt;
        k_scenario = "generated";
        k_step = d.d_step;
        k_original_size = Kact.size case;
        k_shrunk_size = Kact.size shrunk;
        k_shrink_steps = shrink_steps;
      })
    (behaviour_diverges ~bug case)

let attempt_target target ~seed ~attempt =
  match target with
  | Sue_bug b -> sue_kill b ~seed ~attempt
  | Rk_bug b -> rk_kill b ~seed ~attempt

let missed target =
  {
    k_bug = target_name target;
    k_level = (match target with Sue_bug _ -> "sue" | Rk_bug _ -> "regime_kernel");
    k_killed = false;
    k_seed = 0;
    k_attempts = 0;
    k_scenario = "-";
    k_step = -1;
    k_original_size = 0;
    k_shrunk_size = 0;
    k_shrink_steps = 0;
  }

let race prng target ~attempts =
  let rec go i =
    if i >= attempts then missed target
    else begin
      let seed = Prng.int prng 1_000_000_000 in
      match attempt_target target ~seed ~attempt:(i + 1) with
      | Some k -> k
      | None -> go (i + 1)
    end
  in
  go 0

let kill_table ?jobs ~seed ~attempts () =
  Par.map_seeded ?jobs ~seed (fun prng target -> race prng target ~attempts) targets

let replay ~seed ~bug =
  match target_of_name bug with
  | None ->
    Error (Fmt.str "unknown bug %S (known: %s)" bug (String.concat ", " known_bugs))
  | Some target -> Ok (attempt_target target ~seed ~attempt:1)
