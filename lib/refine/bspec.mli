(** The behavioural abstract specification: the ideal distributed system
    that {!Sep_core.Regime_kernel} must be indistinguishable from.

    Each colour's component runs on a machine of its own (a private
    instance), and the only shared objects are the declared channels,
    modelled as kernel-free message buffers with the same capacities.
    Delivery follows the same discipline the behavioural kernel documents
    — externals first, then at most one already-in-flight message per
    incoming channel in channel order, per regime visit, regimes in
    topology order — so a correct kernel produces {e identical} traces,
    outputs, buffer contents and accounting at every rotation; any
    deviation is a refinement violation. *)

module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology

type t

val build : Topology.t -> t
(** Instantiates its own copies of the topology's components. *)

val step : t -> externals:(Colour.t * Component.message) list -> unit
(** One full rotation, mirroring {!Sep_core.Regime_kernel.step}. *)

val trace : t -> Colour.t -> Component.obs list
val outputs : t -> Colour.t -> Component.message list
val chan_buffer : t -> int -> Component.message list
val chan_count : t -> int
val context_switches : t -> int
val messages_copied : t -> int
val buffered : t -> int
val drops : t -> int
val current_colour : t -> Colour.t

(** {1 The simulation relation} *)

val agrees : t -> Sep_core.Regime_kernel.t -> (unit, string) result
(** The commuting-square check, applied after each rotation: per-colour
    observable traces and outputs, per-channel kernel buffer contents,
    the processor's position and the copy/switch/drop accounting must all
    coincide. [Error] carries a human-readable description of the first
    disagreement found. *)
