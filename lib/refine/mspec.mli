(** The machine-level abstract specification: the proof-of-separability
    ideal against which {!Sep_core.Sue} is checked by bisimulation.

    The state is one pure {!Sep_core.Abstract_regime} machine per colour —
    each regime on "a machine of its own" — plus the two pieces of shared
    reality a separation kernel is allowed to multiplex: which colour
    holds the (purely conceptual) processor, and the declared channel
    copies. Nothing else is shared: there is no kernel memory, no save
    area, no ring buffer — those are {!Sep_core.Sue} implementation
    artefacts that the abstraction function {!Sep_core.Sue.phi} erases.

    {!step} is a small-step relation at the same granularity as
    {!Sep_core.Sue.step} (one machine instruction per step), so the
    commuting square

    {v
        spec  --step-->  spec'
          |                |
         phi              phi
          |                |
        sue   --step-->  sue'
    v}

    can be checked at {e every} step: after each pair of steps,
    [Sue.phi sue c] must equal the spec's machine for every colour [c],
    the observed outputs must be identical, and the processor must be
    with the same colour. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module AR = Sep_core.Abstract_regime

type t

val init : Sep_hw.Isa.stmt list Config.t -> t
(** The specification's initial state, built from the configuration alone:
    assembled program followed by zeroed private store, zero registers,
    every machine [Running], devices idle, channel ends empty, colour 0
    holding the processor. [init cfg] must equal the abstraction of a
    freshly built clean kernel — the base case of the simulation, pinned
    by a test. *)

val step : t -> (int * int) list -> (int * int) list
(** One specification step: observe busy transmitters, complete their
    transmissions and latch arrivals, then execute one instruction of the
    current machine — performing the declared channel copy on a
    successful SEND/RECV and the round-robin hand-over on yield, wait,
    park or quantum expiry. Returns the outputs observed at the start of
    the step, exactly as {!Sep_core.Sue.step} does. *)

val machine : t -> Colour.t -> AR.t
(** The per-colour abstract machine (the value {!Sep_core.Sue.phi} must
    reproduce). *)

val current_colour : t -> Colour.t
val colours : t -> Colour.t list

val quiescent : t -> bool
(** Every machine is [Waiting] or [Parked]: nothing will ever run again
    without an external input. *)

(** {1 Committed-word streams}

    The Kahn-style observation the cross-level relation compares: the
    sequence of words committed on each declared channel and emitted on
    each transmitter, in commit order. *)

val sent_words : t -> int -> int list
(** Words accepted onto channel [id] by successful SENDs, oldest first. *)

val consumed_words : t -> int -> int list
(** Words bound by successful RECVs on channel [id], oldest first. *)

val emitted_words : t -> Colour.t -> int list
(** Words observed leaving [c]'s transmitters, oldest first. *)
