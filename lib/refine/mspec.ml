module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config
module AR = Sep_core.Abstract_regime

type t = {
  cfg : Isa.stmt list Config.t;
  colours : Colour.t array;
  machines : AR.t array;
  (* global device id -> owning regime index / slot within the owner; the
     kernel allocates device ids regime-major, devices in list order *)
  dev_owner : int array;
  dev_slot : int array;
  dev_kinds : Machine.device_kind array;
  chans : Config.channel array;
  mutable cur : int;
  mutable countdown : int;  (* meaningful iff cfg.quantum = Some _ *)
  (* committed-word streams, reversed *)
  sent : int list array;
  consumed : int list array;
  emitted : int list array;  (* per regime *)
}

let init cfg =
  (match Config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mspec.init: " ^ msg));
  let colours = Array.of_list (Config.colours cfg) in
  let machine (r : _ Config.regime) =
    let code = Isa.assemble r.Config.program in
    let mem =
      Array.init r.Config.part_size (fun i -> if i < Array.length code then code.(i) else 0)
    in
    let devices =
      Array.of_list
        (List.map
           (fun k -> { AR.dv_kind = k; dv_data = 0; dv_status = 0; dv_irq = false })
           r.Config.devices)
    in
    let ends pick =
      Array.of_list
        (List.filter_map
           (fun (ch : Config.channel) ->
             if Colour.equal (pick ch) r.Config.colour then
               Some { AR.ce_chan = ch.Config.chan_id; ce_capacity = ch.Config.capacity; ce_contents = [] }
             else None)
           cfg.Config.channels)
    in
    {
      AR.mem;
      regs = Array.make Isa.num_regs 0;
      flag_z = false;
      flag_n = false;
      status = AR.Running;
      devices;
      sends = ends (fun ch -> ch.Config.sender);
      recvs = ends (fun ch -> ch.Config.receiver);
    }
  in
  let owners = ref [] and slots = ref [] and kinds = ref [] in
  List.iteri
    (fun i (r : _ Config.regime) ->
      List.iteri
        (fun s k ->
          owners := i :: !owners;
          slots := s :: !slots;
          kinds := k :: !kinds)
        r.Config.devices)
    cfg.Config.regimes;
  let nchans = List.length cfg.Config.channels in
  {
    cfg;
    colours;
    machines = Array.of_list (List.map machine cfg.Config.regimes);
    dev_owner = Array.of_list (List.rev !owners);
    dev_slot = Array.of_list (List.rev !slots);
    dev_kinds = Array.of_list (List.rev !kinds);
    chans = Array.of_list cfg.Config.channels;
    cur = 0;
    countdown = (match cfg.Config.quantum with Some q -> q | None -> 0);
    sent = Array.make nchans [];
    consumed = Array.make nchans [];
    emitted = Array.make (Array.length colours) [];
  }

let regime_index t c =
  let rec find i = if Colour.equal t.colours.(i) c then i else find (i + 1) in
  find 0

let machine t c = t.machines.(regime_index t c)
let current_colour t = t.colours.(t.cur)
let colours t = Array.to_list t.colours

let quiescent t =
  Array.for_all (fun m -> m.AR.status <> AR.Running) t.machines

let sent_words t id = List.rev t.sent.(id)
let consumed_words t id = List.rev t.consumed.(id)
let emitted_words t c = List.rev t.emitted.(regime_index t c)

(* -- Scheduling: the round-robin hand-over the kernel implements ----------- *)

let reset_countdown t =
  match t.cfg.Config.quantum with
  | Some q -> t.countdown <- q
  | None -> ()

let next_running t from =
  let n = Array.length t.machines in
  let rec scan k =
    if k > n then None
    else begin
      let r = (from + k) mod n in
      if t.machines.(r).AR.status = AR.Running then Some r else scan (k + 1)
    end
  in
  scan 1

let swap_away t =
  match next_running t t.cur with
  | Some r when r <> t.cur ->
    t.cur <- r;
    reset_countdown t
  | Some _ | None -> ()

(* -- Observation and input stages ------------------------------------------ *)

let outputs t =
  let out = ref [] in
  Array.iteri
    (fun d kind ->
      match kind with
      | Machine.Tx ->
        let m = t.machines.(t.dev_owner.(d)) in
        let dv = m.AR.devices.(t.dev_slot.(d)) in
        if dv.AR.dv_status = 1 then out := (d, dv.AR.dv_data) :: !out
      | Machine.Rx | Machine.Xform _ -> ())
    t.dev_kinds;
    List.rev !out

let input_stage t arrivals =
  Array.iteri
    (fun i m ->
      let own =
        List.filter_map
          (fun (d, w) ->
            if
              d >= 0 && d < Array.length t.dev_owner && t.dev_owner.(d) = i
              && t.dev_kinds.(d) = Machine.Rx
            then Some (t.dev_slot.(d), w)
            else None)
          arrivals
      in
      t.machines.(i) <- AR.input_stage m own)
    t.machines;
  (* an arrival may have woken a waiting regime while the processor was
     stalled on a non-running one: hand it over *)
  if t.machines.(t.cur).AR.status <> AR.Running then begin
    match next_running t t.cur with
    | Some r ->
      t.cur <- r;
      reset_countdown t
    | None -> ()
  end

(* -- The operation stage --------------------------------------------------- *)

(* Side-effect-free replica of the abstract machine's fetch, for
   classifying the instruction just executed. *)
let peek m pc =
  if pc < 0 then None
  else if pc < Machine.device_space then
    if pc < Array.length m.AR.mem then Some m.AR.mem.(pc) else None
  else begin
    let off = pc - Machine.device_space in
    let slot = off lsr 1 and is_status = off land 1 = 1 in
    if slot >= Array.length m.AR.devices then None
    else begin
      let d = m.AR.devices.(slot) in
      Some (if is_status then d.AR.dv_status else d.AR.dv_data)
    end
  end

let find_chan t id = if id >= 0 && id < Array.length t.chans then Some t.chans.(id) else None

let update_end ends chan f =
  Array.map (fun e -> if e.AR.ce_chan = chan then f e else e) ends

(* A successful SEND on an uncut channel is a kernel copy: the word the
   sender appended to its end appears at the receiver's end too (the two
   ends of an uncut channel alias one buffer). A cut channel's far end was
   aliased away, so nothing propagates. *)
let sync_send t ch_id w =
  t.sent.(ch_id) <- w :: t.sent.(ch_id);
  match find_chan t ch_id with
  | Some ch when not ch.Config.cut ->
    let r = regime_index t ch.Config.receiver in
    let m = t.machines.(r) in
    t.machines.(r) <-
      {
        m with
        AR.recvs =
          update_end m.AR.recvs ch_id (fun e ->
              { e with AR.ce_contents = e.AR.ce_contents @ [ w ] });
      }
  | Some _ | None -> ()

let sync_recv t ch_id w =
  t.consumed.(ch_id) <- w :: t.consumed.(ch_id);
  match find_chan t ch_id with
  | Some ch when not ch.Config.cut ->
    let s = regime_index t ch.Config.sender in
    let m = t.machines.(s) in
    t.machines.(s) <-
      {
        m with
        AR.sends =
          update_end m.AR.sends ch_id (fun e ->
              match e.AR.ce_contents with
              | [] -> e
              | _ :: rest -> { e with AR.ce_contents = rest });
      }
  | Some _ | None -> ()

let charge_quantum t =
  match t.cfg.Config.quantum with
  | None -> ()
  | Some q ->
    let left = t.countdown - 1 in
    if left <= 0 then begin
      t.countdown <- q;
      swap_away t
    end
    else t.countdown <- left

let exec t =
  let m = t.machines.(t.cur) in
  if m.AR.status <> AR.Running then () (* the processor stalls *)
  else begin
    let pc = m.AR.regs.(Isa.pc_reg) in
    let insn = Option.bind (peek m pc) Isa.decode in
    let m' = AR.step m in
    t.machines.(t.cur) <- m';
    match m'.AR.status with
    | AR.Parked -> swap_away t (* fault, illegal instruction or bad trap *)
    | AR.Waiting -> swap_away t
    | AR.Running -> begin
      match insn with
      | Some (Isa.Trap 0) -> swap_away t
      | Some (Isa.Trap 1) ->
        if m'.AR.regs.(2) = 1 then sync_send t m'.AR.regs.(0) m'.AR.regs.(1)
      | Some (Isa.Trap 2) ->
        if m'.AR.regs.(2) = 1 then sync_recv t m'.AR.regs.(0) m'.AR.regs.(1)
      | Some Isa.Halt -> () (* WAIT fell through on an asserted line: no charge *)
      | _ -> charge_quantum t
    end
  end

let step t arrivals =
  let observed = outputs t in
  List.iter
    (fun (d, w) ->
      let o = t.dev_owner.(d) in
      t.emitted.(o) <- w :: t.emitted.(o))
    observed;
  input_stage t arrivals;
  exec t;
  observed
