module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Config = Sep_core.Config
module Isa = Sep_hw.Isa
module Word = Sep_hw.Word
module Machine = Sep_hw.Machine
module Json = Sep_util.Json
module Prng = Sep_util.Prng
module Gen = Sep_check.Gen

type kop =
  | KAdd
  | KXor

type act =
  | KSet of int * int
  | KArith of kop * int * int
  | KEmit of int
  | KSend of int * int
  | KRecv of int * int

type case = {
  k_emitters : bool list;
  k_chans : (int * int * int) list;
  k_progs : act list list;
  k_quantum : int option;
}

let pp_act ppf = function
  | KSet (r, v) -> Fmt.pf ppf "r%d:=%d" r v
  | KArith (KAdd, rd, rs) -> Fmt.pf ppf "r%d+=r%d" rd rs
  | KArith (KXor, rd, rs) -> Fmt.pf ppf "r%d^=r%d" rd rs
  | KEmit r -> Fmt.pf ppf "emit r%d" r
  | KSend (c, r) -> Fmt.pf ppf "send ch%d r%d" c r
  | KRecv (c, r) -> Fmt.pf ppf "recv ch%d->r%d" c r

let pp_case ppf c =
  Fmt.pf ppf "@[<v>quantum=%a chans=%a@ %a@]"
    Fmt.(Dump.option int)
    c.k_quantum
    Fmt.(Dump.list (Dump.pair int (Dump.pair int int)))
    (List.map (fun (s, r, cap) -> (s, (r, cap))) c.k_chans)
    Fmt.(Dump.list (Dump.list pp_act))
    c.k_progs

let act_to_json = function
  | KSet (r, v) -> Json.List [ Json.String "set"; Json.Int r; Json.Int v ]
  | KArith (op, rd, rs) ->
    Json.List
      [ Json.String (match op with KAdd -> "add" | KXor -> "xor"); Json.Int rd; Json.Int rs ]
  | KEmit r -> Json.List [ Json.String "emit"; Json.Int r ]
  | KSend (c, r) -> Json.List [ Json.String "send"; Json.Int c; Json.Int r ]
  | KRecv (c, r) -> Json.List [ Json.String "recv"; Json.Int c; Json.Int r ]

let case_to_json c =
  Json.Obj
    [
      ("quantum", match c.k_quantum with Some q -> Json.Int q | None -> Json.Null);
      ( "channels",
        Json.List
          (List.map
             (fun (s, r, cap) -> Json.List [ Json.Int s; Json.Int r; Json.Int cap ])
             c.k_chans) );
      ("programs", Json.List (List.map (fun p -> Json.List (List.map act_to_json p)) c.k_progs));
    ]

let size c = List.fold_left (fun acc p -> acc + List.length p) 0 c.k_progs

(* -- Generation ------------------------------------------------------------ *)

let user_reg rng = Prng.int_in rng 3 5

let insert_at pos a prog =
  let rec go i = function
    | rest when i = pos -> a :: rest
    | [] -> [ a ]
    | x :: rest -> x :: go (i + 1) rest
  in
  go 0 prog

let gen ?(max_regimes = 3) ?(max_actions = 5) () rng =
  let n = Prng.int_in rng 2 max_regimes in
  let emitters = List.init n (fun _ -> Prng.bool rng) in
  (* acyclic channel graph: sender index strictly below receiver index *)
  let nchan = Prng.int_in rng 1 2 in
  let endpoints =
    List.init nchan (fun _ ->
        let s = Prng.int rng (n - 1) in
        let r = Prng.int_in rng (s + 1) (n - 1) in
        (s, r))
  in
  let base i =
    let len = Prng.int rng (max_actions + 1) in
    List.init len (fun _ ->
        match Prng.int rng 3 with
        | 0 -> KSet (user_reg rng, Prng.int rng 256)
        | 1 ->
          KArith ((if Prng.bool rng then KAdd else KXor), user_reg rng, user_reg rng)
        | _ ->
          if List.nth emitters i then KEmit (user_reg rng) else KSet (user_reg rng, Prng.int rng 256))
  in
  let progs = Array.of_list (List.init n base) in
  (* guarantee traffic: one or two sends per channel, inserted at random
     positions in the sender's program *)
  List.iteri
    (fun id (s, _) ->
      for _ = 1 to Prng.int_in rng 1 2 do
        progs.(s) <-
          insert_at (Prng.int rng (List.length progs.(s) + 1)) (KSend (id, user_reg rng)) progs.(s)
      done)
    endpoints;
  (* distribute receives: at most as many as the channel's sends, inserted
     at random positions in the receiver's program *)
  List.iteri
    (fun id (s, r) ->
      let sends =
        List.length (List.filter (function KSend (c, _) -> c = id | _ -> false) progs.(s))
      in
      let k = Prng.int rng (sends + 1) in
      for _ = 1 to k do
        progs.(r) <-
          insert_at (Prng.int rng (List.length progs.(r) + 1)) (KRecv (id, user_reg rng)) progs.(r)
      done)
    endpoints;
  let chans =
    List.mapi
      (fun id (s, r) ->
        let sends =
          List.length (List.filter (function KSend (c, _) -> c = id | _ -> false) progs.(s))
        in
        (s, r, max 1 sends))
      endpoints
  in
  let quantum = if Prng.bool rng then None else Some (Prng.int_in rng 3 6) in
  { k_emitters = emitters; k_chans = chans; k_progs = Array.to_list progs; k_quantum = quantum }

(* -- Shrinking ------------------------------------------------------------- *)

let shrink c =
  let drop_one =
    List.concat
      (List.mapi
         (fun i p ->
           List.mapi
             (fun j _ ->
               let progs =
                 List.mapi
                   (fun i' p' -> if i' = i then List.filteri (fun j' _ -> j' <> j) p' else p')
                   c.k_progs
               in
               { c with k_progs = progs })
             p)
         c.k_progs)
  in
  let drop_quantum = match c.k_quantum with Some _ -> [ { c with k_quantum = None } ] | None -> [] in
  List.to_seq (drop_one @ drop_quantum)

(* -- Reference evaluation: the Kahn network, run directly ------------------ *)

type outcome = {
  o_sent : int list array;
  o_bound : int list array;
  o_emitted : int list array;
  o_regs : int array array;
}

let word_op op a b = match op with KAdd -> Word.add a b | KXor -> Word.logxor a b

let eval c =
  let n = List.length c.k_progs in
  let nchan = List.length c.k_chans in
  let pos = Array.of_list c.k_progs in
  let regs = Array.init n (fun _ -> Array.make Isa.num_regs 0) in
  let queues = Array.make nchan [] in
  let sent = Array.make nchan [] and bound = Array.make nchan [] in
  let emitted = Array.make n [] in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    for i = 0 to n - 1 do
      let rec run () =
        match pos.(i) with
        | [] -> ()
        | KSet (r, v) :: rest ->
          regs.(i).(r) <- v;
          pos.(i) <- rest;
          progressed := true;
          run ()
        | KArith (op, rd, rs) :: rest ->
          regs.(i).(rd) <- word_op op regs.(i).(rd) regs.(i).(rs);
          pos.(i) <- rest;
          progressed := true;
          run ()
        | KEmit r :: rest ->
          emitted.(i) <- regs.(i).(r) :: emitted.(i);
          pos.(i) <- rest;
          progressed := true;
          run ()
        | KSend (ch, r) :: rest ->
          sent.(ch) <- regs.(i).(r) :: sent.(ch);
          queues.(ch) <- queues.(ch) @ [ regs.(i).(r) ];
          pos.(i) <- rest;
          progressed := true;
          run ()
        | KRecv (ch, rd) :: rest -> begin
          match queues.(ch) with
          | [] -> () (* blocked: an upstream program may still produce *)
          | w :: ws ->
            queues.(ch) <- ws;
            regs.(i).(rd) <- w;
            bound.(ch) <- w :: bound.(ch);
            pos.(i) <- rest;
            progressed := true;
            run ()
        end
      in
      run ()
    done
  done;
  {
    o_sent = Array.map List.rev sent;
    o_bound = Array.map List.rev bound;
    o_emitted = Array.map List.rev emitted;
    o_regs = regs;
  }

(* -- Machine-level rendering ----------------------------------------------- *)

let render_isa prog =
  let n = ref 0 in
  let body =
    List.concat_map
      (fun a ->
        match a with
        | KSet (r, v) -> [ Isa.Instr (Isa.Loadi (r, v)) ]
        | KArith (op, rd, rs) ->
          [ Isa.Instr (match op with KAdd -> Isa.Add (rd, rs) | KXor -> Isa.Xor (rd, rs)) ]
        | KEmit r ->
          (* R6 := device window base, then arm the transmitter (slot 0) *)
          [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)); Isa.Instr (Isa.Store (r, 6, 0)) ]
        | KSend (c, r) ->
          [ Isa.Instr (Isa.Loadi (0, c)); Isa.Instr (Isa.Mov (1, r)); Isa.Instr (Isa.Trap 1) ]
        | KRecv (c, rd) ->
          (* blocking receive: poll, yield while empty *)
          incr n;
          let retry = Fmt.str "kr%d" !n and got = Fmt.str "kg%d" !n in
          [
            Isa.Label retry;
            Isa.Instr (Isa.Loadi (0, c));
            Isa.Instr (Isa.Trap 2);
            Isa.Instr (Isa.Loadi (6, 1));
            Isa.Instr (Isa.Cmp (2, 6));
            Isa.Branch_eq got;
            Isa.Instr (Isa.Trap 0);
            Isa.Branch retry;
            Isa.Label got;
            Isa.Instr (Isa.Mov (rd, 1));
          ])
      prog
  in
  body @ [ Isa.Instr Isa.Halt ]

let to_config c =
  let regimes =
    List.mapi
      (fun i prog ->
        let rendered = render_isa prog in
        {
          Config.colour = Colour.of_index i;
          part_size = Array.length (Isa.assemble rendered) + 6;
          program = rendered;
          devices = (if List.nth c.k_emitters i then [ Machine.Tx ] else []);
        })
      c.k_progs
  in
  let channels =
    List.map (fun (s, r, cap) -> (Colour.of_index s, Colour.of_index r, cap)) c.k_chans
  in
  Config.make ?quantum:c.k_quantum ~regimes ~channels ()

(* -- Behavioural rendering ------------------------------------------------- *)

type probe = {
  mutable p_regs : int array;
  mutable p_bound : int list;
}

let new_probe () = { p_regs = Array.make Isa.num_regs 0; p_bound = [] }

let component name prog probe =
  let init = (prog, Array.make Isa.num_regs 0, ([] : (int * int list) list)) in
  let step (pos, regs0, stash0) ev =
    let regs = Array.copy regs0 in
    let stash = ref stash0 in
    let acts = ref [] in
    let push c w =
      stash :=
        (match List.assoc_opt c !stash with
        | Some ws -> (c, ws @ [ w ]) :: List.remove_assoc c !stash
        | None -> (c, [ w ]) :: !stash)
    in
    let pop c =
      match List.assoc_opt c !stash with
      | Some (w :: ws) ->
        stash := (c, ws) :: List.remove_assoc c !stash;
        Some w
      | Some [] | None -> None
    in
    (match ev with
    | Component.Recv (c, msg) -> (
      match int_of_string_opt msg with Some w -> push c w | None -> ())
    | Component.External _ -> ());
    let rec run pos =
      match pos with
      | [] -> pos
      | KSet (r, v) :: rest ->
        regs.(r) <- v;
        run rest
      | KArith (op, rd, rs) :: rest ->
        regs.(rd) <- word_op op regs.(rd) regs.(rs);
        run rest
      | KEmit r :: rest ->
        acts := Component.Output (string_of_int regs.(r)) :: !acts;
        run rest
      | KSend (c, r) :: rest ->
        acts := Component.Send (c, string_of_int regs.(r)) :: !acts;
        run rest
      | KRecv (c, rd) :: rest -> begin
        match pop c with
        | Some w ->
          regs.(rd) <- w;
          probe.p_bound <- w :: probe.p_bound;
          run rest
        | None -> pos
      end
    in
    let pos' = run pos in
    probe.p_regs <- Array.copy regs;
    ((pos', regs, !stash), List.rev !acts)
  in
  Component.make ~name ~init ~step

let to_topology c ~probes =
  let parts =
    List.mapi
      (fun i prog ->
        let colour = Colour.of_index i in
        (colour, component (Colour.name colour) prog probes.(i)))
      c.k_progs
  in
  let wires =
    List.map (fun (s, r, cap) -> (Colour.of_index s, Colour.of_index r, cap)) c.k_chans
  in
  Topology.make ~parts ~wires

(* -- Budgets --------------------------------------------------------------- *)

let sue_steps c =
  let n = List.length c.k_progs in
  (* every action is at most ten instructions; a blocked receive burns a
     handful of steps per spin and unblocks within one full rotation *)
  (256 + (40 * size c)) * (n + 1)

let rotations c = size c + List.fold_left (fun acc (_, _, cap) -> acc + cap) 0 c.k_chans + 8
