(** The three-level refinement driver.

    Wires the two specifications to their implementations and runs the
    whole stack in lockstep:

    {v
      abstract spec      Mspec (per-colour machines + channel copies)
          ↑ phi                    ↑ trace/buffer equality
      machine kernel Sue      behavioural kernel Regime_kernel
          \                         /
           same Kact workload, same committed word streams
    v}

    Three checked relations: the machine square ([Sue.phi] against
    {!Mspec} after every instruction), the behavioural square ({!Bspec}
    against [Regime_kernel] after every rotation), and the Kahn stream
    tie (all levels commit the same per-channel and per-transmitter word
    streams on a shared {!Kact} workload). Seeded kernel bugs must
    surface as a divergence in one of the squares; counterexamples are
    shrunk to a minimal workload and replayed by seed. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Sue = Sep_core.Sue
module Regime_kernel = Sep_core.Regime_kernel
module Gen = Sep_check.Gen
module Json = Sep_util.Json

type divergence = {
  d_level : string;  (** ["machine"], ["behavioural"] or ["streams"] *)
  d_step : int;  (** machine step or rotation of first disagreement *)
  d_reason : string;
}

val pp_divergence : Format.formatter -> divergence -> unit
val divergence_to_json : divergence -> Json.t

(** {1 The commuting squares} *)

val check_machine :
  ?bugs:Sue.bug list -> Sep_hw.Isa.stmt list Config.t -> schedule:Sue.input list -> steps:int ->
  (int, divergence) result
(** Lockstep [Sue] (optionally seeded with bugs) against a clean {!Mspec}
    on one configuration and input schedule. [Ok checks] counts the
    commuting-square comparisons performed. *)

val check_behaviour :
  ?bugs:Regime_kernel.bug list -> Kact.case -> (int, divergence) result
(** Lockstep [Regime_kernel] against {!Bspec} on one workload. *)

val check_stack : Kact.case -> (int, divergence) result
(** The full stack on one workload: machine square, behavioural square,
    and the committed word streams of all three levels against the
    reference evaluation. *)

val machine_case : (Sep_hw.Isa.stmt list Config.t * Sue.input list) Gen.t
(** Generated machine-level workload: a {!Gen.config} drawn together with
    an input schedule over its receive alphabet; one quarter of the draws
    have every channel cut. *)

(** {1 Stock scenarios} *)

val scenario_results :
  ?schedules:int -> ?steps:int -> seed:int -> unit -> (string * (int, divergence) result) list
(** The machine square on every {!Sep_core.Scenarios} instance, over
    [schedules] seeded input schedules each. A clean kernel must pass
    all of them. *)

(** {1 Mutant kill racing} *)

type kill = {
  k_bug : string;
  k_level : string;  (** ["sue"] or ["regime_kernel"] *)
  k_killed : bool;
  k_seed : int;  (** replays the divergence: [rushby refine --replay seed --bug bug] *)
  k_attempts : int;  (** seeds tried before the kill (1-based; 0 if missed) *)
  k_scenario : string;  (** catalogue label or ["generated"] *)
  k_step : int;  (** first divergent step of the minimized workload *)
  k_original_size : int;
  k_shrunk_size : int;
  k_shrink_steps : int;
}

val kill_to_json : kill -> Json.t
val replay_command : kill -> string

val kill_table : ?jobs:int -> seed:int -> attempts:int -> unit -> kill list
(** Race every seeded [Sue] bug and [Regime_kernel] bug against the
    stack: each bug is one deterministic seeded task (so the table is
    byte-identical at any [-j]), trying up to [attempts] seeds and
    shrinking the first divergent workload to a minimum. *)

val replay : seed:int -> bug:string -> (kill option, string) result
(** Re-run one bug's detection attempt on one seed: [Ok (Some kill)] when
    it diverges (with the same shrinking as {!kill_table}), [Ok None]
    when that seed does not expose the bug, [Error] for an unknown bug
    name. *)

val known_bugs : string list
