module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Fifo = Sep_util.Fifo
module Regime_kernel = Sep_core.Regime_kernel

type regime = {
  colour : Colour.t;
  inst : Component.instance;
  pending : Component.message Fifo.t;
  in_chans : int list;
  mutable obs : Component.obs list;  (* reversed *)
  mutable outs : Component.message list;  (* reversed *)
}

type t = {
  regimes : regime array;
  bufs : Component.message Fifo.t array;
  cut : bool array;
  src_of : int array;
  dst_of : int array;
  mutable current : int;
  mutable switches : int;
  mutable copies : int;
  mutable dropped : int;
}

let external_queue_capacity = 1024

let build topo =
  (match Topology.validate topo with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Bspec.build: " ^ msg));
  let colours = Array.of_list (Topology.colours topo) in
  let index_of c =
    let rec find i = if Colour.equal colours.(i) c then i else find (i + 1) in
    find 0
  in
  let wires = Array.of_list topo.Topology.wires in
  let regime r_idx (colour, comp) =
    let in_chans = ref [] in
    Array.iteri
      (fun id (w : Topology.wire) -> if index_of w.Topology.dst = r_idx then in_chans := id :: !in_chans)
      wires;
    {
      colour;
      inst = Component.instantiate comp;
      pending = Fifo.create ~capacity:external_queue_capacity;
      in_chans = List.sort Int.compare !in_chans;
      obs = [];
      outs = [];
    }
  in
  {
    regimes = Array.of_list (List.mapi regime topo.Topology.parts);
    bufs = Array.map (fun (w : Topology.wire) -> Fifo.create ~capacity:w.Topology.capacity) wires;
    cut = Array.map (fun (w : Topology.wire) -> w.Topology.cut) wires;
    src_of = Array.map (fun (w : Topology.wire) -> index_of w.Topology.src) wires;
    dst_of = Array.map (fun (w : Topology.wire) -> index_of w.Topology.dst) wires;
    current = 0;
    switches = 0;
    copies = 0;
    dropped = 0;
  }

let copy_in t sender chan_id msg =
  if chan_id < 0 || chan_id >= Array.length t.bufs || t.src_of.(chan_id) <> sender then
    t.dropped <- t.dropped + 1
  else if t.cut.(chan_id) then () (* the far end was aliased away *)
  else if Fifo.push t.bufs.(chan_id) msg then t.copies <- t.copies + 1
  else t.dropped <- t.dropped + 1

let deliver t r_idx ev =
  let r = t.regimes.(r_idx) in
  r.obs <- Component.Saw ev :: r.obs;
  List.iter
    (function
      | Component.Send (chan_id, msg) as act ->
        r.obs <- Component.Did act :: r.obs;
        copy_in t r_idx chan_id msg
      | Component.Output msg as act ->
        r.obs <- Component.Did act :: r.obs;
        r.outs <- msg :: r.outs)
    (Component.feed r.inst ev)

let field_externals t externals =
  List.iter
    (fun (c, msg) ->
      Array.iter
        (fun r ->
          if Colour.equal r.colour c then
            if not (Fifo.push r.pending msg) then t.dropped <- t.dropped + 1)
        t.regimes)
    externals

let quantum t r_idx deliverable =
  if t.current <> r_idx then begin
    t.current <- r_idx;
    t.switches <- t.switches + 1
  end;
  let r = t.regimes.(r_idx) in
  let rec drain () =
    match Fifo.pop r.pending with
    | Some msg ->
      deliver t r_idx (Component.External msg);
      drain ()
    | None -> ()
  in
  drain ();
  List.iter
    (fun chan_id ->
      if deliverable.(chan_id) > 0 then begin
        deliverable.(chan_id) <- 0;
        match Fifo.pop t.bufs.(chan_id) with
        | Some msg ->
          t.copies <- t.copies + 1;
          deliver t r_idx (Component.Recv (chan_id, msg))
        | None -> ()
      end)
    r.in_chans

let step t ~externals =
  field_externals t externals;
  let deliverable = Array.map (fun buf -> min 1 (Fifo.length buf)) t.bufs in
  for r_idx = 0 to Array.length t.regimes - 1 do
    quantum t r_idx deliverable
  done

let find t c =
  let rec search i =
    if i >= Array.length t.regimes then raise Not_found
    else if Colour.equal t.regimes.(i).colour c then t.regimes.(i)
    else search (i + 1)
  in
  search 0

let trace t c = List.rev (find t c).obs
let outputs t c = List.rev (find t c).outs
let chan_buffer t id = Fifo.to_list t.bufs.(id)
let chan_count t = Array.length t.bufs
let context_switches t = t.switches
let messages_copied t = t.copies
let buffered t = Array.fold_left (fun acc b -> acc + Fifo.length b) 0 t.bufs
let drops t = t.dropped
let current_colour t = t.regimes.(t.current).colour

(* -- The simulation relation ----------------------------------------------- *)

let first_difference xs ys =
  let rec walk i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs', y :: ys' -> if Component.equal_obs x y then walk (i + 1) xs' ys' else Some i
    | _, _ -> Some i
  in
  walk 0 xs ys

let agrees t k =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_colour acc r =
    match acc with
    | Error _ -> acc
    | Ok () -> begin
      let spec_trace = List.rev r.obs in
      let kern_trace = Regime_kernel.trace k r.colour in
      match first_difference spec_trace kern_trace with
      | Some i ->
        err "trace of %a diverges at obs %d (spec %d events, kernel %d)" Colour.pp r.colour i
          (List.length spec_trace) (List.length kern_trace)
      | None ->
        if Regime_kernel.outputs k r.colour <> List.rev r.outs then
          err "outputs of %a diverge" Colour.pp r.colour
        else Ok ()
    end
  in
  let base = Array.fold_left check_colour (Ok ()) t.regimes in
  let check_chan acc id =
    match acc with
    | Error _ -> acc
    | Ok () ->
      let spec = chan_buffer t id and kern = Regime_kernel.chan_buffer k id in
      if spec <> kern then
        err "channel %d buffer diverges (spec holds %d, kernel %d)" id (List.length spec)
          (List.length kern)
      else Ok ()
  in
  let base = List.fold_left check_chan base (List.init (Array.length t.bufs) Fun.id) in
  match base with
  | Error _ as e -> e
  | Ok () ->
    if Regime_kernel.context_switches k <> t.switches then
      err "context switches diverge (spec %d, kernel %d)" t.switches
        (Regime_kernel.context_switches k)
    else if Regime_kernel.messages_copied k <> t.copies then
      err "copy accounting diverges (spec %d, kernel %d)" t.copies (Regime_kernel.messages_copied k)
    else if Regime_kernel.buffered k <> buffered t then
      err "buffered totals diverge (spec %d, kernel %d)" (buffered t) (Regime_kernel.buffered k)
    else if Regime_kernel.drops k <> t.dropped then
      err "drop accounting diverges (spec %d, kernel %d)" t.dropped (Regime_kernel.drops k)
    else if not (Colour.equal (Regime_kernel.current_colour k) (current_colour t)) then
      err "processor position diverges"
    else Ok ()
