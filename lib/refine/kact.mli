(** Cross-level workloads: one program, three renderings.

    The refinement stack compares three implementations of the same
    design — the abstract specification, the behavioural kernel and the
    machine kernel — so it needs workloads expressible at every level. A
    {!case} is a tiny Kahn-style dataflow program per colour over the
    declared channels: register arithmetic, words emitted on the colour's
    transmitter, words sent down channels, and {e blocking} receives.
    Blocking is the point: a Kahn network's committed word streams are a
    function of the programs alone, independent of how a substrate
    schedules or batches delivery — exactly the invariant that lets a
    per-instruction machine kernel and a per-rotation behavioural kernel
    be compared at all.

    Channel graphs are generated acyclic (sender index below receiver
    index) with at most as many receives as sends per channel, so a full
    evaluation always terminates; channel capacities are sized to the
    send count so no level ever observes a full buffer. *)

module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Config = Sep_core.Config
module Gen = Sep_check.Gen

type kop =
  | KAdd
  | KXor

type act =
  | KSet of int * int  (** register (3–5), value below 256 *)
  | KArith of kop * int * int  (** dst, src in 3–5 *)
  | KEmit of int  (** emit the register's word on the colour's transmitter *)
  | KSend of int * int  (** channel, register *)
  | KRecv of int * int  (** channel, destination register — blocking *)

type case = {
  k_emitters : bool list;  (** per colour: owns a Tx device *)
  k_chans : (int * int * int) list;
      (** (sender index, receiver index, capacity); sender < receiver *)
  k_progs : act list list;  (** one program per colour *)
  k_quantum : int option;
}

val pp_act : Format.formatter -> act -> unit
val pp_case : Format.formatter -> case -> unit
val case_to_json : case -> Sep_util.Json.t

val gen : ?max_regimes:int -> ?max_actions:int -> unit -> case Gen.t

val shrink : case -> case Seq.t
(** Drop actions one at a time (receives first lose their senders'
    partners naturally — an orphaned receive just blocks forever, which
    every level represents), then drop the preemption quantum. *)

val size : case -> int
(** Total action count, the size shrinking minimizes. *)

(** {1 Reference evaluation} *)

type outcome = {
  o_sent : int list array;  (** per channel, send order *)
  o_bound : int list array;  (** per channel, words bound by receives *)
  o_emitted : int list array;  (** per colour *)
  o_regs : int array array;  (** per colour, final register file *)
}

val eval : case -> outcome
(** Run the Kahn network to completion (or to a blocked fixpoint when
    receives were orphaned by shrinking): the committed word streams
    every level must reproduce. *)

(** {1 Renderings} *)

val to_config : case -> Sep_hw.Isa.stmt list Config.t
(** Machine-level: receives compile to poll/yield retry loops, programs
    end in WAIT. *)

type probe = {
  mutable p_regs : int array;
  mutable p_bound : int list;  (** reversed *)
}
(** Instrumentation a hosted component writes through: its current
    register file and the words its receives have bound — state the
    behavioural kernel has no other window onto. *)

val new_probe : unit -> probe

val to_topology : case -> probes:probe array -> Topology.t
(** Behavioural: each program as an event-driven component (ticked once
    to start, then driven by deliveries), writing through its probe.
    Build a fresh probe array per topology — probes are per-component
    instrumentation, not shared. *)

val sue_steps : case -> int
(** A machine-step budget generous enough for the network to quiesce. *)

val rotations : case -> int
(** A rotation budget for the behavioural levels. *)
