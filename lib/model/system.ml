type 's op = { op_name : string; op_apply : 's -> 's }

type 'a abop = { abop_name : string; abop_apply : 'a -> 'a }

type ('s, 'i, 'o, 'a, 'p) t = {
  name : string;
  colours : Colour.t list;
  initial : 's list;
  inputs : 'i list;
  ops : 's op list;
  colour_of : 's -> Colour.t;
  input : 's -> 'i -> 's;
  nextop : 's -> 's op;
  output : 's -> 'o;
  extract_input : Colour.t -> 'i -> 'p;
  extract_output : Colour.t -> 'o -> 'p;
  abstract : Colour.t -> 's -> 'a;
  abop : Colour.t -> 's op -> 'a abop;
  sanctioned_interference : Colour.t -> Colour.t -> 'a -> 'a -> bool;
  equal_state : 's -> 's -> bool;
  hash_state : 's -> int;
  equal_abstate : 'a -> 'a -> bool;
  hash_abstate : 'a -> int;
  equal_proj : 'p -> 'p -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_input : Format.formatter -> 'i -> unit;
  pp_abstate : Format.formatter -> 'a -> unit;
}

let step sys s i =
  let mid = sys.input s i in
  (sys.nextop mid).op_apply mid

let reachable ?(limit = 200_000) sys =
  let module H = Hashtbl in
  let seen = H.create 1024 in
  let mem s = List.exists (sys.equal_state s) (H.find_all seen (sys.hash_state s)) in
  let add s = H.add seen (sys.hash_state s) s in
  let queue = Queue.create () in
  let out = ref [] in
  let count = ref 0 in
  let visit s =
    if not (mem s) then begin
      add s;
      incr count;
      if !count > limit then failwith "System.reachable: state limit exceeded";
      out := s :: !out;
      Queue.push s queue
    end
  in
  List.iter visit sys.initial;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    let explore i =
      (* Visit the post-INPUT state too: NEXTOP is applied there, so the
         separability conditions must be checked in it. *)
      let mid = sys.input s i in
      visit mid;
      visit ((sys.nextop mid).op_apply mid)
    in
    List.iter explore sys.inputs
  done;
  List.rev !out

let trace sys s ins =
  let rec loop s acc_states acc_outs = function
    | [] -> (List.rev (s :: acc_states), List.rev acc_outs)
    | i :: rest ->
      let o = sys.output s in
      let s' = step sys s i in
      loop s' (s :: acc_states) (o :: acc_outs) rest
  in
  loop s [] [] ins
