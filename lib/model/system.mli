(** The shared-system model of the paper's Appendix, as first-class data.

    A system has states [S], operations [OPS] (state transformers), inputs
    [I] and outputs [O]. At each time step it consumes an input (function
    [INPUT]), selects an operation according to its state ([NEXTOP]),
    executes it, and emits an output ([OUTPUT]). The identity of the user on
    whose behalf an operation executes is [COLOUR] of the state at selection
    time; [EXTRACT] projects the per-colour private components out of inputs
    and outputs.

    Security ("separability") is defined through per-colour abstraction
    functions [Phi^c] from concrete to abstract states and [ABOP^c] from
    concrete to abstract operations, subject to the six conditions checked
    by {!Sep_core.Separability}.

    Operations are named: [NEXTOP] equality (condition 6) and the [ABOP^c]
    correspondence are decided on names, since function equality is not
    available. Instances must therefore give distinct names to semantically
    distinct operations. *)

type 's op = { op_name : string; op_apply : 's -> 's }
(** A named concrete operation. *)

type 'a abop = { abop_name : string; abop_apply : 'a -> 'a }
(** A named abstract operation of one regime's private ("abstract")
    machine. *)

type ('s, 'i, 'o, 'a, 'p) t = {
  name : string;  (** instance name, for reports *)
  colours : Colour.t list;  (** the set [C] *)
  initial : 's list;  (** initial concrete states *)
  inputs : 'i list;  (** the (finite) input alphabet [I] *)
  ops : 's op list;  (** the set [OPS] *)
  colour_of : 's -> Colour.t;  (** [COLOUR] *)
  input : 's -> 'i -> 's;  (** [INPUT] *)
  nextop : 's -> 's op;  (** [NEXTOP] *)
  output : 's -> 'o;  (** [OUTPUT] *)
  extract_input : Colour.t -> 'i -> 'p;  (** [EXTRACT] on inputs *)
  extract_output : Colour.t -> 'o -> 'p;  (** [EXTRACT] on outputs *)
  abstract : Colour.t -> 's -> 'a;  (** [Phi^c] *)
  abop : Colour.t -> 's op -> 'a abop;  (** [ABOP^c] *)
  sanctioned_interference : Colour.t -> Colour.t -> 'a -> 'a -> bool;
      (** [sanctioned_interference active viewer before after]: condition
          2's connected-system weakening. [true] when the change an
          operation on behalf of [active] made to [viewer]'s view is
          confined to the contents of channels {e declared} (and not cut)
          from [active] to [viewer] — the paper's "except via authorized
          channels" reading, needed the moment a kernel runs with its
          channels connected rather than cut. Fully cut systems return
          [false] everywhere, demanding strict invisibility; Proof of
          Separability proper applies to those. *)
  equal_state : 's -> 's -> bool;
  hash_state : 's -> int;
  equal_abstate : 'a -> 'a -> bool;
  hash_abstate : 'a -> int;
  equal_proj : 'p -> 'p -> bool;
  pp_state : Format.formatter -> 's -> unit;
  pp_input : Format.formatter -> 'i -> unit;
  pp_abstate : Format.formatter -> 'a -> unit;
}

val step : ('s, 'i, 'o, 'a, 'p) t -> 's -> 'i -> 's
(** One time step: consume the input, then select and execute an
    operation — [NEXTOP(INPUT(s,i)) (INPUT(s,i))]. *)

val reachable : ?limit:int -> ('s, 'i, 'o, 'a, 'p) t -> 's list
(** Breadth-first enumeration of the states reachable from the initial
    states under {!step} with every input, including intermediate
    post-[INPUT] states (operations are selected in those, so the six
    conditions must hold there too). Raises [Failure] if more than [limit]
    (default 200_000) distinct states are found, to keep exhaustive checks
    honest about their feasibility. *)

val trace : ('s, 'i, 'o, 'a, 'p) t -> 's -> 'i list -> 's list * 'o list
(** [trace sys s ins] runs the system from [s] over the input word [ins];
    returns the visited states (including [s]) and the outputs emitted
    (one per step, [OUTPUT] of the pre-step state, as in the Appendix). *)
