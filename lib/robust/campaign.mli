(** Fault-injection campaigns: fault containment as a corollary of
    separation.

    Rushby's argument makes one processor indistinguishable from a
    physically distributed system — and in the distributed ideal a
    hardware fault inside one box cannot corrupt another box. The
    campaign tests that corollary directly: it runs every {!Fault_plan}
    against a fault-free reference of the same scenario and classifies
    each outcome by {e differential per-colour trace comparison}.

    {b Observable trace.} A colour's observable trace is the sequence of
    words on its Tx wires, {e in order but not indexed by step}. Parking
    or slowing one regime redistributes the processor and shifts every
    other regime's step timing; the paper explicitly excludes such timing
    channels from separability, so the comparison tolerates one trace
    being a prefix of the other (the same behaviour, observed for more or
    fewer of its steps) and flags only genuine content divergence. For
    the same reason external input is {e flow-controlled}: a dripped word
    queues until its Rx latch is free, so every regime consumes the same
    word sequence however the processor is shared — otherwise the
    external world doubles as a clock and re-imports the excluded timing
    channel through input sampling.

    {b Classification.} For a fault targeting colour [v] (see
    {!Fault_plan.target}): {e separation-violating} if any colour other
    than [v] diverges; otherwise {e recovered-safe} if the recovery
    supervisor acted (a restart or warm reboot appears in the audit log)
    and no regime is still parked at the end — the fail-operational
    outcome; otherwise {e detected-safe} if the kernel's hardening
    audited a corruption (save-area parks, guard breaches, checkpoint
    corruption, kernel panics — watchdog fires are liveness events and
    are reported separately); otherwise {e masked}. Perturbation of [v]
    itself is allowed and recorded: in the distributed ideal too, a fault
    inside a box may corrupt that box. *)

module Colour = Sep_model.Colour
module Sue = Sep_core.Sue
module Scenarios = Sep_core.Scenarios

type outcome =
  | Masked
  | Detected_safe
  | Recovered_safe
  | Violating

val pp_outcome : Format.formatter -> outcome -> unit

type case = {
  plan : Fault_plan.t;
  target : Colour.t option;
  outcome : outcome;
  victim_perturbed : bool;  (** the target's own trace or final status changed *)
  detections : Sue.kernel_fault list;  (** corruption detections (audit log) *)
  recoveries : Sue.kernel_fault list;  (** restarts and warm reboots (audit log) *)
  watchdog_delta : int;  (** watchdog fires beyond the reference run's *)
}

type scenario_report = {
  label : string;
  seed : int;
  steps : int;
  watchdog : int option;  (** armed for both reference and faulty runs *)
  cases : case list;
}

type report = {
  rp_seed : int;
  rp_scenarios : scenario_report list;
}

val subjects : Scenarios.instance list
(** The scenario catalogue under test: {!Scenarios.all} plus
    ["greedy-watchdog"], the preemptive instance re-hosted without a
    quantum so only the watchdog keeps both regimes live. *)

val run_scenario :
  ?watchdog:int ->
  ?recover:Sep_recover.Recover.policy ->
  ?multi:int ->
  seed:int -> steps:int -> count:int -> Scenarios.instance -> scenario_report
(** Generate [count] single-fault plans (from [seed], specialised to the
    scenario's configuration) — plus [multi] three-fault plans from
    {!Fault_plan.generate_multi} when [multi > 0] — and classify each
    against the fault-free reference. Each case runs on a fresh kernel
    build; with [recover] a {!Sep_recover.Recover} supervisor ticks after
    every step, restarting parked regimes and warm-rebooting all-parked
    kernels under the given budgets. *)

type monitored = {
  mc_case : case;
  mc_first_violation : (int * Sep_core.Separability.failure) option;
      (** the kernel step (as counted by the watch) at which the online
          monitor first flagged a violation, [None] when the run stayed
          separable *)
  mc_deep_checks : int;  (** observations that escalated to a deep check *)
}

val monitored_case :
  ?watchdog:int ->
  ?recover:Sep_recover.Recover.policy ->
  ?period:int ->
  steps:int -> plan:Fault_plan.t -> Scenarios.instance -> monitored
(** One fault-plan replay with an online {!Sep_core.Monitor.watch}
    attached: {!Sep_core.Monitor.observe} runs after every kernel step,
    so a fault that breaks a separability condition is flagged at the
    step the kernel's own audit detects it (or within [period] steps,
    default 32, for silent corruption). The differential classification
    of the case is unchanged — the monitor adds step attribution to
    it. *)

val run : ?jobs:int -> seed:int -> steps:int -> count:int -> unit -> report
(** The full fail-safe campaign over {!subjects}, no recovery — exactly
    PR 2's campaign (each scenario's plans derive from [seed] and its
    label, so scenarios are independently reproducible). Cases replay in
    parallel on up to [jobs] domains (default
    {!Sep_par.Par.default_jobs}); plan generation and replay are
    deterministic, so the report is bit-identical for any job count. *)

val run_recovery :
  ?policy:Sep_recover.Recover.policy -> ?jobs:int -> seed:int -> steps:int -> count:int ->
  unit -> report
(** The fail-operational campaign: same subjects and single-fault plans
    as {!run} plus [count/2] three-fault stress plans per scenario, all
    under a recovery supervisor. The fail-operational claim is that every
    case that parked a regime now ends {!Recovered_safe} — and none ends
    {!Violating}. *)

val holds : report -> bool
(** The headline theorem: no injected fault produced a
    separation-violating outcome. *)

val totals : report -> int * int * int * int
(** (masked, detected-safe, recovered-safe, violating) across all
    scenarios. *)

val case_to_json : scenario_report -> case -> Sep_util.Json.t
(** One JSONL line: [{"kind": "fault-case", "scenario", "seed", "steps",
    "plan", "target", "outcome", "victim_perturbed", "detections",
    "recoveries", "watchdog_delta"}]. *)

val report_to_jsonl : report -> string
(** One line per case, then one [{"kind": "campaign-summary", ...}] line
    with the totals and the headline verdict. *)

val summary_json : report -> Sep_util.Json.t
(** The summary object alone (the bench snapshot section). *)

(** {1 The distributed baseline}

    The same argument on {!Sep_dist.Net}, where containment holds by
    construction: tampering with a physical wire can reach only the boxes
    that wire connects. *)

type dist_report = {
  dr_cases : int;
  dr_affected : int;  (** messages altered or destroyed by tampering *)
  dr_contained : bool;  (** unconnected boxes' traces all unchanged *)
}

val run_distributed : seed:int -> steps:int -> count:int -> dist_report
(** A relay [A -> B] plus an isolated box [C]: each case corrupts or
    destroys in-flight messages on the A-B wire at a seeded step and
    checks that A's and C's observable traces equal the tamper-free
    reference — the structural form of the containment the kernel has to
    earn. *)

val dist_to_json : dist_report -> Sep_util.Json.t
