module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Machine = Sep_hw.Machine
module Prng = Sep_util.Prng
module J = Sep_util.Json

type chan_end =
  | Send_end
  | Recv_end

type fault =
  | Mem_flip of { colour : Colour.t; offset : int; bit : int }
  | Saved_reg_flip of { colour : Colour.t; slot : int; bit : int }
  | Guard_smash of { index : int }
  | Chan_flip of { chan : int; which : chan_end; word : int; bit : int }
  | Rx_latch_flip of { device : int; bit : int }
  | Drop_input of { device : int }
  | Spurious_irq of { device : int }
  | Duplicate_irq of { device : int }
  | Stuck_device of { device : int }
  (* Node-level faults, meaningful against a federation of shard kernels
     ({!Sep_fed}): a whole node power-fails, a physical link partitions
     for a window of steps and then heals, or the frames in flight on a
     link are tampered with. Single-kernel campaigns never draw them
     (they appear in the sampler pool only when a [node_space] is given)
     and [Campaign] ignores them if handed one. *)
  | Shard_crash of { shard : int }
  | Link_partition of { link : int; window : int }
  | Frame_tamper of { link : int }

type node_space = {
  ns_shards : int;
  ns_links : int;
}

let pp_chan_end ppf = function
  | Send_end -> Fmt.string ppf "send"
  | Recv_end -> Fmt.string ppf "recv"

let pp_fault ppf = function
  | Mem_flip f -> Fmt.pf ppf "mem-flip %a+%d bit %d" Colour.pp f.colour f.offset f.bit
  | Saved_reg_flip f -> Fmt.pf ppf "saved-reg-flip %a slot %d bit %d" Colour.pp f.colour f.slot f.bit
  | Guard_smash f -> Fmt.pf ppf "guard-smash #%d" f.index
  | Chan_flip f -> Fmt.pf ppf "chan-flip ch%d %a word %d bit %d" f.chan pp_chan_end f.which f.word f.bit
  | Rx_latch_flip f -> Fmt.pf ppf "rx-latch-flip dev%d bit %d" f.device f.bit
  | Drop_input f -> Fmt.pf ppf "drop-input dev%d" f.device
  | Spurious_irq f -> Fmt.pf ppf "spurious-irq dev%d" f.device
  | Duplicate_irq f -> Fmt.pf ppf "duplicate-irq dev%d" f.device
  | Stuck_device f -> Fmt.pf ppf "stuck-device dev%d" f.device
  | Shard_crash f -> Fmt.pf ppf "shard-crash node%d" f.shard
  | Link_partition f -> Fmt.pf ppf "link-partition wire%d for %d" f.link f.window
  | Frame_tamper f -> Fmt.pf ppf "frame-tamper wire%d" f.link

let fault_to_json f =
  let colour c = ("colour", J.String (Colour.name c)) in
  match f with
  | Mem_flip f ->
    J.Obj [ ("type", J.String "mem-flip"); colour f.colour; ("offset", J.Int f.offset); ("bit", J.Int f.bit) ]
  | Saved_reg_flip f ->
    J.Obj
      [ ("type", J.String "saved-reg-flip"); colour f.colour; ("slot", J.Int f.slot); ("bit", J.Int f.bit) ]
  | Guard_smash f -> J.Obj [ ("type", J.String "guard-smash"); ("index", J.Int f.index) ]
  | Chan_flip f ->
    J.Obj
      [
        ("type", J.String "chan-flip");
        ("chan", J.Int f.chan);
        ("end", J.String (Fmt.str "%a" pp_chan_end f.which));
        ("word", J.Int f.word);
        ("bit", J.Int f.bit);
      ]
  | Rx_latch_flip f ->
    J.Obj [ ("type", J.String "rx-latch-flip"); ("device", J.Int f.device); ("bit", J.Int f.bit) ]
  | Drop_input f -> J.Obj [ ("type", J.String "drop-input"); ("device", J.Int f.device) ]
  | Spurious_irq f -> J.Obj [ ("type", J.String "spurious-irq"); ("device", J.Int f.device) ]
  | Duplicate_irq f -> J.Obj [ ("type", J.String "duplicate-irq"); ("device", J.Int f.device) ]
  | Stuck_device f -> J.Obj [ ("type", J.String "stuck-device"); ("device", J.Int f.device) ]
  | Shard_crash f -> J.Obj [ ("type", J.String "shard-crash"); ("shard", J.Int f.shard) ]
  | Link_partition f ->
    J.Obj [ ("type", J.String "link-partition"); ("link", J.Int f.link); ("window", J.Int f.window) ]
  | Frame_tamper f -> J.Obj [ ("type", J.String "frame-tamper"); ("link", J.Int f.link) ]

type t = {
  label : string;
  faults : (int * fault) list;
}

let pp ppf p =
  Fmt.pf ppf "@[<h>%s:%a@]" p.label
    Fmt.(list ~sep:comma (fun ppf (at, f) -> Fmt.pf ppf " @%d %a" at pp_fault f))
    p.faults

let to_json p =
  J.Obj
    [
      ("label", J.String p.label);
      ( "faults",
        J.List
          (List.map (fun (at, f) -> J.Obj [ ("step", J.Int at); ("fault", fault_to_json f) ]) p.faults)
      );
    ]

(* Global device ids are assigned in regime-declaration order, matching
   Sue's layout. *)
let global_devices cfg =
  List.concat_map (fun r -> List.map (fun k -> (r.Config.colour, k)) r.Config.devices)
    cfg.Config.regimes

let device_owner cfg d =
  match List.nth_opt (global_devices cfg) d with
  | Some (c, _) -> c
  | None -> invalid_arg "Fault_plan.target: no such device"

let target cfg = function
  | Mem_flip { colour; _ } | Saved_reg_flip { colour; _ } -> Some colour
  | Guard_smash _ -> None
  | Chan_flip { chan; which; _ } -> begin
    match List.nth_opt cfg.Config.channels chan with
    | Some ch -> Some (match which with Send_end -> ch.Config.sender | Recv_end -> ch.Config.receiver)
    | None -> invalid_arg "Fault_plan.target: no such channel"
  end
  | Rx_latch_flip { device; _ }
  | Drop_input { device }
  | Spurious_irq { device }
  | Duplicate_irq { device }
  | Stuck_device { device } -> Some (device_owner cfg device)
  (* Node faults target a {e set} of colours (everything hosted on the
     shard, or every receiver routed over the link), which the federation
     campaign computes from its placement; as single-colour targets they
     are [None], like the kernel-fence smash. *)
  | Shard_crash _ | Link_partition _ | Frame_tamper _ -> None

let kind_name = function
  | Mem_flip _ -> "mem-flip"
  | Saved_reg_flip _ -> "saved-reg-flip"
  | Guard_smash _ -> "guard-smash"
  | Chan_flip _ -> "chan-flip"
  | Rx_latch_flip _ -> "rx-latch-flip"
  | Drop_input _ -> "drop-input"
  | Spurious_irq _ -> "spurious-irq"
  | Duplicate_irq _ -> "duplicate-irq"
  | Stuck_device _ -> "stuck-device"
  | Shard_crash _ -> "shard-crash"
  | Link_partition _ -> "link-partition"
  | Frame_tamper _ -> "frame-tamper"

(* The fault kinds a configuration offers, as samplers. Building the
   array consumes no randomness, so [generate] and [generate_multi] draw
   the same stream a direct implementation would. The node-level kinds
   join the pool only when a [node_space] widens it, so plans generated
   without one are unchanged, draw for draw. *)
let samplers ?nodes cfg =
  let regimes = Array.of_list cfg.Config.regimes in
  let nregs = Array.length regimes in
  let channels = Array.of_list cfg.Config.channels in
  let devices = Array.of_list (global_devices cfg) in
  let rx_devices =
    Array.of_list
      (List.filter_map
         (fun (d, (_, k)) -> if k = Machine.Rx then Some d else None)
         (List.mapi (fun d x -> (d, x)) (Array.to_list devices)))
  in
  let pick_regime rng = regimes.(Prng.int rng nregs) in
  let bit rng = Prng.int rng 16 in
  let mem_flip rng =
    let r = pick_regime rng in
    Mem_flip { colour = r.Config.colour; offset = Prng.int rng r.Config.part_size; bit = bit rng }
  in
  let saved_reg_flip rng =
    let r = pick_regime rng in
    (* slots 0-7: registers; 8: flags *)
    Saved_reg_flip { colour = r.Config.colour; slot = Prng.int rng 9; bit = bit rng }
  in
  let guard_smash rng = Guard_smash { index = Prng.int rng (nregs + 1) } in
  let chan_flip rng =
    let c = Prng.int rng (Array.length channels) in
    let ch = channels.(c) in
    Chan_flip
      {
        chan = c;
        which = (if Prng.bool rng then Send_end else Recv_end);
        word = Prng.int rng (ch.Config.capacity + 2);
        bit = bit rng;
      }
  in
  let rx_pick rng = rx_devices.(Prng.int rng (Array.length rx_devices)) in
  let kinds =
    List.concat
      [
        [ mem_flip; saved_reg_flip; guard_smash ];
        (if Array.length channels > 0 then [ chan_flip ] else []);
        (if Array.length rx_devices > 0 then
           [
             (fun rng -> Rx_latch_flip { device = rx_pick rng; bit = bit rng });
             (fun rng -> Drop_input { device = rx_pick rng });
             (fun rng -> Spurious_irq { device = rx_pick rng });
             (fun rng -> Duplicate_irq { device = rx_pick rng });
           ]
         else []);
        (if Array.length devices > 0 then
           [ (fun rng -> Stuck_device { device = Prng.int rng (Array.length devices) }) ]
         else []);
        (match nodes with
        | None -> []
        | Some ns ->
          (if ns.ns_shards > 0 then
             [ (fun rng -> Shard_crash { shard = Prng.int rng ns.ns_shards }) ]
           else [])
          @
          if ns.ns_links > 0 then
            [
              (fun rng ->
                Link_partition { link = Prng.int rng ns.ns_links; window = 4 + Prng.int rng 12 });
              (fun rng -> Frame_tamper { link = Prng.int rng ns.ns_links });
            ]
          else []);
      ]
  in
  Array.of_list kinds

let generate ?nodes ~seed ~steps ~count cfg =
  if steps < 3 then invalid_arg "Fault_plan.generate: needs at least 3 steps";
  if count < 0 then invalid_arg "Fault_plan.generate: negative count";
  let rng = Prng.create seed in
  let kinds = samplers ?nodes cfg in
  List.init count (fun i ->
      let at = 1 + Prng.int rng (steps - 2) in
      let fault = (Prng.choose rng kinds) rng in
      { label = Fmt.str "f%02d-%s@%d" i (kind_name fault) at; faults = [ (at, fault) ] })

(* Soak shapes: sustained, {e correlated} node-level chaos rather than
   independent single shots. Every shape pins its shard or link once and
   then strikes it repeatedly across the whole horizon, so recovery
   machinery (reboot budgets, quarantine/rejoin, retry/backoff above) is
   exercised while still digesting the previous blow. Each plan carries
   at least three node faults; a sprinkle of machine-level faults from
   the ordinary sampler pool rides along so kernels see background noise
   too. *)
let soak ~nodes ~seed ~steps ~count cfg =
  if steps < 256 then invalid_arg "Fault_plan.soak: needs at least 256 steps";
  if count < 0 then invalid_arg "Fault_plan.soak: negative count";
  if nodes.ns_shards < 1 then invalid_arg "Fault_plan.soak: needs at least one shard";
  let rng = Prng.create seed in
  let machine_kinds = samplers cfg in
  let span = steps - 2 in
  let clamp at = max 1 (min (steps - 2) at) in
  (* k strikes spread across the horizon, each jittered inside its slot so
     consecutive strikes never collapse onto one step. *)
  let spread k jitter_of =
    let gap = max 2 (span / (k + 1)) in
    List.init k (fun j ->
        let base = 1 + ((j + 1) * gap) in
        clamp (base - (gap / 4) + jitter_of gap))
  in
  let repeated_crash rng =
    let shard = Prng.int rng nodes.ns_shards in
    let k = 3 + Prng.int rng 3 in
    let ats = spread k (fun gap -> Prng.int rng (max 1 (gap / 2))) in
    (List.map (fun at -> (at, Shard_crash { shard })) ats, Fmt.str "crashx%d-node%d" k shard)
  in
  let flapping_partition rng =
    let link = Prng.int rng nodes.ns_links in
    let k = 3 + Prng.int rng 4 in
    let gap = max 2 (span / (k + 1)) in
    let ats = spread k (fun gap -> Prng.int rng (max 1 (gap / 2))) in
    let faults =
      List.map
        (fun at ->
          let window = min (8 + Prng.int rng 48) (max 4 (gap / 2)) in
          (at, Link_partition { link; window }))
        ats
    in
    (faults, Fmt.str "flapx%d-wire%d" k link)
  in
  let tamper_burst rng =
    let link = Prng.int rng nodes.ns_links in
    let k = 4 + Prng.int rng 4 in
    let start = 1 + Prng.int rng (max 1 (span / 2)) in
    let spacing = 16 + Prng.int rng 32 in
    let faults = List.init k (fun j -> (clamp (start + (j * spacing)), Frame_tamper { link })) in
    (faults, Fmt.str "tamperx%d-wire%d" k link)
  in
  let mixed rng =
    let shard = Prng.int rng nodes.ns_shards in
    let link = if nodes.ns_links > 0 then Prng.int rng nodes.ns_links else 0 in
    let k = 4 + Prng.int rng 2 in
    let ats = spread k (fun gap -> Prng.int rng (max 1 (gap / 2))) in
    let faults =
      List.map
        (fun at ->
          let f =
            if nodes.ns_links = 0 then Shard_crash { shard }
            else
              match Prng.int rng 3 with
              | 0 -> Shard_crash { shard }
              | 1 -> Link_partition { link; window = 8 + Prng.int rng 40 }
              | _ -> Frame_tamper { link }
          in
          (at, f))
        ats
    in
    (faults, Fmt.str "mixedx%d-node%d" k shard)
  in
  let shapes =
    Array.of_list
      (List.concat
         [
           [ repeated_crash ];
           (if nodes.ns_links > 0 then [ flapping_partition; tamper_burst ] else []);
           [ mixed ];
         ])
  in
  List.init count (fun i ->
      let node_faults, shape = (Prng.choose rng shapes) rng in
      let extra = Prng.int rng 3 in
      let machine_faults =
        List.init extra (fun _ ->
            let at = 1 + Prng.int rng (steps - 2) in
            (at, (Prng.choose rng machine_kinds) rng))
      in
      let faults =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) (node_faults @ machine_faults)
      in
      let first = match faults with (at, _) :: _ -> at | [] -> 0 in
      { label = Fmt.str "s%02d-%s@%d" i shape first; faults })

let generate_multi ?nodes ~seed ~steps ~count ~faults_per_plan cfg =
  if steps < 3 then invalid_arg "Fault_plan.generate_multi: needs at least 3 steps";
  if count < 0 then invalid_arg "Fault_plan.generate_multi: negative count";
  if faults_per_plan < 1 then invalid_arg "Fault_plan.generate_multi: needs at least 1 fault per plan";
  let rng = Prng.create seed in
  let kinds = samplers ?nodes cfg in
  List.init count (fun i ->
      let faults =
        List.init faults_per_plan (fun _ ->
            let at = 1 + Prng.int rng (steps - 2) in
            (at, (Prng.choose rng kinds) rng))
      in
      let faults = List.stable_sort (fun (a, _) (b, _) -> compare a b) faults in
      let first = match faults with (at, _) :: _ -> at | [] -> 0 in
      { label = Fmt.str "m%02d-x%d@%d" i faults_per_plan first; faults })
