(** Seeded, reproducible schedules of transient hardware faults.

    A fault is a single physical event — a flipped memory bit, a corrupted
    save-area slot, a glitched interrupt line, a device that dies — located
    in {e some regime's domain} (its partition, its kernel record, its
    devices, its channel ends) or in the kernel's own fencing. A plan
    schedules faults at instruction-step boundaries; the stepping wrapper
    in {!Campaign} applies them between instructions, exactly where a real
    transient would strike relative to the simulated machine's atomicity.

    Plans are pure data: generating them commits to nothing. The same
    [seed] always yields the same plans against the same configuration, so
    every campaign finding is reproducible from its report line. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config

type chan_end =
  | Send_end  (** the buffer SEND fills — the sender's domain *)
  | Recv_end  (** the buffer RECV drains (distinct when cut) — the receiver's domain *)

type fault =
  | Mem_flip of { colour : Colour.t; offset : int; bit : int }
      (** flip one bit of one word of a regime's memory partition *)
  | Saved_reg_flip of { colour : Colour.t; slot : int; bit : int }
      (** corrupt a slot (0-7 registers, 8 flags) of a register save area
          — the SWAP-boundary register-corruption fault *)
  | Guard_smash of { index : int }
      (** overwrite a guard word (fence corruption; no regime's domain) *)
  | Chan_flip of { chan : int; which : chan_end; word : int; bit : int }
      (** flip a bit of a channel ring buffer (head, count or data word) *)
  | Rx_latch_flip of { device : int; bit : int }
      (** flip a bit of an Rx device's data latch *)
  | Drop_input of { device : int }
      (** lose the next external arrival addressed to this device *)
  | Spurious_irq of { device : int }
      (** assert an interrupt line no device event justifies *)
  | Duplicate_irq of { device : int }
      (** re-assert the line right after the step, duplicating a fielded
          interrupt *)
  | Stuck_device of { device : int }
      (** the device dies: status forced idle and arrivals lost from the
          fault onward *)
  | Shard_crash of { shard : int }
      (** a whole federation node power-fails ({!Sep_core.Sue.crash}):
          every regime hosted on it stops until the supervisor's failover *)
  | Link_partition of { link : int; window : int }
      (** a physical inter-shard line is severed for [window] steps and
          then heals ({!Sep_distributed.Net.set_wire_up}) *)
  | Frame_tamper of { link : int }
      (** every frame in flight on an inter-shard line is forged; the
          federation's frame checksums reject them on arrival *)

type node_space = {
  ns_shards : int;  (** federation nodes a crash can hit *)
  ns_links : int;  (** physical wires a partition or tampering can hit *)
}
(** What the node-level faults range over. The shard and link indices in
    generated faults are drawn below these bounds; the federation driver
    maps them onto its own topology. *)

val pp_fault : Format.formatter -> fault -> unit
val fault_to_json : fault -> Sep_util.Json.t

type t = {
  label : string;
  faults : (int * fault) list;  (** (step, fault), ascending by step *)
}
(** One schedule: each fault strikes immediately before its step executes
    ([Duplicate_irq] re-asserts after it). *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Sep_util.Json.t

val target : 'p Config.t -> fault -> Colour.t option
(** The colour whose domain the fault strikes: the partition or save-area
    owner, the device owner, the channel endpoint owning the corrupted
    buffer. [None] for {!Guard_smash} — the fence belongs to the kernel,
    so {e every} colour's trace must survive it — and for the node-level
    faults, whose target is a {e set} of colours that only the federation's
    placement knows ({!Sep_fed} computes it: everything hosted on the
    crashed shard, every receiver routed over the severed or forged
    link). *)

val generate : ?nodes:node_space -> seed:int -> steps:int -> count:int -> 'p Config.t -> t list
(** [count] single-fault plans against a configuration, each striking at a
    uniform step in [\[1, steps-1)] with a fault kind and location drawn
    uniformly from what the configuration offers (partitions and save
    areas always; channel, Rx-latch, interrupt and stuck-device faults
    only when the configuration has channels or devices; shard crashes,
    link partitions over a 4–15 step window, and frame tampering only
    when [nodes] opens the node-level space). Deterministic in [seed];
    plans generated without [nodes] are unchanged by its existence, draw
    for draw. *)

val soak : nodes:node_space -> seed:int -> steps:int -> count:int -> 'p Config.t -> t list
(** [count] {e soak} plans: sustained, correlated node-level chaos over a
    long horizon ([steps] must be at least 256, typically thousands).
    Each plan draws one shape — repeated crashes of the {e same} shard,
    a flapping partition of the {e same} link, a burst of frame
    tampering, or a mixed storm pinned to one shard/link pair — with at
    least three node faults spread across the horizon, plus up to two
    ordinary machine-level faults as background noise. Windows are kept
    shorter than the spacing between strikes so the system is always
    mid-digestion, never handed overlapping copies of the same cut.
    Deterministic in [seed]. *)

val generate_multi :
  ?nodes:node_space ->
  seed:int -> steps:int -> count:int -> faults_per_plan:int -> 'p Config.t -> t list
(** Like {!generate} but each plan composes [faults_per_plan] independent
    faults, sorted ascending by step (several may share a step). The
    recovery campaign's stress schedules: enough simultaneous damage to
    park several regimes — or all of them, forcing a warm reboot.
    Deterministic in [seed]; distinct from the stream {!generate} draws. *)
