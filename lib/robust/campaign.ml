module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Machine = Sep_hw.Machine
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Scenarios = Sep_core.Scenarios
module Abstract_regime = Sep_core.Abstract_regime
module Net = Sep_distributed.Net
module Recover = Sep_recover.Recover
module Prng = Sep_util.Prng
module J = Sep_util.Json

type outcome =
  | Masked
  | Detected_safe
  | Recovered_safe
  | Violating

let pp_outcome ppf = function
  | Masked -> Fmt.string ppf "masked"
  | Detected_safe -> Fmt.string ppf "detected-safe"
  | Recovered_safe -> Fmt.string ppf "recovered-safe"
  | Violating -> Fmt.string ppf "separation-violating"

type case = {
  plan : Fault_plan.t;
  target : Colour.t option;
  outcome : outcome;
  victim_perturbed : bool;
  detections : Sue.kernel_fault list;
  recoveries : Sue.kernel_fault list;
  watchdog_delta : int;
}

type scenario_report = {
  label : string;
  seed : int;
  steps : int;
  watchdog : int option;
  cases : case list;
}

type report = {
  rp_seed : int;
  rp_scenarios : scenario_report list;
}

(* -- Subjects -------------------------------------------------------------- *)

(* The preemptive instance stripped of its quantum: its regimes never
   yield, so without the watchdog the second one would starve forever.
   Faults against this subject exercise the watchdog-forced switch as the
   occasion on which save-area corruption of a starving regime is
   caught. *)
let greedy_watchdog_quantum = 6

let greedy_watchdog =
  let p = Scenarios.preemptive in
  {
    Scenarios.label = "greedy-watchdog";
    cfg = { p.Scenarios.cfg with Config.quantum = None };
    alphabet = p.Scenarios.alphabet;
  }

let catalogue =
  List.map (fun sc -> (sc, None)) Scenarios.all @ [ (greedy_watchdog, Some greedy_watchdog_quantum) ]

let subjects = List.map fst catalogue

(* Deterministic input drip, shared with the CLI drivers: one alphabet
   element every 10 steps, cycling through the non-empty entries. *)
let drip (sc : Scenarios.instance) =
  let alphabet = Array.of_list sc.Scenarios.alphabet in
  fun n ->
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []

(* -- The stepping wrapper -------------------------------------------------- *)

type runner = {
  t : Sue.t;
  mutable schedule : (int * Fault_plan.fault) list;
  mutable pending_drops : int list;  (* devices whose next arrival is lost *)
  mutable stuck : int list;  (* devices dead from their fault onward *)
  mutable dup_after : int list;  (* IRQs to re-assert after this step *)
}

let flip_phys m a bit = Machine.write_phys m a (Machine.read_phys m a lxor (1 lsl bit))

let apply r fault =
  let m = Sue.machine r.t in
  match (fault : Fault_plan.fault) with
  | Mem_flip { colour; offset; bit } ->
    let base, size = Sue.partition_bounds r.t colour in
    flip_phys m (base + (offset mod size)) bit
  | Saved_reg_flip { colour; slot; bit } -> flip_phys m (Sue.save_area_base r.t colour + slot) bit
  | Guard_smash { index } ->
    let guards = Array.of_list (Sue.guard_addrs r.t) in
    flip_phys m guards.(index mod Array.length guards) 7
  | Chan_flip { chan; which; word; bit } -> begin
    match Sue.channel_area r.t chan with
    | None -> ()
    | Some (send_area, recv_area, cap) ->
      let area = match which with Fault_plan.Send_end -> send_area | Fault_plan.Recv_end -> recv_area in
      flip_phys m (area + (word mod (cap + 2))) bit
  end
  | Rx_latch_flip { device; bit } ->
    let data, status = Machine.device_regs m device in
    Machine.set_device_regs m device ~data:(data lxor (1 lsl bit)) ~status
  | Drop_input { device } -> r.pending_drops <- device :: r.pending_drops
  | Spurious_irq { device } -> Machine.raise_irq m device
  | Duplicate_irq { device } -> r.dup_after <- device :: r.dup_after
  | Stuck_device { device } -> r.stuck <- device :: r.stuck
  (* Node-level faults have no meaning against a single kernel; the
     federation driver ({!Sep_fed.Fed}) applies them. Single-kernel plans
     never contain them (no [node_space] is ever passed here). *)
  | Shard_crash _ | Link_partition _ | Frame_tamper _ -> ()

let remove_one x xs =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] xs

let force_stuck r =
  let m = Sue.machine r.t in
  List.iter
    (fun d ->
      let data, _ = Machine.device_regs m d in
      Machine.set_device_regs m d ~data ~status:0)
    r.stuck

(* One wrapped step: due faults strike between instructions (before the
   step), dropped arrivals never reach the latch, dead devices stay dead,
   duplicated IRQs re-assert after the fielding they duplicate. *)
let step r n input =
  let due, rest = List.partition (fun (at, _) -> at <= n) r.schedule in
  r.schedule <- rest;
  List.iter (fun (_, f) -> apply r f) due;
  let input =
    List.filter
      (fun (d, _) ->
        if List.mem d r.stuck then false
        else if List.mem d r.pending_drops then begin
          r.pending_drops <- remove_one d r.pending_drops;
          false
        end
        else true)
      input
  in
  force_stuck r;
  let out = Sue.step r.t input in
  force_stuck r;
  let m = Sue.machine r.t in
  List.iter (fun d -> Machine.raise_irq m d) r.dup_after;
  r.dup_after <- [];
  out

(* -- Observation and comparison -------------------------------------------- *)

type observation = {
  ob_outputs : (int * int list) list;  (* per Tx device, words in order *)
  ob_status : (Colour.t * Abstract_regime.status) list;
  ob_detections : Sue.kernel_fault list;  (* corruption detections *)
  ob_recoveries : Sue.kernel_fault list;  (* restarts and warm reboots *)
  ob_wd_fires : int;
}

(* [hook] is handed the freshly built kernel and returns the per-step
   callback, invoked after every wrapped step — the seam the online
   separability watch attaches through. *)
let observe_run ?watchdog ?recover ?(hook = fun _ () -> ()) (sc : Scenarios.instance) ~steps
    ~plan =
  let t = Sue.build ?watchdog sc.Scenarios.cfg in
  let on_step = hook t in
  let supervisor = Option.map (fun policy -> Recover.create ~policy t) recover in
  let supervise () =
    match supervisor with None -> () | Some sup -> ignore (Recover.tick sup)
  in
  let r =
    {
      t;
      schedule = (match plan with Some (p : Fault_plan.t) -> p.Fault_plan.faults | None -> []);
      pending_drops = [];
      stuck = [];
      dup_after = [];
    }
  in
  let m = Sue.machine t in
  let ndev = Machine.num_devices m in
  let inputs = drip sc in
  (* Flow-controlled delivery: a dripped word queues until its Rx latch is
     free (status 0), so each regime consumes the same word sequence no
     matter how the processor is shared. Without the handshake the
     external world doubles as a clock — parking one regime shifts when
     another samples its latch, and that is the timing channel the paper
     excludes, not a separation violation. *)
  let queues = Array.init ndev (fun _ -> Queue.create ()) in
  let flat = ref [] in
  for n = 0 to steps - 1 do
    List.iter (fun (d, w) -> if d < ndev then Queue.add w queues.(d)) (inputs n);
    let input =
      List.concat
        (List.init ndev (fun d ->
             if (not (Queue.is_empty queues.(d))) && snd (Machine.device_regs m d) = 0 then
               [ (d, Queue.pop queues.(d)) ]
             else []))
    in
    List.iter (fun o -> flat := o :: !flat) (step r n input);
    on_step ();
    supervise ()
  done;
  ignore (Sue.guard_sweep t);
  supervise ();
  (* Three ways: recovery actions (restart, warm reboot), liveness events
     (watchdog fires), corruption detections (everything else, checkpoint
     corruption included). Without a supervisor the recovery bucket is
     empty and the split is exactly the old corrupt/watchdog partition. *)
  let recoveries, rest =
    List.partition
      (function Sue.Regime_restart _ | Sue.Warm_reboot -> true | _ -> false)
      (Sue.drain_faults t)
  in
  let corrupt, wd =
    List.partition (function Sue.Watchdog_expired _ -> false | _ -> true) rest
  in
  let per_dev = Hashtbl.create 8 in
  for d = 0 to ndev - 1 do
    Hashtbl.add per_dev d []
  done;
  List.iter (fun (d, w) -> Hashtbl.replace per_dev d (w :: Hashtbl.find per_dev d)) (List.rev !flat);
  let ob_outputs = List.init ndev (fun d -> (d, List.rev (Hashtbl.find per_dev d))) in
  let ob_status = List.map (fun c -> (c, Sue.regime_status t c)) (Config.colours sc.Scenarios.cfg) in
  ( { ob_outputs; ob_status; ob_detections = corrupt; ob_recoveries = recoveries;
      ob_wd_fires = List.length wd },
    t )

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

(* Order-preserving comparison, step indices deliberately dropped: parking
   or slowing one regime shifts every other regime's timing (the paper
   excludes timing channels), so observing more or fewer words of the
   same sequence is not divergence — different words are. *)
let sequences_diverge a b = not (is_prefix a b || is_prefix b a)

let colour_diverged reference faulty t c =
  List.exists2
    (fun (d, ref_words) (_, got_words) ->
      Colour.equal (Sue.device_owner t d) c && sequences_diverge ref_words got_words)
    reference.ob_outputs faulty.ob_outputs

(* -- Classification -------------------------------------------------------- *)

let classify ~cfg ~reference ~faulty ~t (plan : Fault_plan.t) =
  let target =
    match plan.Fault_plan.faults with
    | (_, f) :: _ -> Fault_plan.target cfg f
    | [] -> None
  in
  (* A multi-fault plan strikes several domains; only divergence of a
     colour targeted by NO fault in the plan is a separation violation.
     [target] stays the first fault's (the reporting key); the union is
     what classification quantifies over. For single-fault plans the two
     coincide. *)
  let targeted c =
    List.exists
      (fun (_, f) ->
        match Fault_plan.target cfg f with Some v -> Colour.equal v c | None -> false)
      plan.Fault_plan.faults
  in
  let colours = Config.colours cfg in
  let perturbed v =
    colour_diverged reference faulty t v
    || List.assoc v faulty.ob_status <> List.assoc v reference.ob_status
  in
  let others_diverged =
    List.exists (fun c -> (not (targeted c)) && colour_diverged reference faulty t c) colours
  in
  let victim_perturbed = List.exists (fun c -> targeted c && perturbed c) colours in
  (* Recovered-safe demands full recovery: a recovery action happened and
     nothing stayed parked. A run where recovery was attempted but some
     regime is still down at the end only earns detected-safe. Without a
     supervisor [ob_recoveries] is empty and this is the old
     classification verbatim. *)
  let parked_at_end =
    List.exists (fun (_, s) -> s = Abstract_regime.Parked) faulty.ob_status
  in
  let outcome =
    if others_diverged then Violating
    else if faulty.ob_recoveries <> [] && not parked_at_end then Recovered_safe
    else if faulty.ob_detections <> [] then Detected_safe
    else Masked
  in
  {
    plan;
    target;
    outcome;
    victim_perturbed;
    detections = faulty.ob_detections;
    recoveries = faulty.ob_recoveries;
    watchdog_delta = faulty.ob_wd_fires - reference.ob_wd_fires;
  }

(* -- Monitored replay ------------------------------------------------------- *)

type monitored = {
  mc_case : case;
  mc_first_violation : (int * Sep_core.Separability.failure) option;
  mc_deep_checks : int;
}

let monitored_case ?watchdog ?recover ?(period = 32) ~steps ~plan (sc : Scenarios.instance) =
  let module Monitor = Sep_core.Monitor in
  let reference, _ = observe_run ?watchdog sc ~steps ~plan:None in
  let watch = ref None in
  let hook t =
    let w = Monitor.watch ~period ~inputs:sc.Scenarios.alphabet t in
    watch := Some w;
    fun () -> Monitor.observe w
  in
  let faulty, t = observe_run ?watchdog ?recover ~hook sc ~steps ~plan:(Some plan) in
  let w = Option.get !watch in
  {
    mc_case = classify ~cfg:sc.Scenarios.cfg ~reference ~faulty ~t plan;
    mc_first_violation = Monitor.watch_first_violation w;
    mc_deep_checks = Monitor.deep_checks w;
  }

(* Scenario seeds derive from the campaign seed and the label so each
   scenario's plans are reproducible in isolation. *)
let scenario_seed seed label =
  String.fold_left (fun acc ch -> ((acc * 31) + Char.code ch) land 0x3fffffff) seed label

let run_scenario ?watchdog ?recover ?(multi = 0) ~seed ~steps ~count (sc : Scenarios.instance) =
  (* The reference is fault-free, so nothing ever parks and a supervisor
     would have nothing to do: run it bare. *)
  let reference, _ = observe_run ?watchdog sc ~steps ~plan:None in
  let plans =
    Fault_plan.generate ~seed ~steps ~count sc.Scenarios.cfg
    @ (if multi > 0 then
         Fault_plan.generate_multi ~seed ~steps ~count:multi ~faults_per_plan:3
           sc.Scenarios.cfg
       else [])
  in
  let run_case plan =
    let faulty, t = observe_run ?watchdog ?recover sc ~steps ~plan:(Some plan) in
    classify ~cfg:sc.Scenarios.cfg ~reference ~faulty ~t plan
  in
  { label = sc.Scenarios.label; seed; steps; watchdog; cases = List.map run_case plans }

(* The parallel campaign driver. Every fault plan is replayed against an
   isolated fresh kernel and classified against its scenario's fault-free
   reference — embarrassingly parallel, and fully deterministic: plan
   generation is seeded and sequential, replay consumes no randomness, so
   sharding cases over domains and merging them back in canonical
   (scenario-major, plan-minor) order is bit-identical to [jobs = 1].
   Phase one runs the per-scenario references in parallel; phase two the
   flattened case list. *)
let run_catalogue ?recover ?(multi = 0) ?jobs ~seed ~steps ~count () =
  let scenarios =
    List.map (fun (sc, wd) -> (sc, wd, scenario_seed seed sc.Scenarios.label)) catalogue
  in
  let references =
    Sep_par.Par.map ?jobs
      (fun (sc, wd, _) -> fst (observe_run ?watchdog:wd sc ~steps ~plan:None))
      scenarios
  in
  let work =
    List.concat_map
      (fun ((sc, wd, sseed), reference) ->
        let plans =
          Fault_plan.generate ~seed:sseed ~steps ~count sc.Scenarios.cfg
          @ (if multi > 0 then
               Fault_plan.generate_multi ~seed:sseed ~steps ~count:multi ~faults_per_plan:3
                 sc.Scenarios.cfg
             else [])
        in
        List.map (fun plan -> (sc, wd, reference, plan)) plans)
      (List.combine scenarios references)
  in
  let cases =
    Sep_par.Par.map ?jobs
      (fun (sc, wd, reference, plan) ->
        let faulty, t = observe_run ?watchdog:wd ?recover sc ~steps ~plan:(Some plan) in
        (sc.Scenarios.label, classify ~cfg:sc.Scenarios.cfg ~reference ~faulty ~t plan))
      work
  in
  {
    rp_seed = seed;
    rp_scenarios =
      List.map
        (fun (sc, wd, sseed) ->
          {
            label = sc.Scenarios.label;
            seed = sseed;
            steps;
            watchdog = wd;
            cases =
              List.filter_map
                (fun (label, case) ->
                  if String.equal label sc.Scenarios.label then Some case else None)
                cases;
          })
        scenarios;
  }

let run ?jobs ~seed ~steps ~count () = run_catalogue ?jobs ~seed ~steps ~count ()

let run_recovery ?(policy = Recover.default_policy) ?jobs ~seed ~steps ~count () =
  run_catalogue ~recover:policy ~multi:(max 1 (count / 2)) ?jobs ~seed ~steps ~count ()

let totals report =
  List.fold_left
    (fun (m, d, r, v) sr ->
      List.fold_left
        (fun (m, d, r, v) case ->
          match case.outcome with
          | Masked -> (m + 1, d, r, v)
          | Detected_safe -> (m, d + 1, r, v)
          | Recovered_safe -> (m, d, r + 1, v)
          | Violating -> (m, d, r, v + 1))
        (m, d, r, v) sr.cases)
    (0, 0, 0, 0) report.rp_scenarios

let holds report =
  let _, _, _, v = totals report in
  v = 0

(* -- Reporting ------------------------------------------------------------- *)

let detection_to_json f =
  match (f : Sue.kernel_fault) with
  | Sue.Save_area_corrupt c -> J.String ("save-area-corrupt:" ^ Colour.name c)
  | Sue.Guard_breach a -> J.String (Fmt.str "guard-breach:%04x" a)
  | Sue.Channel_head_corrupt a -> J.String (Fmt.str "channel-head-corrupt:%04x" a)
  | Sue.Watchdog_expired c -> J.String ("watchdog-expired:" ^ Colour.name c)
  | Sue.Kernel_panic reason -> J.String ("kernel-panic:" ^ reason)
  | Sue.Regime_restart c -> J.String ("regime-restart:" ^ Colour.name c)
  | Sue.Checkpoint_corrupt c -> J.String ("checkpoint-corrupt:" ^ Colour.name c)
  | Sue.Warm_reboot -> J.String "warm-reboot"

let case_to_json sr case =
  J.Obj
    [
      ("kind", J.String "fault-case");
      ("scenario", J.String sr.label);
      ("seed", J.Int sr.seed);
      ("steps", J.Int sr.steps);
      ("plan", Fault_plan.to_json case.plan);
      ("target", match case.target with Some c -> J.String (Colour.name c) | None -> J.Null);
      ("outcome", J.String (Fmt.str "%a" pp_outcome case.outcome));
      ("victim_perturbed", J.Bool case.victim_perturbed);
      ("detections", J.List (List.map detection_to_json case.detections));
      ("recoveries", J.List (List.map detection_to_json case.recoveries));
      ("watchdog_delta", J.Int case.watchdog_delta);
    ]

let summary_json report =
  let masked, detected, recovered, violating = totals report in
  J.Obj
    [
      ("kind", J.String "campaign-summary");
      ("seed", J.Int report.rp_seed);
      ("scenarios", J.Int (List.length report.rp_scenarios));
      ("cases", J.Int (masked + detected + recovered + violating));
      ("masked", J.Int masked);
      ("detected_safe", J.Int detected);
      ("recovered_safe", J.Int recovered);
      ("violating", J.Int violating);
      ("holds", J.Bool (holds report));
    ]

let report_to_jsonl report =
  let buf = Buffer.create 4096 in
  List.iter
    (fun sr ->
      List.iter
        (fun case ->
          J.to_buffer buf (case_to_json sr case);
          Buffer.add_char buf '\n')
        sr.cases)
    report.rp_scenarios;
  J.to_buffer buf (summary_json report);
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* -- The distributed baseline ---------------------------------------------- *)

type dist_report = {
  dr_cases : int;
  dr_affected : int;
  dr_contained : bool;
}

(* A -> B over one physical wire, C isolated. Tampering with the wire can
   reach only what the wire connects: B's deliveries. A and C have no
   physical path from the fault — that is the containment the kernel's
   campaign above has to earn with checksums and guards. *)
let dist_topology () =
  let a = Colour.make "A" and b = Colour.make "B" and c = Colour.make "C" in
  let sender =
    Component.stateless ~name:"sender" (function
      | Component.External m -> [ Component.Send (0, m) ]
      | Component.Recv _ -> [])
  in
  let sink =
    Component.stateless ~name:"sink" (function
      | Component.Recv (_, m) -> [ Component.Output m ]
      | Component.External _ -> [])
  in
  let loner =
    Component.stateless ~name:"loner" (function
      | Component.External m -> [ Component.Output m ]
      | Component.Recv _ -> [])
  in
  (Topology.make ~parts:[ (a, sender); (b, sink); (c, loner) ] ~wires:[ (a, b, 2) ], a, b, c)

let dist_run ~steps ~tamper_at ~mode =
  let topo, a, _b, c = dist_topology () in
  let net = Net.build topo in
  let affected = ref 0 in
  for n = 0 to steps - 1 do
    (match tamper_at with
    | Some at when at = n ->
      affected :=
        !affected
        + Net.tamper net ~wire:0 (fun msg ->
              match mode with
              | `Destroy -> None
              | `Scramble -> Some (msg ^ "!"))
    | _ -> ());
    Net.step net ~externals:(if n mod 2 = 0 then [ (a, Fmt.str "m%d" n); (c, Fmt.str "c%d" n) ] else [])
  done;
  (Net.trace net a, Net.trace net c, !affected)

let run_distributed ~seed ~steps ~count =
  let rng = Prng.create seed in
  let ref_a, ref_c, _ = dist_run ~steps ~tamper_at:None ~mode:`Destroy in
  let equal_trace = List.equal Component.equal_obs in
  let one _ =
    let at = Prng.int rng steps in
    let mode = if Prng.bool rng then `Destroy else `Scramble in
    let got_a, got_c, affected = dist_run ~steps ~tamper_at:(Some at) ~mode in
    (affected, equal_trace ref_a got_a && equal_trace ref_c got_c)
  in
  let results = List.init count one in
  {
    dr_cases = count;
    dr_affected = List.fold_left (fun acc (n, _) -> acc + n) 0 results;
    dr_contained = List.for_all snd results;
  }

let dist_to_json d =
  J.Obj
    [
      ("kind", J.String "distributed-baseline");
      ("cases", J.Int d.dr_cases);
      ("affected", J.Int d.dr_affected);
      ("contained", J.Bool d.dr_contained);
    ]
