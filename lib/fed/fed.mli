(** Fail-operational kernel federation: multi-shard SUE with crash and
    partition tolerance.

    The paper's central move is to treat one shared machine {e as if} it
    were a physically distributed system. This module composes the two
    artefacts the repository already has — the machine-level separation
    kernel ({!Sep_core.Sue}) and the physically distributed substrate
    ({!Sep_distributed.Net}) — into the configuration real secure systems
    actually ship: a {e federation} of shard kernels, each hosting a
    subset of the regimes, with the inter-shard channels carried over
    reliable go-back-N links while local channels stay in-kernel.

    {b Sharding.} Every shard is built from the full global configuration
    with non-hosted regimes replaced by an inert yield loop, so physical
    layout, global device ids and channel areas agree across shards (and
    with the monolithic ideal, which is what {!Sep_check.Diff} compares
    against). An inter-shard channel is {e cut} on every shard: its send
    end is drained by the source node's NIC onto a dedicated wire and its
    receive end — the wire-cutting argument's "never-fed second buffer" —
    is fed by the destination NIC. Frames carry an end-to-end checksum:
    the link protocol recovers loss; the checksum rejects forgery.

    {b Supervision.} A control node receives deterministic heartbeats
    from every shard. Silence past the timeout declares the shard down;
    an out-of-band power probe separates a {e crashed} node — warm-reboot
    it from its regimes' last checksummed checkpoints
    ({!Sep_core.Sue.warm_reboot}), within a node-reboot budget extending
    {!Sep_recover.Recover}'s discipline one level up — from a
    {e partitioned} one, whose regimes are parked at the federation
    boundary (external input held, event audited) until its heartbeats
    return. Because every checkpoint sits on an output-commit fence,
    crash-and-replay never duplicates or loses an observable effect:
    during any single-shard outage every surviving shard's per-colour
    trace is byte-identical to the fault-free run. *)

module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Abstract_regime = Sep_core.Abstract_regime
module Net = Sep_distributed.Net
module Recover = Sep_recover.Recover
module Fault_plan = Sep_robust.Fault_plan

(** {1 Specs} *)

type spec = {
  fs_label : string;
  fs_cfg : Isa.stmt list Config.t;
      (** the global configuration, channels {e uncut} — also the
          monolithic ideal the federation is differenced against *)
  fs_placement : (Colour.t * int) list;  (** colour -> shard, total on the regimes *)
  fs_alphabet : Sue.input list;  (** global input alphabet (global device ids) *)
}

val nshards_of : spec -> int
val nlinks_of : spec -> int
(** Physical wires: one per inter-shard channel (in channel order), then
    one heartbeat line per shard into the control node. *)

val hosted : spec -> int -> Colour.t list
(** The colours a shard hosts, in regime order. *)

val node_space : spec -> Fault_plan.node_space
(** The node-fault space this federation offers, for
    {!Fault_plan.generate}. *)

val wire_receiver : spec -> int -> Colour.t option
(** The colour whose words a physical wire carries ([None] for heartbeat
    lines) — the target-set computation for link faults: severing or
    forging a line can perturb at most its receiver. *)

val shard_config : spec -> int -> Isa.stmt list Config.t
(** The configuration one shard runs: full global layout, non-hosted
    regimes inert, inter-shard channels cut. *)

(** {1 Policy} *)

type policy = {
  fp_hb_period : int;  (** heartbeat every this many steps *)
  fp_hb_timeout : int;  (** silence beyond this declares a shard down *)
  fp_max_node_reboots : int;  (** whole-node failover budget, per shard *)
  fp_monitor_period : int;  (** online monitor deep-check period *)
  fp_regime : Recover.policy;  (** the per-shard regime-level supervisor *)
}

val default_policy : policy
(** period 2, timeout 12, 2 node reboots, monitor period 64,
    {!Recover.default_policy} per shard. *)

(** {1 Node events}

    The federation's audit trail, one level above the kernels' own audit
    logs: everything the supervisor saw and did, with the step it
    happened at. *)

type node_event =
  | Node_crashed of int  (** fault injection: the shard power-failed *)
  | Node_down_detected of int  (** heartbeat timeout expired *)
  | Node_failover of int * Colour.t list  (** warm-rebooted; these colours revived *)
  | Node_abandoned of int  (** node-reboot budget exhausted; stays dark *)
  | Node_quarantined of int * Colour.t list
      (** unreachable but powered: these colours parked at the boundary *)
  | Node_rejoined of int  (** heartbeats returned; quarantine lifted *)
  | Link_down of int  (** fault injection: wire partitioned *)
  | Link_healed of int  (** partition window elapsed *)
  | Link_tampered of int * int  (** fault injection: wire, frames forged *)
  | Frame_rejected of int
      (** a forged frame failed its checksum at this shard (-1: control node) *)

val pp_node_event : Format.formatter -> node_event -> unit
val node_event_to_json : node_event -> Sep_util.Json.t

(** {1 Building and running} *)

type t

val build : ?policy:policy -> ?plan:Fault_plan.t -> ?monitor:bool -> spec -> t
(** Assemble the federation: one {!Sue} kernel and one
    {!Recover} supervisor per shard, the inter-shard {!Net} (always with
    a zero-rate link model, so every line runs the reliable go-back-N
    protocol and partitions cost latency, never words), and the heartbeat
    supervisor. [plan] schedules faults — node-level ones
    ({!Fault_plan.Shard_crash}, {!Fault_plan.Link_partition},
    {!Fault_plan.Frame_tamper}) applied by this driver, machine-level
    ones applied at the hosting shard's kernel. [monitor] attaches an
    online separability watch ({!Sep_core.Monitor.watch}) to every shard.
    The watch rides its node: a power failure kills it with the kernel,
    and failover starts a fresh one — its bucket tables must not span
    the reboot, or post-rollback states would be compared against the
    discarded pre-crash timeline. A dead watch's deep-check count and
    any violation it had already flagged still reach {!finish}.
    Raises [Invalid_argument] on an invalid configuration, a placement
    missing a colour, or a heartbeat timeout below the period. *)

val step : t -> unit
(** One federation step: due heals and faults; NIC egress (channel-end
    drain plus heartbeat) for powered shards; one {!Net.step}; delivery
    parsing (checksum validation, heartbeat bookkeeping); ring injection;
    flow-controlled external input, one {!Sue.step}, a {!Recover.tick}
    and a monitor observation per powered shard; then the supervisor's
    timeout check. *)

val run : t -> steps:int -> unit

(** {1 Introspection} *)

val shards : t -> int
val links : t -> int
val kernel : t -> shard:int -> Sue.t
val net : t -> Net.t
val powered : t -> shard:int -> bool

(** The supervisor's view of one shard. *)
type shard_state =
  | Up
  | Quarantined
  | Abandoned

val shard_state : t -> shard:int -> shard_state
val step_no : t -> int
val events : t -> (int * node_event) list
val device_owner_colour : t -> int -> Colour.t

(** {1 Service-layer doors}

    {!Sep_svc} drives request/response traffic through the federation via
    these: words queued here enter the same flow-controlled per-device
    input path the drip alphabet uses (one word per step per free Rx
    latch, held at the boundary while the hosting shard is quarantined),
    and Tx words drain in device-step order. *)

val push_input : t -> device:int -> int list -> unit
(** Queue words (masked to machine width) for a global device's external
    input. Raises [Invalid_argument] on an unknown device. *)

val take_outputs : t -> (int * int) list
(** Drain the (device, word) outputs emitted since the last call, oldest
    first. Draining does not affect {!finish}'s per-device transcript. *)

val monitor_reports : t -> (int * Sep_core.Separability.report) list
(** Per-shard online monitor reports, live watches first, then watches
    retired at failovers; empty when built without [monitor]. *)

(** {1 Observation} *)

type observation = {
  fob_outputs : (int * int list) list;  (** per global device, words in order *)
  fob_status : (Colour.t * Abstract_regime.status) list;  (** from the hosting shard *)
  fob_detections : Sue.kernel_fault list;  (** corruption detections, all shards *)
  fob_recoveries : Sue.kernel_fault list;  (** restarts and warm reboots, all shards *)
  fob_wd_fires : int;
  fob_events : (int * node_event) list;  (** the supervisor's audit trail *)
  fob_frame_rejects : int;  (** frames rejected by the end-to-end checksum *)
  fob_delivered : int;  (** channel words carried shard-to-shard *)
  fob_abandoned_nodes : int list;
  fob_gave_up : Colour.t list;  (** regime-level supervisor abandonments *)
  fob_stats : Net.link_stats;
  fob_deep_checks : int;  (** monitor observations escalated, all shards *)
  fob_first_violation : (int * int) option;
      (** earliest online separability violation: (shard, watch step);
          [None] when every shard stayed separable *)
}

val finish : t -> observation
(** Final guard sweeps and supervisor ticks on powered shards, then the
    collected observation (audit logs drained). *)
