(** Federation scenarios: global configurations with shard placements.

    Both keep every output stream single-source and every receiver
    single-input, so per-colour observable traces are comparable word for
    word against the monolithic ideal and across fault injections. *)

val pair : Fed.spec
(** Two shards, one inter-shard link: RED (node 0, Rx + Tx) echoes its
    input words and forwards them over the federation to BLACK (node 1,
    Tx), the split form of the pipeline scenario. *)

val ring : Fed.spec
(** Three shards, six regimes, a local channel on node 0 and three
    inter-shard links closing a ring through every node — the smallest
    federation where a single node outage leaves two shards that must
    keep running unperturbed. *)

val all : Fed.spec list

val find : string -> Fed.spec option
(** Look a spec up by [fs_label]. *)
