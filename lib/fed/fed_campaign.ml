module Colour = Sep_model.Colour
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Abstract_regime = Sep_core.Abstract_regime
module Par = Sep_par.Par
module Fault_plan = Sep_robust.Fault_plan
module Campaign = Sep_robust.Campaign
module J = Sep_util.Json

type case = {
  fc_plan : Fault_plan.t;
  fc_targets : Colour.t list;
  fc_outcome : Campaign.outcome;
  fc_victim_perturbed : bool;
  fc_detections : int;
  fc_recoveries : int;
  fc_frame_rejects : int;
  fc_node_events : int;
  fc_deep_checks : int;
  fc_first_violation : (int * int) option;
}

type report = {
  fr_label : string;
  fr_seed : int;
  fr_steps : int;
  fr_cases : case list;
}

(* -- Target sets ------------------------------------------------------------ *)

(* A node-level fault targets a SET of colours, computed from the
   placement and the channel graph. Unlike the single-kernel campaign —
   whose scenarios run with every channel cut, so nothing a fault
   corrupts can travel — the federation's channels actually DELIVER,
   and a corrupted word legitimately flows to whoever the configuration
   says may hear from the victim. Rushby's property is channel control,
   not silence: so the allowed-perturbation set of a data-corrupting
   fault is the victim's downstream closure over declared channels, and
   a violation is divergence of any colour the faulted domain has NO
   declared path to.

   Delay-only faults stay un-closed: a crashed shard can perturb what it
   hosts (its downstream hearers see the same words later — the
   output-commit checkpoints guarantee replay changes nothing), and a
   severed wire targets NOBODY, because the reliable links owe delay-only
   semantics outright. Forged frames destroy words, so tampering closes
   over the wire receiver's downstream. *)
let closure cfg seeds =
  let rec go acc = function
    | [] -> acc
    | c :: rest ->
      let next =
        List.filter_map
          (fun ch ->
            if
              Colour.equal ch.Config.sender c
              && not (List.exists (Colour.equal ch.Config.receiver) acc)
            then Some ch.Config.receiver
            else None)
          cfg.Config.channels
      in
      go (next @ acc) (next @ rest)
  in
  go seeds seeds

let targets_of spec (plan : Fault_plan.t) =
  let nshards = Fed.nshards_of spec and nlinks = Fed.nlinks_of spec in
  let cfg = spec.Fed.fs_cfg in
  let of_fault f =
    match (f : Fault_plan.fault) with
    | Shard_crash { shard } -> Fed.hosted spec (shard mod nshards)
    | Link_partition _ -> []
    | Frame_tamper { link } ->
      closure cfg (Option.to_list (Fed.wire_receiver spec (link mod nlinks)))
    | f -> closure cfg (Option.to_list (Fault_plan.target cfg f))
  in
  List.sort_uniq Colour.compare (List.concat_map (fun (_, f) -> of_fault f) plan.Fault_plan.faults)

(* -- Comparison ------------------------------------------------------------- *)

let rec is_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: a', y :: b' -> x = y && is_prefix a' b'

let sequences_diverge a b = not (is_prefix a b || is_prefix b a)

let colour_diverged t reference faulty c =
  List.exists2
    (fun (d, ref_words) (_, got_words) ->
      Colour.equal (Fed.device_owner_colour t d) c && sequences_diverge ref_words got_words)
    reference.Fed.fob_outputs faulty.Fed.fob_outputs

(* The federation's "did the system notice" evidence: kernel-level
   corruption detections, checksum-rejected frames, and the supervisor
   seeing a node down or quarantined. Injection events (Node_crashed,
   Link_down, Link_tampered) and routine heals are not detections. *)
let noticed (ob : Fed.observation) =
  ob.Fed.fob_detections <> []
  || ob.Fed.fob_frame_rejects > 0
  || List.exists
       (fun (_, e) ->
         match e with
         | Fed.Node_down_detected _ | Fed.Node_quarantined _ | Fed.Frame_rejected _ -> true
         | _ -> false)
       ob.Fed.fob_events

let recovered (ob : Fed.observation) =
  ob.Fed.fob_recoveries <> []
  || List.exists
       (fun (_, e) ->
         match e with Fed.Node_failover _ | Fed.Node_rejoined _ -> true | _ -> false)
       ob.Fed.fob_events

let classify t spec ~reference ~faulty (plan : Fault_plan.t) =
  let targets = targets_of spec plan in
  let targeted c = List.exists (Colour.equal c) targets in
  let colours = Config.colours spec.Fed.fs_cfg in
  let others_diverged =
    List.exists (fun c -> (not (targeted c)) && colour_diverged t reference faulty c) colours
  in
  let perturbed c =
    colour_diverged t reference faulty c
    || List.assoc c faulty.Fed.fob_status <> List.assoc c reference.Fed.fob_status
  in
  let victim_perturbed = List.exists (fun c -> targeted c && perturbed c) colours in
  let parked_at_end =
    List.exists (fun (_, s) -> s = Abstract_regime.Parked) faulty.Fed.fob_status
  in
  let outcome : Campaign.outcome =
    if others_diverged then Violating
    else if recovered faulty && not parked_at_end then Recovered_safe
    else if noticed faulty then Detected_safe
    else Masked
  in
  {
    fc_plan = plan;
    fc_targets = targets;
    fc_outcome = outcome;
    fc_victim_perturbed = victim_perturbed;
    fc_detections = List.length faulty.Fed.fob_detections;
    fc_recoveries = List.length faulty.Fed.fob_recoveries;
    fc_frame_rejects = faulty.Fed.fob_frame_rejects;
    fc_node_events = List.length faulty.Fed.fob_events;
    fc_deep_checks = faulty.Fed.fob_deep_checks;
    fc_first_violation = faulty.Fed.fob_first_violation;
  }

(* -- Plans ------------------------------------------------------------------ *)

(* Directed plans guarantee chaos coverage whatever the seed draws: one
   crash per shard, one partition and one tamper per physical wire. *)
let directed spec ~steps =
  let at = max 1 (steps / 3) in
  let shards = List.init (Fed.nshards_of spec) Fun.id in
  let wires = List.init (Fed.nlinks_of spec) Fun.id in
  List.map
    (fun s ->
      {
        Fault_plan.label = Fmt.str "crash-node%d@%d" s at;
        faults = [ (at, Fault_plan.Shard_crash { shard = s }) ];
      })
    shards
  @ List.map
      (fun w ->
        {
          Fault_plan.label = Fmt.str "partition-wire%d@%d" w at;
          faults = [ (at, Fault_plan.Link_partition { link = w; window = 10 + w }) ];
        })
      wires
  @ List.map
      (fun w ->
        {
          Fault_plan.label = Fmt.str "tamper-wire%d@%d" w at;
          faults = [ (at, Fault_plan.Frame_tamper { link = w }) ];
        })
      wires

let plans spec ~seed ~steps ~count =
  let nodes = Fed.node_space spec in
  directed spec ~steps
  @ Fault_plan.generate ~nodes ~seed ~steps ~count spec.Fed.fs_cfg
  @ Fault_plan.generate_multi ~nodes ~seed:(seed + 1) ~steps ~count:(count / 2)
      ~faults_per_plan:2 spec.Fed.fs_cfg

(* -- The campaign ----------------------------------------------------------- *)

let run ?jobs ?(monitor = true) ?policy ~seed ~steps ~count spec =
  let reference =
    let t = Fed.build ?policy spec in
    Fed.run t ~steps;
    Fed.finish t
  in
  let all_plans = plans spec ~seed ~steps ~count in
  let fr_cases =
    Par.map ?jobs
      (fun plan ->
        let t = Fed.build ?policy ~plan ~monitor spec in
        Fed.run t ~steps;
        let faulty = Fed.finish t in
        classify t spec ~reference ~faulty plan)
      all_plans
  in
  { fr_label = spec.Fed.fs_label; fr_seed = seed; fr_steps = steps; fr_cases }

let holds r =
  List.for_all (fun c -> c.fc_outcome <> Campaign.Violating) r.fr_cases

let monitor_clean r = List.for_all (fun c -> c.fc_first_violation = None) r.fr_cases

let totals r =
  List.fold_left
    (fun (m, d, rc, v) c ->
      match c.fc_outcome with
      | Campaign.Masked -> (m + 1, d, rc, v)
      | Campaign.Detected_safe -> (m, d + 1, rc, v)
      | Campaign.Recovered_safe -> (m, d, rc + 1, v)
      | Campaign.Violating -> (m, d, rc, v + 1))
    (0, 0, 0, 0) r.fr_cases

let case_to_json r c =
  J.Obj
    [
      ("kind", J.String "fed-case");
      ("scenario", J.String r.fr_label);
      ("seed", J.Int r.fr_seed);
      ("steps", J.Int r.fr_steps);
      ("plan", Fault_plan.to_json c.fc_plan);
      ("targets", J.List (List.map (fun t -> J.String (Colour.name t)) c.fc_targets));
      ("outcome", J.String (Fmt.str "%a" Campaign.pp_outcome c.fc_outcome));
      ("victim_perturbed", J.Bool c.fc_victim_perturbed);
      ("detections", J.Int c.fc_detections);
      ("recoveries", J.Int c.fc_recoveries);
      ("frame_rejects", J.Int c.fc_frame_rejects);
      ("node_events", J.Int c.fc_node_events);
      ("deep_checks", J.Int c.fc_deep_checks);
      ( "first_violation",
        match c.fc_first_violation with
        | None -> J.Null
        | Some (shard, step) -> J.Obj [ ("shard", J.Int shard); ("step", J.Int step) ] );
    ]

let summary_json r =
  let m, d, rc, v = totals r in
  J.Obj
    [
      ("kind", J.String "fed-campaign-summary");
      ("scenario", J.String r.fr_label);
      ("seed", J.Int r.fr_seed);
      ("steps", J.Int r.fr_steps);
      ("cases", J.Int (List.length r.fr_cases));
      ("masked", J.Int m);
      ("detected_safe", J.Int d);
      ("recovered_safe", J.Int rc);
      ("violating", J.Int v);
      ("holds", J.Bool (holds r));
      ("monitor_clean", J.Bool (monitor_clean r));
    ]

let report_to_jsonl r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      Buffer.add_string buf (J.to_string (case_to_json r c));
      Buffer.add_char buf '\n')
    r.fr_cases;
  Buffer.add_string buf (J.to_string (summary_json r));
  Buffer.add_char buf '\n';
  Buffer.contents buf
