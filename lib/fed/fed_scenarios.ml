module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config

(* Register conventions follow {!Sep_core.Scenarios}: r6 = device base,
   r5 = comparison scratch, r0/r1/r2 = trap arguments and results, r4 =
   the word in flight across a send-retry loop. Senders RETRY a full
   SEND (yielding between attempts) instead of dropping the word: an
   inter-shard channel's send end is only emptied when the NIC drains
   it, so backpressure must park the sender, not lose data — and on the
   monolithic ideal the same loop simply waits for the receiver. *)

let device_base = [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)) ]

(* SEND r4 on channel [ch], yielding until the kernel accepts it. *)
let send_retry ~ch ~label ~next =
  [
    Isa.Label label;
    Isa.Instr (Isa.Loadi (0, ch));
    Isa.Instr (Isa.Mov (1, 4));
    Isa.Instr (Isa.Trap 1);
    Isa.Instr (Isa.Loadi (5, 1));
    Isa.Instr (Isa.Cmp (2, 5));
    Isa.Branch_eq next;
    Isa.Instr (Isa.Trap 0);
    Isa.Branch label;
  ]

(* Poll own Rx (slot 0); on a word, forward it down [ch]. *)
let rx_to_chan ~ch ~drain =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "idle";
      Isa.Instr (Isa.Load (4, 6, 0));
    ]
  @ send_retry ~ch ~label:"send" ~next:"idle"
  @ [ Isa.Label "idle" ]
  @ (match drain with
    | None -> []
    | Some dch -> [ Isa.Instr (Isa.Loadi (0, dch)); Isa.Instr (Isa.Trap 2) ])
  @ [ Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

(* Poll channel [ch]; emit every received word on own Tx (slot 0). *)
let chan_to_tx ~ch =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (0, ch));
      Isa.Instr (Isa.Trap 2);
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Cmp (2, 5));
      Isa.Branch_ne "yield";
      Isa.Instr (Isa.Store (1, 6, 0));
      Isa.Label "yield";
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]

(* -- fed-pair: the pipeline split across two nodes -------------------------- *)

(* RED (node 0) reads its Rx, echoes each word to its own Tx and forwards
   it down channel 0; BLACK (node 1) emits every channel word on the
   network Tx. One inter-shard link, every output stream single-source. *)
let pair_red =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "idle";
      Isa.Instr (Isa.Load (4, 6, 0));
      Isa.Instr (Isa.Store (4, 6, 2));
    ]
  @ send_retry ~ch:0 ~label:"send" ~next:"idle"
  @ [ Isa.Label "idle"; Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

let pair =
  let cfg =
    Config.make
      ~regimes:
        [
          {
            Config.colour = Colour.red;
            part_size = 28;
            program = pair_red;
            devices = [ Machine.Rx; Machine.Tx ];
          };
          {
            Config.colour = Colour.black;
            part_size = 24;
            program = chan_to_tx ~ch:0;
            devices = [ Machine.Tx ];
          };
        ]
      ~channels:[ (Colour.red, Colour.black, 2) ]
      ()
  in
  {
    Fed.fs_label = "fed-pair";
    fs_cfg = cfg;
    fs_placement = [ (Colour.red, 0); (Colour.black, 1) ];
    fs_alphabet = [ []; [ (0, 1) ]; [ (0, 2) ]; [ (0, 3) ] ];
  }

(* -- fed-ring: six regimes over three nodes --------------------------------- *)

(* Node 0: RED reads its Rx and forwards down the LOCAL channel 0 to
   ORANGE (the in-kernel path the federation must leave untouched), and
   drains channel 3 arriving from GREY across the ring. ORANGE emits
   each word on its Tx and relays word+1 down channel 1 to GREEN.
   Node 1: GREEN emits channel-1 words on its Tx; BLUE reads its own Rx
   and forwards down channel 2. Node 2: VIOLET emits channel-2 words on
   its Tx; GREY reads its own Rx and forwards down channel 3 back to
   RED. Three inter-shard links close a ring through every node; every
   receiver has a single source, so per-colour traces are comparable
   word for word. *)
let orange = Colour.make "ORANGE"
let blue = Colour.make "BLUE"
let violet = Colour.make "VIOLET"
let grey = Colour.make "GREY"

let ring_orange =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (0, 0));
      Isa.Instr (Isa.Trap 2);
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Cmp (2, 5));
      Isa.Branch_ne "yield";
      Isa.Instr (Isa.Store (1, 6, 0));
      Isa.Instr (Isa.Mov (4, 1));
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Add (4, 5));
    ]
  @ send_retry ~ch:1 ~label:"relay" ~next:"yield"
  @ [ Isa.Label "yield"; Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

let ring =
  let cfg =
    Config.make
      ~regimes:
        [
          {
            Config.colour = Colour.red;
            part_size = 30;
            program = rx_to_chan ~ch:0 ~drain:(Some 3);
            devices = [ Machine.Rx ];
          };
          {
            Config.colour = orange;
            part_size = 30;
            program = ring_orange;
            devices = [ Machine.Tx ];
          };
          { Config.colour = Colour.green; part_size = 24; program = chan_to_tx ~ch:1;
            devices = [ Machine.Tx ] };
          {
            Config.colour = blue;
            part_size = 28;
            program = rx_to_chan ~ch:2 ~drain:None;
            devices = [ Machine.Rx ];
          };
          { Config.colour = violet; part_size = 24; program = chan_to_tx ~ch:2;
            devices = [ Machine.Tx ] };
          {
            Config.colour = grey;
            part_size = 28;
            program = rx_to_chan ~ch:3 ~drain:None;
            devices = [ Machine.Rx ];
          };
        ]
      ~channels:
        [
          (Colour.red, orange, 2); (* local to node 0 *)
          (orange, Colour.green, 2); (* node 0 -> node 1 *)
          (blue, violet, 2); (* node 1 -> node 2 *)
          (grey, Colour.red, 2); (* node 2 -> node 0 *)
        ]
      ()
  in
  {
    Fed.fs_label = "fed-ring";
    fs_cfg = cfg;
    fs_placement =
      [
        (Colour.red, 0); (orange, 0); (Colour.green, 1); (blue, 1); (violet, 2); (grey, 2);
      ];
    (* Global devices: 0 RED Rx, 1 ORANGE Tx, 2 GREEN Tx, 3 BLUE Rx,
       4 VIOLET Tx, 5 GREY Rx. *)
    fs_alphabet = [ []; [ (0, 1) ]; [ (0, 2) ]; [ (3, 5) ]; [ (3, 6) ]; [ (5, 9) ] ];
  }

let all = [ pair; ring ]
let find label = List.find_opt (fun s -> s.Fed.fs_label = label) all
