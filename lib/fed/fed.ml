module Colour = Sep_model.Colour
module Component = Sep_model.Component
module Topology = Sep_model.Topology
module Machine = Sep_hw.Machine
module Isa = Sep_hw.Isa
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Monitor = Sep_core.Monitor
module Abstract_regime = Sep_core.Abstract_regime
module Net = Sep_distributed.Net
module Recover = Sep_recover.Recover
module Fault_plan = Sep_robust.Fault_plan
module J = Sep_util.Json

(* -- Specs ------------------------------------------------------------------ *)

type spec = {
  fs_label : string;
  fs_cfg : Isa.stmt list Config.t;
  fs_placement : (Colour.t * int) list;
  fs_alphabet : Sue.input list;
}

let nshards_of spec = List.fold_left (fun acc (_, s) -> max acc (s + 1)) 1 spec.fs_placement

let shard_of_spec spec c =
  match List.assoc_opt c spec.fs_placement with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Fed: colour %a has no shard in the placement" Colour.pp c)

let hosted spec s =
  List.filter_map
    (fun r -> if shard_of_spec spec r.Config.colour = s then Some r.Config.colour else None)
    spec.fs_cfg.Config.regimes

(* Inter-shard channels in channel order: these are the federation's data
   links, one physical wire each (the per-channel wire keeps each
   channel's words on their own FIFO line, as the distributed conception
   draws it). *)
let inter_channels spec =
  List.filter
    (fun ch -> shard_of_spec spec ch.Config.sender <> shard_of_spec spec ch.Config.receiver)
    spec.fs_cfg.Config.channels

(* Physical wires: one per inter-shard channel, then one heartbeat line
   per shard into the control node. *)
let nlinks_of spec = List.length (inter_channels spec) + nshards_of spec

let node_space spec =
  { Fault_plan.ns_shards = nshards_of spec; ns_links = nlinks_of spec }

let wire_receiver spec w =
  match List.nth_opt (inter_channels spec) w with
  | Some ch -> Some ch.Config.receiver
  | None -> None (* a heartbeat line: control plane, no regime's words *)

(* -- Policy ----------------------------------------------------------------- *)

type policy = {
  fp_hb_period : int;
  fp_hb_timeout : int;
  fp_max_node_reboots : int;
  fp_monitor_period : int;
  fp_regime : Recover.policy;
}

let default_policy =
  {
    fp_hb_period = 2;
    fp_hb_timeout = 12;
    fp_max_node_reboots = 2;
    fp_monitor_period = 64;
    fp_regime = Recover.default_policy;
  }

(* -- Node events ------------------------------------------------------------ *)

type node_event =
  | Node_crashed of int
  | Node_down_detected of int
  | Node_failover of int * Colour.t list
  | Node_abandoned of int
  | Node_quarantined of int * Colour.t list
  | Node_rejoined of int
  | Link_down of int
  | Link_healed of int
  | Link_tampered of int * int
  | Frame_rejected of int

let pp_node_event ppf = function
  | Node_crashed s -> Fmt.pf ppf "node %d crashed" s
  | Node_down_detected s -> Fmt.pf ppf "node %d declared down (heartbeat timeout)" s
  | Node_failover (s, cs) ->
    Fmt.pf ppf "node %d failover: revived %a" s Fmt.(list ~sep:comma Colour.pp) cs
  | Node_abandoned s -> Fmt.pf ppf "node %d abandoned (reboot budget exhausted)" s
  | Node_quarantined (s, cs) ->
    Fmt.pf ppf "node %d quarantined: %a parked at the boundary" s Fmt.(list ~sep:comma Colour.pp) cs
  | Node_rejoined s -> Fmt.pf ppf "node %d rejoined" s
  | Link_down w -> Fmt.pf ppf "link %d partitioned" w
  | Link_healed w -> Fmt.pf ppf "link %d healed" w
  | Link_tampered (w, n) -> Fmt.pf ppf "link %d tampered (%d frames forged)" w n
  | Frame_rejected s ->
    if s < 0 then Fmt.pf ppf "control node rejected a frame"
    else Fmt.pf ppf "node %d rejected a frame (bad checksum)" s

let node_event_to_json e =
  let simple kind n field = J.Obj [ ("event", J.String kind); (field, J.Int n) ] in
  let colours cs = J.List (List.map (fun c -> J.String (Colour.name c)) cs) in
  match e with
  | Node_crashed s -> simple "node-crashed" s "shard"
  | Node_down_detected s -> simple "node-down-detected" s "shard"
  | Node_failover (s, cs) ->
    J.Obj [ ("event", J.String "node-failover"); ("shard", J.Int s); ("revived", colours cs) ]
  | Node_abandoned s -> simple "node-abandoned" s "shard"
  | Node_quarantined (s, cs) ->
    J.Obj [ ("event", J.String "node-quarantined"); ("shard", J.Int s); ("parked", colours cs) ]
  | Node_rejoined s -> simple "node-rejoined" s "shard"
  | Link_down w -> simple "link-down" w "wire"
  | Link_healed w -> simple "link-healed" w "wire"
  | Link_tampered (w, n) ->
    J.Obj [ ("event", J.String "link-tampered"); ("wire", J.Int w); ("frames", J.Int n) ]
  | Frame_rejected s -> simple "frame-rejected" s "shard"

(* -- Frames ----------------------------------------------------------------- *)

(* Inter-shard frames are strings on Net wires: "ch|<chan>|<word>|<ck>"
   for channel words, "hb|<shard>" for heartbeats. The checksum is the
   end-to-end integrity check the federation adds on top of the link
   protocol: the go-back-N layer recovers loss, the checksum rejects
   forgery. *)
let cksum chan word = ((chan * 131) + (word * 31) + 7) land 0xffff

(* The legacy single-word frame encoder: emission is all-batch now, but
   the format stays decodable (and encodable, for mixed-version tests). *)
let[@warning "-32"] chan_msg chan word = Printf.sprintf "ch|%d|%d|%d" chan word (cksum chan word)

(* A batched frame carries a whole ring drain in one go:
   "cb|<chan>|<n>|<w0>,<w1>,...|<ck>". The checksum folds every word, so
   dropping, reordering or forging any word inside the batch is caught
   exactly as it would be frame-by-frame. Single-word "ch|" frames stay
   parseable for mixed-version traffic. *)
let batch_cksum chan words =
  List.fold_left (fun acc w -> ((acc * 31) + w + 11) land 0xffff) (((chan * 131) + 7) land 0xffff) words

let batch_msg chan words =
  Printf.sprintf "cb|%d|%d|%s|%d" chan (List.length words)
    (String.concat "," (List.map string_of_int words))
    (batch_cksum chan words)

let hb_msg shard = Printf.sprintf "hb|%d" shard

type payload =
  | P_hb of int
  | P_chan of int * int list
  | P_bad

let parse_payload s =
  match String.split_on_char '|' s with
  | [ "hb"; sh ] -> ( match int_of_string_opt sh with Some s -> P_hb s | None -> P_bad)
  | [ "ch"; c; w; k ] -> (
    match (int_of_string_opt c, int_of_string_opt w, int_of_string_opt k) with
    | Some c, Some w, Some k when k = cksum c w && c >= 0 -> P_chan (c, [ w ])
    | _ -> P_bad)
  | [ "cb"; c; n; ws; k ] -> (
    match (int_of_string_opt c, int_of_string_opt n, int_of_string_opt k) with
    | Some c, Some n, Some k when c >= 0 && n >= 1 ->
      let parts = String.split_on_char ',' ws in
      let words = List.map int_of_string_opt parts in
      if List.length parts = n && List.for_all Option.is_some words then begin
        let words = List.map Option.get words in
        if k = batch_cksum c words then P_chan (c, words) else P_bad
      end
      else P_bad
    | _ -> P_bad)
  | _ -> P_bad

(* Node components route by a wire-id prefix: an external "<wire>|<payload>"
   is the NIC transmit command, a delivery is re-emitted as an Output with
   the arriving wire id prefixed so the federation knows which line it came
   in on. *)
let split_wire m =
  match String.index_opt m '|' with
  | None -> None
  | Some i -> (
    match int_of_string_opt (String.sub m 0 i) with
    | Some w when w >= 0 -> Some (w, String.sub m (i + 1) (String.length m - i - 1))
    | _ -> None)

let router name =
  Component.stateless ~name (fun ev ->
      match ev with
      | Component.External m -> (
        match split_wire m with Some (w, p) -> [ Component.Send (w, p) ] | None -> [])
      | Component.Recv (w, m) -> [ Component.Output (Printf.sprintf "%d|%s" w m) ])

(* -- Per-shard configurations ----------------------------------------------- *)

(* Every shard carries the full global regime and device layout — absent
   regimes run an inert yield loop in their (untouched) partitions — so
   physical addresses, global device ids and channel areas agree across
   the federation, and the monolithic ideal. A channel whose endpoints
   live on different shards is cut everywhere: its send end is drained by
   the source NIC, its receive end fed by the destination NIC, which is
   the wire-cutting argument realised as an actual wire. *)
let inert_program = [ Isa.Label "loop"; Isa.Instr (Isa.Trap 0); Isa.Branch "loop" ]

let shard_config spec s =
  let regimes =
    List.map
      (fun r ->
        if shard_of_spec spec r.Config.colour = s then r
        else { r with Config.program = inert_program })
      spec.fs_cfg.Config.regimes
  in
  let channels =
    List.map
      (fun ch ->
        let inter = shard_of_spec spec ch.Config.sender <> shard_of_spec spec ch.Config.receiver in
        { ch with Config.cut = ch.Config.cut || inter })
      spec.fs_cfg.Config.channels
  in
  { spec.fs_cfg with Config.regimes; channels }

(* -- The federation --------------------------------------------------------- *)

type shard_state =
  | Up
  | Quarantined
  | Abandoned

type route = {
  rt_chan : int;
  rt_src : int;
  rt_dst : int;
  rt_wire : int;
}

type t = {
  spec : spec;
  policy : policy;
  nshards : int;
  nwires : int;
  kernels : Sue.t array;
  recovers : Recover.t array;
  watches : Monitor.swatch option array;
  net : Net.t;
  routes : route array; (* inter-shard channels only *)
  hb_wires : int array; (* shard -> its heartbeat wire id *)
  node_colour : Colour.t array;
  ctrl_colour : Colour.t;
  ndev : int;
  device_shard : int array;
  device_colour : Colour.t array;
  inputs : int -> Sue.input;
  queues : int Queue.t array; (* flow-controlled external input, per device *)
  pending_in : int Queue.t array; (* arrived words awaiting ring space, per channel *)
  powered : bool array;
  state : shard_state array;
  last_seen : int array;
  quarantined_at : int array;
  node_reboots : int array;
  mutable schedule : (int * Fault_plan.fault) list;
  mutable heals : (int * int) list; (* (step, wire) *)
  mutable step_no : int;
  mutable events : (int * node_event) list; (* newest first *)
  mutable frame_rejects : int;
  mutable delivered : int;
  out_cursor : int array; (* Net outputs consumed, per shard node *)
  mutable ctrl_cursor : int;
  mutable flat_out : (int * int) list; (* newest first *)
  out_q : (int * int) Queue.t; (* same outputs, drained by take_outputs *)
  mutable pending_drops : int list;
  mutable stuck : int list;
  mutable dup_after : int list;
  mutable retired_watches : (int * Monitor.swatch) list;
      (* watches that died with their node at a failover; kept so their
         deep-check counts and any pre-crash violation still surface *)
}

let drip alphabet =
  let alphabet = Array.of_list alphabet in
  fun n ->
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []

let global_devices cfg =
  List.concat_map
    (fun r -> List.map (fun k -> (r.Config.colour, k)) r.Config.devices)
    cfg.Config.regimes

(* The per-shard monitor needs the input alphabet as that shard sees it:
   the global alphabet restricted to locally hosted devices. *)
let shard_alphabet spec device_shard s =
  let filt = List.filter (fun (d, _) -> device_shard.(d) = s) in
  List.sort_uniq compare ([] :: List.map filt spec.fs_alphabet)

let build ?(policy = default_policy) ?plan ?(monitor = false) spec =
  (match Config.validate spec.fs_cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fed.build: " ^ e));
  List.iter
    (fun (r : _ Config.regime) -> ignore (shard_of_spec spec r.colour))
    spec.fs_cfg.Config.regimes;
  if policy.fp_hb_period < 1 || policy.fp_hb_timeout < policy.fp_hb_period then
    invalid_arg "Fed.build: heartbeat timeout must cover the period";
  let nshards = nshards_of spec in
  let inter = inter_channels spec in
  let routes =
    Array.of_list
      (List.mapi
         (fun i ch ->
           {
             rt_chan = ch.Config.chan_id;
             rt_src = shard_of_spec spec ch.Config.sender;
             rt_dst = shard_of_spec spec ch.Config.receiver;
             rt_wire = i;
           })
         inter)
  in
  let node_colour = Array.init nshards (fun s -> Colour.make (Printf.sprintf "NODE%d" s)) in
  let ctrl_colour = Colour.make "CTRL" in
  let data_wires =
    List.map
      (fun ch ->
        ( node_colour.(shard_of_spec spec ch.Config.sender),
          node_colour.(shard_of_spec spec ch.Config.receiver),
          max 1 ch.Config.capacity ))
      inter
  in
  let hb_wires = Array.init nshards (fun s -> List.length inter + s) in
  let topo =
    Topology.make
      ~parts:
        (List.init nshards (fun s ->
             (node_colour.(s), router (Printf.sprintf "node%d" s)))
        @ [ (ctrl_colour, router "ctrl") ])
      ~wires:(data_wires @ List.init nshards (fun s -> (node_colour.(s), ctrl_colour, 4)))
  in
  (* Zero fault rates but a link model nonetheless: every line runs the
     reliable go-back-N protocol, so partitions cost latency, not words —
     the sender's pending queue is the federation's retransmission buffer. *)
  let net = Net.build ~link:{ Net.lm_seed = 42; lm_drop = 0; lm_dup = 0; lm_reorder = 0 } topo in
  let kernels = Array.init nshards (fun s -> Sue.build (shard_config spec s)) in
  let recovers = Array.map (fun k -> Recover.create ~policy:policy.fp_regime k) kernels in
  let devices = Array.of_list (global_devices spec.fs_cfg) in
  let ndev = Array.length devices in
  let device_colour = Array.map fst devices in
  let device_shard = Array.map (fun (c, _) -> shard_of_spec spec c) devices in
  let watches =
    Array.init nshards (fun s ->
        if monitor then
          Some
            (* A shard's intra-shard channels run *connected*: the
               sanctioned-interference reading of condition 2, not the
               strict cut-system one, is what the watch must check. *)
            (Monitor.watch ~period:policy.fp_monitor_period ~sanction_channels:true
               ~inputs:(shard_alphabet spec device_shard s)
               kernels.(s))
        else None)
  in
  {
    spec;
    policy;
    nshards;
    nwires = Array.length routes + nshards;
    kernels;
    recovers;
    watches;
    net;
    routes;
    hb_wires;
    node_colour;
    ctrl_colour;
    ndev;
    device_shard;
    device_colour;
    inputs = drip spec.fs_alphabet;
    queues = Array.init ndev (fun _ -> Queue.create ());
    pending_in = Array.init (List.length spec.fs_cfg.Config.channels) (fun _ -> Queue.create ());
    powered = Array.make nshards true;
    state = Array.make nshards Up;
    last_seen = Array.make nshards 0;
    quarantined_at = Array.make nshards 0;
    node_reboots = Array.make nshards 0;
    schedule = (match plan with Some (p : Fault_plan.t) -> p.Fault_plan.faults | None -> []);
    heals = [];
    step_no = 0;
    events = [];
    frame_rejects = 0;
    delivered = 0;
    out_cursor = Array.make nshards 0;
    ctrl_cursor = 0;
    flat_out = [];
    out_q = Queue.create ();
    pending_drops = [];
    stuck = [];
    dup_after = [];
    retired_watches = [];
  }

let kernel t ~shard = t.kernels.(shard)
let net t = t.net
let shards t = t.nshards
let links t = t.nwires
let powered t ~shard = t.powered.(shard)
let shard_state t ~shard = t.state.(shard)
let step_no t = t.step_no
let events t = List.rev t.events

(* The service layer's doors into the federation: queue words for a
   device's flow-controlled external input, and drain the Tx words the
   shards emitted since the last call (device-step order, oldest first).
   [finish]'s per-device transcript is unaffected by draining. *)
let push_input t ~device words =
  if device < 0 || device >= t.ndev then invalid_arg "Fed.push_input: no such device";
  List.iter (fun w -> Queue.add (w land 0xffff) t.queues.(device)) words

let take_outputs t =
  let xs = List.of_seq (Queue.to_seq t.out_q) in
  Queue.clear t.out_q;
  xs

let event t n e = t.events <- (n, e) :: t.events
let shard_of t c = shard_of_spec t.spec c

(* -- Fault application ------------------------------------------------------ *)

let flip_phys m a bit = Machine.write_phys m a (Machine.read_phys m a lxor (1 lsl bit))

(* Machine-level faults strike the kernel instance that actually hosts the
   damaged domain — the same physical events Campaign injects against a
   single kernel, located in the federation by its placement. *)
let apply_at t s (f : Fault_plan.fault) =
  let k = t.kernels.(s) in
  let m = Sue.machine k in
  match f with
  | Mem_flip { colour; offset; bit } ->
    let base, size = Sue.partition_bounds k colour in
    flip_phys m (base + (offset mod size)) bit
  | Saved_reg_flip { colour; slot; bit } -> flip_phys m (Sue.save_area_base k colour + slot) bit
  | Guard_smash { index } ->
    let guards = Array.of_list (Sue.guard_addrs k) in
    flip_phys m guards.(index mod Array.length guards) 7
  | Chan_flip { chan; which; word; bit } -> begin
    match Sue.channel_area k chan with
    | None -> ()
    | Some (send_area, recv_area, cap) ->
      let area =
        match which with Fault_plan.Send_end -> send_area | Fault_plan.Recv_end -> recv_area
      in
      flip_phys m (area + (word mod (cap + 2))) bit
  end
  | Rx_latch_flip { device; bit } ->
    let data, status = Machine.device_regs m device in
    Machine.set_device_regs m device ~data:(data lxor (1 lsl bit)) ~status
  | Spurious_irq { device } -> Machine.raise_irq m device
  | _ -> ()

let apply_fault t n (f : Fault_plan.fault) =
  match f with
  | Shard_crash { shard } ->
    let s = shard mod t.nshards in
    if t.powered.(s) then begin
      Sue.crash t.kernels.(s);
      t.powered.(s) <- false;
      event t n (Node_crashed s)
    end
  | Link_partition { link; window } ->
    let w = link mod t.nwires in
    if Net.wire_up t.net ~wire:w then begin
      Net.set_wire_up t.net ~wire:w false;
      t.heals <- (n + max 1 window, w) :: t.heals;
      event t n (Link_down w)
    end
  | Frame_tamper { link } ->
    let w = link mod t.nwires in
    let hit = Net.tamper t.net ~wire:w (fun m -> Some (m ^ "!")) in
    event t n (Link_tampered (w, hit))
  | Mem_flip { colour; _ } | Saved_reg_flip { colour; _ } -> apply_at t (shard_of t colour) f
  | Guard_smash { index } -> apply_at t (index mod t.nshards) f
  | Chan_flip { chan; which; _ } -> begin
    match List.nth_opt t.spec.fs_cfg.Config.channels chan with
    | None -> ()
    | Some ch ->
      let c =
        match which with
        | Fault_plan.Send_end -> ch.Config.sender
        | Fault_plan.Recv_end -> ch.Config.receiver
      in
      apply_at t (shard_of t c) f
  end
  | Rx_latch_flip { device; _ } | Spurious_irq { device } ->
    apply_at t t.device_shard.(device) f
  | Drop_input { device } -> t.pending_drops <- device :: t.pending_drops
  | Duplicate_irq { device } -> t.dup_after <- device :: t.dup_after
  | Stuck_device { device } -> t.stuck <- device :: t.stuck

(* -- Rings at the NIC boundary ---------------------------------------------- *)

(* The source NIC drains the send end of a cut inter-shard channel — the
   buffer SEND fills and nothing in-kernel ever empties — exactly as a
   channel-to-wire bridge would, leaving the ring in the state [capacity]
   successive RECVs would have left it. *)
let drain_send_ring t s chan =
  let k = t.kernels.(s) in
  match Sue.channel_area k chan with
  | None -> []
  | Some (area_a, _, cap) ->
    let m = Sue.machine k in
    let head = Machine.read_phys m area_a and count = Machine.read_phys m (area_a + 1) in
    if count = 0 then []
    else begin
      let words = List.init count (fun i -> Machine.read_phys m (area_a + 2 + ((head + i) mod cap))) in
      Machine.write_phys m area_a ((head + count) mod cap);
      Machine.write_phys m (area_a + 1) 0;
      words
    end

(* The destination NIC feeds the receive end — the "never-fed second
   buffer" of the wire-cutting argument, fed here by the wire itself.
   Ring backpressure holds words in [pending_in]; a powered-off node's
   NIC accepts nothing (the words wait, the link layer has already
   acknowledged them, exactly-once delivery is the pending queue's job). *)
let inject t rt =
  if t.powered.(rt.rt_dst) then begin
    let k = t.kernels.(rt.rt_dst) in
    match Sue.channel_area k rt.rt_chan with
    | None -> ()
    | Some (_, area_b, cap) ->
      let m = Sue.machine k in
      let q = t.pending_in.(rt.rt_chan) in
      let blocked = ref false in
      while (not !blocked) && not (Queue.is_empty q) do
        let head = Machine.read_phys m area_b and count = Machine.read_phys m (area_b + 1) in
        if count >= cap then blocked := true
        else begin
          Machine.write_phys m (area_b + 2 + ((head + count) mod cap)) (Queue.pop q);
          Machine.write_phys m (area_b + 1) (count + 1)
        end
      done
  end

(* -- Net output collection -------------------------------------------------- *)

let collect_ctrl t n =
  let outs = Net.outputs t.net t.ctrl_colour in
  let fresh = List.filteri (fun i _ -> i >= t.ctrl_cursor) outs in
  t.ctrl_cursor <- List.length outs;
  List.iter
    (fun m ->
      match Option.map (fun (_, p) -> parse_payload p) (split_wire m) with
      | Some (P_hb s) when s >= 0 && s < t.nshards -> t.last_seen.(s) <- n
      | _ ->
        t.frame_rejects <- t.frame_rejects + 1;
        event t n (Frame_rejected (-1)))
    fresh

let collect_shard t n s =
  let outs = Net.outputs t.net t.node_colour.(s) in
  let fresh = List.filteri (fun i _ -> i >= t.out_cursor.(s)) outs in
  t.out_cursor.(s) <- List.length outs;
  List.iter
    (fun m ->
      match Option.map (fun (_, p) -> parse_payload p) (split_wire m) with
      | Some (P_chan (c, ws)) when c < Array.length t.pending_in ->
        List.iter (fun w -> Queue.add w t.pending_in.(c)) ws;
        t.delivered <- t.delivered + List.length ws
      | _ ->
        t.frame_rejects <- t.frame_rejects + 1;
        event t n (Frame_rejected s))
    fresh

(* -- The supervisor --------------------------------------------------------- *)

let failover t n s =
  if t.node_reboots.(s) >= t.policy.fp_max_node_reboots then begin
    if t.state.(s) <> Abandoned then begin
      t.state.(s) <- Abandoned;
      event t n (Node_abandoned s)
    end
  end
  else begin
    t.node_reboots.(s) <- t.node_reboots.(s) + 1;
    t.powered.(s) <- true;
    let revived = Sue.warm_reboot t.kernels.(s) in
    (* The monitor rides the node: the power failure killed its watch
       too, and the rebooted node starts a fresh one. Keeping the old
       bucket tables would compare post-rollback states against the
       discarded pre-crash timeline — states the checkpoint fence
       specifically un-happened. The dead watch is retired, not dropped,
       so its deep checks and any violation it had already flagged still
       reach the report. *)
    (match t.watches.(s) with
    | Some w ->
      t.retired_watches <- (s, w) :: t.retired_watches;
      t.watches.(s) <-
        Some
          (Monitor.watch ~period:t.policy.fp_monitor_period ~sanction_channels:true
             ~inputs:(shard_alphabet t.spec t.device_shard s)
             t.kernels.(s))
    | None -> ());
    t.state.(s) <- Up;
    t.last_seen.(s) <- n;
    event t n (Node_failover (s, revived))
  end

(* Deterministic crash detection: a shard that has not heartbeat within
   the timeout is declared down. An out-of-band power probe (the one
   thing a real supervisor's management plane gives it) separates a dead
   node — warm-reboot it from its regimes' checkpoints, within budget —
   from an unreachable one, whose regimes are parked at the federation
   boundary (their external input held, audited) until its heartbeats
   return. *)
let supervise t n =
  for s = 0 to t.nshards - 1 do
    match t.state.(s) with
    | Abandoned -> ()
    | Quarantined ->
      if not t.powered.(s) then failover t n s
      else if t.last_seen.(s) >= t.quarantined_at.(s) then begin
        t.state.(s) <- Up;
        event t n (Node_rejoined s)
      end
    | Up ->
      if n - t.last_seen.(s) > t.policy.fp_hb_timeout then begin
        event t n (Node_down_detected s);
        if not t.powered.(s) then failover t n s
        else begin
          t.state.(s) <- Quarantined;
          t.quarantined_at.(s) <- n;
          event t n (Node_quarantined (s, hosted t.spec s))
        end
      end
  done

(* -- Stepping --------------------------------------------------------------- *)

let remove_one x xs =
  let rec go acc = function
    | [] -> List.rev acc
    | y :: rest -> if y = x then List.rev_append acc rest else go (y :: acc) rest
  in
  go [] xs

let force_stuck t =
  List.iter
    (fun d ->
      let m = Sue.machine t.kernels.(t.device_shard.(d)) in
      let data, _ = Machine.device_regs m d in
      Machine.set_device_regs m d ~data ~status:0)
    t.stuck

let step t =
  let n = t.step_no in
  (* Heals due this step come first: a partition window of w steps means
     the wire is down for exactly w federation steps. *)
  let due_heals, heals = List.partition (fun (at, _) -> at <= n) t.heals in
  t.heals <- heals;
  List.iter
    (fun (_, w) ->
      if not (Net.wire_up t.net ~wire:w) then begin
        Net.set_wire_up t.net ~wire:w true;
        event t n (Link_healed w)
      end)
    due_heals;
  let due, rest = List.partition (fun (at, _) -> at <= n) t.schedule in
  t.schedule <- rest;
  List.iter (fun (_, f) -> apply_fault t n f) due;
  (* Egress: every powered NIC drains its outbound channel ends onto
     their wires and emits its periodic heartbeat. A powered-off node is
     silent — that silence is what the supervisor detects. *)
  let externals = ref [] in
  for s = t.nshards - 1 downto 0 do
    if t.powered.(s) then begin
      (* Batched NIC copies: one frame per drained ring, however many
         words it held — the ROADMAP's first federation throughput
         optimization. A single-word drain still rides the batch frame;
         the legacy per-word codec remains accepted on arrival. *)
      Array.iter
        (fun rt ->
          if rt.rt_src = s then
            match List.rev (drain_send_ring t s rt.rt_chan) with
            | [] -> ()
            | words ->
              externals :=
                (t.node_colour.(s), Printf.sprintf "%d|%s" rt.rt_wire (batch_msg rt.rt_chan words))
                :: !externals)
        t.routes;
      if n mod t.policy.fp_hb_period = 0 then
        externals :=
          (t.node_colour.(s), Printf.sprintf "%d|%s" t.hb_wires.(s) (hb_msg s)) :: !externals
    end
  done;
  Net.step t.net ~externals:!externals;
  collect_ctrl t n;
  for s = 0 to t.nshards - 1 do
    collect_shard t n s
  done;
  Array.iter (fun rt -> inject t rt) t.routes;
  (* External arrivals flow-controlled per device, as in Campaign: a word
     queues until its Rx latch is free, so every regime consumes the same
     word sequence however the shards interleave. A quarantined shard's
     devices are additionally held at the boundary — parked, not lost. *)
  List.iter (fun (d, w) -> if d >= 0 && d < t.ndev then Queue.add w t.queues.(d)) (t.inputs n);
  force_stuck t;
  for s = 0 to t.nshards - 1 do
    if t.powered.(s) then begin
      let m = Sue.machine t.kernels.(s) in
      let input =
        if t.state.(s) = Quarantined then []
        else
          List.concat
            (List.init t.ndev (fun d ->
                 if
                   t.device_shard.(d) = s
                   && (not (Queue.is_empty t.queues.(d)))
                   && (not (List.mem d t.stuck))
                   && snd (Machine.device_regs m d) = 0
                 then
                   if List.mem d t.pending_drops then begin
                     t.pending_drops <- remove_one d t.pending_drops;
                     ignore (Queue.pop t.queues.(d));
                     []
                   end
                   else [ (d, Queue.pop t.queues.(d)) ]
                 else []))
      in
      let out = Sue.step t.kernels.(s) input in
      List.iter
        (fun (d, w) ->
          if t.device_shard.(d) = s then begin
            t.flat_out <- (d, w) :: t.flat_out;
            Queue.add (d, w) t.out_q
          end)
        out;
      force_stuck t;
      ignore (Recover.tick t.recovers.(s));
      match t.watches.(s) with Some w -> Monitor.observe w | None -> ()
    end
  done;
  List.iter
    (fun d -> Machine.raise_irq (Sue.machine t.kernels.(t.device_shard.(d))) d)
    t.dup_after;
  t.dup_after <- [];
  supervise t n;
  t.step_no <- n + 1

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

(* -- Observation ------------------------------------------------------------ *)

type observation = {
  fob_outputs : (int * int list) list;
  fob_status : (Colour.t * Abstract_regime.status) list;
  fob_detections : Sue.kernel_fault list;
  fob_recoveries : Sue.kernel_fault list;
  fob_wd_fires : int;
  fob_events : (int * node_event) list;
  fob_frame_rejects : int;
  fob_delivered : int;
  fob_abandoned_nodes : int list;
  fob_gave_up : Colour.t list;
  fob_stats : Net.link_stats;
  fob_deep_checks : int;
  fob_first_violation : (int * int) option;
}

let finish t =
  for s = 0 to t.nshards - 1 do
    if t.powered.(s) then begin
      ignore (Sue.guard_sweep t.kernels.(s));
      ignore (Recover.tick t.recovers.(s))
    end
  done;
  let detections = ref [] and recoveries = ref [] and wd = ref 0 in
  for s = 0 to t.nshards - 1 do
    let recs, rest =
      List.partition
        (function Sue.Regime_restart _ | Sue.Warm_reboot -> true | _ -> false)
        (Sue.drain_faults t.kernels.(s))
    in
    let corrupt, wdl = List.partition (function Sue.Watchdog_expired _ -> false | _ -> true) rest in
    detections := !detections @ corrupt;
    recoveries := !recoveries @ recs;
    wd := !wd + List.length wdl
  done;
  let per_dev = Array.make (max 1 t.ndev) [] in
  List.iter (fun (d, w) -> per_dev.(d) <- w :: per_dev.(d)) (List.rev t.flat_out);
  let fob_outputs = List.init t.ndev (fun d -> (d, List.rev per_dev.(d))) in
  let fob_status =
    List.map
      (fun c -> (c, Sue.regime_status t.kernels.(shard_of t c) c))
      (Config.colours t.spec.fs_cfg)
  in
  let fob_deep_checks =
    Array.fold_left
      (fun acc w -> match w with Some w -> acc + Monitor.deep_checks w | None -> acc)
      0 t.watches
    + List.fold_left (fun acc (_, w) -> acc + Monitor.deep_checks w) 0 t.retired_watches
  in
  let fob_first_violation =
    let violations =
      List.filter_map Fun.id
        (List.init t.nshards (fun s ->
             match t.watches.(s) with
             | Some w ->
               Option.map (fun (st, _) -> (s, st)) (Monitor.watch_first_violation w)
             | None -> None))
      @ List.filter_map
          (fun (s, w) -> Option.map (fun (st, _) -> (s, st)) (Monitor.watch_first_violation w))
          t.retired_watches
    in
    match List.sort (fun (_, a) (_, b) -> compare a b) violations with
    | first :: _ -> Some first
    | [] -> None
  in
  let fob_abandoned_nodes =
    List.filter (fun s -> t.state.(s) = Abandoned) (List.init t.nshards Fun.id)
  in
  let fob_gave_up =
    List.concat (List.init t.nshards (fun s -> Recover.abandoned t.recovers.(s)))
  in
  {
    fob_outputs;
    fob_status;
    fob_detections = !detections;
    fob_recoveries = !recoveries;
    fob_wd_fires = !wd;
    fob_events = List.rev t.events;
    fob_frame_rejects = t.frame_rejects;
    fob_delivered = t.delivered;
    fob_abandoned_nodes;
    fob_gave_up;
    fob_stats = Net.link_stats t.net;
    fob_deep_checks;
    fob_first_violation;
  }

let device_owner_colour t d = t.device_colour.(d)

let monitor_reports t =
  List.filter_map Fun.id
    (List.init t.nshards (fun s ->
         Option.map (fun w -> (s, Monitor.watch_report w)) t.watches.(s)))
  @ List.map (fun (s, w) -> (s, Monitor.watch_report w)) t.retired_watches
