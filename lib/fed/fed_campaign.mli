(** The federated chaos campaign: node-level fault injection classified
    by differential per-colour trace comparison.

    {!Sep_robust.Campaign}'s argument, one level up: in the distributed
    ideal, a crashed box, a severed line or a forged frame cannot corrupt
    any box it does not house or connect. The federation must earn the
    same containment — every injected node fault is replayed against a
    fault-free reference and classified with {!Sep_robust.Campaign}'s
    outcome lattice, with the target now a {e set} of colours computed
    from the placement {e and the channel graph}: because federation
    channels actually deliver (the single-kernel campaign runs with every
    channel cut), a corrupted word legitimately reaches whoever the
    configuration lets the victim talk to, so data-corrupting faults
    close their target set over downstream declared channels — Rushby's
    property is channel control, not silence. Delay-only faults stay
    un-closed: a crash targets exactly what its shard hosts (checkpointed
    replay re-sends the same words, merely later), and a partition
    targets {b nobody} — the reliable links owe delay-only semantics, so
    any divergence at all under a severed wire is a violation.

    Every faulty replay runs with the online separability monitor
    attached to all shards (unless disabled); [monitor_clean] is the
    second verdict alongside [holds]. *)

module Colour = Sep_model.Colour
module Fault_plan = Sep_robust.Fault_plan
module Campaign = Sep_robust.Campaign

type case = {
  fc_plan : Fault_plan.t;
  fc_targets : Colour.t list;
      (** union of the plan's fault targets, closed downstream over
          declared channels for data-corrupting faults *)
  fc_outcome : Campaign.outcome;
  fc_victim_perturbed : bool;
  fc_detections : int;  (** kernel-level corruption detections *)
  fc_recoveries : int;  (** restarts and warm reboots across shards *)
  fc_frame_rejects : int;
  fc_node_events : int;
  fc_deep_checks : int;
  fc_first_violation : (int * int) option;  (** (shard, step) from the online monitor *)
}

type report = {
  fr_label : string;
  fr_seed : int;
  fr_steps : int;
  fr_cases : case list;
}

val targets_of : Fed.spec -> Fault_plan.t -> Colour.t list

val directed : Fed.spec -> steps:int -> Fault_plan.t list
(** Coverage floor independent of the seed: one crash per shard, one
    partition and one tamper per physical wire, striking at steps/3. *)

val plans : Fed.spec -> seed:int -> steps:int -> count:int -> Fault_plan.t list
(** {!directed} plans, then [count] seeded single-fault plans drawn over
    the widened node space, then [count/2] two-fault stress plans. *)

val run :
  ?jobs:int -> ?monitor:bool -> ?policy:Fed.policy -> seed:int -> steps:int -> count:int ->
  Fed.spec -> report
(** Replay every plan against the fault-free reference, in parallel over
    up to [jobs] domains; plan generation and replay are deterministic,
    so the report is identical for any job count. [monitor] (default
    true) attaches the online separability watch to every shard of every
    faulty replay. *)

val holds : report -> bool
(** No injected fault produced a separation-violating outcome. *)

val monitor_clean : report -> bool
(** The online monitor flagged no separability violation on any shard in
    any case. *)

val totals : report -> int * int * int * int
(** (masked, detected-safe, recovered-safe, violating). *)

val case_to_json : report -> case -> Sep_util.Json.t
val summary_json : report -> Sep_util.Json.t

val report_to_jsonl : report -> string
(** One ["fed-case"] line per case, then one ["fed-campaign-summary"]. *)
