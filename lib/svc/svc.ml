module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine
module Config = Sep_core.Config
module Fed = Sep_fed.Fed
module Fault_plan = Sep_robust.Fault_plan
module Protocol = Sep_components.Protocol
module Telemetry = Sep_obs.Telemetry
module Trace = Sep_obs.Trace
module Prng = Sep_util.Prng
module J = Sep_util.Json

(* -- Applications ------------------------------------------------------------ *)

type reply =
  | Commit of int
  | Ok of int
  | Denied of int
  | Notfound of int

type degraded =
  | Fail_fast
  | Fail_closed
  | Read_cached
  | Spool

type app = {
  ap_apply : client:int -> op:int -> arg:int -> reply;
  ap_checkpoint : unit -> unit;
  ap_read_cached : client:int -> op:int -> arg:int -> int option;
  ap_degraded : op:int -> degraded;
  ap_effectful : int -> bool;
  ap_op_name : int -> string;
}

type deployment = {
  dp_name : string;
  dp_clients : int;
  dp_replicas : int;
  dp_mk_app : unit -> app;
  dp_workload : Prng.t -> int * int;
}

(* -- Wire status codes ------------------------------------------------------- *)

let st_commit = 0
let st_ok = 1
let st_denied = 2
let st_notfound = 3
let st_shed = 4

let status_of_reply = function
  | Commit v -> (st_commit, v)
  | Ok v -> (st_ok, v)
  | Denied v -> (st_denied, v)
  | Notfound v -> (st_notfound, v)

(* -- Forwarder regimes ------------------------------------------------------- *)

(* The ISA programs are pure pipes, shaped like {!Fed_scenarios}'s:
   r6 = device base, r5 = scratch, r0/r1/r2 = trap arguments, r4 = the
   word in flight, r3 = a did-work flag. A pass that moved any word loops
   again without yielding — the greedy drain that keeps a frame's words
   moving while they are latched — and an idle pass yields. Service
   logic never appears down here: the regimes cannot tell a request from
   a response, which is what keeps the channel graph the whole policy. *)

let device_base = [ Isa.Instr (Isa.Loadi (6, 1)); Isa.Instr (Isa.Shl (6, 15)) ]

let send_retry ~ch ~label ~next =
  [
    Isa.Label label;
    Isa.Instr (Isa.Loadi (0, ch));
    Isa.Instr (Isa.Mov (1, 4));
    Isa.Instr (Isa.Trap 1);
    Isa.Instr (Isa.Loadi (5, 1));
    Isa.Instr (Isa.Cmp (2, 5));
    Isa.Branch_eq next;
    Isa.Instr (Isa.Trap 0);
    Isa.Branch label;
  ]

(* A client regime bridges the engine to every replica: per replica j,
   Rx slot j (requests in) forwards down the request channel, and the
   response channel drains to Tx slot m+j (replies out). *)
let client_program ~m ~chans =
  device_base
  @ [ Isa.Label "loop"; Isa.Instr (Isa.Loadi (3, 0)) ]
  @ List.concat
      (List.init m (fun j ->
           let req, resp = chans j in
           let norx = Printf.sprintf "norx%d" j
           and sent = Printf.sprintf "sent%d" j
           and noresp = Printf.sprintf "noresp%d" j in
           [
             Isa.Instr (Isa.Loadi (5, 0));
             Isa.Instr (Isa.Load (1, 6, (2 * j) + 1));
             Isa.Instr (Isa.Cmp (1, 5));
             Isa.Branch_eq norx;
             Isa.Instr (Isa.Load (4, 6, 2 * j));
           ]
           @ send_retry ~ch:req ~label:(Printf.sprintf "sreq%d" j) ~next:sent
           @ [
               Isa.Label sent;
               Isa.Instr (Isa.Loadi (3, 1));
               Isa.Label norx;
               Isa.Instr (Isa.Loadi (0, resp));
               Isa.Instr (Isa.Trap 2);
               Isa.Instr (Isa.Loadi (5, 1));
               Isa.Instr (Isa.Cmp (2, 5));
               Isa.Branch_ne noresp;
               Isa.Instr (Isa.Store (1, 6, 2 * (m + j)));
               Isa.Instr (Isa.Loadi (3, 1));
               Isa.Label noresp;
             ]))
  @ [
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Cmp (3, 5));
      Isa.Branch_ne "loop";
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]

(* A worker regime serves one (client, replica) pair: the request channel
   drains to its Tx (slot 1 — the engine's ear), and its Rx (slot 0 —
   the engine's mouth) forwards down the response channel. *)
let worker_program ~req ~resp =
  device_base
  @ [
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (3, 0));
      Isa.Instr (Isa.Loadi (0, req));
      Isa.Instr (Isa.Trap 2);
      Isa.Instr (Isa.Loadi (5, 1));
      Isa.Instr (Isa.Cmp (2, 5));
      Isa.Branch_ne "noreq";
      Isa.Instr (Isa.Store (1, 6, 2));
      Isa.Instr (Isa.Loadi (3, 1));
      Isa.Label "noreq";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "norx";
      Isa.Instr (Isa.Load (4, 6, 0));
    ]
  @ send_retry ~ch:resp ~label:"sresp" ~next:"sent"
  @ [
      Isa.Label "sent";
      Isa.Instr (Isa.Loadi (3, 1));
      Isa.Label "norx";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Cmp (3, 5));
      Isa.Branch_ne "loop";
      Isa.Instr (Isa.Trap 0);
      Isa.Branch "loop";
    ]

let psize prog =
  List.length (List.filter (function Isa.Label _ -> false | _ -> true) prog) + 8

(* Channel ids: the (client i, replica j) pair owns channels
   2*(i*m + j) (request, client -> worker) and its successor (response,
   worker -> client) — every one inter-shard, so wire w carries exactly
   channel w. *)
let ch_req ~m i j = 2 * ((i * m) + j)
let ch_resp ~m i j = ch_req ~m i j + 1

let spec_of dep =
  let n = dep.dp_clients and m = dep.dp_replicas in
  if n < 1 || n > 8 then invalid_arg "Svc.spec_of: 1-8 clients";
  if m < 1 || m > 4 then invalid_arg "Svc.spec_of: 1-4 replicas (device slots)";
  let client_colour i = Colour.make (Printf.sprintf "CL%d" i) in
  let worker_colour i j = Colour.make (Printf.sprintf "W%dR%d" i j) in
  let clients =
    List.init n (fun i ->
        let prog = client_program ~m ~chans:(fun j -> (ch_req ~m i j, ch_resp ~m i j)) in
        {
          Config.colour = client_colour i;
          part_size = psize prog;
          program = prog;
          devices = List.init m (fun _ -> Machine.Rx) @ List.init m (fun _ -> Machine.Tx);
        })
  in
  let workers =
    List.concat
      (List.init n (fun i ->
           List.init m (fun j ->
               let prog = worker_program ~req:(ch_req ~m i j) ~resp:(ch_resp ~m i j) in
               {
                 Config.colour = worker_colour i j;
                 part_size = psize prog;
                 program = prog;
                 devices = [ Machine.Rx; Machine.Tx ];
               })))
  in
  let channels =
    List.concat
      (List.init n (fun i ->
           List.concat
             (List.init m (fun j ->
                  [
                    (client_colour i, worker_colour i j, 8);
                    (worker_colour i j, client_colour i, 8);
                  ]))))
  in
  let cfg = Config.make ~regimes:(clients @ workers) ~channels () in
  {
    Fed.fs_label = "svc-" ^ dep.dp_name;
    fs_cfg = cfg;
    fs_placement =
      List.init n (fun i -> (client_colour i, 0))
      @ List.concat
          (List.init n (fun i -> List.init m (fun j -> (worker_colour i j, 1 + j))));
    fs_alphabet = [ [] ];
  }

(* -- Tuning ------------------------------------------------------------------ *)

type tuning = {
  tn_deadline : int;
  tn_max_attempts : int;
  tn_backoff : int;
  tn_backoff_cap : int;
  tn_jitter : int;
  tn_think_min : int;
  tn_think_max : int;
  tn_service_interval : int;
  tn_shed_threshold : int;
  tn_breaker_threshold : int;
  tn_breaker_cooldown : int;
}

let default_tuning =
  {
    tn_deadline = 600;
    tn_max_attempts = 4;
    tn_backoff = 32;
    tn_backoff_cap = 128;
    tn_jitter = 8;
    tn_think_min = 2;
    tn_think_max = 20;
    tn_service_interval = 2;
    tn_shed_threshold = 3;
    tn_breaker_threshold = 3;
    tn_breaker_cooldown = 400;
  }

(* -- Outcomes ---------------------------------------------------------------- *)

type outcome =
  | O_committed of int
  | O_replied of int * int
  | O_shed
  | O_degraded of int
  | O_spooled
  | O_fail_closed
  | O_fail_fast
  | O_gave_up
  | O_unknown
  | O_client_dead

let outcome_name = function
  | O_committed _ -> "committed"
  | O_replied _ -> "replied"
  | O_shed -> "shed"
  | O_degraded _ -> "degraded"
  | O_spooled -> "spooled"
  | O_fail_closed -> "fail-closed"
  | O_fail_fast -> "fail-fast"
  | O_gave_up -> "gave-up"
  | O_unknown -> "unknown"
  | O_client_dead -> "client-dead"

type record = {
  rr_client : int;
  rr_rid : int;
  rr_op : int;
  rr_arg : int;
  rr_issued : int;
  rr_attempts : int;
  rr_outcome : outcome option;
  rr_resolved : int;
}

type contract = {
  ct_requests : int;
  ct_resolved : int;
  ct_unresolved : int;
  ct_committed : int;
  ct_effects : int;
  ct_duplicate_effects : int;
  ct_lost_effects : int;
  ct_orphan_effects : int;
  ct_ok : bool;
}

let contract_to_json c =
  J.Obj
    [
      ("requests", J.Int c.ct_requests);
      ("resolved", J.Int c.ct_resolved);
      ("unresolved", J.Int c.ct_unresolved);
      ("committed", J.Int c.ct_committed);
      ("effects", J.Int c.ct_effects);
      ("duplicate_effects", J.Int c.ct_duplicate_effects);
      ("lost_effects", J.Int c.ct_lost_effects);
      ("orphan_effects", J.Int c.ct_orphan_effects);
      ("ok", J.Bool c.ct_ok);
    ]

(* -- Engine state ------------------------------------------------------------ *)

type rec_m = {
  rm_client : int;
  rm_rid : int;
  rm_op : int;
  rm_arg : int;
  rm_issued : int;
  mutable rm_attempts : int;
  mutable rm_outcome : outcome option;
  mutable rm_resolved : int;
}

type breaker = {
  mutable b_fails : int;
  mutable b_open_until : int; (* -1 = closed *)
}

type pending = {
  p_rid : int;
  p_op : int;
  p_arg : int;
  p_rec : rec_m;
  p_flow : int;
  mutable p_replica : int;
  mutable p_attempt : int;
  mutable p_deadline : int;
  mutable p_resend_at : int; (* -1 = attempt in flight *)
}

type client = {
  c_id : int;
  c_rng : Prng.t;
  c_breakers : breaker array;
  c_rsp_decoders : Protocol.decoder array; (* per replica Tx stream *)
  c_spool : (int * int) Queue.t;
  mutable c_next_rid : int;
  mutable c_pending : pending option;
  mutable c_next_issue : int;
  mutable c_pref : int; (* last replica that answered *)
}

type replica = {
  rp_id : int;
  rp_inbox : (int * Protocol.req) Queue.t; (* (client, request) *)
  rp_req_decoders : Protocol.decoder array; (* per client Tx stream *)
}

type role =
  | R_client_tx of int * int (* client i, replica j: responses arriving *)
  | R_worker_tx of int * int (* client i, replica j: requests arriving *)
  | R_silent (* an Rx device: never emits *)

type counters = {
  k_requests : Telemetry.counter;
  k_commits : Telemetry.counter;
  k_retries : Telemetry.counter;
  k_timeouts : Telemetry.counter;
  k_dedup : Telemetry.counter;
  k_shed : Telemetry.counter;
  k_spooled : Telemetry.counter;
  k_spool_drained : Telemetry.counter;
  k_degraded : Telemetry.counter;
  k_fail_closed : Telemetry.counter;
  k_breaker_open : Telemetry.counter;
  k_stale : Telemetry.counter;
  k_resync : Telemetry.counter;
  k_rtt : Telemetry.histogram;
}

type t = {
  dep : deployment;
  tuning : tuning;
  app : app;
  fedn : Fed.t;
  n : int;
  m : int;
  roles : role array;
  clients : client array;
  replicas : replica array;
  replay : (int * int, int * int) Hashtbl.t; (* (client, rid) -> (status, value) *)
  replay_fifo : int Queue.t array; (* per client, cached rids oldest first *)
  tel : Telemetry.t;
  k : counters;
  mutable effects : (int * int * int * int) list; (* newest first *)
  mutable recs : rec_m list; (* newest first *)
  mutable now : int;
  mutable issuing : bool;
  mutable max_inbox : int;
}

let worker_rx_dev t i j = (t.n * 2 * t.m) + (2 * (((i * t.m) + j)))
let client_rx_dev t i j = (i * 2 * t.m) + j

let build ?policy ?plan ?(monitor = false) ?(tuning = default_tuning) ~seed dep =
  let spec = spec_of dep in
  let fedn = Fed.build ?policy ?plan ~monitor spec in
  let n = dep.dp_clients and m = dep.dp_replicas in
  let roles =
    Array.init ((n * 2 * m) + (n * m * 2)) (fun d ->
        if d < n * 2 * m then begin
          let i = d / (2 * m) and s = d mod (2 * m) in
          if s < m then R_silent else R_client_tx (i, s - m)
        end
        else begin
          let r = d - (n * 2 * m) in
          let pair = r / 2 and s = r mod 2 in
          if s = 0 then R_silent else R_worker_tx (pair / m, pair mod m)
        end)
  in
  let clients =
    Array.init n (fun i ->
        let rng = Prng.stream seed i in
        {
          c_id = i;
          c_rng = rng;
          c_breakers = Array.init m (fun _ -> { b_fails = 0; b_open_until = -1 });
          c_rsp_decoders = Array.init m (fun _ -> Protocol.rsp_decoder ());
          c_spool = Queue.create ();
          c_next_rid = 0;
          c_pending = None;
          c_next_issue = i * 3; (* staggered starts *)
          c_pref = 0;
        })
  in
  let replicas =
    Array.init m (fun j ->
        {
          rp_id = j;
          rp_inbox = Queue.create ();
          rp_req_decoders = Array.init n (fun _ -> Protocol.req_decoder ());
        })
  in
  let tel = Telemetry.create () in
  let k =
    {
      k_requests = Telemetry.counter tel "svc.requests";
      k_commits = Telemetry.counter tel "svc.commits";
      k_retries = Telemetry.counter tel "svc.retries";
      k_timeouts = Telemetry.counter tel "svc.timeouts";
      k_dedup = Telemetry.counter tel "svc.dedup_hits";
      k_shed = Telemetry.counter tel "svc.shed";
      k_spooled = Telemetry.counter tel "svc.spooled";
      k_spool_drained = Telemetry.counter tel "svc.spool_drained";
      k_degraded = Telemetry.counter tel "svc.degraded_reads";
      k_fail_closed = Telemetry.counter tel "svc.fail_closed";
      k_breaker_open = Telemetry.counter tel "svc.breaker_open";
      k_stale = Telemetry.counter tel "svc.stale_replies";
      k_resync = Telemetry.counter tel "svc.resync_words";
      k_rtt = Telemetry.histogram tel "svc.rtt_steps";
    }
  in
  {
    dep;
    tuning;
    app = dep.dp_mk_app ();
    fedn;
    n;
    m;
    roles;
    clients;
    replicas;
    replay = Hashtbl.create 256;
    replay_fifo = Array.init n (fun _ -> Queue.create ());
    tel;
    k;
    effects = [];
    recs = [];
    now = 0;
    issuing = true;
    max_inbox = 0;
  }

let fed t = t.fedn
let telemetry t = t.tel

(* -- Breakers ---------------------------------------------------------------- *)

let breaker_available t b =
  b.b_open_until < 0 || t.now >= b.b_open_until

let breaker_fail t b =
  b.b_fails <- b.b_fails + 1;
  if b.b_fails >= t.tuning.tn_breaker_threshold then begin
    if b.b_open_until < t.now then Telemetry.incr t.k.k_breaker_open;
    b.b_open_until <- t.now + t.tuning.tn_breaker_cooldown
  end

let breaker_ok b =
  b.b_fails <- 0;
  b.b_open_until <- -1

(* A replica is worth sending to when its breaker admits it and its node
   has not been written off by the supervisor. *)
let replica_usable t c j =
  breaker_available t c.c_breakers.(j)
  && Fed.shard_state t.fedn ~shard:(1 + j) <> Fed.Abandoned

let choose_replica t c =
  let rec go k =
    if k >= t.m then None
    else begin
      let j = (c.c_pref + k) mod t.m in
      if replica_usable t c j then Some j else go (k + 1)
    end
  in
  go 0

(* -- Client side ------------------------------------------------------------- *)

let resolve t c p outcome =
  p.p_rec.rm_outcome <- Some outcome;
  p.p_rec.rm_resolved <- t.now;
  c.c_pending <- None;
  Trace.flow_end ~cat:"svc" ~id:p.p_flow "svc.request";
  Telemetry.observe t.k.k_rtt (float_of_int (t.now - p.p_rec.rm_issued));
  let think =
    t.tuning.tn_think_min
    + Prng.int c.c_rng (t.tuning.tn_think_max - t.tuning.tn_think_min + 1)
  in
  c.c_next_issue <- t.now + think

let send_attempt t c p j =
  p.p_replica <- j;
  p.p_resend_at <- -1;
  p.p_deadline <- t.now + t.tuning.tn_deadline;
  p.p_rec.rm_attempts <- p.p_rec.rm_attempts + 1;
  let words =
    Protocol.req_words { Protocol.rq_op = p.p_op; rq_rid = p.p_rid; rq_arg = p.p_arg }
  in
  Fed.push_input t.fedn ~device:(client_rx_dev t c.c_id j) words

(* Degraded resolution: what a client does with a request when no replica
   is available — at issue time only, for the effectful policies, so a
   spooled job can never race an in-flight copy of itself. *)
let resolve_degraded t c p =
  match t.app.ap_degraded ~op:p.p_op with
  | Spool ->
    Queue.add (p.p_op, p.p_arg) c.c_spool;
    Telemetry.incr t.k.k_spooled;
    resolve t c p O_spooled
  | Read_cached -> begin
    match t.app.ap_read_cached ~client:c.c_id ~op:p.p_op ~arg:p.p_arg with
    | Some v ->
      Telemetry.incr t.k.k_degraded;
      resolve t c p (O_degraded v)
    | None -> resolve t c p O_fail_fast
  end
  | Fail_closed ->
    Telemetry.incr t.k.k_fail_closed;
    resolve t c p O_fail_closed
  | Fail_fast -> resolve t c p O_fail_fast

let exhaust t c p =
  if t.app.ap_effectful p.p_op && p.p_rec.rm_attempts > 0 then resolve t c p O_unknown
  else resolve t c p O_gave_up

let issue t c ~from_spool (op, arg) =
  let rid = c.c_next_rid in
  c.c_next_rid <- (c.c_next_rid + 1) land 0xff;
  let rm =
    {
      rm_client = c.c_id;
      rm_rid = rid;
      rm_op = op;
      rm_arg = arg;
      rm_issued = t.now;
      rm_attempts = 0;
      rm_outcome = None;
      rm_resolved = -1;
    }
  in
  t.recs <- rm :: t.recs;
  Telemetry.incr t.k.k_requests;
  if from_spool then Telemetry.incr t.k.k_spool_drained;
  let flow =
    Trace.flow_start ~cat:"svc"
      ~args:
        [
          ("client", J.Int c.c_id);
          ("rid", J.Int rid);
          ("op", J.String (t.app.ap_op_name op));
        ]
      "svc.request"
  in
  let p =
    {
      p_rid = rid;
      p_op = op;
      p_arg = arg;
      p_rec = rm;
      p_flow = flow;
      p_replica = 0;
      p_attempt = 0;
      p_deadline = 0;
      p_resend_at = -1;
    }
  in
  c.c_pending <- Some p;
  match choose_replica t c with
  | Some j -> send_attempt t c p j
  | None -> resolve_degraded t c p

let backoff_delay t c attempt =
  let base = min t.tuning.tn_backoff_cap (t.tuning.tn_backoff lsl (attempt - 1)) in
  base + Prng.int c.c_rng (max 1 t.tuning.tn_jitter)

(* Deadline and resend timers, then fresh issues. A client whose own node
   the supervisor abandoned is dead: everything resolves [O_client_dead]
   and nothing further issues — there is no one left to answer. *)
let client_tick t c ~client_node_dead =
  if client_node_dead then begin
    match c.c_pending with
    | Some p -> resolve t c p O_client_dead
    | None -> ()
  end
  else begin
    (match c.c_pending with
    | Some p when p.p_resend_at >= 0 && t.now >= p.p_resend_at ->
      if p.p_attempt >= t.tuning.tn_max_attempts then exhaust t c p
      else begin
        match choose_replica t c with
        | Some j ->
          Telemetry.incr t.k.k_retries;
          Trace.instant ~cat:"svc"
            ~args:[ ("client", J.Int c.c_id); ("rid", J.Int p.p_rid); ("replica", J.Int j) ]
            "svc.retry";
          send_attempt t c p j
        | None ->
          (* Nothing to send to. Pure ops can degrade definitively;
             otherwise burn an attempt waiting for a replica to return. *)
          if t.app.ap_degraded ~op:p.p_op = Read_cached then resolve_degraded t c p
          else begin
            p.p_attempt <- p.p_attempt + 1;
            p.p_resend_at <- t.now + backoff_delay t c p.p_attempt
          end
      end
    | Some p when p.p_resend_at < 0 && t.now >= p.p_deadline ->
      Telemetry.incr t.k.k_timeouts;
      breaker_fail t c.c_breakers.(p.p_replica);
      p.p_attempt <- p.p_attempt + 1;
      if p.p_attempt >= t.tuning.tn_max_attempts then exhaust t c p
      else p.p_resend_at <- t.now + backoff_delay t c p.p_attempt
    | _ -> ());
    if c.c_pending = None && t.now >= c.c_next_issue then begin
      if not (Queue.is_empty c.c_spool) then begin
        match choose_replica t c with
        | Some _ -> issue t c ~from_spool:true (Queue.pop c.c_spool)
        | None -> if t.issuing then issue t c ~from_spool:false (t.dep.dp_workload c.c_rng)
      end
      else if t.issuing then issue t c ~from_spool:false (t.dep.dp_workload c.c_rng)
    end
  end

let handle_reply t c j (r : Protocol.rsp) =
  match c.c_pending with
  | Some p when p.p_rid = r.Protocol.rs_rid ->
    if r.Protocol.rs_status = st_shed then begin
      Telemetry.incr t.k.k_shed;
      breaker_fail t c.c_breakers.(j);
      resolve t c p O_shed
    end
    else begin
      breaker_ok c.c_breakers.(j);
      c.c_pref <- j;
      if r.Protocol.rs_status = st_commit then begin
        resolve t c p (O_committed r.Protocol.rs_value)
      end
      else resolve t c p (O_replied (r.Protocol.rs_status, r.Protocol.rs_value))
    end
  | _ -> Telemetry.incr t.k.k_stale

(* -- Server side ------------------------------------------------------------- *)

let send_reply t i j rsp =
  Fed.push_input t.fedn ~device:(worker_rx_dev t i j) (Protocol.rsp_words rsp)

let server_arrival t rp i (req : Protocol.req) =
  if Queue.length rp.rp_inbox >= t.tuning.tn_shed_threshold then
    (* Admission control: a definite Rejected reply, never a silent drop. *)
    send_reply t i rp.rp_id
      { Protocol.rs_status = st_shed; rs_rid = req.Protocol.rq_rid; rs_value = 0 }
  else begin
    Queue.add (i, req) rp.rp_inbox;
    t.max_inbox <- max t.max_inbox (Queue.length rp.rp_inbox)
  end

(* One request off the inbox: replay-cache dedup first — a retry of an
   already-committed request answers from the cache, never re-applies —
   then the application, ledger append and checkpoint on commit. The
   cache and ledger are the shared durable store every replica fronts. *)
let server_process t rp =
  if not (Queue.is_empty rp.rp_inbox) then begin
    let i, req = Queue.pop rp.rp_inbox in
    let key = (i, req.Protocol.rq_rid) in
    let status, value =
      match Hashtbl.find_opt t.replay key with
      | Some sv ->
        Telemetry.incr t.k.k_dedup;
        sv
      | None ->
        let reply =
          t.app.ap_apply ~client:i ~op:req.Protocol.rq_op ~arg:req.Protocol.rq_arg
        in
        let sv = status_of_reply reply in
        (match reply with
        | Commit _ ->
          t.effects <- (i, req.Protocol.rq_rid, req.Protocol.rq_op, t.now) :: t.effects;
          Telemetry.incr t.k.k_commits;
          t.app.ap_checkpoint ()
        | Ok _ | Denied _ | Notfound _ -> ());
        (* Wire rids are 8 bits, so a long-lived client reuses them; the
           cache holds each client's newest few so a straggler retry
           still hits while a reused rid 256 requests later misses. *)
        Hashtbl.replace t.replay key sv;
        Queue.add req.Protocol.rq_rid t.replay_fifo.(i);
        if Queue.length t.replay_fifo.(i) > 16 then
          Hashtbl.remove t.replay (i, Queue.pop t.replay_fifo.(i));
        sv
    in
    send_reply t i rp.rp_id
      { Protocol.rs_status = status; rs_rid = req.Protocol.rq_rid; rs_value = value }
  end

(* -- Stepping ---------------------------------------------------------------- *)

let step t =
  Fed.step t.fedn;
  List.iter
    (fun (d, w) ->
      match t.roles.(d) with
      | R_client_tx (i, j) -> begin
        match Protocol.feed_rsp t.clients.(i).c_rsp_decoders.(j) w with
        | Some rsp -> handle_reply t t.clients.(i) j rsp
        | None -> ()
      end
      | R_worker_tx (i, j) -> begin
        match Protocol.feed_req t.replicas.(j).rp_req_decoders.(i) w with
        | Some req -> server_arrival t t.replicas.(j) i req
        | None -> ()
      end
      | R_silent -> ())
    (Fed.take_outputs t.fedn);
  if t.now mod t.tuning.tn_service_interval = 0 then
    Array.iter (fun rp -> server_process t rp) t.replicas;
  let client_node_dead = Fed.shard_state t.fedn ~shard:0 = Fed.Abandoned in
  Array.iter (fun c -> client_tick t c ~client_node_dead) t.clients;
  t.now <- t.now + 1

let run t ~steps =
  for _ = 1 to steps do
    step t
  done

(* -- Finishing --------------------------------------------------------------- *)

type result = {
  sr_records : record list;
  sr_effects : (int * int * int * int) list;
  sr_contract : contract;
  sr_spool_held : int;
  sr_fed : Fed.observation;
}

let freeze rm =
  {
    rr_client = rm.rm_client;
    rr_rid = rm.rm_rid;
    rr_op = rm.rm_op;
    rr_arg = rm.rm_arg;
    rr_issued = rm.rm_issued;
    rr_attempts = rm.rm_attempts;
    rr_outcome = rm.rm_outcome;
    rr_resolved = rm.rm_resolved;
  }

let audit records effects =
  (* Wire rids wrap mod 256, so (client, rid) can name several requests
     over a long run; per-client issue times are strictly increasing, so
     (client, rid, issued) is unique and an effect belongs to the newest
     matching record issued at or before it struck. *)
  let groups = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = (r.rr_client, r.rr_rid) in
      Hashtbl.replace groups k (r :: Option.value ~default:[] (Hashtbl.find_opt groups k)))
    records;
  let owner c rid step =
    match Hashtbl.find_opt groups (c, rid) with
    | None | Some [] -> None
    | Some rs -> (
      (* newest first, records having arrived in issue order *)
      match List.find_opt (fun r -> r.rr_issued <= step) rs with
      | Some r -> Some r
      | None -> Some (List.nth rs (List.length rs - 1)))
  in
  let eff_count = Hashtbl.create 64 in
  let unowned = ref 0 in
  List.iter
    (fun (c, rid, _, step) ->
      match owner c rid step with
      | None -> incr unowned
      | Some r ->
        let k = (r.rr_client, r.rr_rid, r.rr_issued) in
        Hashtbl.replace eff_count k
          (1 + Option.value ~default:0 (Hashtbl.find_opt eff_count k)))
    effects;
  let dup = Hashtbl.fold (fun _ n acc -> acc + max 0 (n - 1)) eff_count 0 in
  let committed =
    List.filter (fun r -> match r.rr_outcome with Some (O_committed _) -> true | _ -> false)
      records
  in
  let lost =
    List.length
      (List.filter
         (fun r -> not (Hashtbl.mem eff_count (r.rr_client, r.rr_rid, r.rr_issued)))
         committed)
  in
  let orphan =
    !unowned
    + List.length
        (List.filter
           (fun r ->
             Hashtbl.mem eff_count (r.rr_client, r.rr_rid, r.rr_issued)
             && match r.rr_outcome with
                | Some (O_committed _ | O_unknown | O_client_dead) -> false
                | Some _ | None -> true)
           records)
  in
  let unresolved = List.length (List.filter (fun r -> r.rr_outcome = None) records) in
  let requests = List.length records in
  {
    ct_requests = requests;
    ct_resolved = requests - unresolved;
    ct_unresolved = unresolved;
    ct_committed = List.length committed;
    ct_effects = List.length effects;
    ct_duplicate_effects = dup;
    ct_lost_effects = lost;
    ct_orphan_effects = orphan;
    ct_ok = unresolved = 0 && dup = 0 && lost = 0 && orphan = 0;
  }

let finish ?(drain = 3000) t =
  t.issuing <- false;
  let budget = ref drain in
  let in_flight () = Array.exists (fun c -> c.c_pending <> None) t.clients in
  while !budget > 0 && in_flight () do
    step t;
    decr budget
  done;
  let resync =
    Array.fold_left
      (fun acc c ->
        Array.fold_left (fun a d -> a + Protocol.decoder_skipped d) acc c.c_rsp_decoders)
      0 t.clients
    + Array.fold_left
        (fun acc rp ->
          Array.fold_left (fun a d -> a + Protocol.decoder_skipped d) acc rp.rp_req_decoders)
        0 t.replicas
  in
  Telemetry.incr ~by:resync t.k.k_resync;
  let spool_held = Array.fold_left (fun acc c -> acc + Queue.length c.c_spool) 0 t.clients in
  Telemetry.set (Telemetry.gauge t.tel "svc.spool_depth") (float_of_int spool_held);
  Telemetry.set (Telemetry.gauge t.tel "svc.inbox_depth") (float_of_int t.max_inbox);
  let records = List.rev_map freeze t.recs in
  let effects = List.rev t.effects in
  {
    sr_records = records;
    sr_effects = effects;
    sr_contract = audit records effects;
    sr_spool_held = spool_held;
    sr_fed = Fed.finish t.fedn;
  }
