module Fed = Sep_fed.Fed
module Fault_plan = Sep_robust.Fault_plan
module Campaign = Sep_robust.Campaign
module Telemetry = Sep_obs.Telemetry
module Par = Sep_par.Par
module J = Sep_util.Json

type case = {
  sc_plan : Fault_plan.t;
  sc_outcome : Campaign.outcome;
  sc_contract : Svc.contract;
  sc_spool_held : int;
  sc_retries : int;
  sc_timeouts : int;
  sc_dedup_hits : int;
  sc_shed : int;
  sc_node_events : int;
  sc_frame_rejects : int;
  sc_abandoned : int list;
  sc_first_violation : (int * int) option;
}

type report = {
  sv_name : string;
  sv_seed : int;
  sv_steps : int;
  sv_cases : case list;
}

(* -- Plans ------------------------------------------------------------------ *)

let directed dep ~steps =
  let m = dep.Svc.dp_replicas in
  let spec = Svc.spec_of dep in
  let nlinks = Fed.nlinks_of spec in
  let at = max 1 (steps / 3) in
  let gap = max 1 (steps / 4) in
  [ { Fault_plan.label = "clean"; faults = [] } ]
  @ List.init m (fun j ->
        {
          Fault_plan.label = Fmt.str "crash-replica%d@%d" j at;
          faults = [ (at, Fault_plan.Shard_crash { shard = 1 + j }) ];
        })
  @ [
      (* the same replica struck past the reboot budget: the supervisor
         must abandon it cleanly while the survivors keep serving *)
      {
        Fault_plan.label = "crash-replica0-x3";
        faults = List.init 3 (fun k -> (at + (k * gap), Fault_plan.Shard_crash { shard = 1 }));
      };
      (* every replica down at once: degraded modes must answer *)
      {
        Fault_plan.label = "crash-all-replicas";
        faults = List.init m (fun j -> (at, Fault_plan.Shard_crash { shard = 1 + j }));
      };
    ]
  @ (List.init (min nlinks 2) (fun w ->
         {
           Fault_plan.label = Fmt.str "partition-wire%d@%d" w at;
           faults = [ (at, Fault_plan.Link_partition { link = w; window = 40 + (8 * w) }) ];
         })
    @ List.init (min nlinks 2) (fun w ->
          {
            Fault_plan.label = Fmt.str "tamper-wire%d@%d" w at;
            faults =
              List.init 4 (fun k -> (at + (k * 60), Fault_plan.Frame_tamper { link = w }));
          }))

let plans dep ~seed ~steps ~soak =
  let spec = Svc.spec_of dep in
  directed dep ~steps
  @ Fault_plan.soak ~nodes:(Fed.node_space spec) ~seed ~steps ~count:soak spec.Fed.fs_cfg

(* -- Classification --------------------------------------------------------- *)

(* The federation's evidence, as Fed_campaign reads it: detections and
   checksum rejects say the system noticed; failovers and rejoins say it
   recovered. The service contract replaces the differential trace
   comparison as the violation oracle — a user can't see traces, but a
   lost or doubled effect is exactly what they would see. *)
let noticed (ob : Fed.observation) =
  ob.Fed.fob_detections <> []
  || ob.Fed.fob_frame_rejects > 0
  || List.exists
       (fun (_, e) ->
         match e with
         | Fed.Node_down_detected _ | Fed.Node_quarantined _ | Fed.Frame_rejected _ -> true
         | _ -> false)
       ob.Fed.fob_events

let recovered (ob : Fed.observation) =
  ob.Fed.fob_recoveries <> []
  || List.exists
       (fun (_, e) ->
         match e with Fed.Node_failover _ | Fed.Node_rejoined _ -> true | _ -> false)
       ob.Fed.fob_events

let classify (r : Svc.result) tel plan =
  let ob = r.Svc.sr_fed in
  let outcome : Campaign.outcome =
    if ob.Fed.fob_first_violation <> None || not r.Svc.sr_contract.Svc.ct_ok then Violating
    else if recovered ob then Recovered_safe
    else if noticed ob then Detected_safe
    else Masked
  in
  let c name =
    match Telemetry.find_counter tel name with
    | Some k -> Telemetry.counter_value k
    | None -> 0
  in
  {
    sc_plan = plan;
    sc_outcome = outcome;
    sc_contract = r.Svc.sr_contract;
    sc_spool_held = r.Svc.sr_spool_held;
    sc_retries = c "svc.retries";
    sc_timeouts = c "svc.timeouts";
    sc_dedup_hits = c "svc.dedup_hits";
    sc_shed = c "svc.shed";
    sc_node_events = List.length ob.Fed.fob_events;
    sc_frame_rejects = ob.Fed.fob_frame_rejects;
    sc_abandoned = ob.Fed.fob_abandoned_nodes;
    sc_first_violation = ob.Fed.fob_first_violation;
  }

(* -- The campaign ----------------------------------------------------------- *)

let run ?jobs ?(monitor = true) ?policy ?tuning ?(soak = 6) ~seed ~steps dep =
  let all_plans = plans dep ~seed ~steps ~soak in
  let sv_cases =
    Par.map ?jobs
      (fun plan ->
        let t = Svc.build ?policy ~plan ~monitor ?tuning ~seed dep in
        Svc.run t ~steps;
        let r = Svc.finish t in
        classify r (Svc.telemetry t) plan)
      all_plans
  in
  { sv_name = dep.Svc.dp_name; sv_seed = seed; sv_steps = steps; sv_cases }

let holds r = List.for_all (fun c -> c.sc_outcome <> Campaign.Violating) r.sv_cases
let monitor_clean r = List.for_all (fun c -> c.sc_first_violation = None) r.sv_cases
let contracts_ok r = List.for_all (fun c -> c.sc_contract.Svc.ct_ok) r.sv_cases

let totals r =
  List.fold_left
    (fun (m, d, rc, v) c ->
      match c.sc_outcome with
      | Campaign.Masked -> (m + 1, d, rc, v)
      | Campaign.Detected_safe -> (m, d + 1, rc, v)
      | Campaign.Recovered_safe -> (m, d, rc + 1, v)
      | Campaign.Violating -> (m, d, rc, v + 1))
    (0, 0, 0, 0) r.sv_cases

let case_to_json r c =
  J.Obj
    [
      ("kind", J.String "svc-case");
      ("service", J.String r.sv_name);
      ("seed", J.Int r.sv_seed);
      ("steps", J.Int r.sv_steps);
      ("plan", Fault_plan.to_json c.sc_plan);
      ("outcome", J.String (Fmt.str "%a" Campaign.pp_outcome c.sc_outcome));
      ("contract", Svc.contract_to_json c.sc_contract);
      ("spool_held", J.Int c.sc_spool_held);
      ("retries", J.Int c.sc_retries);
      ("timeouts", J.Int c.sc_timeouts);
      ("dedup_hits", J.Int c.sc_dedup_hits);
      ("shed", J.Int c.sc_shed);
      ("node_events", J.Int c.sc_node_events);
      ("frame_rejects", J.Int c.sc_frame_rejects);
      ("abandoned", J.List (List.map (fun s -> J.Int s) c.sc_abandoned));
      ( "first_violation",
        match c.sc_first_violation with
        | None -> J.Null
        | Some (shard, step) -> J.Obj [ ("shard", J.Int shard); ("step", J.Int step) ] );
    ]

let summary_json r =
  let m, d, rc, v = totals r in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 r.sv_cases in
  J.Obj
    [
      ("kind", J.String "svc-campaign-summary");
      ("service", J.String r.sv_name);
      ("seed", J.Int r.sv_seed);
      ("steps", J.Int r.sv_steps);
      ("cases", J.Int (List.length r.sv_cases));
      ("masked", J.Int m);
      ("detected_safe", J.Int d);
      ("recovered_safe", J.Int rc);
      ("violating", J.Int v);
      ("requests", J.Int (sum (fun c -> c.sc_contract.Svc.ct_requests)));
      ("committed", J.Int (sum (fun c -> c.sc_contract.Svc.ct_committed)));
      ("lost_effects", J.Int (sum (fun c -> c.sc_contract.Svc.ct_lost_effects)));
      ("duplicate_effects", J.Int (sum (fun c -> c.sc_contract.Svc.ct_duplicate_effects)));
      ("retries", J.Int (sum (fun c -> c.sc_retries)));
      ("dedup_hits", J.Int (sum (fun c -> c.sc_dedup_hits)));
      ("holds", J.Bool (holds r));
      ("monitor_clean", J.Bool (monitor_clean r));
      ("contracts_ok", J.Bool (contracts_ok r));
    ]

let report_to_jsonl r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      Buffer.add_string buf (J.to_string (case_to_json r c));
      Buffer.add_char buf '\n')
    r.sv_cases;
  Buffer.add_string buf (J.to_string (summary_json r));
  Buffer.add_char buf '\n';
  Buffer.contents buf
