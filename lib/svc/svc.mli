(** Fault-tolerant request/response services over the kernel federation.

    The paper's §6 names the systems a separation kernel exists to host —
    the MLS file server, the printer server, authentication, the ACCAT
    Guard — and this module is the layer that lets their reproductions
    survive the federation's failure modes. A {e deployment} places [n]
    client regimes on one shard and [m] server replicas on [m] more; every
    (client, replica) pair gets a dedicated worker regime and a dedicated
    request/response channel pair, so each Tx stream is single-source and
    the declared channel graph is exactly the request paths. All traffic
    is real words through real {!Sep_core.Sue} channels, bridged across
    shards by {!Sep_fed.Fed}'s NICs; the regimes run small ISA forwarder
    loops, and the application logic — the durable store behind the
    stateless shard frontends — lives here, driving the federation through
    {!Fed.push_input}/{!Fed.take_outputs}.

    The fault-tolerance contract, verified end to end by {!finish}:

    - {b Wire integrity}: three-word frames ({!Sep_components.Protocol})
      with monotone per-client request ids and end-to-end checksums; the
      decoders resync within a frame of any corrupted word.
    - {b At-least-once trying}: per-request deadline timeouts, bounded
      retry with capped exponential backoff and deterministic
      ({!Sep_util.Prng.stream}-derived) jitter, failover across replicas.
    - {b At-most-once effects}: a replay cache keyed client×request id in
      the shared store dedups retries, so effects commit exactly once.
    - {b Load shedding}: a replica whose inbox backs up answers with a
      definite [Shed] reply — never a silent drop — and a per-client,
      per-replica circuit breaker stops hammering a failing replica.
    - {b Degraded modes}: with every replica unavailable, a printer job
      spools client-side and drains on rejoin, file-server reads are
      answered from the last output-commit checkpoint, the Guard fails
      closed, and everything else fails fast — all definite outcomes.

    Every accepted request therefore ends in an exactly-once committed
    effect or a definite client-visible failure; {!contract} counts the
    ways that could go wrong (lost, duplicated, orphaned effects;
    unresolved requests) and {!finish} reports them. *)

module Colour = Sep_model.Colour
module Config = Sep_core.Config
module Fed = Sep_fed.Fed
module Fault_plan = Sep_robust.Fault_plan
module Protocol = Sep_components.Protocol
module Telemetry = Sep_obs.Telemetry

(** {1 Applications} *)

(** What one application request does to the durable store. [Commit]
    is the only constructor that records an effect. *)
type reply =
  | Commit of int  (** effectful success: exactly-once matters *)
  | Ok of int  (** pure success (reads, status probes) *)
  | Denied of int  (** policy refusal — a healthy, definite reply *)
  | Notfound of int

(** What a client does when {e no} replica is available. *)
type degraded =
  | Fail_fast  (** definite local failure, nothing retained *)
  | Fail_closed  (** the Guard's posture: definite DENY *)
  | Read_cached  (** pure ops answered from the last committed checkpoint *)
  | Spool  (** effectful ops queued client-side, drained on rejoin *)

type app = {
  ap_apply : client:int -> op:int -> arg:int -> reply;
      (** execute against the live store (the engine dedups first) *)
  ap_checkpoint : unit -> unit;
      (** called after every committed effect — the output-commit fence
          {!Read_cached} serves from *)
  ap_read_cached : client:int -> op:int -> arg:int -> int option;
      (** answer a pure op from the checkpoint; [None] refuses *)
  ap_degraded : op:int -> degraded;
  ap_effectful : int -> bool;
      (** whether an op can commit — decides {!O_gave_up} vs {!O_unknown}
          when the retry budget dies with every replica unreachable *)
  ap_op_name : int -> string;
}

type deployment = {
  dp_name : string;
  dp_clients : int;  (** client regimes, all on shard 0 (at most 8) *)
  dp_replicas : int;  (** server replicas, shard 1+j each (at most 4) *)
  dp_mk_app : unit -> app;  (** fresh application state per engine *)
  dp_workload : Sep_util.Prng.t -> int * int;  (** draw one (op, arg) *)
}

val spec_of : deployment -> Fed.spec
(** The federation spec a deployment runs on: client regimes with one
    Rx/Tx device pair per replica, one worker regime per (client,
    replica) pair with its own Rx/Tx, and a dedicated request/response
    channel pair between each — every channel inter-shard, every Tx
    stream single-source. Raises [Invalid_argument] when the client or
    replica count exceeds what regime device slots allow. *)

(** {1 Tuning} *)

type tuning = {
  tn_deadline : int;  (** steps before an attempt times out *)
  tn_max_attempts : int;
  tn_backoff : int;  (** base backoff, doubled per attempt *)
  tn_backoff_cap : int;
  tn_jitter : int;  (** jitter drawn uniformly below this, per retry *)
  tn_think_min : int;  (** client think time between requests... *)
  tn_think_max : int;  (** ...drawn uniformly in this range (0 = burst) *)
  tn_service_interval : int;  (** a replica serves one request per this many steps *)
  tn_shed_threshold : int;  (** inbox length at which new arrivals shed *)
  tn_breaker_threshold : int;  (** consecutive failures that open the breaker *)
  tn_breaker_cooldown : int;  (** steps the breaker stays open *)
}

val default_tuning : tuning
(** Patience sized so a request outlives both the loaded round trip
    (forwarder regimes move roughly a word per rotation, so a frame's
    round trip runs a few hundred federation steps) and any outage the
    federation recovers from (crash detection + warm reboot, or a
    partition window): deadline 600, 4 attempts, backoff 32 capped at
    128, jitter below 8, think 2–20, service interval 2, shed at 3,
    breaker opens after 3 failures for 400 steps. *)

(** {1 Outcomes and the contract} *)

type outcome =
  | O_committed of int  (** server-confirmed effectful success *)
  | O_replied of int * int  (** definite non-effect reply: (status, value) *)
  | O_shed  (** definite [Rejected] under load shedding *)
  | O_degraded of int  (** answered locally from the checkpoint *)
  | O_spooled  (** retained client-side; drains as a fresh request *)
  | O_fail_closed  (** the Guard's definite local DENY *)
  | O_fail_fast  (** definite local failure, no replica available *)
  | O_gave_up  (** retry budget exhausted on a pure op: definite failure *)
  | O_unknown
      (** retry budget exhausted on an {e effectful} op with the whole
          server side unreachable: the commit status is definitely
          reported as unknown — the at-most-once boundary no client of a
          permanently dead service can cross. Dedup makes this reachable
          only under total, unrecovered server loss: while any replica
          answers, a retry fetches the cached reply instead. *)
  | O_client_dead  (** the client's own node was abandoned *)

val outcome_name : outcome -> string

type record = {
  rr_client : int;
  rr_rid : int;
  rr_op : int;
  rr_arg : int;
  rr_issued : int;
  rr_attempts : int;
  rr_outcome : outcome option;  (** [None]: unresolved — a contract breach *)
  rr_resolved : int;  (** step, [-1] while unresolved *)
}

type contract = {
  ct_requests : int;
  ct_resolved : int;
  ct_unresolved : int;
  ct_committed : int;  (** requests whose outcome is {!O_committed} *)
  ct_effects : int;  (** effects in the ledger *)
  ct_duplicate_effects : int;  (** same (client, rid) committed twice *)
  ct_lost_effects : int;  (** committed outcome with no ledger entry *)
  ct_orphan_effects : int;
      (** ledger entry whose request did not end committed (a request
          that ended {!O_unknown} or {!O_client_dead} is exempt:
          at-most-once is all a dead service or a dead client can be
          owed — but duplicates still count) *)
  ct_ok : bool;
}

val contract_to_json : contract -> Sep_util.Json.t

(** {1 The engine} *)

type t

val build :
  ?policy:Fed.policy ->
  ?plan:Fault_plan.t ->
  ?monitor:bool ->
  ?tuning:tuning ->
  seed:int ->
  deployment ->
  t
(** Assemble the federation for {!spec_of} and the service state around
    it. All randomness (workload draws, think times, retry jitter) comes
    from per-client {!Sep_util.Prng.stream} substreams of [seed], so a
    run is deterministic and independent of any [-j] above it. *)

val fed : t -> Fed.t
val telemetry : t -> Telemetry.t
(** Live counters: [svc.requests], [svc.commits], [svc.retries],
    [svc.timeouts], [svc.dedup_hits], [svc.shed], [svc.spooled],
    [svc.spool_drained], [svc.degraded_reads], [svc.fail_closed],
    [svc.breaker_open], [svc.stale_replies], [svc.resync_words]; the
    [svc.rtt_steps] histogram; [svc.spool_depth]/[svc.inbox_depth]
    gauges. *)

val step : t -> unit
(** One service step: one {!Fed.step}; decode the Tx words it surfaced
    (request arrivals at replicas — shed or enqueue — and response
    deliveries at clients); rate-limited replica processing with dedup
    against the replay cache; then per-client timers — due resends,
    deadline timeouts with backoff/failover, new issues, spool drains. *)

val run : t -> steps:int -> unit

type result = {
  sr_records : record list;  (** issue order *)
  sr_effects : (int * int * int * int) list;  (** (client, rid, op, step) *)
  sr_contract : contract;
  sr_spool_held : int;  (** jobs still spooled at the end *)
  sr_fed : Fed.observation;
}

val finish : ?drain:int -> t -> result
(** Stop issuing new workload, keep stepping until every in-flight
    request resolves (at most [drain] steps, default 3000 — beyond any
    remaining retry patience), then close the federation and audit the
    ledger against the records. *)
