(** Chaos soaks against the service contract.

    {!Sep_fed.Fed_campaign} asks whether an injected node fault lets one
    colour's words leak into another's trace; this campaign asks the
    question a {e user} of the federation would: did my request commit
    exactly once, or fail definitely? Each case replays one fault plan —
    a directed strike or a {!Sep_robust.Fault_plan.soak} storm — against
    a full service deployment with the online separability monitor
    attached, then audits the effect ledger against the client records.

    A case is [Violating] when the monitor flagged a separation violation
    {e or} the service contract broke (a lost, duplicated or orphaned
    effect, or a request left unresolved); otherwise it is classified by
    the federation's own evidence — [Recovered_safe] when the supervisor
    rebooted or rejoined something, [Detected_safe] when it merely
    noticed, [Masked] when the service rode the fault out with nothing to
    show but retries. Plans and replays are deterministic in [seed], and
    cases are independent, so the report is byte-identical at any
    [jobs]. *)

module Fed = Sep_fed.Fed
module Fault_plan = Sep_robust.Fault_plan
module Campaign = Sep_robust.Campaign

type case = {
  sc_plan : Fault_plan.t;
  sc_outcome : Campaign.outcome;
  sc_contract : Svc.contract;
  sc_spool_held : int;  (** jobs still spooled when the run ended *)
  sc_retries : int;
  sc_timeouts : int;
  sc_dedup_hits : int;  (** retries answered from the replay cache *)
  sc_shed : int;
  sc_node_events : int;
  sc_frame_rejects : int;
  sc_abandoned : int list;  (** shards the supervisor gave up on *)
  sc_first_violation : (int * int) option;  (** (shard, step) from the monitor *)
}

type report = {
  sv_name : string;  (** the deployment's [dp_name] *)
  sv_seed : int;
  sv_steps : int;
  sv_cases : case list;
}

val directed : Svc.deployment -> steps:int -> Fault_plan.t list
(** The coverage floor, service-shaped: a clean control case; one crash
    per replica shard; the {e same} replica crashed three times (past the
    default reboot budget — the supervisor must give up cleanly); every
    replica crashed at once (degraded modes must answer); one partition
    and one tamper strike per wire, on a sample of wires. *)

val run :
  ?jobs:int ->
  ?monitor:bool ->
  ?policy:Fed.policy ->
  ?tuning:Svc.tuning ->
  ?soak:int ->
  seed:int ->
  steps:int ->
  Svc.deployment ->
  report
(** {!directed} plans plus [soak] (default 6) {!Fault_plan.soak} storms,
    each replayed over [steps] service steps plus the drain, in parallel
    over up to [jobs] domains. *)

val holds : report -> bool
(** No case violated: no separation violation, no broken contract. *)

val monitor_clean : report -> bool

val contracts_ok : report -> bool
(** Every case's service contract held — 0 lost, 0 duplicated, 0 orphaned
    effects, nothing unresolved. *)

val totals : report -> int * int * int * int
(** (masked, detected-safe, recovered-safe, violating). *)

val case_to_json : report -> case -> Sep_util.Json.t
val summary_json : report -> Sep_util.Json.t

val report_to_jsonl : report -> string
(** One ["svc-case"] line per case, then one ["svc-campaign-summary"]. *)
