module Sclass = Sep_lattice.Sclass

let words msg = List.filter (fun w -> w <> "") (String.split_on_char ' ' msg)

let verb msg =
  match words msg with
  | [] -> ""
  | w :: _ -> w

let tail n msg =
  let len = String.length msg in
  let rec skip i remaining =
    if remaining = 0 then Some i
    else begin
      match String.index_from_opt msg i ' ' with
      | None -> None
      | Some j -> skip (j + 1) (remaining - 1)
    end
  in
  match skip 0 n with
  | Some i when i <= len -> String.sub msg i (len - i)
  | Some _ | None -> ""

let int_field key msg =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  let try_word w =
    if String.length w > plen && String.sub w 0 plen = prefix then
      int_of_string_opt (String.sub w plen (String.length w - plen))
    else None
  in
  List.find_map try_word (words msg)

let to_hex s =
  String.concat "" (List.init (String.length s) (fun i -> Fmt.str "%02x" (Char.code s.[i])))

let of_hex s =
  if String.length s mod 2 <> 0 then None
  else begin
    let n = String.length s / 2 in
    let b = Bytes.create n in
    let ok = ref true in
    for i = 0 to n - 1 do
      match int_of_string_opt ("0x" ^ String.sub s (2 * i) 2) with
      | Some v -> Bytes.set b i (Char.chr v)
      | None -> ok := false
    done;
    if !ok then Some (Bytes.to_string b) else None
  end

let class_to_wire c =
  let level = string_of_int (Sclass.level c) in
  match Sclass.compartments c with
  | [] -> level
  | cs -> level ^ ":" ^ String.concat "," cs

(* -- Word-level service frames ---------------------------------------------- *)

type req = {
  rq_op : int;
  rq_rid : int;
  rq_arg : int;
}

type rsp = {
  rs_status : int;
  rs_rid : int;
  rs_value : int;
}

let frame_words = 3
let frame_cksum w0 w1 = ((w0 * 31) + (w1 * 131) + 23) land 0xffff
let req_magic = 0xa
let rsp_magic = 0xb

let head magic code rid = (magic lsl 12) lor ((code land 0xf) lsl 8) lor (rid land 0xff)

let req_words r =
  let w0 = head req_magic r.rq_op r.rq_rid in
  let w1 = r.rq_arg land 0xffff in
  [ w0; w1; frame_cksum w0 w1 ]

let rsp_words r =
  let w0 = head rsp_magic r.rs_status r.rs_rid in
  let w1 = r.rs_value land 0xffff in
  [ w0; w1; frame_cksum w0 w1 ]

(* Stream decoding with resync: the transport underneath (channel rings
   crossed by NIC wires) can lose or corrupt individual words under
   faults, so a decoder must not trust word alignment. Three words are
   buffered; if they don't form a valid frame — wrong magic or checksum —
   the oldest word is discarded and decoding continues one word later.
   A valid frame is therefore found again within [frame_words] words of
   any corruption. *)
type decoder = {
  d_magic : int;
  mutable d_buf : int list; (* oldest first, length < frame_words *)
  mutable d_skipped : int;
}

let req_decoder () = { d_magic = req_magic; d_buf = []; d_skipped = 0 }
let rsp_decoder () = { d_magic = rsp_magic; d_buf = []; d_skipped = 0 }
let decoder_skipped d = d.d_skipped

let feed d w =
  match d.d_buf @ [ w land 0xffff ] with
  | [ w0; w1; w2 ] ->
    if w0 lsr 12 = d.d_magic && w2 = frame_cksum w0 w1 then begin
      d.d_buf <- [];
      Some (w0, w1)
    end
    else begin
      d.d_buf <- [ w1; w2 ];
      d.d_skipped <- d.d_skipped + 1;
      None
    end
  | buf ->
    d.d_buf <- buf;
    None

let feed_req d w =
  Option.map
    (fun (w0, w1) -> { rq_op = (w0 lsr 8) land 0xf; rq_rid = w0 land 0xff; rq_arg = w1 })
    (feed d w)

let feed_rsp d w =
  Option.map
    (fun (w0, w1) -> { rs_status = (w0 lsr 8) land 0xf; rs_rid = w0 land 0xff; rs_value = w1 })
    (feed d w)

let class_of_wire s =
  let level_str, comps =
    match String.index_opt s ':' with
    | None -> (s, [])
    | Some i ->
      ( String.sub s 0 i,
        String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1))
        |> List.filter (fun c -> c <> "") )
  in
  match int_of_string_opt level_str with
  | Some level when level >= 0 -> Some (Sclass.with_compartments (Sclass.make ~level ()) comps)
  | Some _ | None -> None
