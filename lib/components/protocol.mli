(** Wire message formats shared by the trusted components.

    Messages are single-line, space-separated words; the first word is the
    verb. Fields that may contain spaces (file data, print bodies) are the
    final field and run to the end of the line. Keeping the grammar here
    means every component parses requests the same way — and that the
    censor's notion of "well-formed" is the same grammar the legitimate
    components actually speak. *)

val words : string -> string list
(** Split on single spaces; no empty words. *)

val verb : string -> string
(** First word, or [""]. *)

val tail : int -> string -> string
(** [tail n msg] is everything after the [n]-th space-separated word —
    the rest-of-line field. Empty when absent. *)

val int_field : string -> string -> int option
(** [int_field key msg] finds a ["key=value"] word and parses the value. *)

val to_hex : string -> string
(** Lowercase hex encoding, two digits per byte. *)

val of_hex : string -> string option
(** Inverse of {!to_hex}; [None] on odd length or non-hex digits. *)

val class_to_wire : Sep_lattice.Sclass.t -> string
(** Encode a security class as one word, e.g. ["2:CRYPTO,NATO"]. *)

val class_of_wire : string -> Sep_lattice.Sclass.t option
(** Inverse of {!class_to_wire}. *)

(** {1 Word-level service frames}

    The request/response wire format {!Sep_svc} speaks through real
    kernel channels: three 16-bit words per frame. The head word packs a
    4-bit magic (0xA requests, 0xB responses), a 4-bit op or status code
    and an 8-bit request id; the second word is the payload; the third an
    end-to-end checksum over the first two. Request ids are monotone mod
    256 per client — the dedup key and the retry-idempotency token. *)

type req = {
  rq_op : int;  (** 4-bit operation code *)
  rq_rid : int;  (** 8-bit request id, monotone per client *)
  rq_arg : int;  (** 16-bit argument *)
}

type rsp = {
  rs_status : int;  (** 4-bit status code *)
  rs_rid : int;  (** the request id this answers *)
  rs_value : int;  (** 16-bit result *)
}

val frame_words : int
(** Words per frame (3). *)

val req_words : req -> int list
val rsp_words : rsp -> int list

type decoder
(** An incremental frame decoder over a word stream, with resync: an
    invalid three-word window (wrong magic or checksum — e.g. after a
    fault destroyed a word in transit) discards its oldest word and
    decoding continues, so alignment is re-found within {!frame_words}
    words of any corruption. *)

val req_decoder : unit -> decoder
val rsp_decoder : unit -> decoder

val feed_req : decoder -> int -> req option
(** Feed one word; [Some r] when it completes a valid request frame. *)

val feed_rsp : decoder -> int -> rsp option

val decoder_skipped : decoder -> int
(** Words discarded by resync so far. *)
