(** Deterministic work-sharded parallel execution over OCaml 5 domains.

    The verification workloads of this repository — fault campaigns,
    coverage-guided fuzzing, mutant killing, randomized walks — are
    embarrassingly parallel replays of isolated machines: exactly the
    picture the separation kernel itself paints of one processor. This
    module runs such work lists across domains under a hard determinism
    contract: {e results are bit-identical for any job count}.

    The contract is enforced by construction:
    - the work list is fixed before execution and indexed [0..n-1];
    - sharding is stable and index-based (task [i] runs on shard
      [i mod jobs]), never work-stealing;
    - any randomness a task needs comes from {!Sep_util.Prng.stream}
      [(root seed, task index)], so a task's stream does not depend on
      which domain runs it or in what order;
    - results are merged in canonical work order.

    Telemetry is parallel-safe: each worker domain accumulates spans into
    its own {!Sep_obs.Span.local} registry, and at join the executor
    merges them (counters add, histograms merge bucketwise) into the
    spawning domain's registry. The executor's own counters
    ([par.shards], [par.tasks], [par.merge_ns]) live in {!registry} and
    are surfaced by [rushby stats --json]. *)

val registry : Sep_obs.Telemetry.t
(** Executor statistics: [par.shards] (worker domains spawned),
    [par.tasks] (tasks executed, sequential fallback included),
    [par.merge_ns] (nanoseconds spent merging worker telemetry at
    join). Updated only from spawning domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the default for every [-j]
    flag. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed on up to [jobs] domains
    (default {!default_jobs}; clamped to the work-list length). [f] must
    not mutate state shared across tasks — per-task state and
    {!Sep_obs.Span} timing are safe. Results are in input order; an
    exception raised by any [f] is re-raised (the one from the
    lowest-indexed failing task) after all domains join. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} with the task index. *)

val map_seeded :
  ?jobs:int -> seed:int -> (Sep_util.Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** {!map} where task [i] additionally receives the independent stream
    {!Sep_util.Prng.stream}[ seed i], making seeded randomness
    shard-invariant. *)
