module Telemetry = Sep_obs.Telemetry
module Span = Sep_obs.Span
module Prng = Sep_util.Prng

let registry = Telemetry.create ()
let c_shards = Telemetry.counter registry "par.shards"
let c_tasks = Telemetry.counter registry "par.tasks"
let c_merge_ns = Telemetry.counter registry "par.merge_ns"

let default_jobs () = Domain.recommended_domain_count ()

(* One shard: task [i] for every [i = base (mod jobs)], in index order.
   Results land at distinct indices of the shared array — no two domains
   ever touch the same cell — and the first exception (by task index, so
   deterministically the same one whatever the interleaving) is kept. *)
let run_shard ?(flow = 0) work results jobs base =
  (* task boundary: the shard's Begin/End slice closes the fork edge the
     spawner opened, giving the causal trace fork->run->join structure *)
  if Sep_obs.Trace.enabled () then begin
    Sep_obs.Trace.flow_end ~cat:"par" ~id:flow "fork";
    Sep_obs.Trace.emit ~cat:"par" ~phase:Sep_obs.Trace.Begin
      ~args:[ ("shard", Sep_util.Json.Int base); ("jobs", Sep_util.Json.Int jobs) ]
      "shard"
  end;
  let n = Array.length work in
  let first_exn = ref None in
  let i = ref base in
  while !i < n do
    (match !first_exn with
    | Some _ -> ()
    | None -> (
      try results.(!i) <- Some (work.(!i) ()) with e -> first_exn := Some (!i, e)));
    i := !i + jobs
  done;
  if Sep_obs.Trace.enabled () then
    Sep_obs.Trace.emit ~cat:"par" ~phase:Sep_obs.Trace.End "shard";
  !first_exn

let mapi ?jobs f xs =
  let work = Array.of_list (List.mapi (fun i x -> fun () -> f i x) xs) in
  let n = Array.length work in
  let jobs = max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) n) in
  Telemetry.incr ~by:n c_tasks;
  if n = 0 then []
  else if jobs = 1 then List.mapi f xs
  else begin
    let results = Array.make n None in
    let spawner_registry = Span.local () in
    let worker flow base () =
      let exn = run_shard ~flow work results jobs base in
      (exn, Span.local ())
    in
    Telemetry.incr ~by:(jobs - 1) c_shards;
    let fork k =
      (* one flow edge per spawned domain: fork on the spawner, closed by
         the shard running on the worker *)
      let flow =
        if Sep_obs.Trace.enabled () then
          Sep_obs.Trace.flow_start ~cat:"par"
            ~args:[ ("shard", Sep_util.Json.Int (k + 1)) ]
            "fork"
        else 0
      in
      Domain.spawn (worker flow (k + 1))
    in
    let domains = List.init (jobs - 1) fork in
    let exn0 = run_shard work results jobs 0 in
    let joined = List.map Domain.join domains in
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, reg) -> Telemetry.merge ~into:spawner_registry reg) joined;
    Telemetry.incr ~by:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) c_merge_ns;
    let failures = List.filter_map Fun.id (exn0 :: List.map fst joined) in
    (match List.sort (fun (a, _) (b, _) -> compare a b) failures with
    | (_, e) :: _ -> raise e
    | [] -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let map_seeded ?jobs ~seed f xs = mapi ?jobs (fun i x -> f (Prng.stream seed i) x) xs
