module Telemetry = Sep_obs.Telemetry
module Span = Sep_obs.Span
module Prng = Sep_util.Prng

let registry = Telemetry.create ()
let c_shards = Telemetry.counter registry "par.shards"
let c_tasks = Telemetry.counter registry "par.tasks"
let c_merge_ns = Telemetry.counter registry "par.merge_ns"

let default_jobs () = Domain.recommended_domain_count ()

(* One shard: task [i] for every [i = base (mod jobs)], in index order.
   Results land at distinct indices of the shared array — no two domains
   ever touch the same cell — and the first exception (by task index, so
   deterministically the same one whatever the interleaving) is kept. *)
let run_shard work results jobs base =
  let n = Array.length work in
  let first_exn = ref None in
  let i = ref base in
  while !i < n do
    (match !first_exn with
    | Some _ -> ()
    | None -> (
      try results.(!i) <- Some (work.(!i) ()) with e -> first_exn := Some (!i, e)));
    i := !i + jobs
  done;
  !first_exn

let mapi ?jobs f xs =
  let work = Array.of_list (List.mapi (fun i x -> fun () -> f i x) xs) in
  let n = Array.length work in
  let jobs = max 1 (min (match jobs with Some j -> j | None -> default_jobs ()) n) in
  Telemetry.incr ~by:n c_tasks;
  if n = 0 then []
  else if jobs = 1 then List.mapi f xs
  else begin
    let results = Array.make n None in
    let spawner_registry = Span.local () in
    let worker base () =
      let exn = run_shard work results jobs base in
      (exn, Span.local ())
    in
    Telemetry.incr ~by:(jobs - 1) c_shards;
    let domains = List.init (jobs - 1) (fun k -> Domain.spawn (worker (k + 1))) in
    let exn0 = run_shard work results jobs 0 in
    let joined = List.map Domain.join domains in
    let t0 = Unix.gettimeofday () in
    List.iter (fun (_, reg) -> Telemetry.merge ~into:spawner_registry reg) joined;
    Telemetry.incr ~by:(int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) c_merge_ns;
    let failures = List.filter_map Fun.id (exn0 :: List.map fst joined) in
    (match List.sort (fun (a, _) (b, _) -> compare a b) failures with
    | (_, e) :: _ -> raise e
    | [] -> ());
    Array.to_list
      (Array.map (function Some v -> v | None -> assert false) results)
  end

let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs

let map_seeded ?jobs ~seed f xs = mapi ?jobs (fun i x -> f (Prng.stream seed i) x) xs
