(* rushby: command-line front end to the separation-kernel reproduction.

   One subcommand per activity: verifying kernels (exhaustively or by
   randomized sampling), running the IFA baseline, driving the SNFE, the
   Guard and the MLS system, measuring covert bandwidth, and printing the
   kernel-comparison metrics. *)

open Cmdliner

let scenario_of_string = function
  | "pipeline" -> Ok Sep_core.Scenarios.pipeline
  | "interrupt" -> Ok Sep_core.Scenarios.interrupt
  | "snfe-micro" -> Ok Sep_core.Scenarios.snfe_micro
  | "preemptive" -> Ok Sep_core.Scenarios.preemptive
  | s -> Error (`Msg ("unknown scenario " ^ s ^ " (pipeline|interrupt|snfe-micro|preemptive)"))

let scenario_conv = Arg.conv (scenario_of_string, fun ppf i -> Fmt.string ppf i.Sep_core.Scenarios.label)

let bug_of_string s =
  let matching b = Fmt.str "%a" Sep_core.Sue.pp_bug b = s in
  match List.find_opt matching Sep_core.Sue.all_bugs with
  | Some b -> Ok b
  | None ->
    Error
      (`Msg
         (Fmt.str "unknown bug %s (one of: %a)" s
            Fmt.(list ~sep:(any ", ") Sep_core.Sue.pp_bug)
            Sep_core.Sue.all_bugs))

let bug_conv = Arg.conv (bug_of_string, Sep_core.Sue.pp_bug)

let scenario_arg =
  Arg.(value & opt scenario_conv Sep_core.Scenarios.pipeline & info [ "scenario" ] ~doc:"Scenario: pipeline, interrupt, snfe-micro or preemptive.")

let bugs_arg =
  Arg.(value & opt_all bug_conv [] & info [ "bug" ] ~doc:"Inject a kernel bug (repeatable).")

let uncut_arg =
  Arg.(value & flag & info [ "uncut" ] ~doc:"Skip the wire-cutting transformation (channels left shared).")

(* the one seed flag: every randomized subcommand (verify-random,
   bandwidth, inject, fuzz, recover) shares this definition, so --seed
   means the same thing, with the same default, everywhere *)
let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(value
       & opt int (Sep_par.Par.default_jobs ())
       & info [ "j"; "jobs" ]
           ~doc:
             "Worker domains for parallel verification (default: the recommended domain count). \
              Results are bit-identical for any value.")

let impl_arg =
  let impl_of_string = function
    | "microcode" -> Ok Sep_core.Sue.Microcode
    | "assembly" | "asm" -> Ok Sep_core.Sue.Assembly
    | other -> Error (`Msg ("unknown kernel implementation " ^ other))
  in
  let impl_conv = Arg.conv (impl_of_string, Sep_core.Sue.pp_impl) in
  Arg.(value & opt impl_conv Sep_core.Sue.Microcode
       & info [ "impl" ] ~doc:"Kernel implementation: microcode or assembly (machine code).")

let trace_json_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-json" ] ~docv:"FILE"
           ~doc:"Also write a machine-readable JSONL record of the run to $(docv).")

(* the deterministic drip of external input used by trace/stats runs *)
let drip_inputs scenario =
  let alphabet = Array.of_list scenario.Sep_core.Scenarios.alphabet in
  fun n ->
    if Array.length alphabet > 1 && n mod 10 = 0 then
      alphabet.((n / 10) mod (Array.length alphabet - 1) + 1)
    else []

(* a bad --trace-json/--json path is a usage problem, not an internal error *)
let graceful_write f = try f () with Sys_error msg -> Fmt.epr "rushby: %s@." msg; exit 1

let emit_json_record file ~kernel_counters report =
  graceful_write @@ fun () ->
  Sep_obs.Sink.with_file file (fun sink ->
      Sep_obs.Sink.emit sink
        (Sep_util.Json.Obj
           [
             ("kind", Sep_util.Json.String "report");
             ("report", Sep_core.Separability.report_to_json report);
           ]);
      (match kernel_counters with
      | None -> ()
      | Some tel ->
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "kernel_counters");
               ("telemetry", Sep_obs.Telemetry.to_json tel);
             ]));
      Sep_obs.Sink.emit sink
        (Sep_util.Json.Obj
           [ ("kind", Sep_util.Json.String "spans"); ("telemetry", Sep_obs.Span.to_json ()) ]))

(* -- verify ---------------------------------------------------------------- *)

let verify_run scenario bugs uncut impl trace_json =
  if trace_json <> None then Sep_obs.Span.set_enabled true;
  let cfg =
    if uncut then Sep_core.Config.cut_none scenario.Sep_core.Scenarios.cfg
    else scenario.Sep_core.Scenarios.cfg
  in
  let sys = Sep_core.Sue.to_system ~bugs ~impl ~inputs:scenario.Sep_core.Scenarios.alphabet cfg in
  let report = Sep_core.Separability.check sys in
  Fmt.pr "%a@." Sep_core.Separability.pp_report report;
  (match trace_json with
  | None -> ()
  | Some file ->
    (* the exploration's kernel counters accumulate in the system's shared
       initial instance *)
    let kernel_counters =
      match sys.Sep_model.System.initial with
      | t0 :: _ -> Some (Sep_core.Sue.telemetry t0)
      | [] -> None
    in
    emit_json_record file ~kernel_counters report);
  if Sep_core.Separability.verified report then 0 else 1

let verify_cmd =
  let doc = "Exhaustive Proof of Separability over a micro-scenario." in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const verify_run $ scenario_arg $ bugs_arg $ uncut_arg $ impl_arg $ trace_json_arg)

(* -- verify-random ---------------------------------------------------------- *)

let walks_arg = Arg.(value & opt int 8 & info [ "walks" ] ~doc:"Random walks.")
let walk_len_arg = Arg.(value & opt int 64 & info [ "len" ] ~doc:"Steps per walk.")

let scrambles_arg =
  Arg.(value & opt int 2 & info [ "scrambles" ] ~doc:"Scrambled partners per state per colour.")

let pp_schedule ppf sched =
  if sched = [] then Fmt.string ppf "(empty)"
  else
    Fmt.(
      list ~sep:(any " | ") (fun ppf step ->
          if step = [] then Fmt.string ppf "-"
          else list ~sep:comma (fun ppf (d, w) -> Fmt.pf ppf "d%d<=%d" d w) ppf step))
      ppf sched

(* On a randomized failure, print standalone minimized counterexamples
   instead of the raw sampled-run dump, plus the one-line replay. *)
let print_minimized scenario bugs impl seed params conditions =
  let minimized =
    Sep_check.Score.minimize_randomized ~bugs ~impl ~params ~seed
      ~inputs:scenario.Sep_core.Scenarios.alphabet ~conditions scenario.Sep_core.Scenarios.cfg
  in
  List.iter
    (fun (m : Sep_check.Score.minimized) ->
      Fmt.pr
        "minimized counterexample (condition%s %s): %d-step schedule %a  [check seed %d, %d \
         scrambles, %d shrink steps]@."
        (if List.compare_length_with m.mz_conditions 1 > 0 then "s" else "")
        (String.concat "," (List.map string_of_int m.mz_conditions))
        (List.length m.mz_schedule) pp_schedule m.mz_schedule m.mz_seed m.mz_scrambles
        m.mz_shrink_steps)
    minimized;
  let reproduced c =
    List.exists (fun (m : Sep_check.Score.minimized) -> List.mem c m.mz_conditions) minimized
  in
  (match List.filter (fun c -> not (reproduced c)) conditions with
  | [] -> ()
  | missing ->
    Fmt.pr "condition%s %s: no standalone schedule found; rerun with --trace-json for the full run@."
      (if List.compare_length_with missing 1 > 0 then "s" else "")
      (String.concat "," (List.map string_of_int missing)));
  Fmt.pr "replay: rushby fuzz --replay %d --scenario %s%s%s --walks %d --len %d --scrambles %d@."
    seed scenario.Sep_core.Scenarios.label
    (String.concat ""
       (List.map (fun b -> Fmt.str " --bug %a" Sep_core.Sue.pp_bug b) bugs))
    (match impl with Sep_core.Sue.Assembly -> " --impl assembly" | Sep_core.Sue.Microcode -> "")
    params.Sep_core.Randomized.walks params.Sep_core.Randomized.walk_len
    params.Sep_core.Randomized.scrambles

let verify_random_run scenario bugs seed jobs walks walk_len scrambles impl trace_json =
  if trace_json <> None then Sep_obs.Span.set_enabled true;
  let params = { Sep_core.Randomized.walks; walk_len; scrambles } in
  let report =
    Sep_core.Randomized.check ~bugs ~impl ~jobs ~params ~seed
      ~inputs:scenario.Sep_core.Scenarios.alphabet scenario.Sep_core.Scenarios.cfg
  in
  (if Sep_core.Separability.verified report then Fmt.pr "%a@." Sep_core.Separability.pp_report report
   else begin
     Fmt.pr "%a@." Sep_core.Separability.pp_summary report;
     print_minimized scenario bugs impl seed params
       (Sep_core.Separability.failing_conditions report)
   end);
  (match trace_json with
  | None -> ()
  | Some file -> emit_json_record file ~kernel_counters:None report);
  if Sep_core.Separability.verified report then 0 else 1

let verify_random_cmd =
  let doc = "Randomized Proof of Separability (random walks plus scrambled partners)." in
  Cmd.v (Cmd.info "verify-random" ~doc)
    Term.(
      const verify_random_run $ scenario_arg $ bugs_arg $ seed_arg $ jobs_arg $ walks_arg
      $ walk_len_arg $ scrambles_arg $ impl_arg $ trace_json_arg)

(* -- mutants ---------------------------------------------------------------- *)

let mutants_run () =
  let table = Sep_util.Table.create ~title:"Seeded kernel bugs vs the six conditions"
      ~columns:[ "bug"; "scenario"; "predicted"; "failing"; "caught" ] in
  let all_caught = ref true in
  List.iter
    (fun (e : Sep_core.Mutants.expectation) ->
      let report = Sep_core.Mutants.run e in
      let caught = Sep_core.Mutants.detected e report in
      if not caught then all_caught := false;
      Sep_util.Table.add_row table
        [
          Fmt.str "%a" Sep_core.Sue.pp_bug e.bug;
          e.scenario.Sep_core.Scenarios.label;
          string_of_int e.primary;
          String.concat "," (List.map string_of_int (Sep_core.Separability.failing_conditions report));
          (if caught then "yes" else "NO");
        ])
    Sep_core.Mutants.catalogue;
  Sep_util.Table.print table;
  if !all_caught then 0 else 1

let mutants_cmd =
  Cmd.v (Cmd.info "mutants" ~doc:"Check every seeded kernel bug against its predicted condition.")
    Term.(const mutants_run $ const ())

(* -- ifa -------------------------------------------------------------------- *)

let ifa_run () =
  let table =
    Sep_util.Table.create ~title:"Information Flow Analysis verdicts"
      ~columns:[ "program"; "semantically secure"; "IFA verdict"; "taint verdict"; "note" ]
  in
  List.iter
    (fun (case : Sep_ifa.Programs.case) ->
      let violations = Sep_ifa.Certify.certify case.env case.program in
      let taint = Sep_ifa.Taint.run ~env:case.env case.store case.program in
      Sep_util.Table.add_row table
        [
          case.name;
          (if case.expect_secure then "yes" else "no");
          (if violations = [] then "certified" else Fmt.str "rejected (%d flows)" (List.length violations));
          (if taint.Sep_ifa.Taint.violations = [] then "clean" else "flagged");
          case.note;
        ])
    Sep_ifa.Programs.all;
  Sep_util.Table.print table;
  0

let ifa_cmd = Cmd.v (Cmd.info "ifa" ~doc:"Run the IFA baseline over the program catalogue.") Term.(const ifa_run $ const ())

(* -- snfe ------------------------------------------------------------------- *)

let censor_of_string = function
  | "off" -> Ok Sep_components.Censor.Off
  | "basic" -> Ok Sep_components.Censor.Basic
  | "strict" -> Ok Sep_components.Censor.Strict
  | s -> Error (`Msg ("unknown censor mode " ^ s))

let censor_conv = Arg.conv (censor_of_string, Sep_components.Censor.pp_mode)

let censor_arg =
  Arg.(value & opt censor_conv Sep_components.Censor.Basic & info [ "censor" ] ~doc:"Censor mode: off, basic or strict.")

let kind_arg =
  let kind_of_string = function
    | "distributed" -> Ok Sep_snfe.Substrate.Distributed
    | "kernelized" -> Ok Sep_snfe.Substrate.Kernelized
    | s -> Error (`Msg ("unknown substrate " ^ s))
  in
  let kind_conv = Arg.conv (kind_of_string, Sep_snfe.Substrate.pp_kind) in
  Arg.(value & opt kind_conv Sep_snfe.Substrate.Kernelized & info [ "substrate" ] ~doc:"distributed or kernelized.")

let snfe_run kind censor =
  let cfg = { Sep_snfe.Snfe.default_config with censor_mode = censor } in
  let outbound = [ "attack at dawn"; "hold position"; "regroup at bridge" ] in
  let inbound = [ "acknowledged"; "send supplies" ] in
  let r = Sep_snfe.Snfe.run_duplex kind cfg ~outbound ~inbound ~steps:40 in
  Fmt.pr "@[<v>network saw:@,%a@,host saw:@,%a@,cleartext leaks: %d@]@."
    Fmt.(list ~sep:cut (fun ppf s -> Fmt.pf ppf "  %s" s))
    r.Sep_snfe.Snfe.net_packets
    Fmt.(list ~sep:cut (fun ppf s -> Fmt.pf ppf "  %s" s))
    r.Sep_snfe.Snfe.host_packets
    (List.length r.Sep_snfe.Snfe.cleartext_on_net);
  if r.Sep_snfe.Snfe.cleartext_on_net = [] then 0 else 1

let snfe_cmd =
  Cmd.v (Cmd.info "snfe" ~doc:"Drive the secure network front end end-to-end.")
    Term.(const snfe_run $ kind_arg $ censor_arg)

(* -- bandwidth -------------------------------------------------------------- *)

let bandwidth_run messages seed =
  let table =
    Sep_util.Table.create
      ~title:"Covert bandwidth through the bypass (bits reliably recovered per message)"
      ~columns:[ "encoder"; "censor off"; "censor basic"; "censor strict" ]
  in
  List.iter
    (fun vector ->
      let cell mode =
        let b = Sep_snfe.Snfe.measure_covert ~vector ~mode ~messages ~seed () in
        Fmt.str "%.2f" b.Sep_snfe.Snfe.bits_per_message
      in
      Sep_util.Table.add_row table
        [
          Fmt.str "%a" Sep_components.Covert.pp_vector vector;
          cell Sep_components.Censor.Off;
          cell Sep_components.Censor.Basic;
          cell Sep_components.Censor.Strict;
        ])
    [ Sep_components.Covert.Pad_field; Sep_components.Covert.Length_raw; Sep_components.Covert.Length_bucket ];
  Sep_util.Table.print table;
  0

let bandwidth_cmd =
  let messages = Arg.(value & opt int 200 & info [ "messages" ] ~doc:"Covert messages to send.") in
  Cmd.v (Cmd.info "bandwidth" ~doc:"Measure covert bandwidth through the SNFE bypass (E6).")
    Term.(const bandwidth_run $ messages $ seed_arg)

(* -- guard / mls / spooler --------------------------------------------------- *)

let guard_run kind =
  let r = Sep_apps.Guard_app.run kind Sep_apps.Guard_app.demo_script in
  Fmt.pr "@[<v>HIGH screen: %a@,LOW screen: %a@,officer saw %d reviews@,%d up, %d reviewed, %d released, %d denied@]@."
    Fmt.(Dump.list string)
    r.Sep_apps.Guard_app.high_screen
    Fmt.(Dump.list string)
    r.Sep_apps.Guard_app.low_screen
    (List.length r.Sep_apps.Guard_app.officer_screen)
    r.Sep_apps.Guard_app.stats.Sep_components.Guard.passed_up
    r.Sep_apps.Guard_app.stats.Sep_components.Guard.reviewed
    r.Sep_apps.Guard_app.stats.Sep_components.Guard.released
    r.Sep_apps.Guard_app.stats.Sep_components.Guard.denied;
  0

let guard_cmd = Cmd.v (Cmd.info "guard" ~doc:"Run the ACCAT Guard demo.") Term.(const guard_run $ kind_arg)

let mls_run kind =
  let r = Sep_apps.Mls.run kind Sep_apps.Mls.demo_script in
  List.iter
    (fun (c, lines) ->
      Fmt.pr "== %s ==@." (Sep_model.Colour.name c);
      List.iter (Fmt.pr "  %s@.") lines)
    r.Sep_apps.Mls.screens;
  Fmt.pr "== printer ==@.";
  List.iter (Fmt.pr "  %s@.") r.Sep_apps.Mls.printer_output;
  Fmt.pr "spool files left: %a@." Fmt.(Dump.list string) r.Sep_apps.Mls.spool_files_left;
  0

let mls_cmd = Cmd.v (Cmd.info "mls" ~doc:"Run the multilevel multi-user system demo.") Term.(const mls_run $ kind_arg)

let spooler_run trusted =
  let jobs =
    [
      { Sep_conventional.Spooler.owner = "alice"; level = Sep_lattice.Sclass.unclassified; text = "memo" };
      { Sep_conventional.Spooler.owner = "bob"; level = Sep_lattice.Sclass.secret; text = "plans" };
    ]
  in
  Fmt.pr "%a@." Sep_conventional.Spooler.pp_outcome (Sep_conventional.Spooler.run ~trusted ~jobs);
  0

let spooler_cmd =
  let trusted = Arg.(value & flag & info [ "trusted" ] ~doc:"Grant the spooler the trusted-process exemption.") in
  Cmd.v (Cmd.info "spooler" ~doc:"Run the conventional-kernel spooler scenario (E9).")
    Term.(const spooler_run $ trusted)

(* -- dot --------------------------------------------------------------------- *)

let dot_run which =
  let topo =
    match which with
    | "snfe" -> Sep_snfe.Snfe.topology Sep_snfe.Snfe.default_config
    | "mls" -> Sep_apps.Mls.topology ()
    | "guard" -> Sep_apps.Guard_app.topology ()
    | other ->
      Fmt.epr "unknown system %s (snfe|mls|guard)@." other;
      exit 1
  in
  let highlight =
    match which with
    | "snfe" -> [ Sep_snfe.Snfe.censor_tx; Sep_snfe.Snfe.censor_rx; Sep_snfe.Snfe.crypto_tx; Sep_snfe.Snfe.crypto_rx ]
    | "mls" -> [ Sep_apps.Mls.file_server; Sep_apps.Mls.printer; Sep_apps.Mls.auth ]
    | _ -> [ Sep_apps.Guard_app.guard ]
  in
  print_string (Sep_policy.Channel_matrix.to_dot ~highlight (Sep_policy.Channel_matrix.of_topology topo));
  0

let dot_cmd =
  let which = Arg.(value & pos 0 string "snfe" & info [] ~docv:"SYSTEM" ~doc:"snfe, mls or guard.") in
  Cmd.v (Cmd.info "dot" ~doc:"Emit a system's channel diagram as Graphviz (trusted boxes doubled).")
    Term.(const dot_run $ which)

(* -- trace ------------------------------------------------------------------- *)

let chrome_arg =
  Arg.(value & opt (some string) None
       & info [ "chrome" ] ~docv:"FILE"
           ~doc:
             "Record causal trace events (kernel steps, traps, swaps, link flow edges) in the \
              flight recorder during the run and write them as Chrome trace_event JSON to $(docv) \
              (load in chrome://tracing or Perfetto).")

let write_chrome file =
  graceful_write @@ fun () ->
  let oc = open_out file in
  output_string oc (Sep_obs.Trace.chrome_string ());
  close_out oc;
  Fmt.pr "wrote %s (%d events)@." file (List.length (Sep_obs.Trace.recorded ()))

let trace_run scenario bugs steps impl trace_json chrome =
  if chrome <> None then Sep_obs.Trace.set_enabled true;
  let t = Sep_core.Sue.build ~bugs ~impl scenario.Sep_core.Scenarios.cfg in
  let inputs = drip_inputs scenario in
  let entries = Sep_core.Ktrace.record t ~steps ~inputs in
  print_string (Sep_core.Ktrace.render entries);
  (match trace_json with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    output_string oc (Sep_core.Ktrace.to_json entries);
    close_out oc);
  (match chrome with None -> () | Some file -> write_chrome file);
  0

let trace_cmd =
  let steps = Arg.(value & opt int 40 & info [ "steps" ] ~doc:"Steps to trace.") in
  Cmd.v (Cmd.info "trace" ~doc:"Trace a kernel run: instructions, traps, switches, interrupts.")
    Term.(const trace_run $ scenario_arg $ bugs_arg $ steps $ impl_arg $ trace_json_arg $ chrome_arg)

(* -- monitor ------------------------------------------------------------------ *)

let pp_first_violation ppf = function
  | None -> Fmt.string ppf "online monitor: clean (no violation)"
  | Some (step, (f : Sep_core.Separability.failure)) ->
    Fmt.pf ppf "online monitor: condition %d first violated at step %d (colour %s)"
      f.Sep_core.Separability.condition step (Sep_model.Colour.name f.Sep_core.Separability.colour)

(* The CI smoke: (1) the monitor's report must agree with the offline
   checker on every clean scenario; (2) every checked-in corpus mutant
   must be flagged online, on its recorded condition, with a step
   attribution. *)
let monitor_smoke impl corpus_dir =
  let module S = Sep_core.Separability in
  let module F = Sep_check.Fuzz in
  let ok = ref true in
  List.iter
    (fun (sc : Sep_core.Scenarios.instance) ->
      let sched = List.init 12 (drip_inputs sc) in
      let offline =
        F.check_schedule ~impl ~seed:42 ~alphabet:sc.Sep_core.Scenarios.alphabet
          sc.Sep_core.Scenarios.cfg sched
      in
      let online =
        F.check_schedule_online ~impl ~seed:42 ~alphabet:sc.Sep_core.Scenarios.alphabet
          sc.Sep_core.Scenarios.cfg sched
      in
      let r = online.F.on_report in
      let agree =
        offline.S.states = r.S.states && offline.S.checks = r.S.checks
        && offline.S.cond_checks = r.S.cond_checks
        && S.verified offline && S.verified r
        && online.F.on_first_violation = None
      in
      if not agree then ok := false;
      Fmt.pr "  %-12s offline %d states / %d checks, online %d / %d: %s@."
        sc.Sep_core.Scenarios.label offline.S.states offline.S.checks r.S.states r.S.checks
        (if agree then "agree" else "DISAGREE"))
    Sep_core.Scenarios.all;
  if Sys.file_exists corpus_dir && Sys.is_directory corpus_dir then
    Array.iter
      (fun fname ->
        if Filename.check_suffix fname ".json" then begin
          let file = Filename.concat corpus_dir fname in
          let ic = open_in file in
          let contents = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match
            Result.bind (Sep_util.Json.parse (String.trim contents))
              Sep_check.Score.corpus_case_of_json
          with
          | Error msg ->
            ok := false;
            Fmt.epr "rushby: %s: %s@." file msg
          | Ok c -> (
            match Sep_core.Scenarios.find c.Sep_check.Score.cc_scenario with
            | None ->
              ok := false;
              Fmt.epr "rushby: %s: unknown scenario %s@." file c.Sep_check.Score.cc_scenario
            | Some sc ->
              let online =
                F.check_schedule_online ~bugs:[ c.Sep_check.Score.cc_bug ] ~impl
                  ~scrambles:c.Sep_check.Score.cc_scrambles ~seed:c.Sep_check.Score.cc_seed
                  ~alphabet:sc.Sep_core.Scenarios.alphabet sc.Sep_core.Scenarios.cfg
                  c.Sep_check.Score.cc_schedule
              in
              (* detection is the contract; the identity of every failing
                 condition is the offline replayer's (both reports cap
                 recorded failures, and fill them in different orders) *)
              let caught =
                online.F.on_first_violation <> None
                && S.failing_conditions online.F.on_report <> []
              in
              if not caught then ok := false;
              Fmt.pr "  %-24s %a  %s@."
                (Fmt.str "%a" Sep_core.Sue.pp_bug c.Sep_check.Score.cc_bug)
                pp_first_violation online.F.on_first_violation
                (if caught then "caught" else "MISSED"))
        end)
      (Sys.readdir corpus_dir)
  else begin
    ok := false;
    Fmt.epr "rushby: corpus directory %s not found (use --corpus)@." corpus_dir
  end;
  Fmt.pr "monitor smoke: %s@." (if !ok then "OK" else "FAILED");
  if !ok then 0 else 1

let monitor_run scenario bugs impl seed scrambles steps smoke corpus chrome =
  if smoke then monitor_smoke impl corpus
  else begin
    if chrome <> None then Sep_obs.Trace.set_enabled true;
    let sched = List.init steps (drip_inputs scenario) in
    let online =
      Sep_check.Fuzz.check_schedule_online ~bugs ~impl ~scrambles ~seed
        ~alphabet:scenario.Sep_core.Scenarios.alphabet scenario.Sep_core.Scenarios.cfg sched
    in
    Fmt.pr "%a@." Sep_core.Separability.pp_summary online.Sep_check.Fuzz.on_report;
    Fmt.pr "%a@." pp_first_violation online.Sep_check.Fuzz.on_first_violation;
    (match chrome with None -> () | Some file -> write_chrome file);
    if Sep_core.Separability.verified online.Sep_check.Fuzz.on_report then 0 else 1
  end

let monitor_cmd =
  let steps =
    Arg.(value & opt int 24 & info [ "steps" ] ~doc:"Input-schedule length (the kernel then settles).")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:
               "CI mode: check online/offline agreement on every clean scenario and online \
                detection of every checked-in corpus mutant.")
  in
  let corpus =
    Arg.(value & opt string "test/corpus"
         & info [ "corpus" ] ~docv:"DIR" ~doc:"Mutant corpus directory replayed by --smoke.")
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Stream a schedule-driven kernel run through the online separability monitor: the six \
          conditions are checked incrementally as states are produced, so a violation is flagged \
          at the step that first exhibits it.")
    Term.(
      const monitor_run $ scenario_arg $ bugs_arg $ impl_arg $ seed_arg $ scrambles_arg $ steps
      $ smoke $ corpus $ chrome_arg)

(* -- stats ------------------------------------------------------------------- *)

let link_stats_json (s : Sep_distributed.Net.link_stats) =
  Sep_util.Json.Obj
    [
      ("in_flight", Sep_util.Json.Int s.ls_in_flight);
      ("drops", Sep_util.Json.Int s.ls_drops);
      ("lossy_drops", Sep_util.Json.Int s.ls_lossy_drops);
      ("retransmits", Sep_util.Json.Int s.ls_retransmits);
      ("acks", Sep_util.Json.Int s.ls_acks);
      ("backoff_ceiling", Sep_util.Json.Int s.ls_backoff_ceiling);
      ("partition_drops", Sep_util.Json.Int s.ls_partition_drops);
    ]

let pp_link_stats ppf (s : Sep_distributed.Net.link_stats) =
  Fmt.pf ppf
    "in-flight %d  drops %d  lossy-drops %d  retransmits %d  acks %d  backoff-ceiling %d  \
     partition-drops %d"
    s.ls_in_flight s.ls_drops s.ls_lossy_drops s.ls_retransmits s.ls_acks s.ls_backoff_ceiling
    s.ls_partition_drops

let stats_run scenario bugs seed jobs steps impl json_file =
  Sep_obs.Span.set_enabled true;
  let t = Sep_core.Sue.build ~bugs ~impl scenario.Sep_core.Scenarios.cfg in
  let inputs = drip_inputs scenario in
  for n = 0 to steps - 1 do
    ignore (Sep_core.Sue.step t (inputs n))
  done;
  (* a small parallel walk sample, so the executor counters below reflect
     this machine's sharding/merge behaviour at the requested job count *)
  ignore
    (Sep_core.Randomized.sample_states ~bugs ~impl ~jobs
       ~params:Sep_core.Randomized.default_params ~seed
       ~inputs:scenario.Sep_core.Scenarios.alphabet scenario.Sep_core.Scenarios.cfg);
  let tel = Sep_core.Sue.telemetry t in
  Fmt.pr "== kernel counters: %s, %d steps, %a kernel ==@.%a@."
    scenario.Sep_core.Scenarios.label steps Sep_core.Sue.pp_impl impl Sep_obs.Telemetry.pp tel;
  (* the distributed substrate's line counters alongside the kernel's: one
     reliable-net pipeline under the default lossy link model *)
  let net_steps = min steps 200 in
  let rc = Sep_check.Diff.kernel_vs_reliable_net_case ~seed ~steps:net_steps () in
  Fmt.pr "@.== reliable net (lossy link, %d steps) ==@.  %a  retransmit-queue %d@." net_steps
    pp_link_stats rc.Sep_check.Diff.rc_stats rc.Sep_check.Diff.rc_retransmit_queue;
  Fmt.pr "@.== span profile (seconds) ==@.%a@." Sep_obs.Telemetry.pp Sep_obs.Span.registry;
  Fmt.pr "@.== parallel executor (%d jobs) ==@.%a@." jobs Sep_obs.Telemetry.pp
    Sep_par.Par.registry;
  (* the service layer's counters from one clean replicated deployment,
     so retries/timeouts/dedup/shed surface next to the kernel's numbers *)
  let svc_steps = 2500 in
  let svc = Sep_svc.Svc.build ~seed Sep_apps.Fed_services.file_server in
  Sep_svc.Svc.run svc ~steps:svc_steps;
  ignore (Sep_svc.Svc.finish svc);
  let svc_tel = Sep_svc.Svc.telemetry svc in
  Fmt.pr "@.== service layer (fed-fs, %d steps) ==@.%a@." svc_steps Sep_obs.Telemetry.pp svc_tel;
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    Sep_obs.Sink.with_file file (fun sink ->
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "kernel_counters");
               ("scenario", Sep_util.Json.String scenario.Sep_core.Scenarios.label);
               ("steps", Sep_util.Json.Int steps);
               ("telemetry", Sep_obs.Telemetry.to_json tel);
             ]);
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "net_link");
               ("steps", Sep_util.Json.Int net_steps);
               ("delivered", Sep_util.Json.Int rc.Sep_check.Diff.rc_delivered);
               ("retransmit_queue", Sep_util.Json.Int rc.Sep_check.Diff.rc_retransmit_queue);
               ("stats", link_stats_json rc.Sep_check.Diff.rc_stats);
             ]);
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "svc_counters");
               ("service", Sep_util.Json.String "fed-fs");
               ("steps", Sep_util.Json.Int svc_steps);
               ("telemetry", Sep_obs.Telemetry.to_json svc_tel);
             ]);
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [ ("kind", Sep_util.Json.String "spans"); ("telemetry", Sep_obs.Span.to_json ()) ]);
        Sep_obs.Sink.emit sink
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "par");
               ("jobs", Sep_util.Json.Int jobs);
               ("telemetry", Sep_obs.Telemetry.to_json Sep_par.Par.registry);
             ])));
  0

let stats_cmd =
  let steps = Arg.(value & opt int 2000 & info [ "steps" ] ~doc:"Steps to run.") in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the counters and spans as JSONL to $(docv).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a scenario and print the kernel's telemetry (per-regime counters, span profile) plus \
          the reliable net's link statistics.")
    Term.(const stats_run $ scenario_arg $ bugs_arg $ seed_arg $ jobs_arg $ steps $ impl_arg $ json_file)

(* -- metrics ----------------------------------------------------------------- *)

let metrics_run () =
  Fmt.pr "%a@.@.%a@." Sep_core.Metrics.pp_profile
    (Sep_core.Metrics.sue_profile Sep_core.Scenarios.pipeline.Sep_core.Scenarios.cfg)
    Sep_core.Metrics.pp_profile Sep_core.Metrics.conventional_profile;
  0

let metrics_cmd =
  Cmd.v (Cmd.info "metrics" ~doc:"Print the kernel comparison profiles (E2).") Term.(const metrics_run $ const ())

(* -- inject ------------------------------------------------------------------ *)

let inject_run seed jobs steps count smoke json_file =
  let steps, count = if smoke then (60, 12) else (steps, count) in
  let module C = Sep_robust.Campaign in
  let report = C.run ~jobs ~seed ~steps ~count () in
  Fmt.pr "== fault-injection campaign: seed %d, %d steps, %d faults/scenario ==@." seed steps count;
  List.iter
    (fun (sr : C.scenario_report) ->
      let m, d, v =
        List.fold_left
          (fun (m, d, v) (c : C.case) ->
            match c.C.outcome with
            | C.Masked -> (m + 1, d, v)
            | C.Detected_safe -> (m, d + 1, v)
            | C.Recovered_safe -> (m, d, v)  (* never produced without a supervisor *)
            | C.Violating -> (m, d, v + 1))
          (0, 0, 0) sr.C.cases
      in
      Fmt.pr "  %-16s %3d masked  %3d detected-safe  %3d violating%s@." sr.C.label m d v
        (match sr.C.watchdog with Some w -> Fmt.str "  (watchdog %d)" w | None -> "");
      List.iter
        (fun (c : C.case) ->
          if c.C.outcome = C.Violating then
            Fmt.pr "    VIOLATION %a@." Sep_robust.Fault_plan.pp c.C.plan)
        sr.C.cases)
    report.C.rp_scenarios;
  let masked, detected, _, violating = C.totals report in
  let dist = C.run_distributed ~seed ~steps:40 ~count:20 in
  Fmt.pr "  %-16s %3d wire-tamper cases, %d messages hit, contained by construction: %b@."
    "distributed" dist.C.dr_cases dist.C.dr_affected dist.C.dr_contained;
  Fmt.pr "@.totals: %d masked, %d detected-safe, %d separation-violating@." masked detected violating;
  let ok = C.holds report && dist.C.dr_contained in
  Fmt.pr "fault containment %s@." (if ok then "HOLDS" else "VIOLATED");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    output_string oc (C.report_to_jsonl report);
    let buf = Buffer.create 256 in
    Sep_util.Json.to_buffer buf (C.dist_to_json dist);
    Buffer.add_char buf '\n';
    output_string oc (Buffer.contents buf);
    close_out oc;
    Fmt.pr "wrote %s@." file);
  if ok then 0 else 1

let inject_cmd =
  let steps = Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Steps per run.") in
  let count = Arg.(value & opt int 40 & info [ "count" ] ~doc:"Fault plans per scenario.") in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ] ~doc:"Small deterministic campaign (60 steps, 12 faults/scenario) for CI.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the campaign report as JSONL to $(docv).")
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:
         "Run seeded fault-injection campaigns against every scenario and classify each outcome as \
          masked, detected-safe or separation-violating by differential per-colour trace comparison.")
    Term.(const inject_run $ seed_arg $ jobs_arg $ steps $ count $ smoke $ json_file)

(* -- recover ----------------------------------------------------------------- *)

let recover_run seed jobs steps count smoke drop json_file =
  let steps, count = if smoke then (60, 12) else (steps, count) in
  let module C = Sep_robust.Campaign in
  let report = C.run_recovery ~jobs ~seed ~steps ~count () in
  Fmt.pr "== recovery campaign: seed %d, %d steps, %d fault plans/scenario (plus multi-fault) ==@."
    seed steps count;
  List.iter
    (fun (sr : C.scenario_report) ->
      let m, d, r, v =
        List.fold_left
          (fun (m, d, r, v) (c : C.case) ->
            match c.C.outcome with
            | C.Masked -> (m + 1, d, r, v)
            | C.Detected_safe -> (m, d + 1, r, v)
            | C.Recovered_safe -> (m, d, r + 1, v)
            | C.Violating -> (m, d, r, v + 1))
          (0, 0, 0, 0) sr.C.cases
      in
      Fmt.pr "  %-16s %3d masked  %3d detected-safe  %3d recovered-safe  %3d violating%s@."
        sr.C.label m d r v
        (match sr.C.watchdog with Some w -> Fmt.str "  (watchdog %d)" w | None -> "");
      List.iter
        (fun (c : C.case) ->
          if c.C.outcome = C.Violating then
            Fmt.pr "    VIOLATION %a@." Sep_robust.Fault_plan.pp c.C.plan)
        sr.C.cases)
    report.C.rp_scenarios;
  let masked, detected, recovered, violating = C.totals report in
  (* the reliable-channel differential: the kernel must still pin against
     the distributed ideal when the ideal's wires drop, duplicate and
     reorder frames under the reliable protocol *)
  let link = { Sep_distributed.Net.default_link_model with Sep_distributed.Net.lm_drop = drop } in
  let rel_cases, rel_steps = if smoke then (3, 90) else (6, 150) in
  let rel = Sep_check.Diff.kernel_vs_reliable_net ~link ~seed ~cases:rel_cases ~steps:rel_steps () in
  let mismatches = List.concat_map (fun rc -> rc.Sep_check.Diff.rc_mismatches) rel in
  let sum f = List.fold_left (fun n rc -> n + f rc) 0 rel in
  Fmt.pr "  %-16s %d cases at %d%% drop: %d delivered, %d retransmits, %d acks, %d mismatch%s@."
    "reliable-net" rel_cases drop
    (sum (fun rc -> rc.Sep_check.Diff.rc_delivered))
    (sum (fun rc -> rc.Sep_check.Diff.rc_stats.Sep_distributed.Net.ls_retransmits))
    (sum (fun rc -> rc.Sep_check.Diff.rc_stats.Sep_distributed.Net.ls_acks))
    (List.length mismatches)
    (if List.compare_length_with mismatches 1 = 0 then "" else "es");
  List.iter (fun m -> Fmt.pr "    MISMATCH %s@." m) mismatches;
  Fmt.pr "@.totals: %d masked, %d detected-safe, %d recovered-safe, %d separation-violating@." masked
    detected recovered violating;
  let ok = C.holds report && recovered > 0 && mismatches = [] in
  Fmt.pr "fail-operational %s@."
    (if ok then "HOLDS"
     else if violating > 0 then "VIOLATED"
     else if recovered = 0 then "DEGRADED (no fault recovered)"
     else "VIOLATED (reliable-channel differential failed)");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    output_string oc (C.report_to_jsonl report);
    let line j =
      let buf = Buffer.create 256 in
      Sep_util.Json.to_buffer buf j;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf)
    in
    List.iteri
      (fun i (rc : Sep_check.Diff.reliable_case) ->
        line
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "reliable-net");
               ("case", Sep_util.Json.Int i);
               ("drop", Sep_util.Json.Int drop);
               ("delivered", Sep_util.Json.Int rc.Sep_check.Diff.rc_delivered);
               ("stats", link_stats_json rc.Sep_check.Diff.rc_stats);
               ( "mismatches",
                 Sep_util.Json.List
                   (List.map (fun m -> Sep_util.Json.String m) rc.Sep_check.Diff.rc_mismatches) );
             ]))
      rel;
    line
      (Sep_util.Json.Obj
         [
           ("kind", Sep_util.Json.String "recover-summary");
           ("seed", Sep_util.Json.Int seed);
           ("masked", Sep_util.Json.Int masked);
           ("detected_safe", Sep_util.Json.Int detected);
           ("recovered_safe", Sep_util.Json.Int recovered);
           ("violating", Sep_util.Json.Int violating);
           ("ok", Sep_util.Json.Bool ok);
         ]);
    close_out oc;
    Fmt.pr "wrote %s@." file);
  if ok then 0 else 1

let recover_cmd =
  let steps = Arg.(value & opt int 200 & info [ "steps" ] ~doc:"Steps per run.") in
  let count = Arg.(value & opt int 40 & info [ "count" ] ~doc:"Fault plans per scenario.") in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ] ~doc:"Small deterministic campaign (60 steps, 12 plans/scenario) for CI.")
  in
  let drop =
    Arg.(value & opt int 10
         & info [ "drop" ] ~doc:"Lossy-link drop rate (percent) for the reliable-net differential.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write the campaign report as JSONL to $(docv).")
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Run the fail-operational campaign: fault-injection (single- and multi-fault plans) under \
          a recovery supervisor that restarts parked regimes from checkpoints and warm-reboots a \
          panicked kernel, classifying each outcome as masked, detected-safe, recovered-safe or \
          separation-violating; then pin the kernel against the reliable-channel distributed ideal \
          over a lossy link.")
    Term.(const recover_run $ seed_arg $ jobs_arg $ steps $ count $ smoke $ drop $ json_file)

(* -- federate ----------------------------------------------------------------- *)

let federate_run seed jobs steps count smoke chaos json_file =
  let module F = Sep_fed.Fed in
  let module FC = Sep_fed.Fed_campaign in
  let steps, count = if smoke then (300, 8) else (steps, count) in
  let specs = Sep_fed.Fed_scenarios.all in
  Fmt.pr "== kernel federation: seed %d, %d steps ==@." seed steps;
  let clean =
    List.map
      (fun (spec : F.spec) ->
        let t = F.build spec in
        F.run t ~steps;
        let ob = F.finish t in
        let mism = Sep_check.Diff.federation_vs_ideal ~steps spec in
        Fmt.pr
          "  %-10s %d shards  %d links  %d words shard-to-shard  %d node events  ideal-diff %s@."
          spec.F.fs_label (F.shards t) (F.links t) ob.F.fob_delivered
          (List.length ob.F.fob_events)
          (if mism = [] then "clean" else "MISMATCH");
        List.iter (fun (_, _, m) -> Fmt.pr "    MISMATCH %s@." m) mism;
        (spec, ob, mism))
      specs
  in
  let ideal_ok = List.for_all (fun (_, _, m) -> m = []) clean in
  let reports =
    if not chaos then []
    else begin
      Fmt.pr "@.== federated chaos campaign: %d seeded plans/scenario (plus directed) ==@." count;
      List.map
        (fun (spec : F.spec) ->
          let r = FC.run ~jobs ~seed ~steps ~count spec in
          let m, d, rc, v = FC.totals r in
          Fmt.pr
            "  %-10s %3d cases  %3d masked  %3d detected-safe  %3d recovered-safe  %3d violating  \
             monitor %s@."
            r.FC.fr_label (List.length r.FC.fr_cases) m d rc v
            (if FC.monitor_clean r then "clean" else "VIOLATION");
          List.iter
            (fun (c : FC.case) ->
              if c.FC.fc_outcome = Sep_robust.Campaign.Violating then
                Fmt.pr "    VIOLATION %a@." Sep_robust.Fault_plan.pp c.FC.fc_plan)
            r.FC.fr_cases;
          r)
        specs
    end
  in
  let chaos_ok = List.for_all (fun r -> FC.holds r && FC.monitor_clean r) reports in
  let ok = ideal_ok && chaos_ok in
  Fmt.pr "@.federation %s@."
    (if ok then "HOLDS"
     else if not ideal_ok then "VIOLATED (federation diverged from the monolithic ideal)"
     else "VIOLATED");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    let line j =
      let buf = Buffer.create 256 in
      Sep_util.Json.to_buffer buf j;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf)
    in
    List.iter
      (fun ((spec : F.spec), (ob : F.observation), mism) ->
        line
          (Sep_util.Json.Obj
             [
               ("kind", Sep_util.Json.String "fed-run");
               ("scenario", Sep_util.Json.String spec.F.fs_label);
               ("steps", Sep_util.Json.Int steps);
               ("delivered", Sep_util.Json.Int ob.F.fob_delivered);
               ("frame_rejects", Sep_util.Json.Int ob.F.fob_frame_rejects);
               ( "events",
                 Sep_util.Json.List
                   (List.map (fun (_, e) -> F.node_event_to_json e) ob.F.fob_events) );
               ("stats", link_stats_json ob.F.fob_stats);
               ( "ideal_mismatches",
                 Sep_util.Json.List (List.map (fun (_, _, m) -> Sep_util.Json.String m) mism) );
             ]))
      clean;
    List.iter (fun r -> output_string oc (FC.report_to_jsonl r)) reports;
    close_out oc;
    Fmt.pr "wrote %s@." file);
  if ok then 0 else 1

let federate_cmd =
  let steps = Arg.(value & opt int 600 & info [ "steps" ] ~doc:"Steps per run.") in
  let count = Arg.(value & opt int 10 & info [ "count" ] ~doc:"Seeded fault plans per scenario.") in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ] ~doc:"Small deterministic run (300 steps, 8 plans/scenario) for CI.")
  in
  let chaos =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Also run the federated chaos campaign: node crashes, link partitions, frame \
                   tampering and machine faults, classified by differential trace comparison with \
                   the online monitor attached.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write runs and campaign report as JSONL to $(docv).")
  in
  Cmd.v
    (Cmd.info "federate"
       ~doc:
         "Run the multi-shard kernel federations (inter-shard channels over reliable links, \
          heartbeat supervision, checkpointed failover) clean against the monolithic ideal, and \
          with --chaos under the node-level fault campaign.")
    Term.(const federate_run $ seed_arg $ jobs_arg $ steps $ count $ smoke $ chaos $ json_file)

(* -- serve ------------------------------------------------------------------- *)

let serve_run seed jobs steps soak smoke soak_mode service json_file chrome =
  let module S = Sep_svc.Svc in
  let module SC = Sep_svc.Svc_campaign in
  if chrome <> None then Sep_obs.Trace.set_enabled true;
  let steps, soak =
    if smoke then (2000, 1) else if soak_mode then (max steps 6000, max soak 6) else (steps, soak)
  in
  let deployments =
    match service with
    | None -> Sep_apps.Fed_services.all
    | Some name -> (
      match Sep_apps.Fed_services.find name with
      | Some d -> [ d ]
      | None ->
        Fmt.epr "rushby: unknown service %s (have: %s)@." name
          (String.concat ", "
             (List.map (fun d -> d.S.dp_name) Sep_apps.Fed_services.all));
        exit 2)
  in
  Fmt.pr "== services over the federation: seed %d, %d steps, %d soak plans ==@." seed steps soak;
  let reports =
    List.map
      (fun (dep : S.deployment) ->
        let r = SC.run ~jobs ~seed ~steps ~soak dep in
        let m, d, rc, v = SC.totals r in
        let sum f = List.fold_left (fun acc c -> acc + f c) 0 r.SC.sv_cases in
        Fmt.pr
          "  %-9s %3d cases  %3d masked  %3d detected-safe  %3d recovered-safe  %3d violating@."
          r.SC.sv_name (List.length r.SC.sv_cases) m d rc v;
        Fmt.pr
          "            %5d requests  %4d committed  %4d retries  %4d dedup-hits  %4d shed  \
           contract %s  monitor %s@."
          (sum (fun c -> c.SC.sc_contract.S.ct_requests))
          (sum (fun c -> c.SC.sc_contract.S.ct_committed))
          (sum (fun c -> c.SC.sc_retries))
          (sum (fun c -> c.SC.sc_dedup_hits))
          (sum (fun c -> c.SC.sc_shed))
          (if SC.contracts_ok r then "ok" else "BROKEN")
          (if SC.monitor_clean r then "clean" else "VIOLATION");
        List.iter
          (fun (c : SC.case) ->
            if c.SC.sc_outcome = Sep_robust.Campaign.Violating then
              Fmt.pr "    VIOLATION %a@." Sep_robust.Fault_plan.pp c.SC.sc_plan)
          r.SC.sv_cases;
        r)
      deployments
  in
  let ok = List.for_all (fun r -> SC.holds r && SC.monitor_clean r) reports in
  Fmt.pr "@.service contract %s@."
    (if ok then "HOLDS (every accepted request: exactly-once effect or definite failure)"
     else "VIOLATED");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    List.iter (fun r -> output_string oc (SC.report_to_jsonl r)) reports;
    close_out oc;
    Fmt.pr "wrote %s@." file);
  (match chrome with None -> () | Some file -> write_chrome file);
  if ok then 0 else 1

let serve_cmd =
  let steps = Arg.(value & opt int 5000 & info [ "steps" ] ~doc:"Service steps per case.") in
  let soak =
    Arg.(value & opt int 6 & info [ "count" ] ~doc:"Seeded soak plans per service (plus directed).")
  in
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ]
             ~doc:"Small deterministic run (2000 steps, 1 soak plan/service) for CI.")
  in
  let soak_mode =
    Arg.(value & flag
         & info [ "soak" ]
             ~doc:"Sustained-chaos mode: at least 6000 steps and 6 soak storms per service.")
  in
  let service =
    Arg.(value & opt (some string) None
         & info [ "service" ] ~docv:"NAME"
             ~doc:"Run a single deployment (fed-fs, fed-print, fed-auth, fed-guard).")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Write campaign reports as JSONL to $(docv).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Deploy the \u{00a7}6 services (MLS file server, printer, authentication, ACCAT Guard) \
          as replicated request/response applications over the kernel federation, and verify the \
          end-to-end contract — every accepted request commits exactly once or fails definitely — \
          under directed strikes and sustained chaos soaks with the online separability monitor \
          attached.")
    Term.(
      const serve_run $ seed_arg $ jobs_arg $ steps $ soak $ smoke $ soak_mode $ service
      $ json_file $ chrome_arg)

(* -- fuzz -------------------------------------------------------------------- *)

let fuzz_corpus_emit dir seed impl =
  graceful_write @@ fun () ->
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let ok = ref true in
  List.iter
    (fun (e : Sep_core.Mutants.expectation) ->
      match Sep_check.Score.corpus_case ~impl ~seed e with
      | None ->
        ok := false;
        Fmt.epr "rushby: no corpus case found for %a@." Sep_core.Sue.pp_bug e.bug
      | Some c -> (
        match Sep_check.Score.replay_corpus_case ~impl c with
        | Error msg ->
          ok := false;
          Fmt.epr "rushby: %s@." msg
        | Ok () ->
          let file = Filename.concat dir (Fmt.str "%a.json" Sep_core.Sue.pp_bug e.bug) in
          let buf = Buffer.create 256 in
          Sep_util.Json.to_buffer buf (Sep_check.Score.corpus_case_to_json c);
          Buffer.add_char buf '\n';
          let oc = open_out file in
          output_string oc (Buffer.contents buf);
          close_out oc;
          Fmt.pr "wrote %s (condition %d, %d-step schedule)@." file c.Sep_check.Score.cc_condition
            (List.length c.Sep_check.Score.cc_schedule)))
    Sep_core.Mutants.catalogue;
  if !ok then 0 else 1

let fuzz_replay rseed scenario bugs impl walks walk_len scrambles =
  let params = { Sep_core.Randomized.walks; walk_len; scrambles } in
  let report =
    Sep_core.Randomized.check ~bugs ~impl ~params ~seed:rseed
      ~inputs:scenario.Sep_core.Scenarios.alphabet scenario.Sep_core.Scenarios.cfg
  in
  Fmt.pr "%a@." Sep_core.Separability.pp_summary report;
  if Sep_core.Separability.verified report then 0
  else begin
    print_minimized scenario bugs impl rseed params
      (Sep_core.Separability.failing_conditions report);
    1
  end

let fuzz_full smoke seed jobs budget impl json_file =
  let budget = if smoke then 40 else budget in
  let results =
    List.map
      (fun sc -> Sep_check.Fuzz.fuzz_scenario ~impl ~jobs ~seed ~budget sc)
      Sep_core.Scenarios.all
  in
  Fmt.pr "== coverage-guided fuzz: seed %d, budget %d execs/scenario, %a kernel ==@." seed budget
    Sep_core.Sue.pp_impl impl;
  List.iter
    (fun (r : Sep_check.Fuzz.scenario_result) ->
      Fmt.pr "  %-12s %3d execs  %2d corpus  %3d coverage keys  %d failure%s@." r.sr_label
        r.sr_campaign.Sep_check.Fuzz.cp_execs
        (List.length r.sr_campaign.Sep_check.Fuzz.cp_entries)
        (List.length r.sr_campaign.Sep_check.Fuzz.cp_keys)
        (List.length r.sr_failures)
        (if List.compare_length_with r.sr_failures 1 = 0 then "" else "s"))
    results;
  let kills = Sep_check.Score.kill_table ~impl ~jobs ~seed ~budget () in
  let table =
    Sep_util.Table.create ~title:"Mutant kill rate per strategy"
      ~columns:[ "bug"; "scenario"; "strategy"; "killed"; "cond"; "states"; "checks"; "execs"; "instrs" ]
  in
  List.iter
    (fun (k : Sep_check.Score.kill) ->
      Sep_util.Table.add_row table
        [
          Sep_check.Score.bug_name k.kl_bug;
          k.kl_scenario;
          Sep_check.Score.strategy_name k.kl_strategy;
          (if k.kl_detected then "yes" else "NO");
          string_of_int k.kl_condition;
          string_of_int k.kl_states;
          string_of_int k.kl_checks;
          string_of_int k.kl_execs;
          (match k.kl_workload with
          | None -> "-"
          | Some w -> string_of_int (Sep_check.Score.workload_instrs w));
        ])
    kills;
  Sep_util.Table.print table;
  let clean = List.for_all (fun r -> r.Sep_check.Fuzz.sr_failures = []) results in
  let all_killed = List.for_all (fun k -> k.Sep_check.Score.kl_detected) kills in
  let minimal =
    List.for_all
      (fun (k : Sep_check.Score.kill) ->
        match k.kl_workload with
        | None -> true
        | Some w -> Sep_check.Score.workload_instrs w <= 10)
      kills
  in
  let ok = clean && all_killed && minimal in
  Fmt.pr "@.correct kernel: %s;  mutants: %s;  counterexamples: %s@."
    (if clean then "all conditions and solo isolation hold on every corpus member"
     else "CONDITION OR ISOLATION FAILURES FOUND")
    (if all_killed then "all killed under every strategy" else "SOME SURVIVED")
    (if minimal then "all killing workloads within 10 instructions" else "SOME ABOVE 10 INSTRUCTIONS");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    List.iter (fun r -> output_string oc (Sep_check.Fuzz.scenario_result_to_jsonl r)) results;
    let line j =
      let buf = Buffer.create 256 in
      Sep_util.Json.to_buffer buf j;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf)
    in
    List.iter
      (fun k ->
        match Sep_check.Score.kill_to_json k with
        | Sep_util.Json.Obj kvs ->
          line (Sep_util.Json.Obj (("kind", Sep_util.Json.String "fuzz-kill") :: kvs))
        | other -> line other)
      kills;
    line
      (Sep_util.Json.Obj
         [
           ("kind", Sep_util.Json.String "fuzz-summary");
           ("seed", Sep_util.Json.Int seed);
           ("budget", Sep_util.Json.Int budget);
           ("scenarios", Sep_util.Json.Int (List.length results));
           ( "corpus",
             Sep_util.Json.Int
               (List.fold_left
                  (fun n (r : Sep_check.Fuzz.scenario_result) ->
                    n + List.length r.sr_campaign.Sep_check.Fuzz.cp_entries)
                  0 results) );
           ("kills", Sep_util.Json.Int (List.length kills));
           ("ok", Sep_util.Json.Bool ok);
         ]);
    close_out oc;
    Fmt.pr "wrote %s@." file);
  if ok then 0 else 1

(* replay one checked-in test/corpus case: the fixed kernel must verify
   under its schedule AND the seeded bug must still fail the recorded
   condition — the CI regression step *)
let fuzz_replay_corpus impl file =
  graceful_write @@ fun () ->
  let ic = open_in file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let outcome =
    match Sep_util.Json.parse (String.trim contents) with
    | Error msg -> Error msg
    | Ok j -> (
      match Sep_check.Score.corpus_case_of_json j with
      | Error msg -> Error msg
      | Ok c -> (
        match Sep_check.Score.replay_corpus_case ~impl c with
        | Error msg -> Error msg
        | Ok () ->
          Ok (Fmt.str "%a condition %d still killed" Sep_core.Sue.pp_bug c.Sep_check.Score.cc_bug
                c.Sep_check.Score.cc_condition)))
  in
  match outcome with
  | Ok msg ->
    Fmt.pr "%s: %s@." file msg;
    0
  | Error msg ->
    Fmt.epr "rushby: %s: %s@." file msg;
    1

let fuzz_run smoke seed jobs budget json_file replay replay_corpus scenario bugs impl walks
    walk_len scrambles emit_corpus =
  match (emit_corpus, replay, replay_corpus) with
  | Some dir, _, _ -> fuzz_corpus_emit dir seed impl
  | None, Some rseed, _ -> fuzz_replay rseed scenario bugs impl walks walk_len scrambles
  | None, None, Some file -> fuzz_replay_corpus impl file
  | None, None, None -> fuzz_full smoke seed jobs budget impl json_file

let fuzz_cmd =
  let budget =
    Arg.(value & opt int 480 & info [ "budget" ] ~doc:"Fuzz executions per scenario and per mutant.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Small deterministic budget (40 execs) for CI.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write corpus, kill table and summary as JSONL to $(docv).")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Replay a failing randomized run (with --scenario/--bug/--walks/--len/--scrambles) \
                   and print its minimized counterexamples.")
  in
  let emit_corpus =
    Arg.(value & opt (some string) None
         & info [ "emit-corpus" ] ~docv:"DIR"
             ~doc:"Regenerate the per-bug regression corpus (test/corpus) into $(docv) and exit.")
  in
  let replay_corpus =
    Arg.(value & opt (some string) None
         & info [ "replay-corpus" ] ~docv:"FILE"
             ~doc:"Replay one checked-in corpus case (a test/corpus JSON file): verify the fixed \
                   kernel under its schedule and confirm the seeded bug still fails the recorded \
                   condition.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided fuzzing of the six conditions: fuzz every scenario on the correct kernel \
          (kstats counters and trace events as coverage signal, solo isolation on each corpus \
          member), then score how fast exhaustive, randomized and coverage-guided checking kill \
          each seeded kernel bug, shrinking killing workloads to minimal programs.")
    Term.(
      const fuzz_run $ smoke $ seed_arg $ jobs_arg $ budget $ json_file $ replay $ replay_corpus
      $ scenario_arg $ bugs_arg $ impl_arg $ walks_arg $ walk_len_arg $ scrambles_arg
      $ emit_corpus)

(* -- refine ------------------------------------------------------------------ *)

let refine_replay seed bug =
  let module Stack = Sep_refine.Stack in
  match bug with
  | None ->
    Fmt.epr "rushby: --replay needs --bug (one of: %s)@." (String.concat ", " Stack.known_bugs);
    1
  | Some bug -> (
    match Stack.replay ~seed ~bug with
    | Error msg ->
      Fmt.epr "rushby: %s@." msg;
      1
    | Ok None ->
      Fmt.pr "seed %d does not expose %s: the stack stays in lockstep@." seed bug;
      0
    | Ok (Some k) ->
      Fmt.pr "seed %d diverges %s at step %d (%s, workload %d -> %d in %d shrinks)@." seed
        k.Stack.k_bug k.Stack.k_step k.Stack.k_scenario k.Stack.k_original_size
        k.Stack.k_shrunk_size k.Stack.k_shrink_steps;
      1)

let refine_full smoke seed jobs json_file =
  let module Stack = Sep_refine.Stack in
  let module Kact = Sep_refine.Kact in
  let schedules, steps, machine_cases, stack_cases, attempts =
    if smoke then (1, 200, 6, 5, 10) else (3, 300, 20, 15, 20)
  in
  let scenarios = Stack.scenario_results ~schedules ~steps ~seed () in
  let machine_runs =
    List.init machine_cases (fun i ->
        let cseed = seed + (101 * (i + 1)) in
        let cfg, schedule = Sep_check.Gen.run ~seed:cseed Stack.machine_case in
        (cseed, Stack.check_machine cfg ~schedule ~steps))
  in
  let stack_runs =
    List.init stack_cases (fun i ->
        let cseed = seed + (211 * (i + 1)) in
        (cseed, Stack.check_stack (Sep_check.Gen.run ~seed:cseed (Kact.gen ()))))
  in
  let kills = Stack.kill_table ~jobs ~seed ~attempts () in
  let checks =
    List.fold_left
      (fun acc (_, r) -> match r with Ok c -> acc + c | Error _ -> acc)
      0
      (List.map (fun (l, r) -> (l, r)) scenarios
      @ List.map (fun (s, r) -> (string_of_int s, r)) machine_runs
      @ List.map (fun (s, r) -> (string_of_int s, r)) stack_runs)
  in
  let clean_failures =
    List.filter_map (fun (label, r) -> match r with Ok _ -> None | Error d -> Some (label, d))
      (scenarios
      @ List.map (fun (s, r) -> (Fmt.str "machine seed %d" s, r)) machine_runs
      @ List.map (fun (s, r) -> (Fmt.str "stack seed %d" s, r)) stack_runs)
  in
  let killed = List.filter (fun k -> k.Stack.k_killed) kills in
  Fmt.pr "== refinement stack: seed %d, %d scenario runs, %d machine + %d stack workloads ==@." seed
    (List.length scenarios) machine_cases stack_cases;
  Fmt.pr "  lockstep: %d commuting-square checks, %d divergence%s@." checks
    (List.length clean_failures)
    (if List.compare_length_with clean_failures 1 = 0 then "" else "s");
  List.iter (fun (label, d) -> Fmt.pr "    DIVERGED %s: %a@." label Stack.pp_divergence d)
    clean_failures;
  Fmt.pr "  kills: %d/%d seeded bugs caught@." (List.length killed) (List.length kills);
  List.iter
    (fun (k : Stack.kill) ->
      if k.Stack.k_killed then
        Fmt.pr "    %-26s %-13s step %-3d  %2d -> %2d  (%s)@." k.Stack.k_bug k.Stack.k_scenario
          k.Stack.k_step k.Stack.k_original_size k.Stack.k_shrunk_size (Stack.replay_command k)
      else Fmt.pr "    %-26s SURVIVED@." k.Stack.k_bug)
    kills;
  let ok = clean_failures = [] && List.length killed = List.length kills in
  Fmt.pr "refinement %s@." (if ok then "HOLDS" else "VIOLATED");
  (match json_file with
  | None -> ()
  | Some file ->
    graceful_write @@ fun () ->
    let oc = open_out file in
    let line j =
      let buf = Buffer.create 256 in
      Sep_util.Json.to_buffer buf j;
      Buffer.add_char buf '\n';
      output_string oc (Buffer.contents buf)
    in
    let open Sep_util.Json in
    line
      (Obj
         [
           ("kind", String "refine-header");
           ("schema", String "rushby-refine/1");
           ("seed", Int seed);
           ("smoke", Bool smoke);
         ]);
    let result_line kind label r =
      line
        (Obj
           ([ ("kind", String kind); ("label", String label) ]
           @
           match r with
           | Ok c -> [ ("ok", Bool true); ("checks", Int c) ]
           | Error d -> [ ("ok", Bool false); ("divergence", Stack.divergence_to_json d) ]))
    in
    List.iter (fun (label, r) -> result_line "refine-scenario" label r) scenarios;
    List.iter (fun (s, r) -> result_line "refine-machine" (string_of_int s) r) machine_runs;
    List.iter (fun (s, r) -> result_line "refine-stack" (string_of_int s) r) stack_runs;
    List.iter
      (fun k ->
        match Stack.kill_to_json k with
        | Obj kvs ->
          line
            (Obj
               (("kind", String "refine-kill")
               :: (kvs @ [ ("replay", String (Stack.replay_command k)) ])))
        | other -> line other)
      kills;
    line
      (Obj
         [
           ("kind", String "refine-summary");
           ("checks", Int checks);
           ("kills", Int (List.length killed));
           ("bugs", Int (List.length kills));
           ("ok", Bool ok);
         ]);
    close_out oc;
    Fmt.pr "wrote %s@." file);
  if ok then 0 else 1

let refine_run smoke seed jobs json_file replay bug =
  match replay with
  | Some rseed -> refine_replay rseed bug
  | None -> refine_full smoke seed jobs json_file

let refine_cmd =
  let smoke =
    Arg.(value & flag
         & info [ "smoke" ] ~doc:"Small deterministic budgets (one schedule per scenario) for CI.")
  in
  let json_file =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Write scenario runs, workload runs, kill table and summary as JSONL to $(docv).")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Replay one detection attempt (with --bug) and exit 1 iff it diverges.")
  in
  let bug =
    Arg.(value & opt (some string) None
         & info [ "bug" ] ~docv:"NAME" ~doc:"Seeded bug name for --replay.")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Prove the three-level refinement in lockstep: an abstract per-colour specification above \
          the Sue machine kernel (via the abstraction functions, one commuting square per \
          instruction) and a behavioural specification above the regime kernel (one square per \
          rotation), tied across levels by Kahn-network word streams on shared workloads; then \
          race every seeded kernel bug against the stack, shrinking each divergence to a minimal \
          replayable workload.")
    Term.(const refine_run $ smoke $ seed_arg $ jobs_arg $ json_file $ replay $ bug)

let main_cmd =
  let doc = "reproduction of Rushby's separation kernel and Proof of Separability (SOSP 1981)" in
  Cmd.group (Cmd.info "rushby" ~version:"1.0.0" ~doc)
    [
      verify_cmd;
      verify_random_cmd;
      mutants_cmd;
      ifa_cmd;
      snfe_cmd;
      bandwidth_cmd;
      guard_cmd;
      mls_cmd;
      spooler_cmd;
      dot_cmd;
      trace_cmd;
      monitor_cmd;
      stats_cmd;
      metrics_cmd;
      inject_cmd;
      recover_cmd;
      federate_cmd;
      serve_cmd;
      fuzz_cmd;
      refine_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
