#!/bin/sh
# CI check: full build, the whole test suite, a self-validating bench
# snapshot (exercises the telemetry/JSON pipeline without writing files),
# a deterministic fault-injection smoke campaign (exit 1 on any
# separation-violating outcome), a recovery smoke campaign (exit 1 on any
# violating or non-recovered outcome, or on a reliable-channel
# differential mismatch), a coverage-guided fuzz smoke run (exit 1 on any
# condition/isolation failure or surviving mutant), a replay of every
# checked-in regression corpus case, and the example programs.
set -eux

cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- snapshot --check
dune exec bin/rushby.exe -- inject --smoke
dune exec bin/rushby.exe -- recover --smoke
dune exec bin/rushby.exe -- fuzz --smoke

for case in test/corpus/*.json; do
  dune exec bin/rushby.exe -- fuzz --replay-corpus "$case"
done

for ex in quickstart snfe_demo guard_demo mls_demo machine_snfe; do
  dune exec "examples/$ex.exe" > /dev/null
done
