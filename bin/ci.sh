#!/bin/sh
# CI check: full build, the whole test suite, a self-validating bench
# snapshot (exercises the telemetry/JSON pipeline without writing files),
# a deterministic fault-injection smoke campaign (exit 1 on any
# separation-violating outcome), a recovery smoke campaign (exit 1 on any
# violating or non-recovered outcome, or on a reliable-channel
# differential mismatch), a coverage-guided fuzz smoke run (exit 1 on any
# condition/isolation failure or surviving mutant), a parallel-determinism
# check (the -j 2 JSON reports must be byte-identical to -j 1), a replay
# of every checked-in regression corpus case, and the example programs.
set -eux

cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- snapshot --check
dune exec bin/rushby.exe -- inject --smoke
dune exec bin/rushby.exe -- recover --smoke
# The fuzz smoke gate is pinned to a seed where the 40-exec budget
# completes every mutant kill; at the default seed the hard
# schedule-on-foreign-state x coverage pair needs a few hundred workloads
# (the full-budget run covers it).
dune exec bin/rushby.exe -- fuzz --smoke --seed 5

# Determinism across job counts: sharded parallel runs must reproduce the
# sequential reports byte for byte.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
dune exec bin/rushby.exe -- inject --smoke -j 1 --json "$tmpdir/inject-j1.jsonl"
dune exec bin/rushby.exe -- inject --smoke -j 2 --json "$tmpdir/inject-j2.jsonl"
diff "$tmpdir/inject-j1.jsonl" "$tmpdir/inject-j2.jsonl"
dune exec bin/rushby.exe -- fuzz --smoke --seed 5 -j 1 --json "$tmpdir/fuzz-j1.jsonl"
dune exec bin/rushby.exe -- fuzz --smoke --seed 5 -j 2 --json "$tmpdir/fuzz-j2.jsonl"
diff "$tmpdir/fuzz-j1.jsonl" "$tmpdir/fuzz-j2.jsonl"

# The corpus directory ships non-empty, but guard the glob anyway: an
# unexpanded pattern would otherwise reach --replay-corpus verbatim.
for case in test/corpus/*.json; do
  [ -e "$case" ] || continue
  dune exec bin/rushby.exe -- fuzz --replay-corpus "$case"
done

for ex in quickstart snfe_demo guard_demo mls_demo machine_snfe; do
  dune exec "examples/$ex.exe" > /dev/null
done
