#!/bin/sh
# CI check: full build, the whole test suite, an online-monitor smoke run
# (exit 1 on offline/online disagreement or a missed corpus mutant), a
# deterministic fault-injection smoke campaign (exit 1 on any
# separation-violating outcome), a recovery smoke campaign (exit 1 on any
# violating or non-recovered outcome, or on a reliable-channel
# differential mismatch), a coverage-guided fuzz smoke run (exit 1 on any
# condition/isolation failure or surviving mutant), a federation smoke
# run with node-fault chaos (exit 1 on an ideal-differential mismatch,
# a violating chaos outcome or an unclean shard monitor), a
# refinement-stack smoke run (exit 1 on a lockstep divergence on a clean
# kernel or a seeded bug the bisimulation fails to kill), a service-layer
# smoke run plus a short chaos soak over all four §6 services (exit 1 on
# any broken exactly-once contract, lost or duplicated effect, or unclean
# shard monitor), a parallel-determinism
# check (the -j 2 JSON reports must be byte-identical to -j 1), a
# fresh self-validating bench snapshot gated against the committed one
# (exit 1 on a >20% throughput regression), a replay of every checked-in
# regression corpus case, and the example programs.
set -eux

cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bin/rushby.exe -- monitor --smoke
dune exec bin/rushby.exe -- inject --smoke
dune exec bin/rushby.exe -- recover --smoke
# The fuzz smoke gate is pinned to a seed where the 40-exec budget
# completes every mutant kill; at the default seed the hard
# schedule-on-foreign-state x coverage pair needs a few hundred workloads
# (the full-budget run covers it).
dune exec bin/rushby.exe -- fuzz --smoke --seed 5
dune exec bin/rushby.exe -- federate --smoke --chaos
dune exec bin/rushby.exe -- refine --smoke
dune exec bin/rushby.exe -- serve --smoke
# A short soak: sustained correlated node chaos (repeated same-shard
# crashes, flapping partitions, tamper bursts) over every §6 service.
dune exec bin/rushby.exe -- serve --steps 5000 --count 2

# Determinism across job counts: sharded parallel runs must reproduce the
# sequential reports byte for byte.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Performance regression gate: a fresh self-validated snapshot compared
# against the latest committed one — any shared throughput metric
# dropping by more than 20% fails the build. One retry: on a shared
# machine a whole snapshot window can land on a slow patch, and a real
# regression fails both runs anyway.
latest="$(ls BENCH_PR*.json | sort -V | tail -n 1)"
dune exec bench/main.exe -- snapshot --out "$tmpdir/bench.json"
if ! dune exec bench/main.exe -- compare "$latest" "$tmpdir/bench.json"; then
  dune exec bench/main.exe -- snapshot --out "$tmpdir/bench-retry.json"
  dune exec bench/main.exe -- compare "$latest" "$tmpdir/bench-retry.json"
fi
dune exec bin/rushby.exe -- inject --smoke -j 1 --json "$tmpdir/inject-j1.jsonl"
dune exec bin/rushby.exe -- inject --smoke -j 2 --json "$tmpdir/inject-j2.jsonl"
diff "$tmpdir/inject-j1.jsonl" "$tmpdir/inject-j2.jsonl"
dune exec bin/rushby.exe -- fuzz --smoke --seed 5 -j 1 --json "$tmpdir/fuzz-j1.jsonl"
dune exec bin/rushby.exe -- fuzz --smoke --seed 5 -j 2 --json "$tmpdir/fuzz-j2.jsonl"
diff "$tmpdir/fuzz-j1.jsonl" "$tmpdir/fuzz-j2.jsonl"
dune exec bin/rushby.exe -- federate --smoke --chaos -j 1 --json "$tmpdir/fed-j1.jsonl"
dune exec bin/rushby.exe -- federate --smoke --chaos -j 2 --json "$tmpdir/fed-j2.jsonl"
diff "$tmpdir/fed-j1.jsonl" "$tmpdir/fed-j2.jsonl"
dune exec bin/rushby.exe -- refine --smoke -j 1 --json "$tmpdir/refine-j1.jsonl"
dune exec bin/rushby.exe -- refine --smoke -j 2 --json "$tmpdir/refine-j2.jsonl"
diff "$tmpdir/refine-j1.jsonl" "$tmpdir/refine-j2.jsonl"
dune exec bin/rushby.exe -- serve --smoke -j 1 --json "$tmpdir/serve-j1.jsonl"
dune exec bin/rushby.exe -- serve --smoke -j 2 --json "$tmpdir/serve-j2.jsonl"
diff "$tmpdir/serve-j1.jsonl" "$tmpdir/serve-j2.jsonl"

# The corpus directory ships non-empty, but guard the glob anyway: an
# unexpanded pattern would otherwise reach --replay-corpus verbatim.
for case in test/corpus/*.json; do
  [ -e "$case" ] || continue
  dune exec bin/rushby.exe -- fuzz --replay-corpus "$case"
done

for ex in quickstart snfe_demo guard_demo mls_demo machine_snfe; do
  dune exec "examples/$ex.exe" > /dev/null
done
