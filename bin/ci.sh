#!/bin/sh
# CI check: full build, the whole test suite, and a self-validating bench
# snapshot (exercises the telemetry/JSON pipeline without writing files).
set -eux

cd "$(dirname "$0")/.."

dune build @all
dune runtest
dune exec bench/main.exe -- snapshot --check
