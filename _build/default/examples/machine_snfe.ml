(* The SNFE rebuilt at machine level, watched through the kernel tracer.

   Three regimes on one simulated processor: RED (host line + in-line
   crypto device), CENSOR (its procedural check is machine code), BLACK
   (network transmitter). The kernel between them is the SUE-style
   separation kernel; this demo runs cleartext words through it, shows the
   kernel's own activity, and then proves the configuration separable. *)

module Scenarios = Sep_core.Scenarios
module Sue = Sep_core.Sue
module Config = Sep_core.Config
module Ktrace = Sep_core.Ktrace
module Separability = Sep_core.Separability

let () =
  (* run the working (uncut) system: words in, ciphertext out *)
  let cfg = Config.cut_none Scenarios.snfe_micro.Scenarios.cfg in
  let t = Sue.build cfg in
  let words = [ 0x11; 0x02; 0x3f ] in
  let inputs n = if n mod 30 = 0 && n / 30 < 3 then [ (0, List.nth words (n / 30)) ] else [] in
  let outs = List.concat (Sue.run t ~steps:120 ~inputs) in
  Fmt.pr "host words:   %a@." Fmt.(Dump.list (fun ppf w -> Fmt.pf ppf "%02x" w)) words;
  Fmt.pr "network sees: %a  (xor key 2a)@."
    Fmt.(Dump.list (fun ppf (_, w) -> Fmt.pf ppf "%02x" w))
    outs;

  (* watch the kernel work: first 30 steps of a fresh run *)
  Fmt.pr "@.kernel trace (first word arriving):@.";
  let traced = Sue.build cfg in
  print_string
    (Ktrace.render (Ktrace.record traced ~steps:26 ~inputs:(fun n -> if n = 0 then [ (0, 0x11) ] else [])));

  (* and verify: cut the three channels, check the six conditions — over
     both kernel implementations, including the one that is machine code *)
  Fmt.pr "@.wire-cutting and Proof of Separability:@.";
  List.iter
    (fun impl ->
      let built = Sue.build ~impl Scenarios.snfe_micro.Scenarios.cfg in
      let report =
        Separability.check
          (Sue.to_system ~impl ~inputs:Scenarios.snfe_micro.Scenarios.alphabet
             Scenarios.snfe_micro.Scenarios.cfg)
      in
      Fmt.pr "[%a kernel%s] %a@." Sue.pp_impl impl
        (match Sue.kernel_code_words built with
        | 0 -> ""
        | n -> Fmt.str ", %d words of kernel code" n)
        Separability.pp_report report)
    [ Sue.Microcode; Sue.Assembly ]
