(* The Secure Network Front End, end to end.

   Builds the paper's red/crypto/censor/black system, checks its channel
   matrix ("the channels via the censor and the crypto are allowed, but
   there must be no others"), pushes traffic through it in both
   directions on both substrates, and finally lets a subverted red
   component try to leak through the bypass under each censor mode. *)

module Matrix = Sep_policy.Channel_matrix
module Snfe = Sep_snfe.Snfe
module Substrate = Sep_snfe.Substrate
module Censor = Sep_components.Censor
module Covert = Sep_components.Covert

let () =
  let cfg = Snfe.default_config in
  let topo = Snfe.topology cfg in

  (* Structural security: every red-to-black path crosses a trusted
     component, and cutting the mediated wires isolates the pair. *)
  let m = Matrix.of_topology topo in
  Fmt.pr "red->black reachable: %b@." (Matrix.reachable m Snfe.red Snfe.black);
  Fmt.pr "red->black avoiding censor+crypto: %b@."
    (Matrix.reachable_avoiding m
       ~avoid:[ Snfe.censor_tx; Snfe.censor_rx; Snfe.crypto_tx; Snfe.crypto_rx ]
       Snfe.red Snfe.black);
  Fmt.pr "red->black avoiding the crypto (bypass only): %b@."
    (Matrix.reachable_avoiding m ~avoid:[ Snfe.crypto_tx; Snfe.crypto_rx ] Snfe.red Snfe.black);
  Fmt.pr "mediator on the bypass path: %a@."
    Fmt.(Dump.list Sep_model.Colour.pp)
    (Matrix.mediators
       (Matrix.of_topology (Sep_model.Topology.cut_wire (Sep_model.Topology.cut_wire topo 0) 6))
       Snfe.red Snfe.black);

  (* Traffic: host packets must reach the network encrypted only, and
     inbound traffic must decrypt back to the host — identically on the
     distributed and kernelized substrates. *)
  List.iter
    (fun kind ->
      let r =
        Snfe.run_duplex kind cfg
          ~outbound:[ "attack at dawn"; "hold position" ]
          ~inbound:[ "acknowledged" ] ~steps:30
      in
      Fmt.pr "@.[%a] network packets:@." Substrate.pp_kind kind;
      List.iter (Fmt.pr "  %s@.") r.Snfe.net_packets;
      Fmt.pr "[%a] host received: %a; cleartext leaks: %d@." Substrate.pp_kind kind
        Fmt.(Dump.list string)
        r.Snfe.host_packets
        (List.length r.Snfe.cleartext_on_net))
    Substrate.both;

  (* The subverted red component vs the censor. *)
  Fmt.pr "@.covert bandwidth through the bypass:@.";
  List.iter
    (fun vector ->
      List.iter
        (fun mode ->
          let b = Snfe.measure_covert ~vector ~mode ~messages:100 ~seed:2026 () in
          Fmt.pr "  %a@." Snfe.pp_bandwidth b)
        [ Censor.Off; Censor.Basic; Censor.Strict ])
    [ Covert.Pad_field; Covert.Length_raw; Covert.Length_bucket ]
