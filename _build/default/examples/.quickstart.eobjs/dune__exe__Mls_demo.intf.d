examples/mls_demo.mli:
