examples/machine_snfe.mli:
