examples/guard_demo.ml: Fmt List Sep_apps Sep_components Sep_snfe
