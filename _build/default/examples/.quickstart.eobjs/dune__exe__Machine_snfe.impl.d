examples/machine_snfe.ml: Dump Fmt List Sep_core
