examples/snfe_demo.ml: Dump Fmt List Sep_components Sep_model Sep_policy Sep_snfe
