examples/snfe_demo.mli:
