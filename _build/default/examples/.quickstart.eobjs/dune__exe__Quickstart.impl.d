examples/quickstart.ml: Dump Fmt Sep_core Sep_hw Sep_model
