examples/mls_demo.ml: Dump Fmt List Sep_apps Sep_conventional Sep_lattice Sep_model Sep_snfe
