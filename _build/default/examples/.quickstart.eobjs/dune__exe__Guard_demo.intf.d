examples/guard_demo.mli:
