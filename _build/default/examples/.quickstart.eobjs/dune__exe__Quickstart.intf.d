examples/quickstart.mli:
