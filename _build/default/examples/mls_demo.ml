(* The multilevel secure multi-user system of Section 2.

   Two users at different clearances, a file server enforcing
   Bell-LaPadula, a printer server that cleans up after itself through an
   explicitly privileged channel (no trusted processes anywhere), and an
   authentication service binding sessions to clearances.

   For contrast, the same print-and-clean-up workload is then run on the
   conventional kernelized system, where the spooler must either leak
   spool files or hold a policy exemption. *)

module Mls = Sep_apps.Mls
module Substrate = Sep_snfe.Substrate
module Spooler = Sep_conventional.Spooler
module Sclass = Sep_lattice.Sclass

let () =
  let r = Mls.run Substrate.Kernelized Mls.demo_script in
  List.iter
    (fun (c, lines) ->
      Fmt.pr "== %s's terminal ==@." (Sep_model.Colour.name c);
      List.iter (Fmt.pr "  %s@.") lines)
    r.Mls.screens;
  Fmt.pr "== printer room ==@.";
  List.iter (Fmt.pr "  %s@.") r.Mls.printer_output;
  Fmt.pr "spool files left over: %a@.@." Fmt.(Dump.list string) r.Mls.spool_files_left;

  Fmt.pr "-- the same job on a conventional kernel --@.";
  let jobs =
    [
      { Spooler.owner = "alice"; level = Sclass.unclassified; text = "hello from alice" };
      { Spooler.owner = "bob"; level = Sclass.secret; text = "move the fleet at dawn" };
    ]
  in
  List.iter
    (fun trusted -> Fmt.pr "  %a@." Spooler.pp_outcome (Spooler.run ~trusted ~jobs))
    [ false; true ]
