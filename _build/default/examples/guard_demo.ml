(* The ACCAT Guard: bidirectional flow, different rules per direction.

   LOW traffic passes to HIGH unhindered; HIGH traffic reaches LOW only
   after the Security Watch Officer releases it. A denied message leaves
   no trace on the LOW side. *)

module Guard_app = Sep_apps.Guard_app
module Substrate = Sep_snfe.Substrate

let () =
  let script =
    [
      (0, Guard_app.low, "request: weather for tomorrow");
      (1, Guard_app.high, "forecast: clear, winds light");
      (2, Guard_app.high, "order of battle: REDACTED");
      (3, Guard_app.low, "request: resupply schedule");
      (10, Guard_app.officer, "RELEASE 0");
      (11, Guard_app.officer, "DENY 1");
    ]
  in
  List.iter
    (fun kind ->
      let r = Guard_app.run kind ~steps:25 script in
      Fmt.pr "@.[%a]@." Substrate.pp_kind kind;
      Fmt.pr "HIGH terminal (sees everything LOW sent):@.";
      List.iter (Fmt.pr "  %s@.") r.Guard_app.high_screen;
      Fmt.pr "officer console:@.";
      List.iter (Fmt.pr "  %s@.") r.Guard_app.officer_screen;
      Fmt.pr "LOW terminal (sees only released messages):@.";
      List.iter (Fmt.pr "  %s@.") r.Guard_app.low_screen;
      let s = r.Guard_app.stats in
      Fmt.pr "passed up: %d, reviewed: %d, released: %d, denied: %d@."
        s.Sep_components.Guard.passed_up s.Sep_components.Guard.reviewed
        s.Sep_components.Guard.released s.Sep_components.Guard.denied)
    Substrate.both
