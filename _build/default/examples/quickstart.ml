(* Quickstart: build a two-regime separation kernel, run it, verify it.

   This walks the library's core loop end to end:
   1. describe a system as a configuration (regimes + channels);
   2. run it on the simulated machine under the SUE-style kernel;
   3. apply the wire-cutting transformation and prove separability
      exhaustively — then watch the proof fail on a sabotaged kernel. *)

module Colour = Sep_model.Colour
module Isa = Sep_hw.Isa
module Machine = Sep_hw.Machine

let () =
  (* A RED regime that echoes whatever arrives on its serial device to a
     transmit device, and a BLACK regime that just spins. RED's devices
     are its own; BLACK cannot even name them. *)
  let red_program =
    [
      Isa.Instr (Isa.Loadi (6, 1));
      Isa.Instr (Isa.Shl (6, 15));  (* r6 = device space base *)
      Isa.Label "loop";
      Isa.Instr (Isa.Loadi (5, 0));
      Isa.Instr (Isa.Load (1, 6, 1));  (* poll Rx status *)
      Isa.Instr (Isa.Cmp (1, 5));
      Isa.Branch_eq "wait";
      Isa.Instr (Isa.Load (2, 6, 0));  (* consume the word *)
      Isa.Instr (Isa.Loadi (3, 9));  (* working state SWAP must preserve *)
      Isa.Instr (Isa.Store (2, 6, 2));  (* echo it on Tx *)
      Isa.Instr (Isa.Trap 0);  (* yield *)
      Isa.Branch "loop";
      Isa.Label "wait";
      Isa.Instr Isa.Halt;  (* wait for the Rx interrupt *)
      Isa.Branch "loop";
    ]
  in
  let black_program = [ Isa.Label "spin"; Isa.Instr (Isa.Trap 0); Isa.Branch "spin" ] in
  let cfg =
    Sep_core.Config.make
      ~regimes:
        [
          {
            Sep_core.Config.colour = Colour.red;
            part_size = 16;
            program = red_program;
            devices = [ Machine.Rx; Machine.Tx ];
          };
          {
            Sep_core.Config.colour = Colour.black;
            part_size = 8;
            program = black_program;
            devices = [];
          };
        ]
      ~channels:[] ()
  in

  (* Run it: feed words 10, 20, 30 to RED's Rx device and watch them come
     back out of its Tx device. The kernel round-robins between RED and
     BLACK the whole time; BLACK sees none of it. *)
  let sue = Sep_core.Sue.build cfg in
  (* one word every 15 steps, so the echo loop keeps up *)
  let inputs n = if n mod 15 = 0 && n < 45 then [ (0, ((n / 15) + 1) * 10) ] else [] in
  let outputs = Sep_core.Sue.run sue ~steps:80 ~inputs in
  Fmt.pr "echoed words: %a@."
    Fmt.(Dump.list (Dump.list (Dump.pair int int)))
    outputs;
  Fmt.pr "kernel size: %d words (the SUE was ~5K)@." (Sep_core.Sue.kernel_words sue);

  (* Verify it: Proof of Separability over every reachable state, with the
     (here trivial) wire-cutting transformation applied first. *)
  let alphabet = [ []; [ (0, 10) ]; [ (0, 20) ] ] in
  let sys = Sep_core.Sue.to_system ~inputs:alphabet (Sep_core.Config.cut_all cfg) in
  let report = Sep_core.Separability.check sys in
  Fmt.pr "%a@." Sep_core.Separability.pp_report report;

  (* Sabotage it: a kernel that forgets to save R3 on SWAP is caught by
     condition 1 — the regime's world diverges from its private machine. *)
  let bad = Sep_core.Sue.to_system ~bugs:[ Sep_core.Sue.Forget_register_save ] ~inputs:alphabet cfg in
  let bad_report = Sep_core.Separability.check bad in
  Fmt.pr "sabotaged kernel: %s (conditions %a violated)@."
    (if Sep_core.Separability.verified bad_report then "VERIFIED?!" else "rejected")
    Fmt.(Dump.list int)
    (Sep_core.Separability.failing_conditions bad_report)
